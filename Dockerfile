# Build stage: compile the CLI tools against the pinned toolchain.
FROM golang:1.24 AS build
WORKDIR /src
COPY go.mod ./
COPY . .
RUN CGO_ENABLED=0 go build -o /out/ ./cmd/hlgen ./cmd/hlbuild ./cmd/hlserve

# Runtime stage: the three binaries plus curl for compose healthchecks.
FROM debian:bookworm-slim
RUN apt-get update \
 && apt-get install -y --no-install-recommends curl ca-certificates \
 && rm -rf /var/lib/apt/lists/*
COPY --from=build /out/hlgen /out/hlbuild /out/hlserve /usr/local/bin/
ENTRYPOINT ["hlserve"]
