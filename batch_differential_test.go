package highway_test

import (
	"context"
	"math/rand"
	"testing"

	"highway"
	"highway/internal/oracle"
)

// batchTestGraph is a BA graph with a disconnected tail grafted on: a
// small path component and an isolated vertex, so batches include
// Infinity answers alongside regular ones.
func batchTestGraph(t *testing.T) *highway.Graph {
	t.Helper()
	base := highway.BarabasiAlbert(160, 3, 7)
	var edges [][2]int32
	for u := int32(0); u < 160; u++ {
		for _, v := range base.Neighbors(u) {
			if u < v {
				edges = append(edges, [2]int32{u, v})
			}
		}
	}
	edges = append(edges, [2]int32{160, 161}, [2]int32{161, 162}) // path component
	g, err := highway.FromEdges(164, edges)                       // vertex 163 isolated
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// batchTestPairs draws the adversarial batch shape the executor must
// get right: repeated sources, duplicate pairs, s==t, pairs touching
// the disconnected tail, and a uniform remainder.
func batchTestPairs(n int, seed int64) [][2]int32 {
	rng := rand.New(rand.NewSource(seed))
	var pairs [][2]int32
	sources := []int32{3, 3, 7, int32(rng.Intn(n))} // repeated sources
	for i := 0; i < 600; i++ {
		pairs = append(pairs, [2]int32{sources[i%len(sources)], int32(rng.Intn(n))})
	}
	for i := 0; i < 30; i++ {
		v := int32(rng.Intn(n))
		pairs = append(pairs, [2]int32{v, v})                          // s == t
		pairs = append(pairs, pairs[rng.Intn(len(pairs))])             // duplicates
		pairs = append(pairs, [2]int32{int32(n - 1 - rng.Intn(4)), v}) // tail sources
		pairs = append(pairs, [2]int32{v, int32(n - 1 - rng.Intn(4))}) // tail targets
		pairs = append(pairs, [2]int32{int32(rng.Intn(n)), int32(rng.Intn(n))})
	}
	return pairs
}

// TestMethodBatchDifferential holds every registered method to the
// batch contract: dispatching through the capability layer
// (SearcherDistanceBatch / SearcherDistanceMany) returns exactly the
// method's own pair-at-a-time answers — whether the method opted into
// vectorized execution or fell back to the pair loop — and exactly the
// BFS ground truth for the exact methods. Pairs include duplicates,
// repeated sources, s==t, landmark endpoints (low-id vertices are the
// degree-ranked landmarks) and disconnected pairs.
func TestMethodBatchDifferential(t *testing.T) {
	g := batchTestGraph(t)
	n := g.NumVertices()
	pairs := batchTestPairs(n, 5)
	for _, m := range highway.Methods() {
		t.Run(m.Name, func(t *testing.T) {
			ix, err := highway.Build(context.Background(), g, m.Name, buildOptionsFor(m.Name)...)
			if err != nil {
				t.Fatal(err)
			}
			caps := highway.IndexCapabilities(ix)
			t.Logf("%s capabilities: %s", m.Name, caps)
			sr := ix.NewSearcher()
			batched := highway.SearcherDistanceBatch(sr, pairs, nil)
			pairwise := ix.NewSearcher()
			for i, p := range pairs {
				if want := pairwise.Distance(p[0], p[1]); batched[i] != want {
					t.Fatalf("batched[%d] (%d,%d) = %d, pairwise %d", i, p[0], p[1], batched[i], want)
				}
			}
			// One-source-to-many over each distinct source.
			bySource := map[int32][]int32{}
			for _, p := range pairs {
				bySource[p[0]] = append(bySource[p[0]], p[1])
			}
			for src, targets := range bySource {
				many := highway.SearcherDistanceMany(sr, src, targets, nil)
				for i, tv := range targets {
					if want := pairwise.Distance(src, tv); many[i] != want {
						t.Fatalf("many(%d→%d) = %d, pairwise %d", src, tv, many[i], want)
					}
				}
			}
			// Exact methods must also match BFS ground truth through the
			// batched path. (All five registered methods are exact oracles.)
			if err := oracle.Diff(g, oracle.Func(func(s, tt int32) int32 {
				out := highway.SearcherDistanceBatch(sr, [][2]int32{{s, tt}}, nil)
				return out[0]
			}), oracle.SampledPairs(n, 200, 17)); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestIndexCapabilities pins which methods opt into vectorized batch
// execution: the highway cover labelling and PLL do, the rest fall back
// to the pair loop (still correct, just unamortized).
func TestIndexCapabilities(t *testing.T) {
	g := testGraphSmall(t)
	want := map[string]bool{"hl": true, "pll": true}
	for _, m := range highway.Methods() {
		ix, err := highway.Build(context.Background(), g, m.Name, buildOptionsFor(m.Name)...)
		if err != nil {
			t.Fatal(err)
		}
		caps := highway.IndexCapabilities(ix)
		if caps.Batch != want[m.Name] || caps.Source != want[m.Name] {
			t.Errorf("%s capabilities = %+v, want batch/source %v", m.Name, caps, want[m.Name])
		}
		if caps.Insert != m.Dynamic {
			t.Errorf("%s capabilities.Insert = %v, Dynamic = %v", m.Name, caps.Insert, m.Dynamic)
		}
	}
}
