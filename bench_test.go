// Benchmarks mirroring the paper's tables and figures, one family per
// artefact (see DESIGN.md's per-experiment index). These run on shrunken
// stand-ins so `go test -bench=. -benchmem` completes in minutes; the full
// harness (cmd/hlbench) regenerates the complete tables at standard size.
package highway_test

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"sync"
	"testing"

	"highway"
	"highway/internal/bfs"
	"highway/internal/datasets"
	"highway/internal/workload"
)

// benchShrink shrinks the Table 1 stand-ins for benchmark use.
const benchShrink = 4

var (
	fixOnce  sync.Once
	fixGraph *highway.Graph // Skitter stand-in at benchShrink
	fixLM    []int32
	fixPairs []highway.Pair
)

func fixtures(b *testing.B) (*highway.Graph, []int32, []highway.Pair) {
	b.Helper()
	fixOnce.Do(func() {
		d, err := datasets.ByName("Skitter")
		if err != nil {
			panic(err)
		}
		fixGraph = d.Load(benchShrink)
		fixLM, err = highway.SelectLandmarks(fixGraph, 20, highway.ByDegree, 0)
		if err != nil {
			panic(err)
		}
		fixPairs = highway.RandomPairs(fixGraph, 4096, 42)
	})
	return fixGraph, fixLM, fixPairs
}

// --- Table 1 ---------------------------------------------------------------

// BenchmarkTable1Datasets measures stand-in generation + statistics for
// the quick dataset subset (Table 1's rows).
func BenchmarkTable1Datasets(b *testing.B) {
	small := datasets.SmallSet()
	for i := 0; i < b.N; i++ {
		for _, d := range small {
			g := d.Generate(benchShrink * 4)
			st := d.Describe(g)
			if st.N == 0 {
				b.Fatal("empty stand-in")
			}
		}
	}
}

// --- Table 2: construction time --------------------------------------------

func BenchmarkTable2BuildHLP(b *testing.B) {
	g, lm, _ := fixtures(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := highway.BuildIndex(g, lm); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2BuildHL(b *testing.B) {
	g, lm, _ := fixtures(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := highway.BuildIndexSequential(g, lm); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2BuildFD(b *testing.B) {
	g, lm, _ := fixtures(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := highway.BuildFD(context.Background(), g, lm); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2BuildPLL(b *testing.B) {
	g, _, _ := fixtures(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := highway.BuildPLL(context.Background(), g); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2BuildISL(b *testing.B) {
	g, _, _ := fixtures(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := highway.BuildISL(context.Background(), g, highway.ISLOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Construction: direction-optimizing engine (BENCH_BUILD.json) ------------

// BenchmarkBuildDirection measures construction per traversal direction
// on the Skitter stand-in (k=20): topdown is the pre-engine reference,
// dopt the direction-optimizing default. BENCH_BUILD.json records the
// medians.
func BenchmarkBuildDirection(b *testing.B) {
	g, lm, _ := fixtures(b)
	for _, c := range []struct {
		name string
		opt  highway.BuildOptions
	}{
		{"HL/topdown", highway.BuildOptions{Workers: 1, Direction: highway.DirectionTopDown}},
		{"HL/dopt", highway.BuildOptions{Workers: 1, Direction: highway.DirectionAuto}},
		{"HLP/topdown", highway.BuildOptions{Workers: 0, Direction: highway.DirectionTopDown}},
		{"HLP/dopt", highway.BuildOptions{Workers: 0, Direction: highway.DirectionAuto}},
	} {
		b.Run(c.name, func(b *testing.B) {
			var tr highway.TraversalStats
			for i := 0; i < b.N; i++ {
				ix, err := highway.BuildIndexOpts(context.Background(), g, lm, c.opt)
				if err != nil {
					b.Fatal(err)
				}
				tr = ix.BuildStats().Traversal
			}
			b.ReportMetric(float64(tr.EdgesScanned()), "edges-scanned")
			b.ReportMetric(float64(tr.BottomUpLevels), "bu-levels")
		})
	}
}

// BenchmarkBuildOracleBFS measures the pooled ground-truth BFS the
// oracle harness and landmark selection run many times per test.
func BenchmarkBuildOracleBFS(b *testing.B) {
	g, _, _ := fixtures(b)
	var dist []int32
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dist = highway.DistancesFrom(g, int32(i%g.NumVertices()), dist)
	}
}

// --- Table 2: query time ----------------------------------------------------

func BenchmarkTable2QueryHL(b *testing.B) {
	g, lm, pairs := fixtures(b)
	ix, err := highway.BuildIndex(g, lm)
	if err != nil {
		b.Fatal(err)
	}
	sr := ix.NewSearcher()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pairs[i%len(pairs)]
		sr.Distance(p.S, p.T)
	}
}

func BenchmarkTable2QueryFD(b *testing.B) {
	g, lm, pairs := fixtures(b)
	ix, err := highway.BuildFD(context.Background(), g, lm)
	if err != nil {
		b.Fatal(err)
	}
	sr := ix.NewSearcher()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pairs[i%len(pairs)]
		sr.Distance(p.S, p.T)
	}
}

func BenchmarkTable2QueryPLL(b *testing.B) {
	g, _, pairs := fixtures(b)
	ix, err := highway.BuildPLL(context.Background(), g)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pairs[i%len(pairs)]
		ix.Distance(p.S, p.T)
	}
}

func BenchmarkTable2QueryISL(b *testing.B) {
	g, _, pairs := fixtures(b)
	ix, err := highway.BuildISL(context.Background(), g, highway.ISLOptions{})
	if err != nil {
		b.Fatal(err)
	}
	sr := ix.NewSearcher()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pairs[i%len(pairs)]
		sr.Distance(p.S, p.T)
	}
}

func BenchmarkTable2QueryBiBFS(b *testing.B) {
	g, _, pairs := fixtures(b)
	sc := bfs.NewScratch(g.NumVertices())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pairs[i%len(pairs)]
		bfs.BiBFS(g, p.S, p.T, sc)
	}
}

// --- Index serialization: format v2 vs legacy v1 -----------------------------

// BenchmarkIndexWrite measures serialization throughput per format.
func BenchmarkIndexWrite(b *testing.B) {
	g, lm, _ := fixtures(b)
	ix, err := highway.BuildIndex(g, lm)
	if err != nil {
		b.Fatal(err)
	}
	for _, f := range []highway.IndexFormat{highway.IndexFormatV1, highway.IndexFormatV2} {
		b.Run(f.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := highway.WriteIndex(ix, io.Discard, f); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkIndexLoad measures deserialization per format: v2's bulk
// section reads vs v1's element-at-a-time stream.
func BenchmarkIndexLoad(b *testing.B) {
	g, lm, _ := fixtures(b)
	ix, err := highway.BuildIndex(g, lm)
	if err != nil {
		b.Fatal(err)
	}
	for _, f := range []highway.IndexFormat{highway.IndexFormatV1, highway.IndexFormatV2} {
		var buf bytes.Buffer
		if err := highway.WriteIndex(ix, &buf, f); err != nil {
			b.Fatal(err)
		}
		raw := buf.Bytes()
		b.Run(f.String(), func(b *testing.B) {
			b.SetBytes(int64(len(raw)))
			for i := 0; i < b.N; i++ {
				if _, err := highway.ReadIndex(bytes.NewReader(raw), g); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Table 3: labelling sizes ------------------------------------------------

// BenchmarkTable3Sizes builds every method once and reports the Table 3
// size columns as metrics (bytes).
func BenchmarkTable3Sizes(b *testing.B) {
	g, lm, _ := fixtures(b)
	hl, err := highway.BuildIndex(g, lm)
	if err != nil {
		b.Fatal(err)
	}
	fdIx, err := highway.BuildFD(context.Background(), g, lm)
	if err != nil {
		b.Fatal(err)
	}
	pllIx, err := highway.BuildPLL(context.Background(), g)
	if err != nil {
		b.Fatal(err)
	}
	islIx, err := highway.BuildISL(context.Background(), g, highway.ISLOptions{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var sink int64
	for i := 0; i < b.N; i++ {
		sink = hl.SizeBytes8() + hl.SizeBytes32() + fdIx.SizeBytes() + pllIx.SizeBytes() + islIx.SizeBytes()
	}
	_ = sink
	b.ReportMetric(float64(hl.SizeBytes8()), "HL8-bytes")
	b.ReportMetric(float64(hl.SizeBytes32()), "HL-bytes")
	b.ReportMetric(float64(fdIx.SizeBytes()), "FD-bytes")
	b.ReportMetric(float64(pllIx.SizeBytes()), "PLL-bytes")
	b.ReportMetric(float64(islIx.SizeBytes()), "ISL-bytes")
}

// --- Figure 1(a): query time vs index size (per-method query benches above
// give the times; this reports the sizes together) -- covered by
// BenchmarkTable3Sizes + BenchmarkTable2Query*.

// BenchmarkFig1a runs one combined build+query pass per method, reporting
// size as a metric, so a single bench line carries both figure axes.
func BenchmarkFig1a(b *testing.B) {
	g, lm, pairs := fixtures(b)
	type method struct {
		name  string
		setup func() (workload.Oracle, int64)
	}
	methods := []method{
		{"HL", func() (workload.Oracle, int64) {
			ix, err := highway.BuildIndex(g, lm)
			if err != nil {
				b.Fatal(err)
			}
			sr := ix.NewSearcher()
			return workload.OracleFunc(sr.Distance), ix.SizeBytes32()
		}},
		{"FD", func() (workload.Oracle, int64) {
			ix, err := highway.BuildFD(context.Background(), g, lm)
			if err != nil {
				b.Fatal(err)
			}
			sr := ix.NewSearcher()
			return workload.OracleFunc(sr.Distance), ix.SizeBytes()
		}},
		{"PLL", func() (workload.Oracle, int64) {
			ix, err := highway.BuildPLL(context.Background(), g)
			if err != nil {
				b.Fatal(err)
			}
			return workload.OracleFunc(ix.Distance), ix.SizeBytes()
		}},
		{"ISL", func() (workload.Oracle, int64) {
			ix, err := highway.BuildISL(context.Background(), g, highway.ISLOptions{})
			if err != nil {
				b.Fatal(err)
			}
			sr := ix.NewSearcher()
			return workload.OracleFunc(sr.Distance), ix.SizeBytes()
		}},
	}
	for _, m := range methods {
		b.Run(m.name, func(b *testing.B) {
			o, size := m.setup()
			b.ReportMetric(float64(size), "index-bytes")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p := pairs[i%len(pairs)]
				o.Distance(p.S, p.T)
			}
		})
	}
}

// --- Figure 1(b): construction time vs network size --------------------------

func BenchmarkFig1b(b *testing.B) {
	for _, n := range []int{5_000, 20_000, 80_000} {
		g := highway.BarabasiAlbert(n, 5, int64(n))
		lm, err := highway.SelectLandmarks(g, 20, highway.ByDegree, 0)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("HLP/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := highway.BuildIndex(g, lm); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("HL/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := highway.BuildIndexSequential(g, lm); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("FD/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := highway.BuildFD(context.Background(), g, lm); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Figure 6: distance distribution -----------------------------------------

func BenchmarkFig6Distribution(b *testing.B) {
	g, lm, pairs := fixtures(b)
	ix, err := highway.BuildIndex(g, lm)
	if err != nil {
		b.Fatal(err)
	}
	sr := ix.NewSearcher()
	o := workload.OracleFunc(sr.Distance)
	b.ResetTimer()
	var mean float64
	for i := 0; i < b.N; i++ {
		dist := workload.DistanceDistribution(o, pairs)
		mean = dist.Mean()
	}
	b.ReportMetric(mean, "mean-distance")
}

// --- Figure 7: construction and query time vs #landmarks ----------------------

func BenchmarkFig7BuildHL(b *testing.B) {
	g, _, _ := fixtures(b)
	for _, k := range []int{10, 20, 30, 40, 50} {
		lm, err := highway.SelectLandmarks(g, k, highway.ByDegree, 0)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := highway.BuildIndexSequential(g, lm); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFig7QueryHL(b *testing.B) {
	g, _, pairs := fixtures(b)
	for _, k := range []int{10, 20, 30, 40, 50} {
		lm, err := highway.SelectLandmarks(g, k, highway.ByDegree, 0)
		if err != nil {
			b.Fatal(err)
		}
		ix, err := highway.BuildIndex(g, lm)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			sr := ix.NewSearcher()
			for i := 0; i < b.N; i++ {
				p := pairs[i%len(pairs)]
				sr.Distance(p.S, p.T)
			}
		})
	}
}

// --- Figure 8: labelling size vs #landmarks -----------------------------------

func BenchmarkFig8Sizes(b *testing.B) {
	g, _, _ := fixtures(b)
	for _, k := range []int{10, 20, 30, 40, 50} {
		lm, err := highway.SelectLandmarks(g, k, highway.ByDegree, 0)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			var ix *highway.Index
			for i := 0; i < b.N; i++ {
				ix, err = highway.BuildIndex(g, lm)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(ix.SizeBytes32()), "HL-bytes")
		})
	}
}

// --- Figure 9: pair coverage vs #landmarks ------------------------------------

func BenchmarkFig9Coverage(b *testing.B) {
	g, _, pairs := fixtures(b)
	sample := pairs[:1024]
	for _, k := range []int{10, 20, 30, 40, 50} {
		lm, err := highway.SelectLandmarks(g, k, highway.ByDegree, 0)
		if err != nil {
			b.Fatal(err)
		}
		ix, err := highway.BuildIndex(g, lm)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			sr := ix.NewSearcher()
			var cov float64
			for i := 0; i < b.N; i++ {
				cov = workload.PairCoverage(ix, workload.OracleFunc(sr.Distance), sample)
			}
			b.ReportMetric(cov, "coverage")
		})
	}
}
