package highway

import (
	"context"

	"highway/internal/hlclient"
	"highway/internal/wire"
)

// Client is the native client for the binary wire protocol
// (PROTOCOL.md): a connection-pooled handle whose Distance call costs
// one framed round trip instead of an HTTP request, and whose
// DistanceBatch carries thousands of pairs per round trip. Create one
// with Dial; all methods are safe for concurrent use and reconnect
// transparently across server restarts.
type Client = hlclient.Client

// ClientConfig tunes a Client (pool size, dial timeout, retry policy,
// circuit breaker); the zero value is ready for use.
type ClientConfig = hlclient.Config

// ErrClientClosed is returned by every Client call after Close.
var ErrClientClosed = hlclient.ErrClientClosed

// ErrCircuitOpen is returned without touching the network while the
// client's circuit breaker is open: enough consecutive transport
// failures proved the server unreachable, and calls fail fast until a
// cooldown expires and a probe succeeds (ClientConfig.BreakerThreshold
// to tune, negative to disable).
var ErrCircuitOpen = hlclient.ErrCircuitOpen

// Dial connects to a server's binary listener (Server.ServeBinary, or
// "hlserve serve -binaddr") at addr and performs the protocol
// handshake, so a peer not speaking the protocol fails here rather
// than on the first query.
func Dial(ctx context.Context, addr string, cfg ClientConfig) (*Client, error) {
	return hlclient.Dial(ctx, addr, cfg)
}

// MultiClient is a Client spread across several endpoints of a replica
// set: calls round-robin, each endpoint keeps its own connection pool
// and circuit breaker, and a call that finds an endpoint's breaker open
// fails over to the next instead of failing fast. Create one with
// DialMulti.
type MultiClient = hlclient.MultiClient

// DialMulti connects to every address (entries may themselves be
// comma-separated lists) with one Client per endpoint. All endpoints
// must handshake successfully, or the whole dial fails.
func DialMulti(ctx context.Context, addrs []string, cfg ClientConfig) (*MultiClient, error) {
	return hlclient.DialMulti(ctx, addrs, cfg)
}

// RemoteError is a server-reported request failure (an in-band Error
// frame): the request was rejected — out-of-range vertex, oversized
// batch, read-only server — but the connection stays healthy and
// pooled. Distinguish it from transport errors with errors.As.
type RemoteError = wire.RemoteError

// RemoteErrorCode classifies a RemoteError; the values are the wire
// protocol's error codes (PROTOCOL.md).
type RemoteErrorCode = wire.ErrorCode

const (
	// RemoteMalformed: the request payload did not parse.
	RemoteMalformed = wire.CodeMalformed
	// RemoteRange: a vertex id was outside [0, n).
	RemoteRange = wire.CodeRange
	// RemoteTooLarge: the batch exceeded the server's MaxBatch.
	RemoteTooLarge = wire.CodeTooLarge
	// RemoteReadOnly: an insert was sent to a read-only server.
	RemoteReadOnly = wire.CodeReadOnly
	// RemoteClosed: the server is shutting down.
	RemoteClosed = wire.CodeClosed
	// RemoteInternal: the server failed to apply an accepted request.
	RemoteInternal = wire.CodeInternal
	// RemoteOverloaded: the admission gate shed the request before any
	// work; retrying after a short backoff is always safe (the client
	// does so itself unless retries are disabled).
	RemoteOverloaded = wire.CodeOverloaded
	// RemoteDegraded: the server is in degraded read-only mode (its WAL
	// is unwritable); the insert was not applied, reads still work.
	RemoteDegraded = wire.CodeDegraded
	// RemoteFenced: a replication frame carried a stale epoch — the
	// sender is a deposed primary or replaying applied history
	// (DESIGN.md "Replication & routing").
	RemoteFenced = wire.CodeFenced
	// RemoteUnavailable: a router could not reach any healthy member
	// for the request; retry after a short backoff.
	RemoteUnavailable = wire.CodeUnavailable
)
