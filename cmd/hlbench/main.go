// Command hlbench regenerates the paper's tables and figures over the
// synthetic stand-in datasets (see DESIGN.md's per-experiment index).
//
// Usage:
//
//	hlbench -exp all                      # every table and figure
//	hlbench -exp table2,table3 -shrink 4  # quicker, smaller stand-ins
//	hlbench -exp fig7 -datasets Skitter,Flickr -pairs 10000
//	hlbench -exp table2 -json runs.json   # machine-readable build report
//	                                      # (DNF rows carry method + reason)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"highway/internal/bench"
	"highway/internal/datasets"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "hlbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("hlbench", flag.ContinueOnError)
	var (
		exp    = fs.String("exp", "all", "comma-separated experiment ids: "+strings.Join(bench.ExperimentIDs(), ",")+" or all")
		ds     = fs.String("datasets", "", "comma-separated dataset names (default: all 12; 'small' = the quick subset)")
		shrink = fs.Int("shrink", 1, "dataset shrink divisor (1 = standard ~1:100 stand-ins)")
		k      = fs.Int("k", 20, "landmarks for Table 2/3 and Figure 1")
		pairs  = fs.Int("pairs", 100_000, "sampled query pairs")
		slow   = fs.Int("slowpairs", 1_000, "pairs for slow online methods (Bi-BFS, IS-L)")
		budget = fs.Duration("budget", 60*time.Second, "per-method DNF build budget")
		work   = fs.Int("workers", 0, "HL-P workers (0 = all cores)")
		seed   = fs.Int64("seed", 42, "workload seed")
		list   = fs.Bool("list", false, "list experiment ids and datasets, then exit")
		jsonTo = fs.String("json", "", "also write a machine-readable build report to this file (DNF rows carry the method name and reason)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		fmt.Println("experiments:", strings.Join(bench.ExperimentIDs(), " "))
		fmt.Println("datasets:   ", strings.Join(datasets.Names(), " "))
		return nil
	}

	var names []string
	switch *ds {
	case "":
	case "small":
		for _, d := range datasets.SmallSet() {
			names = append(names, d.Name)
		}
	default:
		names = strings.Split(*ds, ",")
	}

	r, err := bench.NewRunner(bench.Config{
		Out:         os.Stdout,
		Datasets:    names,
		Shrink:      *shrink,
		Landmarks:   *k,
		Pairs:       *pairs,
		SlowPairs:   *slow,
		BuildBudget: *budget,
		Workers:     *work,
		Seed:        *seed,
		Progress:    os.Stderr,
	})
	if err != nil {
		return err
	}
	if err := r.Run(strings.Split(*exp, ",")); err != nil {
		return err
	}
	if *jsonTo != "" {
		f, err := os.Create(*jsonTo)
		if err != nil {
			return err
		}
		if err := r.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "[hlbench] wrote %s (%d builds)\n", *jsonTo, len(r.Results()))
	}
	return nil
}
