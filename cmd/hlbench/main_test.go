package main

import "testing"

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunTinyExperiment(t *testing.T) {
	err := run([]string{
		"-exp", "table1",
		"-datasets", "Skitter",
		"-shrink", "64",
		"-pairs", "50",
		"-slowpairs", "10",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunSmallAlias(t *testing.T) {
	err := run([]string{
		"-exp", "table1",
		"-datasets", "small",
		"-shrink", "64",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{"-exp", "bogus", "-datasets", "Skitter", "-shrink", "64"}); err == nil {
		t.Error("bogus experiment accepted")
	}
	if err := run([]string{"-datasets", "NotReal"}); err == nil {
		t.Error("bogus dataset accepted")
	}
}
