// Command hlbuild constructs a highway cover distance labelling for a
// graph file and writes it next to the graph.
//
// Usage:
//
//	hlbuild -graph web.hwg -k 20 -out web.idx
//	hlbuild -graph edges.txt -k 40 -strategy degree -workers 8 -verify 1000
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"highway"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "hlbuild:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("hlbuild", flag.ContinueOnError)
	var (
		graphPath = fs.String("graph", "", "graph file: binary (.hwg) or text edge list (required)")
		k         = fs.Int("k", 20, "number of landmarks")
		strategy  = fs.String("strategy", "degree", "landmark strategy: degree | random | closeness | degree-spread")
		seed      = fs.Int64("seed", 42, "seed for randomized strategies")
		workers   = fs.Int("workers", 0, "parallel pruned BFSs (0 = all cores, 1 = sequential HL)")
		out       = fs.String("out", "", "index output path (default: graph path + .idx)")
		verify    = fs.Int("verify", 0, "cross-check this many random pairs against BFS after building")
		timeout   = fs.Duration("timeout", 0, "abort construction after this duration (0 = none)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *graphPath == "" {
		return fmt.Errorf("-graph is required")
	}
	g, err := loadGraph(*graphPath)
	if err != nil {
		return err
	}
	fmt.Printf("graph: n=%d m=%d\n", g.NumVertices(), g.NumEdges())

	lm, err := highway.SelectLandmarks(g, *k, highway.LandmarkStrategy(*strategy), *seed)
	if err != nil {
		return err
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	start := time.Now()
	ix, err := highway.BuildIndexOpts(ctx, g, lm, highway.BuildOptions{Workers: *workers})
	if err != nil {
		return err
	}
	fmt.Printf("built in %s: %s\n", time.Since(start).Round(time.Millisecond), ix.Stats())

	if *verify > 0 {
		if err := ix.Verify(*verify, *seed); err != nil {
			return err
		}
		fmt.Printf("verified %d random pairs against BFS\n", *verify)
	}

	dest := *out
	if dest == "" {
		dest = *graphPath + ".idx"
	}
	if err := ix.Save(dest); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", dest)
	return nil
}

// loadGraph auto-detects the binary format by extension, falling back to
// text parsing.
func loadGraph(path string) (*highway.Graph, error) {
	if strings.HasSuffix(path, ".hwg") || strings.HasSuffix(path, ".bin") {
		return highway.LoadGraph(path)
	}
	if g, err := highway.LoadGraph(path); err == nil {
		return g, nil
	}
	return highway.LoadEdgeList(path)
}
