// Command hlbuild constructs a highway cover distance labelling for a
// graph file and writes it next to the graph.
//
// Usage:
//
//	hlbuild -graph web.hwg -k 20 -out web.idx
//	hlbuild -graph edges.txt -k 40 -strategy degree -workers 8 -verify 1000
//	hlbuild -graph web.hwg -method pll -bitparallel 50  (any registry method)
//	hlbuild -graph web.hwg -method isl -out web.isl.idx
//	hlbuild -graph web.hwg -k 20 -progress           (log per-landmark BFS completion)
//	hlbuild -graph web.hwg -k 20 -direction topdown  (disable direction optimization)
//	hlbuild -graph web.hwg -k 20 -format v1          (old on-disk format, hl only)
//	hlbuild migrate -graph web.hwg -in web.idx -out web.idx.v2
//
// After a build, hlbuild reports wall time, worker count and the
// traversal-direction statistics of the direction-optimizing engine
// (top-down vs bottom-up levels, edges scanned per direction).
//
// The migrate subcommand rewrites an existing index file (either format)
// into the target format — by default the current one (v2, checksummed
// sections) — verifying it against its graph on the way.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"highway"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "hlbuild:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) > 0 && args[0] == "migrate" {
		return runMigrate(args[1:])
	}
	fs := flag.NewFlagSet("hlbuild", flag.ContinueOnError)
	var (
		graphPath  = fs.String("graph", "", "graph file: binary (.hwg) or text edge list (required)")
		methodName = fs.String("method", "hl", "labelling method: "+strings.Join(highway.MethodNames(), " | "))
		k          = fs.Int("k", 20, "number of landmarks")
		strategy   = fs.String("strategy", "degree", "landmark strategy: degree | random | closeness | degree-spread")
		seed       = fs.Int64("seed", 42, "seed for randomized strategies")
		workers    = fs.Int("workers", 0, "parallel pruned BFSs (0 = all cores, 1 = sequential HL)")
		bp         = fs.Int("bitparallel", 0, "bit-parallel trees (pll: tree count, fd: >0 enables one per landmark)")
		out        = fs.String("out", "", "index output path (default: graph path + .idx)")
		verify     = fs.Int("verify", 0, "cross-check this many random pairs against BFS after building")
		timeout    = fs.Duration("timeout", 0, "abort construction after this duration (0 = none)")
		format     = fs.String("format", "v2", "index file format for -method hl: v2 (checksummed sections) | v1 (legacy)")
		direction  = fs.String("direction", "auto", "pruned-BFS traversal: auto (direction-optimizing) | topdown | bottomup")
		progress   = fs.Bool("progress", false, "log one line per completed landmark BFS to stderr")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	m, err := highway.MethodByName(*methodName)
	if err != nil {
		return err
	}
	f, err := highway.ParseIndexFormat(*format)
	if err != nil {
		return err
	}
	if m.Name != "hl" && f != highway.IndexFormatV2 {
		return fmt.Errorf("-format %s is an hl knob; method %q always writes the tagged v2 container", f, m.Name)
	}
	dir, err := parseDirection(*direction)
	if err != nil {
		return err
	}
	if *graphPath == "" {
		return fmt.Errorf("-graph is required")
	}
	if *k <= 0 {
		return fmt.Errorf("-k must be positive, got %d", *k)
	}
	g, err := loadGraph(*graphPath)
	if err != nil {
		return err
	}
	fmt.Printf("graph: n=%d m=%d\n", g.NumVertices(), g.NumEdges())

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	opts := []highway.BuildOption{
		highway.WithLandmarkCount(*k),
		highway.WithStrategy(highway.LandmarkStrategy(*strategy)),
		highway.WithSeed(*seed),
		highway.WithWorkers(*workers),
		highway.WithDirection(dir),
		highway.WithBitParallel(*bp),
	}
	if *progress {
		opts = append(opts, highway.WithProgress(func(done, total int) {
			fmt.Fprintf(os.Stderr, "hlbuild: landmark BFS %d/%d done\n", done, total)
		}))
	}
	start := time.Now()
	ix, err := highway.Build(ctx, g, m.Name, opts...)
	if err != nil {
		return err
	}
	fmt.Printf("built %s in %s: %s\n", m.Name, time.Since(start).Round(time.Millisecond), ix.Stats())
	if hl, ok := ix.(*highway.Index); ok {
		bs := hl.BuildStats()
		tr := bs.Traversal
		fmt.Printf("workers=%d levels=%d (top-down %d, bottom-up %d) edges scanned=%d (top-down %d, bottom-up %d)\n",
			bs.Workers, tr.Levels(), tr.TopDownLevels, tr.BottomUpLevels,
			tr.EdgesScanned(), tr.EdgesTopDown, tr.EdgesBottomUp)
	}

	if *verify > 0 {
		if err := highway.VerifyIndex(g, ix, *verify, *seed); err != nil {
			return err
		}
		fmt.Printf("verified %d random pairs against BFS\n", *verify)
	}

	dest := *out
	if dest == "" {
		dest = *graphPath + ".idx"
	}
	if hl, ok := ix.(*highway.Index); ok {
		if err := highway.SaveIndexAs(hl, dest, f); err != nil {
			return err
		}
		fmt.Printf("wrote %s (format %s)\n", dest, f)
		return nil
	}
	if err := ix.Save(dest); err != nil {
		return err
	}
	fmt.Printf("wrote %s (method %s, tagged v2 container)\n", dest, m.Name)
	return nil
}

// runMigrate rewrites an index file into the target format.
func runMigrate(args []string) error {
	fs := flag.NewFlagSet("hlbuild migrate", flag.ContinueOnError)
	var (
		graphPath = fs.String("graph", "", "graph the index was built on (required)")
		in        = fs.String("in", "", "index file to migrate (required)")
		out       = fs.String("out", "", "output path (default: input path + .v2 / .v1)")
		format    = fs.String("format", "v2", "target format: v2 | v1")
		verify    = fs.Int("verify", 100, "cross-check this many random pairs against BFS before writing (0 = skip)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *graphPath == "" || *in == "" {
		return fmt.Errorf("migrate: -graph and -in are required")
	}
	target, err := highway.ParseIndexFormat(*format)
	if err != nil {
		return err
	}
	g, err := loadGraph(*graphPath)
	if err != nil {
		return err
	}
	ix, from, err := highway.LoadIndexFormat(*in, g)
	if err != nil {
		return err
	}
	fmt.Printf("loaded %s (format %s): %s\n", *in, from, ix.Stats())
	if *verify > 0 {
		if err := ix.Verify(*verify, 1); err != nil {
			return fmt.Errorf("migrate: refusing to rewrite a corrupt index: %w", err)
		}
	}
	dest := *out
	if dest == "" {
		dest = fmt.Sprintf("%s.%s", *in, target)
	}
	if err := highway.SaveIndexAs(ix, dest, target); err != nil {
		return err
	}
	fmt.Printf("wrote %s (format %s)\n", dest, target)
	return nil
}

// parseDirection maps the -direction flag to a build direction.
func parseDirection(s string) (highway.BuildDirection, error) {
	switch s {
	case "auto", "":
		return highway.DirectionAuto, nil
	case "topdown":
		return highway.DirectionTopDown, nil
	case "bottomup":
		return highway.DirectionBottomUp, nil
	}
	return 0, fmt.Errorf("unknown -direction %q (want auto | topdown | bottomup)", s)
}

// loadGraph auto-detects the binary format by extension, falling back to
// text parsing.
func loadGraph(path string) (*highway.Graph, error) {
	if strings.HasSuffix(path, ".hwg") || strings.HasSuffix(path, ".bin") {
		return highway.LoadGraph(path)
	}
	if g, err := highway.LoadGraph(path); err == nil {
		return g, nil
	}
	return highway.LoadEdgeList(path)
}
