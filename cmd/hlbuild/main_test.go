package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"highway"
)

func writeGraph(t *testing.T) string {
	t.Helper()
	g := highway.BarabasiAlbert(400, 3, 5)
	path := filepath.Join(t.TempDir(), "g.hwg")
	if err := highway.SaveGraph(g, path); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunBuild(t *testing.T) {
	gp := writeGraph(t)
	if err := run([]string{"-graph", gp, "-k", "8", "-verify", "200"}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(gp + ".idx"); err != nil {
		t.Fatal("default index path not written:", err)
	}
	// Load it back through the facade.
	g, err := highway.LoadGraph(gp)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := highway.LoadIndex(gp+".idx", g)
	if err != nil {
		t.Fatal(err)
	}
	if ix.NumLandmarks() != 8 {
		t.Fatalf("k = %d", ix.NumLandmarks())
	}
}

func TestRunBuildTextGraph(t *testing.T) {
	g := highway.BarabasiAlbert(100, 2, 2)
	dir := t.TempDir()
	gp := filepath.Join(dir, "edges.txt")
	f, err := os.Create(gp)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.WriteEdgeList(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	out := filepath.Join(dir, "custom.idx")
	if err := run([]string{"-graph", gp, "-k", "4", "-out", out, "-workers", "1"}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(out); err != nil {
		t.Fatal(err)
	}
}

func TestRunBuildStrategy(t *testing.T) {
	gp := writeGraph(t)
	if err := run([]string{"-graph", gp, "-k", "5", "-strategy", "random", "-seed", "9"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunBuildFormats(t *testing.T) {
	gp := writeGraph(t)
	g, err := highway.LoadGraph(gp)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	v1 := filepath.Join(dir, "g.v1.idx")
	v2 := filepath.Join(dir, "g.v2.idx")
	if err := run([]string{"-graph", gp, "-k", "6", "-out", v1, "-format", "v1"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-graph", gp, "-k", "6", "-out", v2}); err != nil {
		t.Fatal(err)
	}
	for path, want := range map[string]highway.IndexFormat{v1: highway.IndexFormatV1, v2: highway.IndexFormatV2} {
		_, f, err := highway.LoadIndexFormat(path, g)
		if err != nil {
			t.Fatal(err)
		}
		if f != want {
			t.Fatalf("%s: format %v, want %v", path, f, want)
		}
	}
}

func TestRunMigrate(t *testing.T) {
	gp := writeGraph(t)
	g, err := highway.LoadGraph(gp)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	v1 := filepath.Join(dir, "old.idx")
	if err := run([]string{"-graph", gp, "-k", "7", "-out", v1, "-format", "v1"}); err != nil {
		t.Fatal(err)
	}
	// Default migrate target is v2, default output path appends ".v2".
	if err := run([]string{"migrate", "-graph", gp, "-in", v1}); err != nil {
		t.Fatal(err)
	}
	ix2, f, err := highway.LoadIndexFormat(v1+".v2", g)
	if err != nil {
		t.Fatal(err)
	}
	if f != highway.IndexFormatV2 {
		t.Fatalf("migrated file is %v, want v2", f)
	}
	ix1, _, err := highway.LoadIndexFormat(v1, g)
	if err != nil {
		t.Fatal(err)
	}
	if ix1.NumEntries() != ix2.NumEntries() || ix1.NumLandmarks() != ix2.NumLandmarks() {
		t.Fatal("migration changed the index")
	}
	// And back down to v1 with an explicit output.
	down := filepath.Join(dir, "down.idx")
	if err := run([]string{"migrate", "-graph", gp, "-in", v1 + ".v2", "-out", down, "-format", "v1"}); err != nil {
		t.Fatal(err)
	}
	if _, f, err = highway.LoadIndexFormat(down, g); err != nil || f != highway.IndexFormatV1 {
		t.Fatalf("downgrade: format %v err %v", f, err)
	}
}

func TestRunMigrateErrors(t *testing.T) {
	gp := writeGraph(t)
	if err := run([]string{"migrate"}); err == nil {
		t.Error("migrate without -graph/-in accepted")
	}
	if err := run([]string{"migrate", "-graph", gp, "-in", "/does/not/exist.idx"}); err == nil {
		t.Error("missing input index accepted")
	}
	if err := run([]string{"migrate", "-graph", gp, "-in", gp, "-format", "v3"}); err == nil {
		t.Error("unknown target format accepted")
	}
}

func TestRunBuildErrors(t *testing.T) {
	if err := run([]string{}); err == nil {
		t.Error("missing -graph accepted")
	}
	if err := run([]string{"-graph", "/does/not/exist.hwg"}); err == nil {
		t.Error("missing file accepted")
	}
	gp := writeGraph(t)
	if err := run([]string{"-graph", gp, "-k", "0"}); err == nil {
		t.Error("k=0 accepted")
	}
	if err := run([]string{"-graph", gp, "-strategy", "bogus"}); err == nil {
		t.Error("bogus strategy accepted")
	}
	if err := run([]string{"-graph", gp, "-format", "v9"}); err == nil {
		t.Error("unknown format accepted")
	}
	if err := run([]string{"-graph", gp, "-direction", "sideways"}); err == nil {
		t.Error("unknown direction accepted")
	}
}

// TestRunBuildDirections builds the same graph with every -direction and
// -progress enabled; the index files must be byte-identical.
func TestRunBuildDirections(t *testing.T) {
	gp := writeGraph(t)
	var want []byte
	for _, dir := range []string{"auto", "topdown", "bottomup"} {
		out := filepath.Join(t.TempDir(), dir+".idx")
		if err := run([]string{"-graph", gp, "-k", "8", "-direction", dir, "-progress", "-out", out}); err != nil {
			t.Fatalf("direction %s: %v", dir, err)
		}
		raw, err := os.ReadFile(out)
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = raw
		} else if !bytes.Equal(want, raw) {
			t.Fatalf("direction %s wrote different index bytes", dir)
		}
	}
}

// TestRunBuildMethods drives -method through every registry entry: the
// written file must carry the method tag, load back through
// LoadIndexAny, and answer a query.
func TestRunBuildMethods(t *testing.T) {
	gp := writeGraph(t)
	g, err := highway.LoadGraph(gp)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range highway.Methods() {
		out := filepath.Join(t.TempDir(), m.Name+".idx")
		args := []string{"-graph", gp, "-method", m.Name, "-k", "6", "-out", out, "-verify", "50"}
		if m.Name == "pll" {
			args = append(args, "-bitparallel", "4")
		}
		if err := run(args); err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		tag, err := highway.SniffIndexMethod(out)
		if err != nil || tag != m.Name {
			t.Fatalf("%s: sniffed tag %q, err %v", m.Name, tag, err)
		}
		ix, err := highway.LoadIndexAny(out, g)
		if err != nil {
			t.Fatalf("%s: LoadIndexAny: %v", m.Name, err)
		}
		if d := ix.Distance(0, 1); d < 0 {
			t.Fatalf("%s: d(0,1) = %d on a connected BA graph", m.Name, d)
		}
	}
	// -format is an hl-only knob.
	if err := run([]string{"-graph", gp, "-method", "pll", "-format", "v1"}); err == nil {
		t.Error("-method pll -format v1 accepted")
	}
	if err := run([]string{"-graph", gp, "-method", "bogus"}); err == nil {
		t.Error("unknown -method accepted")
	}
}
