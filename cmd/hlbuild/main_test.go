package main

import (
	"os"
	"path/filepath"
	"testing"

	"highway"
)

func writeGraph(t *testing.T) string {
	t.Helper()
	g := highway.BarabasiAlbert(400, 3, 5)
	path := filepath.Join(t.TempDir(), "g.hwg")
	if err := highway.SaveGraph(g, path); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunBuild(t *testing.T) {
	gp := writeGraph(t)
	if err := run([]string{"-graph", gp, "-k", "8", "-verify", "200"}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(gp + ".idx"); err != nil {
		t.Fatal("default index path not written:", err)
	}
	// Load it back through the facade.
	g, err := highway.LoadGraph(gp)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := highway.LoadIndex(gp+".idx", g)
	if err != nil {
		t.Fatal(err)
	}
	if ix.NumLandmarks() != 8 {
		t.Fatalf("k = %d", ix.NumLandmarks())
	}
}

func TestRunBuildTextGraph(t *testing.T) {
	g := highway.BarabasiAlbert(100, 2, 2)
	dir := t.TempDir()
	gp := filepath.Join(dir, "edges.txt")
	f, err := os.Create(gp)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.WriteEdgeList(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	out := filepath.Join(dir, "custom.idx")
	if err := run([]string{"-graph", gp, "-k", "4", "-out", out, "-workers", "1"}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(out); err != nil {
		t.Fatal(err)
	}
}

func TestRunBuildStrategy(t *testing.T) {
	gp := writeGraph(t)
	if err := run([]string{"-graph", gp, "-k", "5", "-strategy", "random", "-seed", "9"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunBuildErrors(t *testing.T) {
	if err := run([]string{}); err == nil {
		t.Error("missing -graph accepted")
	}
	if err := run([]string{"-graph", "/does/not/exist.hwg"}); err == nil {
		t.Error("missing file accepted")
	}
	gp := writeGraph(t)
	if err := run([]string{"-graph", gp, "-k", "0"}); err == nil {
		t.Error("k=0 accepted")
	}
	if err := run([]string{"-graph", gp, "-strategy", "bogus"}); err == nil {
		t.Error("bogus strategy accepted")
	}
}
