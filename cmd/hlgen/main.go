// Command hlgen generates synthetic networks: either one of the paper's
// 12 Table 1 stand-ins by name, or a parameterized graph from a generator
// family. Output is the compact binary graph format (default) or a text
// edge list.
//
// Usage:
//
//	hlgen -dataset Skitter -out skitter.hwg
//	hlgen -family ba -n 100000 -deg 10 -seed 7 -out social.hwg
//	hlgen -family rmat -scale 18 -deg 16 -out web.hwg -text
package main

import (
	"flag"
	"fmt"
	"os"

	"highway"
	"highway/internal/datasets"
	"highway/internal/gen"
	"highway/internal/graph"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "hlgen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("hlgen", flag.ContinueOnError)
	var (
		dataset = fs.String("dataset", "", "Table 1 stand-in name (e.g. Skitter); see -list")
		list    = fs.Bool("list", false, "list the Table 1 stand-in names and exit")
		shrink  = fs.Int("shrink", 1, "shrink divisor for -dataset sizes")
		family  = fs.String("family", "", "generator family: ba | rmat | er | ws")
		n       = fs.Int("n", 100000, "vertex count (ba, er, ws)")
		deg     = fs.Int("deg", 10, "edges per vertex (ba attach count, rmat edge factor, ws neighbors)")
		scale   = fs.Uint("scale", 17, "rmat: log2 of the vertex count")
		beta    = fs.Float64("beta", 0.1, "ws: rewiring probability")
		seed    = fs.Int64("seed", 42, "generator seed")
		lcc     = fs.Bool("lcc", true, "reduce to the largest connected component")
		text    = fs.Bool("text", false, "write a text edge list instead of binary")
		out     = fs.String("out", "", "output path (required)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, d := range datasets.Registry {
			fmt.Printf("%-12s %-8s paper n=%-5s m=%-5s\n", d.Name, d.Type, d.PaperN, d.PaperM)
		}
		return nil
	}
	if *out == "" {
		return fmt.Errorf("-out is required")
	}

	var g *graph.Graph
	switch {
	case *dataset != "":
		d, err := datasets.ByName(*dataset)
		if err != nil {
			return err
		}
		g = d.Generate(*shrink)
	case *family != "":
		switch *family {
		case "ba":
			g = highway.BarabasiAlbert(*n, *deg/2, *seed)
		case "rmat":
			g = highway.RMAT(*scale, *deg, *seed)
		case "er":
			g = highway.ErdosRenyi(*n, int64(*n)*int64(*deg)/2, *seed)
		case "ws":
			g = gen.WattsStrogatz(*n, *deg/2, *beta, *seed)
		default:
			return fmt.Errorf("unknown family %q (want ba, rmat, er or ws)", *family)
		}
		if *lcc {
			g, _ = highway.LargestComponent(g)
		}
	default:
		return fmt.Errorf("one of -dataset or -family is required")
	}

	if *text {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		if err := g.WriteEdgeList(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	} else if err := highway.SaveGraph(g, *out); err != nil {
		return err
	}
	maxDeg, _ := g.MaxDegree()
	fmt.Printf("wrote %s: n=%d m=%d avg.deg=%.2f max.deg=%d |G|=%d bytes\n",
		*out, g.NumVertices(), g.NumEdges(), g.AvgDegree(), maxDeg, g.SizeBytes())
	return nil
}
