package main

import (
	"os"
	"path/filepath"
	"testing"

	"highway"
)

func TestRunBA(t *testing.T) {
	out := filepath.Join(t.TempDir(), "g.hwg")
	if err := run([]string{"-family", "ba", "-n", "500", "-deg", "6", "-seed", "3", "-out", out}); err != nil {
		t.Fatal(err)
	}
	g, err := highway.LoadGraph(out)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 500 {
		t.Fatalf("n = %d", g.NumVertices())
	}
}

func TestRunDataset(t *testing.T) {
	out := filepath.Join(t.TempDir(), "d.hwg")
	if err := run([]string{"-dataset", "Skitter", "-shrink", "64", "-out", out}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(out); err != nil {
		t.Fatal(err)
	}
}

func TestRunTextOutput(t *testing.T) {
	out := filepath.Join(t.TempDir(), "g.txt")
	if err := run([]string{"-family", "er", "-n", "50", "-deg", "4", "-out", out, "-text"}); err != nil {
		t.Fatal(err)
	}
	g, err := highway.LoadEdgeList(out)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() == 0 {
		t.Fatal("no edges in text output")
	}
}

func TestRunWS(t *testing.T) {
	out := filepath.Join(t.TempDir(), "ws.hwg")
	if err := run([]string{"-family", "ws", "-n", "100", "-deg", "4", "-beta", "0.2", "-out", out}); err != nil {
		t.Fatal(err)
	}
}

func TestRunRMAT(t *testing.T) {
	out := filepath.Join(t.TempDir(), "rm.hwg")
	if err := run([]string{"-family", "rmat", "-scale", "8", "-deg", "4", "-out", out}); err != nil {
		t.Fatal(err)
	}
}

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{}); err == nil {
		t.Error("missing -out/-dataset accepted")
	}
	if err := run([]string{"-out", "/tmp/x.hwg"}); err == nil {
		t.Error("missing -dataset/-family accepted")
	}
	if err := run([]string{"-family", "bogus", "-out", filepath.Join(t.TempDir(), "x")}); err == nil {
		t.Error("bogus family accepted")
	}
	if err := run([]string{"-dataset", "bogus", "-out", filepath.Join(t.TempDir(), "x")}); err == nil {
		t.Error("bogus dataset accepted")
	}
}
