// Command hlquery answers exact distance queries against a prebuilt
// index, in one of three modes:
//
//   - one-shot: hlquery -graph g.hwg -index g.hwg.idx -s 12 -t 34
//   - REPL: hlquery -graph g.hwg -index g.hwg.idx  (reads "s t" lines from stdin)
//   - HTTP: hlquery -graph g.hwg -index g.hwg.idx -serve :8080
//     then GET /distance?s=12&t=34 returns {"s":12,"t":34,"distance":3}.
//
// The -serve mode is the same serving subsystem as hlserve (batch
// endpoint, /stats counters, /healthz, graceful shutdown); hlserve adds
// the offline batch/load pipelines.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"highway"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "hlquery:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("hlquery", flag.ContinueOnError)
	var (
		graphPath = fs.String("graph", "", "binary graph file (required)")
		indexPath = fs.String("index", "", "index file (default: graph path + .idx)")
		s         = fs.Int("s", -1, "one-shot: source vertex")
		t         = fs.Int("t", -1, "one-shot: target vertex")
		serve     = fs.String("serve", "", "HTTP listen address (e.g. :8080)")
		stats     = fs.Bool("stats", false, "print index format and statistics, then exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *graphPath == "" {
		return fmt.Errorf("-graph is required")
	}
	g, err := highway.LoadGraph(*graphPath)
	if err != nil {
		return err
	}
	ip := *indexPath
	if ip == "" {
		ip = *graphPath + ".idx"
	}
	// Any registered method's index loads transparently: the file's
	// method tag selects the decoder (hl for untagged/legacy files).
	ix, err := highway.LoadIndexAny(ip, g)
	if err != nil {
		return err
	}

	switch {
	case *stats:
		st := ix.Stats()
		fmt.Printf("index: %s\nmethod: %s\nstats: %s\n", ip, st.Method, st)
		// Capability discovery: which optional execution surfaces this
		// method's searchers offer (vectorized batch, source-to-many,
		// online insertion) — the same probe the serving layer uses.
		fmt.Printf("capabilities: %s\n", highway.IndexCapabilities(ix))
		if hl, ok := ix.(*highway.Index); ok {
			// hl files exist in two formats; surface which one (hlbuild
			// migrate rewrites between them) and the real footprint. The
			// format IS the file magic — no need to re-decode the index.
			format, err := indexFileFormat(ip)
			if err != nil {
				return err
			}
			fmt.Printf("format: %s\nmemory: %d bytes\n", format, hl.ActualBytes())
		}
		return nil
	case *s >= 0 && *t >= 0:
		if err := checkVertex(g, *s); err != nil {
			return err
		}
		if err := checkVertex(g, *t); err != nil {
			return err
		}
		return oneShot(ix, int32(*s), int32(*t))
	case *serve != "":
		return serveHTTP(ix, *serve)
	default:
		return repl(ix, g)
	}
}

// indexFileFormat maps the index file's magic to its format name
// without decoding the file a second time (LoadIndexAny already
// validated it in full).
func indexFileFormat(path string) (highway.IndexFormat, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	var magic [8]byte
	if _, err := io.ReadFull(f, magic[:]); err != nil {
		return 0, err
	}
	if string(magic[:]) == "HWLIDX01" {
		return highway.IndexFormatV1, nil
	}
	return highway.IndexFormatV2, nil
}

// checkVertex validates an int vertex id before it is narrowed to
// int32: ids beyond int32 must be rejected, not silently wrapped.
func checkVertex(g *highway.Graph, v int) error {
	if v < 0 || v > math.MaxInt32 {
		return fmt.Errorf("vertex %d out of range [0,%d)", v, g.NumVertices())
	}
	return g.CheckVertex(int32(v))
}

func oneShot(ix highway.DistanceIndex, s, t int32) error {
	start := time.Now()
	d := ix.Distance(s, t)
	fmt.Printf("d(%d,%d) = %d  (%s)\n", s, t, d, time.Since(start))
	return nil
}

func repl(ix highway.DistanceIndex, g *highway.Graph) error {
	sr := ix.NewSearcher()
	sc := bufio.NewScanner(os.Stdin)
	fmt.Println("enter queries as: s t   (EOF to quit)")
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		if len(fields) != 2 {
			fmt.Println("want two vertex ids")
			continue
		}
		s, err1 := strconv.Atoi(fields[0])
		t, err2 := strconv.Atoi(fields[1])
		if err1 != nil || err2 != nil ||
			checkVertex(g, s) != nil || checkVertex(g, t) != nil {
			fmt.Printf("bad query %q\n", sc.Text())
			continue
		}
		start := time.Now()
		d := sr.Distance(int32(s), int32(t))
		fmt.Printf("%d  (%s)\n", d, time.Since(start))
	}
	return sc.Err()
}

// serveHTTP delegates to the shared serving subsystem so hlquery -serve
// and hlserve expose one API instead of two drifting ones. Any method's
// index serves (read-only) through the same machinery.
func serveHTTP(ix highway.DistanceIndex, addr string) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	fmt.Printf("serving on %s (GET /distance?s=&t=, POST /distance/batch, GET /stats, GET /healthz)\n", addr)
	return highway.NewServerFor(ix, highway.ServeConfig{}).ListenAndServe(ctx, addr)
}
