// Command hlquery answers exact distance queries against a prebuilt
// index, in one of three modes:
//
//   - one-shot: hlquery -graph g.hwg -index g.hwg.idx -s 12 -t 34
//   - REPL: hlquery -graph g.hwg -index g.hwg.idx  (reads "s t" lines from stdin)
//   - HTTP: hlquery -graph g.hwg -index g.hwg.idx -serve :8080
//     then GET /distance?s=12&t=34 returns {"s":12,"t":34,"distance":3}.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"highway"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "hlquery:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("hlquery", flag.ContinueOnError)
	var (
		graphPath = fs.String("graph", "", "binary graph file (required)")
		indexPath = fs.String("index", "", "index file (default: graph path + .idx)")
		s         = fs.Int("s", -1, "one-shot: source vertex")
		t         = fs.Int("t", -1, "one-shot: target vertex")
		serve     = fs.String("serve", "", "HTTP listen address (e.g. :8080)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *graphPath == "" {
		return fmt.Errorf("-graph is required")
	}
	g, err := highway.LoadGraph(*graphPath)
	if err != nil {
		return err
	}
	ip := *indexPath
	if ip == "" {
		ip = *graphPath + ".idx"
	}
	ix, err := highway.LoadIndex(ip, g)
	if err != nil {
		return err
	}

	switch {
	case *s >= 0 && *t >= 0:
		return oneShot(ix, g, int32(*s), int32(*t))
	case *serve != "":
		return serveHTTP(ix, g, *serve)
	default:
		return repl(ix, g)
	}
}

func checkVertex(g *highway.Graph, v int32) error {
	if v < 0 || int(v) >= g.NumVertices() {
		return fmt.Errorf("vertex %d out of range [0,%d)", v, g.NumVertices())
	}
	return nil
}

func oneShot(ix *highway.Index, g *highway.Graph, s, t int32) error {
	if err := checkVertex(g, s); err != nil {
		return err
	}
	if err := checkVertex(g, t); err != nil {
		return err
	}
	start := time.Now()
	d := ix.Distance(s, t)
	fmt.Printf("d(%d,%d) = %d  (%s)\n", s, t, d, time.Since(start))
	return nil
}

func repl(ix *highway.Index, g *highway.Graph) error {
	sr := ix.NewSearcher()
	sc := bufio.NewScanner(os.Stdin)
	fmt.Println("enter queries as: s t   (EOF to quit)")
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		if len(fields) != 2 {
			fmt.Println("want two vertex ids")
			continue
		}
		s, err1 := strconv.Atoi(fields[0])
		t, err2 := strconv.Atoi(fields[1])
		if err1 != nil || err2 != nil ||
			checkVertex(g, int32(s)) != nil || checkVertex(g, int32(t)) != nil {
			fmt.Printf("bad query %q\n", sc.Text())
			continue
		}
		start := time.Now()
		d := sr.Distance(int32(s), int32(t))
		fmt.Printf("%d  (%s)\n", d, time.Since(start))
	}
	return sc.Err()
}

func serveHTTP(ix *highway.Index, g *highway.Graph, addr string) error {
	mux := http.NewServeMux()
	mux.HandleFunc("/distance", func(w http.ResponseWriter, r *http.Request) {
		s, err1 := strconv.Atoi(r.URL.Query().Get("s"))
		t, err2 := strconv.Atoi(r.URL.Query().Get("t"))
		if err1 != nil || err2 != nil {
			http.Error(w, `need integer query params "s" and "t"`, http.StatusBadRequest)
			return
		}
		if checkVertex(g, int32(s)) != nil || checkVertex(g, int32(t)) != nil {
			http.Error(w, "vertex out of range", http.StatusBadRequest)
			return
		}
		d := ix.Distance(int32(s), int32(t)) // concurrency-safe: pooled searchers
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"s":%d,"t":%d,"distance":%d}`+"\n", s, t, d)
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		st := ix.Stats()
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"n":%d,"m":%d,"landmarks":%d,"entries":%d,"avg_label_size":%.3f}`+"\n",
			st.NumVertices, st.NumEdges, st.NumLandmarks, st.NumEntries, st.AvgLabelSize)
	})
	fmt.Printf("serving on %s (GET /distance?s=&t=, GET /stats)\n", addr)
	return http.ListenAndServe(addr, mux)
}
