package main

import (
	"context"
	"math/bits"
	"path/filepath"
	"testing"

	"highway"
)

func fixture(t *testing.T) (string, string, *highway.Graph) {
	t.Helper()
	g := highway.BarabasiAlbert(300, 3, 7)
	dir := t.TempDir()
	gp := filepath.Join(dir, "g.hwg")
	if err := highway.SaveGraph(g, gp); err != nil {
		t.Fatal(err)
	}
	lm, err := highway.SelectLandmarks(g, 6, highway.ByDegree, 0)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := highway.BuildIndex(g, lm)
	if err != nil {
		t.Fatal(err)
	}
	ip := gp + ".idx"
	if err := ix.Save(ip); err != nil {
		t.Fatal(err)
	}
	return gp, ip, g
}

func TestOneShot(t *testing.T) {
	gp, ip, _ := fixture(t)
	if err := run([]string{"-graph", gp, "-index", ip, "-s", "1", "-t", "250"}); err != nil {
		t.Fatal(err)
	}
	// Default index path (graph + .idx).
	if err := run([]string{"-graph", gp, "-s", "0", "-t", "10"}); err != nil {
		t.Fatal(err)
	}
}

// TestStatsAndV1Index: -stats works, and a legacy v1 index file is served
// transparently by the same command.
func TestStatsAndV1Index(t *testing.T) {
	gp, ip, g := fixture(t)
	if err := run([]string{"-graph", gp, "-index", ip, "-stats"}); err != nil {
		t.Fatal(err)
	}
	ix, err := highway.LoadIndex(ip, g)
	if err != nil {
		t.Fatal(err)
	}
	v1 := filepath.Join(t.TempDir(), "old.idx")
	if err := highway.SaveIndexAs(ix, v1, highway.IndexFormatV1); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-graph", gp, "-index", v1, "-s", "1", "-t", "250"}); err != nil {
		t.Fatalf("v1 index rejected: %v", err)
	}
	if err := run([]string{"-graph", gp, "-index", v1, "-stats"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{}); err == nil {
		t.Error("missing -graph accepted")
	}
	gp, ip, _ := fixture(t)
	if err := run([]string{"-graph", gp, "-index", ip, "-s", "1", "-t", "99999"}); err == nil {
		t.Error("out-of-range vertex accepted")
	}
	if err := run([]string{"-graph", "/does/not/exist", "-s", "1", "-t", "2"}); err == nil {
		t.Error("missing graph accepted")
	}
}

func TestCheckVertex(t *testing.T) {
	_, _, g := fixture(t)
	if err := checkVertex(g, 0); err != nil {
		t.Error(err)
	}
	if err := checkVertex(g, -1); err == nil {
		t.Error("negative vertex accepted")
	}
	if err := checkVertex(g, g.NumVertices()); err == nil {
		t.Error("n accepted")
	}
	// An id beyond int32 must be rejected, not wrapped to a small id.
	// Only expressible where int is 64-bit; on 32-bit platforms flag
	// parsing cannot produce such a value in the first place.
	if bits.UintSize == 64 {
		big := 1
		big <<= 32
		if err := checkVertex(g, big); err == nil {
			t.Error("id beyond int32 accepted")
		}
	}
}

// TestAnyMethodIndex: hlquery auto-detects the method tag, so one-shot
// queries and -stats work on any registered method's index file.
func TestAnyMethodIndex(t *testing.T) {
	gp, _, g := fixture(t)
	for _, name := range []string{"pll", "isl", "fd", "dynhl"} {
		ix, err := highway.Build(context.Background(), g, name, highway.WithLandmarkCount(6))
		if err != nil {
			t.Fatal(err)
		}
		ip := filepath.Join(t.TempDir(), name+".idx")
		if err := ix.Save(ip); err != nil {
			t.Fatal(err)
		}
		if err := run([]string{"-graph", gp, "-index", ip, "-s", "1", "-t", "250"}); err != nil {
			t.Fatalf("%s one-shot: %v", name, err)
		}
		if err := run([]string{"-graph", gp, "-index", ip, "-stats"}); err != nil {
			t.Fatalf("%s -stats: %v", name, err)
		}
	}
}
