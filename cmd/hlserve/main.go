// Command hlserve serves exact distance queries from a prebuilt highway
// cover index, as a concurrent HTTP/JSON API or a high-throughput
// stdin/stdout batch pipeline. The HTTP server is live: it accepts edge
// insertions (POST /edges) while serving reads lock-free, optionally
// journalling them to a write-ahead edge log and compacting the log via
// background rebuilds (see the "Live updates" section of the README and
// DESIGN.md).
//
// Usage:
//
//	hlserve serve -graph g.hwg -addr :8080       # live HTTP API until SIGINT
//	hlserve serve -graph g.hwg -wal edges.wal    # ... with durable updates
//	hlserve serve -graph g.hwg -method pll       # serve any labelling method (read-only)
//	hlserve batch -graph g.hwg < pairs.txt       # one distance per line, input order
//	hlserve load  -graph g.hwg -n 100000         # generated load test, prints qps
//	hlserve load  -graph g.hwg -writeratio 0.01  # ... mixing writes into the reads
//	hlserve genpairs -graph g.hwg -n 100000      # emit "s t" lines for batch mode
//	hlserve help [command]
//
// Build the graph and index first with hlbuild (any -method). Every
// command takes -graph (binary graph file); serve, batch and load also
// take -index (default: graph path + .idx) and accept any registered
// method's index — the file's method tag selects the decoder, and
// serve's -method flag cross-checks it. Only the highway labelling
// serves live updates; every other method serves read-only. With -wal,
// serve prefers the compacted snapshot a previous run's rebuild
// persisted next to the log, then replays the log, so restarts lose
// nothing that was acknowledged.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"highway"
	"highway/internal/serve"
	"highway/internal/workload"
)

// commands is the self-documenting dispatch table printed by help.
var commands = []struct {
	name, summary string
	run           func(args []string, stdin io.Reader, stdout, stderr io.Writer) error
}{
	{"serve", "serve the live HTTP/JSON API (GET /distance, POST /distance/batch, POST /edges, /stats, /healthz)", runServe},
	{"batch", `answer "s t" lines from stdin, one distance per line on stdout, in input order`, runBatch},
	{"load", "run a generated load test (read-only, or mixed read/write with -writeratio) and report throughput", runLoad},
	{"genpairs", `emit "s t" query lines from the workload generator (feed for batch)`, runGenpairs},
}

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "hlserve:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	if len(args) == 0 {
		usage(stdout)
		return fmt.Errorf("no command given")
	}
	name := args[0]
	if name == "help" || name == "-h" || name == "--help" {
		usage(stdout)
		return nil
	}
	for _, c := range commands {
		if c.name == name {
			return c.run(args[1:], stdin, stdout, stderr)
		}
	}
	usage(stdout)
	return fmt.Errorf("unknown command %q", name)
}

func usage(w io.Writer) {
	fmt.Fprintln(w, "hlserve — concurrent exact distance serving (highway cover labelling, EDBT 2019)")
	fmt.Fprintln(w, "\nAvailable commands:")
	for _, c := range commands {
		fmt.Fprintf(w, "  %-9s %s\n", c.name, c.summary)
	}
	fmt.Fprintln(w, "\nRun \"hlserve <command> -h\" for the command's flags.")
}

// indexFlags declares the flags every command shares and returns a
// resolver for the graph/index paths plus a method-agnostic loader
// (the file's method tag selects the decoder, so every subcommand
// accepts any registered method's index).
func indexFlags(fs *flag.FlagSet) (paths func() (graphPath, indexPath string, err error), load func() (highway.DistanceIndex, error)) {
	graphPath := fs.String("graph", "", "binary graph file (required; build with hlbuild)")
	indexPath := fs.String("index", "", "index file (default: graph path + .idx)")
	paths = func() (string, string, error) {
		if *graphPath == "" {
			return "", "", fmt.Errorf("-graph is required")
		}
		ip := *indexPath
		if ip == "" {
			ip = *graphPath + ".idx"
		}
		return *graphPath, ip, nil
	}
	load = func() (highway.DistanceIndex, error) {
		gp, ip, err := paths()
		if err != nil {
			return nil, err
		}
		g, err := highway.LoadGraph(gp)
		if err != nil {
			return nil, err
		}
		return highway.LoadIndexAny(ip, g)
	}
	return paths, load
}

func runServe(args []string, _ io.Reader, stdout, _ io.Writer) error {
	fs := flag.NewFlagSet("hlserve serve", flag.ContinueOnError)
	paths, load := indexFlags(fs)
	addr := fs.String("addr", ":8080", "HTTP listen address")
	maxBatch := fs.Int("maxbatch", 0, "max pairs/edges per batch request (0 = default)")
	walPath := fs.String("wal", "", "write-ahead edge log for durable updates (replayed on startup; empty = in-memory updates only)")
	rebuildTh := fs.Int("rebuild-threshold", 0, "accepted edges triggering a background rebuild (0 = default, <0 = never)")
	rebuildGrowth := fs.Float64("rebuild-growth", 0, "label-entry growth factor triggering a rebuild (0 = default, <=1 = never)")
	readonly := fs.Bool("readonly", false, "serve the index frozen, without the update API")
	methodName := fs.String("method", "", "index method to serve: "+strings.Join(highway.MethodNames(), " | ")+" (default: auto-detect from the index file; non-dynamic methods serve read-only)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *readonly && *walPath != "" {
		// A frozen server cannot replay or append the log; refusing
		// beats silently serving state that is missing acknowledged
		// edges.
		return fmt.Errorf("-readonly and -wal are mutually exclusive")
	}
	cfg := serve.LiveConfig{
		Config:           serve.Config{MaxBatch: *maxBatch},
		RebuildThreshold: *rebuildTh,
		RebuildGrowth:    *rebuildGrowth,
	}

	// Resolve the method: sniff the index file's tag, cross-checked
	// against -method when given (serving a file under the wrong decoder
	// must fail loudly, not mis-answer). The -wal restart path may
	// legitimately run without the index file — serve.LoadLive prefers
	// the compacted snapshot a previous rebuild persisted — so there the
	// tag defaults to hl and is only sniffed when the file is present.
	gp, ip, err := paths()
	if err != nil {
		return err
	}
	tag := "hl"
	if _, serr := os.Stat(ip); serr == nil || *walPath == "" {
		if tag, err = highway.SniffIndexMethod(ip); err != nil {
			return err
		}
	}
	m, err := highway.MethodByName(tag)
	if err != nil {
		return err
	}
	if *methodName != "" {
		want, err := highway.MethodByName(*methodName)
		if err != nil {
			return err
		}
		if want.Name != m.Name {
			return fmt.Errorf("-method %s, but %s is a %q index", want.Name, ip, m.Name)
		}
	}

	var srv *serve.Server
	switch {
	case m.Name != "hl":
		// Generic path: any method serves through the shared machinery.
		// The WAL/rebuild pipeline is bound to the highway labelling's
		// files; a dynamic-method index (dynhl) still serves live via its
		// frozen snapshot, every non-dynamic method serves read-only.
		if *walPath != "" {
			return fmt.Errorf("-wal requires an hl index (got a %q index)", m.Name)
		}
		ix, err := load()
		if err != nil {
			return err
		}
		dyn, isDynHL := ix.(*highway.DynamicIndex)
		switch {
		case *readonly || !isDynHL:
			if !*readonly {
				fmt.Fprintf(stdout, "hlserve: method %s serves read-only (POST /edges needs a dynamic highway index)\n", m.Name)
			}
			srv = serve.NewIndex(ix, cfg.Config)
		default:
			// dynhl: snapshot the evolved state and serve it live.
			_, frozen, err := dyn.Freeze()
			if err != nil {
				return err
			}
			srv, err = serve.NewLive(frozen, cfg)
			if err != nil {
				return err
			}
		}
	case *readonly:
		ix, err := load()
		if err != nil {
			return err
		}
		srv = serve.NewIndex(ix, cfg.Config)
	case *walPath != "":
		srv, err = serve.LoadLive(gp, ip, *walPath, cfg)
		if err != nil {
			return err
		}
	default:
		ix, err := load()
		if err != nil {
			return err
		}
		// The m.Name == "hl" guard above makes this assertion safe.
		srv, err = serve.NewLive(ix.(*highway.Index), cfg)
		if err != nil {
			return err
		}
	}
	defer srv.Close()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	fmt.Fprintf(stdout, "hlserve: %s\n", srv.Index().Stats())
	if st := srv.LiveStats(); st != nil {
		mode := "in-memory only"
		if st.WALEnabled {
			mode = fmt.Sprintf("wal %s (%d records replayed)", *walPath, st.WALLen)
		}
		fmt.Fprintf(stdout, "hlserve: live updates enabled, %s\n", mode)
	}
	fmt.Fprintf(stdout, "hlserve: listening on %s (GET /distance?s=&t=, POST /distance/batch, POST /edges, GET /stats, GET /healthz)\n", *addr)
	return srv.ListenAndServe(ctx, *addr)
}

func runBatch(args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("hlserve batch", flag.ContinueOnError)
	_, load := indexFlags(fs)
	workers := fs.Int("workers", 0, "worker goroutines (0 = all cores)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ix, err := load()
	if err != nil {
		return err
	}
	stats, err := serve.NewIndex(ix, serve.Config{}).RunBatch(stdin, stdout, *workers)
	if err != nil {
		return err
	}
	fmt.Fprintln(stderr, "hlserve:", stats)
	return nil
}

func runLoad(args []string, _ io.Reader, stdout, _ io.Writer) error {
	fs := flag.NewFlagSet("hlserve load", flag.ContinueOnError)
	_, load := indexFlags(fs)
	n := fs.Int("n", 100_000, "pairs to generate (the paper samples 100,000)")
	seed := fs.Int64("seed", 42, "workload seed")
	workers := fs.Int("workers", 0, "worker goroutines (0 = all cores)")
	writeRatio := fs.Float64("writeratio", 0, "fraction of reads paired with a random edge insertion (0 = read-only load)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ix, err := load()
	if err != nil {
		return err
	}
	if *writeRatio > 0 {
		// Mixed read/write mode: a live in-memory server absorbing
		// random insertions while the read pipeline hammers it, the
		// serving-side equivalent of the FD comparison. Writes need the
		// dynamic highway pipeline, hence an hl index.
		hl, ok := ix.(*highway.Index)
		if !ok {
			return fmt.Errorf("-writeratio needs an hl index (method %q serves read-only)", ix.Stats().Method)
		}
		srv, err := serve.NewLive(hl, serve.LiveConfig{})
		if err != nil {
			return err
		}
		defer srv.Close()
		stats, err := srv.RunLoadMixed(io.Discard, *n, *seed, *workers, *writeRatio)
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, "hlserve:", stats)
		return nil
	}
	stats, err := serve.NewIndex(ix, serve.Config{}).RunLoad(io.Discard, *n, *seed, *workers)
	if err != nil {
		return err
	}
	fmt.Fprintln(stdout, "hlserve:", stats)
	return nil
}

func runGenpairs(args []string, _ io.Reader, stdout, _ io.Writer) error {
	fs := flag.NewFlagSet("hlserve genpairs", flag.ContinueOnError)
	graphPath := fs.String("graph", "", "binary graph file (required)")
	n := fs.Int("n", 100_000, "pairs to emit")
	seed := fs.Int64("seed", 42, "workload seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *graphPath == "" {
		return fmt.Errorf("-graph is required")
	}
	g, err := highway.LoadGraph(*graphPath)
	if err != nil {
		return err
	}
	return workload.WritePairs(stdout, g, *n, *seed)
}
