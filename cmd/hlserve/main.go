// Command hlserve serves exact distance queries from a prebuilt highway
// cover index, as a concurrent HTTP/JSON API or a high-throughput
// stdin/stdout batch pipeline. The HTTP server is live: it accepts edge
// insertions (POST /edges) while serving reads lock-free, optionally
// journalling them to a write-ahead edge log and compacting the log via
// background rebuilds (see the "Live updates" section of the README and
// DESIGN.md).
//
// Usage:
//
//	hlserve serve -graph g.hwg -addr :8080       # live HTTP API until SIGINT
//	hlserve serve -graph g.hwg -wal edges.wal    # ... with durable updates
//	hlserve batch -graph g.hwg < pairs.txt       # one distance per line, input order
//	hlserve load  -graph g.hwg -n 100000         # generated load test, prints qps
//	hlserve load  -graph g.hwg -writeratio 0.01  # ... mixing writes into the reads
//	hlserve genpairs -graph g.hwg -n 100000      # emit "s t" lines for batch mode
//	hlserve help [command]
//
// Build the graph and index first with hlbuild. Every command takes
// -graph (binary graph file); serve, batch and load also take -index
// (default: graph path + .idx). With -wal, serve prefers the compacted
// snapshot a previous run's rebuild persisted next to the log, then
// replays the log, so restarts lose nothing that was acknowledged.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	"highway"
	"highway/internal/serve"
	"highway/internal/workload"
)

// commands is the self-documenting dispatch table printed by help.
var commands = []struct {
	name, summary string
	run           func(args []string, stdin io.Reader, stdout, stderr io.Writer) error
}{
	{"serve", "serve the live HTTP/JSON API (GET /distance, POST /distance/batch, POST /edges, /stats, /healthz)", runServe},
	{"batch", `answer "s t" lines from stdin, one distance per line on stdout, in input order`, runBatch},
	{"load", "run a generated load test (read-only, or mixed read/write with -writeratio) and report throughput", runLoad},
	{"genpairs", `emit "s t" query lines from the workload generator (feed for batch)`, runGenpairs},
}

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "hlserve:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	if len(args) == 0 {
		usage(stdout)
		return fmt.Errorf("no command given")
	}
	name := args[0]
	if name == "help" || name == "-h" || name == "--help" {
		usage(stdout)
		return nil
	}
	for _, c := range commands {
		if c.name == name {
			return c.run(args[1:], stdin, stdout, stderr)
		}
	}
	usage(stdout)
	return fmt.Errorf("unknown command %q", name)
}

func usage(w io.Writer) {
	fmt.Fprintln(w, "hlserve — concurrent exact distance serving (highway cover labelling, EDBT 2019)")
	fmt.Fprintln(w, "\nAvailable commands:")
	for _, c := range commands {
		fmt.Fprintf(w, "  %-9s %s\n", c.name, c.summary)
	}
	fmt.Fprintln(w, "\nRun \"hlserve <command> -h\" for the command's flags.")
}

// indexFlags declares the flags every command shares and returns a
// resolver for the graph/index paths plus a loader.
func indexFlags(fs *flag.FlagSet) (paths func() (graphPath, indexPath string, err error), load func() (*highway.Index, error)) {
	graphPath := fs.String("graph", "", "binary graph file (required; build with hlbuild)")
	indexPath := fs.String("index", "", "index file (default: graph path + .idx)")
	paths = func() (string, string, error) {
		if *graphPath == "" {
			return "", "", fmt.Errorf("-graph is required")
		}
		ip := *indexPath
		if ip == "" {
			ip = *graphPath + ".idx"
		}
		return *graphPath, ip, nil
	}
	load = func() (*highway.Index, error) {
		gp, ip, err := paths()
		if err != nil {
			return nil, err
		}
		g, err := highway.LoadGraph(gp)
		if err != nil {
			return nil, err
		}
		return highway.LoadIndex(ip, g)
	}
	return paths, load
}

func runServe(args []string, _ io.Reader, stdout, _ io.Writer) error {
	fs := flag.NewFlagSet("hlserve serve", flag.ContinueOnError)
	paths, load := indexFlags(fs)
	addr := fs.String("addr", ":8080", "HTTP listen address")
	maxBatch := fs.Int("maxbatch", 0, "max pairs/edges per batch request (0 = default)")
	walPath := fs.String("wal", "", "write-ahead edge log for durable updates (replayed on startup; empty = in-memory updates only)")
	rebuildTh := fs.Int("rebuild-threshold", 0, "accepted edges triggering a background rebuild (0 = default, <0 = never)")
	rebuildGrowth := fs.Float64("rebuild-growth", 0, "label-entry growth factor triggering a rebuild (0 = default, <=1 = never)")
	readonly := fs.Bool("readonly", false, "serve the index frozen, without the update API")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *readonly && *walPath != "" {
		// A frozen server cannot replay or append the log; refusing
		// beats silently serving state that is missing acknowledged
		// edges.
		return fmt.Errorf("-readonly and -wal are mutually exclusive")
	}
	cfg := serve.LiveConfig{
		Config:           serve.Config{MaxBatch: *maxBatch},
		RebuildThreshold: *rebuildTh,
		RebuildGrowth:    *rebuildGrowth,
	}
	var srv *serve.Server
	switch {
	case *readonly:
		ix, err := load()
		if err != nil {
			return err
		}
		srv = serve.New(ix, cfg.Config)
	case *walPath != "":
		gp, ip, err := paths()
		if err != nil {
			return err
		}
		srv, err = serve.LoadLive(gp, ip, *walPath, cfg)
		if err != nil {
			return err
		}
	default:
		ix, err := load()
		if err != nil {
			return err
		}
		srv, err = serve.NewLive(ix, cfg)
		if err != nil {
			return err
		}
	}
	defer srv.Close()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	fmt.Fprintf(stdout, "hlserve: %s\n", srv.Index().Stats())
	if st := srv.LiveStats(); st != nil {
		mode := "in-memory only"
		if st.WALEnabled {
			mode = fmt.Sprintf("wal %s (%d records replayed)", *walPath, st.WALLen)
		}
		fmt.Fprintf(stdout, "hlserve: live updates enabled, %s\n", mode)
	}
	fmt.Fprintf(stdout, "hlserve: listening on %s (GET /distance?s=&t=, POST /distance/batch, POST /edges, GET /stats, GET /healthz)\n", *addr)
	return srv.ListenAndServe(ctx, *addr)
}

func runBatch(args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("hlserve batch", flag.ContinueOnError)
	_, load := indexFlags(fs)
	workers := fs.Int("workers", 0, "worker goroutines (0 = all cores)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ix, err := load()
	if err != nil {
		return err
	}
	stats, err := serve.New(ix, serve.Config{}).RunBatch(stdin, stdout, *workers)
	if err != nil {
		return err
	}
	fmt.Fprintln(stderr, "hlserve:", stats)
	return nil
}

func runLoad(args []string, _ io.Reader, stdout, _ io.Writer) error {
	fs := flag.NewFlagSet("hlserve load", flag.ContinueOnError)
	_, load := indexFlags(fs)
	n := fs.Int("n", 100_000, "pairs to generate (the paper samples 100,000)")
	seed := fs.Int64("seed", 42, "workload seed")
	workers := fs.Int("workers", 0, "worker goroutines (0 = all cores)")
	writeRatio := fs.Float64("writeratio", 0, "fraction of reads paired with a random edge insertion (0 = read-only load)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ix, err := load()
	if err != nil {
		return err
	}
	if *writeRatio > 0 {
		// Mixed read/write mode: a live in-memory server absorbing
		// random insertions while the read pipeline hammers it, the
		// serving-side equivalent of the FD comparison.
		srv, err := serve.NewLive(ix, serve.LiveConfig{})
		if err != nil {
			return err
		}
		defer srv.Close()
		stats, err := srv.RunLoadMixed(io.Discard, *n, *seed, *workers, *writeRatio)
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, "hlserve:", stats)
		return nil
	}
	stats, err := serve.New(ix, serve.Config{}).RunLoad(io.Discard, *n, *seed, *workers)
	if err != nil {
		return err
	}
	fmt.Fprintln(stdout, "hlserve:", stats)
	return nil
}

func runGenpairs(args []string, _ io.Reader, stdout, _ io.Writer) error {
	fs := flag.NewFlagSet("hlserve genpairs", flag.ContinueOnError)
	graphPath := fs.String("graph", "", "binary graph file (required)")
	n := fs.Int("n", 100_000, "pairs to emit")
	seed := fs.Int64("seed", 42, "workload seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *graphPath == "" {
		return fmt.Errorf("-graph is required")
	}
	g, err := highway.LoadGraph(*graphPath)
	if err != nil {
		return err
	}
	return workload.WritePairs(stdout, g, *n, *seed)
}
