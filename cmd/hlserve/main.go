// Command hlserve serves exact distance queries from a prebuilt highway
// cover index, as a concurrent HTTP/JSON API, a binary wire protocol
// (PROTOCOL.md) for native clients, or a high-throughput stdin/stdout
// batch pipeline. The server is live: it accepts edge insertions (POST
// /edges, or Insert frames on the binary listener) while serving reads
// lock-free, optionally journalling them to a write-ahead edge log and
// compacting the log via background rebuilds (see the "Live updates"
// section of the README and DESIGN.md).
//
// Usage:
//
//	hlserve serve -graph g.hwg -addr :8080       # live HTTP API until SIGINT
//	hlserve serve -graph g.hwg -binaddr :8081    # ... plus the binary protocol
//	hlserve serve -graph g.hwg -wal edges.wal    # ... with durable updates
//	hlserve serve -graph g.hwg -method pll       # serve any labelling method (read-only)
//	hlserve batch -graph g.hwg < pairs.txt       # one distance per line, input order
//	hlserve load  -graph g.hwg -n 100000         # in-process load test: qps + p50/p90/p99
//	hlserve load  -graph g.hwg -proto binary -batch 64   # ... through the wire protocol
//	hlserve load  -graph g.hwg -parallel 1,2,4,8 -json BENCH_SERVE.json  # qps-vs-parallelism sweep
//	hlserve load  -graph g.hwg -writeratio 0.01  # ... mixing writes into the reads
//	hlserve load  -graph g.hwg -deleteratio 0.1  # trace-style churn: edge inserts + deletes mixed into the measured load, any -proto
//	hlserve serve -graph g.hwg -read-budget 64   # bounded in-flight admission (shed with 429/Overloaded)
//	hlserve load  -graph g.hwg -proto http -read-budget 2 -batch 1024 -parallel 8  # overload drill: shed accounting in the report
//	hlserve genpairs -graph g.hwg -n 100000      # emit "s t" lines for batch mode
//	hlserve help [command]
//
// Build the graph and index first with hlbuild (any -method). Every
// command takes -graph (binary graph file); serve, batch and load also
// take -index (default: graph path + .idx) and accept any registered
// method's index — the file's method tag selects the decoder, and
// serve's -method flag cross-checks it. Only the highway labelling
// serves live updates; every other method serves read-only. With -wal,
// serve prefers the compacted snapshot a previous run's rebuild
// persisted next to the log, then replays the log, so restarts lose
// nothing that was acknowledged.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	"highway"
	"highway/internal/cluster"
	"highway/internal/loadgen"
	"highway/internal/serve"
	"highway/internal/workload"
)

// commands is the self-documenting dispatch table printed by help.
var commands = []struct {
	name, summary string
	run           func(args []string, stdin io.Reader, stdout, stderr io.Writer) error
}{
	{"serve", "serve the live HTTP/JSON API (GET /distance, POST /distance/batch, POST /edges, /stats, /healthz) and, with -binaddr, the binary wire protocol; -replicate ships the WAL to followers, -follower receives it", runServe},
	{"route", "run the cluster router: health-checked read fan-out across followers (or landmark shards, min-merged), writes forwarded to the primary, both protocols", runRoute},
	{"batch", `answer "s t" lines from stdin, one distance per line on stdout, in input order`, runBatch},
	{"load", "load-test a target protocol (inproc | http | binary): p50/p90/p99 latency, warmup-excluded qps, optional -parallel sweep and -json report", runLoad},
	{"genpairs", `emit "s t" query lines from the workload generator (feed for batch)`, runGenpairs},
}

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "hlserve:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	if len(args) == 0 {
		usage(stdout)
		return fmt.Errorf("no command given")
	}
	name := args[0]
	if name == "help" || name == "-h" || name == "--help" {
		usage(stdout)
		return nil
	}
	for _, c := range commands {
		if c.name == name {
			return c.run(args[1:], stdin, stdout, stderr)
		}
	}
	usage(stdout)
	return fmt.Errorf("unknown command %q", name)
}

func usage(w io.Writer) {
	fmt.Fprintln(w, "hlserve — concurrent exact distance serving (highway cover labelling, EDBT 2019)")
	fmt.Fprintln(w, "\nAvailable commands:")
	for _, c := range commands {
		fmt.Fprintf(w, "  %-9s %s\n", c.name, c.summary)
	}
	fmt.Fprintln(w, "\nRun \"hlserve <command> -h\" for the command's flags.")
}

// indexFlags declares the flags every command shares and returns a
// resolver for the graph/index paths plus a method-agnostic loader
// (the file's method tag selects the decoder, so every subcommand
// accepts any registered method's index).
func indexFlags(fs *flag.FlagSet) (paths func() (graphPath, indexPath string, err error), load func() (highway.DistanceIndex, error)) {
	graphPath := fs.String("graph", "", "binary graph file (required; build with hlbuild)")
	indexPath := fs.String("index", "", "index file (default: graph path + .idx)")
	paths = func() (string, string, error) {
		if *graphPath == "" {
			return "", "", fmt.Errorf("-graph is required")
		}
		ip := *indexPath
		if ip == "" {
			ip = *graphPath + ".idx"
		}
		return *graphPath, ip, nil
	}
	load = func() (highway.DistanceIndex, error) {
		gp, ip, err := paths()
		if err != nil {
			return nil, err
		}
		g, err := highway.LoadGraph(gp)
		if err != nil {
			return nil, err
		}
		return highway.LoadIndexAny(ip, g)
	}
	return paths, load
}

func runServe(args []string, _ io.Reader, stdout, _ io.Writer) error {
	fs := flag.NewFlagSet("hlserve serve", flag.ContinueOnError)
	paths, load := indexFlags(fs)
	addr := fs.String("addr", ":8080", "HTTP listen address")
	binAddr := fs.String("binaddr", "", "binary wire protocol listen address (see PROTOCOL.md; empty = HTTP only)")
	maxBatch := fs.Int("maxbatch", 0, "max pairs/edges per batch request (0 = default)")
	walPath := fs.String("wal", "", "write-ahead edge log for durable updates (replayed on startup; empty = in-memory updates only)")
	rebuildTh := fs.Int("rebuild-threshold", 0, "accepted edges triggering a background rebuild (0 = default, <0 = never)")
	rebuildGrowth := fs.Float64("rebuild-growth", 0, "label-entry growth factor triggering a rebuild (0 = default, <=1 = never)")
	readonly := fs.Bool("readonly", false, "serve the index frozen, without the update API")
	readBudget := fs.Int("read-budget", 0, "admission budget for in-flight read work, in cost units of 1 + pairs/1024 (0 = default, <0 = unlimited); over-budget requests are shed with 429/Overloaded")
	writeBudget := fs.Int("write-budget", 0, "admission budget for in-flight insert work, same units as -read-budget (0 = default, <0 = unlimited)")
	methodName := fs.String("method", "", "index method to serve: "+strings.Join(highway.MethodNames(), " | ")+" (default: auto-detect from the index file; non-dynamic methods serve read-only)")
	replicate := fs.String("replicate", "", "comma-separated follower binary addresses to ship the WAL to (primary role; requires -wal)")
	follower := fs.Bool("follower", false, "run as a replication follower: bootstrap from the primary's snapshot stream, serve reads (no -graph needed; requires -binaddr for the replication frames)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *follower {
		return runFollower(*addr, *binAddr, serve.Config{MaxBatch: *maxBatch, ReadBudget: *readBudget, WriteBudget: *writeBudget}, stdout)
	}
	if *readonly && *walPath != "" {
		// A frozen server cannot replay or append the log; refusing
		// beats silently serving state that is missing acknowledged
		// edges.
		return fmt.Errorf("-readonly and -wal are mutually exclusive")
	}
	if *replicate != "" && *walPath == "" {
		// The generation file fencing rests on lives next to the WAL,
		// and a primary whose acked writes are not durable cannot
		// promise followers anything across a restart.
		return fmt.Errorf("-replicate requires -wal (the generation file lives next to the log)")
	}
	cfg := serve.LiveConfig{
		Config:           serve.Config{MaxBatch: *maxBatch, ReadBudget: *readBudget, WriteBudget: *writeBudget},
		RebuildThreshold: *rebuildTh,
		RebuildGrowth:    *rebuildGrowth,
	}
	var shipper *cluster.Shipper
	if *replicate != "" {
		gen, err := cluster.NextGeneration(*walPath + ".gen")
		if err != nil {
			return err
		}
		cfg.EpochBase = cluster.EpochBase(gen)
		shipper = cluster.NewShipper(cluster.ShipperConfig{
			Followers: strings.Split(*replicate, ","),
		})
		cfg.OnCommit = shipper.OnCommit
		fmt.Fprintf(stdout, "hlserve: primary generation %d, replicating to %s\n", gen, *replicate)
	}

	// Resolve the method: sniff the index file's tag, cross-checked
	// against -method when given (serving a file under the wrong decoder
	// must fail loudly, not mis-answer). The -wal restart path may
	// legitimately run without the index file — serve.LoadLive prefers
	// the compacted snapshot a previous rebuild persisted — so there the
	// tag defaults to hl and is only sniffed when the file is present.
	gp, ip, err := paths()
	if err != nil {
		return err
	}
	tag := "hl"
	if _, serr := os.Stat(ip); serr == nil || *walPath == "" {
		if tag, err = highway.SniffIndexMethod(ip); err != nil {
			return err
		}
	}
	m, err := highway.MethodByName(tag)
	if err != nil {
		return err
	}
	if *methodName != "" {
		want, err := highway.MethodByName(*methodName)
		if err != nil {
			return err
		}
		if want.Name != m.Name {
			return fmt.Errorf("-method %s, but %s is a %q index", want.Name, ip, m.Name)
		}
	}

	var srv *serve.Server
	switch {
	case m.Name != "hl":
		// Generic path: any method serves through the shared machinery.
		// The WAL/rebuild pipeline is bound to the highway labelling's
		// files; a dynamic-method index (dynhl) still serves live via its
		// frozen snapshot, every non-dynamic method serves read-only.
		if *walPath != "" {
			return fmt.Errorf("-wal requires an hl index (got a %q index)", m.Name)
		}
		ix, err := load()
		if err != nil {
			return err
		}
		dyn, isDynHL := ix.(*highway.DynamicIndex)
		switch {
		case *readonly || !isDynHL:
			if !*readonly {
				fmt.Fprintf(stdout, "hlserve: method %s serves read-only (POST /edges needs a dynamic highway index)\n", m.Name)
			}
			srv = serve.NewIndex(ix, cfg.Config)
		default:
			// dynhl: snapshot the evolved state and serve it live.
			_, frozen, err := dyn.Freeze()
			if err != nil {
				return err
			}
			srv, err = serve.NewLive(frozen, cfg)
			if err != nil {
				return err
			}
		}
	case *readonly:
		ix, err := load()
		if err != nil {
			return err
		}
		srv = serve.NewIndex(ix, cfg.Config)
	case *walPath != "":
		srv, err = serve.LoadLive(gp, ip, *walPath, cfg)
		if err != nil {
			return err
		}
	default:
		ix, err := load()
		if err != nil {
			return err
		}
		// The m.Name == "hl" guard above makes this assertion safe.
		srv, err = serve.NewLive(ix.(*highway.Index), cfg)
		if err != nil {
			return err
		}
	}
	defer srv.Close()
	if shipper != nil {
		if srv.LiveStats() == nil {
			return fmt.Errorf("-replicate needs a live (writable) server")
		}
		shipper.Start(srv)
		defer shipper.Close()
		srv.SetReplicationStats(shipper.Stats)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	fmt.Fprintf(stdout, "hlserve: %s\n", srv.Index().Stats())
	if st := srv.LiveStats(); st != nil {
		mode := "in-memory only"
		if st.WALEnabled {
			mode = fmt.Sprintf("wal %s (%d records replayed)", *walPath, st.WALLen)
		}
		fmt.Fprintf(stdout, "hlserve: live updates enabled, %s\n", mode)
	}
	fmt.Fprintf(stdout, "hlserve: listening on %s (GET /distance?s=&t=, POST /distance/batch, POST /edges, GET /stats, GET /healthz)\n", *addr)
	if *binAddr == "" {
		return srv.ListenAndServe(ctx, *addr)
	}

	// Dual-listener mode: HTTP and the binary protocol serve the same
	// snapshots, searcher pools and metrics. Either listener failing
	// takes the whole process down (a half-up server is worse than a
	// down one); a signal shuts both down gracefully.
	fmt.Fprintf(stdout, "hlserve: binary protocol listening on %s (PROTOCOL.md; native client: highway.Dial)\n", *binAddr)
	lctx, cancel := context.WithCancel(ctx)
	defer cancel()
	errc := make(chan error, 2)
	go func() { errc <- srv.ListenAndServeBinary(lctx, *binAddr) }()
	go func() { errc <- srv.ListenAndServe(lctx, *addr) }()
	err = <-errc
	cancel()
	if e2 := <-errc; err == nil {
		err = e2
	}
	return err
}

// runFollower serves the replication-follower role: an initially-empty
// server whose state arrives over the binary listener as a snapshot
// stream plus per-batch appends. /readyz answers 503 until the first
// snapshot installs.
func runFollower(addr, binAddr string, cfg serve.Config, stdout io.Writer) error {
	if binAddr == "" {
		return fmt.Errorf("-follower requires -binaddr (replication frames arrive on the binary listener)")
	}
	f, err := cluster.NewFollower(cfg)
	if err != nil {
		return err
	}
	srv := f.Server()
	defer srv.Close()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	fmt.Fprintf(stdout, "hlserve: follower awaiting snapshot bootstrap; HTTP on %s, binary (replication + reads) on %s\n", addr, binAddr)
	lctx, cancel := context.WithCancel(ctx)
	defer cancel()
	errc := make(chan error, 2)
	go func() { errc <- srv.ListenAndServeBinary(lctx, binAddr) }()
	go func() { errc <- srv.ListenAndServe(lctx, addr) }()
	err = <-errc
	cancel()
	if e2 := <-errc; err == nil {
		err = e2
	}
	return err
}

// runRoute serves the router role: no local state, reads fanned across
// the member lists, writes forwarded to the primary.
func runRoute(args []string, _ io.Reader, stdout, _ io.Writer) error {
	fs := flag.NewFlagSet("hlserve route", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "HTTP listen address")
	binAddr := fs.String("binaddr", "", "binary wire protocol listen address (empty = HTTP only)")
	primary := fs.String("primary", "", "primary's binary address for forwarded writes (empty = read-only cluster)")
	followers := fs.String("followers", "", "comma-separated follower binary addresses for read fan-out (one replica set; use -shards for landmark partitions)")
	shardsFlag := fs.String("shards", "", "semicolon-separated landmark shards, each a comma-separated member list, e.g. a:9001,b:9001;c:9001 — reads fan to every shard and min-merge (exact; each shard holds a disjoint landmark subset)")
	maxBatch := fs.Int("maxbatch", 0, "max pairs per batch request (0 = default)")
	healthMs := fs.Int("health-interval", 0, "member health-check interval in milliseconds (0 = default)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *followers != "" && *shardsFlag != "" {
		return fmt.Errorf("-followers and -shards are mutually exclusive (followers is shorthand for one shard)")
	}
	var shards [][]string
	switch {
	case *followers != "":
		shards = [][]string{strings.Split(*followers, ",")}
	case *shardsFlag != "":
		for _, s := range strings.Split(*shardsFlag, ";") {
			shards = append(shards, strings.Split(s, ","))
		}
	default:
		return fmt.Errorf("route needs -followers or -shards")
	}
	rt, err := cluster.NewRouter(cluster.RouterConfig{
		Primary:        *primary,
		Shards:         shards,
		MaxBatch:       *maxBatch,
		HealthInterval: time.Duration(*healthMs) * time.Millisecond,
	})
	if err != nil {
		return err
	}
	defer rt.Close()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	fmt.Fprintf(stdout, "hlserve: routing %d shard(s), primary %q; HTTP on %s\n", len(shards), *primary, *addr)
	if *binAddr == "" {
		return rt.ListenAndServe(ctx, *addr)
	}
	fmt.Fprintf(stdout, "hlserve: binary protocol listening on %s\n", *binAddr)
	lctx, cancel := context.WithCancel(ctx)
	defer cancel()
	errc := make(chan error, 2)
	go func() { errc <- rt.ListenAndServeBinary(lctx, *binAddr) }()
	go func() { errc <- rt.ListenAndServe(lctx, *addr) }()
	err = <-errc
	cancel()
	if e2 := <-errc; err == nil {
		err = e2
	}
	return err
}

func runBatch(args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("hlserve batch", flag.ContinueOnError)
	_, load := indexFlags(fs)
	workers := fs.Int("workers", 0, "worker goroutines (0 = all cores)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ix, err := load()
	if err != nil {
		return err
	}
	stats, err := serve.NewIndex(ix, serve.Config{}).RunBatch(stdin, stdout, *workers)
	if err != nil {
		return err
	}
	fmt.Fprintln(stderr, "hlserve:", stats)
	return nil
}

func runLoad(args []string, _ io.Reader, stdout, _ io.Writer) error {
	fs := flag.NewFlagSet("hlserve load", flag.ContinueOnError)
	paths, load := indexFlags(fs)
	n := fs.Int("n", 100_000, "total measured pairs per run (the paper samples 100,000)")
	seed := fs.Int64("seed", 42, "workload seed")
	workers := fs.Int("workers", 0, "concurrent load workers, each with its own connection and request queue (0 = all cores)")
	writeRatio := fs.Float64("writeratio", 0, "fraction of reads paired with a random edge insertion (0 = read-only load; in-process only, needs an hl index)")
	churn := fs.Float64("churn", 0, "fraction of requests preceded by one edge mutation through the target protocol (0 = read-only unless -deleteratio is set, which defaults this to 0.1; needs an hl index)")
	deleteRatio := fs.Float64("deleteratio", 0, "fraction of churn mutations that delete a live edge instead of inserting (implies -churn 0.1 when churn is unset)")
	skew := fs.Float64("skew", 0, "Zipf skew for churn insertion endpoints, >1 to enable (low vertex ids = hubs); uniform otherwise")
	proto := fs.String("proto", "inproc", "target protocol: inproc (no wire protocol), http (HTTP/JSON API) or binary (PROTOCOL.md)")
	target := fs.String("target", "", "drive already-running servers at this comma-separated address list (http base URLs or binary host:ports; workers spread round-robin) instead of a self-hosted loopback listener")
	batch := fs.Int("batch", 1, "pairs per request (1 = the single-query path)")
	warmup := fs.Int("warmup", 0, "per-worker warmup requests, issued before the clock starts and excluded from every reported figure (0 = a tenth of the per-worker requests, <0 = none)")
	readBudget := fs.Int("read-budget", -1, "admission budget of the self-hosted server, in cost units of 1 + pairs/1024 (<0 = unlimited, the load-test default); shed requests are counted and timed separately")
	parallel := fs.String("parallel", "", "comma-separated worker counts to sweep with a fixed total request budget, e.g. 1,2,4,8 (overrides -workers)")
	jsonPath := fs.String("json", "", "write all runs as a JSON report to this file (the BENCH_SERVE.json schema; empty = stdout only)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	// Everything that can be rejected before touching the index is
	// rejected here: a bad flag combination must cost an error message,
	// not an index load (on billion-edge graphs, minutes).
	if *writeRatio < 0 || *writeRatio > 1 {
		return fmt.Errorf("-writeratio must be in [0,1], got %g", *writeRatio)
	}
	if *churn < 0 || *churn > 1 {
		return fmt.Errorf("-churn must be in [0,1], got %g", *churn)
	}
	if *deleteRatio < 0 || *deleteRatio > 1 {
		return fmt.Errorf("-deleteratio must be in [0,1], got %g", *deleteRatio)
	}
	if *deleteRatio > 0 && *churn == 0 {
		*churn = 0.1 // -deleteratio alone means "churn, a tenth of the requests"
	}
	if *churn > 0 && *writeRatio > 0 {
		return fmt.Errorf("-churn/-deleteratio and -writeratio are mutually exclusive (churn supersedes the in-process write mix)")
	}
	if *proto != "inproc" && *proto != "http" && *proto != "binary" {
		return fmt.Errorf("unknown -proto %q (want inproc, http or binary)", *proto)
	}
	if *batch <= 0 {
		return fmt.Errorf("-batch must be positive, got %d", *batch)
	}
	levels, err := parseLevels(*parallel)
	if err != nil {
		return err
	}
	_, ip, err := paths()
	if err != nil {
		return err
	}
	if *writeRatio > 0 {
		if *proto != "inproc" {
			return fmt.Errorf("-writeratio is an in-process measurement (got -proto %s)", *proto)
		}
		// Writes need the dynamic highway pipeline: sniffing the index
		// file's method tag costs a header read, so the mismatch
		// surfaces now rather than after loading the labelling.
		tag, err := highway.SniffIndexMethod(ip)
		if err != nil {
			return err
		}
		if tag != "hl" {
			return fmt.Errorf("-writeratio needs an hl index (method %q serves read-only)", tag)
		}
	}
	if *churn > 0 {
		// Churn mutates through the target protocol, so the self-hosted
		// server must be live — which only the highway labelling can be.
		tag, err := highway.SniffIndexMethod(ip)
		if err != nil {
			return err
		}
		if tag != "hl" {
			return fmt.Errorf("-churn/-deleteratio needs an hl index (method %q serves read-only)", tag)
		}
	}

	ix, err := load()
	if err != nil {
		return err
	}
	if *workers <= 0 {
		*workers = runtime.GOMAXPROCS(0)
	}
	if levels == nil {
		levels = []int{*workers}
	}

	if *writeRatio > 0 {
		// Mixed read/write mode: a live in-memory server absorbing
		// random insertions while the read pipeline hammers it, the
		// serving-side equivalent of the FD comparison.
		srv, err := serve.NewLive(ix.(*highway.Index), serve.LiveConfig{})
		if err != nil {
			return err
		}
		defer srv.Close()
		stats, err := srv.RunLoadMixed(io.Discard, *n, *seed, *workers, *writeRatio)
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, "hlserve:", stats)
		return nil
	}

	// Everything else goes through the percentile harness. The target is
	// the in-process server, or a wire protocol — self-hosted on a
	// loopback listener unless -target points at a running server, so a
	// protocol-overhead comparison needs nothing but this one command.
	// The default budget is unlimited: a load test wants to measure the
	// index, not the gate — overload experiments opt in via -read-budget.
	// A churn run self-hosts a live server so the mutation endpoints
	// exist on every protocol.
	var srv *serve.Server
	if *churn > 0 {
		srv, err = serve.NewLive(ix.(*highway.Index), serve.LiveConfig{
			Config: serve.Config{ReadBudget: *readBudget},
		})
		if err != nil {
			return err
		}
		defer srv.Close()
	} else {
		srv = serve.NewIndex(ix, serve.Config{ReadBudget: *readBudget})
	}
	var factory loadgen.TargetFactory
	switch *proto {
	case "inproc":
		factory = loadgen.InProcFactory(srv)
	case "http":
		// -target accepts a comma-separated endpoint list; workers are
		// spread round-robin across them (aggregate replica-set QPS).
		if *target == "" {
			ln, stop, err := selfHost(func(ctx context.Context, ln net.Listener) error { return srv.Serve(ctx, ln) })
			if err != nil {
				return err
			}
			defer stop()
			factory = loadgen.HTTPFactory("http://" + ln.Addr().String())
		} else {
			bases := strings.Split(*target, ",")
			for i, b := range bases {
				if !strings.Contains(b, "://") {
					bases[i] = "http://" + b
				}
			}
			factory = loadgen.MultiHTTPFactory(bases)
		}
	case "binary":
		if *target == "" {
			ln, stop, err := selfHost(srv.ServeBinary)
			if err != nil {
				return err
			}
			defer stop()
			factory = loadgen.BinaryFactory(ln.Addr().String())
		} else {
			factory = loadgen.MultiBinaryFactory(strings.Split(*target, ","))
		}
	}

	opt := loadgen.Options{
		Requests:    *n / *batch, // total budget; Sweep splits it across workers
		Warmup:      *warmup,
		Batch:       *batch,
		N:           ix.Stats().NumVertices,
		Seed:        *seed,
		Churn:       *churn,
		DeleteRatio: *deleteRatio,
		Skew:        *skew,
	}
	runs, err := loadgen.Sweep(opt, levels, factory)
	if err != nil {
		return err
	}
	for i := range runs {
		runs[i].Protocol = *proto
		fmt.Fprintln(stdout, "hlserve:", runs[i])
	}
	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			return err
		}
		rp := loadgen.Report{
			Command: "hlserve load " + strings.Join(args, " "),
			Host:    fmt.Sprintf("%s/%s, %d cores, %s", runtime.GOOS, runtime.GOARCH, runtime.NumCPU(), runtime.Version()),
			Runs:    runs,
		}
		if err := rp.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "hlserve: wrote %d runs to %s\n", len(runs), *jsonPath)
	}
	return nil
}

// parseLevels parses the -parallel flag: a comma-separated list of
// positive worker counts, nil when empty.
func parseLevels(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	levels := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("-parallel wants positive worker counts like 1,2,4,8; got %q", s)
		}
		levels = append(levels, v)
	}
	return levels, nil
}

// selfHost starts serveFn on a loopback listener and returns the
// listener plus a stop func that shuts the listener down and reports
// its exit error.
func selfHost(serveFn func(context.Context, net.Listener) error) (net.Listener, func() error, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- serveFn(ctx, ln) }()
	return ln, func() error {
		cancel()
		return <-done
	}, nil
}

func runGenpairs(args []string, _ io.Reader, stdout, _ io.Writer) error {
	fs := flag.NewFlagSet("hlserve genpairs", flag.ContinueOnError)
	graphPath := fs.String("graph", "", "binary graph file (required)")
	n := fs.Int("n", 100_000, "pairs to emit")
	seed := fs.Int64("seed", 42, "workload seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *graphPath == "" {
		return fmt.Errorf("-graph is required")
	}
	g, err := highway.LoadGraph(*graphPath)
	if err != nil {
		return err
	}
	return workload.WritePairs(stdout, g, *n, *seed)
}
