// Command hlserve serves exact distance queries from a prebuilt highway
// cover index, as a concurrent HTTP/JSON API or a high-throughput
// stdin/stdout batch pipeline.
//
// Usage:
//
//	hlserve serve -graph g.hwg -addr :8080       # HTTP API until SIGINT
//	hlserve batch -graph g.hwg < pairs.txt       # one distance per line, input order
//	hlserve load  -graph g.hwg -n 100000         # generated load test, prints qps
//	hlserve genpairs -graph g.hwg -n 100000      # emit "s t" lines for batch mode
//	hlserve help [command]
//
// Build the graph and index first with hlbuild. Every command takes
// -graph (binary graph file); serve, batch and load also take -index
// (default: graph path + .idx).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	"highway"
	"highway/internal/serve"
	"highway/internal/workload"
)

// commands is the self-documenting dispatch table printed by help.
var commands = []struct {
	name, summary string
	run           func(args []string, stdin io.Reader, stdout, stderr io.Writer) error
}{
	{"serve", "serve the HTTP/JSON API (GET /distance, POST /distance/batch, /stats, /healthz)", runServe},
	{"batch", `answer "s t" lines from stdin, one distance per line on stdout, in input order`, runBatch},
	{"load", "run a deterministic generated load test and report throughput", runLoad},
	{"genpairs", `emit "s t" query lines from the workload generator (feed for batch)`, runGenpairs},
}

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "hlserve:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	if len(args) == 0 {
		usage(stdout)
		return fmt.Errorf("no command given")
	}
	name := args[0]
	if name == "help" || name == "-h" || name == "--help" {
		usage(stdout)
		return nil
	}
	for _, c := range commands {
		if c.name == name {
			return c.run(args[1:], stdin, stdout, stderr)
		}
	}
	usage(stdout)
	return fmt.Errorf("unknown command %q", name)
}

func usage(w io.Writer) {
	fmt.Fprintln(w, "hlserve — concurrent exact distance serving (highway cover labelling, EDBT 2019)")
	fmt.Fprintln(w, "\nAvailable commands:")
	for _, c := range commands {
		fmt.Fprintf(w, "  %-9s %s\n", c.name, c.summary)
	}
	fmt.Fprintln(w, "\nRun \"hlserve <command> -h\" for the command's flags.")
}

// indexFlags declares the flags every command shares and returns a
// loader for them.
func indexFlags(fs *flag.FlagSet) func() (*highway.Index, error) {
	graphPath := fs.String("graph", "", "binary graph file (required; build with hlbuild)")
	indexPath := fs.String("index", "", "index file (default: graph path + .idx)")
	return func() (*highway.Index, error) {
		if *graphPath == "" {
			return nil, fmt.Errorf("-graph is required")
		}
		g, err := highway.LoadGraph(*graphPath)
		if err != nil {
			return nil, err
		}
		ip := *indexPath
		if ip == "" {
			ip = *graphPath + ".idx"
		}
		return highway.LoadIndex(ip, g)
	}
}

func runServe(args []string, _ io.Reader, stdout, _ io.Writer) error {
	fs := flag.NewFlagSet("hlserve serve", flag.ContinueOnError)
	load := indexFlags(fs)
	addr := fs.String("addr", ":8080", "HTTP listen address")
	maxBatch := fs.Int("maxbatch", 0, "max pairs per batch request (0 = default)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ix, err := load()
	if err != nil {
		return err
	}
	srv := serve.New(ix, serve.Config{MaxBatch: *maxBatch})
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	fmt.Fprintf(stdout, "hlserve: %s\n", ix.Stats())
	fmt.Fprintf(stdout, "hlserve: listening on %s (GET /distance?s=&t=, POST /distance/batch, GET /stats, GET /healthz)\n", *addr)
	return srv.ListenAndServe(ctx, *addr)
}

func runBatch(args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("hlserve batch", flag.ContinueOnError)
	load := indexFlags(fs)
	workers := fs.Int("workers", 0, "worker goroutines (0 = all cores)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ix, err := load()
	if err != nil {
		return err
	}
	stats, err := serve.New(ix, serve.Config{}).RunBatch(stdin, stdout, *workers)
	if err != nil {
		return err
	}
	fmt.Fprintln(stderr, "hlserve:", stats)
	return nil
}

func runLoad(args []string, _ io.Reader, stdout, _ io.Writer) error {
	fs := flag.NewFlagSet("hlserve load", flag.ContinueOnError)
	load := indexFlags(fs)
	n := fs.Int("n", 100_000, "pairs to generate (the paper samples 100,000)")
	seed := fs.Int64("seed", 42, "workload seed")
	workers := fs.Int("workers", 0, "worker goroutines (0 = all cores)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ix, err := load()
	if err != nil {
		return err
	}
	stats, err := serve.New(ix, serve.Config{}).RunLoad(io.Discard, *n, *seed, *workers)
	if err != nil {
		return err
	}
	fmt.Fprintln(stdout, "hlserve:", stats)
	return nil
}

func runGenpairs(args []string, _ io.Reader, stdout, _ io.Writer) error {
	fs := flag.NewFlagSet("hlserve genpairs", flag.ContinueOnError)
	graphPath := fs.String("graph", "", "binary graph file (required)")
	n := fs.Int("n", 100_000, "pairs to emit")
	seed := fs.Int64("seed", 42, "workload seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *graphPath == "" {
		return fmt.Errorf("-graph is required")
	}
	g, err := highway.LoadGraph(*graphPath)
	if err != nil {
		return err
	}
	return workload.WritePairs(stdout, g, *n, *seed)
}
