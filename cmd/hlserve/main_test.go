package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"highway"
)

// writeIndexedGraph saves a small graph and its index side by side and
// returns the graph path.
func writeIndexedGraph(t *testing.T) string {
	t.Helper()
	g := highway.BarabasiAlbert(300, 3, 5)
	dir := t.TempDir()
	gp := filepath.Join(dir, "g.hwg")
	if err := highway.SaveGraph(g, gp); err != nil {
		t.Fatal(err)
	}
	lms, err := highway.SelectLandmarks(g, 8, highway.ByDegree, 0)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := highway.BuildIndex(g, lms)
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Save(gp + ".idx"); err != nil {
		t.Fatal(err)
	}
	return gp
}

func TestHelpListsCommands(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"help"}, nil, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	for _, cmd := range []string{"serve", "batch", "load", "genpairs"} {
		if !strings.Contains(out.String(), cmd) {
			t.Fatalf("help output lacks %q:\n%s", cmd, out.String())
		}
	}
}

func TestUnknownCommand(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"frobnicate"}, nil, &out, io.Discard); err == nil {
		t.Fatal("want error for unknown command")
	}
	if err := run(nil, nil, &out, io.Discard); err == nil {
		t.Fatal("want error for missing command")
	}
}

func TestGenpairsAndLoad(t *testing.T) {
	gp := writeIndexedGraph(t)

	var pairs bytes.Buffer
	if err := run([]string{"genpairs", "-graph", gp, "-n", "100", "-seed", "1"}, nil, &pairs, io.Discard); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(pairs.String()), "\n")
	if len(lines) != 100 {
		t.Fatalf("genpairs emitted %d lines, want 100", len(lines))
	}
	if len(strings.Fields(lines[0])) != 2 {
		t.Fatalf("bad pair line %q", lines[0])
	}

	var out bytes.Buffer
	if err := run([]string{"load", "-graph", gp, "-n", "500", "-seed", "1", "-workers", "2"}, nil, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "500 pairs") {
		t.Fatalf("load output %q lacks pair count", out.String())
	}
}

// TestLoadProtocols drives the harness through every wire protocol
// against a self-hosted loopback listener: the one-command
// protocol-overhead comparison must work end to end.
func TestLoadProtocols(t *testing.T) {
	gp := writeIndexedGraph(t)
	for _, proto := range []string{"inproc", "http", "binary"} {
		var out bytes.Buffer
		args := []string{"load", "-graph", gp, "-n", "200", "-workers", "2", "-batch", "4", "-proto", proto, "-warmup", "2"}
		if err := run(args, nil, &out, io.Discard); err != nil {
			t.Fatalf("%s: %v", proto, err)
		}
		got := out.String()
		if !strings.Contains(got, "200 pairs") || !strings.Contains(got, "p99") || !strings.Contains(got, proto) {
			t.Fatalf("%s load output %q lacks pairs/percentiles/protocol", proto, got)
		}
	}
}

// TestLoadSweepJSON pins the -parallel sweep and the BENCH_SERVE.json
// report shape.
func TestLoadSweepJSON(t *testing.T) {
	gp := writeIndexedGraph(t)
	jp := filepath.Join(t.TempDir(), "bench.json")
	var out bytes.Buffer
	args := []string{"load", "-graph", gp, "-n", "100", "-parallel", "1,2", "-json", jp}
	if err := run(args, nil, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(jp)
	if err != nil {
		t.Fatal(err)
	}
	var rp struct {
		Command string `json:"command"`
		Runs    []struct {
			Protocol string  `json:"protocol"`
			Workers  int     `json:"workers"`
			QPS      float64 `json:"qps"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(b, &rp); err != nil {
		t.Fatal(err)
	}
	if len(rp.Runs) != 2 || rp.Runs[0].Workers != 1 || rp.Runs[1].Workers != 2 {
		t.Fatalf("report runs %+v", rp.Runs)
	}
	for _, r := range rp.Runs {
		if r.Protocol != "inproc" || r.QPS <= 0 {
			t.Fatalf("bad run %+v", r)
		}
	}
	if !strings.Contains(rp.Command, "-parallel 1,2") {
		t.Fatalf("report command %q does not reproduce the invocation", rp.Command)
	}
}

// TestLoadFlagValidation pins that bad flag combinations fail at parse
// time, before any index is loaded (the graph path here does not even
// exist).
func TestLoadFlagValidation(t *testing.T) {
	for _, tc := range []struct {
		args []string
		want string
	}{
		{[]string{"load", "-graph", "nope.hwg", "-proto", "grpc"}, "-proto"},
		{[]string{"load", "-graph", "nope.hwg", "-writeratio", "1.5"}, "-writeratio"},
		{[]string{"load", "-graph", "nope.hwg", "-writeratio", "0.5", "-proto", "binary"}, "in-process"},
		{[]string{"load", "-graph", "nope.hwg", "-batch", "0"}, "-batch"},
		{[]string{"load", "-graph", "nope.hwg", "-parallel", "1,zero"}, "-parallel"},
	} {
		err := run(tc.args, nil, io.Discard, io.Discard)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("args %v: err = %v, want mention of %q", tc.args, err, tc.want)
		}
	}
}

func TestBatchFromStdin(t *testing.T) {
	gp := writeIndexedGraph(t)

	var out, errOut bytes.Buffer
	in := strings.NewReader("0 1\n5 9\n")
	if err := run([]string{"batch", "-graph", gp, "-workers", "2"}, in, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(errOut.String(), "2 pairs") {
		t.Fatalf("stats line %q lacks pair count", errOut.String())
	}
	got := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(got) != 2 {
		t.Fatalf("batch wrote %d lines, want 2: %q", len(got), out.String())
	}

	// Distances must match the library answer on the same pairs.
	g, err := highway.LoadGraph(gp)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := highway.LoadIndex(gp+".idx", g)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range []highway.Pair{{S: 0, T: 1}, {S: 5, T: 9}} {
		want := strconv.Itoa(int(ix.Distance(p.S, p.T)))
		if got[i] != want {
			t.Fatalf("line %d = %q, want %s", i, got[i], want)
		}
	}
}

func TestMissingGraphFlag(t *testing.T) {
	var out bytes.Buffer
	for _, cmd := range []string{"load", "genpairs", "serve"} {
		if err := run([]string{cmd}, nil, &out, io.Discard); err == nil {
			t.Fatalf("%s without -graph: want error", cmd)
		}
	}
}

func TestMixedLoad(t *testing.T) {
	gp := writeIndexedGraph(t)
	var out bytes.Buffer
	if err := run([]string{"load", "-graph", gp, "-n", "500", "-seed", "1", "-workers", "2", "-writeratio", "0.05"}, nil, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "500 pairs") || !strings.Contains(out.String(), "writes") {
		t.Fatalf("mixed load output %q lacks read/write stats", out.String())
	}

	if err := run([]string{"load", "-graph", gp, "-writeratio", "1.5"}, nil, &out, io.Discard); err == nil {
		t.Fatal("want error for write ratio outside [0,1]")
	}
}

func TestServeBadWALPath(t *testing.T) {
	gp := writeIndexedGraph(t)
	var out bytes.Buffer
	err := run([]string{"serve", "-graph", gp, "-wal", filepath.Join(gp, "impossible", "edges.wal")}, nil, &out, io.Discard)
	if err == nil {
		t.Fatal("want error for unopenable WAL path")
	}
}

// writeMethodIndex builds a non-hl index next to the graph, for the
// generic serving paths.
func writeMethodIndex(t *testing.T, methodName string) (graphPath, indexPath string) {
	t.Helper()
	g := highway.BarabasiAlbert(300, 3, 5)
	dir := t.TempDir()
	gp := filepath.Join(dir, "g.hwg")
	if err := highway.SaveGraph(g, gp); err != nil {
		t.Fatal(err)
	}
	ix, err := highway.Build(context.Background(), g, methodName, highway.WithLandmarkCount(8))
	if err != nil {
		t.Fatal(err)
	}
	ip := gp + ".idx"
	if err := ix.Save(ip); err != nil {
		t.Fatal(err)
	}
	return gp, ip
}

// TestBatchAnyMethod runs the offline batch pipeline over a PLL index:
// the shared loader must detect the method tag and the generic server
// must answer through the interface.
func TestBatchAnyMethod(t *testing.T) {
	gp, _ := writeMethodIndex(t, "pll")
	var out, errOut bytes.Buffer
	in := strings.NewReader("0 1\n5 9\n")
	if err := run([]string{"batch", "-graph", gp, "-workers", "2"}, in, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	got := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(got) != 2 {
		t.Fatalf("batch wrote %d lines, want 2: %q", len(got), out.String())
	}
	g, err := highway.LoadGraph(gp)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := highway.Build(context.Background(), g, "pll")
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range [][2]int32{{0, 1}, {5, 9}} {
		if want := fmt.Sprint(ix.Distance(p[0], p[1])); got[i] != want {
			t.Fatalf("pair %v: batch says %s, index says %s", p, got[i], want)
		}
	}
}

// TestServeMethodMismatch pins the -method cross-check: pointing serve
// at a pll file while asking for hl must fail loudly before listening.
func TestServeMethodMismatch(t *testing.T) {
	gp, ip := writeMethodIndex(t, "pll")
	err := run([]string{"serve", "-graph", gp, "-index", ip, "-method", "hl", "-addr", "127.0.0.1:0"},
		nil, io.Discard, io.Discard)
	if err == nil || !strings.Contains(err.Error(), `"pll"`) {
		t.Fatalf("err = %v, want a method-mismatch error naming pll", err)
	}
	// A WAL needs the hl pipeline.
	err = run([]string{"serve", "-graph", gp, "-index", ip, "-wal", filepath.Join(t.TempDir(), "edges.wal"), "-addr", "127.0.0.1:0"},
		nil, io.Discard, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "hl index") {
		t.Fatalf("err = %v, want the -wal/-method conflict", err)
	}
	// -writeratio load needs hl too.
	err = run([]string{"load", "-graph", gp, "-index", ip, "-n", "10", "-writeratio", "0.5"},
		nil, io.Discard, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "hl index") {
		t.Fatalf("err = %v, want the -writeratio restriction", err)
	}
}
