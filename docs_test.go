package highway_test

import (
	"bufio"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// TestDocRefsExist fails when a Go comment or a curated markdown doc
// references a markdown file that does not exist, so documentation
// pointers (DESIGN.md, EXPERIMENTS.md, README.md, …) cannot rot. CI
// runs it in the docs job; it also runs with the normal test suite.
//
// Scanned: every .go file's comments (line and doc comments), plus the
// curated docs listed below. Deliberately NOT scanned: PAPERS.md,
// SNIPPETS.md, ISSUE.md and CHANGES.md, which quote external material
// and per-PR logs that may name files from other repositories.
func TestDocRefsExist(t *testing.T) {
	root, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	// The test runs in the package directory == repository root (this
	// file lives at the root). Guard against being moved.
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Fatalf("expected to run at the repository root: %v", err)
	}

	mdRef := regexp.MustCompile(`[A-Za-z0-9_\-./]*[A-Za-z0-9_\-]\.md\b`)
	curated := map[string]bool{
		"README.md": true, "DESIGN.md": true, "EXPERIMENTS.md": true, "ROADMAP.md": true,
	}

	var violations []string
	checkLine := func(path string, lineNo int, text string) {
		for _, ref := range mdRef.FindAllString(text, -1) {
			if strings.Contains(text, "://") {
				continue // URLs point elsewhere
			}
			// Resolve relative to the repo root, then relative to the
			// referencing file; either existing is fine.
			if _, err := os.Stat(filepath.Join(root, ref)); err == nil {
				continue
			}
			if _, err := os.Stat(filepath.Join(filepath.Dir(path), ref)); err == nil {
				continue
			}
			violations = append(violations, strings.TrimPrefix(path, root+"/")+
				":"+itoa(lineNo)+": reference to missing "+ref)
		}
	}

	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name == ".git" || name == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		isGo := strings.HasSuffix(path, ".go")
		isCurated := curated[filepath.Base(path)] && filepath.Dir(path) == root
		if !isGo && !isCurated {
			return nil
		}
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		sc := bufio.NewScanner(f)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		for lineNo := 1; sc.Scan(); lineNo++ {
			line := sc.Text()
			if isGo {
				// Only comments: references inside string literals are
				// data, not documentation.
				i := strings.Index(line, "//")
				if i < 0 {
					continue
				}
				line = line[i:]
			}
			checkLine(path, lineNo, line)
		}
		return sc.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range violations {
		t.Error(v)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [12]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
