package highway_test

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"highway/internal/wire"
)

// TestDocRefsExist fails when a Go comment or a curated markdown doc
// references a markdown file that does not exist, so documentation
// pointers (DESIGN.md, EXPERIMENTS.md, README.md, …) cannot rot. CI
// runs it in the docs job; it also runs with the normal test suite.
//
// Scanned: every .go file's comments (line and doc comments), plus the
// curated docs listed below. Deliberately NOT scanned: PAPERS.md,
// SNIPPETS.md, ISSUE.md and CHANGES.md, which quote external material
// and per-PR logs that may name files from other repositories.
func TestDocRefsExist(t *testing.T) {
	root, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	// The test runs in the package directory == repository root (this
	// file lives at the root). Guard against being moved.
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Fatalf("expected to run at the repository root: %v", err)
	}

	mdRef := regexp.MustCompile(`[A-Za-z0-9_\-./]*[A-Za-z0-9_\-]\.md\b`)
	curated := map[string]bool{
		"README.md": true, "DESIGN.md": true, "EXPERIMENTS.md": true, "ROADMAP.md": true,
		"PROTOCOL.md": true,
	}

	var violations []string
	checkLine := func(path string, lineNo int, text string) {
		for _, ref := range mdRef.FindAllString(text, -1) {
			if strings.Contains(text, "://") {
				continue // URLs point elsewhere
			}
			// Resolve relative to the repo root, then relative to the
			// referencing file; either existing is fine.
			if _, err := os.Stat(filepath.Join(root, ref)); err == nil {
				continue
			}
			if _, err := os.Stat(filepath.Join(filepath.Dir(path), ref)); err == nil {
				continue
			}
			violations = append(violations, strings.TrimPrefix(path, root+"/")+
				":"+itoa(lineNo)+": reference to missing "+ref)
		}
	}

	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name == ".git" || name == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		isGo := strings.HasSuffix(path, ".go")
		isCurated := curated[filepath.Base(path)] && filepath.Dir(path) == root
		if !isGo && !isCurated {
			return nil
		}
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		sc := bufio.NewScanner(f)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		for lineNo := 1; sc.Scan(); lineNo++ {
			line := sc.Text()
			if isGo {
				// Only comments: references inside string literals are
				// data, not documentation.
				i := strings.Index(line, "//")
				if i < 0 {
					continue
				}
				line = line[i:]
			}
			checkLine(path, lineNo, line)
		}
		return sc.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range violations {
		t.Error(v)
	}
}

// TestProtocolDocMatchesWire pins PROTOCOL.md to the wire package in
// both directions: every record type and error code the implementation
// knows must appear in the spec's tables under its canonical name and
// value, and every type-looking table row in the spec must correspond
// to an implemented constant. The wire format cannot drift from its
// documentation without failing CI's docs job.
func TestProtocolDocMatchesWire(t *testing.T) {
	doc, err := os.ReadFile("PROTOCOL.md")
	if err != nil {
		t.Fatal(err)
	}
	text := string(doc)

	// Load-bearing facts outside the tables.
	for _, want := range []string{
		fmt.Sprintf("`%s`", wire.Magic),
		"CRC-32C",
		"little-endian",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("PROTOCOL.md does not mention %s", want)
		}
	}

	// Table rows: "| 0x01 | Distance | ..." for types,
	// "| 1 | Malformed | ..." for error codes.
	typeRow := regexp.MustCompile(`(?mi)^\|\s*0x([0-9a-f]{2})\s*\|\s*([A-Za-z]+)\s*\|`)
	docTypes := map[wire.Type]string{}
	for _, m := range typeRow.FindAllStringSubmatch(text, -1) {
		v, err := strconv.ParseUint(m[1], 16, 8)
		if err != nil {
			t.Fatalf("row %q: %v", m[0], err)
		}
		docTypes[wire.Type(v)] = m[2]
	}
	for typ, name := range wire.TypeNames {
		if got, ok := docTypes[typ]; !ok {
			t.Errorf("record type 0x%02x (%s) is implemented but not specified in PROTOCOL.md", byte(typ), name)
		} else if got != name {
			t.Errorf("record type 0x%02x is %q in PROTOCOL.md but %q in internal/wire", byte(typ), got, name)
		}
	}
	for typ, name := range docTypes {
		if _, ok := wire.TypeNames[typ]; !ok {
			t.Errorf("PROTOCOL.md specifies record type 0x%02x (%s) that internal/wire does not implement", byte(typ), name)
		}
	}

	codeRow := regexp.MustCompile(`(?m)^\|\s*([0-9]+)\s*\|\s*([A-Za-z]+)\s*\|`)
	docCodes := map[wire.ErrorCode]string{}
	for _, m := range codeRow.FindAllStringSubmatch(text, -1) {
		v, err := strconv.ParseUint(m[1], 10, 16)
		if err != nil {
			t.Fatalf("row %q: %v", m[0], err)
		}
		docCodes[wire.ErrorCode(v)] = m[2]
	}
	for code, name := range wire.ErrorCodeNames {
		if got, ok := docCodes[code]; !ok {
			t.Errorf("error code %d (%s) is implemented but not specified in PROTOCOL.md", code, name)
		} else if got != name {
			t.Errorf("error code %d is %q in PROTOCOL.md but %q in internal/wire", code, got, name)
		}
	}
	for code, name := range docCodes {
		if _, ok := wire.ErrorCodeNames[code]; !ok {
			t.Errorf("PROTOCOL.md specifies error code %d (%s) that internal/wire does not implement", code, name)
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [12]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
