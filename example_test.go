package highway_test

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"

	"highway"
)

// ExampleBuildIndex builds an index over a small explicit graph and
// answers a query. The graph is a 6-cycle with one chord.
func ExampleBuildIndex() {
	g, err := highway.FromEdges(6, [][2]int32{
		{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}, {1, 4},
	})
	if err != nil {
		panic(err)
	}
	landmarks, _ := highway.SelectLandmarks(g, 2, highway.ByDegree, 0)
	ix, _ := highway.BuildIndex(g, landmarks)
	fmt.Println(ix.Distance(0, 3))
	fmt.Println(ix.Distance(2, 5))
	// Output:
	// 3
	// 3
}

// ExampleNewServer serves an index over the HTTP/JSON API and answers
// one request. Production servers use ListenAndServe; the test uses an
// httptest listener around the same Handler.
func ExampleNewServer() {
	g, _ := highway.FromEdges(6, [][2]int32{
		{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}, {1, 4},
	})
	landmarks, _ := highway.SelectLandmarks(g, 2, highway.ByDegree, 0)
	ix, _ := highway.BuildIndex(g, landmarks)

	srv := highway.NewServer(ix, highway.ServeConfig{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/distance?s=0&t=3")
	if err != nil {
		panic(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	fmt.Print(string(body))
	// Output:
	// {"s":0,"t":3,"distance":3}
}

// ExampleServer_InsertEdges shows the live-update API: a server built
// with NewLiveServer accepts edge insertions (programmatically here;
// POST /edges over HTTP) and every subsequent read sees them. Passing a
// WAL in LiveConfig would additionally make the writes crash-durable.
func ExampleServer_InsertEdges() {
	g, _ := highway.FromEdges(6, [][2]int32{
		{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}, {1, 4},
	})
	landmarks, _ := highway.SelectLandmarks(g, 2, highway.ByDegree, 0)
	ix, _ := highway.BuildIndex(g, landmarks)

	srv, _ := highway.NewLiveServer(ix, highway.LiveConfig{})
	defer srv.Close()

	before, _ := srv.Distance(0, 3)
	res, _ := srv.InsertEdges([][2]int32{{0, 3}})
	after, _ := srv.Distance(0, 3)
	fmt.Printf("d(0,3) before=%d after=%d (inserted %d edge at epoch %d)\n",
		before, after, res.Inserted, res.Epoch)
	// Output:
	// d(0,3) before=3 after=1 (inserted 1 edge at epoch 1)
}

// ExampleClient serves an index over the binary wire protocol
// (PROTOCOL.md) on a loopback listener and queries it with the native
// pooled client: one framed round trip per Distance call, one for the
// whole batch. Production servers pass a real address ("hlserve serve
// -binaddr :8081" is this same pairing from the command line).
func ExampleClient() {
	g, _ := highway.FromEdges(6, [][2]int32{
		{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}, {1, 4},
	})
	landmarks, _ := highway.SelectLandmarks(g, 2, highway.ByDegree, 0)
	ix, _ := highway.BuildIndex(g, landmarks)
	srv := highway.NewServer(ix, highway.ServeConfig{})

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.ServeBinary(ctx, ln) }()

	cl, err := highway.Dial(ctx, ln.Addr().String(), highway.ClientConfig{})
	if err != nil {
		panic(err)
	}
	d, _ := cl.Distance(ctx, 0, 3)
	ds, _ := cl.DistanceBatch(ctx, [][2]int32{{2, 5}, {1, 4}}, nil)
	fmt.Println(d)
	fmt.Println(ds)
	cl.Close()

	cancel()
	<-done
	// Output:
	// 3
	// [3 1]
}

// ExampleBuild builds three different labelling methods through the
// unified registry entry point with functional options, queries them
// through the shared DistanceIndex interface, and round-trips one via
// Save/LoadIndexAny. The answers agree because every method is exact.
func ExampleBuild() {
	g, _ := highway.FromEdges(6, [][2]int32{
		{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}, {1, 4},
	})
	ctx := context.Background()
	landmarks, _ := highway.SelectLandmarks(g, 2, highway.ByDegree, 0)

	for _, name := range []string{"hl", "pll", "isl"} {
		ix, err := highway.Build(ctx, g, name,
			highway.WithLandmarks(landmarks), // used by hl; pll and isl ignore it
			highway.WithWorkers(1),
		)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%s: d(0,3)=%d\n", ix.Stats().Method, ix.Distance(0, 3))
	}

	dir, _ := os.MkdirTemp("", "highway-example")
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "g.pll.idx")
	ix, _ := highway.Build(ctx, g, "pll")
	_ = ix.Save(path)
	back, _ := highway.LoadIndexAny(path, g) // the method tag selects the decoder
	fmt.Printf("loaded %s: d(2,5)=%d\n", back.Stats().Method, back.Distance(2, 5))
	// Output:
	// hl: d(0,3)=3
	// pll: d(0,3)=3
	// isl: d(0,3)=3
	// loaded pll: d(2,5)=3
}

// ExampleIndex_UpperBound shows the offline bound versus the exact
// distance on a path where the landmark sits at one end.
func ExampleIndex_UpperBound() {
	g, _ := highway.FromEdges(5, [][2]int32{{0, 1}, {1, 2}, {2, 3}, {3, 4}})
	ix, _ := highway.BuildIndex(g, []int32{0}) // landmark at the left end
	// The only landmark detour between 1 and 4 goes 1→0→...→4.
	fmt.Println(ix.UpperBound(1, 4))
	fmt.Println(ix.Distance(1, 4))
	// Output:
	// 5
	// 3
}

// ExampleSearcher_Path reconstructs one shortest path. Path lives on
// the concrete highway cover Searcher (Index.Searcher); the
// method-agnostic NewSearcher interface covers Distance and UpperBound
// only.
func ExampleSearcher_Path() {
	g, _ := highway.FromEdges(5, [][2]int32{{0, 1}, {1, 2}, {2, 3}, {3, 4}})
	ix, _ := highway.BuildIndex(g, []int32{2})
	sr := ix.Searcher()
	fmt.Println(sr.Path(0, 4))
	// Output:
	// [0 1 2 3 4]
}
