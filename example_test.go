package highway_test

import (
	"fmt"

	"highway"
)

// ExampleBuildIndex builds an index over a small explicit graph and
// answers a query. The graph is a 6-cycle with one chord.
func ExampleBuildIndex() {
	g, err := highway.FromEdges(6, [][2]int32{
		{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}, {1, 4},
	})
	if err != nil {
		panic(err)
	}
	landmarks, _ := highway.SelectLandmarks(g, 2, highway.ByDegree, 0)
	ix, _ := highway.BuildIndex(g, landmarks)
	fmt.Println(ix.Distance(0, 3))
	fmt.Println(ix.Distance(2, 5))
	// Output:
	// 3
	// 3
}

// ExampleIndex_UpperBound shows the offline bound versus the exact
// distance on a path where the landmark sits at one end.
func ExampleIndex_UpperBound() {
	g, _ := highway.FromEdges(5, [][2]int32{{0, 1}, {1, 2}, {2, 3}, {3, 4}})
	ix, _ := highway.BuildIndex(g, []int32{0}) // landmark at the left end
	// The only landmark detour between 1 and 4 goes 1→0→...→4.
	fmt.Println(ix.UpperBound(1, 4))
	fmt.Println(ix.Distance(1, 4))
	// Output:
	// 5
	// 3
}

// ExampleSearcher_Path reconstructs one shortest path.
func ExampleSearcher_Path() {
	g, _ := highway.FromEdges(5, [][2]int32{{0, 1}, {1, 2}, {2, 3}, {3, 4}})
	ix, _ := highway.BuildIndex(g, []int32{2})
	sr := ix.NewSearcher()
	fmt.Println(sr.Path(0, 4))
	// Output:
	// [0 1 2 3 4]
}
