// Dynamic graphs: complex networks grow continuously ("large and
// ever-growing networks", paper Section 1). The FD baseline (Hayashi et
// al. 2016) that this repository implements is fully dynamic on the
// insert side: its landmark shortest-path trees are repaired in place as
// edges arrive, so queries stay exact without rebuilding.
//
// This example streams 2,000 new friendships into a social network and
// compares a query before and after, then contrasts with the HL index
// (which, per the paper, is static and would be rebuilt — a cheap
// operation thanks to its construction speed).
//
//	go run ./examples/dynamicgraph
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"time"

	"highway"
)

func main() {
	g := highway.BarabasiAlbert(50_000, 4, 11)
	landmarks, err := highway.SelectLandmarks(g, 16, highway.ByDegree, 0)
	if err != nil {
		log.Fatal(err)
	}

	fdIx, err := highway.BuildFD(context.Background(), g, landmarks)
	if err != nil {
		log.Fatal(err)
	}
	hlIx, err := highway.BuildIndex(g, landmarks)
	if err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewSource(3))
	s, t := int32(rng.Intn(g.NumVertices())), int32(rng.Intn(g.NumVertices()))
	fmt.Printf("before updates: d(%d,%d) = %d\n", s, t, fdIx.NewSearcher().Distance(s, t))

	// Stream edge insertions through the FD oracle.
	start := time.Now()
	inserted := 0
	for inserted < 2000 {
		u, v := int32(rng.Intn(g.NumVertices())), int32(rng.Intn(g.NumVertices()))
		if u == v {
			continue
		}
		if err := fdIx.InsertEdge(u, v); err != nil {
			log.Fatal(err)
		}
		inserted++
	}
	fmt.Printf("applied %d edge insertions in %s (%.1f µs/update)\n",
		inserted, time.Since(start).Round(time.Millisecond),
		float64(time.Since(start).Microseconds())/float64(inserted))
	fmt.Printf("after updates:  d(%d,%d) = %d (exact on the evolved graph)\n",
		s, t, fdIx.NewSearcher().Distance(s, t))

	// The static HL index would be rebuilt (cheap, per the paper); the
	// repository also ships a dynamic HL variant that repairs only the
	// landmarks whose shortest-path trees the new edges can affect,
	// producing an index identical to a from-scratch build.
	start = time.Now()
	hlIx, err = highway.BuildIndex(g, landmarks)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("HL full rebuild on the original graph: %s (labelling %d entries)\n",
		time.Since(start).Round(time.Millisecond), hlIx.NumEntries())

	dyn, err := highway.BuildDynamic(g, landmarks)
	if err != nil {
		log.Fatal(err)
	}
	batch := make([][2]int32, 0, 500)
	for len(batch) < 500 {
		u, v := int32(rng.Intn(g.NumVertices())), int32(rng.Intn(g.NumVertices()))
		if u != v {
			batch = append(batch, [2]int32{u, v})
		}
	}
	start = time.Now()
	if err := dyn.InsertEdges(batch); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dynamic HL absorbed a %d-edge batch in %s (selective landmark rebuild), d(%d,%d) = %d\n",
		len(batch), time.Since(start).Round(time.Millisecond), s, t, dyn.Distance(s, t))
}
