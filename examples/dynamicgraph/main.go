// Dynamic graphs: complex networks grow continuously ("large and
// ever-growing networks", paper Section 1). This example runs the
// repository's *live serving* subsystem end to end — the machinery that
// closes the gap to the FD baseline (Hayashi et al. 2016), which is
// dynamic on the insert side where the paper's labelling is static:
//
//  1. build a highway cover index over a social network and start a
//     live HTTP server with a write-ahead edge log;
//
//  2. stream new friendships into it over POST /edges while reading
//     distances over GET /distance — reads stay lock-free against an
//     atomically swapped snapshot;
//
//  3. force the staleness threshold, watch the background rebuild
//     hot-swap a fresh index and compact the WAL (visible in /stats);
//
//  4. restart the server and show that WAL replay reconstructs every
//     acknowledged edge.
//
// Run with:
//
//	go run ./examples/dynamicgraph
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"math/rand"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"highway"
)

func main() {
	g := highway.BarabasiAlbert(20_000, 4, 11)
	landmarks, err := highway.SelectLandmarks(g, 16, highway.ByDegree, 0)
	if err != nil {
		log.Fatal(err)
	}
	ix, err := highway.BuildIndex(g, landmarks)
	if err != nil {
		log.Fatal(err)
	}

	dir, err := os.MkdirTemp("", "dynamicgraph")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	walPath := filepath.Join(dir, "edges.wal")
	graphPath := filepath.Join(dir, "g.hwg")
	indexPath := graphPath + ".idx"
	if err := highway.SaveGraph(g, graphPath); err != nil {
		log.Fatal(err)
	}
	if err := ix.Save(indexPath); err != nil {
		log.Fatal(err)
	}

	// Start a live server: durable updates, rebuild after 600 accepted
	// edges (deliberately low so the example reaches the rebuild).
	startServer := func() (*highway.Server, string, context.CancelFunc) {
		wal, err := highway.OpenWAL(walPath)
		if err != nil {
			log.Fatal(err)
		}
		srv, err := highway.NewLiveServer(ix, highway.LiveConfig{WAL: wal, RebuildThreshold: 600})
		if err != nil {
			log.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan struct{})
		go func() {
			defer close(done)
			if err := srv.Serve(ctx, ln); err != nil {
				log.Print(err)
			}
		}()
		url := "http://" + ln.Addr().String()
		return srv, url, func() { cancel(); <-done; srv.Close() }
	}

	srv, url, stop := startServer()

	getDistance := func(s, t int32) int32 {
		resp, err := http.Get(fmt.Sprintf("%s/distance?s=%d&t=%d", url, s, t))
		if err != nil {
			log.Fatal(err)
		}
		defer resp.Body.Close()
		var body struct {
			Distance int32 `json:"distance"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			log.Fatal(err)
		}
		return body.Distance
	}

	rng := rand.New(rand.NewSource(3))
	s, t := int32(rng.Intn(g.NumVertices())), int32(rng.Intn(g.NumVertices()))
	fmt.Printf("before updates: d(%d,%d) = %d\n", s, t, getDistance(s, t))

	// Stream 1,000 new friendships in batches of 50 over the wire. Each
	// acknowledged batch is fsynced to the WAL and visible to the very
	// next read.
	start := time.Now()
	accepted := 0
	for batch := 0; batch < 20; batch++ {
		edges := make([][]int32, 50)
		for i := range edges {
			edges[i] = []int32{int32(rng.Intn(g.NumVertices())), int32(rng.Intn(g.NumVertices()))}
		}
		body, _ := json.Marshal(map[string]any{"edges": edges})
		resp, err := http.Post(url+"/edges", "application/json", bytes.NewReader(body))
		if err != nil {
			log.Fatal(err)
		}
		var res highway.InsertResult
		if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
			log.Fatal(err)
		}
		resp.Body.Close()
		accepted += res.Accepted
	}
	fmt.Printf("streamed %d edge insertions over POST /edges in %s\n",
		accepted, time.Since(start).Round(time.Millisecond))
	fmt.Printf("after updates:  d(%d,%d) = %d (exact on the evolved graph)\n", s, t, getDistance(s, t))

	// 1,000 accepted edges crossed the 600-edge staleness threshold, so
	// a background rebuild is (or was) in flight: wait for it and show
	// the lifecycle counters from /stats.
	for srv.Rebuilding() {
		time.Sleep(10 * time.Millisecond)
	}
	st := srv.LiveStats()
	fmt.Printf("background rebuilds: %d (last took %.1fms); WAL compacted to %d records; snapshot epoch %d\n",
		st.Rebuilds, st.LastRebuildMs, st.WALLen, st.Epoch)

	// Kill and restart: the compacted snapshot + WAL replay reconstruct
	// every acknowledged edge.
	dBefore := getDistance(s, t)
	stop()
	srv2, err := highway.LoadLiveServer(graphPath, indexPath, walPath, highway.LiveConfig{})
	if err != nil {
		log.Fatal(err)
	}
	defer srv2.Close()
	dAfter, err := srv2.Distance(s, t)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("restart + WAL replay: d(%d,%d) = %d (was %d before the kill)\n", s, t, dAfter, dBefore)
	if dAfter != dBefore {
		log.Fatal("replay lost an acknowledged edge")
	}
}
