// Quickstart: build a highway cover distance labelling over a synthetic
// social network and answer exact distance queries in microseconds.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"highway"
)

func main() {
	// A scale-free network of 200k members, ~1M friendships — the shape
	// the paper's method is designed for.
	fmt.Println("generating a 200k-vertex scale-free network ...")
	g := highway.BarabasiAlbert(200_000, 5, 42)
	fmt.Printf("graph: n=%d m=%d avg.deg=%.1f\n", g.NumVertices(), g.NumEdges(), g.AvgDegree())

	// The paper selects the top-degree vertices as landmarks (Section 6.3).
	landmarks, err := highway.SelectLandmarks(g, 20, highway.ByDegree, 0)
	if err != nil {
		log.Fatal(err)
	}

	// Build the labelling with one pruned BFS per landmark, in parallel
	// (the paper's HL-P). The result is minimal and deterministic.
	start := time.Now()
	ix, err := highway.BuildIndex(g, landmarks)
	if err != nil {
		log.Fatal(err)
	}
	st := ix.Stats()
	fmt.Printf("index built in %s: %.1f entries/vertex, %d KB compressed\n",
		time.Since(start).Round(time.Millisecond), st.AvgLabelSize, st.Bytes8/1024)

	// Query: exact distances via upper bound + bounded search.
	sr := ix.NewSearcher()
	queries := highway.RandomPairs(g, 5, 7)
	for _, q := range queries {
		t0 := time.Now()
		d := sr.Distance(q.S, q.T)
		fmt.Printf("d(%6d, %6d) = %d   (%s)\n", q.S, q.T, d, time.Since(t0))
	}

	// Average latency over a paper-sized sample.
	pairs := highway.RandomPairs(g, 100_000, 1)
	t0 := time.Now()
	for _, q := range pairs {
		sr.Distance(q.S, q.T)
	}
	per := time.Since(t0) / time.Duration(len(pairs))
	fmt.Printf("average over %d random queries: %s/query\n", len(pairs), per)
}
