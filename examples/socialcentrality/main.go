// Social-network centrality: the paper's introduction motivates distance
// oracles with social network analysis, where "distance is used as a core
// measure in many problems such as centrality", requiring distances for a
// large number of vertex pairs.
//
// This example estimates closeness centrality for candidate influencers
// over a 100k-member network by firing hundreds of thousands of exact
// distance queries through the highway cover labelling — work that would
// take hours with per-pair BFS.
//
//	go run ./examples/socialcentrality
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"
	"time"

	"highway"
)

func main() {
	fmt.Println("generating a 100k-member social network ...")
	g := highway.BarabasiAlbert(100_000, 6, 2024)
	landmarks, err := highway.SelectLandmarks(g, 30, highway.ByDegree, 0)
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	ix, err := highway.BuildIndex(g, landmarks)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("index ready in %s\n", time.Since(start).Round(time.Millisecond))

	// Candidates: 25 random members plus 5 hubs. Closeness is estimated
	// against a fixed random sample of the population (standard sampling
	// estimator: n_samples / Σ d(c, sample)).
	rng := rand.New(rand.NewSource(9))
	candidates := map[int32]bool{}
	for len(candidates) < 25 {
		candidates[int32(rng.Intn(g.NumVertices()))] = true
	}
	for _, hub := range landmarks[:5] {
		candidates[hub] = true
	}
	sample := make([]int32, 4000)
	for i := range sample {
		sample[i] = int32(rng.Intn(g.NumVertices()))
	}

	type scored struct {
		v         int32
		closeness float64
	}
	var results []scored
	sr := ix.NewSearcher()
	queries := 0
	start = time.Now()
	for c := range candidates {
		var sum int64
		for _, s := range sample {
			if d := sr.Distance(c, s); d > 0 {
				sum += int64(d)
			}
			queries++
		}
		results = append(results, scored{v: c, closeness: float64(len(sample)) / float64(sum)})
	}
	elapsed := time.Since(start)
	sort.Slice(results, func(i, j int) bool { return results[i].closeness > results[j].closeness })

	fmt.Printf("ranked %d candidates with %d exact distance queries in %s (%.1f µs/query)\n",
		len(results), queries, elapsed.Round(time.Millisecond),
		float64(elapsed.Microseconds())/float64(queries))
	fmt.Println("top 5 by closeness centrality:")
	for i := 0; i < 5 && i < len(results); i++ {
		tag := ""
		if g.Degree(results[i].v) > 100 {
			tag = " (hub)"
		}
		fmt.Printf("  #%d vertex %6d  closeness %.4f  degree %d%s\n",
			i+1, results[i].v, results[i].closeness, g.Degree(results[i].v), tag)
	}
}
