// Context-aware web search: the paper's introduction cites ranking "web
// pages based on their distances to recently visited web pages" as a
// motivating application (context-aware search, Ukkonen et al.).
//
// This example builds the index over a skewed web-crawl-shaped graph
// (R-MAT), then re-ranks keyword-match candidates by their graph distance
// to the user's recent browsing context.
//
//	go run ./examples/websearch
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"
	"time"

	"highway"
)

func main() {
	fmt.Println("generating a web-crawl-shaped graph (R-MAT, 2^17 pages) ...")
	raw := highway.RMAT(17, 16, 77)
	g, _ := highway.LargestComponent(raw)
	fmt.Printf("crawl: n=%d m=%d max.deg=%d\n", g.NumVertices(), g.NumEdges(), maxDeg(g))

	landmarks, err := highway.SelectLandmarks(g, 40, highway.ByDegree, 0)
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	ix, err := highway.BuildIndex(g, landmarks)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("index ready in %s\n", time.Since(start).Round(time.Millisecond))

	// The user's context: the last 5 pages they visited. The "search
	// engine" returns 40 keyword candidates; we re-rank by the minimum
	// distance to any context page (closer = more relevant).
	rng := rand.New(rand.NewSource(5))
	context := make([]int32, 5)
	for i := range context {
		context[i] = int32(rng.Intn(g.NumVertices()))
	}
	candidates := make([]int32, 40)
	for i := range candidates {
		candidates[i] = int32(rng.Intn(g.NumVertices()))
	}

	type ranked struct {
		page int32
		dist int32
	}
	sr := ix.NewSearcher()
	var out []ranked
	start = time.Now()
	for _, c := range candidates {
		best := highway.Infinity
		for _, ctx := range context {
			if d := sr.Distance(c, ctx); d >= 0 && (best < 0 || d < best) {
				best = d
			}
		}
		out = append(out, ranked{page: c, dist: best})
	}
	elapsed := time.Since(start)
	sort.Slice(out, func(i, j int) bool {
		di, dj := out[i].dist, out[j].dist
		if di < 0 {
			return false
		}
		if dj < 0 {
			return true
		}
		return di < dj
	})

	fmt.Printf("re-ranked %d candidates against %d context pages in %s\n",
		len(candidates), len(context), elapsed.Round(time.Microsecond))
	fmt.Println("top 8 context-aware results:")
	for i := 0; i < 8 && i < len(out); i++ {
		fmt.Printf("  #%d page %6d  distance-to-context %d\n", i+1, out[i].page, out[i].dist)
	}
}

func maxDeg(g *highway.Graph) int {
	d, _ := g.MaxDegree()
	return d
}
