package highway_test

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"

	"highway"
)

// FuzzReadIndexAny holds every registered method's decoder total on
// arbitrary bytes: no panic, no runaway allocation — either a valid
// index or an error. Seeds are each method's own serialized output
// (the interesting shapes) plus the legacy magics.
func FuzzReadIndexAny(f *testing.F) {
	g := highway.BarabasiAlbert(60, 2, 3)
	dir := f.TempDir()
	for _, m := range highway.Methods() {
		ix, err := highway.Build(context.Background(), g, m.Name, highway.WithLandmarkCount(4))
		if err != nil {
			f.Fatal(err)
		}
		path := filepath.Join(dir, m.Name+".idx")
		if err := ix.Save(path); err != nil {
			f.Fatal(err)
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(raw)
	}
	f.Add([]byte("HWLIDX01"))
	f.Add([]byte("HWLIDX02"))

	f.Fuzz(func(t *testing.T, data []byte) {
		for _, m := range highway.Methods() {
			ix, err := m.Read(bytes.NewReader(data), g)
			if err != nil {
				continue
			}
			// A successfully decoded index must answer queries without
			// panicking.
			_ = ix.Distance(0, int32(g.NumVertices()-1))
			_ = ix.UpperBound(1, 2)
			_ = ix.Stats()
		}
	})
}
