module highway

go 1.24
