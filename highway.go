// Package highway is a Go implementation of the highway cover distance
// labelling of Farhan, Wang, Lin and McKay, "A Highly Scalable Labelling
// Approach for Exact Distance Queries in Complex Networks" (EDBT 2019):
// an exact shortest-path distance oracle for unweighted, undirected
// complex networks that combines a minimal, order-independent landmark
// labelling (built with one pruned BFS per landmark, optionally in
// parallel) with distance-bounded bidirectional search on the
// landmark-sparsified graph.
//
// # Quick start
//
//	g := highway.BarabasiAlbert(100_000, 5, 42)
//	landmarks, _ := highway.SelectLandmarks(g, 20, highway.ByDegree, 0)
//	ix, _ := highway.BuildIndex(g, landmarks)   // parallel pruned BFSs
//	d := ix.Distance(12, 34)                    // exact distance, -1 if disconnected
//
// For tight query loops create one Searcher per goroutine:
//
//	sr := ix.NewSearcher()
//	for _, q := range queries { _ = sr.Distance(q.S, q.T) }
//
// # Serving
//
// To serve an index to network clients, wrap it in a Server: pools of
// per-goroutine searchers behind an HTTP/JSON API with single and
// batched query endpoints, atomic latency/QPS counters at /stats, and
// graceful shutdown when the context is cancelled. The hlserve command
// is a thin CLI over the same machinery.
//
//	srv := highway.NewServer(ix, highway.ServeConfig{})
//	err := srv.ListenAndServe(ctx, ":8080")
//	// GET  /distance?s=12&t=34          -> {"s":12,"t":34,"distance":3}
//	// POST /distance/batch {"pairs":[[1,2],[3,4]]} -> {"count":2,"distances":[2,3]}
//
// For traffic that cannot afford the HTTP/1 + JSON protocol tax, the
// same Server also speaks a length-prefixed binary wire protocol
// (Server.ServeBinary; the frame format is specified in PROTOCOL.md),
// and Dial returns the native connection-pooled Client for it. Both
// listeners may run at once over the same snapshots and metrics:
//
//	go srv.ListenAndServeBinary(ctx, ":8081")
//	cl, _ := highway.Dial(ctx, "localhost:8081", highway.ClientConfig{})
//	d, _ := cl.Distance(ctx, 12, 34)                  // one framed round trip
//	ds, _ := cl.DistanceBatch(ctx, pairs, nil)        // thousands of pairs per round trip
//
// # Live updates
//
// A server built with NewLiveServer additionally accepts edge
// insertions and deletions while serving: reads stay lock-free against
// an atomically swapped immutable snapshot, writes go through the
// dynamic labelling (selective landmark repair, with a full-rebuild
// fallback for deletion batches that dirty too many landmarks) and
// publish a fresh snapshot per batch. An optional write-ahead edge log
// (OpenWAL) makes acknowledged writes crash-durable — deletions are
// logged in the same file as one's-complement records — and a staleness
// threshold triggers background full rebuilds that hot-swap in and
// compact the log. See DESIGN.md for the architecture and lifecycle.
//
//	wal, _ := highway.OpenWAL("edges.wal")
//	srv, _ := highway.NewLiveServer(ix, highway.LiveConfig{WAL: wal})
//	// POST   /edges {"edge":[12,34]}       -> {"accepted":1,"inserted":1,"epoch":1}
//	// POST   /edges {"edges":[[1,2],[3,4]]}
//	// DELETE /edges {"edge":[12,34]}       -> {"accepted":1,"deleted":1,"epoch":2}
//
// # Methods
//
// The paper's method and every baseline it evaluates against (PLL, FD,
// IS-L) plus the dynamic highway labelling implement one interface —
// DistanceIndex — and register under one name, so all five build, query,
// persist and serve through the same API:
//
//	for _, m := range highway.Methods() { fmt.Println(m.Name) } // hl dynhl pll fd isl
//	ix, _ := highway.Build(ctx, g, "pll")
//	_ = ix.Save("g.pll.idx")
//	back, _ := highway.LoadIndexAny("g.pll.idx", g)
//	srv := highway.NewServerFor(back, highway.ServeConfig{})
//
// Build takes functional options (WithLandmarks, WithWorkers,
// WithDirection, WithProgress, WithBitParallel, ...). The per-method
// constructors below (BuildIndex, BuildPLL, BuildFD, BuildISL,
// BuildDynamic, ...) remain as thin deprecated shims over the same
// implementations.
package highway

import (
	"context"
	"io"

	"highway/internal/bfs"
	"highway/internal/core"
	"highway/internal/dynhl"
	"highway/internal/fd"
	"highway/internal/gen"
	"highway/internal/graph"
	"highway/internal/isl"
	"highway/internal/landmark"
	"highway/internal/pll"
	"highway/internal/serve"
	"highway/internal/workload"
)

// Graph is an immutable undirected graph in CSR form. Construct one with
// NewBuilder, FromEdges or the generators, or load one with LoadEdgeList /
// LoadGraph.
type Graph = graph.Graph

// Builder accumulates undirected edges and produces a deduplicated Graph.
type Builder = graph.Builder

// Index is a highway cover distance labelling: the exact distance oracle
// of the paper. Build one with BuildIndex.
type Index = core.Index

// Searcher answers queries against an Index without per-query allocation;
// create one per goroutine with Index.NewSearcher.
type Searcher = core.Searcher

// BuildOptions controls index construction (worker count, traversal
// direction, progress reporting).
type BuildOptions = core.Options

// BuildDirection selects how pruned-BFS levels are expanded during
// construction: the direction-optimizing hybrid (default), forced
// top-down, or forced bottom-up. Every direction produces a
// byte-identical index; this is a performance/diagnostic knob.
type BuildDirection = core.Direction

const (
	// DirectionAuto switches top-down/bottom-up per level (the default).
	DirectionAuto = core.DirectionAuto
	// DirectionTopDown forces the classic top-down expansion.
	DirectionTopDown = core.DirectionTopDown
	// DirectionBottomUp forces bottom-up expansion (diagnostic).
	DirectionBottomUp = core.DirectionBottomUp
)

// BuildStats describes how an index was constructed: worker count and
// per-direction traversal work. Available via Index.BuildStats.
type BuildStats = core.BuildStats

// TraversalStats counts top-down vs bottom-up levels and edges scanned
// by the traversal engine.
type TraversalStats = bfs.TraversalStats

// IndexStats summarizes an Index (entry counts, sizes).
type IndexStats = core.Stats

// Pair is one (s,t) distance query, as produced by RandomPairs.
type Pair = workload.Pair

// Infinity is returned by Distance for disconnected vertex pairs.
const Infinity = core.Infinity

// MaxLandmarks is the largest supported landmark count.
const MaxLandmarks = core.MaxLandmarks

// NewBuilder returns a Builder for a graph with n vertices.
func NewBuilder(n int) *Builder { return graph.NewBuilder(n) }

// FromEdges builds a graph with n vertices from an explicit edge list.
func FromEdges(n int, edges [][2]int32) (*Graph, error) { return graph.FromEdges(n, edges) }

// LoadEdgeList reads a whitespace-separated text edge list ('#'/'%'
// comments allowed, SNAP/KONECT style).
func LoadEdgeList(path string) (*Graph, error) { return graph.LoadEdgeList(path) }

// LoadGraph reads a binary graph file written by SaveGraph.
func LoadGraph(path string) (*Graph, error) { return graph.LoadBinary(path) }

// SaveGraph writes the graph in the compact binary format.
func SaveGraph(g *Graph, path string) error { return g.SaveBinary(path) }

// LargestComponent returns the induced subgraph of g's largest connected
// component and the mapping from new vertex ids to original ids. The
// labelling assumes connected inputs (paper Section 2); run this first on
// graphs that may be disconnected.
func LargestComponent(g *Graph) (*Graph, []int32) { return graph.LargestComponent(g) }

// Generators for synthetic networks (deterministic per seed).
//
// BarabasiAlbert yields scale-free social-network-like graphs; RMAT yields
// heavily skewed web-crawl-like graphs; ErdosRenyi and WattsStrogatz cover
// homogeneous and small-world baselines.
func BarabasiAlbert(n, k int, seed int64) *Graph { return gen.BarabasiAlbert(n, k, seed) }

// RMAT returns an R-MAT graph with 2^scale vertices and about
// edgeFactor*2^scale edges using the classic web skew (0.57,0.19,0.19,0.05).
func RMAT(scale uint, edgeFactor int, seed int64) *Graph {
	return gen.RMAT(scale, edgeFactor, 0.57, 0.19, 0.19, seed)
}

// ErdosRenyi returns a uniform random graph with n vertices and m edges.
func ErdosRenyi(n int, m int64, seed int64) *Graph { return gen.ErdosRenyi(n, m, seed) }

// WattsStrogatz returns a small-world ring lattice with rewiring
// probability beta.
func WattsStrogatz(n, k int, beta float64, seed int64) *Graph {
	return gen.WattsStrogatz(n, k, beta, seed)
}

// LandmarkStrategy selects how SelectLandmarks picks the landmark set.
type LandmarkStrategy = landmark.Strategy

const (
	// ByDegree picks the k highest-degree vertices (the paper's choice).
	ByDegree = landmark.Degree
	// ByRandom picks k vertices uniformly at random.
	ByRandom = landmark.Random
	// ByCloseness picks the k vertices with best sampled closeness.
	ByCloseness = landmark.Closeness
	// ByDegreeSpread picks high-degree vertices that are pairwise
	// non-adjacent where possible.
	ByDegreeSpread = landmark.DegreeSpread
)

// SelectLandmarks returns k landmarks under the given strategy (seed is
// used by the randomized strategies).
func SelectLandmarks(g *Graph, k int, strategy LandmarkStrategy, seed int64) ([]int32, error) {
	return landmark.Select(g, landmark.Options{K: k, Strategy: strategy, Seed: seed})
}

// BuildIndex constructs the highway cover labelling with one pruned BFS
// per landmark running in parallel (the paper's HL-P). The labelling is
// deterministic: it does not depend on worker count or landmark order.
//
// Deprecated: use Build(ctx, g, "hl", WithLandmarks(landmarks)); this
// shim remains so pre-registry code keeps compiling.
func BuildIndex(g *Graph, landmarks []int32) (*Index, error) {
	return core.BuildParallel(g, landmarks)
}

// BuildIndexSequential constructs the labelling with a single worker (the
// paper's HL), producing an identical index to BuildIndex.
//
// Deprecated: use Build(ctx, g, "hl", WithLandmarks(landmarks),
// WithWorkers(1)).
func BuildIndexSequential(g *Graph, landmarks []int32) (*Index, error) {
	return core.Build(g, landmarks)
}

// BuildIndexOpts constructs the labelling with explicit options and
// cancellation.
//
// Deprecated: use Build(ctx, g, "hl", WithLandmarks(landmarks),
// WithWorkers(opt.Workers), WithDirection(opt.Direction),
// WithProgress(opt.Progress)).
func BuildIndexOpts(ctx context.Context, g *Graph, landmarks []int32, opt BuildOptions) (*Index, error) {
	return core.BuildOpts(ctx, g, landmarks, opt)
}

// IndexFormat identifies an on-disk index layout; see the "Index format"
// section of the README. v2 (checksummed sections, bulk-loadable label
// arrays) is the default; v1 is the legacy streaming layout, still fully
// readable and writable.
type IndexFormat = core.Format

const (
	// IndexFormatV1 is the legacy "HWLIDX01" streaming layout.
	IndexFormatV1 = core.FormatV1
	// IndexFormatV2 is the section-based, checksummed "HWLIDX02" layout.
	IndexFormatV2 = core.FormatV2
)

// ParseIndexFormat parses a format name ("v1", "v2").
func ParseIndexFormat(s string) (IndexFormat, error) { return core.ParseFormat(s) }

// LoadIndex reads an index file written by Index.Save in either format
// and attaches it to the graph it was built on.
func LoadIndex(path string, g *Graph) (*Index, error) { return core.Load(path, g) }

// LoadIndexFormat is LoadIndex, also reporting the file's format.
func LoadIndexFormat(path string, g *Graph) (*Index, IndexFormat, error) {
	return core.LoadFormat(path, g)
}

// SaveIndexAs writes an index file in an explicit format (Index.Save
// writes the default, v2).
func SaveIndexAs(ix *Index, path string, f IndexFormat) error { return ix.SaveAs(path, f) }

// WriteIndex serializes an index to a stream in an explicit format;
// ReadIndex deserializes either format, detecting it from the magic.
func WriteIndex(ix *Index, w io.Writer, f IndexFormat) error { return ix.WriteFormat(w, f) }

// ReadIndex reads a serialized index from a stream and attaches it to g.
func ReadIndex(r io.Reader, g *Graph) (*Index, error) { return core.Read(r, g) }

// DistancesFrom returns the BFS distance from src to every vertex of g
// (-1 where unreachable), writing into buf (grown as needed) and
// returning it. It runs on the direction-optimizing traversal engine
// with pooled scratch: passing the previous result back as buf makes
// repeated sweeps allocation-free.
func DistancesFrom(g *Graph, src int32, buf []int32) []int32 {
	return bfs.DistancesReuse(g, src, buf)
}

// RandomPairs samples count (s,t) pairs uniformly from V×V; use for
// benchmarking query latency the way the paper does (100,000 pairs).
func RandomPairs(g *Graph, count int, seed int64) []Pair {
	return workload.RandomPairs(g, count, seed)
}

// Server is a concurrent distance-query server over one Index: a pool
// of per-goroutine searchers behind an HTTP/JSON API (single queries,
// batched queries, stats, health) and a streaming batch mode. All
// methods are safe for concurrent use. See the Serving section of the
// package documentation and cmd/hlserve.
type Server = serve.Server

// ServeConfig tunes a Server; the zero value is ready for use.
type ServeConfig = serve.Config

// NewServer returns a Server over ix.
func NewServer(ix *Index, cfg ServeConfig) *Server { return serve.New(ix, cfg) }

// NewServerFor returns a read-only Server over any method's
// DistanceIndex (the generic path behind "hlserve serve -method").
// Only the highway cover labelling serves live updates; every other
// method serves frozen.
func NewServerFor(ix DistanceIndex, cfg ServeConfig) *Server { return serve.NewIndex(ix, cfg) }

// Serve answers HTTP distance queries against ix on addr until ctx is
// cancelled, then shuts down gracefully. Shorthand for
// NewServer(ix, ServeConfig{}).ListenAndServe(ctx, addr).
func Serve(ctx context.Context, ix *Index, addr string) error {
	return serve.New(ix, ServeConfig{}).ListenAndServe(ctx, addr)
}

// LiveConfig tunes an updatable Server: the base ServeConfig plus the
// write-ahead log and the staleness thresholds that trigger background
// rebuilds. The zero value serves in-memory live updates with default
// thresholds.
type LiveConfig = serve.LiveConfig

// WAL is a write-ahead edge log: it makes acknowledged edge insertions
// and deletions durable (one fsync per accepted batch) and is replayed
// on startup.
type WAL = serve.WAL

// InsertResult reports one accepted update batch: edges accepted (and
// logged), edges actually new, and the snapshot epoch the batch became
// visible at.
type InsertResult = serve.InsertResult

// DeleteResult reports one accepted deletion batch: edges accepted (and
// logged), edges actually removed, and the snapshot epoch the batch
// became visible at.
type DeleteResult = serve.DeleteResult

// OpenWAL opens (creating if absent) a write-ahead edge log, truncating
// any torn tail left by a crash. Pass it to NewLiveServer via
// LiveConfig.WAL; the server takes ownership and closes it.
func OpenWAL(path string) (*WAL, error) { return serve.OpenWAL(path) }

// NewLiveServer returns an updatable Server seeded from ix: reads are
// answered lock-free from an immutable snapshot, InsertEdges and
// DeleteEdges (POST and DELETE /edges) mutations publish fresh
// snapshots, and accumulated drift triggers a background rebuild with
// the direction-optimizing builder.
// If cfg.WAL is set, previously logged edges are replayed before the
// server starts answering. Call Server.Close on shutdown.
func NewLiveServer(ix *Index, cfg LiveConfig) (*Server, error) { return serve.NewLive(ix, cfg) }

// LoadLiveServer assembles a live server from files: the newest
// persisted state (a rebuild's compacted snapshot next to the WAL if
// present, else the base graph+index files), with the WAL replayed on
// top. This is the crash-recovery entry point behind "hlserve serve
// -wal".
func LoadLiveServer(graphPath, indexPath, walPath string, cfg LiveConfig) (*Server, error) {
	return serve.LoadLive(graphPath, indexPath, walPath, cfg)
}

// Baseline oracles.
//
// These are the comparison methods of the paper's evaluation, implemented
// from scratch on the same graph substrate. They answer the same exact
// distance queries with different construction-time / size / query-time
// trade-offs. All of them implement DistanceIndex and build through
// Build; the typed constructors below are deprecated shims.

// PLLIndex is a pruned landmark labelling (Akiba et al. 2013): a complete
// 2-hop cover answering queries by label intersection alone.
type PLLIndex = pll.Index

// BuildPLL constructs the full PLL index (one pruned BFS per vertex in
// decreasing-degree order). Expect much higher construction time and
// labelling size than BuildIndex on large graphs.
//
// Deprecated: use Build(ctx, g, "pll").
func BuildPLL(ctx context.Context, g *Graph) (*PLLIndex, error) { return pll.Build(ctx, g) }

// BuildPLLBP constructs PLL with nBP bit-parallel trees (the paper runs
// PLL with 50), which shrinks the normal labels and speeds construction
// on hub-heavy graphs.
//
// Deprecated: use Build(ctx, g, "pll", WithBitParallel(nBP)).
func BuildPLLBP(ctx context.Context, g *Graph, nBP int) (*PLLIndex, error) {
	return pll.BuildBP(ctx, g, nBP)
}

// FDIndex is the landmark-SPT oracle of Hayashi et al. 2016; it supports
// incremental edge insertions via InsertEdge.
type FDIndex = fd.Index

// BuildFD constructs the FD index (one full BFS per landmark).
//
// Deprecated: use Build(ctx, g, "fd", WithLandmarks(landmarks)).
func BuildFD(ctx context.Context, g *Graph, landmarks []int32) (*FDIndex, error) {
	return fd.Build(ctx, g, landmarks)
}

// BuildFDBP constructs FD with one bit-parallel tree per landmark (the
// paper's "20+64" configuration), tightening upper bounds and pair
// coverage at the cost of 17 bytes per vertex per landmark.
//
// Deprecated: use Build(ctx, g, "fd", WithLandmarks(landmarks),
// WithBitParallel(1)).
func BuildFDBP(ctx context.Context, g *Graph, landmarks []int32) (*FDIndex, error) {
	return fd.BuildBP(ctx, g, landmarks)
}

// ISLIndex is an IS-Label oracle (Fu et al. 2013).
type ISLIndex = isl.Index

// ISLOptions configures BuildISL (hierarchy depth, fill-in cap).
type ISLOptions = isl.Options

// BuildISL constructs an IS-Label index with the paper's default
// parameters when opt is the zero value.
//
// Deprecated: use Build(ctx, g, "isl", WithISLOptions(opt)).
func BuildISL(ctx context.Context, g *Graph, opt ISLOptions) (*ISLIndex, error) {
	if opt.Levels == 0 {
		opt = isl.DefaultOptions()
	}
	return isl.Build(ctx, g, opt)
}

// DynamicIndex is a mutable highway cover labelling supporting edge
// insertions via selective landmark rebuild: only landmarks whose
// shortest-path trees can change are re-labelled, and the result is
// always identical to a from-scratch build on the evolved graph (exact,
// minimal and order-independent like the static index).
type DynamicIndex = dynhl.Index

// BuildDynamic constructs a DynamicIndex; the graph is copied into a
// mutable adjacency and not retained.
//
// Deprecated: use Build(ctx, g, "dynhl", WithLandmarks(landmarks)).
func BuildDynamic(g *Graph, landmarks []int32) (*DynamicIndex, error) {
	return dynhl.Build(g, landmarks)
}

// DynamicFromIndex converts a static Index into a DynamicIndex without
// re-running any BFS: the immutable flat label arrays are copied into the
// mutable per-vertex representation (the static index stays valid and
// untouched). Use DynamicIndex.Freeze for the reverse conversion — it
// snapshots the evolved graph and labelling back into an immutable Index
// for serving.
func DynamicFromIndex(ix *Index) (*DynamicIndex, error) { return dynhl.FromCore(ix) }
