package highway_test

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"highway"
)

// TestFacadeEndToEnd exercises the whole public surface the way the README
// quick start does.
func TestFacadeEndToEnd(t *testing.T) {
	g := highway.BarabasiAlbert(2000, 4, 7)
	lm, err := highway.SelectLandmarks(g, 16, highway.ByDegree, 0)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := highway.BuildIndex(g, lm)
	if err != nil {
		t.Fatal(err)
	}
	seqIx, err := highway.BuildIndexSequential(g, lm)
	if err != nil {
		t.Fatal(err)
	}
	if ix.NumEntries() != seqIx.NumEntries() {
		t.Fatal("parallel and sequential builds differ")
	}

	// Cross-check the oracle against the baselines on sampled pairs.
	ctx := context.Background()
	pllIx, err := highway.BuildPLL(ctx, g)
	if err != nil {
		t.Fatal(err)
	}
	fdIx, err := highway.BuildFD(ctx, g, lm)
	if err != nil {
		t.Fatal(err)
	}
	islIx, err := highway.BuildISL(ctx, g, highway.ISLOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sr := ix.NewSearcher()
	fsr := fdIx.NewSearcher()
	isr := islIx.NewSearcher()
	for _, p := range highway.RandomPairs(g, 400, 3) {
		want := sr.Distance(p.S, p.T)
		if got := pllIx.Distance(p.S, p.T); got != want {
			t.Fatalf("PLL(%d,%d) = %d, HL says %d", p.S, p.T, got, want)
		}
		if got := fsr.Distance(p.S, p.T); got != want {
			t.Fatalf("FD(%d,%d) = %d, HL says %d", p.S, p.T, got, want)
		}
		if got := isr.Distance(p.S, p.T); got != want {
			t.Fatalf("IS-L(%d,%d) = %d, HL says %d", p.S, p.T, got, want)
		}
	}
}

func TestFacadeGraphIO(t *testing.T) {
	g := highway.WattsStrogatz(300, 3, 0.1, 5)
	dir := t.TempDir()
	gp := filepath.Join(dir, "g.bin")
	if err := highway.SaveGraph(g, gp); err != nil {
		t.Fatal(err)
	}
	g2, err := highway.LoadGraph(gp)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumVertices() != g.NumVertices() || g2.NumEdges() != g.NumEdges() {
		t.Fatal("graph IO mismatch")
	}

	lm, err := highway.SelectLandmarks(g2, 8, highway.ByDegree, 0)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := highway.BuildIndex(g2, lm)
	if err != nil {
		t.Fatal(err)
	}
	ip := filepath.Join(dir, "g.idx")
	if err := ix.Save(ip); err != nil {
		t.Fatal(err)
	}
	ix2, err := highway.LoadIndex(ip, g2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	sr1, sr2 := ix.NewSearcher(), ix2.NewSearcher()
	for i := 0; i < 200; i++ {
		s, u := int32(rng.Intn(300)), int32(rng.Intn(300))
		if sr1.Distance(s, u) != sr2.Distance(s, u) {
			t.Fatal("loaded index answers differently")
		}
	}
}

func TestFacadeBuilderAndComponents(t *testing.T) {
	b := highway.NewBuilder(6)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(3, 4)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	lcc, orig := highway.LargestComponent(g)
	if lcc.NumVertices() != 3 || orig[0] != 0 {
		t.Fatalf("LCC wrong: n=%d orig=%v", lcc.NumVertices(), orig)
	}

	g2, err := highway.FromEdges(3, [][2]int32{{0, 1}, {1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	lm, _ := highway.SelectLandmarks(g2, 1, highway.ByDegree, 0)
	ix, err := highway.BuildIndex(g2, lm)
	if err != nil {
		t.Fatal(err)
	}
	if d := ix.Distance(0, 2); d != 2 {
		t.Fatalf("d(0,2) = %d, want 2", d)
	}
	if st := ix.Stats(); st.NumLandmarks != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestFacadeStrategies(t *testing.T) {
	g := highway.ErdosRenyi(200, 600, 9)
	lcc, _ := highway.LargestComponent(g)
	for _, s := range []highway.LandmarkStrategy{highway.ByDegree, highway.ByRandom, highway.ByCloseness, highway.ByDegreeSpread} {
		lm, err := highway.SelectLandmarks(lcc, 5, s, 11)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		ix, err := highway.BuildIndex(lcc, lm)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if err := ix.Verify(100, 1); err != nil {
			t.Fatalf("%s: %v", s, err)
		}
	}
}

func TestFacadeRMAT(t *testing.T) {
	g := highway.RMAT(10, 6, 3)
	if g.NumVertices() != 1024 {
		t.Fatalf("n = %d", g.NumVertices())
	}
	if g.NumEdges() == 0 {
		t.Fatal("no edges")
	}
}

func TestFDDynamicViaFacade(t *testing.T) {
	g := highway.BarabasiAlbert(300, 3, 11)
	lm, _ := highway.SelectLandmarks(g, 6, highway.ByDegree, 0)
	fdIx, err := highway.BuildFD(context.Background(), g, lm)
	if err != nil {
		t.Fatal(err)
	}
	before := fdIx.NewSearcher().Distance(10, 200)
	if err := fdIx.InsertEdge(10, 200); err != nil {
		t.Fatal(err)
	}
	after := fdIx.NewSearcher().Distance(10, 200)
	if after != 1 {
		t.Fatalf("after insert d = %d, want 1 (before %d)", after, before)
	}
}

func TestDynamicIndexViaFacade(t *testing.T) {
	g := highway.BarabasiAlbert(400, 3, 13)
	lm, _ := highway.SelectLandmarks(g, 8, highway.ByDegree, 0)
	dyn, err := highway.BuildDynamic(g, lm)
	if err != nil {
		t.Fatal(err)
	}
	static, err := highway.BuildIndex(g, lm)
	if err != nil {
		t.Fatal(err)
	}
	if dyn.NumEntries() != static.NumEntries() {
		t.Fatal("dynamic and static builds disagree")
	}
	before := dyn.Distance(7, 300)
	if err := dyn.InsertEdge(7, 300); err != nil {
		t.Fatal(err)
	}
	if d := dyn.Distance(7, 300); d != 1 {
		t.Fatalf("after insert d = %d (before %d), want 1", d, before)
	}
}

// TestIndexFormatsViaFacade exercises the format surface end to end:
// explicit v1/v2 saves, format detection, stream round trips, and the
// static→dynamic→frozen conversion cycle.
func TestIndexFormatsViaFacade(t *testing.T) {
	g := highway.BarabasiAlbert(300, 3, 21)
	lm, _ := highway.SelectLandmarks(g, 8, highway.ByDegree, 0)
	ix, err := highway.BuildIndex(g, lm)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	for _, f := range []highway.IndexFormat{highway.IndexFormatV1, highway.IndexFormatV2} {
		path := dir + "/idx." + f.String()
		if err := highway.SaveIndexAs(ix, path, f); err != nil {
			t.Fatal(err)
		}
		got, detected, err := highway.LoadIndexFormat(path, g)
		if err != nil {
			t.Fatal(err)
		}
		if detected != f {
			t.Fatalf("saved %v, detected %v", f, detected)
		}
		if got.NumEntries() != ix.NumEntries() {
			t.Fatalf("%v round trip changed the index", f)
		}
	}
	if _, err := highway.ParseIndexFormat("v7"); err == nil {
		t.Fatal("bogus format name accepted")
	}

	// Static → dynamic without a rebuild, mutate, freeze back.
	dyn, err := highway.DynamicFromIndex(ix)
	if err != nil {
		t.Fatal(err)
	}
	if err := dyn.InsertEdge(0, 299); err != nil {
		t.Fatal(err)
	}
	fg, frozen, err := dyn.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	if fg.NumEdges() != g.NumEdges()+1 {
		t.Fatalf("frozen graph has %d edges, want %d", fg.NumEdges(), g.NumEdges()+1)
	}
	if d := frozen.Distance(0, 299); d != 1 {
		t.Fatalf("frozen index d(0,299) = %d, want 1", d)
	}
	if err := frozen.Verify(200, 3); err != nil {
		t.Fatal(err)
	}
}

func TestPathViaFacade(t *testing.T) {
	g := highway.BarabasiAlbert(300, 3, 17)
	lm, _ := highway.SelectLandmarks(g, 8, highway.ByDegree, 0)
	ix, err := highway.BuildIndex(g, lm)
	if err != nil {
		t.Fatal(err)
	}
	sr := ix.Searcher()
	for _, q := range highway.RandomPairs(g, 30, 5) {
		d := sr.Distance(q.S, q.T)
		p := sr.Path(q.S, q.T)
		if d < 0 {
			if p != nil {
				t.Fatal("path for disconnected pair")
			}
			continue
		}
		if int32(len(p)) != d+1 || p[0] != q.S || p[len(p)-1] != q.T {
			t.Fatalf("bad path %v for d=%d", p, d)
		}
		for i := 1; i < len(p); i++ {
			if !g.HasEdge(p[i-1], p[i]) {
				t.Fatalf("path %v uses non-edge", p)
			}
		}
	}
}

// TestLargeScaleIntegration builds the full pipeline on a 100k-vertex
// network and verifies thousands of sampled queries against Bi-BFS-free
// ground truth (per-source BFS). Guarded by -short.
func TestLargeScaleIntegration(t *testing.T) {
	if testing.Short() {
		t.Skip("large-scale integration skipped in -short mode")
	}
	g := highway.BarabasiAlbert(100_000, 5, 99)
	lm, err := highway.SelectLandmarks(g, 32, highway.ByDegree, 0)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := highway.BuildIndex(g, lm)
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Verify(3000, 123); err != nil {
		t.Fatal(err)
	}
	// Minimality at scale: ALS must stay well below k.
	if als := ix.Stats().AvgLabelSize; als >= float64(len(lm)) {
		t.Fatalf("ALS %.2f not below k=%d — minimality suspect", als, len(lm))
	}
}

// TestFacadeServe exercises the serving re-export: NewServer answering
// the package-doc example requests over a real listener, then graceful
// shutdown through context cancellation.
func TestFacadeServe(t *testing.T) {
	g := highway.BarabasiAlbert(300, 3, 8)
	lm, err := highway.SelectLandmarks(g, 8, highway.ByDegree, 0)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := highway.BuildIndex(g, lm)
	if err != nil {
		t.Fatal(err)
	}
	srv := highway.NewServer(ix, highway.ServeConfig{})

	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	pairs := highway.RandomPairs(g, 20, 5)
	body := `{"pairs":[`
	for i, p := range pairs {
		if i > 0 {
			body += ","
		}
		body += fmt.Sprintf("[%d,%d]", p.S, p.T)
	}
	body += `]}`
	resp, err := http.Post(ts.URL+"/distance/batch", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got struct {
		Count     int     `json:"count"`
		Distances []int32 `json:"distances"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.Count != len(pairs) {
		t.Fatalf("count = %d, want %d", got.Count, len(pairs))
	}
	for i, p := range pairs {
		if want := ix.Distance(p.S, p.T); got.Distances[i] != want {
			t.Fatalf("batch d(%d,%d) = %d, want %d", p.S, p.T, got.Distances[i], want)
		}
	}

	// highway.Serve: bind an ephemeral port, then shut down via context.
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- highway.Serve(ctx, ix, "127.0.0.1:0") }()
	time.Sleep(50 * time.Millisecond)
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("Serve returned %v after cancel, want nil", err)
	}
}
