package bench

import (
	"fmt"
	"text/tabwriter"

	"highway/internal/core"
	"highway/internal/landmark"
	"highway/internal/workload"
)

// Ablation experiments for the design choices DESIGN.md calls out. These
// go beyond the paper's published evaluation:
//
//   - "strategies": the paper's conclusion names landmark selection as
//     future work; this sweep compares the degree heuristic against
//     random, sampled-closeness and degree-spread selection on
//     construction time, labelling size, pair coverage and query time.
//   - "bounds": isolates the two halves of the query framework, timing
//     label-only upper bounds (approximate) against the full bounded
//     search (exact) and reporting how often the bound is already exact
//     (the pair coverage of Figure 9 seen from the latency side).

// Ablation runs every ablation experiment.
func (r *Runner) Ablation() error {
	if err := r.AblationStrategies(); err != nil {
		return err
	}
	return r.AblationBounds()
}

// AblationStrategies compares landmark selection strategies.
func (r *Runner) AblationStrategies() error {
	r.header(fmt.Sprintf("Ablation A: landmark selection strategies (k=%d)", r.cfg.Landmarks))
	tw := tabwriter.NewWriter(r.cfg.Out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Dataset\tStrategy\tCT\tSize\tCoverage\tQT")
	strategies := []landmark.Strategy{landmark.Degree, landmark.Random, landmark.Closeness, landmark.DegreeSpread}
	for _, d := range r.selected() {
		g := d.Load(r.cfg.Shrink)
		pairs := workload.RandomPairs(g, min(r.cfg.Pairs, 20_000), r.cfg.Seed)
		k := min(r.cfg.Landmarks, g.NumVertices())
		for _, st := range strategies {
			lm, err := landmark.Select(g, landmark.Options{K: k, Strategy: st, Seed: r.cfg.Seed})
			if err != nil {
				return fmt.Errorf("ablation: %s/%s: %w", d.Name, st, err)
			}
			res := r.build(MethodHLP, d.Name+"/"+string(st), g, lm)
			if res.DNF {
				fmt.Fprintf(tw, "%s\t%s\tDNF\t-\t-\t-\n", d.Name, st)
				continue
			}
			cov := workload.PairCoverage(res.Bounder, res.NewSearcher(), pairs)
			qt := measureQueries(res.NewSearcher(), pairs)
			fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%.3f\t%s\n",
				d.Name, st, fmtCT(res), fmtBytes(res.SizeBytes), cov, fmtQT(qt, false))
		}
		r.progress(d.Name)
	}
	return tw.Flush()
}

// AblationBounds times the offline half of a query (label upper bound)
// against the full exact query, and reports the fraction of pairs where
// the bound is already exact.
func (r *Runner) AblationBounds() error {
	r.header(fmt.Sprintf("Ablation B: label-only bound vs full bounded query (k=%d)", r.cfg.Landmarks))
	tw := tabwriter.NewWriter(r.cfg.Out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Dataset\tQT[bound only]\tQT[full query]\tbound==exact")
	for _, d := range r.selected() {
		g := d.Load(r.cfg.Shrink)
		lm := r.landmarksFor(g, min(r.cfg.Landmarks, g.NumVertices()))
		ix, err := core.BuildParallel(g, lm)
		if err != nil {
			return fmt.Errorf("ablation: %s: %w", d.Name, err)
		}
		pairs := workload.RandomPairs(g, min(r.cfg.Pairs, 20_000), r.cfg.Seed)
		sr := ix.NewSearcher()
		qtBound := measureQueries(workload.OracleFunc(sr.UpperBound), pairs)
		qtFull := measureQueries(workload.OracleFunc(sr.Distance), pairs)
		cov := workload.PairCoverage(ix, workload.OracleFunc(sr.Distance), pairs)
		fmt.Fprintf(tw, "%s\t%s\t%s\t%.3f\n", d.Name, fmtQT(qtBound, false), fmtQT(qtFull, false), cov)
		r.progress(d.Name)
	}
	return tw.Flush()
}
