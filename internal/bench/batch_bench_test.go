package bench

import (
	"context"
	"math/rand"
	"sync"
	"testing"

	"highway/internal/core"
	"highway/internal/gen"
	"highway/internal/graph"
	"highway/internal/landmark"
)

// The batch-executor benchmarks run on the BA-100k stand-in — the same
// graph BENCH_SERVE.json serves (hlgen -family ba -n 100000 -deg 10
// -seed 1) — with the paper's k=20 degree landmarks. BENCH_BATCH.json
// records the medians.
var (
	batchFixOnce sync.Once
	batchFixG    *graph.Graph
	batchFixIx   *core.Index
)

func batchFixture(b *testing.B) *core.Index {
	b.Helper()
	batchFixOnce.Do(func() {
		batchFixG = gen.BarabasiAlbert(100_000, 5, 1)
		lm, err := landmark.Select(batchFixG, landmark.Options{K: 20, Strategy: landmark.Degree})
		if err != nil {
			panic(err)
		}
		batchFixIx, err = core.BuildOpts(context.Background(), batchFixG, lm, core.Options{})
		if err != nil {
			panic(err)
		}
	})
	return batchFixIx
}

// batchPairs draws one benchmark batch: count pairs over nsrc distinct
// seeded sources (nsrc <= 0 means uniform — fresh source per pair) with
// uniform targets.
func batchPairs(n, count, nsrc int, seed int64) [][2]int32 {
	rng := rand.New(rand.NewSource(seed))
	pairs := make([][2]int32, count)
	if nsrc <= 0 {
		for i := range pairs {
			pairs[i] = [2]int32{int32(rng.Intn(n)), int32(rng.Intn(n))}
		}
		return pairs
	}
	sources := make([]int32, nsrc)
	for i := range sources {
		sources[i] = int32(rng.Intn(n))
	}
	for i := range pairs {
		pairs[i] = [2]int32{sources[i%nsrc], int32(rng.Intn(n))}
	}
	return pairs
}

// BenchmarkBatchQuery compares the vectorized batch executor
// (Searcher.DistanceBatch) against the pair-at-a-time loop it replaces,
// across source skews: sources=S means a 64k-pair batch drawn from S
// distinct sources (the source-grouped shape of single-source analytics
// and coordinator fan-in), uniform means every pair has a fresh source
// (the adversarial shape — grouping buys nothing, the executor must not
// lose). One op answers the whole batch; ns/pair is the figure
// BENCH_BATCH.json tracks.
func BenchmarkBatchQuery(b *testing.B) {
	ix := batchFixture(b)
	n := batchFixG.NumVertices()
	const count = 1 << 16
	skews := []struct {
		name string
		nsrc int
	}{
		{"sources=4", 4},
		{"sources=64", 64},
		{"sources=1024", 1024},
		{"uniform", 0},
	}
	for _, sk := range skews {
		pairs := batchPairs(n, count, sk.nsrc, 42)
		b.Run(sk.name+"/batch", func(b *testing.B) {
			sr := ix.Searcher()
			dst := make([]int32, count)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sr.DistanceBatch(pairs, dst)
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(count), "ns/pair")
		})
		b.Run(sk.name+"/pairloop", func(b *testing.B) {
			sr := ix.Searcher()
			dst := make([]int32, count)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j, p := range pairs {
					dst[j] = sr.Distance(p[0], p[1])
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(count), "ns/pair")
		})
	}
}

// BenchmarkDistanceMany measures the dedicated one-source-to-many entry
// point (the extreme of source skew: one group, one shared traversal).
func BenchmarkDistanceMany(b *testing.B) {
	ix := batchFixture(b)
	n := batchFixG.NumVertices()
	const count = 1 << 14
	rng := rand.New(rand.NewSource(7))
	source := int32(rng.Intn(n))
	for batchFixIx.IsLandmark(source) {
		source = int32(rng.Intn(n))
	}
	targets := make([]int32, count)
	for i := range targets {
		targets[i] = int32(rng.Intn(n))
	}
	b.Run("many", func(b *testing.B) {
		sr := ix.Searcher()
		dst := make([]int32, count)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sr.DistanceMany(source, targets, dst)
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(count), "ns/pair")
	})
	b.Run("pairloop", func(b *testing.B) {
		sr := ix.Searcher()
		dst := make([]int32, count)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j, t := range targets {
				dst[j] = sr.Distance(source, t)
			}
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(count), "ns/pair")
	})
}
