package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// tinyConfig shrinks everything so the whole harness runs in seconds.
func tinyConfig(buf *bytes.Buffer) Config {
	return Config{
		Out:         buf,
		Datasets:    []string{"Skitter", "Flickr"},
		Shrink:      32,
		Landmarks:   8,
		Pairs:       300,
		SlowPairs:   50,
		BuildBudget: 20 * time.Second,
	}
}

func TestNewRunnerValidation(t *testing.T) {
	if _, err := NewRunner(Config{}); err == nil {
		t.Error("nil Out accepted")
	}
	var buf bytes.Buffer
	if _, err := NewRunner(Config{Out: &buf, Datasets: []string{"NotADataset"}}); err == nil {
		t.Error("unknown dataset accepted")
	}
}

func TestDefaults(t *testing.T) {
	c := Config{}.Defaults()
	if c.Landmarks != 20 || c.Pairs != 100_000 || c.SlowPairs != 1000 {
		t.Fatalf("paper defaults wrong: %+v", c)
	}
	if c.Shrink != 1 || c.BuildBudget != 60*time.Second || c.Workers < 1 || c.Seed == 0 {
		t.Fatalf("defaults wrong: %+v", c)
	}
}

func TestTable1(t *testing.T) {
	var buf bytes.Buffer
	r, err := NewRunner(tinyConfig(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Table1(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Table 1", "Skitter", "Flickr", "max.deg", "[paper n]"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestTable2(t *testing.T) {
	var buf bytes.Buffer
	r, err := NewRunner(tinyConfig(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Table2(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Table 2", "CT[HL-P]", "QT[Bi-BFS]", "ALS[IS-L]", "Skitter"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "DNF") {
		t.Fatalf("tiny graphs should not DNF:\n%s", out)
	}
}

func TestTable3(t *testing.T) {
	var buf bytes.Buffer
	r, err := NewRunner(tinyConfig(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Table3(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Table 3", "HL(8)", "IS-L"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestFigures(t *testing.T) {
	var buf bytes.Buffer
	cfg := tinyConfig(&buf)
	cfg.Datasets = []string{"Skitter"}
	cfg.Shrink = 64
	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Run([]string{"fig6", "fig7", "fig8", "fig9", "fig1a"}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"Figure 6", "distance distribution",
		"Figure 7", "CT[HL]",
		"Figure 8", "HL-50", "FD-20",
		"Figure 9", "pair coverage",
		"Figure 1(a)",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestFig1bTiny(t *testing.T) {
	var buf bytes.Buffer
	cfg := tinyConfig(&buf)
	cfg.Shrink = 100 // sweep sizes ≈ 100..10k vertices
	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Fig1b(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Figure 1(b)") {
		t.Fatalf("missing header:\n%s", buf.String())
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var buf bytes.Buffer
	r, err := NewRunner(tinyConfig(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Run([]string{"tableX"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestExperimentIDs(t *testing.T) {
	ids := ExperimentIDs()
	if len(ids) != 10 {
		t.Fatalf("got %d experiment ids, want 10 (3 tables + 6 figure panels + ablation)", len(ids))
	}
}

// TestDNFBudget forces a DNF with a microscopic budget on a non-trivial
// build.
func TestDNFBudget(t *testing.T) {
	var buf bytes.Buffer
	cfg := tinyConfig(&buf)
	cfg.Datasets = []string{"Orkut"}
	cfg.Shrink = 4
	cfg.BuildBudget = 1 * time.Nanosecond
	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Table2(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "DNF") {
		t.Fatalf("nanosecond budget did not DNF:\n%s", buf.String())
	}
}

func TestAblation(t *testing.T) {
	var buf bytes.Buffer
	cfg := tinyConfig(&buf)
	cfg.Datasets = []string{"Skitter"}
	cfg.Shrink = 64
	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Run([]string{"ablation"}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"Ablation A", "degree", "random", "closeness", "degree-spread",
		"Ablation B", "bound only", "full query",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}
