package bench

import (
	"context"
	"sync"
	"testing"

	"highway/internal/bfs"
	"highway/internal/core"
	"highway/internal/datasets"
	"highway/internal/graph"
	"highway/internal/landmark"
)

// The construction benchmarks run on the same fixture as the top-level
// bench_test.go and BENCH_BUILD.json: the Skitter stand-in at shrink 4
// with k=20 degree landmarks.
var (
	buildFixOnce sync.Once
	buildFixG    *graph.Graph
	buildFixLM   []int32
)

func buildFixture(b *testing.B) (*graph.Graph, []int32) {
	b.Helper()
	buildFixOnce.Do(func() {
		d, err := datasets.ByName("Skitter")
		if err != nil {
			panic(err)
		}
		buildFixG = d.Load(4)
		buildFixLM, err = landmark.Select(buildFixG, landmark.Options{K: 20, Strategy: landmark.Degree})
		if err != nil {
			panic(err)
		}
	})
	return buildFixG, buildFixLM
}

// BenchmarkBuild measures index construction per traversal direction and
// worker count. The topdown variants are the pre-engine reference; the
// dopt/topdown ratio is what BENCH_BUILD.json records.
func BenchmarkBuild(b *testing.B) {
	g, lm := buildFixture(b)
	cases := []struct {
		name string
		opt  core.Options
	}{
		{"HL/topdown", core.Options{Workers: 1, Direction: core.DirectionTopDown}},
		{"HL/dopt", core.Options{Workers: 1, Direction: core.DirectionAuto}},
		{"HLP/topdown", core.Options{Workers: 0, Direction: core.DirectionTopDown}},
		{"HLP/dopt", core.Options{Workers: 0, Direction: core.DirectionAuto}},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			var edges int64
			for i := 0; i < b.N; i++ {
				ix, err := core.BuildOpts(context.Background(), g, lm, c.opt)
				if err != nil {
					b.Fatal(err)
				}
				edges = ix.BuildStats().Traversal.EdgesScanned()
			}
			b.ReportMetric(float64(edges), "edges-scanned")
		})
	}
}

// BenchmarkBuildBFS isolates the engine: one full single-source BFS from
// the highest-degree vertex, per direction.
func BenchmarkBuildBFS(b *testing.B) {
	g, _ := buildFixture(b)
	_, hub := g.MaxDegree()
	dist := make([]int32, g.NumVertices())
	for _, c := range []struct {
		name string
		dir  bfs.Direction
	}{
		{"topdown", bfs.DirectionTopDown},
		{"dopt", bfs.DirectionAuto},
	} {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for j := range dist {
					dist[j] = bfs.Unreachable
				}
				bfs.DistancesIntoDir(g, hub, dist, c.dir, nil)
			}
		})
	}
}
