package bench

import (
	"bytes"
	"encoding/json"
	"io"
	"strings"
	"testing"
	"time"

	"highway/internal/gen"
	"highway/internal/landmark"
)

// TestDNFReportedInJSON pins the -budget DNF fix: a method that blows
// its build budget must appear in the JSON report with its name and a
// reason, not as a blank row.
func TestDNFReportedInJSON(t *testing.T) {
	g := gen.BarabasiAlbert(300, 3, 1)
	lm, err := landmark.Select(g, landmark.Options{K: 8, Strategy: landmark.Degree})
	if err != nil {
		t.Fatal(err)
	}

	r, err := NewRunner(Config{Out: io.Discard, BuildBudget: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	if res := r.build(MethodPLL, "tiny", g, lm); !res.DNF {
		t.Fatal("PLL under a 1ns budget did not DNF")
	}
	// A cache hit must not duplicate the record.
	r.build(MethodPLL, "tiny", g, lm)

	ok, err := NewRunner(Config{Out: io.Discard})
	if err != nil {
		t.Fatal(err)
	}
	if res := ok.build(MethodHL, "tiny", g, lm); res.DNF {
		t.Fatalf("HL build unexpectedly DNFed: %s", res.DNFReason)
	}

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var report struct {
		BudgetSeconds float64         `json:"budget_seconds"`
		Builds        []RecordedBuild `json:"builds"`
	}
	if err := json.Unmarshal(buf.Bytes(), &report); err != nil {
		t.Fatalf("report is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(report.Builds) != 1 {
		t.Fatalf("got %d build records, want 1 (cache hits must not duplicate):\n%s", len(report.Builds), buf.String())
	}
	rec := report.Builds[0]
	if rec.Method != string(MethodPLL) || !rec.DNF {
		t.Fatalf("DNF record does not name the method: %+v", rec)
	}
	if rec.Reason == "" || !strings.Contains(rec.Reason, "budget") {
		t.Fatalf("DNF record reason %q does not explain the timeout", rec.Reason)
	}
	if rec.BudgetSeconds <= 0 {
		t.Fatalf("DNF record lacks the budget: %+v", rec)
	}
}
