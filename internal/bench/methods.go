// Package bench is the experiment harness that regenerates every table
// and figure of the paper's evaluation (Section 6): Tables 1-3 and
// Figures 1, 6, 7, 8 and 9. Each experiment prints the same rows/series
// the paper reports, over the synthetic stand-in datasets of
// internal/datasets. cmd/hlbench is the CLI front end; bench_test.go at
// the repository root wraps each experiment as a testing.B benchmark.
package bench

import (
	"context"
	"errors"
	"fmt"
	"time"

	"highway"
	"highway/internal/bfs"
	"highway/internal/graph"
	"highway/internal/workload"
)

// MethodName identifies one competitor row/column in the tables. The
// names are the paper's display names; each maps onto a registry method
// plus options (registryBuild), except the online Bi-BFS baseline,
// which has no index to build.
type MethodName string

const (
	MethodHLP   MethodName = "HL-P"   // parallel highway labelling (ours)
	MethodHL    MethodName = "HL"     // sequential highway labelling (ours)
	MethodFD    MethodName = "FD"     // Hayashi et al. 2016
	MethodFDBP  MethodName = "FD+BP"  // FD with per-landmark bit-parallel trees ("20+64")
	MethodPLL   MethodName = "PLL"    // Akiba et al. 2013
	MethodISL   MethodName = "IS-L"   // Fu et al. 2013
	MethodBiBFS MethodName = "Bi-BFS" // online bidirectional BFS
)

// BuildResult captures one method's build on one graph, with the paper's
// DNF semantics: a build that exceeds its budget reports DNF and no
// index. DNFReason records WHY — "build budget 60s exceeded" for a
// timeout, the build error otherwise — so the JSON report (hlbench
// -json) can say which method timed out instead of leaving a blank row.
type BuildResult struct {
	Method MethodName
	CT     time.Duration
	DNF    bool
	// DNFReason is empty on success.
	DNFReason string

	NumEntries int64
	ALS        float64
	SizeBytes  int64
	SizeBytes8 int64 // HL only: the paper's compressed accounting
	BPTrees    int   // bit-parallel trees (PLL's "+50", FD+BP's per-landmark trees)

	// NewSearcher returns a single-goroutine exact-distance oracle.
	NewSearcher func() workload.Oracle
	// Bounder exposes the method's label upper bound (every registry
	// method implements one; nil only for Bi-BFS).
	Bounder workload.Bounder
}

// registryBuild maps a display name onto the unified method registry:
// the registry name plus the options reproducing the paper's
// configuration of that competitor.
func registryBuild(m MethodName, landmarks []int32, workers int) (name string, opts []highway.BuildOption, ok bool) {
	opts = []highway.BuildOption{highway.WithLandmarks(landmarks)}
	switch m {
	case MethodHLP:
		return "hl", append(opts, highway.WithWorkers(workers)), true
	case MethodHL:
		return "hl", append(opts, highway.WithWorkers(1)), true
	case MethodFD:
		return "fd", opts, true
	case MethodFDBP:
		return "fd", append(opts, highway.WithBitParallel(1)), true
	case MethodPLL:
		// The paper's PLL configuration: 50 bit-parallel trees plus the
		// pruned labelling (Section 6.2).
		return "pll", []highway.BuildOption{highway.WithBitParallel(50)}, true
	case MethodISL:
		return "isl", nil, true
	default:
		return "", nil, false
	}
}

// buildMethod runs one method under a wall-clock budget through the
// unified registry (highway.Build); only the online Bi-BFS baseline is
// special-cased, having no index.
func buildMethod(m MethodName, g *graph.Graph, landmarks []int32, budget time.Duration, workers int) BuildResult {
	if m == MethodBiBFS {
		return BuildResult{
			Method: m,
			NewSearcher: func() workload.Oracle {
				sc := bfs.NewScratch(g.NumVertices())
				return workload.OracleFunc(func(s, t int32) int32 {
					return bfs.BiBFS(g, s, t, sc)
				})
			},
		}
	}
	name, opts, ok := registryBuild(m, landmarks, workers)
	if !ok {
		panic(fmt.Sprintf("bench: unknown method %q", m))
	}
	ctx, cancel := context.WithTimeout(context.Background(), budget)
	defer cancel()
	start := time.Now()
	ix, err := highway.Build(ctx, g, name, opts...)
	if err != nil {
		reason := err.Error()
		if errors.Is(err, context.DeadlineExceeded) || ctx.Err() != nil {
			reason = fmt.Sprintf("build budget %s exceeded", budget)
		}
		return BuildResult{Method: m, DNF: true, DNFReason: reason, CT: time.Since(start)}
	}
	st := ix.Stats()
	return BuildResult{
		Method:     m,
		CT:         time.Since(start),
		NumEntries: st.NumEntries,
		ALS:        st.AvgLabelSize,
		SizeBytes:  st.SizeBytes,
		SizeBytes8: st.Bytes8,
		BPTrees:    st.BPTrees,
		Bounder:    ix,
		NewSearcher: func() workload.Oracle {
			return ix.NewSearcher()
		},
	}
}

// measureQueries returns the average query latency over the pairs.
func measureQueries(o workload.Oracle, pairs []workload.Pair) time.Duration {
	if len(pairs) == 0 {
		return 0
	}
	start := time.Now()
	for _, p := range pairs {
		o.Distance(p.S, p.T)
	}
	return time.Since(start) / time.Duration(len(pairs))
}

// fmtDur renders a duration like the paper's tables: seconds for
// construction, milliseconds for queries.
func fmtCT(r BuildResult) string {
	if r.DNF {
		return "DNF"
	}
	return fmt.Sprintf("%.3fs", r.CT.Seconds())
}

func fmtQT(d time.Duration, dnf bool) string {
	if dnf {
		return "-"
	}
	return fmt.Sprintf("%.4fms", float64(d.Nanoseconds())/1e6)
}

func fmtALS(r BuildResult) string {
	if r.DNF {
		return "-"
	}
	if r.BPTrees > 0 {
		return fmt.Sprintf("%.1f+%d", r.ALS, r.BPTrees)
	}
	return fmt.Sprintf("%.1f", r.ALS)
}

func fmtBytes(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.2fGB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.2fMB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.2fKB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}
