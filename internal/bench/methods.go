// Package bench is the experiment harness that regenerates every table
// and figure of the paper's evaluation (Section 6): Tables 1-3 and
// Figures 1, 6, 7, 8 and 9. Each experiment prints the same rows/series
// the paper reports, over the synthetic stand-in datasets of
// internal/datasets. cmd/hlbench is the CLI front end; bench_test.go at
// the repository root wraps each experiment as a testing.B benchmark.
package bench

import (
	"context"
	"fmt"
	"time"

	"highway/internal/bfs"
	"highway/internal/core"
	"highway/internal/fd"
	"highway/internal/graph"
	"highway/internal/isl"
	"highway/internal/pll"
	"highway/internal/workload"
)

// MethodName identifies one competitor.
type MethodName string

const (
	MethodHLP   MethodName = "HL-P"   // parallel highway labelling (ours)
	MethodHL    MethodName = "HL"     // sequential highway labelling (ours)
	MethodFD    MethodName = "FD"     // Hayashi et al. 2016
	MethodFDBP  MethodName = "FD+BP"  // FD with per-landmark bit-parallel trees ("20+64")
	MethodPLL   MethodName = "PLL"    // Akiba et al. 2013
	MethodISL   MethodName = "IS-L"   // Fu et al. 2013
	MethodBiBFS MethodName = "Bi-BFS" // online bidirectional BFS
)

// BuildResult captures one method's build on one graph, with the paper's
// DNF semantics: a build that exceeds its budget (or runs out of expressible
// work) reports DNF and no index.
type BuildResult struct {
	Method MethodName
	CT     time.Duration
	DNF    bool

	NumEntries int64
	ALS        float64
	SizeBytes  int64
	SizeBytes8 int64 // HL only: the paper's compressed accounting
	BPTrees    int   // PLL only: bit-parallel trees (the paper's "+50")

	// NewSearcher returns a single-goroutine exact-distance oracle.
	NewSearcher func() workload.Oracle
	// Bounder exposes the label upper bound where the method has one
	// (HL, FD); nil otherwise.
	Bounder workload.Bounder
}

// buildMethod runs one method under a wall-clock budget.
func buildMethod(m MethodName, g *graph.Graph, landmarks []int32, budget time.Duration, workers int) BuildResult {
	ctx, cancel := context.WithTimeout(context.Background(), budget)
	defer cancel()
	start := time.Now()
	res := BuildResult{Method: m}
	switch m {
	case MethodHL, MethodHLP:
		w := 1
		if m == MethodHLP {
			w = workers
		}
		ix, err := core.BuildOpts(ctx, g, landmarks, core.Options{Workers: w})
		if err != nil {
			return BuildResult{Method: m, DNF: true, CT: time.Since(start)}
		}
		res.CT = time.Since(start)
		res.NumEntries = ix.NumEntries()
		res.ALS = ix.AvgLabelSize()
		res.SizeBytes = ix.SizeBytes32()
		res.SizeBytes8 = ix.SizeBytes8()
		res.Bounder = ix
		res.NewSearcher = func() workload.Oracle {
			sr := ix.NewSearcher()
			return workload.OracleFunc(sr.Distance)
		}
	case MethodFD, MethodFDBP:
		var ix *fd.Index
		var err error
		if m == MethodFDBP {
			ix, err = fd.BuildBP(ctx, g, landmarks)
		} else {
			ix, err = fd.Build(ctx, g, landmarks)
		}
		if err != nil {
			return BuildResult{Method: m, DNF: true, CT: time.Since(start)}
		}
		res.CT = time.Since(start)
		res.NumEntries = ix.NumEntries()
		res.ALS = ix.AvgLabelSize()
		res.SizeBytes = ix.SizeBytes()
		res.Bounder = ix
		res.NewSearcher = func() workload.Oracle {
			sr := ix.NewSearcher()
			return workload.OracleFunc(sr.Distance)
		}
	case MethodPLL:
		// The paper's PLL configuration: 50 bit-parallel trees plus the
		// pruned labelling (Section 6.2).
		ix, err := pll.BuildBP(ctx, g, 50)
		if err != nil {
			return BuildResult{Method: m, DNF: true, CT: time.Since(start)}
		}
		res.CT = time.Since(start)
		res.NumEntries = ix.NumEntries()
		res.ALS = ix.AvgLabelSize()
		res.BPTrees = ix.NumBPTrees()
		res.SizeBytes = ix.SizeBytes()
		res.NewSearcher = func() workload.Oracle {
			return workload.OracleFunc(ix.Distance)
		}
	case MethodISL:
		ix, err := isl.Build(ctx, g, isl.DefaultOptions())
		if err != nil {
			return BuildResult{Method: m, DNF: true, CT: time.Since(start)}
		}
		res.CT = time.Since(start)
		res.NumEntries = ix.NumEntries()
		res.ALS = ix.AvgLabelSize()
		res.SizeBytes = ix.SizeBytes()
		res.NewSearcher = func() workload.Oracle {
			sr := ix.NewSearcher()
			return workload.OracleFunc(sr.Distance)
		}
	case MethodBiBFS:
		// Online method: no construction.
		res.CT = 0
		res.NewSearcher = func() workload.Oracle {
			sc := bfs.NewScratch(g.NumVertices())
			return workload.OracleFunc(func(s, t int32) int32 {
				return bfs.BiBFS(g, s, t, sc)
			})
		}
	default:
		panic(fmt.Sprintf("bench: unknown method %q", m))
	}
	return res
}

// measureQueries returns the average query latency over the pairs.
func measureQueries(o workload.Oracle, pairs []workload.Pair) time.Duration {
	if len(pairs) == 0 {
		return 0
	}
	start := time.Now()
	for _, p := range pairs {
		o.Distance(p.S, p.T)
	}
	return time.Since(start) / time.Duration(len(pairs))
}

// fmtDur renders a duration like the paper's tables: seconds for
// construction, milliseconds for queries.
func fmtCT(r BuildResult) string {
	if r.DNF {
		return "DNF"
	}
	return fmt.Sprintf("%.3fs", r.CT.Seconds())
}

func fmtQT(d time.Duration, dnf bool) string {
	if dnf {
		return "-"
	}
	return fmt.Sprintf("%.4fms", float64(d.Nanoseconds())/1e6)
}

func fmtALS(r BuildResult) string {
	if r.DNF {
		return "-"
	}
	if r.BPTrees > 0 {
		return fmt.Sprintf("%.1f+%d", r.ALS, r.BPTrees)
	}
	return fmt.Sprintf("%.1f", r.ALS)
}

func fmtBytes(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.2fGB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.2fMB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.2fKB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}
