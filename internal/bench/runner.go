// Package bench is the evaluation harness behind cmd/hlbench: it
// re-runs the paper's experiments — the dataset statistics of Table 1,
// the construction/query/size comparisons of Tables 2-3, the speedup
// and scaling curves of Figures 1 and 6-9 — over the synthetic stand-in
// datasets of internal/datasets, plus the ablation studies DESIGN.md
// calls out (landmark selection strategies, bound-only vs full
// queries). Each experiment id maps to one Runner method; see DESIGN.md
// for the per-experiment index (what each id reproduces, which methods
// and measurements it involves) and EXPERIMENTS.md for recorded runs
// next to the paper's published numbers.
//
// Methods that exceed the per-run build budget are reported as DNF
// rather than aborting the whole table, mirroring how the paper reports
// timeouts on its largest datasets. Build results are cached per
// (dataset, method, k) so experiments sharing a build pay for it once.
package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"
	"text/tabwriter"
	"time"

	"highway/internal/core"
	"highway/internal/datasets"
	"highway/internal/gen"
	"highway/internal/graph"
	"highway/internal/landmark"
	"highway/internal/workload"
)

// Config parameterizes a harness run. The zero value is completed by
// Defaults.
type Config struct {
	Out         io.Writer     // destination for tables (required)
	Datasets    []string      // registry names; empty = all 12
	Shrink      int           // dataset shrink divisor; 1 = standard stand-ins
	Landmarks   int           // |R| for Table 2/3 and Figure 1 (paper: 20)
	Pairs       int           // sampled query pairs (paper: 100,000)
	SlowPairs   int           // pairs for slow online methods (paper: 1,000 for Bi-BFS)
	BuildBudget time.Duration // per-method DNF budget
	Workers     int           // HL-P workers; 0 = GOMAXPROCS
	Seed        int64
	Progress    io.Writer // optional liveness notes (e.g. os.Stderr)
}

// Defaults fills unset fields with the paper-equivalent settings.
func (c Config) Defaults() Config {
	if c.Shrink < 1 {
		c.Shrink = 1
	}
	if c.Landmarks == 0 {
		c.Landmarks = 20
	}
	if c.Pairs == 0 {
		c.Pairs = 100_000
	}
	if c.SlowPairs == 0 {
		c.SlowPairs = 1_000
	}
	if c.BuildBudget == 0 {
		c.BuildBudget = 60 * time.Second
	}
	if c.Workers == 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	return c
}

// Runner executes experiments over a fixed config. Build results
// (including DNFs) are cached per (dataset, method, k) so that
// experiments sharing a build pay for it once.
type Runner struct {
	cfg     Config
	cache   map[string]BuildResult
	results []RecordedBuild
}

// RecordedBuild is one build outcome in the machine-readable report
// (hlbench -json). DNF rows are NOT blanked: they carry the method
// name and the reason (budget exceeded vs build error), which the
// human-readable tables can only render as "DNF"/"-".
type RecordedBuild struct {
	Key           string  `json:"key"` // dataset name or sweep point
	Method        string  `json:"method"`
	Landmarks     int     `json:"landmarks"`
	DNF           bool    `json:"dnf"`
	Reason        string  `json:"reason,omitempty"`
	BudgetSeconds float64 `json:"budget_seconds,omitempty"`
	CTSeconds     float64 `json:"ct_seconds"`
	Entries       int64   `json:"entries,omitempty"`
	AvgLabelSize  float64 `json:"avg_label_size,omitempty"`
	SizeBytes     int64   `json:"size_bytes,omitempty"`
}

// Results returns every distinct build the runner performed (cache
// hits are recorded once), in execution order.
func (r *Runner) Results() []RecordedBuild {
	return append([]RecordedBuild(nil), r.results...)
}

// WriteJSON emits the machine-readable report: the effective settings
// plus one record per distinct build, including DNFs with their
// reasons.
func (r *Runner) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Landmarks     int             `json:"landmarks"`
		Shrink        int             `json:"shrink"`
		BudgetSeconds float64         `json:"budget_seconds"`
		Seed          int64           `json:"seed"`
		Builds        []RecordedBuild `json:"builds"`
	}{
		Landmarks:     r.cfg.Landmarks,
		Shrink:        r.cfg.Shrink,
		BudgetSeconds: r.cfg.BuildBudget.Seconds(),
		Seed:          r.cfg.Seed,
		Builds:        r.results,
	})
}

// NewRunner validates the config and returns a Runner.
func NewRunner(cfg Config) (*Runner, error) {
	cfg = cfg.Defaults()
	if cfg.Out == nil {
		return nil, fmt.Errorf("bench: Config.Out is required")
	}
	for _, name := range cfg.Datasets {
		if _, err := datasets.ByName(name); err != nil {
			return nil, err
		}
	}
	return &Runner{cfg: cfg, cache: map[string]BuildResult{}}, nil
}

// Experiments maps experiment ids to their runner methods; Run resolves
// ids through it. Order mirrors the paper.
var experimentOrder = []string{"table1", "fig6", "table2", "table3", "fig1a", "fig1b", "fig7", "fig8", "fig9", "ablation"}

// ExperimentIDs lists the known experiment ids in canonical order.
func ExperimentIDs() []string { return append([]string(nil), experimentOrder...) }

// Run executes the named experiments ("all" runs every one).
func (r *Runner) Run(ids []string) error {
	if len(ids) == 1 && ids[0] == "all" {
		ids = ExperimentIDs()
	}
	for _, id := range ids {
		var err error
		switch id {
		case "table1":
			err = r.Table1()
		case "table2":
			err = r.Table2()
		case "table3":
			err = r.Table3()
		case "fig1a":
			err = r.Fig1a()
		case "fig1b":
			err = r.Fig1b()
		case "fig6":
			err = r.Fig6()
		case "fig7":
			err = r.Fig7()
		case "fig8":
			err = r.Fig8()
		case "fig9":
			err = r.Fig9()
		case "ablation":
			err = r.Ablation()
		default:
			err = fmt.Errorf("bench: unknown experiment %q (known: %v)", id, ExperimentIDs())
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func (r *Runner) selected() []datasets.Dataset {
	if len(r.cfg.Datasets) == 0 {
		return datasets.Registry
	}
	var out []datasets.Dataset
	for _, name := range r.cfg.Datasets {
		d, err := datasets.ByName(name)
		if err != nil {
			panic(err) // validated in NewRunner
		}
		out = append(out, d)
	}
	return out
}

func (r *Runner) header(title string) {
	fmt.Fprintf(r.cfg.Out, "\n== %s ==\n", title)
	if r.cfg.Progress != nil {
		fmt.Fprintf(r.cfg.Progress, "[hlbench] %s\n", title)
	}
}

// progress emits a per-row liveness note (tables are only flushed once per
// experiment so that tabwriter can align columns).
func (r *Runner) progress(row string) {
	if r.cfg.Progress != nil {
		fmt.Fprintf(r.cfg.Progress, "[hlbench]   done %s\n", row)
	}
}

func (r *Runner) landmarksFor(g *graph.Graph, k int) []int32 {
	lm, err := landmark.Select(g, landmark.Options{K: k, Strategy: landmark.Degree})
	if err != nil {
		// k exceeding n only happens on degenerate shrink settings; fall
		// back to every vertex.
		return g.DegreeOrder()
	}
	return lm
}

// build runs a method through the per-runner cache. key identifies the
// graph (dataset name or sweep point); the landmark count is part of the
// cache key so the Figure 7-9 sweeps cache per k.
func (r *Runner) build(m MethodName, key string, g *graph.Graph, lm []int32) BuildResult {
	ck := fmt.Sprintf("%s|%s|%d", key, m, len(lm))
	if res, ok := r.cache[ck]; ok {
		return res
	}
	workers := 1
	if m == MethodHLP {
		workers = r.cfg.Workers
	}
	res := buildMethod(m, g, lm, r.cfg.BuildBudget, workers)
	r.cache[ck] = res
	rec := RecordedBuild{
		Key:          key,
		Method:       string(m),
		Landmarks:    len(lm),
		DNF:          res.DNF,
		Reason:       res.DNFReason,
		CTSeconds:    res.CT.Seconds(),
		Entries:      res.NumEntries,
		AvgLabelSize: res.ALS,
		SizeBytes:    res.SizeBytes,
	}
	if res.DNF {
		rec.BudgetSeconds = r.cfg.BuildBudget.Seconds()
	}
	r.results = append(r.results, rec)
	return res
}

// Table1 reproduces Table 1: the statistics of the 12 stand-in datasets.
func (r *Runner) Table1() error {
	r.header("Table 1: datasets (synthetic stand-ins; paper scale in brackets)")
	tw := tabwriter.NewWriter(r.cfg.Out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Dataset\tType\tn\tm\tm/n\tavg.deg\tmax.deg\t|G|\t[paper n]\t[paper m]")
	for _, d := range r.selected() {
		g := d.Load(r.cfg.Shrink)
		st := d.Describe(g)
		fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%.1f\t%.3f\t%d\t%s\t%s\t%s\n",
			st.Name, st.Type, st.N, st.M, st.MOverN, st.AvgDeg, st.MaxDeg,
			fmtBytes(st.SizeBytes), st.PaperN, st.PaperM)
	}
	return tw.Flush()
}

// Table2 reproduces Table 2: construction time (HL-P, HL, FD, PLL, IS-L),
// average query time (HL, FD, PLL, IS-L, Bi-BFS) and average label size.
func (r *Runner) Table2() error {
	r.header(fmt.Sprintf("Table 2: construction time, query time, label size (k=%d, %d pairs, %d slow pairs, budget %s)",
		r.cfg.Landmarks, r.cfg.Pairs, r.cfg.SlowPairs, r.cfg.BuildBudget))
	tw := tabwriter.NewWriter(r.cfg.Out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Dataset\tCT[HL-P]\tCT[HL]\tCT[FD]\tCT[PLL]\tCT[IS-L]\tQT[HL]\tQT[FD]\tQT[PLL]\tQT[IS-L]\tQT[Bi-BFS]\tALS[HL]\tALS[FD]\tALS[PLL]\tALS[IS-L]")
	for _, d := range r.selected() {
		g := d.Load(r.cfg.Shrink)
		lm := r.landmarksFor(g, r.cfg.Landmarks)
		pairs := workload.RandomPairs(g, r.cfg.Pairs, r.cfg.Seed)
		slow := workload.RandomPairs(g, r.cfg.SlowPairs, r.cfg.Seed)

		hlp := r.build(MethodHLP, d.Name, g, lm)
		hl := r.build(MethodHL, d.Name, g, lm)
		fdr := r.build(MethodFD, d.Name, g, lm)
		pllr := r.build(MethodPLL, d.Name, g, lm)
		islr := r.build(MethodISL, d.Name, g, lm)
		bi := r.build(MethodBiBFS, d.Name, g, lm)

		qt := func(res BuildResult, ps []workload.Pair) string {
			if res.DNF {
				return "-"
			}
			return fmtQT(measureQueries(res.NewSearcher(), ps), false)
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\n",
			d.Name,
			fmtCT(hlp), fmtCT(hl), fmtCT(fdr), fmtCT(pllr), fmtCT(islr),
			qt(hl, pairs), qt(fdr, pairs), qt(pllr, pairs), qt(islr, slow), qt(bi, slow),
			fmtALS(hl), fmtALS(fdr), fmtALS(pllr), fmtALS(islr))
		r.progress(d.Name)
	}
	return tw.Flush()
}

// Table3 reproduces Table 3: labelling sizes of HL(8), HL, FD, PLL, IS-L.
func (r *Runner) Table3() error {
	r.header(fmt.Sprintf("Table 3: labelling sizes (k=%d, budget %s)", r.cfg.Landmarks, r.cfg.BuildBudget))
	tw := tabwriter.NewWriter(r.cfg.Out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Dataset\tHL(8)\tHL\tFD\tPLL\tIS-L")
	for _, d := range r.selected() {
		g := d.Load(r.cfg.Shrink)
		lm := r.landmarksFor(g, r.cfg.Landmarks)
		size := func(m MethodName) string {
			res := r.build(m, d.Name, g, lm)
			if res.DNF {
				return "-"
			}
			return fmtBytes(res.SizeBytes)
		}
		// HL(8) and HL share one build and differ only in accounting.
		hl8 := "-"
		hl := "-"
		if res := r.build(MethodHLP, d.Name, g, lm); !res.DNF {
			hl8 = fmtBytes(res.SizeBytes8)
			hl = fmtBytes(res.SizeBytes)
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%s\t%s\n",
			d.Name, hl8, hl, size(MethodFD), size(MethodPLL), size(MethodISL))
		r.progress(d.Name)
	}
	return tw.Flush()
}

// Fig1a reproduces Figure 1(a): query time vs labelling size per method.
func (r *Runner) Fig1a() error {
	r.header(fmt.Sprintf("Figure 1(a): query time vs index size per method (k=%d)", r.cfg.Landmarks))
	tw := tabwriter.NewWriter(r.cfg.Out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Dataset\tMethod\tIndexSize\tQT")
	for _, d := range r.selected() {
		g := d.Load(r.cfg.Shrink)
		lm := r.landmarksFor(g, r.cfg.Landmarks)
		pairs := workload.RandomPairs(g, r.cfg.Pairs, r.cfg.Seed)
		slow := workload.RandomPairs(g, r.cfg.SlowPairs, r.cfg.Seed)
		for _, m := range []MethodName{MethodHL, MethodFD, MethodPLL, MethodISL, MethodBiBFS} {
			res := r.build(m, d.Name, g, lm)
			if res.DNF {
				fmt.Fprintf(tw, "%s\t%s\tDNF\t-\n", d.Name, m)
				continue
			}
			ps := pairs
			if m == MethodISL || m == MethodBiBFS {
				ps = slow
			}
			qt := measureQueries(res.NewSearcher(), ps)
			fmt.Fprintf(tw, "%s\t%s\t%s\t%s\n", d.Name, m, fmtBytes(res.SizeBytes), fmtQT(qt, false))
		}
		r.progress(d.Name)
	}
	return tw.Flush()
}

// Fig1b reproduces Figure 1(b): construction time vs network size. The
// sweep uses Barabási–Albert graphs of growing size; methods drop out as
// they hit the DNF budget, reproducing the paper's scalability ordering.
func (r *Runner) Fig1b() error {
	sizes := fig1bSizes(r.cfg.Shrink)
	r.header(fmt.Sprintf("Figure 1(b): construction time vs network size (BA graphs, budget %s)", r.cfg.BuildBudget))
	tw := tabwriter.NewWriter(r.cfg.Out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "n\tm\tCT[HL-P]\tCT[HL]\tCT[FD]\tCT[PLL]\tCT[IS-L]")
	for _, n := range sizes {
		g := gen.BarabasiAlbert(n, 5, 1000+int64(n))
		lm := r.landmarksFor(g, r.cfg.Landmarks)
		row := []string{}
		for _, m := range []MethodName{MethodHLP, MethodHL, MethodFD, MethodPLL, MethodISL} {
			res := r.build(m, fmt.Sprintf("fig1b-%d", n), g, lm)
			row = append(row, fmtCT(res))
		}
		fmt.Fprintf(tw, "%d\t%d\t%s\t%s\t%s\t%s\t%s\n", g.NumVertices(), g.NumEdges(),
			row[0], row[1], row[2], row[3], row[4])
		r.progress(fmt.Sprintf("n=%d", n))
	}
	return tw.Flush()
}

func fig1bSizes(shrink int) []int {
	base := []int{10_000, 30_000, 100_000, 300_000, 1_000_000}
	out := make([]int, 0, len(base))
	for _, n := range base {
		n /= shrink
		if n < 100 {
			n = 100
		}
		out = append(out, n)
	}
	sort.Ints(out)
	return out
}

// Fig6 reproduces Figure 6: the distance distribution of the sampled
// pairs on every dataset.
func (r *Runner) Fig6() error {
	r.header(fmt.Sprintf("Figure 6: distance distribution of %d random pairs", r.cfg.Pairs))
	tw := tabwriter.NewWriter(r.cfg.Out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Dataset\tmean\tdistribution (fraction per distance)")
	for _, d := range r.selected() {
		g := d.Load(r.cfg.Shrink)
		lm := r.landmarksFor(g, min(r.cfg.Landmarks, g.NumVertices()))
		ix, err := core.BuildParallel(g, lm)
		if err != nil {
			return fmt.Errorf("fig6: %s: %w", d.Name, err)
		}
		sr := ix.NewSearcher()
		pairs := workload.RandomPairs(g, r.cfg.Pairs, r.cfg.Seed)
		dist := workload.DistanceDistribution(workload.OracleFunc(sr.Distance), pairs)
		fmt.Fprintf(tw, "%s\t%.2f\t%s\n", d.Name, dist.Mean(), dist.String())
		r.progress(d.Name)
	}
	return tw.Flush()
}

// landmarkSweep is the Figure 7-9 x axis.
var landmarkSweep = []int{10, 20, 30, 40, 50}

// Fig7 reproduces Figure 7: construction time (a-d) and query time (e-g)
// of HL under 10-50 landmarks.
func (r *Runner) Fig7() error {
	r.header("Figure 7: HL construction and query time vs #landmarks")
	tw := tabwriter.NewWriter(r.cfg.Out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Dataset\tk\tCT[HL]\tQT[HL]")
	for _, d := range r.selected() {
		g := d.Load(r.cfg.Shrink)
		pairs := workload.RandomPairs(g, r.cfg.Pairs, r.cfg.Seed)
		for _, k := range landmarkSweep {
			if k > g.NumVertices() {
				continue
			}
			lm := r.landmarksFor(g, k)
			res := r.build(MethodHL, d.Name, g, lm)
			if res.DNF {
				fmt.Fprintf(tw, "%s\t%d\tDNF\t-\n", d.Name, k)
				continue
			}
			qt := measureQueries(res.NewSearcher(), pairs)
			fmt.Fprintf(tw, "%s\t%d\t%s\t%s\n", d.Name, k, fmtCT(res), fmtQT(qt, false))
		}
		r.progress(d.Name)
	}
	return tw.Flush()
}

// Fig8 reproduces Figure 8: HL labelling sizes under 10-50 landmarks
// against FD's size at the paper's 20 landmarks.
func (r *Runner) Fig8() error {
	r.header("Figure 8: labelling sizes, HL-10..HL-50 vs FD-20")
	tw := tabwriter.NewWriter(r.cfg.Out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Dataset\tHL-10\tHL-20\tHL-30\tHL-40\tHL-50\tFD-20")
	for _, d := range r.selected() {
		g := d.Load(r.cfg.Shrink)
		row := d.Name
		for _, k := range landmarkSweep {
			if k > g.NumVertices() {
				row += "\t-"
				continue
			}
			res := r.build(MethodHL, d.Name, g, r.landmarksFor(g, k))
			if res.DNF {
				row += "\tDNF"
				continue
			}
			row += "\t" + fmtBytes(res.SizeBytes)
		}
		fdRes := r.build(MethodFD, d.Name, g, r.landmarksFor(g, min(20, g.NumVertices())))
		if fdRes.DNF {
			row += "\tDNF"
		} else {
			row += "\t" + fmtBytes(fdRes.SizeBytes)
		}
		fmt.Fprintln(tw, row)
		r.progress(d.Name)
	}
	return tw.Flush()
}

// Fig9 reproduces Figure 9: pair coverage ratios of HL under 10-50
// landmarks and of FD under 20.
func (r *Runner) Fig9() error {
	r.header("Figure 9: pair coverage ratio, HL-10..HL-50 vs FD-20")
	tw := tabwriter.NewWriter(r.cfg.Out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Dataset\tHL-10\tHL-20\tHL-30\tHL-40\tHL-50\tFD-20")
	for _, d := range r.selected() {
		g := d.Load(r.cfg.Shrink)
		pairs := workload.RandomPairs(g, min(r.cfg.Pairs, 20_000), r.cfg.Seed)
		row := d.Name
		for _, k := range landmarkSweep {
			if k > g.NumVertices() {
				row += "\t-"
				continue
			}
			res := r.build(MethodHL, d.Name, g, r.landmarksFor(g, k))
			if res.DNF {
				row += "\tDNF"
				continue
			}
			cov := workload.PairCoverage(res.Bounder, res.NewSearcher(), pairs)
			row += fmt.Sprintf("\t%.3f", cov)
		}
		// The paper's FD carries 64 bit-parallel neighbors per landmark,
		// which is what lifts its coverage above HL's at equal k.
		fdk := min(20, g.NumVertices())
		fdRes := r.build(MethodFDBP, d.Name, g, r.landmarksFor(g, fdk))
		if fdRes.DNF {
			fmt.Fprintf(tw, "%s\tDNF\n", row)
		} else {
			cov := workload.PairCoverage(fdRes.Bounder, fdRes.NewSearcher(), pairs)
			fmt.Fprintf(tw, "%s\t%.3f\n", row, cov)
		}
		r.progress(d.Name)
	}
	return tw.Flush()
}
