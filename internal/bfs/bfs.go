// Package bfs implements the breadth-first-search toolkit underlying both
// the offline labelling construction and the online query components:
// single-source BFS (ground truth and SPT construction), bidirectional BFS
// (the Bi-BFS baseline of Table 2), and the distance-bounded bidirectional
// search of the paper's Algorithm 2, which runs on the sparsified graph
// G[V\R] expressed as a skip mask.
package bfs

// Adjacency is the read-only graph view the searches operate on. It is a
// type parameter (not an interface value) so that searches over
// *graph.Graph monomorphize with zero dispatch cost while dynamic overlay
// graphs (e.g. the FD baseline's insert-only graph) reuse the same
// algorithms.
type Adjacency interface {
	NumVertices() int
	Neighbors(v int32) []int32
}

// Unreachable is the distance reported between vertices in different
// connected components.
const Unreachable int32 = -1

// Distances returns the BFS distance from src to every vertex
// (Unreachable where no path exists).
func Distances[G Adjacency](g G, src int32) []int32 {
	dist := make([]int32, g.NumVertices())
	for i := range dist {
		dist[i] = Unreachable
	}
	DistancesInto(g, src, dist)
	return dist
}

// DistancesInto runs BFS from src writing into dist, which must have length
// g.NumVertices() and be pre-filled with Unreachable. It returns the number
// of vertices reached (including src). Reusing dist across calls avoids
// allocation; the caller is responsible for re-clearing it.
func DistancesInto[G Adjacency](g G, src int32, dist []int32) int {
	dist[src] = 0
	frontier := make([]int32, 1, 1024)
	frontier[0] = src
	next := make([]int32, 0, 1024)
	reached := 1
	for d := int32(1); len(frontier) > 0; d++ {
		next = next[:0]
		for _, u := range frontier {
			for _, v := range g.Neighbors(u) {
				if dist[v] == Unreachable {
					dist[v] = d
					next = append(next, v)
					reached++
				}
			}
		}
		frontier, next = next, frontier
	}
	return reached
}

// Dist returns the exact distance between s and t via unidirectional BFS
// with early exit. It is the simplest correct oracle and serves as ground
// truth in tests.
func Dist[G Adjacency](g G, s, t int32) int32 {
	if s == t {
		return 0
	}
	dist := make([]int32, g.NumVertices())
	for i := range dist {
		dist[i] = Unreachable
	}
	dist[s] = 0
	frontier := []int32{s}
	var next []int32
	for d := int32(1); len(frontier) > 0; d++ {
		next = next[:0]
		for _, u := range frontier {
			for _, v := range g.Neighbors(u) {
				if dist[v] == Unreachable {
					if v == t {
						return d
					}
					dist[v] = d
					next = append(next, v)
				}
			}
		}
		frontier, next = next, frontier
	}
	return Unreachable
}

// Eccentricity returns the maximum finite distance from src.
func Eccentricity[G Adjacency](g G, src int32) int32 {
	dist := Distances(g, src)
	ecc := int32(0)
	for _, d := range dist {
		if d > ecc {
			ecc = d
		}
	}
	return ecc
}
