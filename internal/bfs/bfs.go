// Package bfs implements the breadth-first-search toolkit underlying both
// the offline labelling construction and the online query components:
// single-source BFS (ground truth and SPT construction), bidirectional BFS
// (the Bi-BFS baseline of Table 2), and the distance-bounded bidirectional
// search of the paper's Algorithm 2, which runs on the sparsified graph
// G[V\R] expressed as a skip mask.
//
// All searches run on the shared direction-optimizing engine (engine.go):
// graphs exposing flat CSR arrays via CSRAccess get hybrid
// top-down/bottom-up level expansion with bitset frontiers; other
// adjacency views fall back to the generic top-down walk. Scratch state
// is pooled, so the convenience forms allocate only what they return.
package bfs

// Adjacency is the read-only graph view the searches operate on. It is a
// type parameter (not an interface value) so that searches over
// *graph.Graph monomorphize with zero dispatch cost while dynamic overlay
// graphs (e.g. the FD baseline's insert-only graph) reuse the same
// algorithms. Implementations that also satisfy CSRAccess opt in to the
// direction-optimizing fast path.
type Adjacency interface {
	NumVertices() int
	Neighbors(v int32) []int32
}

// Unreachable is the distance reported between vertices in different
// connected components.
const Unreachable int32 = -1

// Distances returns the BFS distance from src to every vertex
// (Unreachable where no path exists). The returned slice is freshly
// allocated; all other search state comes from the scratch pool.
func Distances[G Adjacency](g G, src int32) []int32 {
	dist := make([]int32, g.NumVertices())
	for i := range dist {
		dist[i] = Unreachable
	}
	DistancesInto(g, src, dist)
	return dist
}

// DistancesReuse is Distances writing into buf, growing it if needed, and
// returning it. Unlike DistancesInto it does not require buf to be
// pre-filled (or even non-nil), so callers running many BFSs — the oracle
// harness, landmark sampling — can reuse one buffer with zero per-call
// allocation.
func DistancesReuse[G Adjacency](g G, src int32, buf []int32) []int32 {
	n := g.NumVertices()
	if cap(buf) < n {
		buf = make([]int32, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = Unreachable
	}
	DistancesInto(g, src, buf)
	return buf
}

// DistancesInto runs BFS from src writing into dist, which must have length
// g.NumVertices() and be pre-filled with Unreachable. It returns the number
// of vertices reached (including src). Reusing dist across calls avoids
// allocation; the caller is responsible for re-clearing it.
func DistancesInto[G Adjacency](g G, src int32, dist []int32) int {
	return DistancesIntoDir(g, src, dist, DirectionAuto, nil)
}

// DistancesIntoDir is DistancesInto with an explicit traversal direction
// and optional stats collection. DirectionAuto is the
// direction-optimizing default; the forced directions exist for
// differential testing and benchmarks. Non-auto directions require CSR
// access only for DirectionBottomUp; graphs without it always run the
// generic top-down walk.
func DistancesIntoDir[G Adjacency](g G, src int32, dist []int32, dir Direction, stats *TraversalStats) int {
	a := getArena(g.NumVertices())
	defer putArena(a)
	if off, tgt, ok := csrOf(g); ok {
		return distancesCSR(off, tgt, src, dist, a, dir, stats)
	}
	return distancesGeneric(g, src, dist, a, stats)
}

// Dist returns the exact distance between s and t via unidirectional BFS
// with early exit. It is the simplest correct oracle and serves as ground
// truth in tests. All scratch state is pooled.
func Dist[G Adjacency](g G, s, t int32) int32 {
	if s == t {
		return 0
	}
	a := getArena(g.NumVertices())
	defer putArena(a)
	dist := a.distBuf(g.NumVertices())
	dist[s] = 0
	frontier := append(a.frontier[:0], s)
	next := a.next[:0]
	defer func() { a.frontier, a.next = frontier, next }()
	for d := int32(1); len(frontier) > 0; d++ {
		next = next[:0]
		for _, u := range frontier {
			for _, v := range g.Neighbors(u) {
				if dist[v] == Unreachable {
					if v == t {
						return d
					}
					dist[v] = d
					next = append(next, v)
				}
			}
		}
		frontier, next = next, frontier
	}
	return Unreachable
}

// Eccentricity returns the maximum finite distance from src.
func Eccentricity[G Adjacency](g G, src int32) int32 {
	a := getArena(g.NumVertices())
	defer putArena(a)
	dist := a.distBuf(g.NumVertices())
	DistancesInto(g, src, dist)
	ecc := int32(0)
	for _, d := range dist {
		if d > ecc {
			ecc = d
		}
	}
	return ecc
}
