package bfs

import (
	"math/rand"
	"testing"
	"testing/quick"

	"highway/internal/gen"
	"highway/internal/graph"
)

func TestDistancesPath(t *testing.T) {
	g := gen.Path(6)
	dist := Distances(g, 0)
	for v := int32(0); v < 6; v++ {
		if dist[v] != v {
			t.Fatalf("dist[%d] = %d, want %d", v, dist[v], v)
		}
	}
}

func TestDistancesDisconnected(t *testing.T) {
	g := graph.MustFromEdges(5, [][2]int32{{0, 1}, {2, 3}})
	dist := Distances(g, 0)
	if dist[1] != 1 || dist[2] != Unreachable || dist[4] != Unreachable {
		t.Fatalf("dist = %v", dist)
	}
	if got := Dist(g, 0, 3); got != Unreachable {
		t.Fatalf("Dist(0,3) = %d, want Unreachable", got)
	}
	sc := NewScratch(5)
	if got := BiBFS(g, 0, 3, sc); got != Unreachable {
		t.Fatalf("BiBFS(0,3) = %d, want Unreachable", got)
	}
}

func TestDistAgainstDistances(t *testing.T) {
	g := gen.BarabasiAlbert(300, 3, 5)
	dist := Distances(g, 7)
	for _, v := range []int32{0, 1, 50, 123, 299} {
		if got := Dist(g, 7, v); got != dist[v] {
			t.Fatalf("Dist(7,%d) = %d, want %d", v, got, dist[v])
		}
	}
}

func TestEccentricity(t *testing.T) {
	if ecc := Eccentricity(gen.Path(10), 0); ecc != 9 {
		t.Fatalf("ecc = %d, want 9", ecc)
	}
	if ecc := Eccentricity(gen.Path(10), 5); ecc != 5 {
		t.Fatalf("ecc = %d, want 5", ecc)
	}
	if ecc := Eccentricity(gen.Star(10), 0); ecc != 1 {
		t.Fatalf("star ecc = %d, want 1", ecc)
	}
}

func TestBiBFSMatchesBFSProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := gen.ErdosRenyi(60, int64(rng.Intn(150)), seed)
		sc := NewScratch(g.NumVertices())
		for trial := 0; trial < 30; trial++ {
			s := int32(rng.Intn(60))
			u := int32(rng.Intn(60))
			if BiBFS(g, s, u, sc) != Dist(g, s, u) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestBiBFSSameVertex(t *testing.T) {
	g := gen.Cycle(5)
	sc := NewScratch(5)
	if got := BiBFS(g, 3, 3, sc); got != 0 {
		t.Fatalf("BiBFS(v,v) = %d, want 0", got)
	}
}

func TestBoundedBiBFSRespectsSkip(t *testing.T) {
	// Path 0-1-2-3-4 plus shortcut 0-5-4. Skipping 5 forces the long way.
	g := graph.MustFromEdges(6, [][2]int32{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {0, 5}, {5, 4}})
	sc := NewScratch(6)
	skip := make([]bool, 6)
	if got := BoundedBiBFS(g, 0, 4, NoBound, nil, sc); got != 2 {
		t.Fatalf("unskipped = %d, want 2", got)
	}
	skip[5] = true
	if got := BoundedBiBFS(g, 0, 4, NoBound, skip, sc); got != 4 {
		t.Fatalf("skipped = %d, want 4", got)
	}
}

func TestBoundedBiBFSBoundHit(t *testing.T) {
	g := gen.Path(20) // d(0,19) = 19
	sc := NewScratch(20)
	// Bound smaller than the true distance: the search must stop early and
	// report the bound.
	if got := BoundedBiBFS(g, 0, 19, 5, nil, sc); got != 5 {
		t.Fatalf("bound hit = %d, want 5", got)
	}
	// Bound equal to the true distance: either way the answer is 19.
	if got := BoundedBiBFS(g, 0, 19, 19, nil, sc); got != 19 {
		t.Fatalf("exact bound = %d, want 19", got)
	}
	// Bound way larger: exact distance wins.
	if got := BoundedBiBFS(g, 0, 19, 1000, nil, sc); got != 19 {
		t.Fatalf("loose bound = %d, want 19", got)
	}
	// Bound 0 with s != t is returned as-is.
	if got := BoundedBiBFS(g, 0, 19, 0, nil, sc); got != 0 {
		t.Fatalf("zero bound = %d, want 0", got)
	}
}

func TestBoundedBiBFSDisconnectedUnderBound(t *testing.T) {
	// Two components; with a finite bound the bound is returned (the
	// caller's label bound is then the exact answer).
	g := graph.MustFromEdges(4, [][2]int32{{0, 1}, {2, 3}})
	sc := NewScratch(4)
	if got := BoundedBiBFS(g, 0, 2, 7, nil, sc); got != 7 {
		t.Fatalf("got %d, want bound 7", got)
	}
}

// TestBoundedBiBFSEquivalence cross-checks Algorithm 2 against the
// definition: result == min(bound, d_{G[V\R]}(s,t)) for random graphs,
// random skips and random bounds.
func TestBoundedBiBFSEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 40 + rng.Intn(40)
		g := gen.ErdosRenyi(n, int64(2*n), seed+1)
		skip := make([]bool, n)
		for i := range skip {
			skip[i] = rng.Intn(5) == 0
		}
		// Reference: sparsified graph materialized.
		keep := make([]int32, 0, n)
		newID := make([]int32, n)
		for v := 0; v < n; v++ {
			if !skip[v] {
				newID[v] = int32(len(keep))
				keep = append(keep, int32(v))
			}
		}
		sub, _, err := g.InducedSubgraph(keep)
		if err != nil {
			return false
		}
		sc := NewScratch(n)
		for trial := 0; trial < 25; trial++ {
			s := int32(rng.Intn(n))
			u := int32(rng.Intn(n))
			if skip[s] || skip[u] {
				continue
			}
			bound := int32(rng.Intn(10))
			want := Dist(sub, newID[s], newID[u])
			if want == Unreachable || want > bound {
				want = bound
			}
			if got := BoundedBiBFS(g, s, u, bound, skip, sc); got != want {
				t.Logf("seed=%d s=%d t=%d bound=%d got=%d want=%d", seed, s, u, bound, got, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestScratchReuse runs many searches through one scratch, including epoch
// wrap adjacency, to catch cross-query contamination.
func TestScratchReuse(t *testing.T) {
	g := gen.BarabasiAlbert(200, 3, 11)
	sc := NewScratch(g.NumVertices())
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 500; i++ {
		s := int32(rng.Intn(200))
		u := int32(rng.Intn(200))
		if got, want := BiBFS(g, s, u, sc), Dist(g, s, u); got != want {
			t.Fatalf("iteration %d: BiBFS(%d,%d) = %d, want %d", i, s, u, got, want)
		}
	}
}

// TestScratchGrow verifies a scratch sized for a small graph adapts to a
// bigger one.
func TestScratchGrow(t *testing.T) {
	sc := NewScratch(4)
	g := gen.Cycle(50)
	if got := BiBFS(g, 0, 25, sc); got != 25 {
		t.Fatalf("got %d, want 25", got)
	}
}

func BenchmarkBiBFS(b *testing.B) {
	g := gen.BarabasiAlbert(20000, 5, 3)
	sc := NewScratch(g.NumVertices())
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := int32(rng.Intn(20000))
		u := int32(rng.Intn(20000))
		BiBFS(g, s, u, sc)
	}
}
