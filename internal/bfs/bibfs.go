package bfs

// Scratch holds the reusable per-search state of bidirectional searches.
// One Scratch supports any number of sequential searches on graphs with at
// most its capacity of vertices; it is not safe for concurrent use.
//
// Visited sides are tracked with epoch-stamped arrays so that resetting a
// search costs O(1) instead of O(n); the frontier bitmap of bottom-up
// levels is kept clean by unsetting exactly the frontier's bits.
type Scratch struct {
	markS, markT []uint64 // epoch when vertex joined the s- or t-side
	epoch        uint64
	qs, qt, qn   []int32
	fbits        Bitset // frontier bitmap for bottom-up levels
}

// NewScratch returns a Scratch for graphs with up to n vertices.
func NewScratch(n int) *Scratch {
	return &Scratch{
		markS: make([]uint64, n),
		markT: make([]uint64, n),
		epoch: 0,
		qs:    make([]int32, 0, 1024),
		qt:    make([]int32, 0, 1024),
		qn:    make([]int32, 0, 1024),
		fbits: NewBitset(n),
	}
}

// grow ensures capacity for n vertices.
func (s *Scratch) grow(n int) {
	if len(s.markS) < n {
		s.markS = make([]uint64, n)
		s.markT = make([]uint64, n)
		s.epoch = 0
	}
	s.fbits = s.fbits.grown(n)
}

// NoBound disables the distance bound of BoundedBiBFS, turning it into the
// plain bidirectional BFS baseline.
const NoBound int32 = 1<<31 - 1

// BiBFS is the online bidirectional BFS baseline (Table 2's Bi-BFS,
// Pohl 1971): it alternates expanding the smaller frontier from s and t
// until the searches meet.
func BiBFS[G Adjacency](g G, s, t int32, sc *Scratch) int32 {
	return BoundedBiBFS(g, s, t, NoBound, nil, sc)
}

// BoundedBiBFS implements the paper's Algorithm 2: a bidirectional BFS on
// the sparsified graph G[V\R] under an upper distance bound.
//
//   - skip marks vertices removed from the graph (the landmarks R); nil
//     means no vertex is skipped. s and t themselves must not be skipped.
//   - bound is the upper bound d⊤st from the labelling. The search stops as
//     soon as ds+dt reaches bound, returning bound (the label-derived
//     distance is then known to be exact, since bound ≤ any remaining
//     sparsified path).
//
// The return value is d_{G[V\R]}(s,t) if it is < bound, bound if the bound
// was hit first, and Unreachable if the frontiers die out before the bound
// is reached (only possible when bound is NoBound or the sparsified graph
// is disconnected).
//
// On CSR graphs, levels whose frontier saturates the sparsified graph —
// possible exactly when the bound is loose or absent — expand bottom-up.
func BoundedBiBFS[G Adjacency](g G, s, t int32, bound int32, skip []bool, sc *Scratch) int32 {
	return BoundedBiBFSDir(g, s, t, bound, skip, sc, DirectionAuto)
}

// BoundedBiBFSDir is BoundedBiBFS with an explicit traversal direction
// (see Direction); the forced directions exist for differential testing.
// Graphs without CSR access always expand top-down.
func BoundedBiBFSDir[G Adjacency](g G, s, t int32, bound int32, skip []bool, sc *Scratch, dir Direction) int32 {
	if s == t {
		return 0
	}
	if bound <= 0 {
		// d(s,t) ≥ 1 for s != t, so a bound of 0 is already exact.
		return bound
	}
	sc.grow(g.NumVertices())
	sc.epoch++
	if sc.epoch == 0 { // wrapped: clear stale marks
		clear(sc.markS)
		clear(sc.markT)
		sc.epoch = 1
	}
	if off, tgt, ok := csrOf(g); ok {
		return biBFSCSR(off, tgt, s, t, bound, skip, sc, dir)
	}
	return biBFSGeneric(g, s, t, bound, skip, sc)
}

// biBFSCSR is the direction-optimizing bidirectional search over flat
// CSR arrays. Unlike the single-source engine, the direction decision is
// frontier-*size* based: top-down expansions here usually exit early at
// the meet, so neither a pre-level degree-sum pass nor per-visit edge
// accounting pays for itself. A side goes bottom-up only once its
// frontier holds more than 1/biBFSFrac of all vertices — i.e. when it
// saturates the (sparsified) graph, which is when no quick meet is
// coming and scanning the unvisited remainder is cheaper than pushing
// the frontier's edges.
func biBFSCSR(off []int64, tgt []int32, s, t int32, bound int32, skip []bool, sc *Scratch, dir Direction) int32 {
	const biBFSFrac = 4
	epoch := sc.epoch
	n := len(off) - 1
	qs := append(sc.qs[:0], s)
	qt := append(sc.qt[:0], t)
	spare := sc.qn[:0]
	// Keep the three buffers registered in the scratch so that rotation
	// below never leaves two scratch fields aliasing one buffer across
	// calls.
	defer func() { sc.qs, sc.qt, sc.qn = qs, qt, spare }()
	sc.markS[s] = epoch
	sc.markT[t] = epoch
	ds, dt := int32(0), int32(0)
	sizeS, sizeT := 1, 1 // |Ps|, |Pt| — Algorithm 2 expands the smaller side

	for len(qs) > 0 && len(qt) > 0 {
		if ds+dt >= bound {
			return bound
		}
		var (
			frontier  *[]int32
			mine, his []uint64
		)
		forward := sizeS <= sizeT
		if forward {
			frontier, mine, his = &qs, sc.markS, sc.markT
		} else {
			frontier, mine, his = &qt, sc.markT, sc.markS
		}
		bottomUp := dir == DirectionBottomUp ||
			(dir == DirectionAuto && len(*frontier) > n/biBFSFrac)

		next := spare[:0]
		if bottomUp {
			fb := sc.fbits
			fb.SetList(*frontier)
			meet := int32(-1)
		scan:
			for v := 0; v < n; v++ {
				vv := int32(v)
				if mine[vv] == epoch || (skip != nil && skip[vv]) {
					continue
				}
				for _, u := range tgt[off[v]:off[v+1]] {
					if fb.Get(u) {
						if his[vv] == epoch {
							// Frontiers meet: ds + 1 + dt is the shortest
							// sparsified path (Algorithm 2 line 10).
							meet = ds + 1 + dt
							break scan
						}
						mine[vv] = epoch
						next = append(next, vv)
						break
					}
				}
			}
			fb.UnsetList(*frontier)
			if meet >= 0 {
				return meet
			}
		} else {
			for _, u := range *frontier {
				for _, v := range tgt[off[u]:off[u+1]] {
					if skip != nil && skip[v] {
						continue
					}
					if mine[v] == epoch {
						continue
					}
					if his[v] == epoch {
						// Frontiers meet (Algorithm 2 line 10).
						return ds + 1 + dt
					}
					mine[v] = epoch
					next = append(next, v)
				}
			}
		}
		spare = *frontier // recycle the old frontier buffer
		*frontier = next
		if forward {
			ds++
			sizeS += len(next)
		} else {
			dt++
			sizeT += len(next)
		}
	}
	if bound != NoBound {
		// Frontier exhausted below the bound: every s-t path in the
		// sparsified graph is longer than bound, so the bound is the answer.
		return bound
	}
	return Unreachable
}

// biBFSGeneric is the top-down search over method-dispatch adjacency
// (dynamic overlay graphs). The caller has already bumped the epoch and
// handled the trivial cases.
func biBFSGeneric[G Adjacency](g G, s, t int32, bound int32, skip []bool, sc *Scratch) int32 {
	epoch := sc.epoch
	qs := append(sc.qs[:0], s)
	qt := append(sc.qt[:0], t)
	spare := sc.qn[:0]
	defer func() { sc.qs, sc.qt, sc.qn = qs, qt, spare }()
	sc.markS[s] = epoch
	sc.markT[t] = epoch
	ds, dt := int32(0), int32(0)
	sizeS, sizeT := 1, 1

	for len(qs) > 0 && len(qt) > 0 {
		if ds+dt >= bound {
			return bound
		}
		var (
			frontier  *[]int32
			mine, his []uint64
		)
		forward := sizeS <= sizeT
		if forward {
			frontier, mine, his = &qs, sc.markS, sc.markT
		} else {
			frontier, mine, his = &qt, sc.markT, sc.markS
		}
		next := spare[:0]
		for _, u := range *frontier {
			for _, v := range g.Neighbors(u) {
				if skip != nil && skip[v] {
					continue
				}
				if mine[v] == epoch {
					continue
				}
				if his[v] == epoch {
					// Frontiers meet (Algorithm 2 line 10).
					return ds + 1 + dt
				}
				mine[v] = epoch
				next = append(next, v)
			}
		}
		spare = *frontier
		*frontier = next
		if forward {
			ds++
			sizeS += len(next)
		} else {
			dt++
			sizeT += len(next)
		}
	}
	if bound != NoBound {
		return bound
	}
	return Unreachable
}
