package bfs

import "math/bits"

// Bitset is a fixed-capacity bitmap over vertex ids, the frontier
// representation of the bottom-up traversal direction: membership tests
// are one shift and one AND over a cache-resident word array, which is
// what makes scanning the neighbor ranges of every unvisited vertex
// against the frontier cheaper than pushing a huge frontier's edges.
type Bitset []uint64

// NewBitset returns a Bitset able to hold vertex ids in [0, n).
func NewBitset(n int) Bitset { return make(Bitset, (n+63)/64) }

// grown returns b if it already holds n vertices, else a fresh zeroed
// Bitset that does.
func (b Bitset) grown(n int) Bitset {
	if len(b)*64 >= n {
		return b
	}
	return NewBitset(n)
}

// Set marks vertex i.
func (b Bitset) Set(i int32) { b[uint32(i)>>6] |= 1 << (uint32(i) & 63) }

// Unset clears vertex i.
func (b Bitset) Unset(i int32) { b[uint32(i)>>6] &^= 1 << (uint32(i) & 63) }

// Get reports whether vertex i is marked.
func (b Bitset) Get(i int32) bool { return b[uint32(i)>>6]&(1<<(uint32(i)&63)) != 0 }

// SetList marks every vertex in list.
func (b Bitset) SetList(list []int32) {
	for _, v := range list {
		b.Set(v)
	}
}

// UnsetList clears every vertex in list. Clearing by list is O(|list|)
// instead of O(n/64), which keeps per-level bitmap maintenance
// proportional to the frontier rather than the graph.
func (b Bitset) UnsetList(list []int32) {
	for _, v := range list {
		b.Unset(v)
	}
}

// FillOnes marks every vertex in [0, n) and clears any slack bits at or
// beyond n, so word-level iteration never yields a phantom vertex. It is
// how the unvisited set of a bottom-up search is initialized: scanning
// "all vertices not yet visited" then skips fully-visited regions 64
// vertices at a time.
func (b Bitset) FillOnes(n int) {
	full := n >> 6
	for i := 0; i < full && i < len(b); i++ {
		b[i] = ^uint64(0)
	}
	for i := full; i < len(b); i++ {
		b[i] = 0
	}
	if rem := n & 63; rem != 0 && full < len(b) {
		b[full] = 1<<rem - 1
	}
}

// Absorb ORs o into b and clears o, in one pass over the words. It is
// the per-level commit of a bottom-up sweep: vertices claimed during the
// sweep accumulate in a "next" bitmap (so the sweep never probes them as
// parents) and are merged into the persistent membership bitmap only
// once the level is complete. Both bitsets must have the same length.
func (b Bitset) Absorb(o Bitset) {
	for i, w := range o {
		if w != 0 {
			b[i] |= w
			o[i] = 0
		}
	}
}

// Count returns the number of marked vertices.
func (b Bitset) Count() int {
	c := 0
	for _, w := range b {
		c += bits.OnesCount64(w)
	}
	return c
}

// ClearAll unmarks every vertex.
func (b Bitset) ClearAll() { clear(b) }
