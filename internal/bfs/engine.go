package bfs

import (
	"math/bits"
	"sync"
)

// This file is the shared direction-optimizing traversal engine
// (Beamer, Asanović, Patterson, SC 2012) used by every BFS in the
// repository. A level is expanded either
//
//   - top-down: walk the frontier's edge lists and push unvisited
//     neighbors (cheap while the frontier is sparse), or
//   - bottom-up: scan every unvisited vertex's neighbor range against a
//     frontier bitmap and stop at the first hit (cheap on the heavy
//     middle levels of skewed-degree complex networks, where most edges
//     point back into the frontier).
//
// The switch uses the classic α/β heuristics on scanned-edge estimates:
// go bottom-up when the frontier's outgoing edges exceed 1/α of the
// edges still incident to unvisited vertices, and return top-down once
// the frontier shrinks below 1/β of the vertices.

// CSRAccess is the fast-path contract of the engine: a graph that can
// expose its raw CSR arrays lets the bottom-up inner loop run over flat
// slices with zero method dispatch. *graph.Graph implements it; dynamic
// overlay graphs (FD after inserts, dynhl) do not and fall back to the
// generic top-down path.
type CSRAccess interface {
	// CSR returns the offsets (len n+1) and targets (len 2m) arrays of
	// the adjacency structure. Callers must not modify them.
	CSR() (offsets []int64, targets []int32)
}

// Direction selects the traversal strategy of the engine.
type Direction uint8

const (
	// DirectionAuto switches between top-down and bottom-up per level
	// using the α/β heuristics (the default).
	DirectionAuto Direction = iota
	// DirectionTopDown forces the classic top-down frontier walk on
	// every level — the pre-engine reference behavior, kept as the
	// differential-testing baseline and for benchmarking the switch.
	DirectionTopDown
	// DirectionBottomUp forces bottom-up expansion on every level.
	// Always correct but usually slower; exists so tests can exercise
	// the bottom-up code path on graphs too small to trigger it.
	DirectionBottomUp
)

// AlphaDOpt and BetaDOpt are the direction-switch coefficients: go
// bottom-up when frontier edges exceed remaining-unvisited edges / α,
// return top-down when the frontier drops below n/β. The heuristic shape
// is Beamer's; the coefficients are re-tuned for this implementation,
// where a bottom-up probe costs about the same as a top-down edge walk
// (both are one array load plus one bit test), so switching pays off
// later than in Beamer's α=14 setting. Tuned on the Skitter stand-in
// construction benchmark (see BENCH_BUILD.json); deliberately not
// configurable — the engine must stay deterministic and the optimum is
// flat around these values. Exported (read-only) so the pruned BFS in
// internal/core, which carries its own level loop, switches on the same
// coefficients.
const (
	AlphaDOpt = 4
	BetaDOpt  = 24
)

// TraversalStats counts the per-direction work of one or more
// traversals. Counters are plain ints: accumulate per worker and merge
// with Add.
type TraversalStats struct {
	TopDownLevels  int64 // levels expanded top-down
	BottomUpLevels int64 // levels expanded bottom-up
	EdgesTopDown   int64 // edges examined by top-down expansions
	EdgesBottomUp  int64 // neighbor-range entries scanned bottom-up
}

// Add accumulates o into s.
func (s *TraversalStats) Add(o TraversalStats) {
	s.TopDownLevels += o.TopDownLevels
	s.BottomUpLevels += o.BottomUpLevels
	s.EdgesTopDown += o.EdgesTopDown
	s.EdgesBottomUp += o.EdgesBottomUp
}

// Levels returns the total number of expanded levels.
func (s TraversalStats) Levels() int64 { return s.TopDownLevels + s.BottomUpLevels }

// EdgesScanned returns the total number of examined edges.
func (s TraversalStats) EdgesScanned() int64 { return s.EdgesTopDown + s.EdgesBottomUp }

// csrOf extracts the flat CSR arrays when the graph supports them. The
// type assertion costs one dynamic dispatch per search, not per edge.
func csrOf[G Adjacency](g G) (offsets []int64, targets []int32, ok bool) {
	c, isCSR := any(g).(CSRAccess)
	if !isCSR {
		return nil, nil, false
	}
	offsets, targets = c.CSR()
	return offsets, targets, len(offsets) > 0
}

// arena is the reusable per-worker scratch of single-source searches:
// frontier buffers, the bottom-up frontier bitmap, and a distance buffer
// for the search forms that do not return one. Arenas are pooled so
// repeated calls (oracle ground truth, landmark sampling, differential
// tests) stop allocating per call.
type arena struct {
	frontier, next []int32
	unvis          Bitset // unvisited set, maintained for word skipping
	dist           []int32
}

var arenaPool = sync.Pool{New: func() any {
	return &arena{
		frontier: make([]int32, 0, 1024),
		next:     make([]int32, 0, 1024),
	}
}}

// getArena draws a pooled arena sized for n vertices.
func getArena(n int) *arena {
	a := arenaPool.Get().(*arena)
	a.unvis = a.unvis.grown(n)
	return a
}

func putArena(a *arena) { arenaPool.Put(a) }

// distBuf returns the arena's distance buffer, len n, every entry
// Unreachable.
func (a *arena) distBuf(n int) []int32 {
	if cap(a.dist) < n {
		a.dist = make([]int32, n)
	}
	a.dist = a.dist[:n]
	for i := range a.dist {
		a.dist[i] = Unreachable
	}
	return a.dist
}

// distancesCSR is the direction-optimizing single-source BFS over flat
// CSR arrays. dist must be len(off)-1 long and pre-filled with
// Unreachable (it doubles as the visited set). It returns the number of
// reached vertices; stats may be nil.
func distancesCSR(off []int64, tgt []int32, src int32, dist []int32, a *arena, dir Direction, stats *TraversalStats) int {
	n := len(off) - 1
	dist[src] = 0
	frontier := append(a.frontier[:0], src)
	next := a.next[:0]
	reached := 1

	// The unvisited set mirrors dist's Unreachable entries as a bitmap so
	// bottom-up levels skip fully-visited regions 64 vertices at a time.
	unvis := a.unvis
	unvis.FillOnes(n)
	unvis.Unset(src)

	frontEdges := off[src+1] - off[src]      // Σ deg over the frontier
	remEdges := int64(len(tgt)) - frontEdges // Σ deg over unvisited vertices
	bottomUp := false

	for d := int32(1); len(frontier) > 0; d++ {
		switch dir {
		case DirectionTopDown:
			bottomUp = false
		case DirectionBottomUp:
			bottomUp = true
		default:
			if !bottomUp {
				bottomUp = frontEdges > remEdges/AlphaDOpt
			} else {
				bottomUp = len(frontier) > n/BetaDOpt
			}
		}
		next = next[:0]
		var scanned, nextEdges int64
		if bottomUp {
			// Frontier membership is dist[u] == d-1: vertices claimed
			// earlier in this same sweep carry dist d, earlier levels
			// carry smaller distances, so no frontier bitmap is needed.
			for wi, w := range unvis {
				for w != 0 {
					v := int32(wi<<6 | bits.TrailingZeros64(w))
					w &= w - 1
					lo, hi := off[v], off[v+1]
					for _, u := range tgt[lo:hi] {
						scanned++
						if dist[u] == d-1 {
							dist[v] = d
							unvis.Unset(v)
							next = append(next, v)
							nextEdges += hi - lo
							reached++
							break
						}
					}
				}
			}
			if stats != nil {
				stats.BottomUpLevels++
				stats.EdgesBottomUp += scanned
			}
		} else {
			for _, u := range frontier {
				lo, hi := off[u], off[u+1]
				scanned += hi - lo
				for _, v := range tgt[lo:hi] {
					if dist[v] == Unreachable {
						dist[v] = d
						unvis.Unset(v)
						next = append(next, v)
						nextEdges += off[v+1] - off[v]
						reached++
					}
				}
			}
			if stats != nil {
				stats.TopDownLevels++
				stats.EdgesTopDown += scanned
			}
		}
		remEdges -= nextEdges
		frontEdges = nextEdges
		frontier, next = next, frontier
	}
	a.frontier, a.next = frontier, next
	return reached
}

// distancesGeneric is the top-down fallback for graphs without CSR
// access (dynamic overlays). Frontier buffers come from the arena.
func distancesGeneric[G Adjacency](g G, src int32, dist []int32, a *arena, stats *TraversalStats) int {
	dist[src] = 0
	frontier := append(a.frontier[:0], src)
	next := a.next[:0]
	reached := 1
	for d := int32(1); len(frontier) > 0; d++ {
		next = next[:0]
		var scanned int64
		for _, u := range frontier {
			for _, v := range g.Neighbors(u) {
				scanned++
				if dist[v] == Unreachable {
					dist[v] = d
					next = append(next, v)
					reached++
				}
			}
		}
		if stats != nil {
			stats.TopDownLevels++
			stats.EdgesTopDown += scanned
		}
		frontier, next = next, frontier
	}
	a.frontier, a.next = frontier, next
	return reached
}
