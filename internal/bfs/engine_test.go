// Differential tests of the direction-optimizing engine: every traversal
// direction must agree with the naive top-down reference on the oracle
// harness's corner-case and seeded-random graph families. The tests live
// in package bfs_test so they can use internal/oracle (which itself
// imports bfs for ground truth).
package bfs_test

import (
	"fmt"
	"math/rand"
	"testing"

	"highway/internal/bfs"
	"highway/internal/gen"
	"highway/internal/graph"
	"highway/internal/oracle"
)

// checkDistancesAgree runs a full BFS from every vertex in all three
// directions and fails on the first disagreement with the top-down
// reference.
func checkDistancesAgree(t testing.TB, name string, g *graph.Graph) {
	t.Helper()
	n := g.NumVertices()
	want := make([]int32, n)
	got := make([]int32, n)
	for s := int32(0); int(s) < n; s++ {
		fill(want)
		wantReached := bfs.DistancesIntoDir(g, s, want, bfs.DirectionTopDown, nil)
		for _, dc := range []struct {
			dn  string
			dir bfs.Direction
		}{{"auto", bfs.DirectionAuto}, {"bottomup", bfs.DirectionBottomUp}} {
			fill(got)
			reached := bfs.DistancesIntoDir(g, s, got, dc.dir, nil)
			if reached != wantReached {
				t.Fatalf("%s: src %d: %s reached %d vertices, top-down %d", name, s, dc.dn, reached, wantReached)
			}
			for v := 0; v < n; v++ {
				if got[v] != want[v] {
					t.Fatalf("%s: src %d: %s dist[%d] = %d, top-down says %d", name, s, dc.dn, v, got[v], want[v])
				}
			}
		}
	}
}

func fill(dist []int32) {
	for i := range dist {
		dist[i] = bfs.Unreachable
	}
}

// TestDirectionsAgreeCornerCases cross-checks the engine on the oracle
// harness's corner-case suite (paths, cycles, stars, grids, complete,
// the paper's running example, disconnected graphs).
func TestDirectionsAgreeCornerCases(t *testing.T) {
	for _, c := range oracle.CornerCases() {
		t.Run(c.Name, func(t *testing.T) {
			checkDistancesAgree(t, c.Name, c.Graph)
		})
	}
}

// TestDirectionsAgreeRandom cross-checks the engine on the seeded random
// generator families of the oracle harness.
func TestDirectionsAgreeRandom(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		c := oracle.RandomCase(seed)
		t.Run(c.Name, func(t *testing.T) {
			checkDistancesAgree(t, c.Name, c.Graph)
		})
	}
}

// TestAutoTriggersBottomUp pins that the α/β heuristics actually fire on
// a skewed-degree graph: an auto BFS from a hub of a dense BA graph must
// expand at least one level bottom-up, and still agree with top-down
// (agreement is covered above; here we check the stats).
func TestAutoTriggersBottomUp(t *testing.T) {
	g := gen.BarabasiAlbert(4000, 8, 77)
	_, hub := g.MaxDegree()
	var stats bfs.TraversalStats
	dist := make([]int32, g.NumVertices())
	fill(dist)
	bfs.DistancesIntoDir(g, hub, dist, bfs.DirectionAuto, &stats)
	if stats.BottomUpLevels == 0 {
		t.Fatalf("auto BFS from hub %d never went bottom-up: %+v", hub, stats)
	}
	if stats.EdgesScanned() == 0 || stats.Levels() == 0 {
		t.Fatalf("stats not collected: %+v", stats)
	}
}

// TestBiBFSDirectionsAgree cross-checks BoundedBiBFSDir across
// directions on random graphs, with and without skip masks and bounds.
func TestBiBFSDirectionsAgree(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		c := oracle.RandomCase(seed)
		g := c.Graph
		n := g.NumVertices()
		rng := rand.New(rand.NewSource(seed))
		// Skip the top few degree vertices, like Algorithm 2 does.
		skip := make([]bool, n)
		for _, v := range g.DegreeOrder()[:min(3, n)] {
			skip[v] = true
		}
		scTD := bfs.NewScratch(n)
		scBU := bfs.NewScratch(n)
		scAuto := bfs.NewScratch(n)
		for trial := 0; trial < 200; trial++ {
			s := int32(rng.Intn(n))
			u := int32(rng.Intn(n))
			if skip[s] || skip[u] {
				continue
			}
			var mask []bool
			if trial%2 == 0 {
				mask = skip
			}
			bound := bfs.NoBound
			if trial%3 == 0 {
				bound = int32(rng.Intn(8))
			}
			want := bfs.BoundedBiBFSDir(g, s, u, bound, mask, scTD, bfs.DirectionTopDown)
			if got := bfs.BoundedBiBFSDir(g, s, u, bound, mask, scBU, bfs.DirectionBottomUp); got != want {
				t.Fatalf("%s: BiBFS(%d,%d,bound=%d) bottom-up = %d, top-down = %d", c.Name, s, u, bound, got, want)
			}
			if got := bfs.BoundedBiBFSDir(g, s, u, bound, mask, scAuto, bfs.DirectionAuto); got != want {
				t.Fatalf("%s: BiBFS(%d,%d,bound=%d) auto = %d, top-down = %d", c.Name, s, u, bound, got, want)
			}
		}
	}
}

// TestDistancesReuse verifies the no-prefill entry point grows and
// reuses its buffer and matches Distances.
func TestDistancesReuse(t *testing.T) {
	g := gen.BarabasiAlbert(200, 3, 1)
	var buf []int32
	for _, s := range []int32{0, 5, 199} {
		buf = bfs.DistancesReuse(g, s, buf)
		want := bfs.Distances(g, s)
		for v := range want {
			if buf[v] != want[v] {
				t.Fatalf("src %d: reuse dist[%d] = %d, want %d", s, v, buf[v], want[v])
			}
		}
	}
}

// TestDistancesReuseSmallerGraph verifies a buffer from a larger graph
// is truncated, not misread.
func TestDistancesReuseSmallerGraph(t *testing.T) {
	big := gen.Path(50)
	small := gen.Path(5)
	buf := bfs.DistancesReuse(big, 0, nil)
	buf = bfs.DistancesReuse(small, 0, buf)
	if len(buf) != 5 {
		t.Fatalf("len = %d, want 5", len(buf))
	}
	for v := int32(0); v < 5; v++ {
		if buf[v] != v {
			t.Fatalf("dist[%d] = %d, want %d", v, buf[v], v)
		}
	}
}

// graphFromFuzzBytes decodes fuzz input into a small graph: the first
// byte picks n in [2, 65], every following pair of bytes is an edge
// {a%n, b%n}. Self-loops and duplicates are dropped by the builder.
func graphFromFuzzBytes(data []byte) *graph.Graph {
	if len(data) < 1 {
		return nil
	}
	n := int(data[0])%64 + 2
	b := graph.NewBuilder(n)
	rest := data[1:]
	for i := 0; i+1 < len(rest); i += 2 {
		a := int32(int(rest[i]) % n)
		c := int32(int(rest[i+1]) % n)
		if a != c {
			b.AddEdge(a, c)
		}
	}
	g, err := b.Build()
	if err != nil {
		return nil
	}
	return g
}

// FuzzDirectionOptimizedBFS asserts that every traversal direction
// produces identical distance arrays, and identical BiBFS results, on
// arbitrary fuzzer-built graphs.
func FuzzDirectionOptimizedBFS(f *testing.F) {
	f.Add([]byte{5, 0, 1, 1, 2, 2, 3})
	f.Add([]byte{63, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 0, 1})
	f.Add([]byte{2})
	for seed := int64(0); seed < 4; seed++ {
		c := oracle.RandomCase(seed)
		var data []byte
		n := c.Graph.NumVertices()
		if n >= 2 && n <= 65 {
			data = append(data, byte(n-2))
		} else {
			data = append(data, 30)
		}
		f.Add(data)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		g := graphFromFuzzBytes(data)
		if g == nil || g.NumVertices() == 0 {
			return
		}
		n := g.NumVertices()
		want := make([]int32, n)
		got := make([]int32, n)
		srcs := []int32{0, int32(n / 2), int32(n - 1)}
		for _, s := range srcs {
			fill(want)
			bfs.DistancesIntoDir(g, s, want, bfs.DirectionTopDown, nil)
			for _, dir := range []bfs.Direction{bfs.DirectionAuto, bfs.DirectionBottomUp} {
				fill(got)
				bfs.DistancesIntoDir(g, s, got, dir, nil)
				for v := 0; v < n; v++ {
					if got[v] != want[v] {
						t.Fatalf("dir %d src %d: dist[%d] = %d, want %d\ngraph: %v", dir, s, v, got[v], want[v], fmt.Sprint(g))
					}
				}
			}
		}
		// BiBFS agreement on a few pairs.
		scTD, scBU := bfs.NewScratch(n), bfs.NewScratch(n)
		for _, s := range srcs {
			for _, u := range srcs {
				want := bfs.BoundedBiBFSDir(g, s, u, bfs.NoBound, nil, scTD, bfs.DirectionTopDown)
				if got := bfs.BoundedBiBFSDir(g, s, u, bfs.NoBound, nil, scBU, bfs.DirectionBottomUp); got != want {
					t.Fatalf("BiBFS(%d,%d) bottom-up = %d, top-down = %d", s, u, got, want)
				}
			}
		}
	})
}
