// Package bptree implements bit-parallel shortest-path trees (Akiba,
// Iwata, Yoshida, SIGMOD 2013, Section 4.2): one BFS from a root r
// simultaneously computes distances from r *and* from up to 64 of r's
// neighbors, encoding the neighbors' relative distances (-1 or 0 with
// respect to d(r,v)) in two 64-bit masks per vertex.
//
// The paper's PLL configuration uses 50 such trees; its FD baseline uses
// one per landmark ("20+64"). Both baselines in this repository build on
// this package.
package bptree

import (
	"math"
	"math/bits"

	"highway/internal/graph"
)

// Tree is one bit-parallel shortest-path tree: for every vertex v,
//
//	Dist[v] = d(root, v)               (-1 = unreachable)
//	Sm1[v]  = { i in S : d(i,v) = d(root,v) - 1 }  as a bitmask
//	S0[v]   = { i in S : d(i,v) = d(root,v) }      as a bitmask
//
// where S holds up to 64 of the root's neighbors. Sm1 is exact; S0 may
// carry extra bits only where Sm1 already holds them, which cannot weaken
// Query's bound (the -2 case is checked first).
type Tree struct {
	Root int32
	Dist []int32
	Sm1  []uint64
	S0   []uint64
}

// Build runs the bit-parallel BFS from root, selecting up to 64 of its
// neighbors not yet marked in used as the bit set (and marking both the
// root and the selected neighbors).
func Build(g *graph.Graph, root int32, used []bool) *Tree {
	n := g.NumVertices()
	t := &Tree{
		Root: root,
		Dist: make([]int32, n),
		Sm1:  make([]uint64, n),
		S0:   make([]uint64, n),
	}
	for i := range t.Dist {
		t.Dist[i] = -1
	}
	used[root] = true

	var members []int32
	for _, v := range g.Neighbors(root) {
		if len(members) == 64 {
			break
		}
		if !used[v] {
			used[v] = true
			members = append(members, v)
		}
	}

	// Level 0: the root. Members are pre-seeded at depth 1 with their own
	// bit in Sm1 (d(i,i) = 0 = d(r,i)-1).
	t.Dist[root] = 0
	frontier := []int32{root}
	for bit, v := range members {
		t.Dist[v] = 1
		t.Sm1[v] = 1 << uint(bit)
	}
	var next []int32
	for d := int32(0); len(frontier) > 0; d++ {
		// Pass 1: discover the next level and propagate parent masks.
		next = next[:0]
		if d == 0 {
			for _, v := range g.Neighbors(root) {
				if t.Dist[v] < 0 {
					t.Dist[v] = 1
					next = append(next, v)
				}
			}
			next = append(next, members...)
		} else {
			for _, u := range frontier {
				for _, v := range g.Neighbors(u) {
					if t.Dist[v] < 0 {
						t.Dist[v] = d + 1
						next = append(next, v)
					}
					if t.Dist[v] == d+1 {
						t.Sm1[v] |= t.Sm1[u]
						t.S0[v] |= t.S0[u]
					}
				}
			}
		}
		// Pass 2: sibling edges within the new level.
		for _, u := range next {
			for _, v := range g.Neighbors(u) {
				if t.Dist[v] == d+1 {
					t.S0[v] |= t.Sm1[u]
				}
			}
		}
		frontier, next = next, frontier[:0]
	}
	return t
}

// Query returns the tree's upper bound on d(s,t):
//
//	d(s)+d(t) - 2 if the endpoints share a neighbor one step closer on
//	both sides, -1 if on one side, else the plain through-root detour —
//
// or math.MaxInt32 when the tree reaches only one endpoint.
func (t *Tree) Query(s, u int32) int32 {
	ds, du := t.Dist[s], t.Dist[u]
	if ds < 0 || du < 0 {
		return math.MaxInt32
	}
	d := ds + du
	switch {
	case t.Sm1[s]&t.Sm1[u] != 0:
		d -= 2
	case t.Sm1[s]&t.S0[u] != 0 || t.S0[s]&t.Sm1[u] != 0:
		d -= 1
	}
	return d
}

// NumMembers reports how many neighbor bits the tree uses.
func (t *Tree) NumMembers() int {
	var mask uint64
	for _, m := range t.Sm1 {
		mask |= m
	}
	return bits.OnesCount64(mask)
}

// MinQuery returns the best bound over a set of trees (MaxInt32 if none
// connects the pair).
func MinQuery(trees []*Tree, s, u int32) int32 {
	best := int32(math.MaxInt32)
	for _, t := range trees {
		if d := t.Query(s, u); d < best {
			best = d
		}
	}
	return best
}
