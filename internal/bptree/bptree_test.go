package bptree

import (
	"math/rand"
	"testing"
	"testing/quick"

	"highway/internal/bfs"
	"highway/internal/gen"
)

// TestMasks checks the bit-parallel masks against their definitions
// (Sm1 exact; S0 ⊇ truth with over-approximation only where Sm1 already
// holds the bit) on random graphs.
func TestMasks(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := gen.ErdosRenyi(50+rng.Intn(40), int64(120+rng.Intn(120)), seed)
		root := g.DegreeOrder()[0]
		used := make([]bool, g.NumVertices())
		tree := Build(g, root, used)

		// Reconstruct the member set by re-running selection.
		used2 := make([]bool, g.NumVertices())
		used2[root] = true
		var members []int32
		for _, v := range g.Neighbors(root) {
			if len(members) == 64 {
				break
			}
			if !used2[v] {
				used2[v] = true
				members = append(members, v)
			}
		}
		rootDist := bfs.Distances(g, root)
		memberDist := make([][]int32, len(members))
		for i, m := range members {
			memberDist[i] = bfs.Distances(g, m)
		}
		for v := int32(0); v < int32(g.NumVertices()); v++ {
			if tree.Dist[v] != rootDist[v] {
				return false
			}
			if rootDist[v] < 0 {
				continue
			}
			for i := range members {
				di := memberDist[i][v]
				bit := uint64(1) << uint(i)
				inSm1 := tree.Sm1[v]&bit != 0
				inS0 := tree.S0[v]&bit != 0
				if inSm1 != (di == rootDist[v]-1) {
					return false
				}
				if di == rootDist[v] && !inS0 {
					return false
				}
				if inS0 && di != rootDist[v] && !inSm1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestQueryIsUpperBound: Tree.Query ≥ true distance, and exact when a
// shortest path passes through the root.
func TestQueryIsUpperBound(t *testing.T) {
	g := gen.BarabasiAlbert(150, 3, 9)
	root := g.DegreeOrder()[0]
	used := make([]bool, g.NumVertices())
	tree := Build(g, root, used)
	rng := rand.New(rand.NewSource(2))
	rootDist := bfs.Distances(g, root)
	for trial := 0; trial < 400; trial++ {
		s := int32(rng.Intn(150))
		u := int32(rng.Intn(150))
		d := bfs.Dist(g, s, u)
		q := tree.Query(s, u)
		if d >= 0 && q < d {
			t.Fatalf("BP bound %d below true %d for (%d,%d)", q, d, s, u)
		}
		if d >= 0 && rootDist[s]+rootDist[u] == d && q != d {
			t.Fatalf("through-root pair (%d,%d): BP %d, want %d", s, u, q, d)
		}
	}
	if tree.NumMembers() == 0 {
		t.Fatal("hub tree has no members")
	}
}

// TestQueryDisconnected: trees reaching one endpoint only return MaxInt32.
func TestQueryDisconnected(t *testing.T) {
	g := gen.Path(4) // then query against an isolated extra component
	used := make([]bool, 4)
	tree := Build(g, 0, used)
	if d := tree.Query(0, 3); d != 3 {
		t.Fatalf("Query(0,3) = %d, want 3", d)
	}
	if MinQuery(nil, 0, 1) <= 0 {
		t.Fatal("MinQuery(nil) should be MaxInt32")
	}
}
