package bptree

import (
	"encoding/binary"
	"fmt"
)

// Binary encoding of bit-parallel trees, shared by the PLL and FD
// serializers: per tree, the root as a little-endian uint32 followed by
// the three per-vertex arrays (Dist as int32, Sm1 and S0 as uint64),
// each of length n.

// EncodedLen returns the exact byte length of nTrees encoded trees over
// n vertices.
func EncodedLen(nTrees, n int) int { return nTrees * (4 + 20*n) }

// AppendTrees appends the encoding of trees (all over n vertices) to dst.
func AppendTrees(dst []byte, trees []*Tree, n int) []byte {
	for _, t := range trees {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(t.Root))
		for _, d := range t.Dist {
			dst = binary.LittleEndian.AppendUint32(dst, uint32(d))
		}
		for _, m := range t.Sm1 {
			dst = binary.LittleEndian.AppendUint64(dst, m)
		}
		for _, m := range t.S0 {
			dst = binary.LittleEndian.AppendUint64(dst, m)
		}
	}
	return dst
}

// DecodeTrees decodes nTrees trees over n vertices from a payload
// written by AppendTrees, validating roots and distances.
func DecodeTrees(payload []byte, nTrees, n int) ([]*Tree, error) {
	if len(payload) != EncodedLen(nTrees, n) {
		return nil, fmt.Errorf("bptree: payload length %d, want %d for %d trees over n=%d",
			len(payload), EncodedLen(nTrees, n), nTrees, n)
	}
	trees := make([]*Tree, nTrees)
	p := 0
	u32 := func() uint32 { v := binary.LittleEndian.Uint32(payload[p:]); p += 4; return v }
	u64 := func() uint64 { v := binary.LittleEndian.Uint64(payload[p:]); p += 8; return v }
	for i := range trees {
		t := &Tree{
			Root: int32(u32()),
			Dist: make([]int32, n),
			Sm1:  make([]uint64, n),
			S0:   make([]uint64, n),
		}
		if t.Root < 0 || int(t.Root) >= n {
			return nil, fmt.Errorf("bptree: tree %d root %d out of range [0,%d)", i, t.Root, n)
		}
		for v := range t.Dist {
			d := int32(u32())
			if d < -1 {
				return nil, fmt.Errorf("bptree: tree %d distance %d invalid", i, d)
			}
			t.Dist[v] = d
		}
		for v := range t.Sm1 {
			t.Sm1[v] = u64()
		}
		for v := range t.S0 {
			t.S0[v] = u64()
		}
		trees[i] = t
	}
	return trees, nil
}
