package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"

	"highway/internal/core"
	"highway/internal/gen"
	"highway/internal/hlclient"
	"highway/internal/landmark"
	"highway/internal/oracle"
	"highway/internal/serve"
	"highway/internal/wire"
)

// followerNode is one live follower in a test cluster: the replication
// handler, its binary listener, and the shutdown plumbing to kill and
// resurrect it at the same address.
type followerNode struct {
	addr   string
	f      *Follower
	cancel context.CancelFunc
	done   chan struct{}
}

// startFollower boots a follower's binary listener; addr "" picks a
// fresh loopback port, otherwise the node rebinds the given address
// (the restart path).
func startFollower(t *testing.T, addr string) *followerNode {
	t.Helper()
	f, err := NewFollower(serve.Config{ShutdownGrace: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("follower listen %s: %v", addr, err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	node := &followerNode{addr: ln.Addr().String(), f: f, cancel: cancel, done: make(chan struct{})}
	go func() {
		defer close(node.done)
		f.Server().ServeBinary(ctx, ln)
	}()
	return node
}

func (n *followerNode) stop() {
	n.cancel()
	<-n.done
	n.f.Server().Close()
}

// primaryNode is the test cluster's write side: a live WAL-backed
// server with a shipper, restartable with a bumped generation.
type primaryNode struct {
	srv *serve.Server
	sh  *Shipper
}

func startPrimary(t *testing.T, ix *core.Index, walPath string, followers []string) *primaryNode {
	t.Helper()
	gen, err := NextGeneration(walPath + ".gen")
	if err != nil {
		t.Fatal(err)
	}
	wal, err := serve.OpenWAL(walPath)
	if err != nil {
		t.Fatal(err)
	}
	sh := NewShipper(ShipperConfig{Followers: followers, RetryInterval: 20 * time.Millisecond})
	srv, err := serve.NewLive(ix, serve.LiveConfig{
		Config:           serve.Config{ShutdownGrace: time.Second},
		WAL:              wal,
		RebuildThreshold: -1, // landmarks must stay fixed for the byte-identity check
		RebuildGrowth:    1,
		EpochBase:        EpochBase(gen),
		OnCommit:         sh.OnCommit,
	})
	if err != nil {
		t.Fatal(err)
	}
	sh.Start(srv)
	srv.SetReplicationStats(sh.Stats)
	return &primaryNode{srv: srv, sh: sh}
}

func (p *primaryNode) stop() {
	p.sh.Close()
	p.srv.Close()
}

// waitConverged blocks until every follower's durable epoch reaches the
// primary's published epoch (and is bootstrapped), or fails the test.
func waitConverged(t *testing.T, p *primaryNode, nodes ...*followerNode) {
	t.Helper()
	want := p.srv.Epoch()
	deadline := time.Now().Add(15 * time.Second)
	for _, n := range nodes {
		for n.f.Epoch() < want || !n.f.Stats().Bootstrapped {
			if time.Now().After(deadline) {
				t.Fatalf("follower %s stuck at epoch %d (bootstrapped=%v), want >= %d",
					n.addr, n.f.Epoch(), n.f.Stats().Bootstrapped, want)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
}

// indexBytes renders a core index in its on-disk format for byte
// identity comparison.
func indexBytes(t *testing.T, ix *core.Index) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := ix.WriteFormat(&buf, core.FormatV2); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestClusterChaosChurn is the replication acceptance drill: a seeded
// mixed insert/delete churn runs against a 1-primary/2-follower
// cluster while the primary and each follower are killed and restarted
// mid-stream. After every batch both followers must converge to the
// primary's epoch and one of them (alternating) is differentially
// checked against BFS ground truth; at the end both followers' label
// state must be byte-identical to a from-scratch build over the final
// edge set. Zero acked-op loss falls out of the differential check:
// every acked op is visible in the follower the oracle reads.
func TestClusterChaosChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-node churn drill")
	}
	dir := t.TempDir()
	walPath := filepath.Join(dir, "edges.wal")

	g := gen.BarabasiAlbert(200, 3, 7)
	lms, err := landmark.Select(g, landmark.Options{K: 8, Strategy: landmark.Degree})
	if err != nil {
		t.Fatal(err)
	}
	ix0, err := core.BuildParallel(g, lms)
	if err != nil {
		t.Fatal(err)
	}

	fA := startFollower(t, "")
	fB := startFollower(t, "")
	nodes := []*followerNode{fA, fB}
	p := startPrimary(t, ix0, walPath, []string{fA.addr, fB.addr})
	defer func() {
		p.stop()
		for _, n := range nodes {
			n.stop()
		}
	}()
	waitConverged(t, p, nodes...) // initial snapshot bootstrap

	batch := 0
	apply := func(ops []oracle.EdgeOp) error {
		batch++
		switch batch {
		case 4: // kill follower A mid-churn, restart empty at the same address
			nodes[0].stop()
			nodes[0] = startFollower(t, nodes[0].addr)
		case 8: // kill the primary, restart with a bumped generation + WAL replay
			p.stop()
			p = startPrimary(t, ix0, walPath, []string{nodes[0].addr, nodes[1].addr})
		case 11: // kill follower B
			nodes[1].stop()
			nodes[1] = startFollower(t, nodes[1].addr)
		}
		// Ops apply one at a time to preserve the mixed batch's order
		// (a delete and re-insert of the same edge must not merge).
		for _, op := range ops {
			var err error
			if op.Del {
				_, err = p.srv.DeleteEdges([][2]int32{{op.A, op.B}})
			} else {
				_, err = p.srv.InsertEdges([][2]int32{{op.A, op.B}})
			}
			if err != nil {
				return fmt.Errorf("batch %d op {%d,%d} del=%v: %w", batch, op.A, op.B, op.Del, err)
			}
		}
		waitConverged(t, p, nodes...)
		return nil
	}
	reader := func() oracle.Oracle {
		n := nodes[batch%2] // alternate which follower answers
		return oracle.Func(func(s, t int32) int32 {
			d, err := n.f.Server().Distance(s, t)
			if err != nil {
				return -2 // diverges loudly in the diff
			}
			return d
		})
	}
	if err := oracle.DiffChurn(g, oracle.ChurnConfig{
		Batches: 14, BatchSize: 6, DeleteRatio: 0.35, Trials: 40, Seed: 9,
	}, apply, reader); err != nil {
		t.Fatal(err)
	}

	// Byte-identity: primary's frozen labelling, both followers'
	// published labelling, and a from-scratch build over the final edge
	// set must all be the same bytes.
	gFinal, ixPrimary, _, err := p.srv.FrozenState()
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := core.BuildParallel(gFinal, lms)
	if err != nil {
		t.Fatal(err)
	}
	want := indexBytes(t, fresh)
	if got := indexBytes(t, ixPrimary); !bytes.Equal(got, want) {
		t.Fatalf("primary labelling differs from from-scratch build (%d vs %d bytes)", len(got), len(want))
	}
	for i, n := range nodes {
		ixF, ok := n.f.Server().Index().(*core.Index)
		if !ok {
			t.Fatalf("follower %d serves a %T, want *core.Index", i, n.f.Server().Index())
		}
		if got := indexBytes(t, ixF); !bytes.Equal(got, want) {
			t.Fatalf("follower %d labelling differs from from-scratch build (%d vs %d bytes)", i, len(got), len(want))
		}
	}

	// Replication stats surfaced through the primary's server.
	rs := p.sh.Stats()
	if rs.Role != "primary" || rs.Followers != 2 || rs.Acked == 0 {
		t.Fatalf("primary replication stats off: %+v", rs)
	}
}

// TestStaleEpochFenced drives the fencing path directly: frames below
// the follower's durable epoch must bounce with wire.CodeFenced and
// leave its state untouched.
func TestStaleEpochFenced(t *testing.T) {
	dir := t.TempDir()
	g := gen.BarabasiAlbert(60, 2, 3)
	lms, err := landmark.Select(g, landmark.Options{K: 4, Strategy: landmark.Degree})
	if err != nil {
		t.Fatal(err)
	}
	ix0, err := core.BuildParallel(g, lms)
	if err != nil {
		t.Fatal(err)
	}
	fn := startFollower(t, "")
	defer fn.stop()
	p := startPrimary(t, ix0, filepath.Join(dir, "edges.wal"), []string{fn.addr})
	defer p.stop()
	if _, err := p.srv.InsertEdges([][2]int32{{0, 59}}); err != nil {
		t.Fatal(err)
	}
	waitConverged(t, p, fn)

	cl, err := hlclient.Dial(context.Background(), fn.addr, hlclient.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	epochBefore := fn.f.Epoch()
	assertFenced := func(tag string, err error) {
		t.Helper()
		var re *wire.RemoteError
		if !errors.As(err, &re) || re.Code != wire.CodeFenced {
			t.Fatalf("%s: want RemoteError{Fenced}, got %v", tag, err)
		}
	}
	_, err = cl.ReplAppend(context.Background(), 1, [][2]int32{{0, 1}})
	assertFenced("stale append", err)
	_, err = cl.ReplAppend(context.Background(), epochBefore, [][2]int32{{0, 1}})
	assertFenced("equal-epoch append", err)
	_, err = cl.ReplSnapshot(context.Background(), epochBefore-1, true, []byte("junk"))
	assertFenced("stale snapshot", err)
	if got := fn.f.Epoch(); got != epochBefore {
		t.Fatalf("fenced frames moved the follower epoch: %d -> %d", epochBefore, got)
	}
	if fn.f.Stats().Fenced < 3 {
		t.Fatalf("fenced counter = %d, want >= 3", fn.f.Stats().Fenced)
	}
}

// TestDeposedPrimary checks the other side of fencing: a primary whose
// follower has been adopted by a newer generation observes Fenced on
// its next ship and marks itself deposed instead of fighting.
func TestDeposedPrimary(t *testing.T) {
	dir := t.TempDir()
	g := gen.BarabasiAlbert(60, 2, 3)
	lms, err := landmark.Select(g, landmark.Options{K: 4, Strategy: landmark.Degree})
	if err != nil {
		t.Fatal(err)
	}
	ix0, err := core.BuildParallel(g, lms)
	if err != nil {
		t.Fatal(err)
	}
	fn := startFollower(t, "")
	defer fn.stop()

	// Old incarnation: generation 1 (its own gen file).
	p1 := startPrimary(t, ix0, filepath.Join(dir, "p1.wal"), []string{fn.addr})
	defer p1.stop()
	if _, err := p1.srv.InsertEdges([][2]int32{{0, 59}}); err != nil {
		t.Fatal(err)
	}
	waitConverged(t, p1, fn)

	// New incarnation: generation claimed from the SAME gen file, so it
	// is strictly newer; it adopts the follower via snapshot + append.
	if _, err := os.Stat(filepath.Join(dir, "p1.wal.gen")); err != nil {
		t.Fatal(err)
	}
	p2 := &primaryNode{}
	{
		gen2, err := NextGeneration(filepath.Join(dir, "p1.wal.gen"))
		if err != nil {
			t.Fatal(err)
		}
		wal, err := serve.OpenWAL(filepath.Join(dir, "p2.wal"))
		if err != nil {
			t.Fatal(err)
		}
		sh := NewShipper(ShipperConfig{Followers: []string{fn.addr}, RetryInterval: 20 * time.Millisecond})
		srv, err := serve.NewLive(ix0, serve.LiveConfig{
			Config:    serve.Config{ShutdownGrace: time.Second},
			WAL:       wal,
			EpochBase: EpochBase(gen2),
			OnCommit:  sh.OnCommit,
		})
		if err != nil {
			t.Fatal(err)
		}
		sh.Start(srv)
		p2.srv, p2.sh = srv, sh
	}
	defer p2.stop()
	if _, err := p2.srv.InsertEdges([][2]int32{{1, 58}}); err != nil {
		t.Fatal(err)
	}
	waitConverged(t, p2, fn)

	// The old primary ships one more batch; the follower fences it at
	// an epoch the old primary never acked, so it must go deposed.
	if _, err := p1.srv.InsertEdges([][2]int32{{2, 57}}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for !p1.sh.Stats().Deposed {
		if time.Now().After(deadline) {
			t.Fatalf("old primary never observed deposition: %+v", p1.sh.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if p2.sh.Stats().Deposed {
		t.Fatalf("new primary wrongly deposed: %+v", p2.sh.Stats())
	}
}

// TestGeneration covers the durable generation counter.
func TestGeneration(t *testing.T) {
	path := filepath.Join(t.TempDir(), "gen")
	for want := uint64(1); want <= 3; want++ {
		got, err := NextGeneration(path)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("generation %d, want %d", got, want)
		}
	}
	if err := os.WriteFile(path, []byte("not a number"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NextGeneration(path); err == nil {
		t.Fatal("corrupt generation file accepted")
	}
	if EpochBase(3) != 3<<32 {
		t.Fatalf("EpochBase(3) = %d", EpochBase(3))
	}
}
