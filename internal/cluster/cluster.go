// Package cluster turns single-node servers from internal/serve into a
// WAL-shipping replica set: a primary that accepts writes and ships
// every acked batch to followers over the binary protocol's
// replication frames, followers that bootstrap from a streamed
// snapshot and serve reads from their own lock-free snapshots, and a
// router that health-checks members, fans reads across followers (and
// across landmark-partitioned shards, merging min(d(s,r)+d(r,t))
// elementwise) and forwards writes to the primary.
//
// Epoch fencing holds the roles together. Every published snapshot on
// the primary carries an epoch (generation << 32) | counter, where the
// generation is persisted (and fsynced) in a small file next to the
// primary's WAL and bumped once per primary start. A follower applies
// a shipped batch only when its epoch is strictly above the
// follower's durable epoch and accepts a snapshot only at or above
// it, so a deposed or restarted primary's stale stream bounces off
// with wire.CodeFenced instead of rewinding replicas. See DESIGN.md
// "Replication & routing" and PROTOCOL.md "Replication".
package cluster

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// NextGeneration durably claims the next primary generation from the
// counter file at path (created at 1 when absent), fsyncing both the
// file and its directory before returning, and returns the claimed
// generation. Call it once per primary start and seed
// serve.LiveConfig.EpochBase with EpochBase(gen): every epoch the new
// incarnation publishes is then strictly above those of any prior one,
// which is the total order epoch fencing needs.
func NextGeneration(path string) (uint64, error) {
	var gen uint64
	if raw, err := os.ReadFile(path); err == nil {
		gen, err = strconv.ParseUint(strings.TrimSpace(string(raw)), 10, 32)
		if err != nil {
			return 0, fmt.Errorf("cluster: corrupt generation file %s: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return 0, fmt.Errorf("cluster: read generation: %w", err)
	}
	gen++
	if gen > 1<<32-1 {
		return 0, fmt.Errorf("cluster: generation counter exhausted (%d)", gen)
	}
	// Write-fsync-rename-fsync: a crash leaves either the old claimed
	// generation or the new one, never a torn file.
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return 0, fmt.Errorf("cluster: claim generation: %w", err)
	}
	if _, err := fmt.Fprintf(f, "%d\n", gen); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return 0, fmt.Errorf("cluster: claim generation: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return 0, fmt.Errorf("cluster: claim generation: %w", err)
	}
	if dir, err := os.Open(filepath.Dir(path)); err == nil {
		dir.Sync()
		dir.Close()
	}
	return gen, nil
}

// EpochBase shifts a claimed generation into the high 32 bits of the
// epoch space, leaving the low 32 for the incarnation's write counter.
func EpochBase(gen uint64) uint64 { return gen << 32 }
