package cluster

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"

	"highway/internal/core"
	"highway/internal/dynhl"
	"highway/internal/graph"
	"highway/internal/serve"
)

// Follower is the receiving side of WAL shipping: a read-only server
// whose state arrives from the primary as one streamed snapshot
// followed by per-batch TReplAppend frames, each applied through the
// same dynamic-labelling maintenance the primary runs. Followers keep
// no log of their own — durability lives in the primary's WAL, and a
// follower that restarts (or falls off the shipping queue) is healed
// by a fresh snapshot transfer — so its labelling is always exactly
// what a from-scratch build over the replicated edge set would
// produce, byte for byte.
//
// A Follower serves reads the moment its first snapshot installs;
// until then /readyz answers 503 (Bootstrapped=false) and replication
// appends fail so the primary falls back to a snapshot transfer.
type Follower struct {
	srv *serve.Server

	// mu orders state installation: frames can arrive concurrently over
	// the primary's pooled connections, but applies and snapshot
	// installs must be serial — the epoch check and the mutation have
	// to be one atomic step.
	mu           sync.Mutex
	dyn          *dynhl.Index // nil until bootstrapped
	epoch        atomic.Uint64
	bootstrapped atomic.Bool

	// In-flight snapshot transfer (guarded by mu): chunks accumulate
	// until the done chunk installs them. A transfer at a newer epoch
	// abandons a stale half-finished one.
	snapEpoch uint64
	snapBuf   bytes.Buffer

	applied atomic.Int64 // batches applied
	fenced  atomic.Int64 // stale-epoch frames rejected
	resyncs atomic.Int64 // snapshots installed
}

// NewFollower builds a follower and its serving front end. The server
// starts on a 1-vertex placeholder index — readable wire-wise but
// gated by /readyz — and swaps to real state when the first snapshot
// lands. cfg is the usual serving configuration (batch caps,
// admission budgets, shutdown grace).
func NewFollower(cfg serve.Config) (*Follower, error) {
	// The placeholder must be a genuine index: the serving snapshot
	// machinery (searcher pools, stats) is exercised before bootstrap
	// by health checks. One vertex (its own landmark), zero edges.
	g := graph.MustFromEdges(1, nil)
	ix, err := core.BuildParallel(g, []int32{0})
	if err != nil {
		return nil, fmt.Errorf("cluster: placeholder index: %w", err)
	}
	f := &Follower{srv: serve.New(ix, cfg)}
	f.srv.SetReplication(f)
	f.srv.SetReplicationStats(f.Stats)
	return f, nil
}

// Server returns the serving front end; the caller owns its listeners.
func (f *Follower) Server() *serve.Server { return f.srv }

// Epoch returns the follower's durable epoch — the epoch of the last
// applied batch or installed snapshot.
func (f *Follower) Epoch() uint64 { return f.epoch.Load() }

// ReplAppend implements serve.ReplicationHandler: decode the WAL pair
// batch, fence stale epochs, apply through dynhl, publish the fresh
// snapshot at the shipped epoch.
func (f *Follower) ReplAppend(epoch uint64, pairs [][2]int32) (uint64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	cur := f.epoch.Load()
	if !f.bootstrapped.Load() {
		// Deliberately NOT ErrFenced: the primary reads this as "this
		// follower needs a snapshot", not "I am deposed".
		return cur, fmt.Errorf("cluster: follower awaiting snapshot bootstrap")
	}
	if epoch <= cur {
		f.fenced.Add(1)
		return cur, fmt.Errorf("%w: batch epoch %d at or below durable epoch %d", serve.ErrFenced, epoch, cur)
	}
	ops, err := serve.DecodeWALOps(pairs)
	if err != nil {
		return cur, err
	}
	if _, err := f.dyn.ApplyOps(ops); err != nil {
		return cur, fmt.Errorf("cluster: replicated apply: %w", err)
	}
	_, fresh, err := f.dyn.Freeze()
	if err != nil {
		return cur, fmt.Errorf("cluster: freeze: %w", err)
	}
	f.srv.Publish(fresh, epoch)
	f.epoch.Store(epoch)
	f.applied.Add(1)
	return epoch, nil
}

// ReplSnapshot implements serve.ReplicationHandler: buffer chunks of a
// transfer and install the state when the done chunk arrives. A
// snapshot at the follower's exact epoch is accepted — that makes the
// primary's resync idempotent — and only older ones fence.
func (f *Follower) ReplSnapshot(epoch uint64, done bool, chunk []byte) (uint64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	cur := f.epoch.Load()
	if epoch < cur {
		f.fenced.Add(1)
		return cur, fmt.Errorf("%w: snapshot epoch %d below durable epoch %d", serve.ErrFenced, epoch, cur)
	}
	if epoch != f.snapEpoch {
		// A transfer at a new epoch supersedes whatever was in flight.
		f.snapEpoch = epoch
		f.snapBuf.Reset()
	}
	f.snapBuf.Write(chunk)
	if !done {
		return cur, nil
	}
	_, ix, err := serve.DecodeSnapshot(bytes.NewReader(f.snapBuf.Bytes()))
	f.snapBuf.Reset()
	f.snapEpoch = 0
	if err != nil {
		return cur, fmt.Errorf("cluster: snapshot install: %w", err)
	}
	// The index carries its graph, so FromCore reconstructs the
	// follower's mutable adjacency from the snapshot alone.
	dyn, err := dynhl.FromCore(ix)
	if err != nil {
		return cur, fmt.Errorf("cluster: snapshot install: %w", err)
	}
	f.dyn = dyn
	f.srv.Publish(ix, epoch)
	f.epoch.Store(epoch)
	f.bootstrapped.Store(true)
	f.resyncs.Add(1)
	return epoch, nil
}

// Stats renders the follower's replication section for /stats and the
// /readyz bootstrap gate.
func (f *Follower) Stats() *serve.ReplicationStats {
	return &serve.ReplicationStats{
		Role:         "follower",
		Epoch:        f.epoch.Load(),
		Acked:        f.applied.Load(),
		Fenced:       f.fenced.Load(),
		Resyncs:      f.resyncs.Load(),
		Bootstrapped: f.bootstrapped.Load(),
	}
}
