package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"highway/internal/hlclient"
	"highway/internal/serve"
	"highway/internal/wire"
)

// RouterConfig parameterizes a Router.
type RouterConfig struct {
	// Primary is the binary address writes are forwarded to. Empty
	// makes the router read-only (writes answer Unavailable/503).
	Primary string
	// Shards lists the read members, one inner slice per
	// landmark-partitioned shard; replica-set mode is a single shard
	// listing every follower. A read query fans out to one healthy
	// member per shard and merges the per-shard distances elementwise
	// with min (-1 = unreachable): each shard's labelling covers a
	// disjoint landmark subset, so every shard answer is an upper bound
	// witnessed by its own landmarks and the minimum over all shards is
	// the exact distance.
	Shards [][]string
	// HealthInterval paces the member health loop
	// (DefaultHealthInterval when 0).
	HealthInterval time.Duration
	// MaxBatch caps batch fan-outs, mirroring serve.Config.MaxBatch
	// (serve.DefaultMaxBatch when 0).
	MaxBatch int
	// ShutdownGrace bounds listener drain on shutdown
	// (serve.DefaultShutdownGrace when 0).
	ShutdownGrace time.Duration
	// Client configures the pooled client dialed to every member.
	Client hlclient.Config
}

// DefaultHealthInterval is the member health-check cadence when
// RouterConfig.HealthInterval is zero.
const DefaultHealthInterval = 500 * time.Millisecond

// ErrUnavailable is returned by router reads when some shard has no
// healthy member, and by forwarded writes when the primary is down or
// unconfigured. Maps to wire.CodeUnavailable and HTTP 503.
var ErrUnavailable = errors.New("cluster: no healthy member")

// member is one routed endpoint: a lazily-dialed pooled client plus
// the health bit and in-flight gauge the read balancer keys on.
type member struct {
	addr     string
	cl       atomic.Pointer[hlclient.Client] // nil until the health loop dials it
	up       atomic.Bool
	inflight atomic.Int64
}

// client returns the member's client when the member is considered
// routable, else nil.
func (m *member) client() *hlclient.Client {
	if !m.up.Load() {
		return nil
	}
	return m.cl.Load()
}

// Router is the cluster's coordinator: a read/write front door that
// speaks both serving protocols, health-checks members, balances
// reads (least-inflight per shard, exact min-merge across shards) and
// forwards writes to the primary. It holds no graph state of its own.
type Router struct {
	cfg     RouterConfig
	shards  [][]*member
	primary *member // nil when unconfigured
	started time.Time

	fanout atomic.Int64 // member sub-requests issued for reads
	reads  atomic.Int64
	writes atomic.Int64
	errors atomic.Int64

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
}

// NewRouter builds a router and starts its health loop. Members are
// dialed lazily by the loop, so the router may start before (or
// survive) any of them.
func NewRouter(cfg RouterConfig) (*Router, error) {
	if len(cfg.Shards) == 0 {
		return nil, errors.New("cluster: router needs at least one shard")
	}
	for i, s := range cfg.Shards {
		if len(s) == 0 {
			return nil, fmt.Errorf("cluster: shard %d has no members", i)
		}
	}
	if cfg.HealthInterval <= 0 {
		cfg.HealthInterval = DefaultHealthInterval
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = serve.DefaultMaxBatch
	}
	if cfg.ShutdownGrace <= 0 {
		cfg.ShutdownGrace = serve.DefaultShutdownGrace
	}
	rt := &Router{cfg: cfg, started: time.Now()}
	rt.ctx, rt.cancel = context.WithCancel(context.Background())
	for _, addrs := range cfg.Shards {
		shard := make([]*member, len(addrs))
		for i, a := range addrs {
			shard[i] = &member{addr: a}
		}
		rt.shards = append(rt.shards, shard)
	}
	if cfg.Primary != "" {
		rt.primary = &member{addr: cfg.Primary}
	}
	rt.wg.Add(1)
	go rt.healthLoop()
	return rt, nil
}

// Close stops the health loop and member connections.
func (rt *Router) Close() {
	rt.cancel()
	rt.wg.Wait()
	for _, shard := range rt.shards {
		for _, m := range shard {
			if cl := m.cl.Load(); cl != nil {
				cl.Close()
			}
		}
	}
	if rt.primary != nil {
		if cl := rt.primary.cl.Load(); cl != nil {
			cl.Close()
		}
	}
}

// members returns every member including the primary (for the health
// loop and stats).
func (rt *Router) members() []*member {
	var all []*member
	for _, shard := range rt.shards {
		all = append(all, shard...)
	}
	if rt.primary != nil {
		all = append(all, rt.primary)
	}
	return all
}

// healthLoop probes every member each interval: undailed members get a
// dial attempt, dialed ones a ping, and the up bit tracks the result.
// One slow member must not stall the others, so probes fan out.
func (rt *Router) healthLoop() {
	defer rt.wg.Done()
	probe := func() {
		var wg sync.WaitGroup
		for _, m := range rt.members() {
			wg.Add(1)
			go func(m *member) {
				defer wg.Done()
				ctx, cancel := context.WithTimeout(rt.ctx, rt.cfg.HealthInterval*4)
				defer cancel()
				cl := m.cl.Load()
				if cl == nil {
					fresh, err := hlclient.Dial(ctx, m.addr, rt.cfg.Client)
					if err != nil {
						m.up.Store(false)
						return
					}
					m.cl.Store(fresh)
					m.up.Store(true)
					return
				}
				m.up.Store(cl.Ping(ctx) == nil)
			}(m)
		}
		wg.Wait()
	}
	probe() // initial dial pass before the first tick
	t := time.NewTicker(rt.cfg.HealthInterval)
	defer t.Stop()
	for {
		select {
		case <-rt.ctx.Done():
			return
		case <-t.C:
			probe()
		}
	}
}

// pick selects the healthy member with the fewest in-flight requests
// in one shard, or nil when the whole shard is down.
func pick(shard []*member) *member {
	var best *member
	var bestLoad int64
	for _, m := range shard {
		if m.client() == nil {
			continue
		}
		if load := m.inflight.Load(); best == nil || load < bestLoad {
			best, bestLoad = m, load
		}
	}
	return best
}

// mergeDist folds one shard's answer into the running exact distance:
// -1 is Infinity, otherwise min.
func mergeDist(a, b int32) int32 {
	if a == -1 {
		return b
	}
	if b == -1 || a <= b {
		return a
	}
	return b
}

// onShard runs fn against the chosen member of one shard, failing over
// once through the shard's remaining healthy members on transport-ish
// errors (ErrCircuitOpen, connection failures). Remote errors are the
// member's deterministic answer and surface as-is.
func (rt *Router) onShard(shard []*member, fn func(cl *hlclient.Client) error) error {
	tried := make(map[*member]bool, len(shard))
	for {
		m := pick(shard)
		for attempts := 0; m != nil && tried[m] && attempts < len(shard); attempts++ {
			// pick is load-based and may repeat a failed member; scan on.
			m = nil
			for _, cand := range shard {
				if !tried[cand] && cand.client() != nil {
					m = cand
					break
				}
			}
		}
		if m == nil || tried[m] {
			rt.errors.Add(1)
			return ErrUnavailable
		}
		tried[m] = true
		cl := m.client()
		if cl == nil {
			continue
		}
		m.inflight.Add(1)
		rt.fanout.Add(1)
		err := fn(cl)
		m.inflight.Add(-1)
		if err == nil {
			return nil
		}
		var re *wire.RemoteError
		if errors.As(err, &re) {
			return err // deterministic remote answer: not a routing failure
		}
		m.up.Store(false) // transport failure: eject until the next probe
	}
}

// Distance answers one exact query by fanning out to one member per
// shard and min-merging.
func (rt *Router) Distance(ctx context.Context, s, t int32) (int32, error) {
	rt.reads.Add(1)
	results := make([]int32, len(rt.shards))
	errs := make([]error, len(rt.shards))
	var wg sync.WaitGroup
	for i, shard := range rt.shards {
		wg.Add(1)
		go func(i int, shard []*member) {
			defer wg.Done()
			errs[i] = rt.onShard(shard, func(cl *hlclient.Client) error {
				d, err := cl.Distance(ctx, s, t)
				results[i] = d
				return err
			})
		}(i, shard)
	}
	wg.Wait()
	d := int32(-1)
	for i := range results {
		if errs[i] != nil {
			return -1, errs[i] // exactness needs every shard's answer
		}
		d = mergeDist(d, results[i])
	}
	return d, nil
}

// DistanceBatch answers a batch by fanning the whole batch to one
// member per shard and min-merging elementwise.
func (rt *Router) DistanceBatch(ctx context.Context, pairs [][2]int32) ([]int32, error) {
	rt.reads.Add(1)
	if len(pairs) > rt.cfg.MaxBatch {
		return nil, fmt.Errorf("cluster: batch of %d pairs exceeds limit %d", len(pairs), rt.cfg.MaxBatch)
	}
	results := make([][]int32, len(rt.shards))
	errs := make([]error, len(rt.shards))
	var wg sync.WaitGroup
	for i, shard := range rt.shards {
		wg.Add(1)
		go func(i int, shard []*member) {
			defer wg.Done()
			errs[i] = rt.onShard(shard, func(cl *hlclient.Client) error {
				d, err := cl.DistanceBatch(ctx, pairs, nil)
				results[i] = d
				return err
			})
		}(i, shard)
	}
	wg.Wait()
	out := make([]int32, len(pairs))
	for i := range out {
		out[i] = -1
	}
	for i := range results {
		if errs[i] != nil {
			return nil, errs[i]
		}
		for j, d := range results[i] {
			out[j] = mergeDist(out[j], d)
		}
	}
	return out, nil
}

// InsertEdges forwards a write batch to the primary.
func (rt *Router) InsertEdges(ctx context.Context, edges [][2]int32) (serve.InsertResult, error) {
	rt.writes.Add(1)
	cl, err := rt.primaryClient()
	if err != nil {
		return serve.InsertResult{}, err
	}
	rt.primary.inflight.Add(1)
	defer rt.primary.inflight.Add(-1)
	return cl.InsertEdges(ctx, edges)
}

// DeleteEdges forwards a deletion batch to the primary.
func (rt *Router) DeleteEdges(ctx context.Context, edges [][2]int32) (serve.DeleteResult, error) {
	rt.writes.Add(1)
	cl, err := rt.primaryClient()
	if err != nil {
		return serve.DeleteResult{}, err
	}
	rt.primary.inflight.Add(1)
	defer rt.primary.inflight.Add(-1)
	return cl.DeleteEdges(ctx, edges)
}

func (rt *Router) primaryClient() (*hlclient.Client, error) {
	if rt.primary == nil {
		return nil, fmt.Errorf("%w: router has no primary configured", ErrUnavailable)
	}
	cl := rt.primary.client()
	if cl == nil {
		rt.errors.Add(1)
		return nil, fmt.Errorf("%w: primary %s is down", ErrUnavailable, rt.primary.addr)
	}
	return cl, nil
}

// RouterStats is the "router" section of the router's /stats document.
type RouterStats struct {
	// Shards is the configured shard count (1 = plain replica set).
	Shards int `json:"shards"`
	// Members is the configured read-member count across shards.
	Members int `json:"members"`
	// MemberUp is the number of read members currently passing health
	// checks.
	MemberUp int `json:"member_up"`
	// PrimaryUp reports the write path's health (false when no primary
	// is configured).
	PrimaryUp bool `json:"primary_up"`
	// Fanout counts member sub-requests issued for reads — with S
	// shards it advances S per query, so fanout/reads exposes the
	// amplification factor.
	Fanout int64 `json:"fanout"`
	// Reads and Writes count routed client requests; Errors counts
	// requests that failed for want of a healthy member.
	Reads  int64 `json:"reads"`
	Writes int64 `json:"writes"`
	Errors int64 `json:"errors"`
}

// Stats snapshots the router counters.
func (rt *Router) Stats() RouterStats {
	st := RouterStats{
		Shards: len(rt.shards),
		Fanout: rt.fanout.Load(),
		Reads:  rt.reads.Load(),
		Writes: rt.writes.Load(),
		Errors: rt.errors.Load(),
	}
	for _, shard := range rt.shards {
		st.Members += len(shard)
		for _, m := range shard {
			if m.up.Load() {
				st.MemberUp++
			}
		}
	}
	if rt.primary != nil {
		st.PrimaryUp = rt.primary.up.Load()
	}
	return st
}

// Ready reports whether every shard has at least one healthy member —
// the condition under which reads are exact and available.
func (rt *Router) Ready() bool {
	for _, shard := range rt.shards {
		if pick(shard) == nil {
			return false
		}
	}
	return true
}

// routerStatsDoc is the router's /stats shape: role marker, the router
// section, and uptime — deliberately a subset of the serving stats
// document so generic scrapers can read both.
type routerStatsDoc struct {
	Role          string      `json:"role"`
	Router        RouterStats `json:"router"`
	UptimeSeconds float64     `json:"uptime_seconds"`
}

func (rt *Router) statsDoc() routerStatsDoc {
	return routerStatsDoc{
		Role:          "router",
		Router:        rt.Stats(),
		UptimeSeconds: time.Since(rt.started).Seconds(),
	}
}

// ---- HTTP front end ----

// Handler returns the router's HTTP API: the serving tier's read and
// write endpoints (same request/response JSON), plus stats and health.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /distance", rt.handleDistance)
	mux.HandleFunc("POST /distance/batch", rt.handleBatch)
	mux.HandleFunc("POST /edges", rt.handleEdges(false))
	mux.HandleFunc("DELETE /edges", rt.handleEdges(true))
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, rt.statsDoc())
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if !rt.Ready() {
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusServiceUnavailable, map[string]any{
				"status": "unready", "detail": "a shard has no healthy member",
			})
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
	})
	return mux
}

// ListenAndServe serves the HTTP front end until ctx is cancelled.
func (rt *Router) ListenAndServe(ctx context.Context, addr string) error {
	srv := &http.Server{Addr: addr, Handler: rt.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	sctx, cancel := context.WithTimeout(context.Background(), rt.cfg.ShutdownGrace)
	defer cancel()
	return srv.Shutdown(sctx)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, msg string) {
	// Shed and narrowed-service answers are retryable; say so the same
	// way the serving tier does.
	if code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, code, map[string]string{"error": msg})
}

// routedStatus maps a routing error to an HTTP status. A member's
// Overloaded answer relays as 429 — the same status the serving tier's
// own admission gate uses, so clients (and the load harness) see one
// shed protocol whether or not a router is in the path.
func routedStatus(err error) int {
	var re *wire.RemoteError
	switch {
	case errors.Is(err, ErrUnavailable):
		return http.StatusServiceUnavailable
	case errors.As(err, &re):
		switch re.Code {
		case wire.CodeRange, wire.CodeMalformed:
			return http.StatusBadRequest
		case wire.CodeTooLarge:
			return http.StatusRequestEntityTooLarge
		case wire.CodeOverloaded:
			return http.StatusTooManyRequests
		case wire.CodeDegraded, wire.CodeUnavailable:
			return http.StatusServiceUnavailable
		}
	}
	return http.StatusBadGateway
}

func (rt *Router) handleDistance(w http.ResponseWriter, r *http.Request) {
	s, errS := strconv.ParseInt(r.URL.Query().Get("s"), 10, 32)
	t, errT := strconv.ParseInt(r.URL.Query().Get("t"), 10, 32)
	if errS != nil || errT != nil {
		httpError(w, http.StatusBadRequest, "s and t must be integer vertex ids")
		return
	}
	d, err := rt.Distance(r.Context(), int32(s), int32(t))
	if err != nil {
		httpError(w, routedStatus(err), err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"s": s, "t": t, "distance": d})
}

func (rt *Router) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Pairs [][]int32 `json:"pairs"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "invalid JSON: "+err.Error())
		return
	}
	pairs := make([][2]int32, len(req.Pairs))
	for i, p := range req.Pairs {
		if len(p) != 2 {
			httpError(w, http.StatusBadRequest, fmt.Sprintf("pair %d: want [s,t]", i))
			return
		}
		pairs[i] = [2]int32{p[0], p[1]}
	}
	dists, err := rt.DistanceBatch(r.Context(), pairs)
	if err != nil {
		httpError(w, routedStatus(err), err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"count": len(dists), "distances": dists})
}

// handleEdges forwards write batches, accepting the serving tier's
// request shapes ({"edge":[a,b]} or {"edges":[[a,b],...]}).
func (rt *Router) handleEdges(del bool) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Edge  []int32   `json:"edge"`
			Edges [][]int32 `json:"edges"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, "invalid JSON: "+err.Error())
			return
		}
		raw := req.Edges
		if len(req.Edge) == 2 {
			raw = append(raw, req.Edge)
		}
		edges := make([][2]int32, len(raw))
		for i, e := range raw {
			if len(e) != 2 {
				httpError(w, http.StatusBadRequest, fmt.Sprintf("edge %d: want [a,b]", i))
				return
			}
			edges[i] = [2]int32{e[0], e[1]}
		}
		if del {
			res, err := rt.DeleteEdges(r.Context(), edges)
			if err != nil {
				httpError(w, routedStatus(err), err.Error())
				return
			}
			writeJSON(w, http.StatusOK, res)
			return
		}
		res, err := rt.InsertEdges(r.Context(), edges)
		if err != nil {
			httpError(w, routedStatus(err), err.Error())
			return
		}
		writeJSON(w, http.StatusOK, res)
	}
}

// ---- binary front end ----

// ServeBinary accepts binary-protocol connections on ln and serves
// the read/write/stats/ping subset, routed. Replication frames are
// answered with Malformed (a router is not a follower); unknown types
// likewise, mirroring the serving tier.
func (rt *Router) ServeBinary(ctx context.Context, ln net.Listener) error {
	var (
		mu    sync.Mutex
		conns = make(map[net.Conn]struct{})
		wg    sync.WaitGroup
	)
	stop := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
		case <-stop:
		}
		ln.Close()
		mu.Lock()
		for c := range conns {
			c.SetReadDeadline(time.Now())
		}
		mu.Unlock()
	}()
	var acceptErr error
	for {
		c, err := ln.Accept()
		if err != nil {
			if ctx.Err() == nil && !errors.Is(err, net.ErrClosed) {
				acceptErr = err
			}
			break
		}
		mu.Lock()
		conns[c] = struct{}{}
		mu.Unlock()
		wg.Add(1)
		go func() {
			defer wg.Done()
			rt.serveBinaryConn(ctx, c)
			mu.Lock()
			delete(conns, c)
			mu.Unlock()
		}()
	}
	close(stop)
	drained := make(chan struct{})
	go func() { wg.Wait(); close(drained) }()
	select {
	case <-drained:
	case <-time.After(rt.cfg.ShutdownGrace):
		mu.Lock()
		for c := range conns {
			c.Close()
		}
		mu.Unlock()
		<-drained
	}
	return acceptErr
}

// ListenAndServeBinary serves the binary front end on addr.
func (rt *Router) ListenAndServeBinary(ctx context.Context, addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return rt.ServeBinary(ctx, ln)
}

const (
	binHandshakeTimeout = 5 * time.Second
	binIdleTimeout      = 5 * time.Minute
	binWriteTimeout     = 30 * time.Second
)

// serveBinaryConn mirrors the serving tier's request loop — handshake,
// frame, dispatch, pipelined flush — with routed execution.
func (rt *Router) serveBinaryConn(ctx context.Context, c net.Conn) {
	defer c.Close()
	c.SetDeadline(time.Now().Add(binHandshakeTimeout))
	if err := wire.ReadMagic(c); err != nil {
		return
	}
	if err := wire.WriteMagic(c); err != nil {
		return
	}
	c.SetDeadline(time.Time{})

	r := wire.NewReader(c, wire.MaxFrame)
	w := wire.NewWriter(c)
	var (
		pairs   [][2]int32
		scratch []byte
	)
	for {
		c.SetReadDeadline(time.Now().Add(binIdleTimeout))
		typ, payload, err := r.ReadFrame()
		if err != nil {
			return
		}
		c.SetWriteDeadline(time.Now().Add(binWriteTimeout))

		var respType wire.Type
		scratch = scratch[:0]
		switch typ {
		case wire.TDistance:
			sv, tv, derr := wire.DecodePair(payload)
			if derr != nil {
				respType, scratch = wire.TError, wire.AppendError(scratch, wire.CodeMalformed, derr.Error())
				break
			}
			d, qerr := rt.Distance(ctx, sv, tv)
			if qerr != nil {
				respType, scratch = wire.TError, appendRoutedError(scratch, qerr)
				break
			}
			respType, scratch = wire.TDistanceResp, wire.AppendDistance(scratch, d)

		case wire.TBatch:
			var derr error
			pairs, derr = wire.DecodePairs(payload, pairs)
			if derr != nil {
				respType, scratch = wire.TError, wire.AppendError(scratch, wire.CodeMalformed, derr.Error())
				break
			}
			dists, qerr := rt.DistanceBatch(ctx, pairs)
			if qerr != nil {
				respType, scratch = wire.TError, appendRoutedError(scratch, qerr)
				break
			}
			respType, scratch = wire.TBatchResp, wire.AppendDistances(scratch, dists)

		case wire.TInsert:
			var derr error
			pairs, derr = wire.DecodePairs(payload, pairs)
			if derr != nil {
				respType, scratch = wire.TError, wire.AppendError(scratch, wire.CodeMalformed, derr.Error())
				break
			}
			res, ierr := rt.InsertEdges(ctx, pairs)
			if ierr != nil {
				respType, scratch = wire.TError, appendRoutedError(scratch, ierr)
				break
			}
			respType, scratch = wire.TInsertResp, wire.AppendInsertResult(scratch, res.Accepted, res.Inserted, res.Epoch)

		case wire.TDelete:
			var derr error
			pairs, derr = wire.DecodePairs(payload, pairs)
			if derr != nil {
				respType, scratch = wire.TError, wire.AppendError(scratch, wire.CodeMalformed, derr.Error())
				break
			}
			res, derr2 := rt.DeleteEdges(ctx, pairs)
			if derr2 != nil {
				respType, scratch = wire.TError, appendRoutedError(scratch, derr2)
				break
			}
			respType, scratch = wire.TDeleteResp, wire.AppendDeleteResult(scratch, res.Accepted, res.Deleted, res.Epoch)

		case wire.TStats:
			doc, merr := json.Marshal(rt.statsDoc())
			if merr != nil {
				respType, scratch = wire.TError, wire.AppendError(scratch, wire.CodeInternal, merr.Error())
				break
			}
			respType, scratch = wire.TStatsResp, append(scratch, doc...)

		case wire.TPing:
			respType = wire.TPingResp

		default:
			respType, scratch = wire.TError, wire.AppendError(scratch, wire.CodeMalformed,
				fmt.Sprintf("unknown record type 0x%02x", byte(typ)))
		}

		if err := w.WriteFrame(respType, scratch); err != nil {
			return
		}
		if r.Buffered() == 0 {
			if err := w.Flush(); err != nil {
				return
			}
		}
	}
}

// appendRoutedError encodes a routed failure as a wire error frame,
// re-relaying remote error codes verbatim so a client behind the
// router sees the member's own taxonomy (Range stays Range, Degraded
// stays Degraded), and mapping routing failures to Unavailable.
func appendRoutedError(scratch []byte, err error) []byte {
	var re *wire.RemoteError
	if errors.As(err, &re) {
		return wire.AppendError(scratch, re.Code, re.Message)
	}
	if errors.Is(err, ErrUnavailable) {
		return wire.AppendError(scratch, wire.CodeUnavailable, err.Error())
	}
	return wire.AppendError(scratch, wire.CodeInternal, err.Error())
}
