package cluster

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"highway/internal/dynhl"
	"highway/internal/hlclient"
	"highway/internal/serve"
	"highway/internal/wire"
)

// ShipperConfig parameterizes a primary's shipping side.
type ShipperConfig struct {
	// Followers are the binary-protocol addresses of the replica set.
	Followers []string
	// QueueDepth bounds each follower's in-memory batch queue
	// (DefaultQueueDepth when 0). A follower that falls further behind
	// than the queue drops off the tail and is healed by a snapshot
	// resync instead of unbounded buffering.
	QueueDepth int
	// ChunkSize is the snapshot-transfer chunk size in bytes
	// (DefaultChunkSize when 0). Must stay under wire.MaxFrame with
	// room for the 9-byte replication header.
	ChunkSize int
	// RetryInterval paces reconnect/resync attempts against a follower
	// that is down (DefaultRetryInterval when 0).
	RetryInterval time.Duration
	// Client overrides the per-follower client configuration. The
	// zero value is replaced by a shipping-tuned one: a single pooled
	// connection (ordering), no breaker (the shipper has its own
	// resync state machine).
	Client hlclient.Config
}

// Defaults for ShipperConfig zero values.
const (
	DefaultQueueDepth    = 256
	DefaultChunkSize     = 4 << 20
	DefaultRetryInterval = 200 * time.Millisecond
)

// shipMsg is one committed write batch queued for a follower: the
// epoch it became visible at, the ops in WAL pair encoding, and the
// enqueue time feeding the lag_ms gauge.
type shipMsg struct {
	epoch uint64
	pairs [][2]int32
	at    int64 // unix nanos
}

// followerLink is one follower's shipping state. The queue is written
// by OnCommit (non-blocking — overflow flips needResync and drops, the
// snapshot heals the hole) and drained by a dedicated goroutine.
type followerLink struct {
	addr string
	q    chan shipMsg

	cl *hlclient.Client // owned by the run goroutine; nil until dialed

	pending    atomic.Int64  // queued-not-yet-resolved batches
	oldestNs   atomic.Int64  // enqueue time of the batch being processed; 0 when idle
	needResync atomic.Bool   // full snapshot required before more appends
	deposed    atomic.Bool   // follower fenced us at an epoch we never acked
	epoch      atomic.Uint64 // follower durable epoch, as of its last ack
}

// Shipper is the primary's replication engine: its OnCommit hook is
// installed as serve.LiveConfig.OnCommit, so every acked write batch
// is enqueued (in epoch order, before the client sees the ack) for
// every follower, and one goroutine per follower drains its queue into
// TReplAppend frames — falling back to a full TReplSnapshot transfer
// whenever the follower is fresh, behind, or unreachable.
type Shipper struct {
	srv   *serve.Server
	cfg   ShipperConfig
	links []*followerLink

	shipped atomic.Int64
	acked   atomic.Int64
	fenced  atomic.Int64
	resyncs atomic.Int64
	deposed atomic.Bool

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
}

// NewShipper builds a shipper. Wiring order matters around the
// primary's construction: the shipper exists first (so its OnCommit
// can go into serve.LiveConfig), the live server is built, then Start
// launches the per-follower goroutines. OnCommit before Start only
// enqueues; nothing ships until Start provides the server whose
// FrozenState backs snapshot transfers.
func NewShipper(cfg ShipperConfig) *Shipper {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = DefaultQueueDepth
	}
	if cfg.ChunkSize <= 0 {
		cfg.ChunkSize = DefaultChunkSize
	}
	if cfg.RetryInterval <= 0 {
		cfg.RetryInterval = DefaultRetryInterval
	}
	if cfg.Client == (hlclient.Config{}) {
		cfg.Client = hlclient.Config{
			PoolSize:         1,  // one ordered stream per follower
			MaxRetries:       -1, // the resync state machine owns recovery
			BreakerThreshold: -1,
			AttemptTimeout:   30 * time.Second,
		}
	}
	sh := &Shipper{cfg: cfg}
	sh.ctx, sh.cancel = context.WithCancel(context.Background())
	for _, addr := range cfg.Followers {
		l := &followerLink{addr: addr, q: make(chan shipMsg, cfg.QueueDepth)}
		l.needResync.Store(true) // fresh follower: bootstrap snapshot first
		sh.links = append(sh.links, l)
	}
	return sh
}

// Start binds the shipper to its live server and launches one shipping
// goroutine per follower, each beginning with a bootstrap snapshot.
func (sh *Shipper) Start(srv *serve.Server) {
	sh.srv = srv
	for _, l := range sh.links {
		sh.wg.Add(1)
		go sh.run(l)
	}
}

// OnCommit is the serve.LiveConfig.OnCommit hook: called under the
// writer lock for every accepted batch, strictly in epoch order,
// before the write is acknowledged. It must not block — each follower
// gets a non-blocking enqueue, and an overflowing queue is resolved by
// flagging the link for a snapshot resync (whose FrozenState, taken
// later, necessarily covers this batch).
func (sh *Shipper) OnCommit(epoch uint64, ops []dynhl.Op) {
	msg := shipMsg{
		epoch: epoch,
		pairs: serve.EncodeWALOps(make([][2]int32, 0, len(ops)), ops),
		at:    time.Now().UnixNano(),
	}
	for _, l := range sh.links {
		if l.deposed.Load() {
			continue
		}
		select {
		case l.q <- msg:
			l.pending.Add(1)
			sh.shipped.Add(1)
		default:
			l.needResync.Store(true)
		}
	}
}

// Close stops the shipping goroutines and releases the follower
// connections. Queued-but-unshipped batches are abandoned — they are
// durable in the primary's WAL, and the next incarnation's snapshot
// resync delivers their effect.
func (sh *Shipper) Close() {
	sh.cancel()
	sh.wg.Wait()
}

// run drains one follower's queue. The loop alternates between the
// resync state (dial if needed, stream a snapshot, drop queued batches
// the snapshot already covers) and the steady state (ship the next
// queued batch).
func (sh *Shipper) run(l *followerLink) {
	defer sh.wg.Done()
	defer func() {
		if l.cl != nil {
			l.cl.Close()
		}
	}()
	for sh.ctx.Err() == nil {
		if l.deposed.Load() {
			return
		}
		if l.cl == nil {
			cl, err := hlclient.Dial(sh.ctx, l.addr, sh.cfg.Client)
			if err != nil {
				sh.sleep()
				continue
			}
			l.cl = cl
		}
		if l.needResync.Load() {
			if !sh.doResync(l) {
				sh.sleep()
			}
			continue
		}
		select {
		case <-sh.ctx.Done():
			return
		case msg := <-l.q:
			l.oldestNs.Store(msg.at)
			sh.shipOne(l, msg)
			if l.pending.Add(-1) == 0 {
				l.oldestNs.Store(0)
			}
		}
	}
}

// shipOne sends one batch, classifying the outcome: acked (adopt the
// follower's epoch), fenced-benign (snapshot already covered it),
// fenced-deposed (a newer primary owns this follower — stop), or
// failed (flag a resync; transient transport noise and restarted
// followers end up here and are healed the same way).
func (sh *Shipper) shipOne(l *followerLink, msg shipMsg) {
	if msg.epoch <= l.epoch.Load() {
		// Already covered by a snapshot this link shipped earlier.
		sh.acked.Add(1)
		return
	}
	ep, err := l.cl.ReplAppend(sh.ctx, msg.epoch, msg.pairs)
	if err == nil {
		l.epoch.Store(ep)
		sh.acked.Add(1)
		return
	}
	var re *wire.RemoteError
	if errors.As(err, &re) && re.Code == wire.CodeFenced {
		sh.fenced.Add(1)
		// The follower's durable epoch is at or above msg.epoch. If we
		// never acked that epoch ourselves, someone else advanced the
		// follower past us: this incarnation is deposed.
		if msg.epoch > l.epoch.Load() {
			l.deposed.Store(true)
			sh.deposed.Store(true)
		}
		return
	}
	l.needResync.Store(true)
}

// doResync streams a full snapshot to the follower and, on success,
// discards queued batches the snapshot's epoch already covers (the
// channel is in epoch order, so draining stops at the first batch
// above it). Returns false when the transfer failed and the caller
// should back off.
func (sh *Shipper) doResync(l *followerLink) bool {
	// Clear the flag BEFORE freezing: a batch dropped after this point
	// re-flags the link, and FrozenState below is serialized with the
	// commit that dropped it, so re-running the resync covers it.
	l.needResync.Store(false)
	g, ix, epoch, err := sh.srv.FrozenState()
	if err != nil {
		l.needResync.Store(true)
		return false
	}
	var buf bytes.Buffer
	if err := serve.EncodeSnapshot(&buf, g, ix); err != nil {
		l.needResync.Store(true)
		return false
	}
	data := buf.Bytes()
	for off := 0; ; off += sh.cfg.ChunkSize {
		end := off + sh.cfg.ChunkSize
		done := end >= len(data)
		if done {
			end = len(data)
		}
		ep, err := l.cl.ReplSnapshot(sh.ctx, epoch, done, data[off:end])
		if err != nil {
			var re *wire.RemoteError
			if errors.As(err, &re) && re.Code == wire.CodeFenced {
				// A snapshot below the follower's epoch: a newer
				// primary owns it.
				sh.fenced.Add(1)
				l.deposed.Store(true)
				sh.deposed.Store(true)
				return false
			}
			l.needResync.Store(true)
			return false
		}
		if done {
			l.epoch.Store(ep)
			break
		}
	}
	sh.resyncs.Add(1)
	// Drop queued batches the snapshot covers; the first one above its
	// epoch (and everything after, the queue is ordered) still ships.
	// If a ship fails mid-drain the link is re-flagged, and the rest of
	// the queue must NOT be shipped — the follower accepts any higher
	// epoch, so skipping a failed batch and landing a later one would
	// gap its history. Draining (without shipping) is safe instead:
	// every queued batch was committed before the next FrozenState, so
	// the re-run resync's snapshot covers them.
	for {
		select {
		case msg := <-l.q:
			switch {
			case l.deposed.Load() || l.needResync.Load():
				// resolved by the next resync (or never: deposed)
			case msg.epoch > l.epoch.Load():
				l.oldestNs.Store(msg.at)
				sh.shipOne(l, msg)
			default:
				sh.acked.Add(1) // covered by this snapshot
			}
			if l.pending.Add(-1) == 0 {
				l.oldestNs.Store(0)
			}
		default:
			return true
		}
	}
}

// sleep pauses between retries, waking early on shutdown.
func (sh *Shipper) sleep() {
	t := time.NewTimer(sh.cfg.RetryInterval)
	defer t.Stop()
	select {
	case <-sh.ctx.Done():
	case <-t.C:
	}
}

// Stats renders the primary's replication section for /stats.
func (sh *Shipper) Stats() *serve.ReplicationStats {
	var epoch uint64
	if sh.srv != nil {
		epoch = sh.srv.Epoch()
	}
	rs := &serve.ReplicationStats{
		Role:         "primary",
		Epoch:        epoch,
		Shipped:      sh.shipped.Load(),
		Acked:        sh.acked.Load(),
		Fenced:       sh.fenced.Load(),
		Resyncs:      sh.resyncs.Load(),
		Bootstrapped: true,
		Followers:    len(sh.links),
		Deposed:      sh.deposed.Load(),
	}
	now := time.Now().UnixNano()
	for _, l := range sh.links {
		rs.LagBatches += l.pending.Load()
		if at := l.oldestNs.Load(); at != 0 {
			if ms := float64(now-at) / 1e6; ms > rs.LagMs {
				rs.LagMs = ms
			}
		}
	}
	return rs
}

// FollowerEpochs reports each follower's durable epoch as of its last
// ack, keyed by address — the cluster test's convergence probe.
func (sh *Shipper) FollowerEpochs() map[string]uint64 {
	out := make(map[string]uint64, len(sh.links))
	for _, l := range sh.links {
		out[l.addr] = l.epoch.Load()
	}
	return out
}
