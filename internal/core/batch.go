package core

import (
	"slices"

	"highway/internal/bfs"
	"highway/internal/method"
)

// The searcher opts into the optional vectorized-execution capabilities
// the serving layer discovers through the registry.
var (
	_ method.BatchSearcher  = (*Searcher)(nil)
	_ method.SourceSearcher = (*Searcher)(nil)
)

// Vectorized batch execution (ROADMAP item 3): amortize the per-query
// label work over batches that share sources.
//
// A single Distance(s,t) pays three costs: the label merge + highway
// cross-pass for the upper bound d⊤st (O(|L(s)|·|L(t)|)), the pooled
// searcher checkout, and — unless an endpoint is a landmark — a bounded
// bidirectional BFS on the sparsified graph G[V\R]. When many pairs
// share a source, most of that work is shared:
//
//  1. The source side of the bound collapses into one vector
//     via[j] = min over L(s) entries (r,d) of d + δH(r,j) — after which
//     every target's bound is a single O(|L(t)|) probe pass instead of a
//     cross-pair scan. via subsumes the Lemma 5.1 common-landmark
//     shortcut because δH(r,r) = 0 folds the shared-landmark term into
//     the same minimum, so the result is exactly Searcher.UpperBound.
//     For a landmark source, via *is* its highway row: zero setup.
//  2. Targets are visited in sorted order (one shared permutation, no
//     per-pair allocation), so label reads walk the flat label CSR
//     (labelOff/labelRank/labelDist) sequentially, and duplicate
//     targets are answered once and copied.
//  3. The fallback searches reuse one bfs.Scratch (the searcher's), and
//     a group with enough refinements to do replaces its per-pair
//     bidirectional searches with ONE depth-bounded single-source BFS
//     from s on G[V\R]: Theorem 4.6 gives d(s,t) = min(d⊤st,
//     d_{G[V\R]}(s,t)), and one traversal yields the sparsified
//     distances for every target at once.
//
// Both execution strategies compute the same exact quantity, so batched
// answers are always identical to pair-at-a-time answers (pinned by
// TestBatchMatchesPairwise and the root-level differential suite).

// Batch-execution thresholds. These trade the shared setup cost against
// the per-pair saving; both paths are exact, so the choice is purely a
// performance heuristic.
const (
	// viaMinGroup is the smallest group that builds the shared source
	// bound vector: via costs |L(s)|·k to fill, one pairwise bound costs
	// about |L(s)|·|L(t)|, so sharing starts paying at two targets.
	// Landmark sources skip the setup entirely (via aliases the highway
	// row), so they always take the vectorized path.
	viaMinGroup = 2

	// sparseMinGroup and sparseGroupFrac gate the shared source BFS: a
	// group refines with one single-source traversal of G[V\R] (instead
	// of per-pair bounded bidirectional searches) only when at least
	// sparseMinGroup targets need refinement AND they number at least
	// NumVertices/sparseGroupFrac — below that, scanning a constant
	// fraction of the graph's edges costs more than the per-pair
	// searches it replaces.
	sparseMinGroup  = 256
	sparseGroupFrac = 64
)

// DistanceMany answers one-source-to-many queries: dst[i] is the exact
// distance from source to targets[i] (Infinity if disconnected). The
// result is written into dst when it has the capacity; dst may be nil.
// It is equivalent to calling Distance(source, t) per target but
// amortizes the source-side label walk, the highway cross-pass and —
// for large target sets — the sparsified-graph search across the whole
// call. Like Distance, it panics if a vertex id is out of range.
func (sr *Searcher) DistanceMany(source int32, targets []int32, dst []int32) []int32 {
	dst = sizeDst(dst, len(targets))
	if len(targets) == 0 {
		return dst
	}
	perm := sr.permBuf(len(targets))
	slices.SortFunc(perm, func(a, b int32) int {
		ta, tb := targets[a], targets[b]
		switch {
		case ta < tb:
			return -1
		case ta > tb:
			return 1
		}
		return 0
	})
	sr.runGroup(source, perm, func(i int32) int32 { return targets[i] }, dst)
	return dst
}

// DistanceBatch answers len(pairs) independent queries: dst[i] is the
// exact distance for pairs[i]. The result is written into dst when it
// has the capacity; dst may be nil. Pairs are grouped by source and
// each group executes through the vectorized path (see the package
// comment above), so batches that repeat sources run substantially
// faster than a pair-at-a-time loop while returning identical answers.
// Like Distance, it panics if a vertex id is out of range.
func (sr *Searcher) DistanceBatch(pairs [][2]int32, dst []int32) []int32 {
	dst = sizeDst(dst, len(pairs))
	if len(pairs) == 0 {
		return dst
	}
	perm := sr.permBuf(len(pairs))
	slices.SortFunc(perm, func(a, b int32) int {
		pa, pb := pairs[a], pairs[b]
		switch {
		case pa[0] != pb[0]:
			if pa[0] < pb[0] {
				return -1
			}
			return 1
		case pa[1] < pb[1]:
			return -1
		case pa[1] > pb[1]:
			return 1
		}
		return 0
	})
	for lo := 0; lo < len(perm); {
		src := pairs[perm[lo]][0]
		hi := lo + 1
		for hi < len(perm) && pairs[perm[hi]][0] == src {
			hi++
		}
		sr.runGroup(src, perm[lo:hi], func(i int32) int32 { return pairs[i][1] }, dst)
		lo = hi
	}
	return dst
}

// DistanceMany is the pooled convenience form of Searcher.DistanceMany;
// safe for concurrent use.
func (ix *Index) DistanceMany(source int32, targets []int32, dst []int32) []int32 {
	sr := ix.pooled()
	dst = sr.DistanceMany(source, targets, dst)
	ix.release(sr)
	return dst
}

// DistanceBatch is the pooled convenience form of
// Searcher.DistanceBatch; safe for concurrent use.
func (ix *Index) DistanceBatch(pairs [][2]int32, dst []int32) []int32 {
	sr := ix.pooled()
	dst = sr.DistanceBatch(pairs, dst)
	ix.release(sr)
	return dst
}

// runGroup answers every query (source, tof(i)) for i in perm, writing
// dst[i]. perm must be sorted by target so duplicate targets are
// adjacent and label reads are sequential.
func (sr *Searcher) runGroup(source int32, perm []int32, tof func(int32) int32, dst []int32) {
	ix := sr.ix
	srcIsLm := ix.rankOf[source] >= 0
	if len(perm) < viaMinGroup && !srcIsLm {
		for _, i := range perm {
			dst[i] = sr.Distance(source, tof(i))
		}
		return
	}

	// Pass 1: label-derived bounds through the shared source vector, and
	// the group's refinement profile (how many targets still need the
	// sparsified-graph search, and how deep it must look).
	via := sr.sourceVia(source)
	needBFS := 0
	maxUB := int32(0)
	unbounded := false
	for _, i := range perm {
		t := tof(i)
		switch {
		case t == source:
			dst[i] = 0
		case ix.rankOf[t] >= 0:
			// Landmark endpoints are exact from labels + highway alone
			// (the highway cover property covers every r-constrained
			// path; see Searcher.Distance).
			dst[i] = via[ix.rankOf[t]]
		default:
			ub := boundViaVec(ix, via, t)
			dst[i] = ub
			if !srcIsLm {
				needBFS++
				if ub == Infinity {
					unbounded = true
				} else if ub > maxUB {
					maxUB = ub
				}
			}
		}
	}
	if srcIsLm || needBFS == 0 {
		// Labels plus highway are exact when the source is a landmark;
		// the sparsified graph does not contain it.
		return
	}

	// Pass 2: refine the bounds on G[V\R] (Theorem 4.6).
	if needBFS >= sparseMinGroup && needBFS*sparseGroupFrac >= ix.g.NumVertices() {
		sr.refineGroupBFS(source, perm, tof, dst, maxUB, unbounded)
		return
	}
	prevT := int32(-1)
	var prevD int32
	for _, i := range perm {
		t := tof(i)
		if t == source || ix.rankOf[t] >= 0 {
			continue
		}
		if t == prevT {
			dst[i] = prevD
			continue
		}
		bound := dst[i]
		if bound == Infinity {
			bound = bfs.NoBound
		}
		d := bfs.BoundedBiBFS(ix.g, source, t, bound, ix.isLandmark, sr.sc)
		dst[i] = d
		prevT, prevD = t, d
	}
}

// refineGroupBFS replaces a large group's per-pair bidirectional
// searches with one single-source BFS from source on the sparsified
// graph G[V\R], depth-bounded by the deepest bound any target could
// still improve on (maxUB-1: a sparsified path of length ≥ d⊤st cannot
// lower min(d⊤st, ·)). Targets the traversal did not reach keep their
// label bound — their sparsified distance provably exceeds it.
func (sr *Searcher) refineGroupBFS(source int32, perm []int32, tof func(int32) int32, dst []int32, maxUB int32, unbounded bool) {
	ix := sr.ix
	n := ix.g.NumVertices()
	limit := maxUB - 1
	if unbounded {
		// Some target has no label bound at all: only the sparsified
		// graph can connect it, so traverse exhaustively.
		limit = int32(n)
	}
	dist := sr.sparseBuf(n)
	q := sr.sparseQ[:0]
	dist[source] = 0
	q = append(q, source)
	off, adj := ix.g.CSR()
	for head := 0; head < len(q); head++ {
		v := q[head]
		dv := dist[v]
		if dv >= limit {
			// The queue is level-ordered: everything at or past the
			// limit expands to depths no bound can improve on.
			break
		}
		for _, u := range adj[off[v]:off[v+1]] {
			if ix.isLandmark[u] || dist[u] >= 0 {
				continue
			}
			dist[u] = dv + 1
			q = append(q, u)
		}
	}
	for _, i := range perm {
		t := tof(i)
		if t == source || ix.rankOf[t] >= 0 {
			continue
		}
		if d := dist[t]; d >= 0 && (dst[i] == Infinity || d < dst[i]) {
			dst[i] = d
		}
	}
	// Restore the all-unvisited invariant by resetting exactly the
	// vertices the traversal touched.
	for _, v := range q {
		dist[v] = -1
	}
	sr.sparseQ = q[:0]
}

// sourceVia returns the shared source bound vector: via[j] is the best
// label+highway distance from source to the landmark of rank j, or
// Infinity. For a landmark source this is its highway row, aliased
// without copying (callers only read it).
func (sr *Searcher) sourceVia(source int32) []int32 {
	ix := sr.ix
	k := len(ix.landmarks)
	if r := ix.rankOf[source]; r >= 0 {
		return ix.highway[int(r)*k : int(r+1)*k]
	}
	via := sr.viaBuf(k)
	rank, dist := ix.labelRank, ix.labelDist
	for p := ix.labelOff[source]; p < ix.labelOff[source+1]; p++ {
		ds := dist[p]
		row := ix.highway[int(rank[p])*k : int(rank[p]+1)*k]
		for j, h := range row {
			if h < 0 {
				continue
			}
			if d := ds + h; via[j] < 0 || d < via[j] {
				via[j] = d
			}
		}
	}
	return via
}

// boundViaVec is the per-target half of the vectorized upper bound: one
// probe pass over t's flat label range against the source vector. It
// returns exactly Searcher.UpperBound(source, t).
func boundViaVec(ix *Index, via []int32, t int32) int32 {
	rank, dist := ix.labelRank, ix.labelDist
	best := Infinity
	for p := ix.labelOff[t]; p < ix.labelOff[t+1]; p++ {
		v := via[rank[p]]
		if v < 0 {
			continue
		}
		if d := v + dist[p]; best < 0 || d < best {
			best = d
		}
	}
	return best
}

// sizeDst returns dst resized to n entries, reallocating only when the
// capacity is short.
func sizeDst(dst []int32, n int) []int32 {
	if cap(dst) < n {
		return make([]int32, n)
	}
	return dst[:n]
}

// permBuf returns the searcher's index-permutation buffer initialized
// to the identity over n entries.
func (sr *Searcher) permBuf(n int) []int32 {
	if cap(sr.perm) < n {
		sr.perm = make([]int32, n)
	}
	perm := sr.perm[:n]
	for i := range perm {
		perm[i] = int32(i)
	}
	return perm
}

// viaBuf returns the searcher's source bound vector, sized to k and
// cleared to Infinity.
func (sr *Searcher) viaBuf(k int) []int32 {
	if cap(sr.via) < k {
		sr.via = make([]int32, k)
	}
	via := sr.via[:k]
	for j := range via {
		via[j] = Infinity
	}
	return via
}

// sparseBuf returns the searcher's sparsified-BFS distance array with
// every entry -1 (the invariant refineGroupBFS restores after use).
func (sr *Searcher) sparseBuf(n int) []int32 {
	if cap(sr.sparse) < n {
		sr.sparse = make([]int32, n)
		for i := range sr.sparse {
			sr.sparse[i] = -1
		}
	}
	return sr.sparse[:n]
}
