package core

import (
	"math/rand"
	"testing"

	"highway/internal/gen"
	"highway/internal/graph"
	"highway/internal/oracle"
)

// checkBatchMatchesPairwise asserts that DistanceBatch and DistanceMany
// answer exactly like pair-at-a-time Distance on the given pairs, on a
// fresh searcher and on the pooled Index conveniences.
func checkBatchMatchesPairwise(t *testing.T, ix *Index, pairs [][2]int32) {
	t.Helper()
	sr := ix.Searcher()
	batched := sr.DistanceBatch(pairs, nil)
	pooled := ix.DistanceBatch(pairs, nil)
	pairwise := ix.Searcher() // separate searcher: no scratch interference
	for i, p := range pairs {
		want := pairwise.Distance(p[0], p[1])
		if batched[i] != want {
			t.Fatalf("DistanceBatch[%d] (%d,%d) = %d, pairwise %d", i, p[0], p[1], batched[i], want)
		}
		if pooled[i] != want {
			t.Fatalf("Index.DistanceBatch[%d] (%d,%d) = %d, pairwise %d", i, p[0], p[1], pooled[i], want)
		}
	}
	// DistanceMany over each distinct source in the batch.
	bySource := map[int32][]int32{}
	for _, p := range pairs {
		bySource[p[0]] = append(bySource[p[0]], p[1])
	}
	for src, targets := range bySource {
		many := sr.DistanceMany(src, targets, nil)
		for i, tv := range targets {
			if want := pairwise.Distance(src, tv); many[i] != want {
				t.Fatalf("DistanceMany(%d)[%d]=%d for target %d, pairwise %d", src, i, many[i], tv, want)
			}
		}
	}
}

// skewedPairs draws count pairs whose sources rotate over nsrc seeded
// vertices (the source-skewed shape the executor groups on), with
// uniform targets — including, with a little luck, duplicates, s==t and
// landmark endpoints.
func skewedPairs(n, count, nsrc int, seed int64) [][2]int32 {
	rng := rand.New(rand.NewSource(seed))
	sources := make([]int32, nsrc)
	for i := range sources {
		sources[i] = int32(rng.Intn(n))
	}
	pairs := make([][2]int32, count)
	for i := range pairs {
		pairs[i] = [2]int32{sources[i%nsrc], int32(rng.Intn(n))}
	}
	return pairs
}

// TestBatchMatchesPairwise is the core differential property across the
// corner-case suite: batched answers are byte-identical to
// pair-at-a-time answers and to BFS ground truth on all ordered pairs
// (which include s==t, landmark endpoints, repeated sources and
// disconnected pairs by construction).
func TestBatchMatchesPairwise(t *testing.T) {
	for _, k := range []int{1, 2, 3} {
		for _, c := range oracle.CornerCases() {
			g := c.Graph
			ix, err := Build(g, g.DegreeOrder()[:k])
			if err != nil {
				t.Fatalf("%s k=%d: %v", c.Name, k, err)
			}
			pairs := oracle.AllPairs(g.NumVertices())
			checkBatchMatchesPairwise(t, ix, pairs)
			// The batched path against ground truth directly.
			dst := ix.DistanceBatch(pairs, nil)
			if err := oracle.Diff(g, oracle.Func(func(s, t int32) int32 {
				for i, p := range pairs {
					if p[0] == s && p[1] == t {
						return dst[i]
					}
				}
				panic("pair not found")
			}), pairs); err != nil {
				t.Fatalf("%s k=%d: %v", c.Name, k, err)
			}
		}
	}
}

// TestBatchDuplicatesAndRepeats hammers the dedup path: many duplicate
// pairs and repeated sources, enough to cross the group-BFS threshold
// even on a small graph.
func TestBatchDuplicatesAndRepeats(t *testing.T) {
	g := gen.BarabasiAlbert(120, 3, 7)
	ix, err := Build(g, g.DegreeOrder()[:4])
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	var pairs [][2]int32
	for i := 0; i < 400; i++ { // one source, duplicated targets → group BFS path
		pairs = append(pairs, [2]int32{17, int32(rng.Intn(60))})
	}
	for i := 0; i < 50; i++ { // s==t and landmark endpoints sprinkled in
		v := int32(rng.Intn(g.NumVertices()))
		pairs = append(pairs, [2]int32{v, v})
		pairs = append(pairs, [2]int32{ix.Landmarks()[rng.Intn(4)], v})
		pairs = append(pairs, [2]int32{v, ix.Landmarks()[rng.Intn(4)]})
	}
	checkBatchMatchesPairwise(t, ix, pairs)
}

// TestBatchRandomGraphs property-checks both refinement strategies on
// the random generator families: skewed batches (groups large enough
// for the shared source BFS) and uniform batches (pairwise refinement).
func TestBatchRandomGraphs(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		c := oracle.RandomCase(seed)
		g := c.Graph
		k := 1 + int(seed%6)
		if k > g.NumVertices() {
			k = g.NumVertices()
		}
		ix, err := Build(g, g.DegreeOrder()[:k])
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		n := g.NumVertices()
		checkBatchMatchesPairwise(t, ix, skewedPairs(n, 900, 3, seed))
		checkBatchMatchesPairwise(t, ix, oracle.SampledPairs(n, 300, seed^0x5f))
	}
}

// TestBatchDisconnected pins the Infinity paths: missing label bounds
// force the unbounded sparsified traversal, across components with and
// without landmarks.
func TestBatchDisconnected(t *testing.T) {
	g := graph.MustFromEdges(9, [][2]int32{{0, 1}, {0, 2}, {0, 3}, {0, 4}, {5, 6}, {6, 7}})
	ix, err := Build(g, []int32{0}) // vertex 8 isolated; B-component has no landmark
	if err != nil {
		t.Fatal(err)
	}
	var pairs [][2]int32
	for s := int32(0); s < 9; s++ {
		for t := int32(0); t < 9; t++ {
			pairs = append(pairs, [2]int32{s, t})
		}
	}
	// Duplicate heavily so groups cross the BFS threshold on 9 vertices.
	for i := 0; i < 5; i++ {
		pairs = append(pairs, pairs[:81]...)
	}
	checkBatchMatchesPairwise(t, ix, pairs)
}

// TestBatchDstReuse verifies the dst contract: a caller-provided slice
// with capacity is reused, one without is replaced.
func TestBatchDstReuse(t *testing.T) {
	g := gen.Path(10)
	ix, err := Build(g, []int32{5})
	if err != nil {
		t.Fatal(err)
	}
	pairs := [][2]int32{{0, 9}, {2, 2}, {9, 0}}
	buf := make([]int32, 8)
	out := ix.DistanceBatch(pairs, buf)
	if len(out) != len(pairs) || &out[0] != &buf[0] {
		t.Fatalf("dst with capacity was not reused (len=%d)", len(out))
	}
	if out2 := ix.DistanceBatch(pairs, nil); len(out2) != len(pairs) {
		t.Fatalf("nil dst: got len %d", len(out2))
	}
	if got := ix.DistanceMany(0, []int32{9, 5, 0}, buf[:0]); len(got) != 3 || got[2] != 0 {
		t.Fatalf("DistanceMany dst reuse: %v", got)
	}
}

// TestBatchEmpty covers the zero-length edges of both entry points.
func TestBatchEmpty(t *testing.T) {
	g := gen.Path(4)
	ix, err := Build(g, []int32{1})
	if err != nil {
		t.Fatal(err)
	}
	if out := ix.DistanceBatch(nil, nil); len(out) != 0 {
		t.Fatalf("empty batch returned %v", out)
	}
	if out := ix.DistanceMany(2, nil, nil); len(out) != 0 {
		t.Fatalf("empty targets returned %v", out)
	}
}
