package core

import (
	"context"
	"fmt"
	"math/bits"
	"runtime"
	"sync"

	"highway/internal/bfs"
	"highway/internal/graph"
)

// Direction selects the traversal strategy of the pruned BFSs; see
// bfs.Direction. The labelling is identical for every direction
// (Lemma 3.11 makes the output depend only on the graph and landmark
// set), so this is purely a performance/testing knob.
type Direction = bfs.Direction

const (
	// DirectionAuto is the direction-optimizing default.
	DirectionAuto = bfs.DirectionAuto
	// DirectionTopDown forces the classic top-down expansion.
	DirectionTopDown = bfs.DirectionTopDown
	// DirectionBottomUp forces bottom-up expansion (testing only).
	DirectionBottomUp = bfs.DirectionBottomUp
)

// Options configures index construction.
type Options struct {
	// Workers is the number of concurrent pruned BFSs (the paper's HL-P,
	// Section 5.1). 0 selects runtime.GOMAXPROCS(0); 1 is the sequential
	// HL of Algorithm 1. Because the labelling is deterministic
	// (Lemma 3.11), every worker count produces an identical index.
	Workers int

	// Direction selects how pruned-BFS levels are expanded: the
	// direction-optimizing hybrid (default), forced top-down (the
	// pre-engine reference, kept for benchmarking the switch), or forced
	// bottom-up (testing). Every direction produces an identical index.
	Direction Direction

	// Progress, when non-nil, is called after each landmark's pruned BFS
	// completes, with the number of completed BFSs and the landmark
	// count. Calls are serialized (one at a time) but may come from
	// different worker goroutines.
	Progress func(done, total int)
}

// BuildStats describes how an index was constructed: worker count and
// the traversal engine's per-direction work counters, summed over all
// pruned BFSs. Available via Index.BuildStats on built (not loaded)
// indexes.
type BuildStats struct {
	Workers   int
	Traversal bfs.TraversalStats
}

// Build constructs the highway cover distance labelling for the given
// landmark set sequentially (the paper's HL).
func Build(g *graph.Graph, landmarks []int32) (*Index, error) {
	return BuildOpts(context.Background(), g, landmarks, Options{Workers: 1})
}

// BuildParallel constructs the labelling with one pruned BFS per landmark
// running concurrently (the paper's HL-P).
func BuildParallel(g *graph.Graph, landmarks []int32) (*Index, error) {
	return BuildOpts(context.Background(), g, landmarks, Options{})
}

// BuildOpts constructs the labelling with full control. The context is
// checked between pruned BFSs; cancellation returns ctx.Err() (used by the
// bench harness to reproduce the paper's DNF budgets).
func BuildOpts(ctx context.Context, g *graph.Graph, landmarks []int32, opt Options) (*Index, error) {
	k := len(landmarks)
	if k == 0 {
		return nil, fmt.Errorf("core: no landmarks")
	}
	if k > MaxLandmarks {
		return nil, fmt.Errorf("core: %d landmarks exceeds MaxLandmarks=%d", k, MaxLandmarks)
	}
	n := g.NumVertices()
	rankOf := make([]int32, n)
	for i := range rankOf {
		rankOf[i] = -1
	}
	isLandmark := make([]bool, n)
	for r, v := range landmarks {
		if v < 0 || int(v) >= n {
			return nil, fmt.Errorf("core: landmark %d out of range [0,%d)", v, n)
		}
		if rankOf[v] >= 0 {
			return nil, fmt.Errorf("core: duplicate landmark %d", v)
		}
		rankOf[v] = int32(r)
		isLandmark[v] = true
	}

	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > k {
		workers = k
	}
	progress := newProgressFunc(opt.Progress, k)

	rows := make([][]labelPair, k) // labels discovered by each landmark's BFS
	highway := make([]int32, k*k)  // filled row by row
	for i := range highway {
		highway[i] = Infinity
	}

	var traversal bfs.TraversalStats
	if workers == 1 {
		sc := newBuildScratch(n)
		for r := 0; r < k; r++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			rows[r] = prunedBFS(g, landmarks[r], rankOf, k, sc, highway[r*k:(r+1)*k], opt.Direction, &traversal)
			progress()
		}
	} else {
		work := make(chan int)
		perWorker := make([]bfs.TraversalStats, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(slot int) {
				defer wg.Done()
				sc := newBuildScratch(n)
				for r := range work {
					rows[r] = prunedBFS(g, landmarks[r], rankOf, k, sc, highway[r*k:(r+1)*k], opt.Direction, &perWorker[slot])
					progress()
				}
			}(w)
		}
		var err error
	dispatch:
		for r := 0; r < k; r++ {
			select {
			case work <- r:
			case <-ctx.Done():
				err = ctx.Err()
				break dispatch
			}
		}
		close(work)
		wg.Wait()
		if err != nil {
			return nil, err
		}
		// Summed in worker-slot order so the totals are deterministic.
		for _, s := range perWorker {
			traversal.Add(s)
		}
	}

	ix := assemble(g, landmarks, rankOf, isLandmark, highway, rows)
	ix.built = BuildStats{Workers: workers, Traversal: traversal}
	return ix, nil
}

// newProgressFunc wraps an Options.Progress callback into a serialized
// completion notifier (no-op when cb is nil). The count increments under
// the same lock that serializes the callback, so callers always observe
// done = 1, 2, ..., total in order.
func newProgressFunc(cb func(done, total int), total int) func() {
	if cb == nil {
		return func() {}
	}
	var mu sync.Mutex
	done := 0
	return func() {
		mu.Lock()
		done++
		cb(done, total)
		mu.Unlock()
	}
}

// labelPair is one label entry produced by a pruned BFS: vertex v receives
// the root landmark at distance d.
type labelPair struct {
	v int32
	d int32
}

// buildScratch holds reusable pruned-BFS state.
type buildScratch struct {
	labelF []int32 // label frontier (Qlabel at the current depth)
	pruneF []int32 // prune frontier (Qprune at the current depth)
	nextL  []int32
	nextP  []int32

	// unvis is the unvisited set, doubling as the visited marker of
	// top-down levels and the word-skipping scan set of bottom-up ones.
	unvis bfs.Bitset
	// Side-membership bitmaps: which side (label or prune) every visited
	// vertex joined. Bottom-up levels probe these instead of per-level
	// frontier bitmaps — any visited neighbor of a still-unvisited vertex
	// is necessarily on the current frontier, because both queues expand
	// every level. Claims made during a bottom-up sweep go to the *Next
	// bitmaps and are absorbed after the sweep, so the sweep never sees
	// its own claims as parents.
	labelSeen, labelNext bfs.Bitset
	pruneSeen, pruneNext bfs.Bitset
}

func newBuildScratch(n int) *buildScratch {
	return &buildScratch{
		labelF:    make([]int32, 0, 1024),
		pruneF:    make([]int32, 0, 1024),
		nextL:     make([]int32, 0, 1024),
		nextP:     make([]int32, 0, 1024),
		unvis:     bfs.NewBitset(n),
		labelSeen: bfs.NewBitset(n),
		labelNext: bfs.NewBitset(n),
		pruneSeen: bfs.NewBitset(n),
		pruneNext: bfs.NewBitset(n),
	}
}

// prunedBFS is Algorithm 1's pruned BFS from one landmark root. It returns
// the label entries (v, d) it generates and fills hwRow with the distances
// from root to every landmark rank (Infinity where unreachable).
//
// The two frontiers follow the paper exactly, with the crucial ordering
// that at each depth the *prune* frontier claims vertices before the label
// frontier expands. A vertex v at depth d+1 is therefore labelled iff
// *no* shortest path from the root to v passes through another landmark
// (Lemma 3.7): if any parent of v on a shortest path is pruned (or is a
// landmark), the prune frontier reaches v first and v stays unlabelled.
//
// Labelling stops when the label frontier dies out, but the prune-side
// expansion keeps running until every landmark has been seen so the
// highway row is computed in the same pass ("we can indeed compute the
// distances δH ... along with Algorithm 1", Section 3.2).
//
// Levels run top-down or bottom-up per the direction-optimizing
// heuristics (see internal/bfs). A bottom-up level scans every unvisited
// vertex's neighbor range against the two frontier bitmaps; "prune
// neighbor wins over label neighbor" replaces the prune-first queue
// ordering, claiming exactly the same vertex set. Entries within a level
// are then emitted in vertex order rather than discovery order, which is
// invisible in the assembled index: each vertex carries at most one entry
// per landmark, and assemble orders entries by (vertex, rank) alone. The
// index bytes are therefore identical for every direction — pinned by
// TestBuildDirectionsByteIdentical and the golden tiny.hl2 fixture.
func prunedBFS(g *graph.Graph, root int32, rankOf []int32, k int, sc *buildScratch, hwRow []int32, dir Direction, stats *bfs.TraversalStats) []labelPair {
	off, tgt := g.CSR()
	n := g.NumVertices()
	unvis := sc.unvis
	unvis.FillOnes(n)
	lSeen, lNext := sc.labelSeen, sc.labelNext
	pSeen, pNext := sc.pruneSeen, sc.pruneNext
	lSeen.ClearAll()
	pSeen.ClearAll()

	var out []labelPair
	labelF := append(sc.labelF[:0], root)
	pruneF := sc.pruneF[:0]
	unvis.Unset(root)
	lSeen.Set(root)
	hwRow[rankOf[root]] = 0
	foundLm := 1

	frontEdges := off[root+1] - off[root]    // Σ deg over both frontiers
	remEdges := int64(len(tgt)) - frontEdges // Σ deg over unvisited vertices
	bottomUp := false

	for d := int32(0); len(labelF) > 0 || (foundLm < k && len(pruneF) > 0); d++ {
		switch dir {
		case DirectionTopDown:
			bottomUp = false
		case DirectionBottomUp:
			bottomUp = true
		default:
			if !bottomUp {
				bottomUp = frontEdges > remEdges/bfs.AlphaDOpt
			} else {
				bottomUp = len(labelF)+len(pruneF) > n/bfs.BetaDOpt
			}
		}
		nextL := sc.nextL[:0]
		nextP := sc.nextP[:0]
		var scanned, nextEdges int64
		if bottomUp {
			switch {
			case len(labelF) == 0:
				// Prune-only phase (labels died out, still completing the
				// highway row): one probe, first hit claims the vertex.
				// These are exactly the heavy saturated levels, so this
				// single-probe loop is the construction hot spot.
				for wi, w := range unvis {
					for w != 0 {
						v := int32(wi<<6 | bits.TrailingZeros64(w))
						w &= w - 1
						lo, hi := off[v], off[v+1]
						for _, u := range tgt[lo:hi] {
							scanned++
							if pSeen.Get(u) {
								unvis.Unset(v)
								pNext.Set(v)
								nextEdges += hi - lo
								if r := rankOf[v]; r >= 0 {
									hwRow[r] = d + 1
									foundLm++
								}
								nextP = append(nextP, v)
								break
							}
						}
					}
				}
			case len(pruneF) == 0:
				// Label-only level (no pruned vertex yet): one probe;
				// hits are labelled unless they are landmarks.
				for wi, w := range unvis {
					for w != 0 {
						v := int32(wi<<6 | bits.TrailingZeros64(w))
						w &= w - 1
						lo, hi := off[v], off[v+1]
						for _, u := range tgt[lo:hi] {
							scanned++
							if lSeen.Get(u) {
								unvis.Unset(v)
								nextEdges += hi - lo
								if r := rankOf[v]; r >= 0 {
									hwRow[r] = d + 1
									foundLm++
									pNext.Set(v)
									nextP = append(nextP, v)
								} else {
									lNext.Set(v)
									nextL = append(nextL, v)
									out = append(out, labelPair{v: v, d: d + 1})
								}
								break
							}
						}
					}
				}
			default:
				for wi, w := range unvis {
					for w != 0 {
						v := int32(wi<<6 | bits.TrailingZeros64(w))
						w &= w - 1
						// hasP dominates: any pruned (or landmark) parent
						// on a shortest path claims v for the prune side,
						// mirroring the prune-first ordering of the
						// top-down level.
						hasP, hasL := false, false
						lo, hi := off[v], off[v+1]
						for _, u := range tgt[lo:hi] {
							scanned++
							if pSeen.Get(u) {
								hasP = true
								break
							}
							if !hasL && lSeen.Get(u) {
								hasL = true
							}
						}
						if !hasP && !hasL {
							continue
						}
						unvis.Unset(v)
						nextEdges += hi - lo
						if r := rankOf[v]; r >= 0 {
							hwRow[r] = d + 1
							foundLm++
							pNext.Set(v)
							nextP = append(nextP, v)
						} else if hasP {
							pNext.Set(v)
							nextP = append(nextP, v)
						} else {
							lNext.Set(v)
							nextL = append(nextL, v)
							out = append(out, labelPair{v: v, d: d + 1})
						}
					}
				}
			}
			// Commit the sweep's claims into the side-membership bitmaps.
			pSeen.Absorb(pNext)
			lSeen.Absorb(lNext)
			if stats != nil {
				stats.BottomUpLevels++
				stats.EdgesBottomUp += scanned
			}
		} else {
			// Prune frontier first: pruned parents capture their children
			// before the label frontier can label them.
			for _, u := range pruneF {
				lo, hi := off[u], off[u+1]
				scanned += hi - lo
				for _, v := range tgt[lo:hi] {
					if !unvis.Get(v) {
						continue
					}
					unvis.Unset(v)
					pSeen.Set(v)
					nextEdges += off[v+1] - off[v]
					if r := rankOf[v]; r >= 0 {
						hwRow[r] = d + 1
						foundLm++
					}
					nextP = append(nextP, v)
				}
			}
			for _, u := range labelF {
				lo, hi := off[u], off[u+1]
				scanned += hi - lo
				for _, v := range tgt[lo:hi] {
					if !unvis.Get(v) {
						continue
					}
					unvis.Unset(v)
					nextEdges += off[v+1] - off[v]
					if r := rankOf[v]; r >= 0 {
						hwRow[r] = d + 1
						foundLm++
						pSeen.Set(v)
						nextP = append(nextP, v)
					} else {
						lSeen.Set(v)
						nextL = append(nextL, v)
						out = append(out, labelPair{v: v, d: d + 1})
					}
				}
			}
			if stats != nil {
				stats.TopDownLevels++
				stats.EdgesTopDown += scanned
			}
		}
		remEdges -= nextEdges
		frontEdges = nextEdges
		// Rotate: the filled next buffers become the frontiers, and the
		// old frontier buffers are handed back to the scratch as spares,
		// keeping all four buffers distinct across iterations and calls.
		labelF, sc.nextL = nextL, labelF[:0]
		pruneF, sc.nextP = nextP, pruneF[:0]
	}
	// Leave scratch fields pointing at the most recently used buffers.
	sc.labelF, sc.pruneF = labelF, pruneF
	return out
}

// assemble packs per-landmark label rows into the flat CSR index.
// Iterating ranks in ascending order makes every vertex's label sorted by
// rank, so sequential and parallel builds produce identical indexes.
func assemble(g *graph.Graph, landmarks []int32, rankOf []int32, isLandmark []bool, highway []int32, rows [][]labelPair) *Index {
	n := g.NumVertices()
	counts := make([]int64, n+1)
	for _, row := range rows {
		for _, p := range row {
			counts[p.v+1]++
		}
	}
	off := make([]int64, n+1)
	for v := 1; v <= n; v++ {
		off[v] = off[v-1] + counts[v]
	}
	total := off[n]
	ix := &Index{
		g:          g,
		landmarks:  landmarks,
		rankOf:     rankOf,
		isLandmark: isLandmark,
		highway:    highway,
		labelOff:   off,
		labelRank:  make([]int32, total),
		labelDist:  make([]int32, total),
	}
	cursor := make([]int64, n)
	copy(cursor, off[:n])
	for r, row := range rows {
		for _, p := range row {
			pos := cursor[p.v]
			cursor[p.v]++
			ix.labelRank[pos] = int32(r)
			ix.labelDist[pos] = p.d
		}
	}
	return ix
}
