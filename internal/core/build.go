package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"highway/internal/graph"
)

// Options configures index construction.
type Options struct {
	// Workers is the number of concurrent pruned BFSs (the paper's HL-P,
	// Section 5.1). 0 selects runtime.GOMAXPROCS(0); 1 is the sequential
	// HL of Algorithm 1. Because the labelling is deterministic
	// (Lemma 3.11), every worker count produces an identical index.
	Workers int
}

// Build constructs the highway cover distance labelling for the given
// landmark set sequentially (the paper's HL).
func Build(g *graph.Graph, landmarks []int32) (*Index, error) {
	return BuildOpts(context.Background(), g, landmarks, Options{Workers: 1})
}

// BuildParallel constructs the labelling with one pruned BFS per landmark
// running concurrently (the paper's HL-P).
func BuildParallel(g *graph.Graph, landmarks []int32) (*Index, error) {
	return BuildOpts(context.Background(), g, landmarks, Options{})
}

// BuildOpts constructs the labelling with full control. The context is
// checked between pruned BFSs; cancellation returns ctx.Err() (used by the
// bench harness to reproduce the paper's DNF budgets).
func BuildOpts(ctx context.Context, g *graph.Graph, landmarks []int32, opt Options) (*Index, error) {
	k := len(landmarks)
	if k == 0 {
		return nil, fmt.Errorf("core: no landmarks")
	}
	if k > MaxLandmarks {
		return nil, fmt.Errorf("core: %d landmarks exceeds MaxLandmarks=%d", k, MaxLandmarks)
	}
	n := g.NumVertices()
	rankOf := make([]int32, n)
	for i := range rankOf {
		rankOf[i] = -1
	}
	isLandmark := make([]bool, n)
	for r, v := range landmarks {
		if v < 0 || int(v) >= n {
			return nil, fmt.Errorf("core: landmark %d out of range [0,%d)", v, n)
		}
		if rankOf[v] >= 0 {
			return nil, fmt.Errorf("core: duplicate landmark %d", v)
		}
		rankOf[v] = int32(r)
		isLandmark[v] = true
	}

	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > k {
		workers = k
	}

	rows := make([][]labelPair, k) // labels discovered by each landmark's BFS
	highway := make([]int32, k*k)  // filled row by row
	for i := range highway {
		highway[i] = Infinity
	}

	if workers == 1 {
		sc := newBuildScratch(n)
		for r := 0; r < k; r++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			rows[r] = prunedBFS(g, landmarks[r], rankOf, k, sc, highway[r*k:(r+1)*k])
		}
	} else {
		work := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				sc := newBuildScratch(n)
				for r := range work {
					rows[r] = prunedBFS(g, landmarks[r], rankOf, k, sc, highway[r*k:(r+1)*k])
				}
			}()
		}
		var err error
	dispatch:
		for r := 0; r < k; r++ {
			select {
			case work <- r:
			case <-ctx.Done():
				err = ctx.Err()
				break dispatch
			}
		}
		close(work)
		wg.Wait()
		if err != nil {
			return nil, err
		}
	}

	return assemble(g, landmarks, rankOf, isLandmark, highway, rows), nil
}

// labelPair is one label entry produced by a pruned BFS: vertex v receives
// the root landmark at distance d.
type labelPair struct {
	v int32
	d int32
}

// buildScratch holds reusable pruned-BFS state.
type buildScratch struct {
	visited []uint32 // epoch marks
	epoch   uint32
	labelF  []int32 // label frontier (Qlabel at the current depth)
	pruneF  []int32 // prune frontier (Qprune at the current depth)
	nextL   []int32
	nextP   []int32
}

func newBuildScratch(n int) *buildScratch {
	return &buildScratch{
		visited: make([]uint32, n),
		labelF:  make([]int32, 0, 1024),
		pruneF:  make([]int32, 0, 1024),
		nextL:   make([]int32, 0, 1024),
		nextP:   make([]int32, 0, 1024),
	}
}

// prunedBFS is Algorithm 1's pruned BFS from one landmark root. It returns
// the label entries (v, d) it generates, in BFS discovery order, and fills
// hwRow with the distances from root to every landmark rank (Infinity
// where unreachable).
//
// The two frontiers follow the paper exactly, with the crucial ordering
// that at each depth the *prune* frontier claims vertices before the label
// frontier expands. A vertex v at depth d+1 is therefore labelled iff
// *no* shortest path from the root to v passes through another landmark
// (Lemma 3.7): if any parent of v on a shortest path is pruned (or is a
// landmark), the prune frontier reaches v first and v stays unlabelled.
//
// Labelling stops when the label frontier dies out, but the prune-side
// expansion keeps running until every landmark has been seen so the
// highway row is computed in the same pass ("we can indeed compute the
// distances δH ... along with Algorithm 1", Section 3.2).
func prunedBFS(g *graph.Graph, root int32, rankOf []int32, k int, sc *buildScratch, hwRow []int32) []labelPair {
	sc.epoch++
	if sc.epoch == 0 {
		clear(sc.visited)
		sc.epoch = 1
	}
	epoch := sc.epoch

	var out []labelPair
	labelF := append(sc.labelF[:0], root)
	pruneF := sc.pruneF[:0]
	sc.visited[root] = epoch
	hwRow[rankOf[root]] = 0
	foundLm := 1

	for d := int32(0); len(labelF) > 0 || (foundLm < k && len(pruneF) > 0); d++ {
		nextL := sc.nextL[:0]
		nextP := sc.nextP[:0]
		// Prune frontier first: pruned parents capture their children
		// before the label frontier can label them.
		for _, u := range pruneF {
			for _, v := range g.Neighbors(u) {
				if sc.visited[v] == epoch {
					continue
				}
				sc.visited[v] = epoch
				if r := rankOf[v]; r >= 0 {
					hwRow[r] = d + 1
					foundLm++
				}
				nextP = append(nextP, v)
			}
		}
		for _, u := range labelF {
			for _, v := range g.Neighbors(u) {
				if sc.visited[v] == epoch {
					continue
				}
				sc.visited[v] = epoch
				if r := rankOf[v]; r >= 0 {
					hwRow[r] = d + 1
					foundLm++
					nextP = append(nextP, v)
				} else {
					nextL = append(nextL, v)
					out = append(out, labelPair{v: v, d: d + 1})
				}
			}
		}
		// Rotate: the filled next buffers become the frontiers, and the
		// old frontier buffers are handed back to the scratch as spares,
		// keeping all four buffers distinct across iterations and calls.
		labelF, sc.nextL = nextL, labelF[:0]
		pruneF, sc.nextP = nextP, pruneF[:0]
	}
	// Leave scratch fields pointing at the most recently used buffers.
	sc.labelF, sc.pruneF = labelF, pruneF
	return out
}

// assemble packs per-landmark label rows into the flat CSR index.
// Iterating ranks in ascending order makes every vertex's label sorted by
// rank, so sequential and parallel builds produce identical indexes.
func assemble(g *graph.Graph, landmarks []int32, rankOf []int32, isLandmark []bool, highway []int32, rows [][]labelPair) *Index {
	n := g.NumVertices()
	counts := make([]int64, n+1)
	for _, row := range rows {
		for _, p := range row {
			counts[p.v+1]++
		}
	}
	off := make([]int64, n+1)
	for v := 1; v <= n; v++ {
		off[v] = off[v-1] + counts[v]
	}
	total := off[n]
	ix := &Index{
		g:          g,
		landmarks:  landmarks,
		rankOf:     rankOf,
		isLandmark: isLandmark,
		highway:    highway,
		labelOff:   off,
		labelRank:  make([]int32, total),
		labelDist:  make([]int32, total),
	}
	cursor := make([]int64, n)
	copy(cursor, off[:n])
	for r, row := range rows {
		for _, p := range row {
			pos := cursor[p.v]
			cursor[p.v]++
			ix.labelRank[pos] = int32(r)
			ix.labelDist[pos] = p.d
		}
	}
	return ix
}
