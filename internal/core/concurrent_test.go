package core

import (
	"sync"
	"testing"

	"highway/internal/gen"
	"highway/internal/landmark"
)

// TestConcurrentDistance hammers one shared Index from many goroutines
// through both the pooled Index.Distance path and per-goroutine
// Searchers, checking every answer against a single-threaded baseline.
// Run with -race: it is the guard for the serving subsystem's claim
// that an Index tolerates unlimited concurrent readers.
func TestConcurrentDistance(t *testing.T) {
	g := gen.BarabasiAlbert(2000, 3, 7)
	lms, err := landmark.Select(g, landmark.Options{K: 16, Strategy: landmark.Degree})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := BuildParallel(g, lms)
	if err != nil {
		t.Fatal(err)
	}

	const queries = 512
	n := int32(g.NumVertices())
	type q struct{ s, t, want int32 }
	qs := make([]q, queries)
	base := ix.Searcher()
	for i := range qs {
		s := int32(i*37) % n
		tt := int32(i*101+13) % n
		qs[i] = q{s, tt, base.Distance(s, tt)}
	}

	const goroutines = 16
	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	for gi := 0; gi < goroutines; gi++ {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			// Half the goroutines use the pooled path, half a private
			// Searcher — the two ways the serving layer issues queries.
			var sr *Searcher
			if gi%2 == 1 {
				sr = ix.Searcher()
			}
			for r := 0; r < 4; r++ {
				for _, query := range qs {
					var got int32
					if sr != nil {
						got = sr.Distance(query.s, query.t)
					} else {
						got = ix.Distance(query.s, query.t)
					}
					if got != query.want {
						errs <- "concurrent Distance mismatch"
						return
					}
				}
			}
		}(gi)
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Fatal(msg)
	}
}
