package core

import (
	"bytes"
	"context"
	"math/rand"
	"testing"

	"highway/internal/bfs"
	"highway/internal/gen"
	"highway/internal/graph"
	"highway/internal/oracle"
)

// TestPaperFigure2Labels verifies Algorithm 1 reproduces the exact label
// table of the paper's Figure 2(c) on the running-example graph, with
// landmarks {1,5,9} (ids 0,4,8).
func TestPaperFigure2Labels(t *testing.T) {
	g := gen.PaperFigure2()
	ix, err := Build(g, gen.PaperLandmarks())
	if err != nil {
		t.Fatal(err)
	}
	// want[v] lists (landmark vertex 1-based, distance) per Figure 2(c).
	want := map[int32][][2]int32{
		1:  {{5, 1}, {9, 2}}, // vertex 2
		2:  {{5, 1}},         // vertex 3
		3:  {{1, 1}},         // vertex 4
		5:  {{9, 1}},         // vertex 6
		6:  {{5, 2}, {9, 1}}, // vertex 7
		7:  {{5, 1}},         // vertex 8
		9:  {{9, 1}},         // vertex 10
		10: {{1, 1}},         // vertex 11
		11: {{5, 1}},         // vertex 12
		12: {{1, 1}},         // vertex 13
		13: {{1, 1}},         // vertex 14
	}
	lmVertex := gen.PaperLandmarks() // rank -> vertex id
	for v := int32(0); v < 14; v++ {
		ranks, dists := ix.Label(v)
		entries := want[v]
		if len(ranks) != len(entries) {
			t.Fatalf("L(%d): got %d entries, want %d", v+1, len(ranks), len(entries))
		}
		for i := range ranks {
			gotLm := lmVertex[ranks[i]] + 1 // back to 1-based
			if gotLm != entries[i][0] || dists[i] != entries[i][1] {
				t.Errorf("L(%d)[%d] = (%d,%d), want (%d,%d)",
					v+1, i, gotLm, dists[i], entries[i][0], entries[i][1])
			}
		}
	}
	// Figure 3: total labelling size LS = 13.
	if ix.NumEntries() != 13 {
		t.Fatalf("LS = %d, want 13 (Figure 3)", ix.NumEntries())
	}
	// Highway distances used in Example 4.2: δH(5,1)=1, δH(9,1)=1; plus
	// d(5,9)=2 via landmark 1.
	if d := ix.Highway(4, 0); d != 1 {
		t.Errorf("δH(5,1) = %d, want 1", d)
	}
	if d := ix.Highway(8, 0); d != 1 {
		t.Errorf("δH(9,1) = %d, want 1", d)
	}
	if d := ix.Highway(4, 8); d != 2 {
		t.Errorf("δH(5,9) = %d, want 2", d)
	}
}

// TestPaperExample42UpperBound checks Example 4.2: the upper bound between
// vertices 2 and 11 (ids 1 and 10) is 3.
func TestPaperExample42UpperBound(t *testing.T) {
	g := gen.PaperFigure2()
	ix, err := Build(g, gen.PaperLandmarks())
	if err != nil {
		t.Fatal(err)
	}
	if ub := ix.UpperBound(1, 10); ub != 3 {
		t.Fatalf("d⊤(2,11) = %d, want 3", ub)
	}
	// And the exact distance is also 3 (Example 4.3).
	if d := ix.Distance(1, 10); d != 3 {
		t.Fatalf("d(2,11) = %d, want 3", d)
	}
}

// TestPaperFigure2AllPairs exhaustively checks HL against BFS on the
// running example.
func TestPaperFigure2AllPairs(t *testing.T) {
	g := gen.PaperFigure2()
	ix, err := Build(g, gen.PaperLandmarks())
	if err != nil {
		t.Fatal(err)
	}
	checkAllPairs(t, g, ix)
}

// checkAllPairs verifies the index against BFS ground truth through the
// shared differential harness.
func checkAllPairs(t *testing.T, g *graph.Graph, ix *Index) {
	t.Helper()
	oracle.CheckAllPairs(t, g, ix.NewSearcher())
}

// TestExhaustiveSmallGraphs checks HL == BFS on every pair of the shared
// corner-case suite, across landmark counts.
func TestExhaustiveSmallGraphs(t *testing.T) {
	for _, k := range []int{1, 2, 3} {
		oracle.CheckCases(t, func(t *testing.T, g *graph.Graph) oracle.Oracle {
			ix, err := Build(g, g.DegreeOrder()[:k])
			if err != nil {
				t.Fatalf("k=%d: %v", k, err)
			}
			return ix.NewSearcher()
		})
	}
}

// TestRandomGraphsProperty is the main correctness property: on random
// graphs of every family, HL distances equal BFS distances.
func TestRandomGraphsProperty(t *testing.T) {
	oracle.CheckRandom(t, 40, 60, func(seed int64, g *graph.Graph) (oracle.Oracle, error) {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + rng.Intn(8)
		if k > g.NumVertices() {
			k = g.NumVertices()
		}
		ix, err := Build(g, g.DegreeOrder()[:k])
		if err != nil {
			return nil, err
		}
		return ix.NewSearcher(), nil
	})
}

// TestOrderIndependence verifies Lemma 3.11: permuting the landmark order
// yields the same labelling (same entries per vertex, same total size).
func TestOrderIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := gen.BarabasiAlbert(400, 3, 9)
	lm := g.DegreeOrder()[:10]
	ref, err := Build(g, lm)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 5; trial++ {
		perm := make([]int32, len(lm))
		copy(perm, lm)
		rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		ix, err := Build(g, perm)
		if err != nil {
			t.Fatal(err)
		}
		if ix.NumEntries() != ref.NumEntries() {
			t.Fatalf("permuted landmark order changed labelling size: %d vs %d",
				ix.NumEntries(), ref.NumEntries())
		}
		// Entry sets per vertex must be identical up to rank renaming.
		for v := int32(0); v < int32(g.NumVertices()); v++ {
			if !sameEntrySet(ref, ix, v) {
				t.Fatalf("vertex %d: label differs across landmark orders", v)
			}
		}
	}
}

// sameEntrySet compares labels of v in two indexes by landmark *vertex id*
// (ranks differ when the landmark order is permuted).
func sameEntrySet(a, b *Index, v int32) bool {
	ra, da := a.Label(v)
	rb, db := b.Label(v)
	if len(ra) != len(rb) {
		return false
	}
	ma := map[int32]int32{}
	for i := range ra {
		ma[a.landmarks[ra[i]]] = da[i]
	}
	for i := range rb {
		if d, ok := ma[b.landmarks[rb[i]]]; !ok || d != db[i] {
			return false
		}
	}
	return true
}

// TestParallelMatchesSequential verifies HL-P determinism (Lemma 3.11):
// any worker count AND any traversal direction produces an identical
// index. The direction sweep pins the direction-optimizing engine to the
// top-down reference: bottom-up levels must claim exactly the same label
// and prune sets.
func TestParallelMatchesSequential(t *testing.T) {
	g := gen.BarabasiAlbert(600, 4, 17)
	lm := g.DegreeOrder()[:20]
	seq, err := Build(g, lm)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, 3, 8} {
		for _, dir := range []Direction{DirectionAuto, DirectionTopDown, DirectionBottomUp} {
			par, err := BuildOpts(context.Background(), g, lm, Options{Workers: workers, Direction: dir})
			if err != nil {
				t.Fatal(err)
			}
			if !indexesIdentical(seq, par) {
				t.Fatalf("workers=%d direction=%d produced a different index", workers, dir)
			}
		}
	}
}

// TestBuildDirectionsByteIdentical pins the acceptance contract at the
// serialization layer: sequential, parallel and every traversal
// direction produce byte-identical v2 index files.
func TestBuildDirectionsByteIdentical(t *testing.T) {
	g := gen.BarabasiAlbert(900, 5, 23)
	lm := g.DegreeOrder()[:20]
	var want []byte
	for _, cfg := range []Options{
		{Workers: 1, Direction: DirectionTopDown}, // pre-engine reference
		{Workers: 1, Direction: DirectionAuto},
		{Workers: 1, Direction: DirectionBottomUp},
		{Workers: 4, Direction: DirectionAuto},
		{Workers: 0, Direction: DirectionBottomUp},
	} {
		ix, err := BuildOpts(context.Background(), g, lm, cfg)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := ix.WriteFormat(&buf, FormatV2); err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = buf.Bytes()
			continue
		}
		if !bytes.Equal(want, buf.Bytes()) {
			t.Fatalf("workers=%d direction=%d: v2 bytes differ from reference build", cfg.Workers, cfg.Direction)
		}
	}
}

// TestBuildStats verifies the traversal counters: a forced-top-down
// build reports no bottom-up work, a forced-bottom-up build no top-down
// work, and both report the same level totals.
func TestBuildStats(t *testing.T) {
	g := gen.BarabasiAlbert(500, 4, 3)
	lm := g.DegreeOrder()[:10]
	td, err := BuildOpts(context.Background(), g, lm, Options{Workers: 1, Direction: DirectionTopDown})
	if err != nil {
		t.Fatal(err)
	}
	bu, err := BuildOpts(context.Background(), g, lm, Options{Workers: 1, Direction: DirectionBottomUp})
	if err != nil {
		t.Fatal(err)
	}
	ts, bs := td.BuildStats().Traversal, bu.BuildStats().Traversal
	if ts.BottomUpLevels != 0 || ts.EdgesBottomUp != 0 || ts.TopDownLevels == 0 {
		t.Fatalf("top-down build stats: %+v", ts)
	}
	if bs.TopDownLevels != 0 || bs.EdgesTopDown != 0 || bs.BottomUpLevels == 0 {
		t.Fatalf("bottom-up build stats: %+v", bs)
	}
	if ts.Levels() != bs.Levels() {
		t.Fatalf("level totals differ: top-down %d vs bottom-up %d", ts.Levels(), bs.Levels())
	}
	if td.BuildStats().Workers != 1 {
		t.Fatalf("workers = %d, want 1", td.BuildStats().Workers)
	}
}

// TestBuildProgress verifies the Progress callback fires once per
// landmark with a monotonically complete count, sequentially and in
// parallel.
func TestBuildProgress(t *testing.T) {
	g := gen.BarabasiAlbert(300, 3, 9)
	lm := g.DegreeOrder()[:12]
	for _, workers := range []int{1, 4} {
		var calls int
		last := 0
		_, err := BuildOpts(context.Background(), g, lm, Options{
			Workers: workers,
			Progress: func(done, total int) {
				calls++
				if total != len(lm) {
					t.Fatalf("total = %d, want %d", total, len(lm))
				}
				if done != last+1 {
					t.Fatalf("done = %d after %d", done, last)
				}
				last = done
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		if calls != len(lm) {
			t.Fatalf("workers=%d: %d progress calls, want %d", workers, calls, len(lm))
		}
	}
}

func indexesIdentical(a, b *Index) bool {
	if a.NumEntries() != b.NumEntries() || len(a.highway) != len(b.highway) {
		return false
	}
	for i := range a.highway {
		if a.highway[i] != b.highway[i] {
			return false
		}
	}
	for i := range a.labelOff {
		if a.labelOff[i] != b.labelOff[i] {
			return false
		}
	}
	for i := range a.labelRank {
		if a.labelRank[i] != b.labelRank[i] || a.labelDist[i] != b.labelDist[i] {
			return false
		}
	}
	return true
}

// TestMinimality verifies Lemma 3.7 in both directions on random graphs:
// (r,v) is labelled iff no other landmark lies on ANY shortest r-v path.
func TestMinimality(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 8; trial++ {
		g := gen.ErdosRenyi(70, 180, int64(trial))
		k := 2 + rng.Intn(5)
		lm := g.DegreeOrder()[:k]
		ix, err := Build(g, lm)
		if err != nil {
			t.Fatal(err)
		}
		// Full distance arrays from every landmark.
		distFrom := make([][]int32, k)
		for r, l := range lm {
			distFrom[r] = bfs.Distances(g, l)
		}
		isLm := map[int32]bool{}
		for _, l := range lm {
			isLm[l] = true
		}
		for v := int32(0); v < int32(g.NumVertices()); v++ {
			if isLm[v] {
				if ix.LabelSize(v) != 0 {
					t.Fatalf("landmark %d has a label", v)
				}
				continue
			}
			ranks, dists := ix.Label(v)
			labelled := map[int32]int32{}
			for i := range ranks {
				labelled[ranks[i]] = dists[i]
			}
			for r := 0; r < k; r++ {
				d := distFrom[r][v]
				// Another landmark r2 lies on a shortest path from lm[r]
				// to v iff d(r,r2) + d(r2,v) == d(r,v).
				blocked := false
				for r2 := 0; r2 < k; r2++ {
					if r2 == r {
						continue
					}
					if distFrom[r][lm[r2]] >= 0 && distFrom[r2][v] >= 0 &&
						distFrom[r][lm[r2]]+distFrom[r2][v] == d {
						blocked = true
						break
					}
				}
				got, has := labelled[int32(r)]
				if d == bfs.Unreachable {
					if has {
						t.Fatalf("vertex %d labelled by unreachable landmark rank %d", v, r)
					}
					continue
				}
				if blocked && has {
					t.Fatalf("vertex %d: entry for rank %d violates minimality", v, r)
				}
				if !blocked && !has {
					t.Fatalf("vertex %d: missing entry for rank %d (breaks highway cover)", v, r)
				}
				if has && got != d {
					t.Fatalf("vertex %d rank %d: stored %d, want %d", v, r, got, d)
				}
			}
		}
	}
}

// TestUpperBoundProperties: d⊤ ≥ d always; d⊤ == d iff a shortest path
// intersects R (Lemma 4.4 / pair coverage definition).
func TestUpperBoundProperties(t *testing.T) {
	g := gen.BarabasiAlbert(300, 3, 23)
	lm := g.DegreeOrder()[:10]
	ix, err := Build(g, lm)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	distFrom := make([][]int32, len(lm))
	for r, l := range lm {
		distFrom[r] = bfs.Distances(g, l)
	}
	for trial := 0; trial < 300; trial++ {
		s := int32(rng.Intn(g.NumVertices()))
		u := int32(rng.Intn(g.NumVertices()))
		d := bfs.Dist(g, s, u)
		ub := ix.UpperBound(s, u)
		if d == bfs.Unreachable {
			continue
		}
		if ub < d {
			t.Fatalf("d⊤(%d,%d) = %d < d = %d", s, u, ub, d)
		}
		covered := false
		for r := range lm {
			if distFrom[r][s]+distFrom[r][u] == d {
				covered = true
				break
			}
		}
		if covered && ub != d {
			t.Fatalf("covered pair (%d,%d): d⊤ = %d, want exact %d", s, u, ub, d)
		}
		if !covered && ub == d {
			t.Fatalf("uncovered pair (%d,%d) has exact bound; coverage logic suspect", s, u)
		}
	}
}

// TestLandmarkEndpoints: queries where one or both endpoints are landmarks
// are answered exactly by labels + highway.
func TestLandmarkEndpoints(t *testing.T) {
	g := gen.BarabasiAlbert(200, 3, 31)
	lm := g.DegreeOrder()[:8]
	ix, err := Build(g, lm)
	if err != nil {
		t.Fatal(err)
	}
	sr := ix.NewSearcher()
	for _, l := range lm {
		want := bfs.Distances(g, l)
		for v := int32(0); v < int32(g.NumVertices()); v++ {
			w := want[v]
			if w == bfs.Unreachable {
				w = Infinity
			}
			if got := sr.Distance(l, v); got != w {
				t.Fatalf("Distance(lm %d, %d) = %d, want %d", l, v, got, w)
			}
			if got := sr.Distance(v, l); got != w {
				t.Fatalf("Distance(%d, lm %d) = %d, want %d", v, l, got, w)
			}
		}
	}
}

// TestDisconnected covers components with and without landmarks.
func TestDisconnected(t *testing.T) {
	// Component A: star 0..4 (center 0); component B: path 5-6-7.
	g := graph.MustFromEdges(8, [][2]int32{{0, 1}, {0, 2}, {0, 3}, {0, 4}, {5, 6}, {6, 7}})
	ix, err := Build(g, []int32{0}) // landmark only in component A
	if err != nil {
		t.Fatal(err)
	}
	sr := ix.NewSearcher()
	if d := sr.Distance(1, 2); d != 2 {
		t.Fatalf("within A: %d, want 2", d)
	}
	if d := sr.Distance(5, 7); d != 2 {
		t.Fatalf("within B (no landmark): %d, want 2", d)
	}
	if d := sr.Distance(1, 5); d != Infinity {
		t.Fatalf("across components: %d, want Infinity", d)
	}
	if d := sr.Distance(0, 7); d != Infinity {
		t.Fatalf("landmark to other component: %d, want Infinity", d)
	}
}

// TestMultiLandmarkComponents places landmarks in two components so the
// highway matrix itself contains Infinity entries.
func TestMultiLandmarkComponents(t *testing.T) {
	g := graph.MustFromEdges(8, [][2]int32{{0, 1}, {1, 2}, {3, 4}, {4, 5}, {5, 6}, {6, 7}})
	ix, err := Build(g, []int32{1, 5})
	if err != nil {
		t.Fatal(err)
	}
	if h := ix.Highway(1, 5); h != Infinity {
		t.Fatalf("cross-component highway = %d, want Infinity", h)
	}
	checkAllPairs(t, g, ix)
}

// TestDistanceOverflow exercises distances beyond the 8-bit disk encoding
// on a path of length 600: stored flat as int32, escaped on serialization.
func TestDistanceOverflow(t *testing.T) {
	g := gen.Path(600)
	ix, err := Build(g, []int32{0})
	if err != nil {
		t.Fatal(err)
	}
	if ix.numOverflow() == 0 {
		t.Fatal("expected overflow entries on a 600-path")
	}
	sr := ix.NewSearcher()
	if d := sr.Distance(0, 599); d != 599 {
		t.Fatalf("d(0,599) = %d, want 599", d)
	}
	if d := sr.Distance(1, 599); d != 598 {
		t.Fatalf("d(1,599) = %d, want 598", d)
	}
	// The far endpoint's label stores the full distance, undamped by the
	// byte encoding.
	_, dists := ix.Label(599)
	if len(dists) != 1 || dists[0] != 599 {
		t.Fatalf("L(599) = %v, want [599]", dists)
	}
}

func TestBuildErrors(t *testing.T) {
	g := gen.Path(5)
	if _, err := Build(g, nil); err == nil {
		t.Error("empty landmark set accepted")
	}
	if _, err := Build(g, []int32{0, 0}); err == nil {
		t.Error("duplicate landmark accepted")
	}
	if _, err := Build(g, []int32{99}); err == nil {
		t.Error("out-of-range landmark accepted")
	}
	big := gen.Path(300)
	lm := make([]int32, 256)
	for i := range lm {
		lm[i] = int32(i)
	}
	if _, err := Build(big, lm); err == nil {
		t.Error("256 landmarks accepted (MaxLandmarks=255)")
	}
}

func TestBuildCancellation(t *testing.T) {
	g := gen.BarabasiAlbert(2000, 3, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := BuildOpts(ctx, g, g.DegreeOrder()[:20], Options{Workers: 1}); err == nil {
		t.Error("sequential build ignored cancelled context")
	}
	if _, err := BuildOpts(ctx, g, g.DegreeOrder()[:20], Options{Workers: 4}); err == nil {
		t.Error("parallel build ignored cancelled context")
	}
}

// TestTriangleInequality samples triples and checks Eq. 1 and Eq. 2 hold
// for oracle distances.
func TestTriangleInequality(t *testing.T) {
	g := gen.RMAT(9, 6, 0.57, 0.19, 0.19, 4)
	lcc, _ := graphLargestComponent(g)
	ix, err := Build(lcc, lcc.DegreeOrder()[:10])
	if err != nil {
		t.Fatal(err)
	}
	sr := ix.NewSearcher()
	rng := rand.New(rand.NewSource(8))
	n := lcc.NumVertices()
	for trial := 0; trial < 200; trial++ {
		s := int32(rng.Intn(n))
		u := int32(rng.Intn(n))
		w := int32(rng.Intn(n))
		dsu := sr.Distance(s, u)
		dsw := sr.Distance(s, w)
		dwu := sr.Distance(w, u)
		if dsu > dsw+dwu {
			t.Fatalf("triangle violated: d(%d,%d)=%d > %d+%d", s, u, dsu, dsw, dwu)
		}
		diff := dsw - dwu
		if diff < 0 {
			diff = -diff
		}
		if dsu < diff {
			t.Fatalf("reverse triangle violated: d(%d,%d)=%d < |%d-%d|", s, u, dsu, dsw, dwu)
		}
	}
}

func graphLargestComponent(g *graph.Graph) (*graph.Graph, []int32) {
	return graph.LargestComponent(g)
}

// TestStatsAndSizes sanity-checks the accounting helpers.
func TestStatsAndSizes(t *testing.T) {
	g := gen.PaperFigure2()
	ix, err := Build(g, gen.PaperLandmarks())
	if err != nil {
		t.Fatal(err)
	}
	st := ix.Stats()
	if st.NumEntries != 13 || st.NumLandmarks != 3 || st.NumVertices != 14 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Bytes32 != 13*5+9*4 {
		t.Fatalf("Bytes32 = %d", st.Bytes32)
	}
	if st.Bytes8 != 13*2+9*4 {
		t.Fatalf("Bytes8 = %d", st.Bytes8)
	}
	if ix.AvgLabelSize() != 13.0/11.0 {
		t.Fatalf("ALS = %v", ix.AvgLabelSize())
	}
	if st.String() == "" {
		t.Fatal("empty stats string")
	}
	if ix.ActualBytes() <= 0 {
		t.Fatal("ActualBytes not positive")
	}
	if ix.Graph() != g {
		t.Fatal("Graph() accessor broken")
	}
	if !ix.IsLandmark(0) || ix.IsLandmark(1) {
		t.Fatal("IsLandmark wrong")
	}
}

// TestConcurrentQueries runs Index.Distance from many goroutines under the
// race detector.
func TestConcurrentQueries(t *testing.T) {
	g := gen.BarabasiAlbert(500, 3, 77)
	ix, err := BuildParallel(g, g.DegreeOrder()[:10])
	if err != nil {
		t.Fatal(err)
	}
	truth := bfs.Distances(g, 42)
	done := make(chan error, 8)
	for w := 0; w < 8; w++ {
		go func(w int) {
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 200; i++ {
				v := int32(rng.Intn(500))
				if got := ix.Distance(42, v); got != truth[v] {
					done <- errMismatch
					return
				}
			}
			done <- nil
		}(w)
	}
	for w := 0; w < 8; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

var errMismatch = &mismatchError{}

type mismatchError struct{}

func (*mismatchError) Error() string { return "concurrent query mismatch" }
