package core

import (
	"bytes"
	"testing"

	"highway/internal/gen"
	"highway/internal/graph"
)

// fuzzSeedIndex builds a small deterministic index whose serialized bytes
// seed the corpus in both formats.
func fuzzSeedIndex(tb testing.TB) *Index {
	tb.Helper()
	ix, err := Build(gen.PaperFigure2(), gen.PaperLandmarks())
	if err != nil {
		tb.Fatal(err)
	}
	return ix
}

// FuzzLoadIndex: arbitrary bytes must never panic or OOM the loader, for
// either format magic. Successful loads must yield an index whose basic
// operations are safe to call.
func FuzzLoadIndex(f *testing.F) {
	ix := fuzzSeedIndex(f)
	for _, format := range []Format{FormatV1, FormatV2} {
		var buf bytes.Buffer
		if err := ix.WriteFormat(&buf, format); err != nil {
			f.Fatal(err)
		}
		good := buf.Bytes()
		f.Add(good)
		f.Add(good[:len(good)/2])
		// Seed header-mangled variants so the fuzzer starts near the
		// interesting validation branches.
		mangled := append([]byte{}, good...)
		for i := 8; i < 24 && i < len(mangled); i++ {
			mangled[i] ^= 0xFF
		}
		f.Add(mangled)
	}
	f.Add([]byte("HWLIDX01"))
	f.Add([]byte("HWLIDX02"))
	f.Add([]byte("garbage"))

	g := gen.PaperFigure2()
	overflowG := gen.Path(600)
	f.Fuzz(func(t *testing.T, data []byte) {
		// Loading must be total: either an error or a usable index.
		ix, err := Read(bytes.NewReader(data), g)
		if err == nil {
			exerciseIndex(ix)
		}
		// A second graph size exercises the n-mismatch path and the
		// overflow machinery bounds.
		ix2, err := Read(bytes.NewReader(data), overflowG)
		if err == nil {
			exerciseIndex(ix2)
		}
	})
}

// exerciseIndex touches the query and accounting paths of a loaded index:
// none of them may panic regardless of the (validated) contents.
func exerciseIndex(ix *Index) {
	_ = ix.Stats()
	n := int32(ix.Graph().NumVertices())
	sr := ix.NewSearcher()
	for s := int32(0); s < n && s < 4; s++ {
		for t := int32(0); t < n && t < 4; t++ {
			_ = sr.Distance(s, t)
			_ = sr.UpperBound(s, t)
		}
	}
	_ = ix.Distance(0, n-1)
	_ = ix.UpperBound(n-1, 0)
}

// FuzzIndexRoundTrip: for generated indexes across graph families, sizes
// and both formats, Save→Load must reproduce a deep-equal index.
func FuzzIndexRoundTrip(f *testing.F) {
	f.Add(int64(1), uint8(30), uint8(3), false)
	f.Add(int64(2), uint8(80), uint8(7), true)
	f.Add(int64(3), uint8(5), uint8(1), false)
	f.Fuzz(func(t *testing.T, seed int64, nRaw, kRaw uint8, useV1 bool) {
		n := 4 + int(nRaw)%90
		var g *graph.Graph
		switch seed % 3 {
		case 0:
			g = gen.BarabasiAlbert(n, 2, seed)
		case 1:
			g = gen.ErdosRenyi(n, int64(2*n), seed)
		default:
			// Long path: distances overflow the 8-bit disk encoding, so
			// the escape records round-trip too.
			g = gen.Path(280 + n)
		}
		k := 1 + int(kRaw)%8
		if k > g.NumVertices() {
			k = g.NumVertices()
		}
		ix, err := Build(g, g.DegreeOrder()[:k])
		if err != nil {
			t.Skip()
		}
		format := FormatV2
		if useV1 {
			format = FormatV1
		}
		var buf bytes.Buffer
		if err := ix.WriteFormat(&buf, format); err != nil {
			t.Fatalf("write: %v", err)
		}
		ix2, got, err := ReadFormat(bytes.NewReader(buf.Bytes()), g)
		if err != nil {
			t.Fatalf("read back: %v", err)
		}
		if got != format {
			t.Fatalf("format %v decoded as %v", format, got)
		}
		if !indexesIdentical(ix, ix2) {
			t.Fatal("round trip not deep-equal")
		}
		for i := range ix.landmarks {
			if ix.landmarks[i] != ix2.landmarks[i] {
				t.Fatal("landmarks differ after round trip")
			}
		}
	})
}
