package core

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"highway/internal/gen"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden index files")

// goldenIndex is the deterministic fixture behind the golden files: the
// paper's running example with its landmark set {1,5,9}.
func goldenIndex(tb testing.TB) *Index {
	tb.Helper()
	ix, err := Build(gen.PaperFigure2(), gen.PaperLandmarks())
	if err != nil {
		tb.Fatal(err)
	}
	return ix
}

// TestGoldenV2 pins the v2 format bytes: if serialization drifts — field
// order, section ids, checksums, encoding — this fails before any user's
// index files stop loading. Regenerate deliberately with
// `go test ./internal/core -run TestGoldenV2 -update-golden` and call the
// change out in review: it breaks files written by older builds.
func TestGoldenV2(t *testing.T) {
	ix := goldenIndex(t)
	var buf bytes.Buffer
	if err := ix.WriteFormat(&buf, FormatV2); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "tiny.hl2")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden file missing (run with -update-golden to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("v2 serialization drifted from golden file (%d bytes written, %d golden); "+
			"if intentional, regenerate with -update-golden and flag the compatibility break",
			buf.Len(), len(want))
	}

	// The checked-in bytes must also load and answer correctly.
	g := gen.PaperFigure2()
	ix2, f, err := ReadFormat(bytes.NewReader(want), g)
	if err != nil {
		t.Fatal(err)
	}
	if f != FormatV2 {
		t.Fatalf("golden file detected as %v", f)
	}
	if !indexesIdentical(ix, ix2) {
		t.Fatal("golden file decodes to a different index")
	}
	checkAllPairs(t, g, ix2)
}

// TestGoldenV1Compat: testdata/tiny.hl1 was written by the pre-v2 code
// (the original HWLIDX01 writer). It must keep loading verbatim — this is
// the promise that existing on-disk indexes survive the format change.
func TestGoldenV1Compat(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("testdata", "tiny.hl1"))
	if err != nil {
		t.Fatalf("v1 compat fixture missing: %v", err)
	}
	g := gen.PaperFigure2()
	ix, f, err := ReadFormat(bytes.NewReader(raw), g)
	if err != nil {
		t.Fatalf("v1 file written by the old code no longer loads: %v", err)
	}
	if f != FormatV1 {
		t.Fatalf("v1 fixture detected as %v", f)
	}
	if ix.NumEntries() != 13 {
		t.Fatalf("entries = %d, want 13 (Figure 3)", ix.NumEntries())
	}
	checkAllPairs(t, g, ix)

	// The current v1 writer must reproduce the old writer's bytes exactly,
	// so indexes we write as v1 are readable by old binaries too.
	cur := goldenIndex(t)
	var buf bytes.Buffer
	if err := cur.WriteFormat(&buf, FormatV1); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), raw) {
		t.Fatal("v1 writer no longer byte-identical to the original writer")
	}
}
