// Package core implements the paper's primary contribution: the highway
// cover distance labelling (Section 3) and the bounded distance querying
// framework built on it (Section 4), including the optimizations of
// Section 5 (parallel construction over landmarks, 8-bit label
// compression, and the common-landmark query shortcut of Lemma 5.1).
//
// # Overview
//
// Given a set R of landmarks, Build runs one pruned BFS per landmark
// (Algorithm 1). The pruned BFS from landmark r adds the entry
// (r, d(r,v)) to L(v) if and only if no other landmark appears on any
// shortest path between r and v (Lemma 3.7). The landmark-to-landmark
// distances form the highway δH. The resulting labelling is minimal
// (Theorem 3.12) and independent of the order in which landmarks are
// processed (Lemma 3.11), which is why BuildParallel can process
// landmarks concurrently and still produce a byte-identical index.
//
// A query (s,t) computes the upper bound d⊤ = min over label entries of
// δL(ri,s) + δH(ri,rj) + δL(rj,t) (Equation 4; pairs sharing a landmark
// use δL(r,s)+δL(r,t) per Lemma 5.1), then refines it with a
// distance-bounded bidirectional BFS on the sparsified graph G[V\R]
// (Algorithm 2). The minimum of the two is exact (Theorem 4.6).
package core

import (
	"fmt"
	"sync"

	"highway/internal/graph"
	"highway/internal/method"
)

// The highway cover labelling implements the method-agnostic index
// contract (the root package's DistanceIndex) shared by all five
// labellings; see internal/method.
var _ method.DistanceIndex = (*Index)(nil)

// Infinity is the distance reported between disconnected vertices.
const Infinity int32 = -1

// distOverflow marks an 8-bit stored distance (on disk) whose real value
// lives in the overflow section. Complex networks have tiny diameters, so
// in practice the section stays empty; it exists so that the 8-bit disk
// encoding is still exact on adversarial inputs (long paths, grids).
const distOverflow uint8 = 0xFF

// MaxLandmarks bounds the landmark count so ranks fit the paper's 8-bit
// compressed representation ("usually no more than 100 landmarks",
// Section 5.2).
const MaxLandmarks = 255

// Index is a highway cover distance labelling over a graph.
//
// # Label storage
//
// Labels live in a flat structure-of-arrays CSR layout: vertex v's label
// occupies positions labelOff[v]..labelOff[v+1] of the two contiguous
// parallel arrays labelRank and labelDist, sorted by landmark rank within
// each vertex. There are no per-vertex slice headers to chase and no
// per-entry decode branch: distances are stored fully decoded as int32,
// so the query hot path is a branch-light merge over two array ranges.
// The paper's 8-bit compressed representation (ranks and distances in one
// byte each, with an escape table for distances ≥ 255) is an on-disk and
// accounting concept only; see serialize.go and SizeBytes8.
//
// The highway matrix stores exact landmark-to-landmark distances
// row-major; Infinity where disconnected.
//
// # Concurrency
//
// An Index is immutable once Build/BuildParallel/Read returns: label
// arrays, the highway matrix and the landmark arrays are written only
// during single-threaded assembly and never after (the parallel build
// workers fill disjoint per-landmark rows, then one goroutine
// assembles). Every method is therefore safe for unlimited concurrent
// readers. The one mutable field, the internal searcher pool, is a
// sync.Pool touched only by the pooled conveniences Distance, UpperBound
// and Path. Searchers own mutable scratch state: share the Index, never a
// Searcher.
type Index struct {
	g          *graph.Graph
	landmarks  []int32 // rank -> vertex id
	rankOf     []int32 // vertex id -> rank, -1 for non-landmarks
	isLandmark []bool  // len n; the skip mask for Algorithm 2
	highway    []int32 // k*k, row-major; Infinity = unreachable

	// Flat CSR label storage (structure-of-arrays).
	labelOff  []int64 // len n+1; prefix sums of label sizes
	labelRank []int32 // len labelOff[n]; landmark ranks, sorted per vertex
	labelDist []int32 // len labelOff[n]; decoded exact distances

	// built records how BuildOpts constructed this index (zero value for
	// loaded or FromParts indexes). Written once before BuildOpts
	// returns, immutable after.
	built BuildStats

	pool sync.Pool // of *Searcher, for the concurrency-safe conveniences
}

// BuildStats returns the construction statistics of an index built by
// Build/BuildParallel/BuildOpts: worker count and the traversal engine's
// top-down/bottom-up level and edge counters. Indexes obtained by
// loading or FromParts return the zero value.
func (ix *Index) BuildStats() BuildStats { return ix.built }

// Graph returns the underlying graph.
func (ix *Index) Graph() *graph.Graph { return ix.g }

// Landmarks returns the landmark vertex ids by rank. Callers must not
// modify the returned slice.
func (ix *Index) Landmarks() []int32 { return ix.landmarks }

// NumLandmarks returns |R|.
func (ix *Index) NumLandmarks() int { return len(ix.landmarks) }

// IsLandmark reports whether v is a landmark.
func (ix *Index) IsLandmark(v int32) bool { return ix.isLandmark[v] }

// Highway returns δH(r1, r2) for two landmark *vertex ids*, or Infinity if
// they are disconnected. It panics if either vertex is not a landmark.
func (ix *Index) Highway(r1, r2 int32) int32 {
	i, j := ix.rankOf[r1], ix.rankOf[r2]
	if i < 0 || j < 0 {
		panic(fmt.Sprintf("core: Highway(%d,%d): not landmarks", r1, r2))
	}
	return ix.highway[int(i)*len(ix.landmarks)+int(j)]
}

// Label returns vertex v's label as freshly allocated parallel slices of
// landmark ranks and distances. Prefer LabelView on hot paths.
func (ix *Index) Label(v int32) (ranks []int32, dists []int32) {
	r, d := ix.LabelView(v)
	return append([]int32(nil), r...), append([]int32(nil), d...)
}

// LabelView returns vertex v's label as zero-copy subslices of the flat
// CSR arrays, sorted by rank. The slices alias the index: callers must
// not modify them and must not retain them past the index's lifetime.
func (ix *Index) LabelView(v int32) (ranks []int32, dists []int32) {
	lo, hi := ix.labelOff[v], ix.labelOff[v+1]
	return ix.labelRank[lo:hi], ix.labelDist[lo:hi]
}

// LabelSize returns |L(v)|, the number of entries in v's label.
// Landmarks have empty labels (labels are defined on V\R).
func (ix *Index) LabelSize(v int32) int {
	return int(ix.labelOff[v+1] - ix.labelOff[v])
}

// NumEntries returns size(L) = Σ_v |L(v)|, the labelling size measure of
// the paper (LS in Figure 3).
func (ix *Index) NumEntries() int64 {
	return ix.labelOff[len(ix.labelOff)-1]
}

// numOverflow counts entries whose distance does not fit the 8-bit disk
// encoding (≥ distOverflow) and therefore needs an overflow record.
func (ix *Index) numOverflow() int64 {
	var n int64
	for _, d := range ix.labelDist {
		if d >= int32(distOverflow) {
			n++
		}
	}
	return n
}

// AvgLabelSize returns the average number of entries per label (Table 2's
// ALS column), over non-landmark vertices.
func (ix *Index) AvgLabelSize() float64 {
	n := ix.g.NumVertices() - len(ix.landmarks)
	if n <= 0 {
		return 0
	}
	return float64(ix.NumEntries()) / float64(n)
}

// SizeBytes32 reports the labelling size under the paper's uncompressed
// accounting (Table 3's "HL"): 32 bits per landmark id + 8 bits per
// distance per entry, plus the highway matrix.
func (ix *Index) SizeBytes32() int64 {
	return ix.NumEntries()*5 + int64(len(ix.highway))*4
}

// SizeBytes8 reports the labelling size under the paper's compressed
// accounting (Table 3's "HL(8)"): 8 bits per landmark id + 8 bits per
// distance per entry, plus the highway matrix. This is also very nearly
// the on-disk size of the label sections in both index formats.
func (ix *Index) SizeBytes8() int64 {
	return ix.NumEntries()*2 + int64(len(ix.highway))*4
}

// ActualBytes reports the real in-memory footprint of the index
// structures (offsets, flat label arrays, highway, landmark arrays).
func (ix *Index) ActualBytes() int64 {
	return int64(len(ix.labelOff))*8 +
		int64(len(ix.labelRank))*4 +
		int64(len(ix.labelDist))*4 +
		int64(len(ix.highway))*4 +
		int64(len(ix.landmarks))*4 +
		int64(len(ix.rankOf))*4 +
		int64(len(ix.isLandmark))
}

// FromParts assembles an Index from prebuilt components: the landmark set
// (by rank), the k×k row-major highway matrix, and per-vertex labels as
// parallel rank/dist slices (ranks strictly increasing within a vertex).
// The label data is copied into the flat CSR arrays; the inputs are not
// retained. It is the conversion point for mutable labellings
// (internal/dynhl's Freeze) and for tests that construct labellings by
// hand. Landmark vertices must have empty labels.
func FromParts(g *graph.Graph, landmarks []int32, highway []int32, ranks, dists [][]int32) (*Index, error) {
	n := g.NumVertices()
	k := len(landmarks)
	if k == 0 || k > MaxLandmarks {
		return nil, fmt.Errorf("core: FromParts: %d landmarks (want 1..%d)", k, MaxLandmarks)
	}
	if len(highway) != k*k {
		return nil, fmt.Errorf("core: FromParts: highway has %d cells, want %d", len(highway), k*k)
	}
	if len(ranks) != n || len(dists) != n {
		return nil, fmt.Errorf("core: FromParts: labels for %d/%d vertices, graph has %d", len(ranks), len(dists), n)
	}
	ix := &Index{
		g:          g,
		landmarks:  append([]int32(nil), landmarks...),
		rankOf:     make([]int32, n),
		isLandmark: make([]bool, n),
		highway:    append([]int32(nil), highway...),
		labelOff:   make([]int64, n+1),
	}
	for i := range ix.rankOf {
		ix.rankOf[i] = -1
	}
	for r, v := range landmarks {
		if err := ix.setLandmark(r, v); err != nil {
			return nil, err
		}
	}
	var total int64
	for v := 0; v < n; v++ {
		if len(ranks[v]) != len(dists[v]) {
			return nil, fmt.Errorf("core: FromParts: vertex %d has %d ranks but %d dists", v, len(ranks[v]), len(dists[v]))
		}
		if ix.isLandmark[int32(v)] && len(ranks[v]) != 0 {
			return nil, fmt.Errorf("core: FromParts: landmark %d has a label", v)
		}
		total += int64(len(ranks[v]))
		ix.labelOff[v+1] = total
	}
	ix.labelRank = make([]int32, total)
	ix.labelDist = make([]int32, total)
	for v := 0; v < n; v++ {
		base := ix.labelOff[v]
		for i := range ranks[v] {
			r, d := ranks[v][i], dists[v][i]
			if r < 0 || int(r) >= k {
				return nil, fmt.Errorf("core: FromParts: vertex %d rank %d out of range [0,%d)", v, r, k)
			}
			if i > 0 && ranks[v][i-1] >= r {
				return nil, fmt.Errorf("core: FromParts: vertex %d label not strictly rank-sorted", v)
			}
			if d < 0 {
				return nil, fmt.Errorf("core: FromParts: vertex %d rank %d negative distance %d", v, r, d)
			}
			ix.labelRank[base+int64(i)] = r
			ix.labelDist[base+int64(i)] = d
		}
	}
	return ix, nil
}

// Stats is the method-agnostic index summary (see internal/method);
// the alias keeps every pre-registry call site compiling.
type Stats = method.Stats

// Stats returns summary statistics of the index.
func (ix *Index) Stats() Stats {
	maxLS := 0
	for v := 0; v < ix.g.NumVertices(); v++ {
		if ls := ix.LabelSize(int32(v)); ls > maxLS {
			maxLS = ls
		}
	}
	return Stats{
		Method:       method.TagHL,
		NumVertices:  ix.g.NumVertices(),
		NumEdges:     ix.g.NumEdges(),
		NumLandmarks: len(ix.landmarks),
		NumEntries:   ix.NumEntries(),
		AvgLabelSize: ix.AvgLabelSize(),
		MaxLabelSize: maxLS,
		SizeBytes:    ix.SizeBytes32(),
		Bytes32:      ix.SizeBytes32(),
		Bytes8:       ix.SizeBytes8(),
	}
}
