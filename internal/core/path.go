package core

// Path materializes one shortest path between s and t as a vertex
// sequence [s, ..., t], or nil if s and t are disconnected. For s == t it
// returns [s].
//
// The oracle stores distances, not parent pointers, so the path is
// reconstructed by greedy descent: from s, repeatedly step to any
// neighbor whose distance to t is exactly one less. Every step costs one
// neighbor scan with one distance query per neighbor, so a path of length
// d costs O(d · deg · Q) where Q is the query time — still microseconds
// on complex networks, and no extra index space.
func (sr *Searcher) Path(s, t int32) []int32 {
	d := sr.Distance(s, t)
	if d < 0 {
		return nil
	}
	path := make([]int32, 0, d+1)
	path = append(path, s)
	cur := s
	for remaining := d; remaining > 0; remaining-- {
		next := int32(-1)
		for _, v := range sr.ix.g.Neighbors(cur) {
			if v == t {
				next = v
				break
			}
			if sr.Distance(v, t) == remaining-1 {
				next = v
				break
			}
		}
		if next < 0 {
			// Unreachable by construction: Distance said remaining > 0,
			// so some neighbor must be closer.
			panic("core: Path: no descending neighbor (index corrupt?)")
		}
		path = append(path, next)
		cur = next
	}
	return path
}

// Path is the convenience form using a pooled searcher.
func (ix *Index) Path(s, t int32) []int32 {
	sr := ix.pooled()
	p := sr.Path(s, t)
	ix.release(sr)
	return p
}
