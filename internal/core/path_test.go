package core

import (
	"math/rand"
	"testing"

	"highway/internal/bfs"
	"highway/internal/gen"
	"highway/internal/graph"
)

func validatePath(t *testing.T, g *graph.Graph, path []int32, s, u, wantLen int32) {
	t.Helper()
	if wantLen < 0 {
		if path != nil {
			t.Fatalf("disconnected pair returned path %v", path)
		}
		return
	}
	if int32(len(path)) != wantLen+1 {
		t.Fatalf("path %v has %d vertices, want %d", path, len(path), wantLen+1)
	}
	if path[0] != s || path[len(path)-1] != u {
		t.Fatalf("path %v does not connect %d..%d", path, s, u)
	}
	for i := 1; i < len(path); i++ {
		if !g.HasEdge(path[i-1], path[i]) {
			t.Fatalf("path %v uses missing edge {%d,%d}", path, path[i-1], path[i])
		}
	}
}

func TestPathSmall(t *testing.T) {
	g := gen.PaperFigure2()
	ix, err := Build(g, gen.PaperLandmarks())
	if err != nil {
		t.Fatal(err)
	}
	sr := ix.Searcher()
	// Example 4.3's pair: vertices 2 and 11 (ids 1 and 10), distance 3.
	p := sr.Path(1, 10)
	validatePath(t, g, p, 1, 10, 3)
	// Same vertex.
	if p := sr.Path(5, 5); len(p) != 1 || p[0] != 5 {
		t.Fatalf("Path(v,v) = %v", p)
	}
	// Landmark endpoints.
	validatePath(t, g, sr.Path(0, 8), 0, 8, 1)
}

func TestPathRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := gen.BarabasiAlbert(500, 3, 21)
	ix, err := Build(g, g.DegreeOrder()[:10])
	if err != nil {
		t.Fatal(err)
	}
	sr := ix.Searcher()
	for trial := 0; trial < 150; trial++ {
		s := int32(rng.Intn(500))
		u := int32(rng.Intn(500))
		want := bfs.Dist(g, s, u)
		validatePath(t, g, sr.Path(s, u), s, u, want)
	}
}

func TestPathDisconnected(t *testing.T) {
	g := graph.MustFromEdges(4, [][2]int32{{0, 1}, {2, 3}})
	ix, err := Build(g, []int32{0})
	if err != nil {
		t.Fatal(err)
	}
	if p := ix.Path(0, 3); p != nil {
		t.Fatalf("got %v, want nil", p)
	}
	// Pooled convenience form on a reachable pair.
	validatePath(t, g, ix.Path(0, 1), 0, 1, 1)
}
