package core

import (
	"highway/internal/bfs"
	"highway/internal/graph"
	"highway/internal/method"
)

// Searcher answers distance queries against an Index. It owns the scratch
// buffers of the bounded bidirectional search and the common-landmark
// mask, so it is cheap to query repeatedly but must not be shared between
// goroutines. Create one per querying goroutine with Index.NewSearcher,
// or use the Index conveniences (Distance, UpperBound, Path), which draw
// searchers from an internal pool.
type Searcher struct {
	ix *Index
	sc *bfs.Scratch
	// common marks landmark ranks present in both endpoint labels
	// (Lemma 5.1 shortcut).
	common []bool

	// Batch-execution scratch (see batch.go): the shared source bound
	// vector, the sort permutation, and the sparsified single-source
	// BFS state (sparse is kept all -1 between groups; sparseQ doubles
	// as the visited list that restores it).
	via     []int32
	perm    []int32
	sparse  []int32
	sparseQ []int32
}

// NewSearcher returns a Searcher bound to the index, typed as the
// method-agnostic interface (the DistanceIndex contract). Callers that
// need the concrete *Searcher — e.g. for Path — use Searcher():
//
//	sr := ix.Searcher()
//	p := sr.Path(s, t)
func (ix *Index) NewSearcher() method.Searcher { return ix.Searcher() }

// Searcher returns a concrete *Searcher bound to the index.
func (ix *Index) Searcher() *Searcher {
	return &Searcher{ix: ix, sc: bfs.NewScratch(ix.g.NumVertices())}
}

// pooled draws a searcher from the index's pool, creating one on demand.
func (ix *Index) pooled() *Searcher {
	sr, _ := ix.pool.Get().(*Searcher)
	if sr == nil {
		sr = ix.Searcher()
	}
	return sr
}

// release returns a pooled searcher.
func (ix *Index) release(sr *Searcher) { ix.pool.Put(sr) }

// Distance returns the exact shortest-path distance between s and t, or
// Infinity if they are disconnected. It is safe for concurrent use; for
// tight query loops prefer a dedicated Searcher.
func (ix *Index) Distance(s, t int32) int32 {
	sr := ix.pooled()
	d := sr.Distance(s, t)
	ix.release(sr)
	return d
}

// UpperBound returns d⊤st, the best distance through the highway
// (Equation 4 with the Lemma 5.1 shortcut), or Infinity when the labels
// connect s and t through no landmark. UpperBound(s,t) ≥ Distance(s,t)
// always (Lemma 4.4), with equality iff some shortest path intersects R.
// It is safe for concurrent use (pooled searcher); for tight loops prefer
// a dedicated Searcher.
func (ix *Index) UpperBound(s, t int32) int32 {
	sr := ix.pooled()
	ub := sr.UpperBound(s, t)
	ix.release(sr)
	return ub
}

// Distance returns the exact distance between s and t (Theorem 4.6):
// min(d⊤st, bounded bidirectional BFS on G[V\R]).
func (sr *Searcher) Distance(s, t int32) int32 {
	ix := sr.ix
	if s == t {
		return 0
	}
	ub := sr.UpperBound(s, t)
	if ix.isLandmark[s] || ix.isLandmark[t] {
		// Labels plus highway are exact when an endpoint is a landmark:
		// every s-t path is trivially r-constrained for r = that endpoint,
		// and the highway cover property covers it. The sparsified graph
		// does not contain the endpoint, so there is nothing to search.
		return ub
	}
	bound := ub
	if bound == Infinity {
		// Labels gave no path through R; only the sparsified graph can
		// connect s and t.
		return bfs.BoundedBiBFS(ix.g, s, t, bfs.NoBound, ix.isLandmark, sr.sc)
	}
	return bfs.BoundedBiBFS(ix.g, s, t, bound, ix.isLandmark, sr.sc)
}

// UpperBound is the searcher-local version of Index.UpperBound. It runs
// entirely on the flat CSR arrays: no label materialization, no per-entry
// decode — a merge over two sorted rank ranges plus a cross-pair scan of
// the highway rows.
func (sr *Searcher) UpperBound(s, t int32) int32 {
	ix := sr.ix
	if s == t {
		return 0
	}
	rs, rt := ix.rankOf[s], ix.rankOf[t]
	k := len(ix.landmarks)
	// Landmark endpoints (Section 4.2's virtual label {(rank,0)}) reduce
	// to a highway lookup or one pass over the other endpoint's label.
	switch {
	case rs >= 0 && rt >= 0:
		return ix.highway[int(rs)*k+int(rt)]
	case rs >= 0:
		return ix.boundVia(rs, t)
	case rt >= 0:
		return ix.boundVia(rt, s)
	}
	slo, shi := ix.labelOff[s], ix.labelOff[s+1]
	tlo, thi := ix.labelOff[t], ix.labelOff[t+1]
	if slo == shi || tlo == thi {
		return Infinity
	}
	rank, dist := ix.labelRank, ix.labelDist
	best := Infinity
	// Pass 1: common landmarks (Lemma 5.1): δL(r,s) + δL(r,t). Labels are
	// sorted by rank, so a single merge finds them; the same merge fills
	// the common mask. Landmarks common to both labels also dominate every
	// cross pair they participate in (triangle inequality), so pass 2 may
	// skip those pairs entirely.
	mask := sr.maskBuf(k)
	if ls, lt := shi-slo, thi-tlo; ls > 16*lt || lt > 16*ls {
		// One label dwarfs the other: iterate the short side and probe
		// the long side with the shared lower-bound helper
		// (graph.SearchInt32, also behind Graph.HasEdge) instead of
		// stepping the merge one rank at a time.
		pLo, pHi, qLo, qHi := slo, shi, tlo, thi
		if ls > lt {
			pLo, pHi, qLo, qHi = tlo, thi, slo, shi
		}
		long := rank[qLo:qHi]
		for p := pLo; p < pHi; p++ {
			rp := rank[p]
			q := qLo + int64(graph.SearchInt32(long, rp))
			if q < qHi && rank[q] == rp {
				mask[rp] = true
				if d := dist[p] + dist[q]; best < 0 || d < best {
					best = d
				}
			}
		}
	} else {
		i, j := slo, tlo
		for i < shi && j < thi {
			ri, rj := rank[i], rank[j]
			switch {
			case ri == rj:
				mask[ri] = true
				if d := dist[i] + dist[j]; best < 0 || d < best {
					best = d
				}
				i++
				j++
			case ri < rj:
				i++
			default:
				j++
			}
		}
	}
	// Pass 2: cross pairs through the highway (Equation 4), skipping any
	// pair whose side is a shared landmark.
	for i := slo; i < shi; i++ {
		ri := rank[i]
		if mask[ri] {
			continue
		}
		ds := dist[i]
		row := ix.highway[int(ri)*k : int(ri+1)*k]
		for j := tlo; j < thi; j++ {
			rj := rank[j]
			if mask[rj] {
				continue
			}
			if h := row[rj]; h >= 0 {
				if d := ds + h + dist[j]; best < 0 || d < best {
					best = d
				}
			}
		}
	}
	return best
}

// boundVia returns the best bound between landmark rank r and non-landmark
// vertex v: min over v's label entries (re, d) of d + δH(r, re). The
// re == r case folds in for free since δH(r,r) = 0, so this is one
// branch-light pass over v's flat label range.
func (ix *Index) boundVia(r, v int32) int32 {
	k := len(ix.landmarks)
	row := ix.highway[int(r)*k : int(r+1)*k]
	rank, dist := ix.labelRank, ix.labelDist
	best := Infinity
	for p := ix.labelOff[v]; p < ix.labelOff[v+1]; p++ {
		h := row[rank[p]]
		if h < 0 {
			continue
		}
		if d := h + dist[p]; best < 0 || d < best {
			best = d
		}
	}
	return best
}

// maskBuf returns the searcher's cleared rank mask, sized to k. The mask
// lives on the searcher to avoid per-query allocation.
func (sr *Searcher) maskBuf(k int) []bool {
	if cap(sr.common) < k {
		sr.common = make([]bool, k)
	}
	mask := sr.common[:k]
	clear(mask)
	return mask
}
