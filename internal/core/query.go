package core

import "highway/internal/bfs"

// Searcher answers distance queries against an Index. It owns the scratch
// buffers of the bounded bidirectional search, so it is cheap to query
// repeatedly but must not be shared between goroutines. Create one per
// querying goroutine with Index.NewSearcher, or use Index.Distance, which
// draws searchers from an internal pool.
type Searcher struct {
	ix *Index
	sc *bfs.Scratch
	// common marks landmark ranks present in both endpoint labels
	// (Lemma 5.1 shortcut).
	common []bool
	// virtualBuf/entryBuf stage the two endpoint labels; index 0 is the
	// s side, index 1 the t side.
	virtualBuf [2]labelEntry
	entryBuf   [2][]labelEntry
}

type labelEntry struct {
	rank int32
	dist int32
}

// NewSearcher returns a Searcher bound to the index.
func (ix *Index) NewSearcher() *Searcher {
	return &Searcher{ix: ix, sc: bfs.NewScratch(ix.g.NumVertices())}
}

// Distance returns the exact shortest-path distance between s and t, or
// Infinity if they are disconnected. It is safe for concurrent use; for
// tight query loops prefer a dedicated Searcher.
func (ix *Index) Distance(s, t int32) int32 {
	sr, _ := ix.pool.Get().(*Searcher)
	if sr == nil {
		sr = ix.NewSearcher()
	}
	d := sr.Distance(s, t)
	ix.pool.Put(sr)
	return d
}

// UpperBound returns d⊤st, the best distance through the highway
// (Equation 4 with the Lemma 5.1 shortcut), or Infinity when the labels
// connect s and t through no landmark. UpperBound(s,t) ≥ Distance(s,t)
// always (Lemma 4.4), with equality iff some shortest path intersects R.
func (ix *Index) UpperBound(s, t int32) int32 {
	var sr Searcher
	sr.ix = ix
	return sr.UpperBound(s, t)
}

// Distance returns the exact distance between s and t (Theorem 4.6):
// min(d⊤st, bounded bidirectional BFS on G[V\R]).
func (sr *Searcher) Distance(s, t int32) int32 {
	ix := sr.ix
	if s == t {
		return 0
	}
	ub := sr.UpperBound(s, t)
	if ix.isLandmark[s] || ix.isLandmark[t] {
		// Labels plus highway are exact when an endpoint is a landmark:
		// every s-t path is trivially r-constrained for r = that endpoint,
		// and the highway cover property covers it. The sparsified graph
		// does not contain the endpoint, so there is nothing to search.
		return ub
	}
	bound := ub
	if bound == Infinity {
		// Labels gave no path through R; only the sparsified graph can
		// connect s and t.
		return bfs.BoundedBiBFS(ix.g, s, t, bfs.NoBound, ix.isLandmark, sr.sc)
	}
	return bfs.BoundedBiBFS(ix.g, s, t, bound, ix.isLandmark, sr.sc)
}

// UpperBound is the searcher-local version of Index.UpperBound.
func (sr *Searcher) UpperBound(s, t int32) int32 {
	ix := sr.ix
	if s == t {
		return 0
	}
	ls := sr.labelOf(s, 0)
	lt := sr.labelOf(t, 1)
	if len(ls) == 0 || len(lt) == 0 {
		return Infinity
	}
	k := len(ix.landmarks)
	best := int32(-1)
	relax := func(d int32) {
		if d >= 0 && (best < 0 || d < best) {
			best = d
		}
	}
	// Pass 1: common landmarks (Lemma 5.1): δL(r,s) + δL(r,t). Labels are
	// sorted by rank, so a single merge finds them. Landmarks common to
	// both labels also dominate every cross pair they participate in
	// (triangle inequality), so pass 2 may skip those pairs entirely.
	commonS := sr.commonMask(ls, lt)
	i, j := 0, 0
	for i < len(ls) && j < len(lt) {
		switch {
		case ls[i].rank == lt[j].rank:
			relax(ls[i].dist + lt[j].dist)
			i++
			j++
		case ls[i].rank < lt[j].rank:
			i++
		default:
			j++
		}
	}
	// Pass 2: cross pairs through the highway (Equation 4), skipping any
	// pair whose side is a shared landmark.
	for _, es := range ls {
		if commonS[es.rank] {
			continue
		}
		row := ix.highway[int(es.rank)*k : int(es.rank+1)*k]
		for _, et := range lt {
			if commonS[et.rank] {
				continue
			}
			if h := row[et.rank]; h >= 0 {
				relax(es.dist + h + et.dist)
			}
		}
	}
	return best
}

// commonMask returns a bitmask (as a bool slice indexed by rank) of
// landmarks present in both labels. The mask array is kept on the searcher
// to avoid allocation.
func (sr *Searcher) commonMask(ls, lt []labelEntry) []bool {
	k := len(sr.ix.landmarks)
	if cap(sr.common) < k {
		sr.common = make([]bool, k)
	}
	mask := sr.common[:k]
	clear(mask)
	i, j := 0, 0
	for i < len(ls) && j < len(lt) {
		switch {
		case ls[i].rank == lt[j].rank:
			mask[ls[i].rank] = true
			i++
			j++
		case ls[i].rank < lt[j].rank:
			i++
		default:
			j++
		}
	}
	return mask
}

// labelOf materializes v's label as entries sorted by rank. For landmark
// vertices it returns the virtual label {(rank(v), 0)} of Section 4.2.
// side selects one of two searcher-owned buffers so both endpoints can be
// staged simultaneously.
func (sr *Searcher) labelOf(v int32, side int) []labelEntry {
	ix := sr.ix
	if r := ix.rankOf[v]; r >= 0 {
		sr.virtualBuf[side] = labelEntry{rank: r, dist: 0}
		return sr.virtualBuf[side : side+1]
	}
	lo, hi := ix.labelOff[v], ix.labelOff[v+1]
	buf := &sr.entryBuf[side]
	*buf = (*buf)[:0]
	for p := lo; p < hi; p++ {
		*buf = append(*buf, labelEntry{
			rank: int32(ix.labelRank[p]),
			dist: ix.entryDist(v, p),
		})
	}
	return *buf
}
