package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math/rand"
	"os"

	"highway/internal/bfs"
	"highway/internal/graph"
)

// Index binary format (little-endian):
//
//	magic     [8]byte "HWLIDX01"
//	n         uint64
//	k         uint32
//	landmarks [k]uint32
//	highway   [k*k]int32      (-1 = Infinity)
//	labelOff  [n+1]uint64
//	labelRank [entries]uint8
//	labelDist [entries]uint8
//	nOverflow uint32
//	overflow  nOverflow × (vertex uint32, rank uint8, dist int32)
//
// The graph itself is not embedded: an index is only meaningful together
// with the graph it was built on, and callers load/store the graph
// separately (cmd/hlbuild writes both files side by side). Load verifies
// the vertex count matches.
var indexMagic = [8]byte{'H', 'W', 'L', 'I', 'D', 'X', '0', '1'}

// Write serializes the index (without the graph).
func (ix *Index) Write(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.Write(indexMagic[:]); err != nil {
		return err
	}
	n := ix.g.NumVertices()
	k := len(ix.landmarks)
	var b8 [8]byte
	binary.LittleEndian.PutUint64(b8[:], uint64(n))
	bw.Write(b8[:])
	binary.LittleEndian.PutUint32(b8[:4], uint32(k))
	bw.Write(b8[:4])
	for _, l := range ix.landmarks {
		binary.LittleEndian.PutUint32(b8[:4], uint32(l))
		bw.Write(b8[:4])
	}
	for _, h := range ix.highway {
		binary.LittleEndian.PutUint32(b8[:4], uint32(h))
		bw.Write(b8[:4])
	}
	for _, o := range ix.labelOff {
		binary.LittleEndian.PutUint64(b8[:], uint64(o))
		bw.Write(b8[:8])
	}
	if _, err := bw.Write(ix.labelRank); err != nil {
		return err
	}
	if _, err := bw.Write(ix.labelDist); err != nil {
		return err
	}
	binary.LittleEndian.PutUint32(b8[:4], uint32(len(ix.overflow)))
	bw.Write(b8[:4])
	// Deterministic order: iterate labels in CSR order and emit entries
	// whose stored distance is the overflow marker.
	for v := int32(0); v < int32(n); v++ {
		for p := ix.labelOff[v]; p < ix.labelOff[v+1]; p++ {
			if ix.labelDist[p] != distOverflow {
				continue
			}
			r := ix.labelRank[p]
			binary.LittleEndian.PutUint32(b8[:4], uint32(v))
			bw.Write(b8[:4])
			bw.WriteByte(r)
			binary.LittleEndian.PutUint32(b8[:4], uint32(ix.overflow[overflowKey{v, r}]))
			bw.Write(b8[:4])
		}
	}
	return bw.Flush()
}

// Read deserializes an index written by Write and attaches it to g, which
// must be the graph the index was built on (the vertex count is checked;
// deeper mismatches surface as wrong distances, which Verify can detect).
func Read(r io.Reader, g *graph.Graph) (*Index, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("core: reading magic: %w", err)
	}
	if magic != indexMagic {
		return nil, fmt.Errorf("core: bad magic %q (not a HWLIDX01 file)", magic[:])
	}
	var b8 [8]byte
	if _, err := io.ReadFull(br, b8[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint64(b8[:])
	if int(n) != g.NumVertices() {
		return nil, fmt.Errorf("core: index built for n=%d, graph has n=%d", n, g.NumVertices())
	}
	if _, err := io.ReadFull(br, b8[:4]); err != nil {
		return nil, err
	}
	k := binary.LittleEndian.Uint32(b8[:4])
	if k == 0 || k > MaxLandmarks {
		return nil, fmt.Errorf("core: index claims k=%d landmarks", k)
	}
	ix := &Index{
		g:          g,
		landmarks:  make([]int32, k),
		rankOf:     make([]int32, n),
		isLandmark: make([]bool, n),
		highway:    make([]int32, int(k)*int(k)),
		labelOff:   make([]int64, n+1),
		overflow:   make(map[overflowKey]int32),
	}
	for i := range ix.rankOf {
		ix.rankOf[i] = -1
	}
	for i := range ix.landmarks {
		if _, err := io.ReadFull(br, b8[:4]); err != nil {
			return nil, err
		}
		v := int32(binary.LittleEndian.Uint32(b8[:4]))
		if v < 0 || uint64(v) >= n {
			return nil, fmt.Errorf("core: landmark %d out of range", v)
		}
		if ix.rankOf[v] >= 0 {
			return nil, fmt.Errorf("core: duplicate landmark %d", v)
		}
		ix.landmarks[i] = v
		ix.rankOf[v] = int32(i)
		ix.isLandmark[v] = true
	}
	for i := range ix.highway {
		if _, err := io.ReadFull(br, b8[:4]); err != nil {
			return nil, err
		}
		ix.highway[i] = int32(binary.LittleEndian.Uint32(b8[:4]))
	}
	for i := range ix.labelOff {
		if _, err := io.ReadFull(br, b8[:]); err != nil {
			return nil, err
		}
		ix.labelOff[i] = int64(binary.LittleEndian.Uint64(b8[:]))
	}
	entries := ix.labelOff[n]
	if entries < 0 || entries > int64(n)*int64(k) {
		return nil, fmt.Errorf("core: implausible entry count %d", entries)
	}
	for v := uint64(0); v < n; v++ {
		if ix.labelOff[v] > ix.labelOff[v+1] {
			return nil, fmt.Errorf("core: label offsets not monotone at %d", v)
		}
	}
	ix.labelRank = make([]uint8, entries)
	ix.labelDist = make([]uint8, entries)
	if _, err := io.ReadFull(br, ix.labelRank); err != nil {
		return nil, err
	}
	if _, err := io.ReadFull(br, ix.labelDist); err != nil {
		return nil, err
	}
	for _, r := range ix.labelRank {
		if uint32(r) >= k {
			return nil, fmt.Errorf("core: label rank %d out of range [0,%d)", r, k)
		}
	}
	if _, err := io.ReadFull(br, b8[:4]); err != nil {
		return nil, err
	}
	nOv := binary.LittleEndian.Uint32(b8[:4])
	for i := uint32(0); i < nOv; i++ {
		var rec [9]byte
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return nil, err
		}
		v := int32(binary.LittleEndian.Uint32(rec[0:4]))
		rank := rec[4]
		d := int32(binary.LittleEndian.Uint32(rec[5:9]))
		if v < 0 || uint64(v) >= n || uint32(rank) >= k || d < int32(distOverflow) {
			return nil, fmt.Errorf("core: bad overflow record (v=%d rank=%d d=%d)", v, rank, d)
		}
		ix.overflow[overflowKey{v, rank}] = d
	}
	return ix, nil
}

// Save writes the index to a file.
func (ix *Index) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := ix.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Load reads an index file and attaches it to g.
func Load(path string, g *graph.Graph) (*Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f, g)
}

// Verify cross-checks the index against ground-truth BFS on sample vertex
// pairs; it returns an error describing the first mismatch. Used by
// cmd/hlbuild --verify and tests.
func (ix *Index) Verify(samples int, seed int64) error {
	n := ix.g.NumVertices()
	if n == 0 {
		return nil
	}
	sr := ix.NewSearcher()
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < samples; i++ {
		s := int32(rng.Intn(n))
		t := int32(rng.Intn(n))
		want := bfs.Dist(ix.g, s, t)
		if want == bfs.Unreachable {
			want = Infinity
		}
		if got := sr.Distance(s, t); got != want {
			return fmt.Errorf("core: verify: Distance(%d,%d) = %d, want %d", s, t, got, want)
		}
	}
	return nil
}
