package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math/rand"
	"os"

	"highway/internal/bfs"
	"highway/internal/graph"
	"highway/internal/method"
)

// Format identifies an on-disk index layout version.
type Format int

const (
	// FormatV1 is the original streaming layout ("HWLIDX01"): header,
	// landmarks, highway, offsets, 8-bit labels, overflow records, all
	// concatenated with no checksums. Kept for backward compatibility;
	// readable and writable forever, no longer the default.
	FormatV1 Format = 1
	// FormatV2 is the section-based layout ("HWLIDX02"): a fixed
	// checksummed header, a section table (id, CRC-32C, length per
	// section), then one contiguous payload per section so every label
	// array loads with a single io.ReadFull. Unknown section ids are
	// skipped on read, giving the format room to grow without breaking
	// old readers' files. This is the default write format.
	FormatV2 Format = 2
)

func (f Format) String() string {
	switch f {
	case FormatV1:
		return "v1"
	case FormatV2:
		return "v2"
	default:
		return fmt.Sprintf("Format(%d)", int(f))
	}
}

// ParseFormat parses a CLI format name ("v1", "v2", "1", "2").
func ParseFormat(s string) (Format, error) {
	switch s {
	case "v1", "1":
		return FormatV1, nil
	case "v2", "2":
		return FormatV2, nil
	default:
		return 0, fmt.Errorf("core: unknown index format %q (want v1 or v2)", s)
	}
}

// Index binary format v1 (little-endian, "HWLIDX01"):
//
//	magic     [8]byte "HWLIDX01"
//	n         uint64
//	k         uint32
//	landmarks [k]uint32
//	highway   [k*k]int32      (-1 = Infinity)
//	labelOff  [n+1]uint64
//	labelRank [entries]uint8
//	labelDist [entries]uint8  (0xFF = see overflow)
//	nOverflow uint32
//	overflow  nOverflow × (vertex uint32, rank uint8, dist uint32), CSR order
//
// Index binary format v2 (little-endian, "HWLIDX02"):
//
//	magic     [8]byte "HWLIDX02"
//	header    [40]byte: version u32, flags u32, n u64, k u32,
//	          sections u32, entries u64, nOverflow u64
//	headerCRC uint32           (CRC-32C of the 40 header bytes)
//	table     sections × {id u32, crc u32, length u64}
//	payloads  one per table row, in table order, `length` bytes each
//
// v2 section ids and payloads (same element encodings as v1):
//
//	1 landmarks  [k]uint32
//	2 highway    [k*k]int32
//	3 labelOff   [n+1]uint64
//	4 labelRank  [entries]uint8
//	5 labelDist  [entries]uint8
//	6 overflow   nOverflow × (vertex uint32, rank uint8, dist uint32)
//
// Every payload is checksummed with CRC-32C and its length is known from
// the header before any allocation, so a reader can size buffers exactly,
// load each label array with one io.ReadFull, and reject corruption.
// Readers skip table rows with unknown ids, so future sections can be
// added without revving the magic.
//
// The graph itself is not embedded: an index is only meaningful together
// with the graph it was built on, and callers load/store the graph
// separately (cmd/hlbuild writes both files side by side). Read verifies
// the vertex count matches.
var (
	indexMagicV1 = [8]byte{'H', 'W', 'L', 'I', 'D', 'X', '0', '1'}
	indexMagicV2 = [8]byte{'H', 'W', 'L', 'I', 'D', 'X', '0', '2'}
)

const (
	sectLandmarks uint32 = 1
	sectHighway   uint32 = 2
	sectLabelOff  uint32 = 3
	sectLabelRank uint32 = 4
	sectLabelDist uint32 = 5
	sectOverflow  uint32 = 6

	v2HeaderLen  = 40
	v2TableRow   = 16
	v2MaxSection = 64 // fuzz/OOM guard: no sane file needs more
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// overflowRec is one 8-bit-escape record: label entry (rank) of vertex v
// whose true distance d does not fit a byte.
type overflowRec struct {
	v    int32
	rank uint8
	d    int32
}

// encode8 produces the paper's 8-bit compressed label encoding from the
// flat int32 arrays: one byte per rank, one byte per distance with the
// distOverflow escape, plus the escaped records in CSR order.
func (ix *Index) encode8() (rank8, dist8 []uint8, over []overflowRec) {
	total := ix.NumEntries()
	rank8 = make([]uint8, total)
	dist8 = make([]uint8, total)
	n := int32(ix.g.NumVertices())
	for v := int32(0); v < n; v++ {
		for p := ix.labelOff[v]; p < ix.labelOff[v+1]; p++ {
			rank8[p] = uint8(ix.labelRank[p])
			if d := ix.labelDist[p]; d < int32(distOverflow) {
				dist8[p] = uint8(d)
			} else {
				dist8[p] = distOverflow
				over = append(over, overflowRec{v: v, rank: uint8(ix.labelRank[p]), d: d})
			}
		}
	}
	return rank8, dist8, over
}

// Write serializes the index (without the graph) in the default format
// (v2).
func (ix *Index) Write(w io.Writer) error { return ix.WriteFormat(w, FormatV2) }

// WriteFormat serializes the index in an explicit format. Output is
// deterministic: the same index always produces identical bytes, which
// the golden-file test pins down for v2.
func (ix *Index) WriteFormat(w io.Writer, f Format) error {
	switch f {
	case FormatV1:
		return ix.writeV1(w)
	case FormatV2:
		return ix.writeV2(w)
	default:
		return fmt.Errorf("core: cannot write unknown format %v", f)
	}
}

func (ix *Index) writeV1(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.Write(indexMagicV1[:]); err != nil {
		return err
	}
	rank8, dist8, over := ix.encode8()
	n := ix.g.NumVertices()
	k := len(ix.landmarks)
	var b8 [8]byte
	binary.LittleEndian.PutUint64(b8[:], uint64(n))
	bw.Write(b8[:])
	binary.LittleEndian.PutUint32(b8[:4], uint32(k))
	bw.Write(b8[:4])
	for _, l := range ix.landmarks {
		binary.LittleEndian.PutUint32(b8[:4], uint32(l))
		bw.Write(b8[:4])
	}
	for _, h := range ix.highway {
		binary.LittleEndian.PutUint32(b8[:4], uint32(h))
		bw.Write(b8[:4])
	}
	for _, o := range ix.labelOff {
		binary.LittleEndian.PutUint64(b8[:], uint64(o))
		bw.Write(b8[:8])
	}
	if _, err := bw.Write(rank8); err != nil {
		return err
	}
	if _, err := bw.Write(dist8); err != nil {
		return err
	}
	binary.LittleEndian.PutUint32(b8[:4], uint32(len(over)))
	bw.Write(b8[:4])
	for _, o := range over {
		binary.LittleEndian.PutUint32(b8[:4], uint32(o.v))
		bw.Write(b8[:4])
		bw.WriteByte(o.rank)
		binary.LittleEndian.PutUint32(b8[:4], uint32(o.d))
		bw.Write(b8[:4])
	}
	return bw.Flush()
}

// v2section couples a section id with an emitter that streams its payload.
// The emitter runs twice per save: once into the CRC, once into the file,
// so no section needs to be materialized beyond what encode8 builds.
type v2section struct {
	id     uint32
	length uint64
	emit   func(w io.Writer) error
}

func (ix *Index) writeV2(w io.Writer) error {
	rank8, dist8, over := ix.encode8()
	n := uint64(ix.g.NumVertices())
	k := len(ix.landmarks)
	entries := uint64(ix.NumEntries())

	emitU32s := func(vals []int32) func(io.Writer) error {
		return func(w io.Writer) error {
			var b [4]byte
			for _, v := range vals {
				binary.LittleEndian.PutUint32(b[:], uint32(v))
				if _, err := w.Write(b[:]); err != nil {
					return err
				}
			}
			return nil
		}
	}
	sections := []v2section{
		{sectLandmarks, uint64(k) * 4, emitU32s(ix.landmarks)},
		{sectHighway, uint64(len(ix.highway)) * 4, emitU32s(ix.highway)},
		{sectLabelOff, (n + 1) * 8, func(w io.Writer) error {
			var b [8]byte
			for _, o := range ix.labelOff {
				binary.LittleEndian.PutUint64(b[:], uint64(o))
				if _, err := w.Write(b[:]); err != nil {
					return err
				}
			}
			return nil
		}},
		{sectLabelRank, entries, func(w io.Writer) error {
			_, err := w.Write(rank8)
			return err
		}},
		{sectLabelDist, entries, func(w io.Writer) error {
			_, err := w.Write(dist8)
			return err
		}},
		{sectOverflow, uint64(len(over)) * 9, func(w io.Writer) error {
			var b [9]byte
			for _, o := range over {
				binary.LittleEndian.PutUint32(b[0:4], uint32(o.v))
				b[4] = o.rank
				binary.LittleEndian.PutUint32(b[5:9], uint32(o.d))
				if _, err := w.Write(b[:]); err != nil {
					return err
				}
			}
			return nil
		}},
	}

	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.Write(indexMagicV2[:]); err != nil {
		return err
	}
	var hdr [v2HeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], 2)  // version
	binary.LittleEndian.PutUint32(hdr[4:8], 0)  // flags
	binary.LittleEndian.PutUint64(hdr[8:16], n) // n
	binary.LittleEndian.PutUint32(hdr[16:20], uint32(k))
	binary.LittleEndian.PutUint32(hdr[20:24], uint32(len(sections)))
	binary.LittleEndian.PutUint64(hdr[24:32], entries)
	binary.LittleEndian.PutUint64(hdr[32:40], uint64(len(over)))
	bw.Write(hdr[:])
	var b4 [4]byte
	binary.LittleEndian.PutUint32(b4[:], crc32.Checksum(hdr[:], castagnoli))
	bw.Write(b4[:])

	// Section table: CRC each payload by streaming it through the hash.
	var row [v2TableRow]byte
	for _, s := range sections {
		h := crc32.New(castagnoli)
		if err := s.emit(h); err != nil {
			return err
		}
		binary.LittleEndian.PutUint32(row[0:4], s.id)
		binary.LittleEndian.PutUint32(row[4:8], h.Sum32())
		binary.LittleEndian.PutUint64(row[8:16], s.length)
		if _, err := bw.Write(row[:]); err != nil {
			return err
		}
	}
	for _, s := range sections {
		if err := s.emit(bw); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read deserializes an index written in either format (the magic selects
// the decoder) and attaches it to g, which must be the graph the index
// was built on (the vertex count is checked; deeper mismatches surface as
// wrong distances, which Verify can detect).
func Read(r io.Reader, g *graph.Graph) (*Index, error) {
	ix, _, err := ReadFormat(r, g)
	return ix, err
}

// ReadFormat is Read, also reporting which format the stream was in.
func ReadFormat(r io.Reader, g *graph.Graph) (*Index, Format, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, 0, fmt.Errorf("core: reading magic: %w", err)
	}
	switch magic {
	case indexMagicV1:
		ix, err := readV1(br, g)
		return ix, FormatV1, err
	case indexMagicV2:
		ix, err := readV2(br, g)
		return ix, FormatV2, err
	default:
		return nil, 0, fmt.Errorf("core: bad magic %q (not a HWLIDX01/02 file)", magic[:])
	}
}

// newIndexShell allocates an index with validated landmark bookkeeping;
// shared by both decoders. Label arrays are allocated by the caller once
// the entry count is known and validated.
func newIndexShell(g *graph.Graph, n uint64, k uint32) (*Index, error) {
	if int(n) != g.NumVertices() {
		return nil, fmt.Errorf("core: index built for n=%d, graph has n=%d", n, g.NumVertices())
	}
	if k == 0 || k > MaxLandmarks {
		return nil, fmt.Errorf("core: index claims k=%d landmarks", k)
	}
	ix := &Index{
		g:          g,
		landmarks:  make([]int32, k),
		rankOf:     make([]int32, n),
		isLandmark: make([]bool, n),
		highway:    make([]int32, int(k)*int(k)),
		labelOff:   make([]int64, n+1),
	}
	for i := range ix.rankOf {
		ix.rankOf[i] = -1
	}
	return ix, nil
}

func (ix *Index) setLandmark(rank int, v int32) error {
	if v < 0 || int(v) >= ix.g.NumVertices() {
		return fmt.Errorf("core: landmark %d out of range", v)
	}
	if ix.rankOf[v] >= 0 {
		return fmt.Errorf("core: duplicate landmark %d", v)
	}
	ix.landmarks[rank] = v
	ix.rankOf[v] = int32(rank)
	ix.isLandmark[v] = true
	return nil
}

// validateOffsets checks monotonicity and the total entry bound, which
// caps every later allocation (the anti-OOM guard the fuzz target leans
// on).
func (ix *Index) validateOffsets(k uint32) (int64, error) {
	n := ix.g.NumVertices()
	entries := ix.labelOff[n]
	if ix.labelOff[0] != 0 {
		return 0, fmt.Errorf("core: label offsets do not start at 0")
	}
	if entries < 0 || entries > int64(n)*int64(k) {
		return 0, fmt.Errorf("core: implausible entry count %d", entries)
	}
	for v := 0; v < n; v++ {
		if ix.labelOff[v] > ix.labelOff[v+1] {
			return 0, fmt.Errorf("core: label offsets not monotone at %d", v)
		}
	}
	return entries, nil
}

// decodeLabels widens the 8-bit encoding into the flat int32 arrays,
// splicing overflow records back in. Our writers emit records in CSR
// order, but any order is accepted (the original v1 reader was
// order-agnostic, and "v1 stays readable" includes third-party writers);
// a record for a non-escaped entry or an escaped entry without a record
// is corruption and rejected.
func (ix *Index) decodeLabels(rank8, dist8 []uint8, k uint32, over []overflowRec) error {
	entries := int64(len(rank8))
	ix.labelRank = make([]int32, entries)
	ix.labelDist = make([]int32, entries)
	for p, r := range rank8 {
		if uint32(r) >= k {
			return fmt.Errorf("core: label rank %d out of range [0,%d)", r, k)
		}
		ix.labelRank[p] = int32(r)
	}
	var escapes map[overflowKey]int32
	if len(over) > 0 {
		escapes = make(map[overflowKey]int32, len(over))
		for _, o := range over {
			key := overflowKey{o.v, o.rank}
			if _, dup := escapes[key]; dup {
				return fmt.Errorf("core: duplicate overflow record (v=%d rank=%d)", o.v, o.rank)
			}
			escapes[key] = o.d
		}
	}
	used := 0
	n := int32(ix.g.NumVertices())
	for v := int32(0); v < n; v++ {
		for p := ix.labelOff[v]; p < ix.labelOff[v+1]; p++ {
			d := dist8[p]
			if d != distOverflow {
				ix.labelDist[p] = int32(d)
				continue
			}
			full, ok := escapes[overflowKey{v, uint8(ix.labelRank[p])}]
			if !ok {
				return fmt.Errorf("core: missing overflow record for vertex %d rank %d", v, ix.labelRank[p])
			}
			ix.labelDist[p] = full
			used++
		}
	}
	if used != len(over) {
		return fmt.Errorf("core: overflow records do not match escaped entries (%d records, %d uses)", len(over), used)
	}
	return nil
}

// overflowKey identifies one escaped label entry in the 8-bit encoding.
type overflowKey struct {
	v    int32
	rank uint8
}

func parseOverflowRecs(buf []byte, n uint64, k uint32) ([]overflowRec, error) {
	if len(buf)%9 != 0 {
		return nil, fmt.Errorf("core: overflow section length %d not a multiple of 9", len(buf))
	}
	recs := make([]overflowRec, len(buf)/9)
	for i := range recs {
		rec := buf[i*9 : i*9+9]
		v := int32(binary.LittleEndian.Uint32(rec[0:4]))
		rank := rec[4]
		d := int32(binary.LittleEndian.Uint32(rec[5:9]))
		if v < 0 || uint64(v) >= n || uint32(rank) >= k || d < int32(distOverflow) {
			return nil, fmt.Errorf("core: bad overflow record (v=%d rank=%d d=%d)", v, rank, d)
		}
		recs[i] = overflowRec{v: v, rank: rank, d: d}
	}
	return recs, nil
}

func readV1(br *bufio.Reader, g *graph.Graph) (*Index, error) {
	var b8 [8]byte
	if _, err := io.ReadFull(br, b8[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint64(b8[:])
	if _, err := io.ReadFull(br, b8[:4]); err != nil {
		return nil, err
	}
	k := binary.LittleEndian.Uint32(b8[:4])
	ix, err := newIndexShell(g, n, k)
	if err != nil {
		return nil, err
	}
	for i := range ix.landmarks {
		if _, err := io.ReadFull(br, b8[:4]); err != nil {
			return nil, err
		}
		if err := ix.setLandmark(i, int32(binary.LittleEndian.Uint32(b8[:4]))); err != nil {
			return nil, err
		}
	}
	for i := range ix.highway {
		if _, err := io.ReadFull(br, b8[:4]); err != nil {
			return nil, err
		}
		ix.highway[i] = int32(binary.LittleEndian.Uint32(b8[:4]))
	}
	for i := range ix.labelOff {
		if _, err := io.ReadFull(br, b8[:]); err != nil {
			return nil, err
		}
		ix.labelOff[i] = int64(binary.LittleEndian.Uint64(b8[:]))
	}
	entries, err := ix.validateOffsets(k)
	if err != nil {
		return nil, err
	}
	rank8 := make([]uint8, entries)
	dist8 := make([]uint8, entries)
	if _, err := io.ReadFull(br, rank8); err != nil {
		return nil, err
	}
	if _, err := io.ReadFull(br, dist8); err != nil {
		return nil, err
	}
	if _, err := io.ReadFull(br, b8[:4]); err != nil {
		return nil, err
	}
	nOv := binary.LittleEndian.Uint32(b8[:4])
	if int64(nOv) > entries {
		return nil, fmt.Errorf("core: %d overflow records for %d entries", nOv, entries)
	}
	ovBuf := make([]byte, int64(nOv)*9)
	if _, err := io.ReadFull(br, ovBuf); err != nil {
		return nil, err
	}
	over, err := parseOverflowRecs(ovBuf, n, k)
	if err != nil {
		return nil, err
	}
	if err := ix.decodeLabels(rank8, dist8, k, over); err != nil {
		return nil, err
	}
	return ix, nil
}

func readV2(br *bufio.Reader, g *graph.Graph) (*Index, error) {
	var hdr [v2HeaderLen]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("core: reading v2 header: %w", err)
	}
	var b4 [4]byte
	if _, err := io.ReadFull(br, b4[:]); err != nil {
		return nil, err
	}
	if got, want := crc32.Checksum(hdr[:], castagnoli), binary.LittleEndian.Uint32(b4[:]); got != want {
		return nil, fmt.Errorf("core: v2 header checksum mismatch (got %08x, want %08x)", got, want)
	}
	version := binary.LittleEndian.Uint32(hdr[0:4])
	flags := binary.LittleEndian.Uint32(hdr[4:8])
	n := binary.LittleEndian.Uint64(hdr[8:16])
	k := binary.LittleEndian.Uint32(hdr[16:20])
	nsect := binary.LittleEndian.Uint32(hdr[20:24])
	entries := binary.LittleEndian.Uint64(hdr[24:32])
	nOver := binary.LittleEndian.Uint64(hdr[32:40])
	if version != 2 {
		return nil, fmt.Errorf("core: v2 container with unsupported version %d", version)
	}
	if flags != 0 {
		return nil, fmt.Errorf("core: unsupported v2 flags %#x", flags)
	}
	if nsect == 0 || nsect > v2MaxSection {
		return nil, fmt.Errorf("core: implausible section count %d", nsect)
	}
	ix, err := newIndexShell(g, n, k)
	if err != nil {
		return nil, err
	}
	if entries > n*uint64(k) {
		return nil, fmt.Errorf("core: implausible entry count %d", entries)
	}
	if nOver > entries {
		return nil, fmt.Errorf("core: %d overflow records for %d entries", nOver, entries)
	}

	// Expected byte length per known section; unknown ids are skipped.
	expectLen := map[uint32]uint64{
		sectLandmarks: uint64(k) * 4,
		sectHighway:   uint64(k) * uint64(k) * 4,
		sectLabelOff:  (n + 1) * 8,
		sectLabelRank: entries,
		sectLabelDist: entries,
		sectOverflow:  nOver * 9,
	}
	type tableRow struct {
		id     uint32
		crc    uint32
		length uint64
	}
	rows := make([]tableRow, nsect)
	seen := make(map[uint32]bool, nsect)
	var rowBuf [v2TableRow]byte
	for i := range rows {
		if _, err := io.ReadFull(br, rowBuf[:]); err != nil {
			return nil, fmt.Errorf("core: reading section table: %w", err)
		}
		r := tableRow{
			id:     binary.LittleEndian.Uint32(rowBuf[0:4]),
			crc:    binary.LittleEndian.Uint32(rowBuf[4:8]),
			length: binary.LittleEndian.Uint64(rowBuf[8:16]),
		}
		if want, known := expectLen[r.id]; known {
			if seen[r.id] {
				return nil, fmt.Errorf("core: duplicate section %d", r.id)
			}
			seen[r.id] = true
			if r.length != want {
				return nil, fmt.Errorf("core: section %d has length %d, want %d", r.id, r.length, want)
			}
		}
		rows[i] = r
	}
	// A method-tag section (always the first row and payload when
	// present; see internal/method) marks a container written by one of
	// the other labelling methods. Surface which one instead of failing
	// on missing core sections.
	if rows[0].id == method.SectTag {
		if rows[0].length > 64 {
			return nil, fmt.Errorf("core: implausible method tag length %d", rows[0].length)
		}
		tag := make([]byte, rows[0].length)
		if _, err := io.ReadFull(br, tag); err != nil {
			return nil, fmt.Errorf("core: reading method tag: %w", err)
		}
		return nil, fmt.Errorf("core: index file is method %q, not %q: load it through the method registry (highway.LoadIndexAny)", tag, method.TagHL)
	}
	for id := range expectLen {
		if !seen[id] {
			return nil, fmt.Errorf("core: required section %d missing", id)
		}
	}

	var rank8, dist8 []uint8
	var over []overflowRec
	for _, r := range rows {
		if _, known := expectLen[r.id]; !known {
			// Forward compatibility: an unknown section written by a newer
			// producer is skipped without buffering it.
			if _, err := io.CopyN(io.Discard, br, int64(r.length)); err != nil {
				return nil, fmt.Errorf("core: skipping section %d: %w", r.id, err)
			}
			continue
		}
		buf := make([]byte, r.length)
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, fmt.Errorf("core: reading section %d: %w", r.id, err)
		}
		if got := crc32.Checksum(buf, castagnoli); got != r.crc {
			return nil, fmt.Errorf("core: section %d checksum mismatch (got %08x, want %08x)", r.id, got, r.crc)
		}
		switch r.id {
		case sectLandmarks:
			for i := range ix.landmarks {
				if err := ix.setLandmark(i, int32(binary.LittleEndian.Uint32(buf[i*4:]))); err != nil {
					return nil, err
				}
			}
		case sectHighway:
			for i := range ix.highway {
				ix.highway[i] = int32(binary.LittleEndian.Uint32(buf[i*4:]))
			}
		case sectLabelOff:
			for i := range ix.labelOff {
				ix.labelOff[i] = int64(binary.LittleEndian.Uint64(buf[i*8:]))
			}
			got, err := ix.validateOffsets(k)
			if err != nil {
				return nil, err
			}
			if uint64(got) != entries {
				return nil, fmt.Errorf("core: offsets claim %d entries, header says %d", got, entries)
			}
		case sectLabelRank:
			rank8 = buf
		case sectLabelDist:
			dist8 = buf
		case sectOverflow:
			over, err = parseOverflowRecs(buf, n, k)
			if err != nil {
				return nil, err
			}
		}
	}
	if err := ix.decodeLabels(rank8, dist8, k, over); err != nil {
		return nil, err
	}
	return ix, nil
}

// Save writes the index to a file in the default format (v2).
func (ix *Index) Save(path string) error { return ix.SaveAs(path, FormatV2) }

// SaveAs writes the index to a file in an explicit format.
func (ix *Index) SaveAs(path string, f Format) error {
	file, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := ix.WriteFormat(file, f); err != nil {
		file.Close()
		return err
	}
	return file.Close()
}

// Load reads an index file in either format and attaches it to g.
func Load(path string, g *graph.Graph) (*Index, error) {
	ix, _, err := LoadFormat(path, g)
	return ix, err
}

// LoadFormat is Load, also reporting the file's format (for tooling that
// surfaces or migrates it).
func LoadFormat(path string, g *graph.Graph) (*Index, Format, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	return ReadFormat(f, g)
}

// Verify cross-checks the index against ground-truth BFS on sample vertex
// pairs; it returns an error describing the first mismatch. Used by
// cmd/hlbuild --verify and tests.
func (ix *Index) Verify(samples int, seed int64) error {
	n := ix.g.NumVertices()
	if n == 0 {
		return nil
	}
	sr := ix.NewSearcher()
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < samples; i++ {
		s := int32(rng.Intn(n))
		t := int32(rng.Intn(n))
		want := bfs.Dist(ix.g, s, t)
		if want == bfs.Unreachable {
			want = Infinity
		}
		if got := sr.Distance(s, t); got != want {
			return fmt.Errorf("core: verify: Distance(%d,%d) = %d, want %d", s, t, got, want)
		}
	}
	return nil
}
