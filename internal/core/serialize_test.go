package core

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"testing"

	"highway/internal/gen"
)

// injectUnknownSection rewrites a v2 file to carry one extra section with
// an id the current reader does not know, appended last in both the table
// and the payload area, with the header patched and re-checksummed.
func injectUnknownSection(file []byte, id uint32, payload []byte) ([]byte, error) {
	const tableStart = 8 + v2HeaderLen + 4
	if len(file) < tableStart {
		return nil, fmt.Errorf("file too short (%d bytes)", len(file))
	}
	hdr := append([]byte{}, file[8:8+v2HeaderLen]...)
	nsect := binary.LittleEndian.Uint32(hdr[20:24])
	binary.LittleEndian.PutUint32(hdr[20:24], nsect+1)
	tableEnd := tableStart + int(nsect)*v2TableRow

	var out bytes.Buffer
	out.Write(file[:8])
	out.Write(hdr)
	var b4 [4]byte
	binary.LittleEndian.PutUint32(b4[:], crc32.Checksum(hdr, castagnoli))
	out.Write(b4[:])
	out.Write(file[tableStart:tableEnd])
	var row [v2TableRow]byte
	binary.LittleEndian.PutUint32(row[0:4], id)
	binary.LittleEndian.PutUint32(row[4:8], crc32.Checksum(payload, castagnoli))
	binary.LittleEndian.PutUint64(row[8:16], uint64(len(payload)))
	out.Write(row[:])
	out.Write(file[tableEnd:])
	out.Write(payload)
	return out.Bytes(), nil
}

func TestIndexRoundTrip(t *testing.T) {
	g := gen.BarabasiAlbert(300, 3, 13)
	ix, err := Build(g, g.DegreeOrder()[:12])
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []Format{FormatV1, FormatV2} {
		t.Run(f.String(), func(t *testing.T) {
			var buf bytes.Buffer
			if err := ix.WriteFormat(&buf, f); err != nil {
				t.Fatal(err)
			}
			ix2, got, err := ReadFormat(&buf, g)
			if err != nil {
				t.Fatal(err)
			}
			if got != f {
				t.Fatalf("ReadFormat reported %v, wrote %v", got, f)
			}
			if !indexesIdentical(ix, ix2) {
				t.Fatal("round trip produced a different index")
			}
			for i := range ix.landmarks {
				if ix.landmarks[i] != ix2.landmarks[i] {
					t.Fatal("landmarks differ")
				}
			}
			if err := ix2.Verify(200, 1); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestV1V2SameIndex: both formats must decode to the identical in-memory
// index, so a v1→v2 migration is lossless by construction.
func TestV1V2SameIndex(t *testing.T) {
	g := gen.BarabasiAlbert(200, 3, 7)
	ix, err := Build(g, g.DegreeOrder()[:9])
	if err != nil {
		t.Fatal(err)
	}
	var b1, b2 bytes.Buffer
	if err := ix.WriteFormat(&b1, FormatV1); err != nil {
		t.Fatal(err)
	}
	if err := ix.WriteFormat(&b2, FormatV2); err != nil {
		t.Fatal(err)
	}
	r1, err := Read(&b1, g)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Read(&b2, g)
	if err != nil {
		t.Fatal(err)
	}
	if !indexesIdentical(r1, r2) {
		t.Fatal("v1 and v2 decode to different indexes")
	}
}

func TestIndexRoundTripWithOverflow(t *testing.T) {
	g := gen.Path(600)
	ix, err := Build(g, []int32{0, 599})
	if err != nil {
		t.Fatal(err)
	}
	if ix.numOverflow() == 0 {
		t.Fatal("test premise broken: no overflow entries")
	}
	for _, f := range []Format{FormatV1, FormatV2} {
		t.Run(f.String(), func(t *testing.T) {
			var buf bytes.Buffer
			if err := ix.WriteFormat(&buf, f); err != nil {
				t.Fatal(err)
			}
			ix2, err := Read(&buf, g)
			if err != nil {
				t.Fatal(err)
			}
			if ix2.numOverflow() != ix.numOverflow() {
				t.Fatalf("overflow entries: %d, want %d", ix2.numOverflow(), ix.numOverflow())
			}
			sr := ix2.NewSearcher()
			if d := sr.Distance(5, 595); d != 590 {
				t.Fatalf("d(5,595) = %d, want 590", d)
			}
		})
	}
}

func TestIndexFileRoundTrip(t *testing.T) {
	g := gen.PaperFigure2()
	ix, err := Build(g, gen.PaperLandmarks())
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/idx.bin"
	if err := ix.Save(path); err != nil {
		t.Fatal(err)
	}
	ix2, f, err := LoadFormat(path, g)
	if err != nil {
		t.Fatal(err)
	}
	if f != FormatV2 {
		t.Fatalf("Save default wrote %v, want v2", f)
	}
	if ix2.NumEntries() != 13 {
		t.Fatalf("entries = %d, want 13", ix2.NumEntries())
	}

	// Explicit v1 save stays loadable (the compatibility path).
	v1path := t.TempDir() + "/idx.v1"
	if err := ix.SaveAs(v1path, FormatV1); err != nil {
		t.Fatal(err)
	}
	ix1, f, err := LoadFormat(v1path, g)
	if err != nil {
		t.Fatal(err)
	}
	if f != FormatV1 {
		t.Fatalf("v1 file detected as %v", f)
	}
	if !indexesIdentical(ix1, ix2) {
		t.Fatal("v1 and v2 files decode differently")
	}
}

func TestReadRejectsCorruptIndex(t *testing.T) {
	g := gen.PaperFigure2()
	ix, err := Build(g, gen.PaperLandmarks())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []Format{FormatV1, FormatV2} {
		t.Run(f.String(), func(t *testing.T) {
			var buf bytes.Buffer
			if err := ix.WriteFormat(&buf, f); err != nil {
				t.Fatal(err)
			}
			good := buf.Bytes()

			// Wrong magic.
			bad := append([]byte{}, good...)
			bad[0] = 'X'
			if _, err := Read(bytes.NewReader(bad), g); err == nil {
				t.Error("bad magic accepted")
			}
			// Wrong graph.
			if _, err := Read(bytes.NewReader(good), gen.Path(3)); err == nil {
				t.Error("mismatched graph accepted")
			}
			// Truncated stream.
			if _, err := Read(bytes.NewReader(good[:len(good)-3]), g); err == nil {
				t.Error("truncated stream accepted")
			}
			// Garbage.
			if _, err := Read(bytes.NewReader([]byte("garbage!")), g); err == nil {
				t.Error("garbage accepted")
			}
		})
	}
}

// TestV2ChecksumCatchesBitFlips: any single corrupted payload byte must be
// rejected by a section CRC (v1 has no such protection — that asymmetry
// is the point of v2).
func TestV2ChecksumCatchesBitFlips(t *testing.T) {
	g := gen.PaperFigure2()
	ix, err := Build(g, gen.PaperLandmarks())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ix.WriteFormat(&buf, FormatV2); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	// Flip one bit in every byte position past the magic, one at a time;
	// each corruption must be rejected (header CRC, table mismatch, or
	// section CRC).
	accepted := 0
	for pos := 8; pos < len(good); pos++ {
		bad := append([]byte{}, good...)
		bad[pos] ^= 0x10
		if _, err := Read(bytes.NewReader(bad), g); err == nil {
			accepted++
			t.Logf("bit flip at offset %d accepted", pos)
		}
	}
	if accepted != 0 {
		t.Fatalf("%d single-byte corruptions accepted", accepted)
	}
}

// TestV2SkipsUnknownSections: forward compatibility — a file carrying an
// extra section with an unknown id must still load.
func TestV2SkipsUnknownSections(t *testing.T) {
	g := gen.PaperFigure2()
	ix, err := Build(g, gen.PaperLandmarks())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ix.WriteFormat(&buf, FormatV2); err != nil {
		t.Fatal(err)
	}
	withExtra, err := injectUnknownSection(buf.Bytes(), 99, []byte("future payload"))
	if err != nil {
		t.Fatal(err)
	}
	ix2, err := Read(bytes.NewReader(withExtra), g)
	if err != nil {
		t.Fatalf("file with unknown section rejected: %v", err)
	}
	if !indexesIdentical(ix, ix2) {
		t.Fatal("unknown section changed the decoded index")
	}
}

func TestVerifyDetectsCorruption(t *testing.T) {
	g := gen.BarabasiAlbert(120, 3, 3)
	ix, err := Build(g, g.DegreeOrder()[:5])
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Verify(100, 2); err != nil {
		t.Fatalf("clean index failed verify: %v", err)
	}
	// Corrupt one stored distance and expect Verify to notice: a too-large
	// entry inflates some exact distance.
	for p := range ix.labelDist {
		if ix.labelDist[p] >= 1 {
			ix.labelDist[p] += 3
			break
		}
	}
	if err := ix.Verify(2000, 2); err == nil {
		t.Fatal("corrupted index passed verification")
	}
}
