package core

import (
	"bytes"
	"testing"

	"highway/internal/gen"
)

func TestIndexRoundTrip(t *testing.T) {
	g := gen.BarabasiAlbert(300, 3, 13)
	ix, err := Build(g, g.DegreeOrder()[:12])
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ix.Write(&buf); err != nil {
		t.Fatal(err)
	}
	ix2, err := Read(&buf, g)
	if err != nil {
		t.Fatal(err)
	}
	if !indexesIdentical(ix, ix2) {
		t.Fatal("round trip produced a different index")
	}
	for i := range ix.landmarks {
		if ix.landmarks[i] != ix2.landmarks[i] {
			t.Fatal("landmarks differ")
		}
	}
	if err := ix2.Verify(200, 1); err != nil {
		t.Fatal(err)
	}
}

func TestIndexRoundTripWithOverflow(t *testing.T) {
	g := gen.Path(600)
	ix, err := Build(g, []int32{0, 599})
	if err != nil {
		t.Fatal(err)
	}
	if len(ix.overflow) == 0 {
		t.Fatal("test premise broken: no overflow entries")
	}
	var buf bytes.Buffer
	if err := ix.Write(&buf); err != nil {
		t.Fatal(err)
	}
	ix2, err := Read(&buf, g)
	if err != nil {
		t.Fatal(err)
	}
	if len(ix2.overflow) != len(ix.overflow) {
		t.Fatalf("overflow table: %d entries, want %d", len(ix2.overflow), len(ix.overflow))
	}
	sr := ix2.NewSearcher()
	if d := sr.Distance(5, 595); d != 590 {
		t.Fatalf("d(5,595) = %d, want 590", d)
	}
}

func TestIndexFileRoundTrip(t *testing.T) {
	g := gen.PaperFigure2()
	ix, err := Build(g, gen.PaperLandmarks())
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/idx.bin"
	if err := ix.Save(path); err != nil {
		t.Fatal(err)
	}
	ix2, err := Load(path, g)
	if err != nil {
		t.Fatal(err)
	}
	if ix2.NumEntries() != 13 {
		t.Fatalf("entries = %d, want 13", ix2.NumEntries())
	}
}

func TestReadRejectsCorruptIndex(t *testing.T) {
	g := gen.PaperFigure2()
	ix, err := Build(g, gen.PaperLandmarks())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ix.Write(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	// Wrong magic.
	bad := append([]byte{}, good...)
	bad[0] = 'X'
	if _, err := Read(bytes.NewReader(bad), g); err == nil {
		t.Error("bad magic accepted")
	}
	// Wrong graph.
	if _, err := Read(bytes.NewReader(good), gen.Path(3)); err == nil {
		t.Error("mismatched graph accepted")
	}
	// Truncated stream.
	if _, err := Read(bytes.NewReader(good[:len(good)-3]), g); err == nil {
		t.Error("truncated stream accepted")
	}
	// Garbage.
	if _, err := Read(bytes.NewReader([]byte("garbage")), g); err == nil {
		t.Error("garbage accepted")
	}
}

func TestVerifyDetectsCorruption(t *testing.T) {
	g := gen.BarabasiAlbert(120, 3, 3)
	ix, err := Build(g, g.DegreeOrder()[:5])
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Verify(100, 2); err != nil {
		t.Fatalf("clean index failed verify: %v", err)
	}
	// Corrupt one stored distance and expect Verify to notice. Pick an
	// entry with distance ≥ 1 and add 3 (keeps it a valid upper bound on
	// nothing — bounds must stay ≥ true distances for detection, and a
	// too-large entry inflates some exact distance).
	for p := range ix.labelDist {
		if ix.labelDist[p] >= 1 && ix.labelDist[p] < 200 {
			ix.labelDist[p] += 3
			break
		}
	}
	if err := ix.Verify(2000, 2); err == nil {
		t.Fatal("corrupted index passed verification")
	}
}
