// Package datasets is the registry of the 12 networks of the paper's
// Table 1, realized as seeded synthetic stand-ins (see DESIGN.md
// "Substitutions"). The real datasets span 1.7M-2B vertices and 85MB-55GB
// on disk; each stand-in keeps the network's *shape* — its family
// (preferential attachment for social graphs, R-MAT for skewed web
// crawls), its average degree m/n, and its hub structure — at roughly
// 1:100 the vertex count (1:2000 for ClueWeb09), which is what the
// paper's algorithms are sensitive to.
//
// Every stand-in is generated deterministically from a per-name seed and
// reduced to its largest connected component (the paper assumes connected
// graphs, Section 2).
package datasets

import (
	"fmt"
	"sort"
	"sync"

	"highway/internal/gen"
	"highway/internal/graph"
)

// Family classifies the generator used for a stand-in.
type Family string

const (
	// FamilySocial uses Barabási–Albert preferential attachment.
	FamilySocial Family = "social"
	// FamilyWeb uses R-MAT with the classic (0.57,0.19,0.19,0.05) skew.
	FamilyWeb Family = "web"
)

// Dataset describes one Table 1 network and its synthetic stand-in.
type Dataset struct {
	Name string
	Type string // the paper's network type column
	// Paper statistics (for EXPERIMENTS.md comparisons).
	PaperN string
	PaperM string
	// Stand-in parameters.
	Family Family
	N      int   // target vertex count before LCC reduction (BA) or 2^scale (R-MAT)
	Deg    int   // edges per vertex (BA k, R-MAT edge factor) ≈ paper's m/n
	Scale  uint  // R-MAT scale (2^Scale vertices); 0 for BA
	Seed   int64 // generation seed
}

// Registry lists the paper's 12 datasets in Table 1 order.
var Registry = []Dataset{
	{Name: "Skitter", Type: "computer", PaperN: "1.7M", PaperM: "11M", Family: FamilySocial, N: 17000, Deg: 7, Seed: 101},
	{Name: "Flickr", Type: "social", PaperN: "1.7M", PaperM: "16M", Family: FamilySocial, N: 17000, Deg: 9, Seed: 102},
	{Name: "Hollywood", Type: "social", PaperN: "1.1M", PaperM: "114M", Family: FamilySocial, N: 11000, Deg: 50, Seed: 103},
	{Name: "Orkut", Type: "social", PaperN: "3.1M", PaperM: "117M", Family: FamilySocial, N: 31000, Deg: 38, Seed: 104},
	{Name: "enwiki2013", Type: "social", PaperN: "4.2M", PaperM: "101M", Family: FamilySocial, N: 42000, Deg: 22, Seed: 105},
	{Name: "LiveJournal", Type: "social", PaperN: "4.8M", PaperM: "69M", Family: FamilySocial, N: 48000, Deg: 9, Seed: 106},
	{Name: "Indochina", Type: "web", PaperN: "7.4M", PaperM: "194M", Family: FamilyWeb, Scale: 16, Deg: 20, Seed: 107},
	{Name: "it2004", Type: "web", PaperN: "41M", PaperM: "1.2B", Family: FamilyWeb, Scale: 17, Deg: 25, Seed: 108},
	{Name: "Twitter", Type: "social", PaperN: "42M", PaperM: "1.5B", Family: FamilyWeb, Scale: 17, Deg: 29, Seed: 109},
	{Name: "Friendster", Type: "social", PaperN: "66M", PaperM: "1.8B", Family: FamilySocial, N: 160000, Deg: 22, Seed: 110},
	{Name: "uk2007", Type: "web", PaperN: "106M", PaperM: "3.7B", Family: FamilyWeb, Scale: 18, Deg: 31, Seed: 111},
	{Name: "ClueWeb09", Type: "computer", PaperN: "2B", PaperM: "8B", Family: FamilyWeb, Scale: 20, Deg: 4, Seed: 112},
}

// ByName returns the registry entry with the given (case-sensitive) name.
func ByName(name string) (Dataset, error) {
	for _, d := range Registry {
		if d.Name == name {
			return d, nil
		}
	}
	return Dataset{}, fmt.Errorf("datasets: unknown dataset %q (known: %v)", name, Names())
}

// Names lists the registry names in Table 1 order.
func Names() []string {
	names := make([]string, len(Registry))
	for i, d := range Registry {
		names[i] = d.Name
	}
	return names
}

// Generate builds the stand-in at 1/shrink of its standard size (shrink=1
// is the standard ~1:100 stand-in; tests use larger shrinks) and reduces
// it to its largest connected component.
func (d Dataset) Generate(shrink int) *graph.Graph {
	if shrink < 1 {
		shrink = 1
	}
	var g *graph.Graph
	switch d.Family {
	case FamilySocial:
		n := d.N / shrink
		if n < d.Deg+2 {
			n = d.Deg + 2
		}
		g = gen.BarabasiAlbert(n, d.Deg/2, d.Seed)
	case FamilyWeb:
		scale := d.Scale
		for s := shrink; s > 1 && scale > 8; s /= 2 {
			scale--
		}
		g = gen.RMAT(scale, d.Deg, 0.57, 0.19, 0.19, d.Seed)
	default:
		panic(fmt.Sprintf("datasets: unknown family %q", d.Family))
	}
	lcc, _ := graph.LargestComponent(g)
	return lcc
}

var (
	cacheMu sync.Mutex
	cache   = map[string]*graph.Graph{}
)

// Load returns the stand-in graph, memoizing per (name, shrink) so that
// benches and the harness reuse one instance.
func (d Dataset) Load(shrink int) *graph.Graph {
	key := fmt.Sprintf("%s/%d", d.Name, shrink)
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if g, ok := cache[key]; ok {
		return g
	}
	g := d.Generate(shrink)
	cache[key] = g
	return g
}

// Stats describes a stand-in for the Table 1 reproduction.
type Stats struct {
	Name      string
	Type      string
	N         int
	M         int64
	MOverN    float64
	AvgDeg    float64
	MaxDeg    int
	SizeBytes int64
	PaperN    string
	PaperM    string
}

// Describe computes the Table 1 row for the generated stand-in.
func (d Dataset) Describe(g *graph.Graph) Stats {
	maxDeg, _ := g.MaxDegree()
	return Stats{
		Name:      d.Name,
		Type:      d.Type,
		N:         g.NumVertices(),
		M:         g.NumEdges(),
		MOverN:    float64(g.NumEdges()) / float64(g.NumVertices()),
		AvgDeg:    g.AvgDegree(),
		MaxDeg:    maxDeg,
		SizeBytes: g.SizeBytes(),
		PaperN:    d.PaperN,
		PaperM:    d.PaperM,
	}
}

// SmallSet returns the registry subset suitable for quick runs (stand-ins
// that stay under ~0.5M edges at shrink 1), sorted by edge count of their
// standard size estimate.
func SmallSet() []Dataset {
	var out []Dataset
	for _, d := range Registry {
		if estEdges(d) <= 500_000 {
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool { return estEdges(out[i]) < estEdges(out[j]) })
	return out
}

func estEdges(d Dataset) int64 {
	if d.Family == FamilySocial {
		return int64(d.N) * int64(d.Deg) / 2
	}
	return int64(1<<d.Scale) * int64(d.Deg)
}
