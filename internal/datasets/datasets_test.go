package datasets

import (
	"testing"

	"highway/internal/graph"
)

func TestRegistryComplete(t *testing.T) {
	if len(Registry) != 12 {
		t.Fatalf("registry has %d datasets, want 12 (Table 1)", len(Registry))
	}
	seen := map[string]bool{}
	for _, d := range Registry {
		if seen[d.Name] {
			t.Fatalf("duplicate dataset %q", d.Name)
		}
		seen[d.Name] = true
		if d.Seed == 0 {
			t.Fatalf("%s: zero seed", d.Name)
		}
	}
	for _, want := range []string{"Skitter", "Hollywood", "Twitter", "ClueWeb09"} {
		if !seen[want] {
			t.Fatalf("missing Table 1 dataset %q", want)
		}
	}
}

func TestByName(t *testing.T) {
	d, err := ByName("Flickr")
	if err != nil || d.Name != "Flickr" {
		t.Fatalf("ByName(Flickr) = %v, %v", d, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown name accepted")
	}
	if len(Names()) != 12 {
		t.Fatal("Names() incomplete")
	}
}

func TestGenerateShapes(t *testing.T) {
	// Shrunk heavily so the test stays fast; shapes must still hold.
	for _, name := range []string{"Skitter", "Indochina"} {
		d, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		g := d.Generate(16)
		if g.NumVertices() < 100 {
			t.Fatalf("%s: only %d vertices", name, g.NumVertices())
		}
		if !graph.IsConnected(g) {
			t.Fatalf("%s: stand-in not connected after LCC", name)
		}
		maxDeg, _ := g.MaxDegree()
		if float64(maxDeg) < 3*g.AvgDegree() {
			t.Fatalf("%s: no hubs (max %d avg %.1f)", name, maxDeg, g.AvgDegree())
		}
		st := d.Describe(g)
		if st.N != g.NumVertices() || st.M != g.NumEdges() || st.MaxDeg != maxDeg {
			t.Fatalf("%s: Describe mismatch: %+v", name, st)
		}
	}
}

func TestLoadMemoizes(t *testing.T) {
	d, err := ByName("LiveJournal")
	if err != nil {
		t.Fatal(err)
	}
	a := d.Load(32)
	b := d.Load(32)
	if a != b {
		t.Fatal("Load did not memoize")
	}
	if c := d.Load(64); c == a {
		t.Fatal("different shrink returned the same graph")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	d, err := ByName("Flickr")
	if err != nil {
		t.Fatal(err)
	}
	a := d.Generate(16)
	b := d.Generate(16)
	if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() {
		t.Fatal("generation not deterministic")
	}
}

func TestSmallSet(t *testing.T) {
	small := SmallSet()
	if len(small) == 0 {
		t.Fatal("no small datasets")
	}
	for _, d := range small {
		if estEdges(d) > 500_000 {
			t.Fatalf("%s exceeds the small-set budget", d.Name)
		}
	}
	for i := 1; i < len(small); i++ {
		if estEdges(small[i-1]) > estEdges(small[i]) {
			t.Fatal("small set not sorted by size")
		}
	}
}
