package dynhl

// BenchmarkDeleteMaint locates the selective-repair vs full-rebuild
// crossover that RepairFraction gates (medians published in
// BENCH_CHURN.json, discussed in EXPERIMENTS.md): each sub-benchmark
// deletes one edge whose removal dirties exactly d of the k landmarks,
// with the scheduler pinned to one strategy — "repair" re-runs a pruned
// BFS per dirty landmark, "rebuild" replaces all labels with one
// parallel from-scratch build. Edges are pre-bucketed by their exact
// dirty count (the unified d(r,a) ≠ d(r,b) test), so ns/op is the
// maintenance cost at a known dirty fraction; the restore between
// iterations (re-inserting the edge) runs with the timer stopped.
//
// BenchmarkChurnBatch is the operational companion: random 8-op
// mixed batches at a 30% delete ratio under the default scheduler,
// the shape `hlserve load -deleteratio` produces.

import (
	"fmt"
	"math/rand"
	"testing"

	"highway/internal/gen"
)

// bucketEdgesByDirty scans every live edge and groups it by how many
// landmarks its deletion would dirty.
func bucketEdgesByDirty(ix *Index) map[int][][2]int32 {
	k := len(ix.landmarks)
	buckets := make(map[int][][2]int32)
	for a := int32(0); int(a) < ix.n; a++ {
		for _, b := range ix.Neighbors(a) {
			if b < a {
				continue
			}
			d := 0
			for r := 0; r < k; r++ {
				if ix.distFromLandmark(r, a) != ix.distFromLandmark(r, b) {
					d++
				}
			}
			buckets[d] = append(buckets[d], [2]int32{a, b})
		}
	}
	return buckets
}

func BenchmarkDeleteMaint(b *testing.B) {
	const n, k = 20000, 16
	g := gen.BarabasiAlbert(n, 5, 1)
	landmarks := g.DegreeOrder()[:k]
	base, err := Build(g, landmarks)
	if err != nil {
		b.Fatal(err)
	}
	buckets := bucketEdgesByDirty(base)
	for _, d := range []int{1, 2, 4, 8, 12, 16} {
		if len(buckets[d]) == 0 {
			b.Fatalf("no edges dirty exactly %d landmarks", d)
		}
		for _, mode := range []struct {
			name string
			frac float64 // pinned RepairFraction: <0 never rebuilds, ~0 always does
		}{{"repair", -1}, {"rebuild", 1e-9}} {
			b.Run(fmt.Sprintf("dirty=%d/%s", d, mode.name), func(b *testing.B) {
				dyn, err := Build(g, landmarks)
				if err != nil {
					b.Fatal(err)
				}
				rng := rand.New(rand.NewSource(42))
				pool := buckets[d]
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					e := pool[rng.Intn(len(pool))]
					dyn.SetRepairFraction(mode.frac)
					b.StartTimer()
					res, err := dyn.ApplyOps(DeleteOps([][2]int32{e}))
					b.StopTimer()
					if err != nil {
						b.Fatal(err)
					}
					if res.Dirty != d {
						b.Fatalf("edge %v dirtied %d landmarks, bucketed as %d", e, res.Dirty, d)
					}
					// Restore under selective repair (exact for
					// insertions) so the next iteration starts from the
					// same graph without a timed rebuild.
					dyn.SetRepairFraction(-1)
					if _, err := dyn.ApplyOps(InsertOps([][2]int32{e})); err != nil {
						b.Fatal(err)
					}
					b.StartTimer()
				}
			})
		}
	}
}

// randomLiveEdges draws bs distinct live edges from the current
// adjacency, endpoint-first so hubs are no likelier per edge than the
// degree distribution already makes them.
func randomLiveEdges(rng *rand.Rand, ix *Index, bs int) [][2]int32 {
	seen := make(map[[2]int32]bool, bs)
	edges := make([][2]int32, 0, bs)
	for len(edges) < bs {
		a := int32(rng.Intn(ix.n))
		nb := ix.Neighbors(a)
		if len(nb) == 0 {
			continue
		}
		c := nb[rng.Intn(len(nb))]
		key := [2]int32{a, c}
		if key[0] > key[1] {
			key[0], key[1] = key[1], key[0]
		}
		if seen[key] {
			continue
		}
		seen[key] = true
		edges = append(edges, [2]int32{a, c})
	}
	return edges
}

func BenchmarkChurnBatch(b *testing.B) {
	const n, k, batch = 20000, 16, 8
	g := gen.BarabasiAlbert(n, 5, 1)
	dyn, err := Build(g, g.DegreeOrder()[:k])
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		dels := randomLiveEdges(rng, dyn, batch*3/10)
		var ins [][2]int32
		for len(ins) < batch-len(dels) {
			e := [2]int32{int32(rng.Intn(n)), int32(rng.Intn(n))}
			if e[0] != e[1] && !dyn.hasEdge(e[0], e[1]) {
				ins = append(ins, e)
			}
		}
		ops := append(DeleteOps(dels), InsertOps(ins)...)
		b.StartTimer()
		if _, err := dyn.ApplyOps(ops); err != nil {
			b.Fatal(err)
		}
	}
	st := dyn.Maint()
	b.ReportMetric(float64(st.LandmarksRebuilt)/float64(b.N), "rebuiltLM/op")
}
