package dynhl

import (
	"testing"

	"highway/internal/gen"
	"highway/internal/graph"
	"highway/internal/oracle"
)

// toOps converts the oracle harness's neutral op type to this
// package's. The two structs are deliberately identical; the oracle
// package cannot import dynhl without inverting the dependency order.
func toOps(ops []oracle.EdgeOp) []Op {
	out := make([]Op, len(ops))
	for i, op := range ops {
		out[i] = Op{A: op.A, B: op.B, Del: op.Del}
	}
	return out
}

// churnHooks adapts a dynamic index to the oracle churn harness.
func churnHooks(dyn *Index) (func(ops []oracle.EdgeOp) error, func() oracle.Oracle) {
	apply := func(ops []oracle.EdgeOp) error {
		_, err := dyn.ApplyOps(toOps(ops))
		return err
	}
	return apply, func() oracle.Oracle { return dyn }
}

// TestChurnOracleDifferential is the acceptance gate for decremental
// maintenance: 10,000 seeded mixed insert/delete ops in 1,250 batches
// against a plain-adjacency mirror, with every sampled distance checked
// against BFS ground truth after every batch. Batches are small enough
// that most are absorbed by selective repair while the occasional
// wide-blast-radius batch crosses the RepairFraction threshold, so both
// maintenance paths run under one differential.
func TestChurnOracleDifferential(t *testing.T) {
	g := gen.BarabasiAlbert(300, 2, 7)
	dyn, err := Build(g, g.DegreeOrder()[:12])
	if err != nil {
		t.Fatal(err)
	}
	apply, o := churnHooks(dyn)
	oracle.CheckChurn(t, g, oracle.ChurnConfig{
		Batches:     1250,
		BatchSize:   8,
		DeleteRatio: 0.3,
		Trials:      24,
		Seed:        7,
	}, apply, o)
	if m := dyn.Maint(); m.SelectiveRepairs == 0 || m.FullRebuilds == 0 {
		t.Fatalf("churn exercised only one maintenance path: %+v", m)
	}
}

// TestChurnCornerCases churns every corner-case family. Degenerate
// starting shapes (path, star, disconnected) hit the states random
// graphs rarely visit: deleting a bridge edge, re-inserting it, and
// landmarks whose component empties out entirely.
func TestChurnCornerCases(t *testing.T) {
	oracle.CheckChurnCases(t, oracle.ChurnConfig{Seed: 3},
		func(t *testing.T, g *graph.Graph) (func(ops []oracle.EdgeOp) error, func() oracle.Oracle) {
			k := g.NumVertices()
			if k > 4 {
				k = 4
			}
			dyn, err := Build(g, g.DegreeOrder()[:k])
			if err != nil {
				t.Fatal(err)
			}
			return churnHooks(dyn)
		})
}

// TestChurnRepairOnlyDifferential re-runs a smaller churn with the
// full-rebuild fallback disabled, so every batch must be absorbed by
// selective landmark repair alone — isolating the repair path from the
// rebuild safety net that could otherwise mask its bugs.
func TestChurnRepairOnlyDifferential(t *testing.T) {
	g := gen.WattsStrogatz(120, 3, 0.2, 11)
	dyn, err := Build(g, g.DegreeOrder()[:8])
	if err != nil {
		t.Fatal(err)
	}
	dyn.SetRepairFraction(-1) // never fall back to a full rebuild
	apply, o := churnHooks(dyn)
	oracle.CheckChurn(t, g, oracle.ChurnConfig{
		Batches:     80,
		BatchSize:   12,
		DeleteRatio: 0.4,
		Trials:      60,
		Seed:        11,
	}, apply, o)
	if m := dyn.Maint(); m.FullRebuilds != 0 {
		t.Fatalf("disabled fallback still rebuilt: %+v", m)
	}
}
