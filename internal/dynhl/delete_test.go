package dynhl

import (
	"math/rand"
	"testing"
	"testing/quick"

	"highway/internal/bfs"
	"highway/internal/core"
	"highway/internal/gen"
	"highway/internal/graph"
)

// requireMatchesRebuild compares the dynamic index label-for-label and
// highway-cell-for-highway-cell against a from-scratch static build on
// the same edge set — the decremental core invariant.
func requireMatchesRebuild(t *testing.T, tag string, dyn *Index, m *mirror, lm []int32) {
	t.Helper()
	ref, err := core.Build(m.graph(), lm)
	if err != nil {
		t.Fatal(err)
	}
	if dyn.NumEntries() != ref.NumEntries() {
		t.Fatalf("%s: entries dyn=%d ref=%d", tag, dyn.NumEntries(), ref.NumEntries())
	}
	k := len(lm)
	for i, vi := range lm {
		for j, vj := range lm {
			if got, want := dyn.highway[i*k+j], ref.Highway(vi, vj); got != want {
				t.Fatalf("%s: highway[%d,%d] dyn=%d ref=%d", tag, i, j, got, want)
			}
		}
	}
	for v := int32(0); int(v) < m.n; v++ {
		ranks, dists := ref.Label(v)
		dl := dyn.labels[v]
		if len(dl) != len(ranks) {
			t.Fatalf("%s vertex %d: |L| dyn=%d ref=%d", tag, v, len(dl), len(ranks))
		}
		for i := range dl {
			if dl[i].rank != ranks[i] || dl[i].dist != dists[i] {
				t.Fatalf("%s vertex %d entry %d: dyn=(%d,%d) ref=(%d,%d)",
					tag, v, i, dl[i].rank, dl[i].dist, ranks[i], dists[i])
			}
		}
	}
}

// TestDeleteMatchesRebuild is the decremental twin of
// TestInsertMatchesRebuild: after any deletion sequence the dynamic
// index must be identical (labels and highway) to a from-scratch build
// on the surviving edge set — including once deletions disconnect it.
func TestDeleteMatchesRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	g := gen.BarabasiAlbert(150, 2, 3)
	lm := g.DegreeOrder()[:6]
	dyn, err := Build(g, lm)
	if err != nil {
		t.Fatal(err)
	}
	m := newMirror(g)
	for round := 0; round < 25; round++ {
		e := m.edges[rng.Intn(len(m.edges))]
		if err := dyn.DeleteEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
		m.delete(e[0], e[1])
		requireMatchesRebuild(t, "round", dyn, m, lm)
	}
}

// TestMixedOpsMatchRebuild interleaves insertions and deletions in one
// ApplyOps batch: the shared dirty set must stay exact when an edge
// inserted earlier in the batch is deleted later in it and vice versa.
func TestMixedOpsMatchRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	g := gen.ErdosRenyi(120, 220, 4)
	lm := g.DegreeOrder()[:5]
	dyn, err := Build(g, lm)
	if err != nil {
		t.Fatal(err)
	}
	m := newMirror(g)
	for round := 0; round < 12; round++ {
		var ops []Op
		for i := 0; i < 6; i++ {
			if rng.Intn(2) == 0 && len(m.edges) > 0 {
				e := m.edges[rng.Intn(len(m.edges))]
				ops = append(ops, Op{A: e[0], B: e[1], Del: true})
				m.delete(e[0], e[1])
			} else {
				a, b := int32(rng.Intn(120)), int32(rng.Intn(120))
				ops = append(ops, Op{A: a, B: b})
				if a != b && !m.graph().HasEdge(a, b) {
					m.insert(a, b)
				}
			}
		}
		if _, err := dyn.ApplyOps(ops); err != nil {
			t.Fatal(err)
		}
		requireMatchesRebuild(t, "round", dyn, m, lm)
	}
}

// TestDeleteDetectionSkipsCleanLandmarks pins the d(r,a)=d(r,b) skip on
// the decremental side: removing an edge between two vertices
// equidistant from the landmark lies on none of its shortest paths, so
// no repair work may happen at all.
func TestDeleteDetectionSkipsCleanLandmarks(t *testing.T) {
	g := gen.Star(10)
	dyn, err := Build(g, []int32{0})
	if err != nil {
		t.Fatal(err)
	}
	if err := dyn.InsertEdge(3, 7); err != nil {
		t.Fatal(err)
	}
	before := dyn.Maint()
	res, err := dyn.ApplyOps([]Op{{A: 3, B: 7, Del: true}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Deleted != 1 || res.Dirty != 0 || res.Rebuilt {
		t.Fatalf("clean delete did repair work: %+v", res)
	}
	if dyn.Maint() != before {
		t.Fatalf("maintenance ran for a clean delete: %+v", dyn.Maint())
	}
	if d := dyn.Distance(3, 7); d != 2 {
		t.Fatalf("d(3,7) = %d after delete, want 2 (via center)", d)
	}
}

// TestDeleteDisconnects exercises the newly-unreachable path: removing a
// bridge must flip distances to Infinity, in labels and highway alike.
func TestDeleteDisconnects(t *testing.T) {
	g := graph.MustFromEdges(7, [][2]int32{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6}})
	dyn, err := Build(g, []int32{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if d := dyn.Distance(0, 6); d != 6 {
		t.Fatalf("pre-delete d(0,6) = %d", d)
	}
	if err := dyn.DeleteEdge(2, 3); err != nil {
		t.Fatal(err)
	}
	if d := dyn.Distance(0, 6); d != Infinity {
		t.Fatalf("post-delete d(0,6) = %d, want Infinity", d)
	}
	if h := dyn.highway[1]; h != Infinity {
		t.Fatalf("post-delete δH(1,4) = %d, want Infinity", h)
	}
	if d := dyn.Distance(0, 2); d != 2 {
		t.Fatalf("post-delete d(0,2) = %d, want 2", d)
	}
	// Reconnecting through a different vertex must repair again.
	if err := dyn.InsertEdge(0, 6); err != nil {
		t.Fatal(err)
	}
	if d := dyn.Distance(2, 3); d != 6 {
		t.Fatalf("after reconnect d(2,3) = %d, want 6 (2-1-0-6-5-4-3)", d)
	}
}

// TestDeleteNoOps: absent edges and self-loops are acked no-ops (the
// idempotence WAL replay depends on), and range validation still fires.
func TestDeleteNoOps(t *testing.T) {
	g := gen.Cycle(8)
	dyn, err := Build(g, []int32{0})
	if err != nil {
		t.Fatal(err)
	}
	before := dyn.NumEntries()
	if err := dyn.DeleteEdge(3, 3); err != nil {
		t.Fatal(err)
	}
	if err := dyn.DeleteEdge(2, 6); err != nil { // never an edge
		t.Fatal(err)
	}
	res, err := dyn.ApplyOps(DeleteOps([][2]int32{{0, 1}, {0, 1}}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Deleted != 1 {
		t.Fatalf("double delete of one edge counted %d", res.Deleted)
	}
	if err := dyn.DeleteEdge(0, 99); err == nil {
		t.Fatal("out-of-range delete accepted")
	}
	if err := dyn.DeleteEdges(nil); err != nil {
		t.Fatal(err)
	}
	if dyn.NumEntries() != before {
		t.Fatalf("entries %d after cycle-edge delete, want %d (every vertex stays labelled)",
			dyn.NumEntries(), before)
	}
	// The surviving path 0-7-6-...-1 must be what queries see.
	if d := dyn.Distance(0, 1); d != 7 {
		t.Fatalf("d(0,1) = %d after deleting the direct edge, want 7", d)
	}
}

// TestThresholdFullRebuild pins the repair/rebuild fallback: a batch
// dirtying every landmark must take the full-rebuild path under the
// default fraction, must not under a disabled fraction, and both paths
// must produce the identical labelling.
func TestThresholdFullRebuild(t *testing.T) {
	build := func(frac float64) (*Index, *mirror, []int32) {
		g := gen.BarabasiAlbert(200, 3, 9)
		lm := g.DegreeOrder()[:8]
		dyn, err := Build(g, lm)
		if err != nil {
			t.Fatal(err)
		}
		dyn.SetRepairFraction(frac)
		return dyn, newMirror(g), lm
	}
	// Deleting the hub's incident edges dirties (essentially) every
	// landmark in one batch.
	victim, _, _ := build(0)
	hub := victim.landmarks[0]
	var batch [][2]int32
	for _, nb := range append([]int32(nil), victim.adj[hub]...) {
		batch = append(batch, [2]int32{hub, nb})
	}

	selective, selM, lm := build(-1)
	resSel, err := selective.ApplyOps(DeleteOps(batch))
	if err != nil {
		t.Fatal(err)
	}
	if resSel.Rebuilt {
		t.Fatal("disabled fraction still took the full-rebuild path")
	}
	if selective.Maint().SelectiveRepairs != 1 {
		t.Fatalf("selective maint counters: %+v", selective.Maint())
	}

	full, fullM, _ := build(0)
	resFull, err := full.ApplyOps(DeleteOps(batch))
	if err != nil {
		t.Fatal(err)
	}
	if !resFull.Rebuilt {
		t.Fatalf("default fraction kept repairing selectively (%d/%d dirty)",
			resFull.Dirty, len(lm))
	}
	if mt := full.Maint(); mt.FullRebuilds != 1 || mt.LandmarksRebuilt != int64(len(lm)) {
		t.Fatalf("full-rebuild maint counters: %+v", mt)
	}

	for _, e := range batch {
		selM.delete(e[0], e[1])
		fullM.delete(e[0], e[1])
	}
	requireMatchesRebuild(t, "selective", selective, selM, lm)
	requireMatchesRebuild(t, "full", full, fullM, lm)
}

// TestRandomizedChurnAgainstRebuildProperty runs randomized mixed
// insert/delete sequences over multiple graph families and checks
// sampled distances against BFS ground truth on the evolved edge set.
func TestRandomizedChurnAgainstRebuildProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var g *graph.Graph
		if seed%2 == 0 {
			g = gen.ErdosRenyi(60, 110, seed)
		} else {
			g = gen.WattsStrogatz(60, 2, 0.2, seed)
		}
		k := 1 + rng.Intn(5)
		lm := g.DegreeOrder()[:k]
		dyn, err := Build(g, lm)
		if err != nil {
			return false
		}
		if rng.Intn(2) == 0 {
			dyn.SetRepairFraction(0.1) // exercise the rebuild fallback too
		}
		m := newMirror(g)
		for round := 0; round < 10; round++ {
			if rng.Intn(2) == 0 && len(m.edges) > 0 {
				e := m.edges[rng.Intn(len(m.edges))]
				if dyn.DeleteEdge(e[0], e[1]) != nil {
					return false
				}
				m.delete(e[0], e[1])
			} else {
				a, b := int32(rng.Intn(60)), int32(rng.Intn(60))
				if dyn.InsertEdge(a, b) != nil {
					return false
				}
				// The mirror's edge list must stay duplicate-free or a
				// later delete would leave a phantom copy behind.
				if a != b && !m.graph().HasEdge(a, b) {
					m.insert(a, b)
				}
			}
		}
		truth := m.graph()
		for trial := 0; trial < 40; trial++ {
			s, u := int32(rng.Intn(60)), int32(rng.Intn(60))
			want := bfs.Dist(truth, s, u)
			if want == bfs.Unreachable {
				want = Infinity
			}
			if dyn.Distance(s, u) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
