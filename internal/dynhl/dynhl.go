// Package dynhl extends the highway cover labelling to growing graphs
// (edge insertions), the direction the paper's authors pursued in
// follow-up work on fully dynamic labelling.
//
// The implementation uses *selective landmark rebuild*, which is exact and
// preserves both minimality and order independence:
//
// Inserting an undirected edge {a,b} creates a new shortest path from
// landmark r if and only if |d(r,a) - d(r,b)| ≥ 1 — when the two
// endpoints' distances differ by zero, every path through the new edge is
// strictly longer than an existing one, so neither the distances from r,
// nor the set of shortest paths from r, nor (therefore) r's pruned BFS
// outcome can change. Each insertion therefore:
//
//  1. queries d(r,a) and d(r,b) for every landmark (landmark-endpoint
//     queries are answered exactly by labels + highway alone);
//  2. marks the landmarks with |d(r,a)-d(r,b)| ≥ 1 (or with either
//     endpoint newly reachable) as dirty;
//  3. re-runs Algorithm 1's pruned BFS for the dirty landmarks only,
//     splicing their fresh label rows and highway rows into the index.
//
// Because Algorithm 1 is independent per landmark (Lemma 3.11), rebuilding
// a subset of landmarks yields exactly the index a full rebuild would
// produce — this invariant is property-tested against from-scratch builds.
// Batched insertions (InsertEdges, Apply) share one rebuild pass across
// the batch.
//
// # Deletions
//
// The index is insert-only: there is no DeleteEdge, deliberately
// mirroring the documented scope of internal/fd (whose deletions need
// per-tree parent counts and are orthogonal to the paper's comparison).
// An edge removal can turn "no new shortest path" into "a shortest path
// disappeared", which the |d(r,a)−d(r,b)| dirtiness test cannot detect
// without per-landmark parent bookkeeping; handling it exactly would
// re-run the pruned BFS for *every* landmark reaching the edge, i.e. a
// near-full rebuild. Callers that need deletions should rebuild the
// index on the edited graph (cheap, per the paper's construction
// numbers); the serving layer (internal/serve) surfaces this contract as
// a 405 on DELETE /edges rather than pretending to support it.
package dynhl

import (
	"fmt"
	"sort"

	"highway/internal/bfs"
	"highway/internal/core"
	"highway/internal/graph"
	"highway/internal/method"
)

// The dynamic labelling implements the method-agnostic index contract
// (and the Inserter mutation surface); see internal/method.
var (
	_ method.DistanceIndex = (*Index)(nil)
	_ method.Inserter      = (*Index)(nil)
)

// Infinity is the distance reported between disconnected vertices.
const Infinity int32 = -1

// Index is a mutable highway cover labelling over a growing graph.
type Index struct {
	n          int
	adj        [][]int32 // mutable adjacency (copied from the build graph)
	landmarks  []int32
	rankOf     []int32
	isLandmark []bool
	highway    []int32 // k*k, Infinity = unreachable

	// labels[v] is v's label sorted by landmark rank; rows[r] lists the
	// vertices labelled by landmark rank r (the pruned-BFS output), used
	// to splice a landmark's entries out on rebuild.
	labels [][]entry
	rows   [][]int32

	sc *searchState
}

type entry struct {
	rank int32
	dist int32
}

// Build constructs a dynamic index. The original graph is copied into a
// mutable adjacency; g itself is not retained.
func Build(g *graph.Graph, landmarks []int32) (*Index, error) {
	n := g.NumVertices()
	if len(landmarks) == 0 {
		return nil, fmt.Errorf("dynhl: no landmarks")
	}
	if len(landmarks) > core.MaxLandmarks {
		return nil, fmt.Errorf("dynhl: %d landmarks exceeds MaxLandmarks=%d", len(landmarks), core.MaxLandmarks)
	}
	ix := &Index{
		n:          n,
		adj:        make([][]int32, n),
		landmarks:  append([]int32(nil), landmarks...),
		rankOf:     make([]int32, n),
		isLandmark: make([]bool, n),
		highway:    make([]int32, len(landmarks)*len(landmarks)),
		labels:     make([][]entry, n),
		rows:       make([][]int32, len(landmarks)),
	}
	for v := 0; v < n; v++ {
		nb := g.Neighbors(int32(v))
		ix.adj[v] = append(make([]int32, 0, len(nb)), nb...)
	}
	for i := range ix.rankOf {
		ix.rankOf[i] = -1
	}
	for r, v := range landmarks {
		if v < 0 || int(v) >= n {
			return nil, fmt.Errorf("dynhl: landmark %d out of range [0,%d)", v, n)
		}
		if ix.rankOf[v] >= 0 {
			return nil, fmt.Errorf("dynhl: duplicate landmark %d", v)
		}
		ix.rankOf[v] = int32(r)
		ix.isLandmark[v] = true
	}
	ix.sc = newSearchState(n)
	for r := range landmarks {
		ix.rebuildLandmark(r)
	}
	return ix, nil
}

// FromCore converts a static core.Index into a mutable dynamic index
// without re-running a single BFS. The static index's flat CSR label
// arrays are immutable by contract, so the conversion is an explicit
// copy-on-write boundary: labels are exploded into per-vertex slices this
// index owns outright, the per-landmark rows are reconstructed from them,
// and the adjacency is copied. The source index is never aliased and
// stays valid.
func FromCore(src *core.Index) (*Index, error) {
	g := src.Graph()
	n := g.NumVertices()
	lms := src.Landmarks()
	k := len(lms)
	if k == 0 {
		return nil, fmt.Errorf("dynhl: source index has no landmarks")
	}
	ix := &Index{
		n:          n,
		adj:        make([][]int32, n),
		landmarks:  append([]int32(nil), lms...),
		rankOf:     make([]int32, n),
		isLandmark: make([]bool, n),
		highway:    make([]int32, k*k),
		labels:     make([][]entry, n),
		rows:       make([][]int32, k),
	}
	for v := 0; v < n; v++ {
		nb := g.Neighbors(int32(v))
		ix.adj[v] = append(make([]int32, 0, len(nb)), nb...)
	}
	for i := range ix.rankOf {
		ix.rankOf[i] = -1
	}
	for r, v := range lms {
		ix.rankOf[v] = int32(r)
		ix.isLandmark[v] = true
	}
	for i, vi := range lms {
		for j, vj := range lms {
			ix.highway[i*k+j] = src.Highway(vi, vj)
		}
	}
	for v := int32(0); int(v) < n; v++ {
		ranks, dists := src.LabelView(v)
		if len(ranks) == 0 {
			continue
		}
		l := make([]entry, len(ranks))
		for i := range ranks {
			l[i] = entry{rank: ranks[i], dist: dists[i]}
			r := ranks[i]
			ix.rows[r] = append(ix.rows[r], v)
		}
		ix.labels[v] = l
	}
	ix.sc = newSearchState(n)
	return ix, nil
}

// Freeze materializes the current mutable labelling as an immutable
// snapshot: a CSR graph of the evolved adjacency plus a core.Index in the
// flat CSR label layout (the copy-on-write conversion in the other
// direction). The dynamic index stays usable and future insertions do not
// affect the snapshot, so a server can keep answering from the frozen
// index while this one continues absorbing updates.
func (ix *Index) Freeze() (*graph.Graph, *core.Index, error) {
	b := graph.NewBuilder(ix.n)
	for u, nbs := range ix.adj {
		for _, v := range nbs {
			if int32(u) < v {
				b.AddEdge(int32(u), v)
			}
		}
	}
	g, err := b.Build()
	if err != nil {
		return nil, nil, fmt.Errorf("dynhl: freeze adjacency: %w", err)
	}
	ranks := make([][]int32, ix.n)
	dists := make([][]int32, ix.n)
	for v, l := range ix.labels {
		if len(l) == 0 {
			continue
		}
		r := make([]int32, len(l))
		d := make([]int32, len(l))
		for i, e := range l {
			r[i], d[i] = e.rank, e.dist
		}
		ranks[v], dists[v] = r, d
	}
	frozen, err := core.FromParts(g, ix.landmarks, ix.highway, ranks, dists)
	if err != nil {
		return nil, nil, fmt.Errorf("dynhl: freeze labels: %w", err)
	}
	return g, frozen, nil
}

// Searcher carries per-goroutine bidirectional-search scratch for
// queries against the dynamic index. Searchers read the index's
// mutable labelling: they are only safe to use while no insertion is
// in flight (the serving layer freezes immutable snapshots instead of
// querying the dynamic index concurrently).
type Searcher struct {
	ix *Index
	sc *bfs.Scratch
}

// NewSearcher returns a query searcher bound to the index.
func (ix *Index) NewSearcher() method.Searcher {
	return &Searcher{ix: ix, sc: bfs.NewScratch(ix.n)}
}

// Distance returns the exact current distance between s and t (the
// searcher-scratch form of Index.Distance).
func (sr *Searcher) Distance(s, t int32) int32 {
	ix := sr.ix
	if s == t {
		return 0
	}
	ub := ix.UpperBound(s, t)
	if ix.isLandmark[s] || ix.isLandmark[t] {
		return ub
	}
	bound := ub
	if bound == Infinity {
		bound = bfs.NoBound
	}
	d := bfs.BoundedBiBFS(ix, s, t, bound, ix.isLandmark, sr.sc)
	if d == bfs.Unreachable {
		return ub
	}
	return d
}

// UpperBound returns the label+highway bound (see Index.UpperBound).
func (sr *Searcher) UpperBound(s, t int32) int32 { return sr.ix.UpperBound(s, t) }

// Stats summarizes the current state of the labelling (method-agnostic
// form). The accounting matches the static highway labelling's
// uncompressed measure.
func (ix *Index) Stats() method.Stats {
	var edges int64
	maxLS := 0
	for _, nbs := range ix.adj {
		edges += int64(len(nbs))
	}
	for _, l := range ix.labels {
		if len(l) > maxLS {
			maxLS = len(l)
		}
	}
	entries := ix.NumEntries()
	k := len(ix.landmarks)
	als := 0.0
	if nonLM := ix.n - k; nonLM > 0 {
		als = float64(entries) / float64(nonLM)
	}
	return method.Stats{
		Method:       "dynhl",
		NumVertices:  ix.n,
		NumEdges:     edges / 2,
		NumLandmarks: k,
		NumEntries:   entries,
		AvgLabelSize: als,
		MaxLabelSize: maxLS,
		SizeBytes:    entries*5 + int64(k*k)*4,
	}
}

// NumVertices returns n.
func (ix *Index) NumVertices() int { return ix.n }

// Neighbors exposes the mutable adjacency (bfs.Adjacency).
func (ix *Index) Neighbors(v int32) []int32 { return ix.adj[v] }

// NumEntries returns size(L).
func (ix *Index) NumEntries() int64 {
	var total int64
	for _, l := range ix.labels {
		total += int64(len(l))
	}
	return total
}

// Landmarks returns the landmark vertex ids by rank.
func (ix *Index) Landmarks() []int32 { return ix.landmarks }

// InsertEdge adds {a,b} and repairs the labelling exactly. Self-loops and
// existing edges are no-ops.
func (ix *Index) InsertEdge(a, b int32) error {
	return ix.InsertEdges([][2]int32{{a, b}})
}

// InsertEdges applies a batch of insertions with a single repair pass:
// dirty landmarks are collected across the whole batch and rebuilt once.
func (ix *Index) InsertEdges(edges [][2]int32) error {
	_, err := ix.Apply(edges)
	return err
}

// Apply is InsertEdges reporting how many of the edges were actually
// new. Self-loops and already-present edges are skipped (and not
// counted), which makes replaying a write-ahead log against any
// earlier-or-equal state idempotent — the property the serving layer's
// crash recovery builds on.
func (ix *Index) Apply(edges [][2]int32) (int, error) {
	// Validate the whole batch before touching any state: a mid-batch
	// failure after mutating the adjacency would leave labels stale.
	for _, e := range edges {
		if a, b := e[0], e[1]; a < 0 || b < 0 || int(a) >= ix.n || int(b) >= ix.n {
			return 0, fmt.Errorf("dynhl: edge {%d,%d} out of range [0,%d)", a, b, ix.n)
		}
	}
	dirty := make([]bool, len(ix.landmarks))
	inserted := 0
	for _, e := range edges {
		a, b := e[0], e[1]
		if a == b || ix.hasEdge(a, b) {
			continue
		}
		// Mark dirty landmarks BEFORE mutating adjacency, using exact
		// landmark-endpoint distances from the current index.
		for r := range ix.landmarks {
			if dirty[r] {
				continue
			}
			da := ix.distFromLandmark(r, a)
			db := ix.distFromLandmark(r, b)
			switch {
			case da < 0 && db < 0:
				// Landmark reaches neither endpoint: the new edge cannot
				// create any path from it.
			case da < 0 || db < 0:
				dirty[r] = true // one side newly reachable
			case da != db:
				dirty[r] = true // |da-db| ≥ 1: new shortest paths appear
			}
		}
		ix.adj[a] = append(ix.adj[a], b)
		ix.adj[b] = append(ix.adj[b], a)
		inserted++
	}
	if inserted == 0 {
		return 0, nil
	}
	for r, d := range dirty {
		if d {
			ix.rebuildLandmark(r)
		}
	}
	return inserted, nil
}

func (ix *Index) hasEdge(a, b int32) bool {
	nb := ix.adj[a]
	if len(ix.adj[b]) < len(nb) {
		nb = ix.adj[b]
		b = a
	}
	for _, w := range nb {
		if w == b {
			return true
		}
	}
	return false
}

// distFromLandmark returns the exact current distance from landmark rank
// r to vertex v using only labels + highway (Section 4.2's exactness for
// landmark endpoints).
func (ix *Index) distFromLandmark(r int, v int32) int32 {
	if vr := ix.rankOf[v]; vr >= 0 {
		return ix.highway[r*len(ix.landmarks)+int(vr)]
	}
	k := len(ix.landmarks)
	best := Infinity
	for _, e := range ix.labels[v] {
		h := ix.highway[r*k+int(e.rank)]
		if h < 0 {
			continue
		}
		if d := h + e.dist; best < 0 || d < best {
			best = d
		}
	}
	return best
}

// rebuildLandmark re-runs the pruned BFS (Algorithm 1) for one landmark
// rank on the current adjacency, replacing its label row and highway row.
func (ix *Index) rebuildLandmark(r int) {
	// Splice out the old row.
	for _, v := range ix.rows[r] {
		l := ix.labels[v]
		for i, e := range l {
			if e.rank == int32(r) {
				ix.labels[v] = append(l[:i], l[i+1:]...)
				break
			}
		}
	}
	k := len(ix.landmarks)
	hwRow := ix.highway[r*k : (r+1)*k]
	for i := range hwRow {
		hwRow[i] = Infinity
	}
	newRow := ix.prunedBFS(ix.landmarks[r], int32(r), hwRow)
	// Splice in, keeping per-vertex labels sorted by rank, and mirror the
	// highway row into the column (the matrix is symmetric).
	for _, v := range newRow {
		l := ix.labels[v.vertex]
		pos := sort.Search(len(l), func(i int) bool { return l[i].rank >= int32(r) })
		l = append(l, entry{})
		copy(l[pos+1:], l[pos:])
		l[pos] = entry{rank: int32(r), dist: v.dist}
		ix.labels[v.vertex] = l
	}
	ix.rows[r] = ix.rows[r][:0]
	for _, v := range newRow {
		ix.rows[r] = append(ix.rows[r], v.vertex)
	}
	for j := 0; j < k; j++ {
		ix.highway[j*k+r] = hwRow[j]
	}
}

type rowEntry struct {
	vertex int32
	dist   int32
}

// prunedBFS is Algorithm 1 on the mutable adjacency (prune frontier
// expands before the label frontier at every depth; see internal/core).
func (ix *Index) prunedBFS(root, rank int32, hwRow []int32) []rowEntry {
	sc := ix.sc
	sc.epoch++
	if sc.epoch == 0 {
		clear(sc.visited)
		sc.epoch = 1
	}
	ep := sc.epoch
	var out []rowEntry
	labelF := append(sc.bufA[:0], root)
	pruneF := sc.bufB[:0]
	sc.visited[root] = ep
	hwRow[rank] = 0
	found := 1
	k := len(ix.landmarks)
	for d := int32(0); len(labelF) > 0 || (found < k && len(pruneF) > 0); d++ {
		nextL := sc.bufC[:0]
		nextP := sc.bufD[:0]
		for _, u := range pruneF {
			for _, v := range ix.adj[u] {
				if sc.visited[v] == ep {
					continue
				}
				sc.visited[v] = ep
				if rr := ix.rankOf[v]; rr >= 0 {
					hwRow[rr] = d + 1
					found++
				}
				nextP = append(nextP, v)
			}
		}
		for _, u := range labelF {
			for _, v := range ix.adj[u] {
				if sc.visited[v] == ep {
					continue
				}
				sc.visited[v] = ep
				if rr := ix.rankOf[v]; rr >= 0 {
					hwRow[rr] = d + 1
					found++
					nextP = append(nextP, v)
				} else {
					nextL = append(nextL, v)
					out = append(out, rowEntry{vertex: v, dist: d + 1})
				}
			}
		}
		labelF, sc.bufC = nextL, labelF[:0]
		pruneF, sc.bufD = nextP, pruneF[:0]
	}
	sc.bufA, sc.bufB = labelF, pruneF
	return out
}

type searchState struct {
	visited                []uint32
	epoch                  uint32
	bufA, bufB, bufC, bufD []int32
	bi                     *bfs.Scratch
}

func newSearchState(n int) *searchState {
	return &searchState{
		visited: make([]uint32, n),
		bufA:    make([]int32, 0, 1024),
		bufB:    make([]int32, 0, 1024),
		bufC:    make([]int32, 0, 1024),
		bufD:    make([]int32, 0, 1024),
		bi:      bfs.NewScratch(n),
	}
}

// Distance returns the exact current distance between s and t, or
// Infinity. The index is not safe for concurrent use (it is a mutable
// structure); serialize queries with updates.
func (ix *Index) Distance(s, t int32) int32 {
	if s == t {
		return 0
	}
	ub := ix.UpperBound(s, t)
	if ix.isLandmark[s] || ix.isLandmark[t] {
		return ub
	}
	bound := ub
	if bound == Infinity {
		bound = bfs.NoBound
	}
	d := bfs.BoundedBiBFS(ix, s, t, bound, ix.isLandmark, ix.sc.bi)
	if d == bfs.Unreachable {
		return ub
	}
	return d
}

// UpperBound returns d⊤st from labels + highway (Equation 4 with the
// Lemma 5.1 common-landmark shortcut).
func (ix *Index) UpperBound(s, t int32) int32 {
	if s == t {
		return 0
	}
	k := len(ix.landmarks)
	var sVirt, tVirt [1]entry
	ls, lt := ix.labels[s], ix.labels[t]
	if r := ix.rankOf[s]; r >= 0 {
		sVirt[0] = entry{rank: r}
		ls = sVirt[:]
	}
	if r := ix.rankOf[t]; r >= 0 {
		tVirt[0] = entry{rank: r}
		lt = tVirt[:]
	}
	best := Infinity
	relax := func(d int32) {
		if best < 0 || d < best {
			best = d
		}
	}
	common := make(map[int32]bool, 4)
	i, j := 0, 0
	for i < len(ls) && j < len(lt) {
		switch {
		case ls[i].rank == lt[j].rank:
			common[ls[i].rank] = true
			relax(ls[i].dist + lt[j].dist)
			i++
			j++
		case ls[i].rank < lt[j].rank:
			i++
		default:
			j++
		}
	}
	for _, es := range ls {
		if common[es.rank] {
			continue
		}
		row := ix.highway[int(es.rank)*k : (int(es.rank)+1)*k]
		for _, et := range lt {
			if common[et.rank] {
				continue
			}
			if h := row[et.rank]; h >= 0 {
				relax(es.dist + h + et.dist)
			}
		}
	}
	return best
}
