// Package dynhl extends the highway cover labelling to fully dynamic
// graphs — edge insertions and deletions — the direction the paper's
// authors pursued in follow-up work on dynamic labelling.
//
// The implementation uses *selective landmark rebuild*, which is exact and
// preserves both minimality and order independence. For an undirected
// edge {a,b}, landmark r's pruned-BFS outcome can change if and only if
// d(r,a) ≠ d(r,b) — and the test is the same for both mutation kinds:
//
//   - Insertion: when the endpoint distances are equal, every path through
//     the new edge is strictly longer than an existing one, so neither the
//     distances from r nor the set of shortest paths from r can change.
//   - Deletion: an existing edge with d(r,a) = d(r,b) lies on no shortest
//     path from r (on a shortest path the endpoint distances differ by
//     exactly one), so removing it leaves r's shortest-path DAG intact.
//
// Each mutation batch (Apply, ApplyOps) therefore:
//
//  1. queries d(r,a) and d(r,b) for every landmark (landmark-endpoint
//     queries are answered exactly by labels + highway alone), before the
//     adjacency is touched;
//  2. marks the landmarks with d(r,a) ≠ d(r,b) — including either
//     endpoint changing reachability — as dirty, sharing one dirty set
//     across the whole batch;
//  3. repairs the dirty landmarks only, re-running Algorithm 1's pruned
//     BFS per landmark and splicing the fresh label and highway rows into
//     the index — or, when deletions dirty more than RepairFraction of
//     the landmarks, falls back to one full rebuild through the parallel
//     direction-optimizing builder (internal/bfs engine), which amortizes
//     better than many sequential sweeps.
//
// Because Algorithm 1 is independent per landmark (Lemma 3.11), rebuilding
// a subset of landmarks yields exactly the index a full rebuild would
// produce — this invariant is property-tested against from-scratch builds
// for insertions, deletions and mixed churn (see internal/oracle's churn
// differential harness). Idempotence — inserting a present edge or
// deleting an absent one is an acked no-op — is what makes write-ahead
// log replay (internal/serve) safe against any earlier-or-equal state.
package dynhl

import (
	"fmt"
	"sort"

	"highway/internal/bfs"
	"highway/internal/core"
	"highway/internal/graph"
	"highway/internal/method"
)

// The dynamic labelling implements the method-agnostic index contract
// (and the Inserter mutation surface); see internal/method.
var (
	_ method.DistanceIndex = (*Index)(nil)
	_ method.Inserter      = (*Index)(nil)
)

// Infinity is the distance reported between disconnected vertices.
const Infinity int32 = -1

// Index is a mutable highway cover labelling over a growing graph.
type Index struct {
	n          int
	adj        [][]int32 // mutable adjacency (copied from the build graph)
	landmarks  []int32
	rankOf     []int32
	isLandmark []bool
	highway    []int32 // k*k, Infinity = unreachable

	// labels[v] is v's label sorted by landmark rank; rows[r] lists the
	// vertices labelled by landmark rank r (the pruned-BFS output), used
	// to splice a landmark's entries out on rebuild.
	labels [][]entry
	rows   [][]int32

	// repairFraction is the dirty-landmark fraction above which a batch
	// with deletions abandons per-landmark repair for one full rebuild
	// (0 means DefaultRepairFraction; negative disables the fallback).
	repairFraction float64
	maint          MaintStats

	sc *searchState
}

// DefaultRepairFraction is the dirty-landmark fraction above which
// ApplyOps switches from selective per-landmark repair to a full rebuild
// through the parallel builder. Sequential pruned-BFS sweeps win while
// few landmarks are affected; once most of the highway is dirty the
// batched, direction-optimizing from-scratch build is cheaper (the
// measured crossover is recorded in BENCH_CHURN.json).
const DefaultRepairFraction = 0.5

// SetRepairFraction overrides the repair/rebuild crossover: batches that
// dirty more than frac of the landmarks trigger a full rebuild. Zero
// restores DefaultRepairFraction; a negative value disables the fallback
// so every batch repairs selectively.
func (ix *Index) SetRepairFraction(frac float64) { ix.repairFraction = frac }

// MaintStats counts the maintenance work ApplyOps has performed since
// the index was built or converted.
type MaintStats struct {
	SelectiveRepairs int64 // batches repaired landmark by landmark
	FullRebuilds     int64 // batches that crossed RepairFraction and rebuilt everything
	LandmarksRebuilt int64 // pruned-BFS reruns, across both strategies
}

// Maint returns the cumulative maintenance counters.
func (ix *Index) Maint() MaintStats { return ix.maint }

type entry struct {
	rank int32
	dist int32
}

// Build constructs a dynamic index. The original graph is copied into a
// mutable adjacency; g itself is not retained.
func Build(g *graph.Graph, landmarks []int32) (*Index, error) {
	n := g.NumVertices()
	if len(landmarks) == 0 {
		return nil, fmt.Errorf("dynhl: no landmarks")
	}
	if len(landmarks) > core.MaxLandmarks {
		return nil, fmt.Errorf("dynhl: %d landmarks exceeds MaxLandmarks=%d", len(landmarks), core.MaxLandmarks)
	}
	ix := &Index{
		n:          n,
		adj:        make([][]int32, n),
		landmarks:  append([]int32(nil), landmarks...),
		rankOf:     make([]int32, n),
		isLandmark: make([]bool, n),
		highway:    make([]int32, len(landmarks)*len(landmarks)),
		labels:     make([][]entry, n),
		rows:       make([][]int32, len(landmarks)),
	}
	for v := 0; v < n; v++ {
		nb := g.Neighbors(int32(v))
		ix.adj[v] = append(make([]int32, 0, len(nb)), nb...)
	}
	for i := range ix.rankOf {
		ix.rankOf[i] = -1
	}
	for r, v := range landmarks {
		if v < 0 || int(v) >= n {
			return nil, fmt.Errorf("dynhl: landmark %d out of range [0,%d)", v, n)
		}
		if ix.rankOf[v] >= 0 {
			return nil, fmt.Errorf("dynhl: duplicate landmark %d", v)
		}
		ix.rankOf[v] = int32(r)
		ix.isLandmark[v] = true
	}
	ix.sc = newSearchState(n)
	for r := range landmarks {
		ix.rebuildLandmark(r)
	}
	return ix, nil
}

// FromCore converts a static core.Index into a mutable dynamic index
// without re-running a single BFS. The static index's flat CSR label
// arrays are immutable by contract, so the conversion is an explicit
// copy-on-write boundary: labels are exploded into per-vertex slices this
// index owns outright, the per-landmark rows are reconstructed from them,
// and the adjacency is copied. The source index is never aliased and
// stays valid.
func FromCore(src *core.Index) (*Index, error) {
	g := src.Graph()
	n := g.NumVertices()
	lms := src.Landmarks()
	k := len(lms)
	if k == 0 {
		return nil, fmt.Errorf("dynhl: source index has no landmarks")
	}
	ix := &Index{
		n:          n,
		adj:        make([][]int32, n),
		landmarks:  append([]int32(nil), lms...),
		rankOf:     make([]int32, n),
		isLandmark: make([]bool, n),
		highway:    make([]int32, k*k),
		labels:     make([][]entry, n),
		rows:       make([][]int32, k),
	}
	for v := 0; v < n; v++ {
		nb := g.Neighbors(int32(v))
		ix.adj[v] = append(make([]int32, 0, len(nb)), nb...)
	}
	for i := range ix.rankOf {
		ix.rankOf[i] = -1
	}
	for r, v := range lms {
		ix.rankOf[v] = int32(r)
		ix.isLandmark[v] = true
	}
	for i, vi := range lms {
		for j, vj := range lms {
			ix.highway[i*k+j] = src.Highway(vi, vj)
		}
	}
	for v := int32(0); int(v) < n; v++ {
		ranks, dists := src.LabelView(v)
		if len(ranks) == 0 {
			continue
		}
		l := make([]entry, len(ranks))
		for i := range ranks {
			l[i] = entry{rank: ranks[i], dist: dists[i]}
			r := ranks[i]
			ix.rows[r] = append(ix.rows[r], v)
		}
		ix.labels[v] = l
	}
	ix.sc = newSearchState(n)
	return ix, nil
}

// Freeze materializes the current mutable labelling as an immutable
// snapshot: a CSR graph of the evolved adjacency plus a core.Index in the
// flat CSR label layout (the copy-on-write conversion in the other
// direction). The dynamic index stays usable and future insertions do not
// affect the snapshot, so a server can keep answering from the frozen
// index while this one continues absorbing updates.
func (ix *Index) Freeze() (*graph.Graph, *core.Index, error) {
	b := graph.NewBuilder(ix.n)
	for u, nbs := range ix.adj {
		for _, v := range nbs {
			if int32(u) < v {
				b.AddEdge(int32(u), v)
			}
		}
	}
	g, err := b.Build()
	if err != nil {
		return nil, nil, fmt.Errorf("dynhl: freeze adjacency: %w", err)
	}
	ranks := make([][]int32, ix.n)
	dists := make([][]int32, ix.n)
	for v, l := range ix.labels {
		if len(l) == 0 {
			continue
		}
		r := make([]int32, len(l))
		d := make([]int32, len(l))
		for i, e := range l {
			r[i], d[i] = e.rank, e.dist
		}
		ranks[v], dists[v] = r, d
	}
	frozen, err := core.FromParts(g, ix.landmarks, ix.highway, ranks, dists)
	if err != nil {
		return nil, nil, fmt.Errorf("dynhl: freeze labels: %w", err)
	}
	return g, frozen, nil
}

// Searcher carries per-goroutine bidirectional-search scratch for
// queries against the dynamic index. Searchers read the index's
// mutable labelling: they are only safe to use while no insertion is
// in flight (the serving layer freezes immutable snapshots instead of
// querying the dynamic index concurrently).
type Searcher struct {
	ix *Index
	sc *bfs.Scratch
}

// NewSearcher returns a query searcher bound to the index.
func (ix *Index) NewSearcher() method.Searcher {
	return &Searcher{ix: ix, sc: bfs.NewScratch(ix.n)}
}

// Distance returns the exact current distance between s and t (the
// searcher-scratch form of Index.Distance).
func (sr *Searcher) Distance(s, t int32) int32 {
	ix := sr.ix
	if s == t {
		return 0
	}
	ub := ix.UpperBound(s, t)
	if ix.isLandmark[s] || ix.isLandmark[t] {
		return ub
	}
	bound := ub
	if bound == Infinity {
		bound = bfs.NoBound
	}
	d := bfs.BoundedBiBFS(ix, s, t, bound, ix.isLandmark, sr.sc)
	if d == bfs.Unreachable {
		return ub
	}
	return d
}

// UpperBound returns the label+highway bound (see Index.UpperBound).
func (sr *Searcher) UpperBound(s, t int32) int32 { return sr.ix.UpperBound(s, t) }

// Stats summarizes the current state of the labelling (method-agnostic
// form). The accounting matches the static highway labelling's
// uncompressed measure.
func (ix *Index) Stats() method.Stats {
	var edges int64
	maxLS := 0
	for _, nbs := range ix.adj {
		edges += int64(len(nbs))
	}
	for _, l := range ix.labels {
		if len(l) > maxLS {
			maxLS = len(l)
		}
	}
	entries := ix.NumEntries()
	k := len(ix.landmarks)
	als := 0.0
	if nonLM := ix.n - k; nonLM > 0 {
		als = float64(entries) / float64(nonLM)
	}
	return method.Stats{
		Method:       "dynhl",
		NumVertices:  ix.n,
		NumEdges:     edges / 2,
		NumLandmarks: k,
		NumEntries:   entries,
		AvgLabelSize: als,
		MaxLabelSize: maxLS,
		SizeBytes:    entries*5 + int64(k*k)*4,
	}
}

// NumVertices returns n.
func (ix *Index) NumVertices() int { return ix.n }

// Neighbors exposes the mutable adjacency (bfs.Adjacency).
func (ix *Index) Neighbors(v int32) []int32 { return ix.adj[v] }

// NumEntries returns size(L).
func (ix *Index) NumEntries() int64 {
	var total int64
	for _, l := range ix.labels {
		total += int64(len(l))
	}
	return total
}

// Landmarks returns the landmark vertex ids by rank.
func (ix *Index) Landmarks() []int32 { return ix.landmarks }

// InsertEdge adds {a,b} and repairs the labelling exactly. Self-loops and
// existing edges are no-ops.
func (ix *Index) InsertEdge(a, b int32) error {
	return ix.InsertEdges([][2]int32{{a, b}})
}

// InsertEdges applies a batch of insertions with a single repair pass:
// dirty landmarks are collected across the whole batch and rebuilt once.
func (ix *Index) InsertEdges(edges [][2]int32) error {
	_, err := ix.Apply(edges)
	return err
}

// DeleteEdge removes {a,b} and repairs the labelling exactly. Absent
// edges and self-loops are no-ops.
func (ix *Index) DeleteEdge(a, b int32) error {
	return ix.DeleteEdges([][2]int32{{a, b}})
}

// DeleteEdges applies a batch of deletions with a single repair pass.
func (ix *Index) DeleteEdges(edges [][2]int32) error {
	_, err := ix.ApplyOps(DeleteOps(edges))
	return err
}

// Apply is InsertEdges reporting how many of the edges were actually
// new. Self-loops and already-present edges are skipped (and not
// counted), which makes replaying a write-ahead log against any
// earlier-or-equal state idempotent — the property the serving layer's
// crash recovery builds on.
func (ix *Index) Apply(edges [][2]int32) (int, error) {
	res, err := ix.ApplyOps(InsertOps(edges))
	return res.Inserted, err
}

// Op is one edge mutation in a mixed batch: insert the undirected edge
// {A,B}, or delete it when Del is set.
type Op struct {
	A, B int32
	Del  bool
}

// InsertOps wraps an edge list as a uniform insert-op batch.
func InsertOps(edges [][2]int32) []Op {
	ops := make([]Op, len(edges))
	for i, e := range edges {
		ops[i] = Op{A: e[0], B: e[1]}
	}
	return ops
}

// DeleteOps wraps an edge list as a uniform delete-op batch.
func DeleteOps(edges [][2]int32) []Op {
	ops := make([]Op, len(edges))
	for i, e := range edges {
		ops[i] = Op{A: e[0], B: e[1], Del: true}
	}
	return ops
}

// OpResult reports what a mixed batch actually did.
type OpResult struct {
	Inserted int  // edges added (absent before the op)
	Deleted  int  // edges removed (present before the op)
	Dirty    int  // landmarks invalidated by the batch
	Rebuilt  bool // the batch crossed RepairFraction and rebuilt in full
}

// ApplyOps applies a mixed batch of insertions and deletions with a
// single repair pass: dirty landmarks are collected across the whole
// batch, then either repaired one pruned BFS at a time or — when
// deletions dirty more than the RepairFraction threshold — replaced
// wholesale by one parallel from-scratch build. Self-loops, already
// present insertions and already absent deletions are skipped and not
// counted, so replaying a mixed write-ahead log against any
// earlier-or-equal state is idempotent.
func (ix *Index) ApplyOps(ops []Op) (OpResult, error) {
	var res OpResult
	// Validate the whole batch before touching any state: a mid-batch
	// failure after mutating the adjacency would leave labels stale.
	for _, op := range ops {
		if a, b := op.A, op.B; a < 0 || b < 0 || int(a) >= ix.n || int(b) >= ix.n {
			return res, fmt.Errorf("dynhl: edge {%d,%d} out of range [0,%d)", a, b, ix.n)
		}
	}
	dirty := make([]bool, len(ix.landmarks))
	for _, op := range ops {
		a, b := op.A, op.B
		// An op takes effect iff presence matches its kind: inserts need
		// the edge absent, deletes need it present.
		if a == b || ix.hasEdge(a, b) == !op.Del {
			continue
		}
		// Mark dirty landmarks BEFORE mutating adjacency, using exact
		// landmark-endpoint distances from the current labelling. The
		// test is the same for both kinds (see the package comment): r's
		// shortest-path DAG changes iff d(r,a) ≠ d(r,b) — which also
		// covers an endpoint changing reachability, since Infinity never
		// equals a finite distance.
		for r := range ix.landmarks {
			if !dirty[r] && ix.distFromLandmark(r, a) != ix.distFromLandmark(r, b) {
				dirty[r] = true
			}
		}
		if op.Del {
			ix.removeEdge(a, b)
			res.Deleted++
		} else {
			ix.adj[a] = append(ix.adj[a], b)
			ix.adj[b] = append(ix.adj[b], a)
			res.Inserted++
		}
	}
	for _, d := range dirty {
		if d {
			res.Dirty++
		}
	}
	if res.Dirty == 0 {
		return res, nil
	}
	k := len(ix.landmarks)
	frac := ix.repairFraction
	if frac == 0 {
		frac = DefaultRepairFraction
	}
	if res.Deleted > 0 && frac >= 0 && float64(res.Dirty) > frac*float64(k) {
		if err := ix.rebuildAll(); err != nil {
			return res, err
		}
		res.Rebuilt = true
		ix.maint.FullRebuilds++
		ix.maint.LandmarksRebuilt += int64(k)
		return res, nil
	}
	for r, d := range dirty {
		if d {
			ix.rebuildLandmark(r)
		}
	}
	ix.maint.SelectiveRepairs++
	ix.maint.LandmarksRebuilt += int64(res.Dirty)
	return res, nil
}

// removeEdge drops the undirected edge {a,b} from the mutable adjacency,
// preserving neighbor order (order never affects the labelling; keeping
// it deterministic keeps debugging sane).
func (ix *Index) removeEdge(a, b int32) {
	ix.adj[a] = cutNeighbor(ix.adj[a], b)
	ix.adj[b] = cutNeighbor(ix.adj[b], a)
}

func cutNeighbor(nb []int32, v int32) []int32 {
	for i, w := range nb {
		if w == v {
			return append(nb[:i], nb[i+1:]...)
		}
	}
	return nb
}

// rebuildAll replaces the whole labelling at once: the mutable adjacency
// is frozen to CSR and handed to the parallel direction-optimizing
// builder (the internal/bfs engine behind core.BuildParallel), and the
// fresh labels are imported back over the same landmark set. Above the
// RepairFraction threshold this amortizes strictly better than running
// the per-landmark pruned BFS k times on slice-of-slice adjacency.
func (ix *Index) rebuildAll() error {
	b := graph.NewBuilder(ix.n)
	for u, nbs := range ix.adj {
		for _, v := range nbs {
			if int32(u) < v {
				b.AddEdge(int32(u), v)
			}
		}
	}
	g, err := b.Build()
	if err != nil {
		return fmt.Errorf("dynhl: rebuild adjacency: %w", err)
	}
	src, err := core.BuildParallel(g, ix.landmarks)
	if err != nil {
		return fmt.Errorf("dynhl: full rebuild: %w", err)
	}
	ix.importLabels(src)
	return nil
}

// importLabels replaces highway, labels and rows with src's labelling
// (built on the same landmark set in the same rank order); the mutable
// adjacency is untouched.
func (ix *Index) importLabels(src *core.Index) {
	k := len(ix.landmarks)
	for i, vi := range ix.landmarks {
		for j, vj := range ix.landmarks {
			ix.highway[i*k+j] = src.Highway(vi, vj)
		}
	}
	for r := range ix.rows {
		ix.rows[r] = ix.rows[r][:0]
	}
	for v := int32(0); int(v) < ix.n; v++ {
		ranks, dists := src.LabelView(v)
		l := ix.labels[v][:0]
		for i := range ranks {
			l = append(l, entry{rank: ranks[i], dist: dists[i]})
			ix.rows[ranks[i]] = append(ix.rows[ranks[i]], v)
		}
		ix.labels[v] = l
	}
}

func (ix *Index) hasEdge(a, b int32) bool {
	nb := ix.adj[a]
	if len(ix.adj[b]) < len(nb) {
		nb = ix.adj[b]
		b = a
	}
	for _, w := range nb {
		if w == b {
			return true
		}
	}
	return false
}

// distFromLandmark returns the exact current distance from landmark rank
// r to vertex v using only labels + highway (Section 4.2's exactness for
// landmark endpoints).
func (ix *Index) distFromLandmark(r int, v int32) int32 {
	if vr := ix.rankOf[v]; vr >= 0 {
		return ix.highway[r*len(ix.landmarks)+int(vr)]
	}
	k := len(ix.landmarks)
	best := Infinity
	for _, e := range ix.labels[v] {
		h := ix.highway[r*k+int(e.rank)]
		if h < 0 {
			continue
		}
		if d := h + e.dist; best < 0 || d < best {
			best = d
		}
	}
	return best
}

// rebuildLandmark re-runs the pruned BFS (Algorithm 1) for one landmark
// rank on the current adjacency, replacing its label row and highway row.
func (ix *Index) rebuildLandmark(r int) {
	// Splice out the old row.
	for _, v := range ix.rows[r] {
		l := ix.labels[v]
		for i, e := range l {
			if e.rank == int32(r) {
				ix.labels[v] = append(l[:i], l[i+1:]...)
				break
			}
		}
	}
	k := len(ix.landmarks)
	hwRow := ix.highway[r*k : (r+1)*k]
	for i := range hwRow {
		hwRow[i] = Infinity
	}
	newRow := ix.prunedBFS(ix.landmarks[r], int32(r), hwRow)
	// Splice in, keeping per-vertex labels sorted by rank, and mirror the
	// highway row into the column (the matrix is symmetric).
	for _, v := range newRow {
		l := ix.labels[v.vertex]
		pos := sort.Search(len(l), func(i int) bool { return l[i].rank >= int32(r) })
		l = append(l, entry{})
		copy(l[pos+1:], l[pos:])
		l[pos] = entry{rank: int32(r), dist: v.dist}
		ix.labels[v.vertex] = l
	}
	ix.rows[r] = ix.rows[r][:0]
	for _, v := range newRow {
		ix.rows[r] = append(ix.rows[r], v.vertex)
	}
	for j := 0; j < k; j++ {
		ix.highway[j*k+r] = hwRow[j]
	}
}

type rowEntry struct {
	vertex int32
	dist   int32
}

// prunedBFS is Algorithm 1 on the mutable adjacency (prune frontier
// expands before the label frontier at every depth; see internal/core).
func (ix *Index) prunedBFS(root, rank int32, hwRow []int32) []rowEntry {
	sc := ix.sc
	sc.epoch++
	if sc.epoch == 0 {
		clear(sc.visited)
		sc.epoch = 1
	}
	ep := sc.epoch
	var out []rowEntry
	labelF := append(sc.bufA[:0], root)
	pruneF := sc.bufB[:0]
	sc.visited[root] = ep
	hwRow[rank] = 0
	found := 1
	k := len(ix.landmarks)
	for d := int32(0); len(labelF) > 0 || (found < k && len(pruneF) > 0); d++ {
		nextL := sc.bufC[:0]
		nextP := sc.bufD[:0]
		for _, u := range pruneF {
			for _, v := range ix.adj[u] {
				if sc.visited[v] == ep {
					continue
				}
				sc.visited[v] = ep
				if rr := ix.rankOf[v]; rr >= 0 {
					hwRow[rr] = d + 1
					found++
				}
				nextP = append(nextP, v)
			}
		}
		for _, u := range labelF {
			for _, v := range ix.adj[u] {
				if sc.visited[v] == ep {
					continue
				}
				sc.visited[v] = ep
				if rr := ix.rankOf[v]; rr >= 0 {
					hwRow[rr] = d + 1
					found++
					nextP = append(nextP, v)
				} else {
					nextL = append(nextL, v)
					out = append(out, rowEntry{vertex: v, dist: d + 1})
				}
			}
		}
		labelF, sc.bufC = nextL, labelF[:0]
		pruneF, sc.bufD = nextP, pruneF[:0]
	}
	sc.bufA, sc.bufB = labelF, pruneF
	return out
}

type searchState struct {
	visited                []uint32
	epoch                  uint32
	bufA, bufB, bufC, bufD []int32
	bi                     *bfs.Scratch
}

func newSearchState(n int) *searchState {
	return &searchState{
		visited: make([]uint32, n),
		bufA:    make([]int32, 0, 1024),
		bufB:    make([]int32, 0, 1024),
		bufC:    make([]int32, 0, 1024),
		bufD:    make([]int32, 0, 1024),
		bi:      bfs.NewScratch(n),
	}
}

// Distance returns the exact current distance between s and t, or
// Infinity. The index is not safe for concurrent use (it is a mutable
// structure); serialize queries with updates.
func (ix *Index) Distance(s, t int32) int32 {
	if s == t {
		return 0
	}
	ub := ix.UpperBound(s, t)
	if ix.isLandmark[s] || ix.isLandmark[t] {
		return ub
	}
	bound := ub
	if bound == Infinity {
		bound = bfs.NoBound
	}
	d := bfs.BoundedBiBFS(ix, s, t, bound, ix.isLandmark, ix.sc.bi)
	if d == bfs.Unreachable {
		return ub
	}
	return d
}

// UpperBound returns d⊤st from labels + highway (Equation 4 with the
// Lemma 5.1 common-landmark shortcut).
func (ix *Index) UpperBound(s, t int32) int32 {
	if s == t {
		return 0
	}
	k := len(ix.landmarks)
	var sVirt, tVirt [1]entry
	ls, lt := ix.labels[s], ix.labels[t]
	if r := ix.rankOf[s]; r >= 0 {
		sVirt[0] = entry{rank: r}
		ls = sVirt[:]
	}
	if r := ix.rankOf[t]; r >= 0 {
		tVirt[0] = entry{rank: r}
		lt = tVirt[:]
	}
	best := Infinity
	relax := func(d int32) {
		if best < 0 || d < best {
			best = d
		}
	}
	common := make(map[int32]bool, 4)
	i, j := 0, 0
	for i < len(ls) && j < len(lt) {
		switch {
		case ls[i].rank == lt[j].rank:
			common[ls[i].rank] = true
			relax(ls[i].dist + lt[j].dist)
			i++
			j++
		case ls[i].rank < lt[j].rank:
			i++
		default:
			j++
		}
	}
	for _, es := range ls {
		if common[es.rank] {
			continue
		}
		row := ix.highway[int(es.rank)*k : (int(es.rank)+1)*k]
		for _, et := range lt {
			if common[et.rank] {
				continue
			}
			if h := row[et.rank]; h >= 0 {
				relax(es.dist + h + et.dist)
			}
		}
	}
	return best
}
