package dynhl

import (
	"math/rand"
	"testing"
	"testing/quick"

	"highway/internal/bfs"
	"highway/internal/core"
	"highway/internal/gen"
	"highway/internal/graph"
	"highway/internal/oracle"
)

// mirror maintains the evolving edge list for ground truth.
type mirror struct {
	n     int
	edges [][2]int32
}

func newMirror(g *graph.Graph) *mirror {
	m := &mirror{n: g.NumVertices()}
	for u := int32(0); u < int32(g.NumVertices()); u++ {
		for _, v := range g.Neighbors(u) {
			if u < v {
				m.edges = append(m.edges, [2]int32{u, v})
			}
		}
	}
	return m
}

func (m *mirror) insert(a, b int32) {
	if a != b {
		m.edges = append(m.edges, [2]int32{a, b})
	}
}

func (m *mirror) delete(a, b int32) {
	for i, e := range m.edges {
		if (e[0] == a && e[1] == b) || (e[0] == b && e[1] == a) {
			m.edges = append(m.edges[:i], m.edges[i+1:]...)
			return
		}
	}
}

func (m *mirror) graph() *graph.Graph { return graph.MustFromEdges(m.n, m.edges) }

func TestStaticMatchesCore(t *testing.T) {
	g := gen.BarabasiAlbert(400, 3, 5)
	lm := g.DegreeOrder()[:10]
	dyn, err := Build(g, lm)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := core.Build(g, lm)
	if err != nil {
		t.Fatal(err)
	}
	if dyn.NumEntries() != ref.NumEntries() {
		t.Fatalf("entries: dyn %d vs core %d", dyn.NumEntries(), ref.NumEntries())
	}
	rng := rand.New(rand.NewSource(1))
	sr := ref.NewSearcher()
	for i := 0; i < 500; i++ {
		s, u := int32(rng.Intn(400)), int32(rng.Intn(400))
		if got, want := dyn.Distance(s, u), sr.Distance(s, u); got != want {
			t.Fatalf("Distance(%d,%d) = %d, core says %d", s, u, got, want)
		}
	}
}

// TestInsertMatchesRebuild is the core invariant: after any insertion
// sequence, the dynamic index is identical (labels and highway) to a
// from-scratch build on the final graph.
func TestInsertMatchesRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := gen.BarabasiAlbert(150, 2, 3)
	lm := g.DegreeOrder()[:6]
	dyn, err := Build(g, lm)
	if err != nil {
		t.Fatal(err)
	}
	m := newMirror(g)
	for round := 0; round < 25; round++ {
		a, b := int32(rng.Intn(150)), int32(rng.Intn(150))
		if err := dyn.InsertEdge(a, b); err != nil {
			t.Fatal(err)
		}
		m.insert(a, b)
		ref, err := core.Build(m.graph(), lm)
		if err != nil {
			t.Fatal(err)
		}
		if dyn.NumEntries() != ref.NumEntries() {
			t.Fatalf("round %d: entries dyn=%d ref=%d", round, dyn.NumEntries(), ref.NumEntries())
		}
		// Labels must match exactly per vertex.
		for v := int32(0); v < 150; v++ {
			ranks, dists := ref.Label(v)
			dl := dyn.labels[v]
			if len(dl) != len(ranks) {
				t.Fatalf("round %d vertex %d: |L| dyn=%d ref=%d", round, v, len(dl), len(ranks))
			}
			for i := range dl {
				if dl[i].rank != ranks[i] || dl[i].dist != dists[i] {
					t.Fatalf("round %d vertex %d entry %d: dyn=(%d,%d) ref=(%d,%d)",
						round, v, i, dl[i].rank, dl[i].dist, ranks[i], dists[i])
				}
			}
		}
	}
}

// TestInsertQueriesExact checks distances against BFS on the evolving
// graph after every batch, through the shared differential harness.
func TestInsertQueriesExact(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := gen.ErdosRenyi(120, 200, 2)
	lm := g.DegreeOrder()[:5]
	dyn, err := Build(g, lm)
	if err != nil {
		t.Fatal(err)
	}
	m := newMirror(g)
	for round := 0; round < 10; round++ {
		batch := make([][2]int32, 5)
		for i := range batch {
			batch[i] = [2]int32{int32(rng.Intn(120)), int32(rng.Intn(120))}
			m.insert(batch[i][0], batch[i][1])
		}
		if err := dyn.InsertEdges(batch); err != nil {
			t.Fatal(err)
		}
		oracle.CheckSampled(t, m.graph(), dyn, 60, int64(round))
	}
}

// TestCornerCaseGraphs runs the dynamic index over the shared corner-case
// suite (no insertions: the static labelling must already be exact).
func TestCornerCaseGraphs(t *testing.T) {
	oracle.CheckCases(t, func(t *testing.T, g *graph.Graph) oracle.Oracle {
		k := 2
		if k > g.NumVertices() {
			k = g.NumVertices()
		}
		dyn, err := Build(g, g.DegreeOrder()[:k])
		if err != nil {
			t.Fatal(err)
		}
		return dyn
	})
}

// TestFromCoreMatchesBuild: converting a static index must yield exactly
// the state a direct dynamic build produces, and insertions afterwards
// must keep matching from-scratch rebuilds.
func TestFromCoreMatchesBuild(t *testing.T) {
	g := gen.BarabasiAlbert(200, 3, 19)
	lm := g.DegreeOrder()[:8]
	static, err := core.Build(g, lm)
	if err != nil {
		t.Fatal(err)
	}
	conv, err := FromCore(static)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := Build(g, lm)
	if err != nil {
		t.Fatal(err)
	}
	if conv.NumEntries() != direct.NumEntries() {
		t.Fatalf("entries: converted %d vs direct %d", conv.NumEntries(), direct.NumEntries())
	}
	for v := 0; v < g.NumVertices(); v++ {
		a, b := conv.labels[v], direct.labels[v]
		if len(a) != len(b) {
			t.Fatalf("vertex %d: |L| converted=%d direct=%d", v, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("vertex %d entry %d: converted=%+v direct=%+v", v, i, a[i], b[i])
			}
		}
	}
	// The conversion must be a real copy: inserting through the dynamic
	// index must not disturb the source, and must match a rebuild.
	m := newMirror(g)
	rng := rand.New(rand.NewSource(2))
	for round := 0; round < 6; round++ {
		a, b := int32(rng.Intn(200)), int32(rng.Intn(200))
		if err := conv.InsertEdge(a, b); err != nil {
			t.Fatal(err)
		}
		m.insert(a, b)
	}
	oracle.CheckSampled(t, m.graph(), conv, 80, 3)
	if err := static.Verify(100, 4); err != nil {
		t.Fatalf("source index corrupted by dynamic insertions: %v", err)
	}
}

// TestFreezeSnapshot: freezing after insertions yields an immutable
// core.Index identical to a from-scratch static build on the evolved
// graph, and later insertions leave the snapshot untouched.
func TestFreezeSnapshot(t *testing.T) {
	g := gen.ErdosRenyi(100, 160, 8)
	lm := g.DegreeOrder()[:6]
	dyn, err := Build(g, lm)
	if err != nil {
		t.Fatal(err)
	}
	m := newMirror(g)
	rng := rand.New(rand.NewSource(5))
	for round := 0; round < 10; round++ {
		a, b := int32(rng.Intn(100)), int32(rng.Intn(100))
		if err := dyn.InsertEdge(a, b); err != nil {
			t.Fatal(err)
		}
		m.insert(a, b)
	}
	fg, frozen, err := dyn.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	truth := m.graph()
	if fg.NumEdges() != truth.NumEdges() || fg.NumVertices() != truth.NumVertices() {
		t.Fatalf("frozen graph n=%d m=%d, want n=%d m=%d",
			fg.NumVertices(), fg.NumEdges(), truth.NumVertices(), truth.NumEdges())
	}
	ref, err := core.Build(truth, lm)
	if err != nil {
		t.Fatal(err)
	}
	if frozen.NumEntries() != ref.NumEntries() {
		t.Fatalf("frozen entries %d, rebuild says %d", frozen.NumEntries(), ref.NumEntries())
	}
	oracle.CheckSampled(t, truth, frozen.NewSearcher(), 150, 6)
	// Mutating on must not leak into the snapshot.
	if err := dyn.InsertEdge(0, 99); err != nil {
		t.Fatal(err)
	}
	if err := frozen.Verify(100, 7); err != nil {
		t.Fatalf("snapshot changed by post-freeze insertion: %v", err)
	}
}

// TestInsertConnectsComponents exercises the newly-reachable path.
func TestInsertConnectsComponents(t *testing.T) {
	g := graph.MustFromEdges(7, [][2]int32{{0, 1}, {1, 2}, {3, 4}, {4, 5}, {5, 6}})
	dyn, err := Build(g, []int32{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if d := dyn.Distance(0, 6); d != Infinity {
		t.Fatalf("pre-insert d(0,6) = %d", d)
	}
	if h := dyn.highway[1]; h != Infinity {
		t.Fatalf("cross-component highway = %d", h)
	}
	if err := dyn.InsertEdge(2, 3); err != nil {
		t.Fatal(err)
	}
	if d := dyn.Distance(0, 6); d != 6 {
		t.Fatalf("post-insert d(0,6) = %d, want 6", d)
	}
	if h := dyn.highway[1]; h != 3 {
		t.Fatalf("post-insert δH = %d, want 3 (1-2-3-4)", h)
	}
}

func TestInsertNoOps(t *testing.T) {
	g := gen.Cycle(8)
	dyn, err := Build(g, []int32{0})
	if err != nil {
		t.Fatal(err)
	}
	before := dyn.NumEntries()
	if err := dyn.InsertEdge(3, 3); err != nil {
		t.Fatal(err)
	}
	if err := dyn.InsertEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if dyn.NumEntries() != before {
		t.Fatal("no-op insertions changed the labelling")
	}
	if err := dyn.InsertEdge(0, 99); err == nil {
		t.Fatal("out-of-range edge accepted")
	}
	if err := dyn.InsertEdges(nil); err != nil {
		t.Fatal(err)
	}
}

func TestBuildErrors(t *testing.T) {
	g := gen.Path(5)
	if _, err := Build(g, nil); err == nil {
		t.Error("no landmarks accepted")
	}
	if _, err := Build(g, []int32{0, 0}); err == nil {
		t.Error("duplicate landmark accepted")
	}
	if _, err := Build(g, []int32{9}); err == nil {
		t.Error("out-of-range landmark accepted")
	}
}

// TestDirtyDetectionSkipsCleanLandmarks verifies the |da-db| = 0 skip: an
// edge between two vertices equidistant from the landmark must not change
// its label row.
func TestDirtyDetectionSkipsCleanLandmarks(t *testing.T) {
	// Star with center 0: all leaves at distance 1 from landmark 0.
	g := gen.Star(10)
	dyn, err := Build(g, []int32{0})
	if err != nil {
		t.Fatal(err)
	}
	rowLen := len(dyn.rows[0])
	// Leaf-leaf edge: both endpoints at distance 1 → landmark clean.
	if err := dyn.InsertEdge(3, 7); err != nil {
		t.Fatal(err)
	}
	if len(dyn.rows[0]) != rowLen {
		t.Fatal("clean landmark was rebuilt (row changed)")
	}
	// Distances still exact.
	if d := dyn.Distance(3, 7); d != 1 {
		t.Fatalf("d(3,7) = %d, want 1", d)
	}
	if d := dyn.Distance(3, 8); d != 2 {
		t.Fatalf("d(3,8) = %d, want 2", d)
	}
}

// TestRandomizedAgainstRebuildProperty runs randomized insertion
// sequences over multiple graph families.
func TestRandomizedAgainstRebuildProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var g *graph.Graph
		if seed%2 == 0 {
			g = gen.ErdosRenyi(60, 90, seed)
		} else {
			g = gen.WattsStrogatz(60, 2, 0.2, seed)
		}
		k := 1 + rng.Intn(5)
		lm := g.DegreeOrder()[:k]
		dyn, err := Build(g, lm)
		if err != nil {
			return false
		}
		m := newMirror(g)
		for round := 0; round < 8; round++ {
			a, b := int32(rng.Intn(60)), int32(rng.Intn(60))
			if dyn.InsertEdge(a, b) != nil {
				return false
			}
			m.insert(a, b)
		}
		truth := m.graph()
		for trial := 0; trial < 40; trial++ {
			s, u := int32(rng.Intn(60)), int32(rng.Intn(60))
			want := bfs.Dist(truth, s, u)
			if want == bfs.Unreachable {
				want = Infinity
			}
			if dyn.Distance(s, u) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
