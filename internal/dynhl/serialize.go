package dynhl

import (
	"bytes"
	"fmt"
	"io"
	"os"

	"highway/internal/core"
	"highway/internal/graph"
	"highway/internal/method"
)

// On-disk layout: the tagged "HWLIDX02" container of internal/method
// with tag "dynhl". Unlike the other methods, the dynamic labelling
// EMBEDS its graph: the adjacency evolves with every insertion, so an
// index saved after updates would be inconsistent with the base graph
// file on disk. Save freezes the current state (graph + labelling,
// exactly what a from-scratch build on the evolved edge set would
// produce) and stores both:
//
//	33 graph  the frozen evolved graph, graph.WriteBinary encoding
//	34 index  the frozen labelling, core format v2 encoding
//
// Header: N = vertex count, K = landmark count, Aux1/Aux2 = the byte
// lengths of the two sections (the allocation bound for the reader).
// Load verifies the supplied graph's vertex count but attaches the
// index to the embedded evolved graph.
const (
	sectGraph uint32 = 33
	sectIndex uint32 = 34
)

const tag = "dynhl"

// Write serializes the current state (see the layout comment).
func (ix *Index) Write(w io.Writer) error {
	g, frozen, err := ix.Freeze()
	if err != nil {
		return err
	}
	var gbuf, ibuf bytes.Buffer
	if err := g.WriteBinary(&gbuf); err != nil {
		return err
	}
	if err := frozen.WriteFormat(&ibuf, core.FormatV2); err != nil {
		return err
	}
	h := method.Header{
		Method: tag,
		N:      uint64(ix.n),
		K:      uint32(len(ix.landmarks)),
		Aux1:   uint64(gbuf.Len()),
		Aux2:   uint64(ibuf.Len()),
	}
	return method.WriteContainer(w, h, []method.Section{
		{ID: sectGraph, Payload: gbuf.Bytes()},
		{ID: sectIndex, Payload: ibuf.Bytes()},
	})
}

// Save writes the index to path (see Write).
func (ix *Index) Save(path string) error {
	return method.SaveFile(path, ix.Write)
}

// Read deserializes an index written by Write. g must have the same
// vertex count the index was built on; the returned index runs on the
// embedded evolved graph (which equals g when the index was saved
// without post-build insertions).
func Read(r io.Reader, g *graph.Graph) (*Index, error) {
	n := g.NumVertices()
	h, sections, err := method.ReadContainer(r, tag, func(h method.Header) (map[uint32]uint64, error) {
		if h.N != uint64(n) {
			return nil, fmt.Errorf("dynhl: index built for n=%d, graph has n=%d", h.N, n)
		}
		if h.K == 0 || uint64(h.K) > h.N || h.K > core.MaxLandmarks {
			return nil, fmt.Errorf("dynhl: index claims %d landmarks", h.K)
		}
		// The embedded payload lengths come from the header; bound them
		// by what a graph/labelling over n vertices can legitimately
		// need (offsets + a full adjacency; labels + highway + table).
		maxGraph := 64 + (h.N+1)*8 + h.N*h.N*4
		maxIndex := 4096 + (h.N+1)*8 + h.N*uint64(h.K)*16 + uint64(h.K)*uint64(h.K)*4
		if h.Aux1 > maxGraph || h.Aux2 > maxIndex {
			return nil, fmt.Errorf("dynhl: implausible embedded payload lengths %d/%d", h.Aux1, h.Aux2)
		}
		return map[uint32]uint64{
			sectGraph: h.Aux1,
			sectIndex: h.Aux2,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	if sections[sectGraph] == nil || sections[sectIndex] == nil {
		return nil, fmt.Errorf("dynhl: required section missing")
	}
	if uint64(len(sections[sectGraph])) != h.Aux1 || uint64(len(sections[sectIndex])) != h.Aux2 {
		return nil, fmt.Errorf("dynhl: section lengths disagree with header")
	}
	eg, err := graph.ReadBinary(bytes.NewReader(sections[sectGraph]))
	if err != nil {
		return nil, fmt.Errorf("dynhl: embedded graph: %w", err)
	}
	if eg.NumVertices() != n {
		return nil, fmt.Errorf("dynhl: embedded graph has n=%d, index claims %d", eg.NumVertices(), n)
	}
	frozen, err := core.Read(bytes.NewReader(sections[sectIndex]), eg)
	if err != nil {
		return nil, fmt.Errorf("dynhl: embedded index: %w", err)
	}
	return FromCore(frozen)
}

// Load reads an index file written by Save (see Read).
func Load(path string, g *graph.Graph) (*Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f, g)
}
