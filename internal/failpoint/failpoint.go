// Package failpoint is the fault-injection substrate of the serving
// tier: named points in production code where tests (or an operator
// running a chaos drill) can inject failures — an error return, a
// delay, a panic, or a bounded burst of errors — without touching the
// code under test. The WAL, the snapshot writer, the background
// rebuild and the binary listener all evaluate failpoints on their
// failure-prone paths; see DESIGN.md "Failure modes & degraded
// operation" for the site list.
//
// The design constraint is that a disarmed failpoint must cost almost
// nothing: production binaries run with every failpoint disarmed, and
// the sites sit on hot paths (every WAL append, every binary frame
// write). Eval therefore starts with one atomic load of a global
// armed-count; only when at least one failpoint is armed anywhere does
// it take the registry lock and look the name up.
//
// # Arming
//
// Tests arm failpoints with Set and clean up with Clear or Reset:
//
//	failpoint.Set("wal.sync", "error(disk gone)")
//	defer failpoint.Reset()
//
// Operators (and the chaos CI job) arm them at process start via the
// HIGHWAY_FAILPOINTS environment variable, a semicolon-separated list
// of name=spec entries:
//
//	HIGHWAY_FAILPOINTS='wal.sync=3*error(injected);serve.rebuild=delay(50ms)'
//
// # Spec grammar
//
//	spec    = [ count "*" ] action
//	action  = "error" [ "(" message ")" ]
//	        | "delay" "(" duration ")"
//	        | "panic" [ "(" message ")" ]
//	count   = positive integer: the failpoint fires on its first count
//	          hits, then disarms itself (fail-N-times)
//
// Without a count the failpoint fires on every hit until cleared.
// Injected errors wrap ErrInjected, so callers can distinguish an
// injected fault from a real one with errors.Is — useful when a chaos
// test needs to assert that an observed failure was its own.
package failpoint

import (
	"errors"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected is wrapped by every error a failpoint injects, so tests
// can tell injected faults from organic ones.
var ErrInjected = errors.New("failpoint: injected error")

// EnvVar is the environment variable scanned at init for failpoints to
// arm at process start.
const EnvVar = "HIGHWAY_FAILPOINTS"

type action uint8

const (
	actError action = iota
	actDelay
	actPanic
)

// point is one armed failpoint.
type point struct {
	act     action
	msg     string
	delay   time.Duration
	remain  int64 // hits left before self-disarm; <0 = unbounded
	hits    int64
	cleared bool // self-disarmed (count exhausted); kept for Hits
}

var (
	// armed counts failpoints currently able to fire. Eval's fast path
	// is a single load of this: zero means nothing anywhere is armed
	// and Eval returns immediately.
	armed atomic.Int64

	mu     sync.Mutex
	points = map[string]*point{}
)

func init() {
	if env := os.Getenv(EnvVar); env != "" {
		if err := SetFromEnv(env); err != nil {
			// A malformed env spec must not be silently ignored (the
			// chaos run would silently test nothing), nor can init
			// return an error: fail loudly.
			panic(fmt.Sprintf("failpoint: parsing %s: %v", EnvVar, err))
		}
	}
}

// Set arms the named failpoint with the given spec (see the package
// doc for the grammar), replacing any previous arming.
func Set(name, spec string) error {
	p, err := parse(spec)
	if err != nil {
		return fmt.Errorf("failpoint %q: %w", name, err)
	}
	mu.Lock()
	defer mu.Unlock()
	if old, ok := points[name]; ok && !old.cleared {
		armed.Add(-1)
	}
	points[name] = p
	armed.Add(1)
	return nil
}

// SetFromEnv arms every failpoint in a semicolon-separated name=spec
// list (the HIGHWAY_FAILPOINTS format).
func SetFromEnv(list string) error {
	for _, entry := range strings.Split(list, ";") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		name, spec, ok := strings.Cut(entry, "=")
		if !ok {
			return fmt.Errorf("entry %q is not name=spec", entry)
		}
		if err := Set(strings.TrimSpace(name), strings.TrimSpace(spec)); err != nil {
			return err
		}
	}
	return nil
}

// Clear disarms the named failpoint. Its hit count is forgotten.
func Clear(name string) {
	mu.Lock()
	defer mu.Unlock()
	if p, ok := points[name]; ok {
		if !p.cleared {
			armed.Add(-1)
		}
		delete(points, name)
	}
}

// Reset disarms every failpoint and forgets all hit counts. Tests that
// arm failpoints defer this.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	for _, p := range points {
		if !p.cleared {
			armed.Add(-1)
		}
	}
	points = map[string]*point{}
}

// Hits reports how many times the named failpoint has fired since it
// was armed (surviving self-disarm, so a fail-N-times point reports N
// after exhausting). 0 for unknown names.
func Hits(name string) int64 {
	mu.Lock()
	defer mu.Unlock()
	if p, ok := points[name]; ok {
		return p.hits
	}
	return 0
}

// Enabled reports whether the named failpoint is currently armed and
// able to fire. Sites whose fault needs more mechanism than an error
// return (e.g. the WAL's simulated short write) branch on this.
func Enabled(name string) bool {
	if armed.Load() == 0 {
		return false
	}
	mu.Lock()
	defer mu.Unlock()
	p, ok := points[name]
	return ok && !p.cleared
}

// Eval evaluates the named failpoint: nil when disarmed (the common
// case, one atomic load), otherwise the injected behavior — an error
// wrapping ErrInjected, a delay then nil, or a panic. A fail-N-times
// point disarms itself after its Nth hit.
func Eval(name string) error {
	if armed.Load() == 0 {
		return nil
	}
	mu.Lock()
	p, ok := points[name]
	if !ok || p.cleared {
		mu.Unlock()
		return nil
	}
	p.hits++
	if p.remain > 0 {
		p.remain--
		if p.remain == 0 {
			p.cleared = true
			armed.Add(-1)
		}
	}
	act, msg, delay := p.act, p.msg, p.delay
	mu.Unlock()

	switch act {
	case actDelay:
		time.Sleep(delay)
		return nil
	case actPanic:
		panic(fmt.Sprintf("failpoint %q: %s", name, msg))
	default:
		return fmt.Errorf("%w: %s: %s", ErrInjected, name, msg)
	}
}

// parse compiles a spec string into a point.
func parse(spec string) (*point, error) {
	spec = strings.TrimSpace(spec)
	p := &point{remain: -1}
	if i := strings.Index(spec, "*"); i >= 0 {
		n, err := strconv.ParseInt(strings.TrimSpace(spec[:i]), 10, 64)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad count in spec %q", spec)
		}
		p.remain = n
		spec = strings.TrimSpace(spec[i+1:])
	}
	name, arg := spec, ""
	if i := strings.Index(spec, "("); i >= 0 {
		if !strings.HasSuffix(spec, ")") {
			return nil, fmt.Errorf("unclosed argument in spec %q", spec)
		}
		name, arg = spec[:i], spec[i+1:len(spec)-1]
	}
	switch name {
	case "error":
		p.act = actError
		p.msg = arg
		if p.msg == "" {
			p.msg = "injected"
		}
	case "delay":
		p.act = actDelay
		d, err := time.ParseDuration(arg)
		if err != nil || d < 0 {
			return nil, fmt.Errorf("bad delay in spec %q", spec)
		}
		p.delay = d
	case "panic":
		p.act = actPanic
		p.msg = arg
		if p.msg == "" {
			p.msg = "injected panic"
		}
	default:
		return nil, fmt.Errorf("unknown action %q (want error, delay or panic)", name)
	}
	return p, nil
}
