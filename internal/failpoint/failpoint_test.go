package failpoint

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func TestDisarmedIsNil(t *testing.T) {
	defer Reset()
	if err := Eval("never.armed"); err != nil {
		t.Fatalf("disarmed failpoint fired: %v", err)
	}
	if Enabled("never.armed") {
		t.Fatal("disarmed failpoint reports Enabled")
	}
}

func TestErrorInjection(t *testing.T) {
	defer Reset()
	if err := Set("a", "error(disk gone)"); err != nil {
		t.Fatal(err)
	}
	err := Eval("a")
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("want ErrInjected, got %v", err)
	}
	if !strings.Contains(err.Error(), "disk gone") {
		t.Fatalf("message lost: %v", err)
	}
	// Other names stay disarmed.
	if err := Eval("b"); err != nil {
		t.Fatalf("unrelated failpoint fired: %v", err)
	}
	Clear("a")
	if err := Eval("a"); err != nil {
		t.Fatalf("cleared failpoint fired: %v", err)
	}
}

func TestFailNTimes(t *testing.T) {
	defer Reset()
	if err := Set("n", "2*error"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := Eval("n"); !errors.Is(err, ErrInjected) {
			t.Fatalf("hit %d: want injection, got %v", i, err)
		}
	}
	if err := Eval("n"); err != nil {
		t.Fatalf("exhausted failpoint fired: %v", err)
	}
	if got := Hits("n"); got != 2 {
		t.Fatalf("Hits = %d, want 2", got)
	}
	if Enabled("n") {
		t.Fatal("exhausted failpoint reports Enabled")
	}
	// Re-arming an exhausted point works and keeps the global count
	// consistent (Eval's fast path must still see it).
	if err := Set("n", "error"); err != nil {
		t.Fatal(err)
	}
	if err := Eval("n"); !errors.Is(err, ErrInjected) {
		t.Fatalf("re-armed failpoint did not fire: %v", err)
	}
}

func TestDelay(t *testing.T) {
	defer Reset()
	if err := Set("d", "delay(30ms)"); err != nil {
		t.Fatal(err)
	}
	t0 := time.Now()
	if err := Eval("d"); err != nil {
		t.Fatalf("delay returned error: %v", err)
	}
	if el := time.Since(t0); el < 25*time.Millisecond {
		t.Fatalf("delay too short: %v", el)
	}
}

func TestPanic(t *testing.T) {
	defer Reset()
	if err := Set("p", "panic(boom)"); err != nil {
		t.Fatal(err)
	}
	defer func() {
		r := recover()
		if r == nil || !strings.Contains(r.(string), "boom") {
			t.Fatalf("recover = %v, want injected panic", r)
		}
	}()
	Eval("p")
	t.Fatal("unreachable: panic failpoint did not panic")
}

func TestSetFromEnv(t *testing.T) {
	defer Reset()
	if err := SetFromEnv("x=error(one); y=3*delay(1ms) ;; z=panic"); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"x", "y", "z"} {
		if !Enabled(name) {
			t.Fatalf("%s not armed from env list", name)
		}
	}
	if err := SetFromEnv("no-equals-sign"); err == nil {
		t.Fatal("want error on malformed env entry")
	}
}

func TestParseErrors(t *testing.T) {
	defer Reset()
	for _, spec := range []string{
		"", "bogus", "error(unclosed", "0*error", "-1*error", "x*error",
		"delay", "delay(nope)", "delay(-1s)",
	} {
		if err := Set("bad", spec); err == nil {
			t.Errorf("spec %q: want parse error", spec)
		}
	}
}

func TestConcurrentEval(t *testing.T) {
	defer Reset()
	if err := Set("c", "error"); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	for i := 0; i < 8; i++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for j := 0; j < 1000; j++ {
				Eval("c")
				Eval("uncontested")
			}
		}()
	}
	for i := 0; i < 8; i++ {
		<-done
	}
	if got := Hits("c"); got != 8000 {
		t.Fatalf("Hits = %d, want 8000", got)
	}
}
