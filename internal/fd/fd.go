// Package fd implements the FD baseline (Hayashi, Akiba, Kawarabayashi,
// CIKM 2016): the method the paper identifies as closest to its own
// (Section 7). FD precomputes a full shortest-path tree (here: the full
// distance array) from each of k landmarks, bounds a query by the best
// landmark detour, and refines the bound with a bidirectional BFS on the
// graph minus the landmarks — the same querying skeleton as the highway
// cover labelling, but with labels of fixed size k for every vertex
// (Table 2 reports FD's ALS as "20+64": 20 landmark entries plus 64
// bit-parallel neighbor bits per landmark — BuildBP implements the
// bit-parallel part via internal/bptree).
//
// Unlike HL, FD is fully dynamic in the original paper; this
// implementation supports its incremental side (edge insertions) by
// repairing each landmark's distance array with a pruned BFS from the
// improved endpoint. Deletions are out of scope (they need per-tree parent
// counts and are orthogonal to the paper's comparison).
package fd

import (
	"context"
	"fmt"

	"highway/internal/bfs"
	"highway/internal/bptree"
	"highway/internal/graph"
	"highway/internal/method"
)

// FD implements the method-agnostic index contract (and the optional
// Inserter mutation surface); see internal/method.
var (
	_ method.DistanceIndex = (*Index)(nil)
	_ method.Inserter      = (*Index)(nil)
)

// Infinity is the distance reported between disconnected vertices.
const Infinity int32 = -1

// Index is an FD distance oracle.
type Index struct {
	g          *graph.Graph
	landmarks  []int32
	rankOf     []int32
	isLandmark []bool
	dist       [][]int32 // dist[r][v] = d(landmarks[r], v); full SPT arrays

	// bp holds one bit-parallel tree per landmark when built with
	// BuildBP (the paper's "20+64" configuration); nil otherwise.
	// BP trees are static: InsertEdge drops them (their bounds could
	// become stale), falling back to the plain SPT bounds.
	bp []*bptree.Tree

	// dyn holds the mutable adjacency after the first InsertEdge;
	// nil while the index is purely static.
	dyn *overlay
}

// overlay is the insert-only adjacency used after dynamic updates.
type overlay struct {
	adj [][]int32
}

func (o *overlay) NumVertices() int          { return len(o.adj) }
func (o *overlay) Neighbors(v int32) []int32 { return o.adj[v] }

// Build constructs the FD index: one full BFS per landmark.
func Build(ctx context.Context, g *graph.Graph, landmarks []int32) (*Index, error) {
	n := g.NumVertices()
	if len(landmarks) == 0 {
		return nil, fmt.Errorf("fd: no landmarks")
	}
	rankOf := make([]int32, n)
	for i := range rankOf {
		rankOf[i] = -1
	}
	isLandmark := make([]bool, n)
	for r, v := range landmarks {
		if v < 0 || int(v) >= n {
			return nil, fmt.Errorf("fd: landmark %d out of range [0,%d)", v, n)
		}
		if rankOf[v] >= 0 {
			return nil, fmt.Errorf("fd: duplicate landmark %d", v)
		}
		rankOf[v] = int32(r)
		isLandmark[v] = true
	}
	ix := &Index{
		g:          g,
		landmarks:  landmarks,
		rankOf:     rankOf,
		isLandmark: isLandmark,
		dist:       make([][]int32, len(landmarks)),
	}
	for r, l := range landmarks {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		ix.dist[r] = bfs.DistancesReuse(g, l, make([]int32, n))
	}
	return ix, nil
}

// Searcher carries per-goroutine query scratch.
type Searcher struct {
	ix *Index
	sc *bfs.Scratch
}

// NewSearcher returns a query searcher bound to the index, typed as the
// method-agnostic interface.
func (ix *Index) NewSearcher() method.Searcher { return ix.newSearcher() }

func (ix *Index) newSearcher() *Searcher {
	return &Searcher{ix: ix, sc: bfs.NewScratch(ix.g.NumVertices())}
}

// UpperBound returns the landmark-detour bound (see Index.UpperBound).
func (sr *Searcher) UpperBound(s, t int32) int32 { return sr.ix.UpperBound(s, t) }

// UpperBound returns the best landmark detour min_r d(r,s) + d(r,t),
// refined by the bit-parallel trees when present (each tree can shave 1
// or 2 off a detour that passes next to the landmark), or Infinity if no
// landmark reaches both endpoints.
func (ix *Index) UpperBound(s, t int32) int32 {
	best := Infinity
	for _, row := range ix.dist {
		ds, dt := row[s], row[t]
		if ds < 0 || dt < 0 {
			continue
		}
		if d := ds + dt; best < 0 || d < best {
			best = d
		}
	}
	if ix.bp != nil {
		if d := bptree.MinQuery(ix.bp, s, t); d < best || best < 0 {
			if d < 1<<30 {
				best = d
			}
		}
	}
	return best
}

// BuildBP constructs the FD index with one bit-parallel tree per landmark
// covering up to 64 of its neighbors — the paper's FD configuration
// (Table 2 reports FD's label width as "20+64").
func BuildBP(ctx context.Context, g *graph.Graph, landmarks []int32) (*Index, error) {
	ix, err := Build(ctx, g, landmarks)
	if err != nil {
		return nil, err
	}
	used := make([]bool, g.NumVertices())
	for _, l := range landmarks {
		used[l] = true
	}
	ix.bp = make([]*bptree.Tree, 0, len(landmarks))
	for _, l := range landmarks {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		ix.bp = append(ix.bp, bptree.Build(g, l, used))
	}
	return ix, nil
}

// NumBPTrees returns the number of bit-parallel trees (0 unless BuildBP).
func (ix *Index) NumBPTrees() int { return len(ix.bp) }

// Distance returns the exact distance between s and t, or Infinity.
func (sr *Searcher) Distance(s, t int32) int32 {
	ix := sr.ix
	if s == t {
		return 0
	}
	// A landmark endpoint is answered by its own distance row.
	if r := ix.rankOf[s]; r >= 0 {
		return ix.dist[r][t]
	}
	if r := ix.rankOf[t]; r >= 0 {
		return ix.dist[r][s]
	}
	ub := ix.UpperBound(s, t)
	bound := ub
	if bound == Infinity {
		bound = bfs.NoBound
	}
	var d int32
	if ix.dyn != nil {
		d = bfs.BoundedBiBFS(ix.dyn, s, t, bound, ix.isLandmark, sr.sc)
	} else {
		d = bfs.BoundedBiBFS(ix.g, s, t, bound, ix.isLandmark, sr.sc)
	}
	if d == bfs.Unreachable {
		return ub // Infinity when ub is Infinity too
	}
	return d
}

// Distance is the allocation-per-call convenience form.
func (ix *Index) Distance(s, t int32) int32 {
	return ix.newSearcher().Distance(s, t)
}

// Stats summarizes the index (method-agnostic form). FD labels have
// fixed size k for every non-landmark vertex.
func (ix *Index) Stats() method.Stats {
	k := len(ix.landmarks)
	return method.Stats{
		Method:       "fd",
		NumVertices:  ix.g.NumVertices(),
		NumEdges:     ix.g.NumEdges(),
		NumLandmarks: k,
		NumEntries:   ix.NumEntries(),
		AvgLabelSize: ix.AvgLabelSize(),
		MaxLabelSize: k,
		SizeBytes:    ix.SizeBytes(),
		BPTrees:      len(ix.bp),
	}
}

// InsertEdge adds the undirected edge {u,v} and repairs every landmark's
// distance array incrementally. Inserting an existing edge or a self-loop
// is a no-op. Vertices must already exist (vertex additions are not
// supported; FD's original paper adds isolated vertices first, which never
// changes distances).
func (ix *Index) InsertEdge(u, v int32) error {
	n := ix.g.NumVertices()
	if u < 0 || v < 0 || int(u) >= n || int(v) >= n {
		return fmt.Errorf("fd: edge {%d,%d} out of range [0,%d)", u, v, n)
	}
	if u == v {
		return nil
	}
	ix.bp = nil // BP bounds are static; drop them on mutation
	ix.materialize()
	for _, w := range ix.dyn.adj[u] {
		if w == v {
			return nil // already present
		}
	}
	ix.dyn.adj[u] = append(ix.dyn.adj[u], v)
	ix.dyn.adj[v] = append(ix.dyn.adj[v], u)
	for _, row := range ix.dist {
		ix.repairRow(row, u, v)
	}
	return nil
}

// materialize copies the base CSR adjacency into the mutable overlay.
func (ix *Index) materialize() {
	if ix.dyn != nil {
		return
	}
	n := ix.g.NumVertices()
	adj := make([][]int32, n)
	for v := 0; v < n; v++ {
		nb := ix.g.Neighbors(int32(v))
		adj[v] = append(make([]int32, 0, len(nb)+1), nb...)
	}
	ix.dyn = &overlay{adj: adj}
}

// repairRow restores row = d(landmark, ·) after inserting {u,v}: if one
// endpoint's distance improves through the other, a BFS from the improved
// endpoint relaxes the affected region. Unreachable vertices (-1) become
// reachable when the new edge connects their component.
func (ix *Index) repairRow(row []int32, u, v int32) {
	du, dv := row[u], row[v]
	// Normalize: make u the better-connected endpoint.
	if du < 0 && dv < 0 {
		return // both unreachable: still unreachable
	}
	if du < 0 || (dv >= 0 && dv < du) {
		u, v = v, u
		du, dv = dv, du
	}
	if dv >= 0 && du+1 >= dv {
		return // no improvement
	}
	// v improves to du+1; propagate.
	row[v] = du + 1
	frontier := []int32{v}
	var next []int32
	for len(frontier) > 0 {
		next = next[:0]
		for _, x := range frontier {
			dx := row[x]
			for _, y := range ix.dyn.adj[x] {
				if row[y] < 0 || row[y] > dx+1 {
					row[y] = dx + 1
					next = append(next, y)
				}
			}
		}
		frontier, next = next, frontier
	}
}

// NumLandmarks returns k.
func (ix *Index) NumLandmarks() int { return len(ix.landmarks) }

// Landmarks returns the landmark ids by rank (not to be modified).
func (ix *Index) Landmarks() []int32 { return ix.landmarks }

// NumEntries returns the label-entry count: k entries for every
// non-landmark vertex (FD stores full SPTs).
func (ix *Index) NumEntries() int64 {
	return int64(len(ix.landmarks)) * int64(ix.g.NumVertices()-len(ix.landmarks))
}

// AvgLabelSize is k for every vertex (Table 2 reports "20+64"; the +64
// bit-parallel part is not implemented).
func (ix *Index) AvgLabelSize() float64 { return float64(len(ix.landmarks)) }

// SizeBytes reports the index size under the paper's accounting: 32-bit
// vertex ids + 8-bit distances per entry.
func (ix *Index) SizeBytes() int64 { return ix.NumEntries() * 5 }
