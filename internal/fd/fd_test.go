package fd

import (
	"context"
	"math/rand"
	"testing"

	"highway/internal/bfs"
	"highway/internal/gen"
	"highway/internal/graph"
	"highway/internal/oracle"
)

func buildOrFail(t *testing.T, g *graph.Graph, k int) *Index {
	t.Helper()
	lm := g.DegreeOrder()
	if k > len(lm) {
		k = len(lm)
	}
	ix, err := Build(context.Background(), g, lm[:k])
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

// TestExactOnSmallGraphs runs FD over the shared corner-case suite across
// landmark counts.
func TestExactOnSmallGraphs(t *testing.T) {
	for _, k := range []int{1, 3} {
		oracle.CheckCases(t, func(t *testing.T, g *graph.Graph) oracle.Oracle {
			return buildOrFail(t, g, k).NewSearcher()
		})
	}
}

// TestRandomGraphsProperty: FD equals BFS on random graphs of every
// generator family.
func TestRandomGraphsProperty(t *testing.T) {
	oracle.CheckRandom(t, 30, 50, func(seed int64, g *graph.Graph) (oracle.Oracle, error) {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + rng.Intn(10)
		if k > g.NumVertices() {
			k = g.NumVertices()
		}
		ix, err := Build(context.Background(), g, g.DegreeOrder()[:k])
		if err != nil {
			return nil, err
		}
		return ix.NewSearcher(), nil
	})
}

func TestUpperBoundIsBound(t *testing.T) {
	g := gen.BarabasiAlbert(300, 3, 7)
	ix := buildOrFail(t, g, 10)
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 300; trial++ {
		s := int32(rng.Intn(300))
		u := int32(rng.Intn(300))
		d := bfs.Dist(g, s, u)
		if ub := ix.UpperBound(s, u); ub < d {
			t.Fatalf("ub(%d,%d) = %d < %d", s, u, ub, d)
		}
	}
}

func TestBuildErrors(t *testing.T) {
	g := gen.Path(5)
	ctx := context.Background()
	if _, err := Build(ctx, g, nil); err == nil {
		t.Error("no landmarks accepted")
	}
	if _, err := Build(ctx, g, []int32{1, 1}); err == nil {
		t.Error("duplicate landmark accepted")
	}
	if _, err := Build(ctx, g, []int32{77}); err == nil {
		t.Error("out-of-range landmark accepted")
	}
	cctx, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := Build(cctx, gen.BarabasiAlbert(500, 3, 1), []int32{0, 1, 2}); err == nil {
		t.Error("cancelled context ignored")
	}
}

// TestInsertEdge verifies dynamic updates keep the oracle exact: insert
// random edges one by one and cross-check against BFS on a mirrored
// builder graph after every insertion.
func TestInsertEdge(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	n := 120
	g := gen.BarabasiAlbert(n, 2, 4)
	ix := buildOrFail(t, g, 6)

	// Mirror of the evolving graph for ground truth.
	edges := [][2]int32{}
	for u := int32(0); u < int32(n); u++ {
		for _, v := range g.Neighbors(u) {
			if u < v {
				edges = append(edges, [2]int32{u, v})
			}
		}
	}
	for round := 0; round < 15; round++ {
		u := int32(rng.Intn(n))
		v := int32(rng.Intn(n))
		if err := ix.InsertEdge(u, v); err != nil {
			t.Fatal(err)
		}
		if u != v {
			edges = append(edges, [2]int32{u, v})
		}
		oracle.CheckSampled(t, graph.MustFromEdges(n, edges), ix.NewSearcher(), 40, int64(round))
	}
}

// TestInsertEdgeConnectsComponents covers the unreachable→reachable
// transition in the repair logic.
func TestInsertEdgeConnectsComponents(t *testing.T) {
	g := graph.MustFromEdges(6, [][2]int32{{0, 1}, {1, 2}, {3, 4}, {4, 5}})
	ix, err := Build(context.Background(), g, []int32{1})
	if err != nil {
		t.Fatal(err)
	}
	sr := ix.NewSearcher()
	if d := sr.Distance(0, 5); d != Infinity {
		t.Fatalf("pre-insert d(0,5) = %d, want Infinity", d)
	}
	if err := ix.InsertEdge(2, 3); err != nil {
		t.Fatal(err)
	}
	if d := sr.Distance(0, 5); d != 5 {
		t.Fatalf("post-insert d(0,5) = %d, want 5", d)
	}
	// Landmark row must now reach the far component.
	if d := sr.Distance(1, 5); d != 4 {
		t.Fatalf("post-insert d(1,5) = %d, want 4", d)
	}
}

func TestInsertEdgeNoOps(t *testing.T) {
	g := gen.Cycle(6)
	ix, err := Build(context.Background(), g, []int32{0})
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.InsertEdge(2, 2); err != nil {
		t.Fatal("self-loop should be a silent no-op")
	}
	if err := ix.InsertEdge(0, 1); err != nil {
		t.Fatal("existing edge should be a no-op")
	}
	if err := ix.InsertEdge(0, 99); err == nil {
		t.Fatal("out-of-range edge accepted")
	}
	// Re-inserting after materialization must also dedupe.
	if err := ix.InsertEdge(0, 3); err != nil {
		t.Fatal(err)
	}
	if err := ix.InsertEdge(0, 3); err != nil {
		t.Fatal(err)
	}
	if got := len(ix.dyn.adj[0]); got != 3 {
		t.Fatalf("adj[0] has %d entries, want 3 (2 original + 1 new)", got)
	}
}

func TestAccounting(t *testing.T) {
	g := gen.PaperFigure2()
	ix := buildOrFail(t, g, 3)
	if ix.NumLandmarks() != 3 || len(ix.Landmarks()) != 3 {
		t.Fatal("landmark accessors wrong")
	}
	if ix.NumEntries() != 3*11 {
		t.Fatalf("NumEntries = %d, want 33", ix.NumEntries())
	}
	if ix.AvgLabelSize() != 3 {
		t.Fatalf("ALS = %v, want 3", ix.AvgLabelSize())
	}
	if ix.SizeBytes() != 33*5 {
		t.Fatalf("SizeBytes = %d", ix.SizeBytes())
	}
}

// TestBuildBPExactAndCoverage: BP-augmented FD stays exact and its upper
// bound covers at least as many pairs as plain FD.
func TestBuildBPExactAndCoverage(t *testing.T) {
	g := gen.BarabasiAlbert(300, 3, 15)
	lm := g.DegreeOrder()[:8]
	plain, err := Build(context.Background(), g, lm)
	if err != nil {
		t.Fatal(err)
	}
	bp, err := BuildBP(context.Background(), g, lm)
	if err != nil {
		t.Fatal(err)
	}
	if bp.NumBPTrees() != 8 || plain.NumBPTrees() != 0 {
		t.Fatalf("trees: bp=%d plain=%d", bp.NumBPTrees(), plain.NumBPTrees())
	}
	sr := bp.NewSearcher()
	rng := rand.New(rand.NewSource(4))
	coveredPlain, coveredBP := 0, 0
	for trial := 0; trial < 500; trial++ {
		s := int32(rng.Intn(300))
		u := int32(rng.Intn(300))
		d := bfs.Dist(g, s, u)
		want := d
		if want == bfs.Unreachable {
			want = Infinity
		}
		if got := sr.Distance(s, u); got != want {
			t.Fatalf("BP FD Distance(%d,%d) = %d, want %d", s, u, got, want)
		}
		ubBP := bp.UpperBound(s, u)
		ubPlain := plain.UpperBound(s, u)
		if d >= 0 && ubBP >= 0 && ubBP < d {
			t.Fatalf("BP bound %d below true %d", ubBP, d)
		}
		if ubBP > ubPlain && ubPlain >= 0 {
			t.Fatalf("BP bound %d worse than plain %d", ubBP, ubPlain)
		}
		if d >= 0 {
			if ubPlain == d {
				coveredPlain++
			}
			if ubBP == d {
				coveredBP++
			}
		}
	}
	if coveredBP < coveredPlain {
		t.Fatalf("BP coverage %d below plain %d", coveredBP, coveredPlain)
	}
	if coveredBP == coveredPlain {
		t.Logf("warning: BP added no coverage on this graph (plain=%d)", coveredPlain)
	}
}

// TestBPDroppedOnInsert: dynamic updates invalidate BP bounds, so they
// must be discarded and queries stay exact.
func TestBPDroppedOnInsert(t *testing.T) {
	g := gen.Cycle(12)
	ix, err := BuildBP(context.Background(), g, []int32{0, 6})
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.InsertEdge(2, 9); err != nil {
		t.Fatal(err)
	}
	if ix.NumBPTrees() != 0 {
		t.Fatal("BP trees survived mutation")
	}
	if d := ix.NewSearcher().Distance(2, 9); d != 1 {
		t.Fatalf("d(2,9) = %d, want 1", d)
	}
	if d := ix.NewSearcher().Distance(1, 10); d != 3 {
		t.Fatalf("d(1,10) = %d, want 3 (1-2-9-10)", d)
	}
}
