package fd

import (
	"fmt"
	"io"
	"os"

	"highway/internal/bptree"
	"highway/internal/graph"
	"highway/internal/method"
)

// On-disk layout: the tagged "HWLIDX02" container of internal/method
// with tag "fd". Header: N = vertex count, K = landmark count, Aux1 =
// bit-parallel tree count, Aux2 = overlay edge count (0 when the index
// is purely static; the overlay holds the FULL adjacency after dynamic
// updates, base edges included). Sections:
//
//	33 landmarks [K]uint32
//	34 dist      [K*N]uint32   d(landmark r, v) row-major (int32, -1 unreachable)
//	35 bp        Aux1 trees    bptree encoding (absent when Aux1=0)
//	36 overlay   [Aux2]{u,v uint32}  undirected overlay edges, u < v
const (
	sectLandmarks uint32 = 33
	sectDist      uint32 = 34
	sectBP        uint32 = 35
	sectOverlay   uint32 = 36
)

const tag = "fd"

// Write serializes the index (without the graph) in the tagged v2
// container format. Dynamic state survives the round trip: an index
// that has absorbed InsertEdge calls persists its evolved overlay
// adjacency (its bit-parallel trees were already dropped on the first
// mutation, matching the in-memory contract).
func (ix *Index) Write(w io.Writer) error {
	n := ix.g.NumVertices()
	k := len(ix.landmarks)
	sections := []method.Section{
		{ID: sectLandmarks, Payload: method.AppendI32s(make([]byte, 0, k*4), ix.landmarks)},
	}
	distPayload := make([]byte, 0, k*n*4)
	for _, row := range ix.dist {
		distPayload = method.AppendI32s(distPayload, row)
	}
	sections = append(sections, method.Section{ID: sectDist, Payload: distPayload})
	if len(ix.bp) > 0 {
		sections = append(sections, method.Section{
			ID:      sectBP,
			Payload: bptree.AppendTrees(make([]byte, 0, bptree.EncodedLen(len(ix.bp), n)), ix.bp, n),
		})
	}
	var overlayEdges uint64
	if ix.dyn != nil {
		var payload []byte
		for u, nbs := range ix.dyn.adj {
			for _, v := range nbs {
				if int32(u) < v {
					payload = method.AppendI32s(payload, []int32{int32(u), v})
					overlayEdges++
				}
			}
		}
		sections = append(sections, method.Section{ID: sectOverlay, Payload: payload})
	}
	h := method.Header{
		Method: tag,
		N:      uint64(n),
		K:      uint32(k),
		Aux1:   uint64(len(ix.bp)),
		Aux2:   overlayEdges,
	}
	return method.WriteContainer(w, h, sections)
}

// Save writes the index to path (see Write).
func (ix *Index) Save(path string) error {
	return method.SaveFile(path, ix.Write)
}

// Read deserializes an index written by Write and attaches it to g,
// which must be the graph the index was built on.
func Read(r io.Reader, g *graph.Graph) (*Index, error) {
	n := g.NumVertices()
	h, sections, err := method.ReadContainer(r, tag, func(h method.Header) (map[uint32]uint64, error) {
		if h.N != uint64(n) {
			return nil, fmt.Errorf("fd: index built for n=%d, graph has n=%d", h.N, n)
		}
		if h.K == 0 || uint64(h.K) > h.N {
			return nil, fmt.Errorf("fd: index claims %d landmarks for n=%d", h.K, n)
		}
		if h.Aux1 > uint64(h.K) {
			return nil, fmt.Errorf("fd: implausible bit-parallel tree count %d", h.Aux1)
		}
		if h.Aux2 > h.N*h.N {
			return nil, fmt.Errorf("fd: implausible overlay edge count %d", h.Aux2)
		}
		return map[uint32]uint64{
			sectLandmarks: uint64(h.K) * 4,
			sectDist:      uint64(h.K) * h.N * 4,
			sectBP:        uint64(bptree.EncodedLen(int(h.Aux1), n)),
			sectOverlay:   h.Aux2 * 8,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	k := int(h.K)
	if sections[sectLandmarks] == nil || sections[sectDist] == nil {
		return nil, fmt.Errorf("fd: required section missing")
	}

	ix := &Index{
		g:          g,
		landmarks:  make([]int32, k),
		rankOf:     make([]int32, n),
		isLandmark: make([]bool, n),
		dist:       make([][]int32, k),
	}
	if err := method.DecodeI32s(sections[sectLandmarks], ix.landmarks); err != nil {
		return nil, err
	}
	for i := range ix.rankOf {
		ix.rankOf[i] = -1
	}
	for r, v := range ix.landmarks {
		if v < 0 || int(v) >= n {
			return nil, fmt.Errorf("fd: landmark %d out of range [0,%d)", v, n)
		}
		if ix.rankOf[v] >= 0 {
			return nil, fmt.Errorf("fd: duplicate landmark %d", v)
		}
		ix.rankOf[v] = int32(r)
		ix.isLandmark[v] = true
	}
	flat := make([]int32, k*n)
	if err := method.DecodeI32s(sections[sectDist], flat); err != nil {
		return nil, err
	}
	for r := range ix.dist {
		row := flat[r*n : (r+1)*n]
		for _, d := range row {
			if d < -1 {
				return nil, fmt.Errorf("fd: invalid distance %d in landmark row %d", d, r)
			}
		}
		ix.dist[r] = row
	}
	if nBP := int(h.Aux1); nBP > 0 {
		if sections[sectBP] == nil {
			return nil, fmt.Errorf("fd: header claims %d bit-parallel trees, section missing", nBP)
		}
		ix.bp, err = bptree.DecodeTrees(sections[sectBP], nBP, n)
		if err != nil {
			return nil, err
		}
	}
	if err := ix.dynFromSection(sections[sectOverlay], int(h.Aux2)); err != nil {
		return nil, err
	}
	return ix, nil
}

// dynFromSection reconstructs the mutable overlay adjacency from the
// overlay section (nil when the index was saved in its static state).
func (ix *Index) dynFromSection(payload []byte, edges int) error {
	if payload == nil {
		if edges != 0 {
			return fmt.Errorf("fd: header claims %d overlay edges, section missing", edges)
		}
		return nil
	}
	flat := make([]int32, 2*edges)
	if err := method.DecodeI32s(payload, flat); err != nil {
		return err
	}
	n := ix.g.NumVertices()
	adj := make([][]int32, n)
	for i := 0; i < edges; i++ {
		u, v := flat[2*i], flat[2*i+1]
		if u < 0 || v < 0 || int(u) >= n || int(v) >= n || u >= v {
			return fmt.Errorf("fd: bad overlay edge {%d,%d}", u, v)
		}
		adj[u] = append(adj[u], v)
		adj[v] = append(adj[v], u)
	}
	ix.dyn = &overlay{adj: adj}
	return nil
}

// Load reads an index file written by Save and attaches it to g.
func Load(path string, g *graph.Graph) (*Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f, g)
}
