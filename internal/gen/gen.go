// Package gen produces synthetic networks that stand in for the paper's 12
// real-world datasets (Table 1). The paper's algorithms are sensitive to
// the *shape* of a network — power-law degree distributions, high-degree
// hubs, small diameters — so the generators cover the relevant families:
//
//   - Barabási–Albert preferential attachment: scale-free "social"
//     networks (Flickr, Orkut, LiveJournal, Friendster stand-ins).
//   - R-MAT (recursive matrix): heavily skewed "web" graphs with very
//     high-degree hubs (Indochina, it2004, uk2007, ClueWeb09 stand-ins).
//   - Erdős–Rényi: homogeneous random baseline (worst case for
//     landmark-based methods, since there are no hubs).
//   - Watts–Strogatz: small-world ring lattices (long-ish distances, used
//     to exercise distance > 255 escape paths and bounded searches).
//   - Deterministic shapes (path, cycle, star, grid, complete) for tests.
//
// All generators are deterministic given a seed, which is what makes
// the stand-in registry (internal/datasets) and every generator-backed
// test reproducible byte for byte. The mapping from each of the paper's
// Table 1 networks to a generator family, size and seed — and the
// rationale for trusting stand-ins at 1:100 scale — is documented in
// DESIGN.md's "Substitutions" section.
package gen

import (
	"fmt"
	"math/rand"

	"highway/internal/graph"
)

// ErdosRenyi returns a G(n, m)-style random graph: m distinct undirected
// edges sampled uniformly. Duplicate samples are retried, so the result has
// exactly min(m, n*(n-1)/2) edges.
func ErdosRenyi(n int, m int64, seed int64) *graph.Graph {
	if n < 0 {
		panic(fmt.Sprintf("gen: ErdosRenyi n=%d", n))
	}
	maxM := int64(n) * int64(n-1) / 2
	if m > maxM {
		m = maxM
	}
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	seen := make(map[uint64]struct{}, m)
	for int64(len(seen)) < m {
		u := int32(rng.Intn(n))
		v := int32(rng.Intn(n))
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		key := uint64(u)<<32 | uint64(uint32(v))
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		b.AddEdge(u, v)
	}
	return b.MustBuild()
}

// BarabasiAlbert returns a preferential-attachment scale-free graph: start
// from a k-clique seed, then each new vertex attaches to k distinct
// existing vertices chosen proportionally to degree. The result is
// connected with roughly n*k edges and a power-law degree tail — the shape
// of the paper's social networks.
func BarabasiAlbert(n, k int, seed int64) *graph.Graph {
	if k < 1 {
		k = 1
	}
	if n < k+1 {
		n = k + 1
	}
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	// repeated stores every edge endpoint twice; uniform sampling from it
	// realizes degree-proportional selection.
	repeated := make([]int32, 0, 2*int64(n)*int64(k))
	for u := 0; u < k+1; u++ {
		for v := u + 1; v < k+1; v++ {
			b.AddEdge(int32(u), int32(v))
			repeated = append(repeated, int32(u), int32(v))
		}
	}
	chosen := make([]int32, 0, k)
	for v := k + 1; v < n; v++ {
		chosen = chosen[:0]
		for len(chosen) < k {
			t := repeated[rng.Intn(len(repeated))]
			dup := false
			for _, c := range chosen {
				if c == t {
					dup = true
					break
				}
			}
			if !dup {
				chosen = append(chosen, t)
			}
		}
		for _, t := range chosen {
			b.AddEdge(int32(v), t)
			repeated = append(repeated, int32(v), t)
		}
	}
	return b.MustBuild()
}

// RMAT returns an R-MAT graph with 2^scale vertices and approximately
// edgeFactor * 2^scale undirected edges. Partition probabilities (a,b,c,d)
// must sum to 1; the classic web-graph skew is (0.57, 0.19, 0.19, 0.05).
// Duplicate and self-loop samples are dropped (not retried), so the final
// edge count is slightly below the target — matching standard practice.
// R-MAT yields extremely high-degree hubs, the shape of the paper's web
// crawls where "pair coverage" approaches 1.
func RMAT(scale uint, edgeFactor int, a, b, c float64, seed int64) *graph.Graph {
	if scale > 30 {
		panic(fmt.Sprintf("gen: RMAT scale=%d too large", scale))
	}
	d := 1.0 - a - b - c
	if a < 0 || b < 0 || c < 0 || d < 0 {
		panic(fmt.Sprintf("gen: RMAT probabilities (%v,%v,%v,%v) invalid", a, b, c, d))
	}
	n := 1 << scale
	target := int64(edgeFactor) * int64(n)
	rng := rand.New(rand.NewSource(seed))
	bld := graph.NewBuilder(n)
	for i := int64(0); i < target; i++ {
		u, v := 0, 0
		for bit := 0; bit < int(scale); bit++ {
			r := rng.Float64()
			switch {
			case r < a:
				// top-left: no bits set
			case r < a+b:
				v |= 1 << bit
			case r < a+b+c:
				u |= 1 << bit
			default:
				u |= 1 << bit
				v |= 1 << bit
			}
		}
		bld.AddEdge(int32(u), int32(v)) // self-loops dropped by builder
	}
	return bld.MustBuild()
}

// WattsStrogatz returns a small-world graph: a ring of n vertices each
// connected to its k nearest neighbors on each side, with every edge
// rewired with probability beta. k must satisfy 2k < n.
func WattsStrogatz(n, k int, beta float64, seed int64) *graph.Graph {
	if n < 3 || k < 1 || 2*k >= n {
		panic(fmt.Sprintf("gen: WattsStrogatz invalid n=%d k=%d", n, k))
	}
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	for u := 0; u < n; u++ {
		for j := 1; j <= k; j++ {
			v := (u + j) % n
			if beta > 0 && rng.Float64() < beta {
				// Rewire the far endpoint uniformly (possible duplicates
				// are deduplicated by the builder; self-loops dropped).
				v = rng.Intn(n)
			}
			b.AddEdge(int32(u), int32(v))
		}
	}
	return b.MustBuild()
}

// Path returns the path graph 0-1-...-(n-1). Its diameter n-1 exercises
// distance-overflow handling (> 255) in label stores.
func Path(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		b.AddEdge(int32(i), int32(i+1))
	}
	return b.MustBuild()
}

// Cycle returns the n-cycle.
func Cycle(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddEdge(int32(i), int32((i+1)%n))
	}
	return b.MustBuild()
}

// Star returns the star with center 0 and n-1 leaves.
func Star(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 1; i < n; i++ {
		b.AddEdge(0, int32(i))
	}
	return b.MustBuild()
}

// Complete returns the complete graph K_n.
func Complete(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			b.AddEdge(int32(u), int32(v))
		}
	}
	return b.MustBuild()
}

// Grid returns the rows×cols 4-connected grid; vertex (r,c) has id
// r*cols+c.
func Grid(rows, cols int) *graph.Graph {
	b := graph.NewBuilder(rows * cols)
	id := func(r, c int) int32 { return int32(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				b.AddEdge(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				b.AddEdge(id(r, c), id(r+1, c))
			}
		}
	}
	return b.MustBuild()
}

// PaperFigure2 returns the exact 14-vertex example graph of the paper's
// Figure 2(a), with the paper's 1-based vertex labels mapped to 0-based ids
// (paper vertex i is id i-1). Landmarks in the paper's example are
// {1, 5, 9}, i.e. ids {0, 4, 8}.
//
// Edges are transcribed from the figure: the worked examples in the paper
// (labelling size 13 for HL, 25/30 for PLL, the label table of Fig. 2(c),
// and the query walkthroughs of Examples 4.2/4.3) all hold on this graph,
// and the unit tests verify each of them.
func PaperFigure2() *graph.Graph {
	// Edge list reconstructed from the label table of Fig. 2(c), the
	// pruned-BFS walkthroughs of Fig. 3 (labelling size 13), the PLL
	// orderings of Fig. 4 (sizes 25 and 30), Example 4.2 (upper bound 3
	// between vertices 2 and 11) and the sparsified neighborhoods of
	// Fig. 5(b). All of those are asserted by unit tests.
	edges := [][2]int32{
		// paper (1-based): 1-4, 1-11, 1-13, 1-14, 1-5, 1-9
		{0, 3}, {0, 10}, {0, 12}, {0, 13}, {0, 4}, {0, 8},
		// 2-5, 2-7, 2-12, 2-14
		{1, 4}, {1, 6}, {1, 11}, {1, 13},
		// 3-5, 3-8
		{2, 4}, {2, 7},
		// 4-11, 5-8, 5-12
		{3, 10}, {4, 7}, {4, 11},
		// 6-9, 6-7, 7-9
		{5, 8}, {5, 6}, {6, 8},
		// 9-10, 10-11, 13-14
		{8, 9}, {9, 10}, {12, 13},
	}
	return graph.MustFromEdges(14, edges)
}

// PaperLandmarks are the landmark vertex ids {1,5,9} of the paper's running
// example, as 0-based ids.
func PaperLandmarks() []int32 { return []int32{0, 4, 8} }
