package gen

import (
	"testing"
	"testing/quick"

	"highway/internal/graph"
)

func TestErdosRenyi(t *testing.T) {
	g := ErdosRenyi(100, 300, 1)
	if g.NumVertices() != 100 || g.NumEdges() != 300 {
		t.Fatalf("got n=%d m=%d, want 100, 300", g.NumVertices(), g.NumEdges())
	}
	// Deterministic for the same seed, different for another seed.
	g2 := ErdosRenyi(100, 300, 1)
	if g.String() != g2.String() || g.Neighbors(0)[0] != g2.Neighbors(0)[0] {
		t.Fatal("same seed produced different graphs")
	}
	// m capped at complete graph.
	gk := ErdosRenyi(5, 1000, 2)
	if gk.NumEdges() != 10 {
		t.Fatalf("capped m = %d, want 10", gk.NumEdges())
	}
}

func TestBarabasiAlbertShape(t *testing.T) {
	g := BarabasiAlbert(2000, 5, 42)
	if g.NumVertices() != 2000 {
		t.Fatalf("n = %d", g.NumVertices())
	}
	if !graph.IsConnected(g) {
		t.Fatal("BA graph must be connected")
	}
	// Preferential attachment yields hubs: max degree far above average.
	maxDeg, _ := g.MaxDegree()
	if avg := g.AvgDegree(); float64(maxDeg) < 5*avg {
		t.Fatalf("no hubs: max degree %d vs avg %.1f", maxDeg, avg)
	}
	// Every non-seed vertex attaches with exactly k edges, so m is near n*k.
	if m := g.NumEdges(); m < 9500 || m > 10200 {
		t.Fatalf("m = %d, want ≈10000", m)
	}
}

func TestBarabasiAlbertSmallArgs(t *testing.T) {
	g := BarabasiAlbert(0, 0, 1) // degenerate args clamped
	if g.NumVertices() < 2 {
		t.Fatalf("n = %d", g.NumVertices())
	}
	if !graph.IsConnected(g) {
		t.Fatal("clamped BA not connected")
	}
}

func TestRMATShape(t *testing.T) {
	g := RMAT(12, 8, 0.57, 0.19, 0.19, 7)
	if g.NumVertices() != 1<<12 {
		t.Fatalf("n = %d", g.NumVertices())
	}
	if g.NumEdges() == 0 || g.NumEdges() > 8*(1<<12) {
		t.Fatalf("m = %d out of range", g.NumEdges())
	}
	maxDeg, _ := g.MaxDegree()
	if float64(maxDeg) < 8*g.AvgDegree() {
		t.Fatalf("R-MAT should be heavily skewed: max %d avg %.1f", maxDeg, g.AvgDegree())
	}
}

func TestRMATRejectsBadProbs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid probabilities accepted")
		}
	}()
	RMAT(4, 2, 0.9, 0.9, 0.9, 1)
}

func TestWattsStrogatz(t *testing.T) {
	// beta=0: deterministic ring lattice, every vertex has degree 2k.
	g := WattsStrogatz(50, 3, 0, 1)
	for v := int32(0); v < 50; v++ {
		if g.Degree(v) != 6 {
			t.Fatalf("degree(%d) = %d, want 6", v, g.Degree(v))
		}
	}
	// beta>0 stays near the same edge count (rewiring, not deletion).
	g2 := WattsStrogatz(500, 4, 0.2, 9)
	if m := g2.NumEdges(); m < 1900 || m > 2000 {
		t.Fatalf("rewired m = %d, want ≈2000", m)
	}
}

func TestWattsStrogatzPanicsOnBadArgs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid args accepted")
		}
	}()
	WattsStrogatz(4, 2, 0, 1)
}

func TestDeterministicShapes(t *testing.T) {
	if g := Path(5); g.NumEdges() != 4 || g.Degree(0) != 1 || g.Degree(2) != 2 {
		t.Errorf("Path(5) wrong: %v", g)
	}
	if g := Cycle(5); g.NumEdges() != 5 || g.Degree(0) != 2 {
		t.Errorf("Cycle(5) wrong: %v", g)
	}
	if g := Star(5); g.NumEdges() != 4 || g.Degree(0) != 4 {
		t.Errorf("Star(5) wrong: %v", g)
	}
	if g := Complete(5); g.NumEdges() != 10 || g.Degree(3) != 4 {
		t.Errorf("Complete(5) wrong: %v", g)
	}
	if g := Grid(3, 4); g.NumVertices() != 12 || g.NumEdges() != 17 {
		t.Errorf("Grid(3,4) wrong: %v", g)
	}
}

func TestGeneratorsDeterministicProperty(t *testing.T) {
	f := func(seed int64) bool {
		a := BarabasiAlbert(200, 3, seed)
		b := BarabasiAlbert(200, 3, seed)
		if a.NumEdges() != b.NumEdges() {
			return false
		}
		for v := int32(0); v < int32(a.NumVertices()); v++ {
			na, nb := a.Neighbors(v), b.Neighbors(v)
			if len(na) != len(nb) {
				return false
			}
			for i := range na {
				if na[i] != nb[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestPaperFigure2Structure(t *testing.T) {
	g := PaperFigure2()
	if g.NumVertices() != 14 {
		t.Fatalf("n = %d, want 14", g.NumVertices())
	}
	if g.NumEdges() != 21 {
		t.Fatalf("m = %d, want 21", g.NumEdges())
	}
	if !graph.IsConnected(g) {
		t.Fatal("Figure 2 graph must be connected")
	}
	// Spot-check adjacency facts used by the paper's walkthroughs
	// (1-based vertices in comments).
	type pair struct{ u, v int32 }
	has := []pair{{0, 3} /* 1-4 */, {0, 10} /* 1-11 */, {1, 6} /* 2-7 */, {3, 10} /* 4-11 */, {8, 9} /* 9-10 */}
	hasNot := []pair{{4, 6} /* 5-7: d=2 per L(7) */, {1, 8} /* 2-9: d=2 per L(2) */, {4, 8} /* 5-9: d=2 */}
	for _, p := range has {
		if !g.HasEdge(p.u, p.v) {
			t.Errorf("edge {%d,%d} missing", p.u+1, p.v+1)
		}
	}
	for _, p := range hasNot {
		if g.HasEdge(p.u, p.v) {
			t.Errorf("edge {%d,%d} must not exist", p.u+1, p.v+1)
		}
	}
	if lm := PaperLandmarks(); len(lm) != 3 || lm[0] != 0 || lm[1] != 4 || lm[2] != 8 {
		t.Fatalf("PaperLandmarks = %v", lm)
	}
}
