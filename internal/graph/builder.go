package graph

import (
	"fmt"
	"sort"
)

// Builder accumulates undirected edges and produces a deduplicated CSR
// Graph. It is the single entry point for constructing graphs: generators,
// file loaders and tests all go through it, so self-loop and multi-edge
// handling is uniform everywhere.
//
// Builder is not safe for concurrent use.
type Builder struct {
	n     int
	edges []uint64 // packed (min<<32 | max)
}

// NewBuilder returns a Builder for a graph with n vertices. Edges to
// vertices outside [0,n) grow n automatically if AutoGrow is used via
// AddEdgeGrow; AddEdge rejects them at Build time.
func NewBuilder(n int) *Builder {
	return &Builder{n: n}
}

// Grow raises the vertex count to at least n.
func (b *Builder) Grow(n int) {
	if n > b.n {
		b.n = n
	}
}

// NumVertices returns the current vertex count.
func (b *Builder) NumVertices() int { return b.n }

// NumAddedEdges returns the number of AddEdge calls so far (before dedup).
func (b *Builder) NumAddedEdges() int { return len(b.edges) }

// AddEdge records the undirected edge {u,v}. Self-loops are dropped
// silently (the paper's graphs are simple). Ordering of endpoints does not
// matter. Out-of-range endpoints are reported by Build.
func (b *Builder) AddEdge(u, v int32) {
	if u == v {
		return
	}
	if u > v {
		u, v = v, u
	}
	b.edges = append(b.edges, uint64(uint32(u))<<32|uint64(uint32(v)))
}

// AddEdgeGrow records {u,v} and grows the vertex count to cover both
// endpoints. Useful when loading edge lists whose vertex count is unknown.
func (b *Builder) AddEdgeGrow(u, v int32) {
	max := u
	if v > max {
		max = v
	}
	b.Grow(int(max) + 1)
	b.AddEdge(u, v)
}

// Build produces the deduplicated CSR graph. The Builder can be reused
// afterwards (its edge buffer is retained).
func (b *Builder) Build() (*Graph, error) {
	for _, e := range b.edges {
		u, v := int32(e>>32), int32(uint32(e))
		if u < 0 || v < 0 || int(v) >= b.n {
			return nil, fmt.Errorf("graph: edge {%d,%d} out of range [0,%d)", u, v, b.n)
		}
	}
	sort.Slice(b.edges, func(i, j int) bool { return b.edges[i] < b.edges[j] })

	// Deduplicate and count degrees.
	deg := make([]int64, b.n+1)
	unique := int64(0)
	var prev uint64
	for i, e := range b.edges {
		if i > 0 && e == prev {
			continue
		}
		prev = e
		unique++
		deg[int32(e>>32)+1]++
		deg[int32(uint32(e))+1]++
	}
	offsets := make([]int64, b.n+1)
	for v := 1; v <= b.n; v++ {
		offsets[v] = offsets[v-1] + deg[v]
	}
	targets := make([]int32, 2*unique)
	cursor := make([]int64, b.n)
	copy(cursor, offsets[:b.n])
	prev = 0
	for i, e := range b.edges {
		if i > 0 && e == prev {
			continue
		}
		prev = e
		u, v := int32(e>>32), int32(uint32(e))
		targets[cursor[u]] = v
		cursor[u]++
		targets[cursor[v]] = u
		cursor[v]++
	}
	g := &Graph{offsets: offsets, targets: targets}
	// Edges were added in sorted (u,v) order per source vertex u, but the
	// reverse direction (v's list) is also filled in ascending u order
	// because the packed edges sort primarily by min endpoint... which does
	// not guarantee v's list is sorted. Sort each adjacency list.
	for v := 0; v < b.n; v++ {
		nb := targets[offsets[v]:offsets[v+1]]
		if !int32sSorted(nb) {
			sort.Slice(nb, func(i, j int) bool { return nb[i] < nb[j] })
		}
	}
	return g, nil
}

// MustBuild is Build that panics on error; for tests and generators whose
// inputs are in-range by construction.
func (b *Builder) MustBuild() *Graph {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

func int32sSorted(s []int32) bool {
	for i := 1; i < len(s); i++ {
		if s[i-1] > s[i] {
			return false
		}
	}
	return true
}

// FromEdges is a convenience constructor used heavily in tests: it builds a
// graph with n vertices from an explicit edge list.
func FromEdges(n int, edges [][2]int32) (*Graph, error) {
	b := NewBuilder(n)
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	return b.Build()
}

// MustFromEdges is FromEdges that panics on error.
func MustFromEdges(n int, edges [][2]int32) *Graph {
	g, err := FromEdges(n, edges)
	if err != nil {
		panic(err)
	}
	return g
}
