package graph

// ConnectedComponents labels every vertex with a component id in
// [0, count) and returns the labels and component count. Component ids are
// assigned in order of the smallest vertex in each component, so output is
// deterministic.
func ConnectedComponents(g *Graph) (labels []int32, count int) {
	n := g.NumVertices()
	labels = make([]int32, n)
	for i := range labels {
		labels[i] = -1
	}
	queue := make([]int32, 0, 1024)
	for v := int32(0); v < int32(n); v++ {
		if labels[v] >= 0 {
			continue
		}
		id := int32(count)
		count++
		labels[v] = id
		queue = append(queue[:0], v)
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, w := range g.Neighbors(u) {
				if labels[w] < 0 {
					labels[w] = id
					queue = append(queue, w)
				}
			}
		}
	}
	return labels, count
}

// LargestComponent returns the induced subgraph of the largest connected
// component (ties broken by smallest component id) together with the
// mapping from new ids to original ids. The paper assumes connected graphs
// (Section 2); loaders use this to enforce that assumption.
func LargestComponent(g *Graph) (*Graph, []int32) {
	labels, count := ConnectedComponents(g)
	if count <= 1 {
		// Already connected (or empty): identity mapping.
		ids := make([]int32, g.NumVertices())
		for i := range ids {
			ids[i] = int32(i)
		}
		return g, ids
	}
	sizes := make([]int64, count)
	for _, l := range labels {
		sizes[l]++
	}
	best := 0
	for c := 1; c < count; c++ {
		if sizes[c] > sizes[best] {
			best = c
		}
	}
	keep := make([]int32, 0, sizes[best])
	for v, l := range labels {
		if l == int32(best) {
			keep = append(keep, int32(v))
		}
	}
	sub, orig, err := g.InducedSubgraph(keep)
	if err != nil {
		// keep is in-range and duplicate-free by construction.
		panic("graph: LargestComponent: " + err.Error())
	}
	return sub, orig
}

// IsConnected reports whether the graph has at most one connected component.
func IsConnected(g *Graph) bool {
	_, count := ConnectedComponents(g)
	return count <= 1
}
