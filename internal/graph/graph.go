// Package graph provides the compact immutable graph representation used by
// every component of the repository: a CSR (compressed sparse row) adjacency
// structure for unweighted, undirected graphs, together with builders,
// serialization, statistics and connectivity utilities.
//
// The representation follows the paper's setting (Section 2): graphs are
// undirected and unweighted; directed inputs are symmetrized; self-loops and
// parallel edges are dropped.
package graph

import "fmt"

// Graph is an immutable undirected graph in CSR form.
//
// Vertices are dense integers in [0, NumVertices()). Each undirected edge
// {u,v} appears twice in the adjacency arrays: once in u's list and once in
// v's list. Neighbor lists are sorted ascending, enabling binary search and
// deterministic iteration.
//
// The zero value is the empty graph.
type Graph struct {
	offsets []int64 // len n+1; offsets[v]..offsets[v+1] index targets
	targets []int32 // len 2m; sorted within each vertex's range
}

// NumVertices returns n, the number of vertices.
func (g *Graph) NumVertices() int {
	if len(g.offsets) == 0 {
		return 0
	}
	return len(g.offsets) - 1
}

// NumEdges returns m, the number of undirected edges.
func (g *Graph) NumEdges() int64 {
	if len(g.offsets) == 0 {
		return 0
	}
	return int64(len(g.targets)) / 2
}

// CheckVertex returns an error if v is not a valid vertex id. The shared
// validation for every user-facing query surface (CLI, HTTP).
func (g *Graph) CheckVertex(v int32) error {
	if v < 0 || int(v) >= g.NumVertices() {
		return fmt.Errorf("vertex %d out of range [0,%d)", v, g.NumVertices())
	}
	return nil
}

// Degree returns the number of neighbors of v.
func (g *Graph) Degree(v int32) int {
	return int(g.offsets[v+1] - g.offsets[v])
}

// Neighbors returns the sorted adjacency list of v as a shared slice view.
// The caller must not modify the returned slice.
func (g *Graph) Neighbors(v int32) []int32 {
	return g.targets[g.offsets[v]:g.offsets[v+1]]
}

// HasEdge reports whether the undirected edge {u,v} is present.
func (g *Graph) HasEdge(u, v int32) bool {
	nb := g.Neighbors(u)
	if len(nb) == 0 {
		return false
	}
	i := SearchInt32(nb, v)
	return i < len(nb) && nb[i] == v
}

// SearchInt32 returns the smallest index i with a[i] >= x (len(a) if no
// such element), assuming a is sorted ascending. It is the shared
// lower-bound helper behind HasEdge and the label lookups in
// internal/core: a sort.Search specialization that the compiler can
// inline because it takes no closure.
func SearchInt32(a []int32, x int32) int {
	lo, hi := 0, len(a)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if a[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// CSR exposes the raw adjacency arrays — offsets (len n+1) and targets
// (len 2m) — implementing the traversal engine's bfs.CSRAccess fast
// path. Callers must not modify the returned slices.
func (g *Graph) CSR() (offsets []int64, targets []int32) {
	return g.offsets, g.targets
}

// MaxDegree returns the maximum vertex degree, and the vertex attaining it.
// For the empty graph it returns (0, -1).
func (g *Graph) MaxDegree() (int, int32) {
	best, arg := 0, int32(-1)
	for v := int32(0); v < int32(g.NumVertices()); v++ {
		if d := g.Degree(v); d > best || arg < 0 {
			best, arg = d, v
		}
	}
	return best, arg
}

// AvgDegree returns the average degree 2m/n (0 for the empty graph).
func (g *Graph) AvgDegree() float64 {
	n := g.NumVertices()
	if n == 0 {
		return 0
	}
	return float64(len(g.targets)) / float64(n)
}

// SizeBytes returns the in-memory footprint of the adjacency structure,
// mirroring Table 1's |G| column (each edge appears in the forward and
// reverse adjacency lists).
func (g *Graph) SizeBytes() int64 {
	return int64(len(g.offsets))*8 + int64(len(g.targets))*4
}

// String summarizes the graph for debugging.
func (g *Graph) String() string {
	return fmt.Sprintf("graph{n=%d m=%d}", g.NumVertices(), g.NumEdges())
}

// DegreeOrder returns the vertices sorted by decreasing degree, ties broken
// by ascending vertex id. This is the landmark ordering used throughout the
// paper's experiments ("top 20 vertices as landmarks after sorting based on
// decreasing order of their degrees").
func (g *Graph) DegreeOrder() []int32 {
	n := g.NumVertices()
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	// Counting sort by degree: O(n + maxDeg), deterministic.
	maxDeg, _ := g.MaxDegree()
	buckets := make([]int32, maxDeg+2)
	for v := int32(0); v < int32(n); v++ {
		buckets[maxDeg-g.Degree(v)]++
	}
	sum := int32(0)
	for i := range buckets {
		sum += buckets[i]
		buckets[i] = sum - buckets[i]
	}
	for v := int32(0); v < int32(n); v++ {
		b := maxDeg - g.Degree(v)
		order[buckets[b]] = v
		buckets[b]++
	}
	return order
}

// InducedSubgraph returns the subgraph induced by keep (G[keep]) plus the
// mapping from new vertex ids to original ids. Vertices in keep are
// renumbered densely in the order given. Duplicate entries in keep are
// rejected.
func (g *Graph) InducedSubgraph(keep []int32) (*Graph, []int32, error) {
	newID := make(map[int32]int32, len(keep))
	for i, v := range keep {
		if v < 0 || int(v) >= g.NumVertices() {
			return nil, nil, fmt.Errorf("graph: induced subgraph vertex %d out of range [0,%d)", v, g.NumVertices())
		}
		if _, dup := newID[v]; dup {
			return nil, nil, fmt.Errorf("graph: duplicate vertex %d in induced subgraph", v)
		}
		newID[v] = int32(i)
	}
	b := NewBuilder(len(keep))
	for i, v := range keep {
		for _, w := range g.Neighbors(v) {
			if j, ok := newID[w]; ok && j > int32(i) {
				b.AddEdge(int32(i), j)
			}
		}
	}
	sub, err := b.Build()
	if err != nil {
		return nil, nil, err
	}
	orig := make([]int32, len(keep))
	copy(orig, keep)
	return sub, orig, nil
}
