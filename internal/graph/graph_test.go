package graph

import (
	"bytes"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

// pathGraph returns the path 0-1-2-...-(n-1).
func pathGraph(n int) *Graph {
	b := NewBuilder(n)
	for i := 0; i < n-1; i++ {
		b.AddEdge(int32(i), int32(i+1))
	}
	return b.MustBuild()
}

func TestEmptyGraph(t *testing.T) {
	var g Graph
	if g.NumVertices() != 0 || g.NumEdges() != 0 {
		t.Fatalf("zero Graph: n=%d m=%d, want 0,0", g.NumVertices(), g.NumEdges())
	}
	if g.AvgDegree() != 0 {
		t.Fatalf("zero Graph avg degree = %v", g.AvgDegree())
	}
	if d, v := g.MaxDegree(); d != 0 || v != -1 {
		t.Fatalf("zero Graph max degree = %d,%d", d, v)
	}
	built := NewBuilder(0).MustBuild()
	if built.NumVertices() != 0 {
		t.Fatalf("built empty graph has %d vertices", built.NumVertices())
	}
}

func TestBuilderDedupAndSelfLoops(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0) // duplicate, reversed
	b.AddEdge(0, 1) // duplicate
	b.AddEdge(2, 2) // self-loop dropped
	b.AddEdge(3, 1)
	g := b.MustBuild()
	if g.NumEdges() != 2 {
		t.Fatalf("m = %d, want 2", g.NumEdges())
	}
	if got := g.Neighbors(1); !reflect.DeepEqual(got, []int32{0, 3}) {
		t.Fatalf("Neighbors(1) = %v, want [0 3]", got)
	}
	if g.Degree(2) != 0 {
		t.Fatalf("Degree(2) = %d, want 0 (self-loop dropped)", g.Degree(2))
	}
}

func TestBuilderOutOfRange(t *testing.T) {
	b := NewBuilder(2)
	b.AddEdge(0, 5)
	if _, err := b.Build(); err == nil {
		t.Fatal("Build accepted out-of-range edge")
	}
	b2 := NewBuilder(0)
	b2.AddEdgeGrow(0, 5)
	g := b2.MustBuild()
	if g.NumVertices() != 6 {
		t.Fatalf("AddEdgeGrow: n = %d, want 6", g.NumVertices())
	}
}

func TestNeighborsSortedProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8, extra uint16) bool {
		n := int(nRaw%50) + 2
		rng := rand.New(rand.NewSource(seed))
		b := NewBuilder(n)
		for i := 0; i < int(extra%500); i++ {
			b.AddEdge(int32(rng.Intn(n)), int32(rng.Intn(n)))
		}
		g := b.MustBuild()
		for v := int32(0); v < int32(n); v++ {
			nb := g.Neighbors(v)
			if !sort.SliceIsSorted(nb, func(i, j int) bool { return nb[i] < nb[j] }) {
				return false
			}
			for i := 1; i < len(nb); i++ {
				if nb[i] == nb[i-1] {
					return false // duplicate neighbor
				}
			}
			for _, w := range nb {
				if w == v {
					return false // self loop survived
				}
				if !g.HasEdge(w, v) {
					return false // asymmetric adjacency
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestHasEdge(t *testing.T) {
	g := MustFromEdges(5, [][2]int32{{0, 1}, {1, 2}, {3, 4}})
	cases := []struct {
		u, v int32
		want bool
	}{
		{0, 1, true}, {1, 0, true}, {1, 2, true}, {0, 2, false},
		{3, 4, true}, {4, 3, true}, {0, 4, false}, {2, 2, false},
	}
	for _, c := range cases {
		if got := g.HasEdge(c.u, c.v); got != c.want {
			t.Errorf("HasEdge(%d,%d) = %v, want %v", c.u, c.v, got, c.want)
		}
	}
}

// TestHasEdgeIsolatedVertex pins the degenerate empty-adjacency case:
// probing from or to a vertex with no neighbors must return false
// without touching the targets array.
func TestHasEdgeIsolatedVertex(t *testing.T) {
	g := MustFromEdges(4, [][2]int32{{0, 1}})
	for _, c := range [][2]int32{{2, 0}, {2, 3}, {3, 2}, {2, 2}} {
		if g.HasEdge(c[0], c[1]) {
			t.Errorf("HasEdge(%d,%d) = true on isolated vertex", c[0], c[1])
		}
	}
}

func TestSearchInt32(t *testing.T) {
	cases := []struct {
		a    []int32
		x    int32
		want int
	}{
		{nil, 5, 0},
		{[]int32{}, 5, 0},
		{[]int32{3}, 2, 0},
		{[]int32{3}, 3, 0},
		{[]int32{3}, 4, 1},
		{[]int32{1, 3, 5, 7}, 0, 0},
		{[]int32{1, 3, 5, 7}, 4, 2},
		{[]int32{1, 3, 5, 7}, 5, 2},
		{[]int32{1, 3, 5, 7}, 8, 4},
	}
	for _, c := range cases {
		if got := SearchInt32(c.a, c.x); got != c.want {
			t.Errorf("SearchInt32(%v, %d) = %d, want %d", c.a, c.x, got, c.want)
		}
	}
}

// TestCSRView verifies the flat-array view matches the method-based one.
func TestCSRView(t *testing.T) {
	g := MustFromEdges(4, [][2]int32{{0, 1}, {1, 2}, {0, 3}})
	off, tgt := g.CSR()
	if len(off) != g.NumVertices()+1 || int64(len(tgt)) != 2*g.NumEdges() {
		t.Fatalf("CSR shape: %d offsets, %d targets", len(off), len(tgt))
	}
	for v := int32(0); int(v) < g.NumVertices(); v++ {
		nb := tgt[off[v]:off[v+1]]
		want := g.Neighbors(v)
		if len(nb) != len(want) {
			t.Fatalf("vertex %d: CSR degree %d, Neighbors %d", v, len(nb), len(want))
		}
		for i := range nb {
			if nb[i] != want[i] {
				t.Fatalf("vertex %d neighbor %d: CSR %d, Neighbors %d", v, i, nb[i], want[i])
			}
		}
	}
}

func TestDegreeStats(t *testing.T) {
	// Star: center 0 with 4 leaves.
	g := MustFromEdges(5, [][2]int32{{0, 1}, {0, 2}, {0, 3}, {0, 4}})
	if d, v := g.MaxDegree(); d != 4 || v != 0 {
		t.Fatalf("MaxDegree = %d,%d want 4,0", d, v)
	}
	if got := g.AvgDegree(); got != 8.0/5.0 {
		t.Fatalf("AvgDegree = %v, want 1.6", got)
	}
	if g.SizeBytes() != int64(6*8+8*4) {
		t.Fatalf("SizeBytes = %d", g.SizeBytes())
	}
}

func TestDegreeOrder(t *testing.T) {
	// degrees: 0->4 (star center), 1..4 -> 1 each; plus edge {1,2}: deg1=deg2=2.
	g := MustFromEdges(5, [][2]int32{{0, 1}, {0, 2}, {0, 3}, {0, 4}, {1, 2}})
	order := g.DegreeOrder()
	want := []int32{0, 1, 2, 3, 4} // degrees 4,2,2,1,1; ties by id
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("DegreeOrder = %v, want %v", order, want)
	}
}

func TestDegreeOrderProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(80) + 1
		b := NewBuilder(n)
		for i := 0; i < 3*n; i++ {
			b.AddEdge(int32(rng.Intn(n)), int32(rng.Intn(n)))
		}
		g := b.MustBuild()
		order := g.DegreeOrder()
		if len(order) != n {
			return false
		}
		seen := make([]bool, n)
		for i, v := range order {
			if seen[v] {
				return false
			}
			seen[v] = true
			if i > 0 {
				du, dv := g.Degree(order[i-1]), g.Degree(v)
				if du < dv || (du == dv && order[i-1] > v) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := MustFromEdges(6, [][2]int32{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}, {1, 4}})
	sub, orig, err := g.InducedSubgraph([]int32{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumVertices() != 3 {
		t.Fatalf("n = %d, want 3", sub.NumVertices())
	}
	// Edges among {1,2,4}: {1,2} and {1,4}. New ids: 1->0, 2->1, 4->2.
	if sub.NumEdges() != 2 || !sub.HasEdge(0, 1) || !sub.HasEdge(0, 2) || sub.HasEdge(1, 2) {
		t.Fatalf("induced edges wrong: %v", sub)
	}
	if !reflect.DeepEqual(orig, []int32{1, 2, 4}) {
		t.Fatalf("orig = %v", orig)
	}
}

func TestInducedSubgraphErrors(t *testing.T) {
	g := pathGraph(4)
	if _, _, err := g.InducedSubgraph([]int32{0, 0}); err == nil {
		t.Fatal("duplicate vertex accepted")
	}
	if _, _, err := g.InducedSubgraph([]int32{9}); err == nil {
		t.Fatal("out-of-range vertex accepted")
	}
}

func TestConnectedComponents(t *testing.T) {
	// Two triangles and an isolated vertex.
	g := MustFromEdges(7, [][2]int32{{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}})
	labels, count := ConnectedComponents(g)
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
	if labels[0] != labels[1] || labels[1] != labels[2] {
		t.Fatal("triangle 1 split")
	}
	if labels[3] != labels[4] || labels[4] != labels[5] {
		t.Fatal("triangle 2 split")
	}
	if labels[6] == labels[0] || labels[6] == labels[3] {
		t.Fatal("isolated vertex merged")
	}
	if IsConnected(g) {
		t.Fatal("disconnected graph reported connected")
	}
	if !IsConnected(pathGraph(10)) {
		t.Fatal("path reported disconnected")
	}
}

func TestLargestComponent(t *testing.T) {
	// Component A: path of 4; component B: triangle.
	g := MustFromEdges(7, [][2]int32{{0, 1}, {1, 2}, {2, 3}, {4, 5}, {5, 6}, {6, 4}})
	lcc, orig := LargestComponent(g)
	if lcc.NumVertices() != 4 {
		t.Fatalf("LCC size = %d, want 4", lcc.NumVertices())
	}
	if !reflect.DeepEqual(orig, []int32{0, 1, 2, 3}) {
		t.Fatalf("orig = %v", orig)
	}
	// Connected graph: LargestComponent returns the graph itself.
	p := pathGraph(5)
	same, ids := LargestComponent(p)
	if same != p || len(ids) != 5 {
		t.Fatal("connected graph not returned as-is")
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g := MustFromEdges(6, [][2]int32{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}, {1, 4}})
	var buf bytes.Buffer
	if err := g.WriteEdgeList(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !graphsEqual(g, g2) {
		t.Fatal("edge list round trip mismatch")
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := []string{
		"0\n",
		"a b\n",
		"0 x\n",
		"-1 2\n",
	}
	for _, in := range cases {
		if _, err := ReadEdgeList(bytes.NewBufferString(in)); err == nil {
			t.Errorf("input %q accepted", in)
		}
	}
	// Comments and blanks OK.
	g, err := ReadEdgeList(bytes.NewBufferString("# c\n% c\n\n0 1\n1 2\n"))
	if err != nil || g.NumEdges() != 2 {
		t.Fatalf("comment parsing failed: %v %v", g, err)
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	b := NewBuilder(200)
	for i := 0; i < 900; i++ {
		b.AddEdge(int32(rng.Intn(200)), int32(rng.Intn(200)))
	}
	g := b.MustBuild()
	var buf bytes.Buffer
	if err := g.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !graphsEqual(g, g2) {
		t.Fatal("binary round trip mismatch")
	}
}

func TestReadBinaryRejectsGarbage(t *testing.T) {
	if _, err := ReadBinary(bytes.NewBufferString("not a graph file at all")); err == nil {
		t.Fatal("garbage accepted")
	}
	// Corrupt a valid stream.
	g := pathGraph(5)
	var buf bytes.Buffer
	if err := g.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[len(data)-1] = 0xFF // target out of range
	if _, err := ReadBinary(bytes.NewBuffer(data)); err == nil {
		t.Fatal("corrupted targets accepted")
	}
}

func TestBinaryFileRoundTrip(t *testing.T) {
	g := pathGraph(16)
	path := t.TempDir() + "/g.bin"
	if err := g.SaveBinary(path); err != nil {
		t.Fatal(err)
	}
	g2, err := LoadBinary(path)
	if err != nil {
		t.Fatal(err)
	}
	if !graphsEqual(g, g2) {
		t.Fatal("file round trip mismatch")
	}
}

func graphsEqual(a, b *Graph) bool {
	if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() {
		return false
	}
	for v := int32(0); v < int32(a.NumVertices()); v++ {
		if !reflect.DeepEqual(a.Neighbors(v), b.Neighbors(v)) {
			return false
		}
	}
	return true
}
