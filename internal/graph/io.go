package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Text edge-list format: one edge per line, "u v" (whitespace separated),
// lines starting with '#' or '%' are comments (SNAP and KONECT conventions,
// the sources of the paper's datasets). Vertex ids must be non-negative
// integers; they are used as-is, so files should be densely numbered or the
// caller should compact afterwards via LargestComponent or InducedSubgraph.

// ReadEdgeList parses a text edge list from r.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	b := NewBuilder(0)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: line %d: want at least 2 fields, got %q", lineNo, line)
		}
		u, err := strconv.ParseInt(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad vertex %q: %v", lineNo, fields[0], err)
		}
		v, err := strconv.ParseInt(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad vertex %q: %v", lineNo, fields[1], err)
		}
		if u < 0 || v < 0 {
			return nil, fmt.Errorf("graph: line %d: negative vertex id", lineNo)
		}
		b.AddEdgeGrow(int32(u), int32(v))
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: reading edge list: %w", err)
	}
	return b.Build()
}

// LoadEdgeList reads a text edge list file.
func LoadEdgeList(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadEdgeList(bufio.NewReaderSize(f, 1<<20))
}

// WriteEdgeList writes the graph as a text edge list (each undirected edge
// once, with u < v).
func (g *Graph) WriteEdgeList(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	fmt.Fprintf(bw, "# undirected graph: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())
	for u := int32(0); u < int32(g.NumVertices()); u++ {
		for _, v := range g.Neighbors(u) {
			if u < v {
				fmt.Fprintf(bw, "%d %d\n", u, v)
			}
		}
	}
	return bw.Flush()
}

// Binary format:
//
//	magic   [8]byte  "HWGRAPH1"
//	n       uint64
//	len2m   uint64   (len(targets))
//	offsets [n+1]uint64
//	targets [2m]uint32
//
// Little-endian throughout. The version byte in the magic allows future
// int64-target formats without breaking readers.
var binaryMagic = [8]byte{'H', 'W', 'G', 'R', 'A', 'P', 'H', '1'}

// WriteBinary serializes the graph in the compact binary format.
func (g *Graph) WriteBinary(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.Write(binaryMagic[:]); err != nil {
		return err
	}
	var hdr [16]byte
	binary.LittleEndian.PutUint64(hdr[0:], uint64(g.NumVertices()))
	binary.LittleEndian.PutUint64(hdr[8:], uint64(len(g.targets)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var buf [8]byte
	for _, o := range g.offsets {
		binary.LittleEndian.PutUint64(buf[:], uint64(o))
		if _, err := bw.Write(buf[:8]); err != nil {
			return err
		}
	}
	for _, t := range g.targets {
		binary.LittleEndian.PutUint32(buf[:4], uint32(t))
		if _, err := bw.Write(buf[:4]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary deserializes a graph written by WriteBinary.
func ReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("graph: reading magic: %w", err)
	}
	if magic != binaryMagic {
		return nil, fmt.Errorf("graph: bad magic %q (not a HWGRAPH1 file)", magic[:])
	}
	var hdr [16]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("graph: reading header: %w", err)
	}
	n := binary.LittleEndian.Uint64(hdr[0:])
	len2m := binary.LittleEndian.Uint64(hdr[8:])
	const maxVerts = 1 << 31
	if n > maxVerts || len2m > 1<<33 {
		return nil, fmt.Errorf("graph: header claims n=%d, 2m=%d: too large", n, len2m)
	}
	g := &Graph{
		offsets: make([]int64, n+1),
		targets: make([]int32, len2m),
	}
	var buf [8]byte
	for i := range g.offsets {
		if _, err := io.ReadFull(br, buf[:8]); err != nil {
			return nil, fmt.Errorf("graph: reading offsets: %w", err)
		}
		g.offsets[i] = int64(binary.LittleEndian.Uint64(buf[:8]))
	}
	for i := range g.targets {
		if _, err := io.ReadFull(br, buf[:4]); err != nil {
			return nil, fmt.Errorf("graph: reading targets: %w", err)
		}
		g.targets[i] = int32(binary.LittleEndian.Uint32(buf[:4]))
	}
	if err := validate(g); err != nil {
		return nil, err
	}
	return g, nil
}

// SaveBinary writes the graph to a file in binary format.
func (g *Graph) SaveBinary(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := g.WriteBinary(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadBinary reads a binary graph file.
func LoadBinary(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadBinary(f)
}

func validate(g *Graph) error {
	n := int64(g.NumVertices())
	if g.offsets[0] != 0 {
		return fmt.Errorf("graph: offsets[0] = %d, want 0", g.offsets[0])
	}
	for v := int64(0); v < n; v++ {
		if g.offsets[v] > g.offsets[v+1] {
			return fmt.Errorf("graph: offsets not monotone at vertex %d", v)
		}
	}
	if g.offsets[n] != int64(len(g.targets)) {
		return fmt.Errorf("graph: offsets[n]=%d != len(targets)=%d", g.offsets[n], len(g.targets))
	}
	for _, t := range g.targets {
		if t < 0 || int64(t) >= n {
			return fmt.Errorf("graph: target %d out of range [0,%d)", t, n)
		}
	}
	return nil
}
