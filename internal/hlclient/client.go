// Package hlclient is the native Go client for the binary serving
// protocol (internal/wire, specified in PROTOCOL.md): a
// connection-pooled Client whose Distance call costs one framed round
// trip instead of an HTTP/1 request, and whose DistanceBatch carries
// thousands of pairs per round trip. It is re-exported at the module
// root as highway.Client / highway.Dial.
//
// A Client is safe for concurrent use: every call checks a connection
// out of the pool (dialing a fresh one when the pool is empty) and
// returns it afterwards, so N goroutines fan out over up to N
// connections while idle ones are reused. Reconnection is transparent:
// a request that fails on a pooled connection — typically a server
// restart having closed it — is retried once on a freshly dialed one.
// Retrying is safe for every request type: reads are idempotent by
// nature and edge mutation is idempotent by design (duplicate inserts
// and deletes of absent edges are accepted as no-ops; see
// internal/serve's WAL replay contract).
//
// On top of that sits the resilience layer (Config knobs; see
// resilience.go): requests the server shed with wire.CodeOverloaded,
// and transport-level failures, are retried up to MaxRetries times
// with jittered exponential backoff; a circuit breaker trips after
// BreakerThreshold consecutive transport failures so a down server
// costs callers ErrCircuitOpen, not a dial timeout each; and
// AttemptTimeout gives every attempt its own slice of the caller's
// deadline so one hung connection cannot eat all of it.
//
// Deadlines come from the caller's context: a context deadline is
// applied to the dial, the write and the read of each call.
package hlclient

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"highway/internal/serve"
	"highway/internal/wire"
)

// Config tunes a Client. The zero value is ready for use.
type Config struct {
	// PoolSize caps the number of idle connections kept for reuse
	// (DefaultPoolSize when 0). Concurrent calls beyond the pool dial
	// extra connections, which are closed instead of pooled when they
	// come back to a full pool.
	PoolSize int
	// DialTimeout bounds connection establishment plus the protocol
	// handshake when the caller's context carries no deadline
	// (DefaultDialTimeout when 0).
	DialTimeout time.Duration

	// MaxRetries bounds how many times a failed request is re-sent
	// beyond its first attempt, with jittered exponential backoff in
	// between (DefaultMaxRetries when 0; negative disables retries).
	// Retried failures are server sheds (wire Overloaded) and
	// transport-level errors; every request type is idempotent, so a
	// retry after a lost acknowledgement never duplicates state. The
	// immediate re-send after a stale pooled connection does not count
	// against this budget.
	MaxRetries int
	// RetryBaseDelay and RetryMaxDelay shape the backoff: attempt k
	// waits roughly RetryBaseDelay·2^k (equal-jittered), capped at
	// RetryMaxDelay (DefaultRetryBaseDelay/DefaultRetryMaxDelay when
	// 0).
	RetryBaseDelay time.Duration
	RetryMaxDelay  time.Duration
	// AttemptTimeout bounds each attempt — dial plus round trip —
	// separately from the caller's context, so one hung attempt spends
	// only its slice of the caller's deadline before the next tries a
	// fresh connection (0 = no per-attempt bound; the caller's context
	// still applies).
	AttemptTimeout time.Duration

	// BreakerThreshold opens the circuit breaker after that many
	// consecutive transport-level failures: further calls fail fast
	// with ErrCircuitOpen instead of dialing a server known to be down
	// (DefaultBreakerThreshold when 0; negative disables the breaker).
	// After BreakerCooldown (DefaultBreakerCooldown when 0) one probe
	// request is let through; success closes the breaker, failure
	// re-opens it.
	BreakerThreshold int
	BreakerCooldown  time.Duration
}

// DefaultPoolSize is the idle-connection cap used when Config.PoolSize
// is zero.
const DefaultPoolSize = 8

// DefaultDialTimeout bounds dial+handshake when Config.DialTimeout is
// zero and the context has no deadline.
const DefaultDialTimeout = 10 * time.Second

// ErrClientClosed is returned by every call after Close.
var ErrClientClosed = errors.New("hlclient: client is closed")

// Client is a pooled connection to one server's binary listener.
// Create one with Dial; all methods are safe for concurrent use.
type Client struct {
	addr string
	cfg  Config
	brk  breaker

	mu     sync.Mutex
	idle   []*poolConn
	closed bool
}

// poolConn is one protocol connection plus its per-connection codec
// state and scratch buffers (reused across the requests it serves).
type poolConn struct {
	c       net.Conn
	r       *wire.Reader
	w       *wire.Writer
	scratch []byte
}

// Dial connects to a server's binary listener at addr (host:port),
// performs the protocol handshake, and returns a ready Client. The
// handshake on this first connection is the liveness check: a peer
// that is not speaking the protocol fails here, not on the first
// query.
func Dial(ctx context.Context, addr string, cfg Config) (*Client, error) {
	if cfg.PoolSize <= 0 {
		cfg.PoolSize = DefaultPoolSize
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = DefaultDialTimeout
	}
	switch {
	case cfg.MaxRetries == 0:
		cfg.MaxRetries = DefaultMaxRetries
	case cfg.MaxRetries < 0:
		cfg.MaxRetries = 0
	}
	if cfg.RetryBaseDelay <= 0 {
		cfg.RetryBaseDelay = DefaultRetryBaseDelay
	}
	if cfg.RetryMaxDelay <= 0 {
		cfg.RetryMaxDelay = DefaultRetryMaxDelay
	}
	switch {
	case cfg.BreakerThreshold == 0:
		cfg.BreakerThreshold = DefaultBreakerThreshold
	case cfg.BreakerThreshold < 0:
		cfg.BreakerThreshold = 0 // disabled
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = DefaultBreakerCooldown
	}
	c := &Client{addr: addr, cfg: cfg}
	c.brk.threshold = cfg.BreakerThreshold
	c.brk.cooldown = cfg.BreakerCooldown
	pc, err := c.dial(ctx)
	if err != nil {
		return nil, err
	}
	c.put(pc)
	return c, nil
}

// Addr returns the server address the client dials.
func (c *Client) Addr() string { return c.addr }

// dial opens and handshakes one new connection.
func (c *Client) dial(ctx context.Context) (*poolConn, error) {
	dctx := ctx
	if _, ok := ctx.Deadline(); !ok {
		var cancel context.CancelFunc
		dctx, cancel = context.WithTimeout(ctx, c.cfg.DialTimeout)
		defer cancel()
	}
	var d net.Dialer
	conn, err := d.DialContext(dctx, "tcp", c.addr)
	if err != nil {
		return nil, fmt.Errorf("hlclient: dial %s: %w", c.addr, err)
	}
	if dl, ok := dctx.Deadline(); ok {
		conn.SetDeadline(dl)
	}
	if err := wire.WriteMagic(conn); err != nil {
		conn.Close()
		return nil, fmt.Errorf("hlclient: handshake with %s: %w", c.addr, err)
	}
	if err := wire.ReadMagic(conn); err != nil {
		conn.Close()
		return nil, fmt.Errorf("hlclient: handshake with %s: %w", c.addr, err)
	}
	conn.SetDeadline(time.Time{})
	return &poolConn{c: conn, r: wire.NewReader(conn, wire.MaxFrame), w: wire.NewWriter(conn)}, nil
}

// get checks a connection out of the pool, reporting whether it was
// reused (a reused connection may have been closed by the server since
// it was pooled, so a transport failure on it is retried once on a
// fresh one).
func (c *Client) get(ctx context.Context) (pc *poolConn, reused bool, err error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, false, ErrClientClosed
	}
	if n := len(c.idle); n > 0 {
		pc = c.idle[n-1]
		c.idle = c.idle[:n-1]
		c.mu.Unlock()
		return pc, true, nil
	}
	c.mu.Unlock()
	pc, err = c.dial(ctx)
	return pc, false, err
}

// put returns a healthy connection to the pool (closing it when the
// pool is full or the client is closed).
func (c *Client) put(pc *poolConn) {
	c.mu.Lock()
	if !c.closed && len(c.idle) < c.cfg.PoolSize {
		c.idle = append(c.idle, pc)
		c.mu.Unlock()
		return
	}
	c.mu.Unlock()
	pc.c.Close()
}

// Close releases every pooled connection. In-flight calls on
// checked-out connections finish; subsequent calls return
// ErrClientClosed.
func (c *Client) Close() error {
	c.mu.Lock()
	idle := c.idle
	c.idle = nil
	c.closed = true
	c.mu.Unlock()
	var err error
	for _, pc := range idle {
		if cerr := pc.c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// do runs one request/response exchange with the client's full
// resilience stack: circuit breaker check, then up to 1+MaxRetries
// attempts with jittered exponential backoff between them. Each
// attempt checks a connection out of the pool, frames the request and
// decodes the response with decode (called while the connection still
// owns the payload buffer — copy anything retained). A TError response
// is returned as *wire.RemoteError with the connection kept healthy;
// Overloaded is the one remote error that is retried (the server asked
// for exactly that).
func (c *Client) do(ctx context.Context, req wire.Type, build func(dst []byte) []byte,
	want wire.Type, decode func(payload []byte) error) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	for attempt := 0; ; attempt++ {
		if !c.brk.allow() {
			return fmt.Errorf("%w: %s", ErrCircuitOpen, c.addr)
		}
		err := c.attempt(ctx, req, build, want, decode)

		// Breaker accounting: any in-band response — success or remote
		// error — proves the server alive; a caller-cancelled context
		// proves nothing either way; everything else is a transport
		// failure.
		var re *wire.RemoteError
		switch {
		case err == nil, errors.As(err, &re):
			c.brk.onSuccess()
		case ctx.Err() != nil, errors.Is(err, ErrClientClosed):
			c.brk.onNeutral()
		default:
			c.brk.onFailure()
		}

		if err == nil || !retryable(err) || attempt >= c.cfg.MaxRetries || ctx.Err() != nil {
			return err
		}
		if sleepCtx(ctx, backoff(attempt, c.cfg.RetryBaseDelay, c.cfg.RetryMaxDelay)) != nil {
			return err // the caller's deadline beat the backoff; report the real failure
		}
	}
}

// attempt is one try of do: check out (or dial) a connection and run
// the round trip, under the per-attempt timeout when configured. A
// transport failure on a reused connection is re-sent immediately on
// the next connection — the pooled connection had gone stale under us
// (server restart, idle timeout), which is routine, not overload.
// Each such failure closes one stale pooled connection, so the loop
// drains the pool and then dials fresh; a fresh connection's failure
// is returned to the retry/backoff layer above.
func (c *Client) attempt(ctx context.Context, req wire.Type, build func(dst []byte) []byte,
	want wire.Type, decode func(payload []byte) error) error {
	if c.cfg.AttemptTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.cfg.AttemptTimeout)
		defer cancel()
	}
	for {
		pc, reused, err := c.get(ctx)
		if err != nil {
			return err
		}
		healthy, err := pc.roundTrip(ctx, req, build, want, decode)
		if healthy {
			c.put(pc)
		} else {
			pc.c.Close()
		}
		if err != nil && !healthy && reused && ctx.Err() == nil {
			continue
		}
		return err
	}
}

// roundTrip performs the exchange on one connection, reporting whether
// the connection is still usable afterwards.
func (pc *poolConn) roundTrip(ctx context.Context, req wire.Type, build func(dst []byte) []byte,
	want wire.Type, decode func(payload []byte) error) (healthy bool, err error) {
	if dl, ok := ctx.Deadline(); ok {
		pc.c.SetDeadline(dl)
	} else {
		pc.c.SetDeadline(time.Time{})
	}
	pc.scratch = pc.scratch[:0]
	if build != nil {
		pc.scratch = build(pc.scratch)
	}
	if err := pc.w.WriteFrame(req, pc.scratch); err != nil {
		return false, fmt.Errorf("hlclient: write: %w", err)
	}
	if err := pc.w.Flush(); err != nil {
		return false, fmt.Errorf("hlclient: write: %w", err)
	}
	typ, payload, err := pc.r.ReadFrame()
	if err != nil {
		return false, fmt.Errorf("hlclient: read: %w", err)
	}
	switch typ {
	case want:
		if decode == nil {
			return true, nil
		}
		if err := decode(payload); err != nil {
			// The frame was well-formed transport-wise but its payload
			// was not what the response type promises: protocol
			// violation, stop trusting the connection.
			return false, fmt.Errorf("hlclient: %v response: %w", typ, err)
		}
		return true, nil
	case wire.TError:
		code, msg, derr := wire.DecodeError(payload)
		if derr != nil {
			return false, fmt.Errorf("hlclient: error response: %w", derr)
		}
		// An in-band error leaves the stream position intact: the
		// connection stays pooled.
		return true, &wire.RemoteError{Code: code, Message: msg}
	default:
		return false, fmt.Errorf("hlclient: server answered %v to a %v request", typ, req)
	}
}

// Distance returns the exact distance between s and t (-1 when
// disconnected), in one framed round trip.
func (c *Client) Distance(ctx context.Context, s, t int32) (int32, error) {
	var d int32
	err := c.do(ctx,
		wire.TDistance, func(dst []byte) []byte { return wire.AppendPair(dst, s, t) },
		wire.TDistanceResp, func(p []byte) error {
			var derr error
			d, derr = wire.DecodeDistance(p)
			return derr
		})
	if err != nil {
		return -1, err
	}
	return d, nil
}

// DistanceBatch answers len(pairs) queries in one round trip:
// distances[i] answers pairs[i]. The result is written into dst when it
// has the capacity (pass the previous call's slice to make a query loop
// allocation-free) and dst may be nil.
//
// The server executes the batch through its vectorized batch engine:
// pairs sharing a source are grouped and amortize the source-side label
// work, so source-skewed batches run several times faster than the same
// pairs issued one Distance call at a time — at identical answers.
// Batches the server abandons mid-flight (shutdown) surface here as a
// dropped connection, not a partial response; see PROTOCOL.md.
func (c *Client) DistanceBatch(ctx context.Context, pairs [][2]int32, dst []int32) ([]int32, error) {
	var out []int32
	err := c.do(ctx,
		wire.TBatch, func(b []byte) []byte { return wire.AppendPairs(b, pairs) },
		wire.TBatchResp, func(p []byte) error {
			var derr error
			out, derr = wire.DecodeDistances(p, dst)
			if derr == nil && len(out) != len(pairs) {
				derr = fmt.Errorf("%d answers for %d pairs", len(out), len(pairs))
			}
			return derr
		})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// InsertEdges inserts a batch of undirected edges on a live server,
// returning the same acknowledgement as POST /edges. The whole batch is
// accepted or rejected together.
func (c *Client) InsertEdges(ctx context.Context, edges [][2]int32) (serve.InsertResult, error) {
	var res serve.InsertResult
	err := c.do(ctx,
		wire.TInsert, func(b []byte) []byte { return wire.AppendPairs(b, edges) },
		wire.TInsertResp, func(p []byte) error {
			acc, ins, epoch, derr := wire.DecodeInsertResult(p)
			res = serve.InsertResult{Accepted: acc, Inserted: ins, Epoch: epoch}
			return derr
		})
	if err != nil {
		return serve.InsertResult{}, err
	}
	return res, nil
}

// DeleteEdges deletes a batch of undirected edges on a live server,
// returning the same acknowledgement as DELETE /edges. The whole batch
// is accepted or rejected together; absent edges are acked no-ops,
// which is what makes retrying a lost acknowledgement safe.
func (c *Client) DeleteEdges(ctx context.Context, edges [][2]int32) (serve.DeleteResult, error) {
	var res serve.DeleteResult
	err := c.do(ctx,
		wire.TDelete, func(b []byte) []byte { return wire.AppendPairs(b, edges) },
		wire.TDeleteResp, func(p []byte) error {
			acc, del, epoch, derr := wire.DecodeDeleteResult(p)
			res = serve.DeleteResult{Accepted: acc, Deleted: del, Epoch: epoch}
			return derr
		})
	if err != nil {
		return serve.DeleteResult{}, err
	}
	return res, nil
}

// Stats fetches the server's stats document — the same JSON served by
// GET /stats.
func (c *Client) Stats(ctx context.Context) (json.RawMessage, error) {
	var doc json.RawMessage
	err := c.do(ctx,
		wire.TStats, nil,
		wire.TStatsResp, func(p []byte) error {
			doc = append(json.RawMessage(nil), p...) // the frame buffer is reused; copy
			return nil
		})
	if err != nil {
		return nil, err
	}
	return doc, nil
}

// Ping performs a liveness round trip.
func (c *Client) Ping(ctx context.Context) error {
	return c.do(ctx, wire.TPing, nil, wire.TPingResp, nil)
}

// ReplAppend ships one WAL batch (ops in WAL record encoding, see
// serve.EncodeWALOps) stamped with the primary's epoch, returning the
// follower's durable epoch after it applied. A stale epoch surfaces as
// *wire.RemoteError with wire.CodeFenced — deterministic, so the retry
// layer correctly leaves it alone.
func (c *Client) ReplAppend(ctx context.Context, epoch uint64, ops [][2]int32) (uint64, error) {
	var cur uint64
	err := c.do(ctx,
		wire.TReplAppend, func(b []byte) []byte { return wire.AppendReplAppend(b, epoch, ops) },
		wire.TReplAck, func(p []byte) error {
			var derr error
			cur, derr = wire.DecodeReplAck(p)
			return derr
		})
	if err != nil {
		return 0, err
	}
	return cur, nil
}

// ReplSnapshot ships one chunk of a streamed snapshot transfer (done on
// the final chunk installs it), returning the follower's epoch.
func (c *Client) ReplSnapshot(ctx context.Context, epoch uint64, done bool, chunk []byte) (uint64, error) {
	var cur uint64
	err := c.do(ctx,
		wire.TReplSnapshot, func(b []byte) []byte { return wire.AppendReplSnapshot(b, epoch, done, chunk) },
		wire.TReplSnapshotResp, func(p []byte) error {
			var derr error
			cur, derr = wire.DecodeReplAck(p)
			return derr
		})
	if err != nil {
		return 0, err
	}
	return cur, nil
}
