package hlclient

import (
	"context"
	"encoding/json"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"highway/internal/core"
	"highway/internal/gen"
	"highway/internal/landmark"
	"highway/internal/serve"
	"highway/internal/wire"
)

// startServer builds a small index and serves it on a binary listener,
// returning the address, the server, the index and a shutdown func.
func startServer(t *testing.T, live bool) (string, *serve.Server, *core.Index, func()) {
	t.Helper()
	g := gen.BarabasiAlbert(500, 3, 11)
	lms, err := landmark.Select(g, landmark.Options{K: 8, Strategy: landmark.Degree})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := core.BuildParallel(g, lms)
	if err != nil {
		t.Fatal(err)
	}
	var srv *serve.Server
	if live {
		srv, err = serve.NewLive(ix, serve.LiveConfig{Config: serve.Config{ShutdownGrace: time.Second}})
		if err != nil {
			t.Fatal(err)
		}
	} else {
		srv = serve.New(ix, serve.Config{ShutdownGrace: time.Second})
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.ServeBinary(ctx, ln) }()
	return ln.Addr().String(), srv, ix, func() {
		cancel()
		if err := <-done; err != nil {
			t.Errorf("ServeBinary: %v", err)
		}
		srv.Close()
	}
}

func TestClientRoundTrip(t *testing.T) {
	addr, _, ix, shutdown := startServer(t, false)
	defer shutdown()
	ctx := context.Background()
	cl, err := Dial(ctx, addr, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	if err := cl.Ping(ctx); err != nil {
		t.Fatal(err)
	}
	d, err := cl.Distance(ctx, 0, 42)
	if err != nil {
		t.Fatal(err)
	}
	if want := ix.Distance(0, 42); d != want {
		t.Fatalf("Distance(0,42) = %d, index says %d", d, want)
	}

	pairs := [][2]int32{{0, 1}, {9, 200}, {3, 3}, {499, 0}}
	ds, err := cl.DistanceBatch(ctx, pairs, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range pairs {
		if want := ix.Distance(p[0], p[1]); ds[i] != want {
			t.Fatalf("batch pair %v: %d, want %d", p, ds[i], want)
		}
	}
	// dst reuse: a large-enough result buffer must come back as the
	// answer slice.
	buf := make([]int32, 16)
	ds2, err := cl.DistanceBatch(ctx, pairs, buf)
	if err != nil {
		t.Fatal(err)
	}
	if &ds2[0] != &buf[0] {
		t.Fatal("DistanceBatch allocated despite a large-enough dst")
	}

	doc, err := cl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	var stats struct {
		Index struct {
			N int `json:"n"`
		} `json:"index"`
	}
	if err := json.Unmarshal(doc, &stats); err != nil || stats.Index.N != 500 {
		t.Fatalf("stats doc n=%d err=%v", stats.Index.N, err)
	}
}

func TestClientRemoteErrors(t *testing.T) {
	addr, _, _, shutdown := startServer(t, false)
	defer shutdown()
	ctx := context.Background()
	cl, err := Dial(ctx, addr, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	_, err = cl.Distance(ctx, 0, 99999)
	var re *wire.RemoteError
	if !errors.As(err, &re) || re.Code != wire.CodeRange {
		t.Fatalf("out-of-range: err = %v, want RemoteError{Range}", err)
	}
	// Insert on a read-only server.
	_, err = cl.InsertEdges(ctx, [][2]int32{{0, 1}})
	if !errors.As(err, &re) || re.Code != wire.CodeReadOnly {
		t.Fatalf("insert on read-only: err = %v, want RemoteError{ReadOnly}", err)
	}
	// The connection survived both in-band errors and was pooled: the
	// next query must not need a new dial (observable as it still
	// answering correctly).
	if _, err := cl.Distance(ctx, 0, 1); err != nil {
		t.Fatalf("query after remote errors: %v", err)
	}
}

func TestClientInsertEdges(t *testing.T) {
	addr, _, _, shutdown := startServer(t, true)
	defer shutdown()
	ctx := context.Background()
	cl, err := Dial(ctx, addr, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	before, err := cl.Distance(ctx, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cl.InsertEdges(ctx, [][2]int32{{0, 7}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted != 1 || res.Epoch == 0 {
		t.Fatalf("insert result %+v", res)
	}
	after, err := cl.Distance(ctx, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	if after != 1 {
		t.Fatalf("d(0,7) = %d after inserting the edge (was %d), want 1", after, before)
	}
}

// TestClientReconnect kills the server between two calls: the pooled
// connection goes stale, and the retry path must transparently dial the
// replacement listener on the same address.
func TestClientReconnect(t *testing.T) {
	g := gen.BarabasiAlbert(200, 3, 5)
	lms, err := landmark.Select(g, landmark.Options{K: 4, Strategy: landmark.Degree})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := core.BuildParallel(g, lms)
	if err != nil {
		t.Fatal(err)
	}
	srv := serve.New(ix, serve.Config{ShutdownGrace: 100 * time.Millisecond})

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ctx1, cancel1 := context.WithCancel(context.Background())
	done1 := make(chan error, 1)
	go func() { done1 <- srv.ServeBinary(ctx1, ln) }()

	ctx := context.Background()
	cl, err := Dial(ctx, addr, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	want, err := cl.Distance(ctx, 1, 2)
	if err != nil {
		t.Fatal(err)
	}

	// Kill the first listener; its connections die with it.
	cancel1()
	if err := <-done1; err != nil {
		t.Fatal(err)
	}

	// Restart on the same address.
	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	ctx2, cancel2 := context.WithCancel(context.Background())
	done2 := make(chan error, 1)
	go func() { done2 <- srv.ServeBinary(ctx2, ln2) }()
	defer func() {
		cancel2()
		<-done2
	}()

	// The pooled connection is stale; the call must succeed anyway.
	got, err := cl.Distance(ctx, 1, 2)
	if err != nil {
		t.Fatalf("query across restart: %v", err)
	}
	if got != want {
		t.Fatalf("d(1,2) = %d across restart, want %d", got, want)
	}
}

func TestClientContextAndClose(t *testing.T) {
	addr, _, _, shutdown := startServer(t, false)
	defer shutdown()
	cl, err := Dial(context.Background(), addr, Config{})
	if err != nil {
		t.Fatal(err)
	}

	// An already-cancelled context fails fast without touching the
	// network.
	cctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := cl.Distance(cctx, 0, 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled ctx: err = %v", err)
	}

	if err := cl.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Distance(context.Background(), 0, 1); !errors.Is(err, ErrClientClosed) {
		t.Fatalf("after Close: err = %v, want ErrClientClosed", err)
	}
	if err := cl.Ping(context.Background()); !errors.Is(err, ErrClientClosed) {
		t.Fatalf("after Close: err = %v, want ErrClientClosed", err)
	}
}

func TestDialFailures(t *testing.T) {
	// Nothing listening.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if _, err := Dial(ctx, "127.0.0.1:1", Config{}); err == nil {
		t.Fatal("Dial to a dead port succeeded")
	}

	// A listener speaking the wrong protocol (it answers the magic with
	// garbage) must fail the handshake.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			c.Write([]byte("HTTP/1.1 400 Bad Request\r\n\r\n"))
			c.Close()
		}
	}()
	if _, err := Dial(ctx, ln.Addr().String(), Config{}); !errors.Is(err, wire.ErrBadMagic) {
		t.Fatalf("handshake with non-protocol peer: err = %v, want ErrBadMagic", err)
	}
}

// TestClientConcurrent fans many goroutines over one client against a
// live server taking writes; run under -race in CI (the round trip this
// exercises is the client/server concurrency contract).
func TestClientConcurrent(t *testing.T) {
	addr, srv, _, shutdown := startServer(t, true)
	defer shutdown()
	ctx := context.Background()
	cl, err := Dial(ctx, addr, Config{PoolSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	const workers = 8
	var wg sync.WaitGroup
	errc := make(chan error, workers+1)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			var dst []int32
			pairs := make([][2]int32, 32)
			for i := 0; i < 50; i++ {
				if _, err := cl.Distance(ctx, int32((id+i)%500), int32((i*3)%500)); err != nil {
					errc <- err
					return
				}
				for j := range pairs {
					pairs[j] = [2]int32{int32((id*j + i) % 500), int32(j % 500)}
				}
				var err error
				if dst, err = cl.DistanceBatch(ctx, pairs, dst); err != nil {
					errc <- err
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 30; i++ {
			if _, err := cl.InsertEdges(ctx, [][2]int32{{int32(i % 500), int32((i*17 + 1) % 500)}}); err != nil {
				errc <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errc)
	for err := range errc {
		if err != nil {
			t.Fatal(err)
		}
	}
	_ = srv
}
