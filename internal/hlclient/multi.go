package hlclient

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"

	"highway/internal/serve"
)

// MultiClient fans calls over a set of equivalent endpoints — a replica
// set's followers, or several routers — with one pooled Client (and
// therefore one circuit breaker) per address. Calls rotate round-robin
// across the endpoints; an endpoint whose breaker is open is skipped,
// and a call that fails with ErrCircuitOpen fails over to the next
// address instead of surfacing, so one dead replica costs a rotation
// step, not an error. Only when every endpoint's breaker is open does a
// call return ErrCircuitOpen.
//
// Each endpoint keeps its own breaker state: a flapping replica trips
// only its own circuit while traffic keeps flowing to the healthy rest,
// which is the property a shared breaker could not give. All methods
// are safe for concurrent use.
type MultiClient struct {
	clients []*Client
	next    atomic.Uint64
}

// DialMulti connects to every address (comma-separation is accepted
// inside entries, so a flag value can be passed through verbatim) and
// returns a MultiClient over them. Dialing is strict — every endpoint
// must handshake, so a typo fails at startup, not at the first query
// routed to it. cfg applies to each endpoint separately.
func DialMulti(ctx context.Context, addrs []string, cfg Config) (*MultiClient, error) {
	var flat []string
	for _, a := range addrs {
		for _, one := range strings.Split(a, ",") {
			if one = strings.TrimSpace(one); one != "" {
				flat = append(flat, one)
			}
		}
	}
	if len(flat) == 0 {
		return nil, errors.New("hlclient: DialMulti needs at least one address")
	}
	m := &MultiClient{}
	for _, a := range flat {
		cl, err := Dial(ctx, a, cfg)
		if err != nil {
			m.Close()
			return nil, fmt.Errorf("hlclient: multi dial: %w", err)
		}
		m.clients = append(m.clients, cl)
	}
	return m, nil
}

// Addrs returns the endpoint addresses in rotation order.
func (m *MultiClient) Addrs() []string {
	out := make([]string, len(m.clients))
	for i, cl := range m.clients {
		out[i] = cl.Addr()
	}
	return out
}

// Close releases every endpoint's pooled connections.
func (m *MultiClient) Close() error {
	var err error
	for _, cl := range m.clients {
		if cerr := cl.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// pick runs fn against endpoints starting at the round-robin cursor,
// failing over on ErrCircuitOpen until every endpoint has been tried.
// Any other outcome — success or failure — is the call's result: a
// remote error or transport failure is the endpoint's own answer (its
// breaker and retry layer already had their say), not a reason to
// silently re-run the call elsewhere.
func (m *MultiClient) pick(fn func(cl *Client) error) error {
	start := m.next.Add(1) - 1
	var firstErr error
	for i := 0; i < len(m.clients); i++ {
		cl := m.clients[(start+uint64(i))%uint64(len(m.clients))]
		err := fn(cl)
		if !errors.Is(err, ErrCircuitOpen) {
			return err
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	return firstErr // every breaker open
}

// Distance is Client.Distance over the rotation.
func (m *MultiClient) Distance(ctx context.Context, s, t int32) (int32, error) {
	d := int32(-1)
	err := m.pick(func(cl *Client) error {
		var cerr error
		d, cerr = cl.Distance(ctx, s, t)
		return cerr
	})
	return d, err
}

// DistanceBatch is Client.DistanceBatch over the rotation.
func (m *MultiClient) DistanceBatch(ctx context.Context, pairs [][2]int32, dst []int32) ([]int32, error) {
	var out []int32
	err := m.pick(func(cl *Client) error {
		var cerr error
		out, cerr = cl.DistanceBatch(ctx, pairs, dst)
		return cerr
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// InsertEdges is Client.InsertEdges over the rotation (against routers,
// which forward writes to the primary; a replica set's followers would
// answer ReadOnly).
func (m *MultiClient) InsertEdges(ctx context.Context, edges [][2]int32) (serve.InsertResult, error) {
	var res serve.InsertResult
	err := m.pick(func(cl *Client) error {
		var cerr error
		res, cerr = cl.InsertEdges(ctx, edges)
		return cerr
	})
	if err != nil {
		return serve.InsertResult{}, err
	}
	return res, nil
}

// DeleteEdges is Client.DeleteEdges over the rotation.
func (m *MultiClient) DeleteEdges(ctx context.Context, edges [][2]int32) (serve.DeleteResult, error) {
	var res serve.DeleteResult
	err := m.pick(func(cl *Client) error {
		var cerr error
		res, cerr = cl.DeleteEdges(ctx, edges)
		return cerr
	})
	if err != nil {
		return serve.DeleteResult{}, err
	}
	return res, nil
}

// Stats fetches the stats document of whichever endpoint the rotation
// lands on.
func (m *MultiClient) Stats(ctx context.Context) (json.RawMessage, error) {
	var doc json.RawMessage
	err := m.pick(func(cl *Client) error {
		var cerr error
		doc, cerr = cl.Stats(ctx)
		return cerr
	})
	if err != nil {
		return nil, err
	}
	return doc, nil
}

// Ping pings one endpoint of the rotation.
func (m *MultiClient) Ping(ctx context.Context) error {
	return m.pick(func(cl *Client) error { return cl.Ping(ctx) })
}
