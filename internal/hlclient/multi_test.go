package hlclient

import (
	"context"
	"encoding/json"
	"errors"
	"testing"
	"time"

	"highway/internal/serve"
)

// TestMultiClientFailover drives a two-endpoint MultiClient, kills one
// endpoint until its breaker opens, and checks that calls keep
// succeeding through the survivor; killing the survivor too must
// surface ErrCircuitOpen once both breakers are open.
func TestMultiClientFailover(t *testing.T) {
	addr1, _, _, shutdown1 := startServer(t, false)
	addr2, _, _, shutdown2 := startServer(t, false)
	// shutdown2 is called explicitly at the end of the test (it is not
	// idempotent, so no defer).

	ctx := context.Background()
	cfg := Config{
		MaxRetries:       -1,
		BreakerThreshold: 1,
		BreakerCooldown:  time.Hour, // keep tripped breakers open for the test's duration
		AttemptTimeout:   2 * time.Second,
	}
	m, err := DialMulti(ctx, []string{addr1 + "," + addr2}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if got := len(m.Addrs()); got != 2 {
		t.Fatalf("Addrs: got %d endpoints, want 2 (comma splitting)", got)
	}

	// Healthy rotation: both endpoints answer.
	for i := 0; i < 4; i++ {
		if _, err := m.Distance(ctx, 0, 1); err != nil {
			t.Fatalf("healthy Distance %d: %v", i, err)
		}
	}

	// Kill endpoint 1. The first call routed there fails over after the
	// transport error trips its breaker (threshold 1); every later call
	// skips the open breaker outright.
	shutdown1()
	sawErr := false
	for i := 0; i < 8; i++ {
		if _, err := m.Distance(ctx, 0, 1); err != nil {
			sawErr = true
		}
	}
	if !sawErr {
		// The very first post-kill call lands a transport error (not
		// ErrCircuitOpen yet), which pick correctly surfaces.
		t.Log("no error observed after kill; breaker may have tripped on an earlier in-flight request")
	}
	// With endpoint 1's breaker open, calls must now succeed every time.
	for i := 0; i < 6; i++ {
		if _, err := m.Distance(ctx, 0, 1); err != nil {
			if errors.Is(err, ErrCircuitOpen) {
				t.Fatalf("call %d: ErrCircuitOpen with a healthy endpoint remaining", i)
			}
			// One transport error is tolerated while the breaker trips.
			t.Logf("call %d: transient %v", i, err)
		}
	}
	if _, err := m.Distance(ctx, 0, 1); err != nil {
		t.Fatalf("steady-state Distance with one survivor: %v", err)
	}

	// Kill the survivor: once both breakers are open, calls return
	// ErrCircuitOpen rather than dialing dead endpoints forever.
	shutdown2()
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, err := m.Distance(ctx, 0, 1)
		if errors.Is(err, ErrCircuitOpen) {
			break
		}
		if err == nil {
			t.Fatal("Distance succeeded with both endpoints down")
		}
		if time.Now().After(deadline) {
			t.Fatalf("never reached ErrCircuitOpen; last error: %v", err)
		}
	}
}

// TestMultiClientRoundRobin checks the rotation actually spreads load:
// with two endpoints and 2N pings, each endpoint serves N.
func TestMultiClientRoundRobin(t *testing.T) {
	addr1, _, _, shutdown1 := startServer(t, false)
	defer shutdown1()
	addr2, _, _, shutdown2 := startServer(t, false)
	defer shutdown2()

	ctx := context.Background()
	m, err := DialMulti(ctx, []string{addr1, addr2}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	const rounds = 10
	for i := 0; i < rounds; i++ {
		if err := m.Ping(ctx); err != nil {
			t.Fatalf("Ping %d: %v", i, err)
		}
	}
	// Each server must have served exactly half the pings; read the
	// per-endpoint counters straight from the member clients.
	for i, cl := range m.clients {
		raw, err := cl.Stats(ctx)
		if err != nil {
			t.Fatalf("Stats endpoint %d: %v", i, err)
		}
		var doc struct {
			Endpoints map[string]serve.EndpointStats `json:"endpoints"`
		}
		if err := json.Unmarshal(raw, &doc); err != nil {
			t.Fatalf("stats decode endpoint %d: %v", i, err)
		}
		if got := doc.Endpoints["bin_ping"].Requests; got != rounds/2 {
			t.Fatalf("endpoint %d served %d pings, want %d", i, got, rounds/2)
		}
	}
}

func TestDialMultiEmpty(t *testing.T) {
	if _, err := DialMulti(context.Background(), []string{" ", ""}, Config{}); err == nil {
		t.Fatal("DialMulti accepted an empty address list")
	}
}
