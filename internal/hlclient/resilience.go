package hlclient

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"time"

	"highway/internal/wire"
)

// Client-side resilience: bounded retries with jittered exponential
// backoff for requests the server shed (Overloaded) or that failed in
// transport, and a circuit breaker that stops hammering a server that
// is demonstrably down. Every request type is idempotent — reads by
// nature, edge insertion by the server's acknowledged-duplicate
// contract — so retrying after a lost acknowledgement can duplicate
// work but never state.

// Default retry/breaker tuning, used for the zero Config values.
const (
	DefaultMaxRetries       = 3
	DefaultRetryBaseDelay   = 10 * time.Millisecond
	DefaultRetryMaxDelay    = time.Second
	DefaultBreakerThreshold = 5
	DefaultBreakerCooldown  = time.Second
)

// ErrCircuitOpen is returned without touching the network while the
// circuit breaker is open: enough consecutive transport failures have
// shown the server unreachable, and the client fails fast until the
// cooldown expires and a probe succeeds.
var ErrCircuitOpen = errors.New("hlclient: circuit breaker open (server unreachable)")

// retryable reports whether a request that failed with err may be sent
// again: a shed (the server explicitly asks for retry-with-backoff) or
// a transport-level failure (dial, write, read, protocol violation —
// all safe to retry because requests are idempotent). In-band
// application errors other than Overloaded are deterministic — the
// same request would fail the same way — and context errors belong to
// the caller.
func retryable(err error) bool {
	if err == nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, ErrCircuitOpen) || errors.Is(err, ErrClientClosed) {
		return false
	}
	var re *wire.RemoteError
	if errors.As(err, &re) {
		return re.Code == wire.CodeOverloaded
	}
	return true
}

// backoff computes the jittered delay before retry attempt (0-based):
// exponential growth from base, capped at max, with equal jitter (the
// second half of the interval is uniformly random) so a burst of
// clients shed together does not return together.
func backoff(attempt int, base, max time.Duration) time.Duration {
	d := base << uint(attempt)
	if d > max || d <= 0 { // <= 0: shift overflow
		d = max
	}
	half := d / 2
	return half + time.Duration(rand.Int63n(int64(half)+1))
}

// sleepCtx sleeps for d or until ctx is done, whichever comes first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// breakerState is the classic three-state machine.
type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

// breaker trips after threshold consecutive transport-level failures.
// While open, calls fail fast with ErrCircuitOpen; after the cooldown
// one probe request is let through (half-open) — its success closes
// the breaker, its failure re-opens it for another cooldown.
type breaker struct {
	threshold int // <= 0: disabled
	cooldown  time.Duration

	mu       sync.Mutex
	state    breakerState
	fails    int
	openedAt time.Time
	probing  bool // a half-open probe is in flight
}

// allow reports whether a request may proceed. When it returns true
// the caller MUST report the outcome via onSuccess/onFailure (the
// half-open probe slot is reserved until then).
func (b *breaker) allow() bool {
	if b.threshold <= 0 {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if time.Since(b.openedAt) < b.cooldown {
			return false
		}
		b.state = breakerHalfOpen
		b.probing = true
		return true
	default: // half-open
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// onSuccess records a request that reached the server (any in-band
// response counts — a RemoteError still proves the server alive).
func (b *breaker) onSuccess() {
	if b.threshold <= 0 {
		return
	}
	b.mu.Lock()
	b.state = breakerClosed
	b.fails = 0
	b.probing = false
	b.mu.Unlock()
}

// onNeutral records an outcome that proves nothing about the server —
// the caller cancelled, or the client was closed mid-call. It only
// releases a reserved half-open probe slot so the next call may probe.
func (b *breaker) onNeutral() {
	if b.threshold <= 0 {
		return
	}
	b.mu.Lock()
	b.probing = false
	b.mu.Unlock()
}

// onFailure records a transport-level failure (dial error, or a dead
// fresh connection).
func (b *breaker) onFailure() {
	if b.threshold <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == breakerHalfOpen {
		// The probe failed: back to open for another cooldown.
		b.state = breakerOpen
		b.openedAt = time.Now()
		b.probing = false
		return
	}
	b.fails++
	if b.fails >= b.threshold {
		b.state = breakerOpen
		b.openedAt = time.Now()
	}
}
