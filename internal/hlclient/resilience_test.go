package hlclient

import (
	"context"
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"highway/internal/core"
	"highway/internal/failpoint"
	"highway/internal/gen"
	"highway/internal/landmark"
	"highway/internal/serve"
	"highway/internal/wire"
)

// fakeServer speaks just enough of the wire protocol to script
// per-request responses: handle is called with the global request
// ordinal (across reconnects) and must return the response frame, or
// respond=false to black-hole the request (read it, answer nothing).
func fakeServer(t *testing.T, handle func(n int32, typ wire.Type, payload []byte) (wire.Type, []byte, bool)) (addr string, stop func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var n atomic.Int32
	serveConn := func(c net.Conn) {
		defer c.Close()
		if err := wire.ReadMagic(c); err != nil {
			return
		}
		if err := wire.WriteMagic(c); err != nil {
			return
		}
		r, w := wire.NewReader(c, 0), wire.NewWriter(c)
		for {
			typ, p, err := r.ReadFrame()
			if err != nil {
				return
			}
			rt, payload, respond := handle(n.Add(1)-1, typ, p)
			if !respond {
				continue
			}
			if w.WriteFrame(rt, payload) != nil || w.Flush() != nil {
				return
			}
		}
	}
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go serveConn(c)
		}
	}()
	return ln.Addr().String(), func() { ln.Close() }
}

// fastRetry is test tuning: real backoff shape, negligible wall time.
func fastRetry() Config {
	return Config{RetryBaseDelay: time.Millisecond, RetryMaxDelay: 4 * time.Millisecond}
}

func TestBackoffBounds(t *testing.T) {
	base, max := 10*time.Millisecond, 80*time.Millisecond
	for attempt := 0; attempt < 8; attempt++ {
		want := base << uint(attempt)
		if want > max {
			want = max
		}
		for i := 0; i < 50; i++ {
			d := backoff(attempt, base, max)
			if d < want/2 || d > want {
				t.Fatalf("backoff(%d) = %v, want in [%v, %v]", attempt, d, want/2, want)
			}
		}
	}
	// Deep attempts must not overflow the shift into a negative delay.
	if d := backoff(62, base, max); d < max/2 || d > max {
		t.Fatalf("backoff(62) = %v, want in [%v, %v]", d, max/2, max)
	}
}

func TestRetryableClassification(t *testing.T) {
	for _, tc := range []struct {
		err  error
		want bool
	}{
		{nil, false},
		{context.Canceled, false},
		{context.DeadlineExceeded, false},
		{ErrCircuitOpen, false},
		{ErrClientClosed, false},
		{&wire.RemoteError{Code: wire.CodeOverloaded}, true},
		{&wire.RemoteError{Code: wire.CodeRange}, false},
		{&wire.RemoteError{Code: wire.CodeDegraded}, false},
		{errors.New("hlclient: read: connection reset"), true},
	} {
		if got := retryable(tc.err); got != tc.want {
			t.Fatalf("retryable(%v) = %v, want %v", tc.err, got, tc.want)
		}
	}
}

// TestRetryOnOverloaded pins the shed-retry contract: a server answer
// of CodeOverloaded is retried with backoff and the retry's answer is
// returned as if nothing happened.
func TestRetryOnOverloaded(t *testing.T) {
	addr, stop := fakeServer(t, func(n int32, typ wire.Type, _ []byte) (wire.Type, []byte, bool) {
		if n < 2 {
			return wire.TError, wire.AppendError(nil, wire.CodeOverloaded, "shed"), true
		}
		return wire.TDistanceResp, wire.AppendDistance(nil, 7), true
	})
	defer stop()
	cl, err := Dial(context.Background(), addr, fastRetry())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	d, err := cl.Distance(context.Background(), 1, 2)
	if err != nil {
		t.Fatalf("Distance after sheds: %v", err)
	}
	if d != 7 {
		t.Fatalf("Distance = %d, want 7", d)
	}
}

// TestRetryDisabled: MaxRetries < 0 surfaces the shed raw — what the
// load harness depends on.
func TestRetryDisabled(t *testing.T) {
	addr, stop := fakeServer(t, func(int32, wire.Type, []byte) (wire.Type, []byte, bool) {
		return wire.TError, wire.AppendError(nil, wire.CodeOverloaded, "shed"), true
	})
	defer stop()
	cfg := fastRetry()
	cfg.MaxRetries = -1
	cl, err := Dial(context.Background(), addr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	_, err = cl.Distance(context.Background(), 1, 2)
	var re *wire.RemoteError
	if !errors.As(err, &re) || re.Code != wire.CodeOverloaded {
		t.Fatalf("err = %v, want raw Overloaded", err)
	}
}

// TestNoRetryOnDeterministicError: remote errors other than Overloaded
// would fail identically on every retry, so exactly one request must
// reach the server.
func TestNoRetryOnDeterministicError(t *testing.T) {
	var served atomic.Int32
	addr, stop := fakeServer(t, func(int32, wire.Type, []byte) (wire.Type, []byte, bool) {
		served.Add(1)
		return wire.TError, wire.AppendError(nil, wire.CodeRange, "vertex out of range"), true
	})
	defer stop()
	cl, err := Dial(context.Background(), addr, fastRetry())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	_, err = cl.Distance(context.Background(), 1, 1<<30)
	var re *wire.RemoteError
	if !errors.As(err, &re) || re.Code != wire.CodeRange {
		t.Fatalf("err = %v, want Range", err)
	}
	if got := served.Load(); got != 1 {
		t.Fatalf("server saw %d requests, want exactly 1 (no retry on deterministic errors)", got)
	}
}

// TestAttemptTimeout: a hung server costs each attempt only
// AttemptTimeout, not the whole caller deadline, and the bounded retry
// budget ends the call in bounded total time.
func TestAttemptTimeout(t *testing.T) {
	addr, stop := fakeServer(t, func(int32, wire.Type, []byte) (wire.Type, []byte, bool) {
		return 0, nil, false // read the request, never answer
	})
	defer stop()
	cfg := fastRetry()
	cfg.AttemptTimeout = 50 * time.Millisecond
	cfg.MaxRetries = 1
	cl, err := Dial(context.Background(), addr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	t0 := time.Now()
	_, err = cl.Distance(context.Background(), 1, 2) // no caller deadline at all
	if err == nil {
		t.Fatal("Distance against a black-hole server succeeded")
	}
	if el := time.Since(t0); el > 5*time.Second {
		t.Fatalf("call took %v, want ~2 attempts x 50ms", el)
	}
}

// TestCircuitBreaker drives the full open → fail-fast → half-open →
// closed cycle against a server that goes down and comes back.
func TestCircuitBreaker(t *testing.T) {
	addr, _, _, shutdown := startServer(t, false)
	cfg := fastRetry()
	cfg.MaxRetries = -1 // isolate the breaker from the retry layer
	cfg.BreakerThreshold = 2
	cfg.BreakerCooldown = 100 * time.Millisecond
	cfg.DialTimeout = time.Second
	cl, err := Dial(context.Background(), addr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx := context.Background()
	if _, err := cl.Distance(ctx, 0, 42); err != nil {
		t.Fatalf("healthy call: %v", err)
	}

	shutdown() // server gone; the pooled connection is now stale
	for i := 0; i < cfg.BreakerThreshold; i++ {
		if _, err := cl.Distance(ctx, 0, 42); err == nil {
			t.Fatal("call against a dead server succeeded")
		} else if errors.Is(err, ErrCircuitOpen) {
			t.Fatalf("breaker opened after %d failures, threshold is %d", i, cfg.BreakerThreshold)
		}
	}
	// Threshold reached: the breaker fails fast without dialing.
	t0 := time.Now()
	if _, err := cl.Distance(ctx, 0, 42); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("err = %v, want ErrCircuitOpen", err)
	}
	if el := time.Since(t0); el > 500*time.Millisecond {
		t.Fatalf("fail-fast call took %v", el)
	}

	// Bring a server back on the same address, wait out the cooldown:
	// the half-open probe must succeed and close the breaker.
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	srv2 := newTestServerOn(t, ln)
	defer srv2()
	time.Sleep(cfg.BreakerCooldown + 20*time.Millisecond)
	if _, err := cl.Distance(ctx, 0, 42); err != nil {
		t.Fatalf("post-recovery probe: %v", err)
	}
	if _, err := cl.Distance(ctx, 0, 42); err != nil {
		t.Fatalf("post-recovery steady state: %v", err)
	}
}

// TestInsertRetryNoDoubleApply is the acknowledged-idempotency
// contract end to end: the server applies an insert but the response
// write dies (serve.bin.write failpoint), the client re-sends on a
// fresh connection, and the duplicate is acknowledged as a no-op — the
// edge exists exactly once and the caller sees one coherent answer.
func TestInsertRetryNoDoubleApply(t *testing.T) {
	addr, srv, ix, shutdown := startServer(t, true)
	defer shutdown()
	cl, err := Dial(context.Background(), addr, fastRetry())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx := context.Background()

	// An edge the base graph does not have: d(a,b) > 1.
	var a, b int32 = -1, -1
	for s := int32(0); s < 100 && a < 0; s++ {
		for u := s + 1; u < 200; u++ {
			if ix.Distance(s, u) > 1 {
				a, b = s, u
				break
			}
		}
	}
	if a < 0 {
		t.Fatal("no non-adjacent pair found")
	}

	// Kill exactly one response write: the insert is applied
	// server-side, the acknowledgement is lost in transit.
	if err := failpoint.Set(serve.FPBinWrite, "1*error(response write died)"); err != nil {
		t.Fatal(err)
	}
	defer failpoint.Clear(serve.FPBinWrite)

	res, err := cl.InsertEdges(ctx, [][2]int32{{a, b}})
	if err != nil {
		t.Fatalf("InsertEdges with lost ack: %v", err)
	}
	if res.Accepted != 1 {
		t.Fatalf("Accepted = %d, want 1", res.Accepted)
	}
	// The answer the caller sees is the retry's: the edge was already
	// applied by the first (unacknowledged) attempt, so the retry
	// inserted nothing new.
	if res.Inserted != 0 {
		t.Fatalf("Inserted = %d, want 0 (the retry must be a no-op)", res.Inserted)
	}
	if failpoint.Hits(serve.FPBinWrite) != 1 {
		t.Fatalf("failpoint fired %d times, want 1", failpoint.Hits(serve.FPBinWrite))
	}

	d, err := cl.Distance(ctx, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d != 1 {
		t.Fatalf("d(%d,%d) = %d after insert, want 1", a, b, d)
	}
	// A deliberate duplicate confirms the server-side state is the
	// single edge, not two stacked copies.
	res2, err := cl.InsertEdges(ctx, [][2]int32{{a, b}})
	if err != nil || res2.Inserted != 0 {
		t.Fatalf("duplicate insert: res=%+v err=%v, want Inserted 0", res2, err)
	}
	_ = srv
}

// newTestServerOn serves a fresh index's binary protocol on an
// existing listener (used to restart "the same" server for breaker
// recovery tests).
func newTestServerOn(t *testing.T, ln net.Listener) (stop func()) {
	t.Helper()
	g := gen.BarabasiAlbert(500, 3, 11)
	lms, err := landmark.Select(g, landmark.Options{K: 8, Strategy: landmark.Degree})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := core.BuildParallel(g, lms)
	if err != nil {
		t.Fatal(err)
	}
	srv := serve.New(ix, serve.Config{ShutdownGrace: time.Second})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.ServeBinary(ctx, ln) }()
	return func() {
		cancel()
		if err := <-done; err != nil {
			t.Errorf("ServeBinary: %v", err)
		}
		srv.Close()
	}
}
