// Package isl implements the IS-Label baseline (Fu, Wu, Cheng, Wong,
// VLDB 2013), the independent-set based hybrid labelling the paper
// compares against in Tables 2-3 (its "IS-L").
//
// Construction builds a k-level hierarchy: each round removes an
// independent set of low-degree vertices from the current (weighted)
// graph, adding augmenting edges between the removed vertex's neighbors so
// that distances among the surviving vertices are preserved exactly. After
// k rounds the survivors form the "core". Every removed vertex keeps its
// adjacency at removal time ("up-edges", which by independence lead only
// to strictly higher levels), and its label is the cheapest up-chain
// distance to every reachable higher-level vertex, computed by dynamic
// programming from the highest level down.
//
// A query (s,t) takes the minimum of (i) the best label entry common to
// L(s) and L(t) and (ii) the best path through the core: a multi-source
// Dijkstra over the weighted core graph seeded with L(s)'s core entries
// and scored against L(t)'s core entries. Correctness follows from the
// IS-Label hierarchy theorem: distance-preserving augmentation plus
// Bellman expansion of the lower-level endpoint decomposes every shortest
// path into two up-chains joined at a common vertex or by a core path.
package isl

import (
	"context"
	"fmt"
	"math"
	"sort"

	"highway/internal/graph"
	"highway/internal/method"
)

// IS-Label implements the method-agnostic index contract; see
// internal/method.
var _ method.DistanceIndex = (*Index)(nil)

// Infinity is the distance reported between disconnected vertices.
const Infinity int32 = -1

// Options configures construction.
type Options struct {
	// Levels is the number of independent-set removal rounds (the paper
	// runs IS-L with k = 6 on graphs over one million vertices).
	Levels int
	// FillCap skips independent-set candidates whose current degree
	// exceeds this bound, limiting the quadratic fill-in of augmenting
	// edges. 0 selects the default of 32.
	FillCap int
}

// DefaultOptions mirror the paper's experimental setting.
func DefaultOptions() Options { return Options{Levels: 6, FillCap: 32} }

// Index is an IS-Label distance oracle.
type Index struct {
	g      *graph.Graph
	levels int
	level  []int32 // removal round of each vertex; == levels for core

	// Per-vertex labels in CSR form, sorted by target vertex id. Entries
	// of core vertices are exactly {(v,0)}.
	labelOff  []int64
	labelTo   []int32
	labelDist []int32

	// Weighted core graph in CSR form over original vertex ids.
	coreOff []int64
	coreNbr []int32
	coreW   []int32
	numCore int
}

// Build constructs the IS-Label index. The context is checked between
// rounds and periodically during label propagation.
func Build(ctx context.Context, g *graph.Graph, opt Options) (*Index, error) {
	if opt.Levels <= 0 {
		return nil, fmt.Errorf("isl: Levels = %d, want ≥ 1", opt.Levels)
	}
	fillCap := opt.FillCap
	if fillCap <= 0 {
		fillCap = 32
	}
	n := g.NumVertices()

	// Mutable weighted adjacency. Map per vertex: neighbor -> weight.
	adj := make([]map[int32]int32, n)
	for v := 0; v < n; v++ {
		nb := g.Neighbors(int32(v))
		m := make(map[int32]int32, len(nb))
		for _, w := range nb {
			m[w] = 1
		}
		adj[v] = m
	}

	level := make([]int32, n)
	for i := range level {
		level[i] = int32(opt.Levels)
	}
	alive := make([]bool, n)
	for i := range alive {
		alive[i] = true
	}
	// upEdges[v] is v's adjacency snapshot at removal.
	type upEdge struct {
		to int32
		w  int32
	}
	upEdges := make([][]upEdge, n)
	removedByLevel := make([][]int32, opt.Levels)

	order := make([]int32, 0, n)
	for round := 0; round < opt.Levels; round++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// Candidates sorted by (current degree, id) for determinism.
		order = order[:0]
		for v := 0; v < n; v++ {
			if alive[v] && len(adj[v]) <= fillCap {
				order = append(order, int32(v))
			}
		}
		sort.Slice(order, func(i, j int) bool {
			di, dj := len(adj[order[i]]), len(adj[order[j]])
			if di != dj {
				return di < dj
			}
			return order[i] < order[j]
		})
		// Greedy maximal independent set among the candidates.
		blocked := make(map[int32]bool)
		var is []int32
		for _, v := range order {
			if blocked[v] {
				continue
			}
			is = append(is, v)
			for u := range adj[v] {
				blocked[u] = true
			}
		}
		if len(is) == 0 {
			break
		}
		removedByLevel[round] = is
		// Remove the set with augmentation.
		for vi, v := range is {
			if vi%256 == 0 {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
			}
			level[v] = int32(round)
			alive[v] = false
			nbs := make([]upEdge, 0, len(adj[v]))
			for u, w := range adj[v] {
				nbs = append(nbs, upEdge{to: u, w: w})
			}
			sort.Slice(nbs, func(i, j int) bool { return nbs[i].to < nbs[j].to })
			upEdges[v] = nbs
			// Augment distances between each pair of neighbors.
			for i := 0; i < len(nbs); i++ {
				a := nbs[i]
				delete(adj[a.to], v)
				for j := i + 1; j < len(nbs); j++ {
					b := nbs[j]
					w := a.w + b.w
					if old, ok := adj[a.to][b.to]; !ok || w < old {
						adj[a.to][b.to] = w
						adj[b.to][a.to] = w
					}
				}
			}
			adj[v] = nil
		}
	}

	ix := &Index{g: g, levels: opt.Levels, level: level}

	// Freeze the core graph.
	coreVerts := 0
	var coreEdges int64
	for v := 0; v < n; v++ {
		if alive[v] {
			coreVerts++
			coreEdges += int64(len(adj[v]))
		}
	}
	ix.numCore = coreVerts
	ix.coreOff = make([]int64, n+1)
	ix.coreNbr = make([]int32, coreEdges)
	ix.coreW = make([]int32, coreEdges)
	pos := int64(0)
	for v := 0; v < n; v++ {
		ix.coreOff[v] = pos
		if alive[v] {
			start := pos
			for u, w := range adj[v] {
				ix.coreNbr[pos] = u
				ix.coreW[pos] = w
				pos++
			}
			sortCoreRange(ix.coreNbr[start:pos], ix.coreW[start:pos])
		}
	}
	ix.coreOff[n] = pos

	// Label propagation, highest removal level first. labels[v] maps
	// target -> best up-chain distance.
	labels := make([][]labelEntry, n)
	for v := 0; v < n; v++ {
		if alive[v] {
			labels[v] = []labelEntry{{to: int32(v), d: 0}}
		}
	}
	merge := make(map[int32]int32)
	for round := opt.Levels - 1; round >= 0; round-- {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		for vi, v := range removedByLevel[round] {
			if vi%1024 == 0 {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
			}
			clear(merge)
			merge[v] = 0
			for _, e := range upEdges[v] {
				for _, le := range labels[e.to] {
					d := e.w + le.d
					if old, ok := merge[le.to]; !ok || d < old {
						merge[le.to] = d
					}
				}
			}
			lv := make([]labelEntry, 0, len(merge))
			for to, d := range merge {
				lv = append(lv, labelEntry{to: to, d: d})
			}
			sort.Slice(lv, func(i, j int) bool { return lv[i].to < lv[j].to })
			labels[v] = lv
		}
	}

	// Pack labels to CSR.
	ix.labelOff = make([]int64, n+1)
	var total int64
	for v := 0; v < n; v++ {
		total += int64(len(labels[v]))
		ix.labelOff[v+1] = total
	}
	ix.labelTo = make([]int32, total)
	ix.labelDist = make([]int32, total)
	for v := 0; v < n; v++ {
		base := ix.labelOff[v]
		for i, e := range labels[v] {
			ix.labelTo[base+int64(i)] = e.to
			ix.labelDist[base+int64(i)] = e.d
		}
	}
	return ix, nil
}

type labelEntry struct {
	to int32
	d  int32
}

func sortCoreRange(nbr []int32, w []int32) {
	idx := make([]int, len(nbr))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return nbr[idx[a]] < nbr[idx[b]] })
	nbrCopy := append([]int32(nil), nbr...)
	wCopy := append([]int32(nil), w...)
	for i, j := range idx {
		nbr[i] = nbrCopy[j]
		w[i] = wCopy[j]
	}
}

// Searcher carries the per-goroutine Dijkstra scratch.
type Searcher struct {
	ix     *Index
	dist   []int32
	distEp []uint32
	target []int32
	targEp []uint32
	epoch  uint32
	heap   pairHeap
}

// NewSearcher returns a query searcher bound to the index, typed as the
// method-agnostic interface.
func (ix *Index) NewSearcher() method.Searcher { return ix.newSearcher() }

func (ix *Index) newSearcher() *Searcher {
	n := ix.g.NumVertices()
	return &Searcher{
		ix:     ix,
		dist:   make([]int32, n),
		distEp: make([]uint32, n),
		target: make([]int32, n),
		targEp: make([]uint32, n),
	}
}

// UpperBound returns the best distance certified by the labels alone:
// part (i) of the query (the sorted merge over common label targets)
// without the core Dijkstra. It is an admissible bound — every label
// entry is an exact up-chain distance — and Infinity when the labels
// share no target.
func (ix *Index) UpperBound(s, t int32) int32 {
	if s == t {
		return 0
	}
	best := int32(math.MaxInt32)
	i, iEnd := ix.labelOff[s], ix.labelOff[s+1]
	j, jEnd := ix.labelOff[t], ix.labelOff[t+1]
	for i < iEnd && j < jEnd {
		a, b := ix.labelTo[i], ix.labelTo[j]
		switch {
		case a == b:
			if d := ix.labelDist[i] + ix.labelDist[j]; d < best {
				best = d
			}
			i++
			j++
		case a < b:
			i++
		default:
			j++
		}
	}
	if best == math.MaxInt32 {
		return Infinity
	}
	return best
}

// UpperBound is the searcher form of Index.UpperBound (no scratch
// needed; the merge runs over the immutable label arrays).
func (sr *Searcher) UpperBound(s, t int32) int32 { return sr.ix.UpperBound(s, t) }

// Stats summarizes the index (method-agnostic form). NumLandmarks
// reports the core size (the surviving top-level vertices), the closest
// IS-Label analogue of a landmark set.
func (ix *Index) Stats() method.Stats {
	n := ix.g.NumVertices()
	maxLS := 0
	for v := 0; v < n; v++ {
		if ls := int(ix.labelOff[v+1] - ix.labelOff[v]); ls > maxLS {
			maxLS = ls
		}
	}
	return method.Stats{
		Method:       "isl",
		NumVertices:  n,
		NumEdges:     ix.g.NumEdges(),
		NumLandmarks: ix.numCore,
		NumEntries:   ix.NumEntries(),
		AvgLabelSize: ix.AvgLabelSize(),
		MaxLabelSize: maxLS,
		SizeBytes:    ix.SizeBytes(),
	}
}

// Distance returns the exact distance between s and t, or Infinity.
func (sr *Searcher) Distance(s, t int32) int32 {
	ix := sr.ix
	if s == t {
		return 0
	}
	sr.epoch++
	if sr.epoch == 0 {
		clear(sr.distEp)
		clear(sr.targEp)
		sr.epoch = 1
	}
	ep := sr.epoch

	ls0, ls1 := ix.labelOff[s], ix.labelOff[s+1]
	lt0, lt1 := ix.labelOff[t], ix.labelOff[t+1]

	best := int32(math.MaxInt32)
	// (i) Common label targets, via sorted merge.
	i, j := ls0, lt0
	for i < ls1 && j < lt1 {
		a, b := ix.labelTo[i], ix.labelTo[j]
		switch {
		case a == b:
			if d := ix.labelDist[i] + ix.labelDist[j]; d < best {
				best = d
			}
			i++
			j++
		case a < b:
			i++
		default:
			j++
		}
	}

	// (ii) Core search: stage t's core entries as targets, then
	// multi-source Dijkstra from s's core entries over the core graph.
	nTargets := 0
	for p := lt0; p < lt1; p++ {
		c := ix.labelTo[p]
		if ix.level[c] == int32(ix.levels) {
			sr.target[c] = ix.labelDist[p]
			sr.targEp[c] = ep
			nTargets++
		}
	}
	if nTargets > 0 {
		h := sr.heap[:0]
		for p := ls0; p < ls1; p++ {
			c := ix.labelTo[p]
			if ix.level[c] != int32(ix.levels) {
				continue
			}
			d := ix.labelDist[p]
			if sr.distEp[c] != ep || d < sr.dist[c] {
				sr.dist[c] = d
				sr.distEp[c] = ep
				h = h.push(pair{d: d, v: c})
			}
		}
		for len(h) > 0 {
			var top pair
			top, h = h.pop()
			if top.d >= best {
				break // nothing reachable can improve the answer
			}
			if sr.distEp[top.v] == ep && sr.dist[top.v] < top.d {
				continue // stale heap entry
			}
			if sr.targEp[top.v] == ep {
				if d := top.d + sr.target[top.v]; d < best {
					best = d
				}
			}
			for p := ix.coreOff[top.v]; p < ix.coreOff[top.v+1]; p++ {
				u := ix.coreNbr[p]
				nd := top.d + ix.coreW[p]
				if nd >= best {
					continue
				}
				if sr.distEp[u] != ep || nd < sr.dist[u] {
					sr.dist[u] = nd
					sr.distEp[u] = ep
					h = h.push(pair{d: nd, v: u})
				}
			}
		}
		sr.heap = h[:0]
	}

	if best == math.MaxInt32 {
		return Infinity
	}
	return best
}

// Distance is the convenience form allocating a fresh searcher.
func (ix *Index) Distance(s, t int32) int32 {
	return ix.newSearcher().Distance(s, t)
}

// pair is a binary-heap element.
type pair struct {
	d int32
	v int32
}

type pairHeap []pair

func (h pairHeap) push(p pair) pairHeap {
	h = append(h, p)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h[parent].d <= h[i].d {
			break
		}
		h[parent], h[i] = h[i], h[parent]
		i = parent
	}
	return h
}

func (h pairHeap) pop() (pair, pairHeap) {
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h = h[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(h) && h[l].d < h[small].d {
			small = l
		}
		if r < len(h) && h[r].d < h[small].d {
			small = r
		}
		if small == i {
			break
		}
		h[i], h[small] = h[small], h[i]
		i = small
	}
	return top, h
}

// NumCore returns the number of core (never removed) vertices.
func (ix *Index) NumCore() int { return ix.numCore }

// Level returns a vertex's removal round (== Levels for core vertices).
func (ix *Index) Level(v int32) int { return int(ix.level[v]) }

// NumEntries returns size(L) = Σ_v |L(v)|.
func (ix *Index) NumEntries() int64 { return ix.labelOff[len(ix.labelOff)-1] }

// AvgLabelSize returns the average entries per vertex (Table 2's ALS).
func (ix *Index) AvgLabelSize() float64 {
	if ix.g.NumVertices() == 0 {
		return 0
	}
	return float64(ix.NumEntries()) / float64(ix.g.NumVertices())
}

// SizeBytes reports the labelling size under the paper's accounting
// (32-bit vertex + 8-bit distance per entry) plus the augmented core graph
// the queries need (8 bytes per directed core edge).
func (ix *Index) SizeBytes() int64 {
	return ix.NumEntries()*5 + int64(len(ix.coreNbr))*8
}
