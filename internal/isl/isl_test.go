package isl

import (
	"context"
	"math/rand"
	"testing"

	"highway/internal/bfs"
	"highway/internal/gen"
	"highway/internal/graph"
	"highway/internal/oracle"
)

func build(t *testing.T, g *graph.Graph, opt Options) *Index {
	t.Helper()
	ix, err := Build(context.Background(), g, opt)
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func checkAllPairs(t *testing.T, g *graph.Graph, ix *Index) {
	t.Helper()
	oracle.CheckAllPairs(t, g, ix.NewSearcher())
}

// TestExactOnSmallGraphs runs IS-L over the shared corner-case suite
// across level counts.
func TestExactOnSmallGraphs(t *testing.T) {
	for _, levels := range []int{1, 2, 6} {
		oracle.CheckCases(t, func(t *testing.T, g *graph.Graph) oracle.Oracle {
			return build(t, g, Options{Levels: levels, FillCap: 32}).NewSearcher()
		})
	}
}

// TestRandomGraphsProperty is the main IS-L correctness property across
// generator families, level counts and fill caps.
func TestRandomGraphsProperty(t *testing.T) {
	oracle.CheckRandom(t, 30, 40, func(seed int64, g *graph.Graph) (oracle.Oracle, error) {
		rng := rand.New(rand.NewSource(seed))
		opt := Options{Levels: 1 + rng.Intn(7), FillCap: 4 + rng.Intn(40)}
		ix, err := Build(context.Background(), g, opt)
		if err != nil {
			return nil, err
		}
		return ix.NewSearcher(), nil
	})
}

func TestHierarchyShrinksGraph(t *testing.T) {
	g := gen.BarabasiAlbert(500, 3, 3)
	ix := build(t, g, DefaultOptions())
	if ix.NumCore() >= g.NumVertices() {
		t.Fatalf("core = %d, no shrinkage on %d vertices", ix.NumCore(), g.NumVertices())
	}
	// Core vertices carry only their self entry; removed vertices carry
	// the self entry plus at least one ancestor (when not isolated).
	for v := int32(0); v < int32(g.NumVertices()); v++ {
		lo, hi := ix.labelOff[v], ix.labelOff[v+1]
		if ix.Level(v) == ix.levels {
			if hi-lo != 1 || ix.labelTo[lo] != v || ix.labelDist[lo] != 0 {
				t.Fatalf("core vertex %d label malformed", v)
			}
		} else {
			selfSeen := false
			for p := lo; p < hi; p++ {
				if p > lo && ix.labelTo[p-1] >= ix.labelTo[p] {
					t.Fatalf("vertex %d label not sorted by target", v)
				}
				to := ix.labelTo[p]
				if to == v {
					selfSeen = true
					if ix.labelDist[p] != 0 {
						t.Fatalf("vertex %d self distance %d", v, ix.labelDist[p])
					}
				} else if ix.Level(to) <= ix.Level(v) {
					t.Fatalf("vertex %d (level %d) labels non-ancestor %d (level %d)",
						v, ix.Level(v), to, ix.Level(to))
				}
			}
			if !selfSeen {
				t.Fatalf("vertex %d lacks self entry", v)
			}
		}
	}
}

// TestLabelDistancesAreUpperBounds: every label entry is ≥ the true
// distance (entries are real path lengths).
func TestLabelDistancesAreUpperBounds(t *testing.T) {
	g := gen.ErdosRenyi(80, 200, 5)
	ix := build(t, g, Options{Levels: 4, FillCap: 16})
	for v := int32(0); v < int32(g.NumVertices()); v++ {
		truth := bfs.Distances(g, v)
		for p := ix.labelOff[v]; p < ix.labelOff[v+1]; p++ {
			to, d := ix.labelTo[p], ix.labelDist[p]
			if truth[to] == bfs.Unreachable || d < truth[to] {
				t.Fatalf("label entry (%d→%d)=%d below true distance %d", v, to, d, truth[to])
			}
		}
	}
}

func TestBuildErrors(t *testing.T) {
	g := gen.Path(5)
	if _, err := Build(context.Background(), g, Options{Levels: 0}); err == nil {
		t.Error("Levels=0 accepted")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Build(ctx, gen.BarabasiAlbert(300, 3, 1), DefaultOptions()); err == nil {
		t.Error("cancelled context ignored")
	}
}

func TestAccounting(t *testing.T) {
	g := gen.PaperFigure2()
	ix := build(t, g, DefaultOptions())
	if ix.NumEntries() <= 0 {
		t.Fatal("no entries")
	}
	if ix.AvgLabelSize() <= 0 {
		t.Fatal("ALS not positive")
	}
	if ix.SizeBytes() < ix.NumEntries()*5 {
		t.Fatal("SizeBytes below entry accounting")
	}
}

// TestSearcherReuse runs many queries through one searcher checking for
// epoch contamination.
func TestSearcherReuse(t *testing.T) {
	g := gen.BarabasiAlbert(150, 3, 9)
	ix := build(t, g, DefaultOptions())
	sr := ix.NewSearcher()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 400; i++ {
		s := int32(rng.Intn(150))
		u := int32(rng.Intn(150))
		want := bfs.Dist(g, s, u)
		if got := sr.Distance(s, u); got != want {
			t.Fatalf("query %d: Distance(%d,%d) = %d, want %d", i, s, u, got, want)
		}
	}
}
