package isl

import (
	"fmt"
	"io"
	"os"

	"highway/internal/graph"
	"highway/internal/method"
)

// On-disk layout: the tagged "HWLIDX02" container of internal/method
// with tag "isl". Header: N = vertex count, K = hierarchy levels,
// Aux1 = label entries, Aux2 = directed core edges. Sections:
//
//	33 level     [N]uint32        removal round per vertex (== K for core)
//	34 labelOff  [N+1]uint64      label CSR offsets
//	35 labelTo   [Aux1]uint32     label targets (vertex ids)
//	36 labelDist [Aux1]uint32     up-chain distances
//	37 coreOff   [N+1]uint64      weighted core graph CSR offsets
//	38 coreNbr   [Aux2]uint32     core neighbors
//	39 coreW     [Aux2]uint32     core edge weights
const (
	sectLevel     uint32 = 33
	sectLabelOff  uint32 = 34
	sectLabelTo   uint32 = 35
	sectLabelDist uint32 = 36
	sectCoreOff   uint32 = 37
	sectCoreNbr   uint32 = 38
	sectCoreW     uint32 = 39
)

const tag = "isl"

// Write serializes the index (without the graph) in the tagged v2
// container format.
func (ix *Index) Write(w io.Writer) error {
	n := ix.g.NumVertices()
	entries := len(ix.labelTo)
	coreEdges := len(ix.coreNbr)
	sections := []method.Section{
		{ID: sectLevel, Payload: method.AppendI32s(make([]byte, 0, n*4), ix.level)},
		{ID: sectLabelOff, Payload: method.AppendI64s(make([]byte, 0, (n+1)*8), ix.labelOff)},
		{ID: sectLabelTo, Payload: method.AppendI32s(make([]byte, 0, entries*4), ix.labelTo)},
		{ID: sectLabelDist, Payload: method.AppendI32s(make([]byte, 0, entries*4), ix.labelDist)},
		{ID: sectCoreOff, Payload: method.AppendI64s(make([]byte, 0, (n+1)*8), ix.coreOff)},
		{ID: sectCoreNbr, Payload: method.AppendI32s(make([]byte, 0, coreEdges*4), ix.coreNbr)},
		{ID: sectCoreW, Payload: method.AppendI32s(make([]byte, 0, coreEdges*4), ix.coreW)},
	}
	h := method.Header{
		Method: tag,
		N:      uint64(n),
		K:      uint32(ix.levels),
		Aux1:   uint64(entries),
		Aux2:   uint64(coreEdges),
	}
	return method.WriteContainer(w, h, sections)
}

// Save writes the index to path (see Write).
func (ix *Index) Save(path string) error {
	return method.SaveFile(path, ix.Write)
}

// Read deserializes an index written by Write and attaches it to g,
// which must be the graph the index was built on.
func Read(r io.Reader, g *graph.Graph) (*Index, error) {
	n := g.NumVertices()
	h, sections, err := method.ReadContainer(r, tag, func(h method.Header) (map[uint32]uint64, error) {
		if h.N != uint64(n) {
			return nil, fmt.Errorf("isl: index built for n=%d, graph has n=%d", h.N, n)
		}
		if h.K == 0 {
			return nil, fmt.Errorf("isl: index claims 0 levels")
		}
		// A label targets distinct (higher-level) vertices, so size(L)
		// is bounded by n entries per vertex.
		if h.Aux1 > h.N*h.N {
			return nil, fmt.Errorf("isl: implausible entry count %d", h.Aux1)
		}
		if h.Aux2 > h.N*h.N {
			return nil, fmt.Errorf("isl: implausible core edge count %d", h.Aux2)
		}
		return map[uint32]uint64{
			sectLevel:     h.N * 4,
			sectLabelOff:  (h.N + 1) * 8,
			sectLabelTo:   h.Aux1 * 4,
			sectLabelDist: h.Aux1 * 4,
			sectCoreOff:   (h.N + 1) * 8,
			sectCoreNbr:   h.Aux2 * 4,
			sectCoreW:     h.Aux2 * 4,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, id := range []uint32{sectLevel, sectLabelOff, sectLabelTo, sectLabelDist, sectCoreOff, sectCoreNbr, sectCoreW} {
		if sections[id] == nil {
			return nil, fmt.Errorf("isl: required section %d missing", id)
		}
	}
	entries := int64(h.Aux1)
	coreEdges := int64(h.Aux2)
	ix := &Index{
		g:         g,
		levels:    int(h.K),
		level:     make([]int32, n),
		labelOff:  make([]int64, n+1),
		labelTo:   make([]int32, entries),
		labelDist: make([]int32, entries),
		coreOff:   make([]int64, n+1),
		coreNbr:   make([]int32, coreEdges),
		coreW:     make([]int32, coreEdges),
	}
	if err := method.DecodeI32s(sections[sectLevel], ix.level); err != nil {
		return nil, err
	}
	for v, l := range ix.level {
		if l < 0 || int(l) > ix.levels {
			return nil, fmt.Errorf("isl: vertex %d level %d out of range [0,%d]", v, l, ix.levels)
		}
		if int(l) == ix.levels {
			ix.numCore++
		}
	}
	if err := method.DecodeI64s(sections[sectLabelOff], ix.labelOff); err != nil {
		return nil, err
	}
	if err := method.ValidateOffsets(ix.labelOff, entries); err != nil {
		return nil, err
	}
	if err := method.DecodeI32s(sections[sectLabelTo], ix.labelTo); err != nil {
		return nil, err
	}
	if err := method.DecodeI32s(sections[sectLabelDist], ix.labelDist); err != nil {
		return nil, err
	}
	for p, to := range ix.labelTo {
		if to < 0 || int(to) >= n {
			return nil, fmt.Errorf("isl: label target %d out of range [0,%d)", to, n)
		}
		if ix.labelDist[p] < 0 {
			return nil, fmt.Errorf("isl: negative label distance %d", ix.labelDist[p])
		}
	}
	if err := method.DecodeI64s(sections[sectCoreOff], ix.coreOff); err != nil {
		return nil, err
	}
	if err := method.ValidateOffsets(ix.coreOff, coreEdges); err != nil {
		return nil, err
	}
	if err := method.DecodeI32s(sections[sectCoreNbr], ix.coreNbr); err != nil {
		return nil, err
	}
	if err := method.DecodeI32s(sections[sectCoreW], ix.coreW); err != nil {
		return nil, err
	}
	for p, u := range ix.coreNbr {
		if u < 0 || int(u) >= n {
			return nil, fmt.Errorf("isl: core neighbor %d out of range [0,%d)", u, n)
		}
		if ix.coreW[p] < 0 {
			return nil, fmt.Errorf("isl: negative core weight %d", ix.coreW[p])
		}
	}
	return ix, nil
}

// Load reads an index file written by Save and attaches it to g.
func Load(path string, g *graph.Graph) (*Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f, g)
}
