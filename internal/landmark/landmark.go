// Package landmark selects the landmark set R used by the highway cover
// labelling and the baselines. The paper uses the k highest-degree
// vertices ("we chose top 20 vertices as landmarks after sorting based on
// decreasing order of their degrees", Section 6.3); the paper's conclusion
// names landmark selection strategies as future work, so this package also
// implements the natural alternatives — uniform random, sampled
// closeness centrality, and degree-with-spread — that internal/bench's
// ablation experiment compares on construction time, labelling size,
// pair coverage and query time (see DESIGN.md's per-experiment index).
//
// Selection is deterministic given the strategy's seed, so every
// experiment and test that derives landmarks from a (graph, k, seed)
// triple is reproducible.
package landmark

import (
	"fmt"
	"math/rand"

	"highway/internal/bfs"
	"highway/internal/graph"
)

// Strategy identifies a landmark selection strategy.
type Strategy string

const (
	// Degree picks the k highest-degree vertices (the paper's choice).
	Degree Strategy = "degree"
	// Random picks k vertices uniformly at random (seeded).
	Random Strategy = "random"
	// Closeness picks the k vertices with the highest approximate
	// closeness centrality, estimated from a fixed sample of BFS sources.
	Closeness Strategy = "closeness"
	// DegreeSpread picks high-degree vertices while forbidding landmarks
	// to be adjacent to an already chosen landmark, spreading the highway
	// over the graph.
	DegreeSpread Strategy = "degree-spread"
)

// Options configures Select.
type Options struct {
	K        int      // number of landmarks (required, ≥ 1)
	Strategy Strategy // defaults to Degree
	Seed     int64    // used by Random and Closeness sampling
}

// Select returns K landmark vertex ids ordered by decreasing preference.
// The returned slice is sorted by selection rank (rank 0 first), which is
// the rank order the labelling stores.
func Select(g *graph.Graph, opt Options) ([]int32, error) {
	n := g.NumVertices()
	if opt.K < 1 {
		return nil, fmt.Errorf("landmark: K = %d, want ≥ 1", opt.K)
	}
	if opt.K > n {
		return nil, fmt.Errorf("landmark: K = %d exceeds vertex count %d", opt.K, n)
	}
	st := opt.Strategy
	if st == "" {
		st = Degree
	}
	switch st {
	case Degree:
		return g.DegreeOrder()[:opt.K], nil
	case Random:
		rng := rand.New(rand.NewSource(opt.Seed))
		perm := rng.Perm(n)
		out := make([]int32, opt.K)
		for i := range out {
			out[i] = int32(perm[i])
		}
		return out, nil
	case Closeness:
		return byCloseness(g, opt.K, opt.Seed), nil
	case DegreeSpread:
		return bySpread(g, opt.K), nil
	default:
		return nil, fmt.Errorf("landmark: unknown strategy %q", st)
	}
}

// byCloseness estimates closeness centrality by running BFS from
// min(64, n) sampled sources and scoring each vertex by the negated sum of
// distances to the samples (unreachable counts as a large penalty).
func byCloseness(g *graph.Graph, k int, seed int64) []int32 {
	n := g.NumVertices()
	samples := 64
	if samples > n {
		samples = n
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(n)
	score := make([]int64, n)
	const penalty = int64(1) << 30
	var dist []int32
	for s := 0; s < samples; s++ {
		dist = bfs.DistancesReuse(g, int32(perm[s]), dist)
		for v, d := range dist {
			if d == bfs.Unreachable {
				score[v] += penalty
			} else {
				score[v] += int64(d)
			}
		}
	}
	// Select k smallest total distances; ties by degree then id for
	// determinism.
	order := g.DegreeOrder()
	better := func(a, b int32) bool {
		if score[a] != score[b] {
			return score[a] < score[b]
		}
		return false // DegreeOrder position already encodes the tiebreak
	}
	// Simple selection over the degree order: stable partial sort.
	out := make([]int32, 0, k)
	chosen := make([]bool, n)
	for len(out) < k {
		var best int32 = -1
		for _, v := range order {
			if chosen[v] {
				continue
			}
			if best < 0 || better(v, best) {
				best = v
			}
		}
		chosen[best] = true
		out = append(out, best)
	}
	return out
}

// bySpread walks the degree order, skipping vertices adjacent to an
// already selected landmark; if the graph runs out of non-adjacent
// candidates the remaining slots fall back to plain degree order.
func bySpread(g *graph.Graph, k int) []int32 {
	order := g.DegreeOrder()
	out := make([]int32, 0, k)
	taken := make([]bool, g.NumVertices())
	blocked := make([]bool, g.NumVertices())
	for _, v := range order {
		if len(out) == k {
			break
		}
		if blocked[v] {
			continue
		}
		out = append(out, v)
		taken[v] = true
		for _, w := range g.Neighbors(v) {
			blocked[w] = true
		}
	}
	for _, v := range order {
		if len(out) == k {
			break
		}
		if !taken[v] {
			out = append(out, v)
			taken[v] = true
		}
	}
	return out
}
