package landmark

import (
	"testing"

	"highway/internal/gen"
)

func TestSelectDegree(t *testing.T) {
	g := gen.Star(10) // center 0 has the top degree
	lm, err := Select(g, Options{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(lm) != 1 || lm[0] != 0 {
		t.Fatalf("lm = %v, want [0]", lm)
	}
}

func TestSelectDegreeTop20(t *testing.T) {
	g := gen.BarabasiAlbert(500, 4, 1)
	lm, err := Select(g, Options{K: 20, Strategy: Degree})
	if err != nil {
		t.Fatal(err)
	}
	if len(lm) != 20 {
		t.Fatalf("len = %d", len(lm))
	}
	// Decreasing degree.
	for i := 1; i < len(lm); i++ {
		if g.Degree(lm[i-1]) < g.Degree(lm[i]) {
			t.Fatalf("not sorted by degree at %d", i)
		}
	}
	// The minimum selected degree must be ≥ the max unselected degree.
	sel := make(map[int32]bool)
	for _, v := range lm {
		sel[v] = true
	}
	minSel := g.Degree(lm[len(lm)-1])
	for v := int32(0); v < int32(g.NumVertices()); v++ {
		if !sel[v] && g.Degree(v) > minSel {
			t.Fatalf("vertex %d (deg %d) beats selected landmark (deg %d)", v, g.Degree(v), minSel)
		}
	}
}

func TestSelectErrors(t *testing.T) {
	g := gen.Path(5)
	if _, err := Select(g, Options{K: 0}); err == nil {
		t.Error("K=0 accepted")
	}
	if _, err := Select(g, Options{K: 6}); err == nil {
		t.Error("K>n accepted")
	}
	if _, err := Select(g, Options{K: 2, Strategy: "nope"}); err == nil {
		t.Error("unknown strategy accepted")
	}
}

func TestSelectRandomDeterministic(t *testing.T) {
	g := gen.Cycle(50)
	a, err := Select(g, Options{K: 5, Strategy: Random, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Select(g, Options{K: 5, Strategy: Random, Seed: 7})
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("random selection not deterministic for fixed seed")
		}
	}
	c, _ := Select(g, Options{K: 5, Strategy: Random, Seed: 8})
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical selection (suspicious)")
	}
	seen := map[int32]bool{}
	for _, v := range a {
		if seen[v] {
			t.Fatal("duplicate landmark")
		}
		seen[v] = true
	}
}

func TestSelectCloseness(t *testing.T) {
	// On a path, the middle vertex has the best closeness.
	g := gen.Path(21)
	lm, err := Select(g, Options{K: 1, Strategy: Closeness, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if lm[0] < 7 || lm[0] > 13 {
		t.Fatalf("closeness landmark = %d, want near the middle of the path", lm[0])
	}
}

func TestSelectDegreeSpread(t *testing.T) {
	// Two stars joined by an edge between their centers: spread must not
	// pick both centers' neighbors.
	g := gen.Star(6) // center 0
	lm, err := Select(g, Options{K: 2, Strategy: DegreeSpread})
	if err != nil {
		t.Fatal(err)
	}
	if lm[0] != 0 {
		t.Fatalf("first landmark = %d, want center 0", lm[0])
	}
	// All other vertices are adjacent to 0, so the fallback fills slot 2.
	if len(lm) != 2 || lm[1] == 0 {
		t.Fatalf("lm = %v", lm)
	}
	// Spread on a larger graph: no two early landmarks adjacent when
	// avoidable.
	g2 := gen.Grid(10, 10)
	lm2, err := Select(g2, Options{K: 5, Strategy: DegreeSpread})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(lm2); i++ {
		for j := i + 1; j < len(lm2); j++ {
			if g2.HasEdge(lm2[i], lm2[j]) {
				t.Fatalf("landmarks %d and %d adjacent", lm2[i], lm2[j])
			}
		}
	}
}
