package loadgen

import (
	"context"
	"net"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"highway/internal/core"
	"highway/internal/gen"
	"highway/internal/landmark"
	"highway/internal/serve"
)

func liveTestServer(t *testing.T) (*serve.Server, int) {
	t.Helper()
	g := gen.BarabasiAlbert(400, 3, 7)
	lms, err := landmark.Select(g, landmark.Options{K: 8, Strategy: landmark.Degree})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := core.BuildParallel(g, lms)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := serve.NewLive(ix, serve.LiveConfig{
		Config: serve.Config{ShutdownGrace: time.Second},
		// Low threshold: the churn should drive background rebuilds
		// (snapshot swaps) under the measured load.
		RebuildThreshold: 20,
		RebuildWorkers:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, g.NumVertices()
}

// checkChurnResult extends checkResult with the churn-side invariants:
// mutations of both kinds happened and were timed.
func checkChurnResult(t *testing.T, r Result, opt Options) {
	t.Helper()
	checkResult(t, r, opt)
	if r.InsertOps == 0 || r.DeleteOps == 0 {
		t.Fatalf("churn run issued %d inserts, %d deletes — want both > 0", r.InsertOps, r.DeleteOps)
	}
	if r.MutationLatency == nil || r.MutationLatency.P50 <= 0 {
		t.Fatalf("churn run reported no mutation latency: %+v", r.MutationLatency)
	}
}

// TestChurnInProc is the zero-errors churn smoke under -race: mixed
// insert/delete mutations interleaved with the measured reads against
// live snapshot swaps, through the in-process path.
func TestChurnInProc(t *testing.T) {
	srv, n := liveTestServer(t)
	opt := Options{
		Workers: 3, Requests: 300, Warmup: 20, Batch: 4, N: n, Seed: 1,
		MemSample: time.Millisecond, Churn: 0.3, DeleteRatio: 0.4, Skew: 1.3,
	}
	r, err := Run(opt, InProcFactory(srv))
	if err != nil {
		t.Fatal(err)
	}
	r.Protocol = "inproc"
	checkChurnResult(t, r, opt)
	if st := srv.LiveStats(); st.AcceptedDeletes == 0 || st.EdgesDeleted == 0 {
		t.Fatalf("server saw no effective deletions: %+v", st)
	}
}

// TestChurnHTTP drives the same mix through POST/DELETE /edges.
func TestChurnHTTP(t *testing.T) {
	srv, n := liveTestServer(t)
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	opt := Options{
		Workers: 2, Requests: 80, Warmup: 8, Batch: 4, N: n, Seed: 2,
		MemSample: time.Millisecond, Churn: 0.4, DeleteRatio: 0.4,
	}
	r, err := Run(opt, HTTPFactory(hs.URL))
	if err != nil {
		t.Fatal(err)
	}
	r.Protocol = "http"
	checkChurnResult(t, r, opt)
}

// TestChurnBinary drives the same mix through Insert/Delete frames.
func TestChurnBinary(t *testing.T) {
	srv, n := liveTestServer(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.ServeBinary(ctx, ln) }()
	defer func() {
		cancel()
		if err := <-done; err != nil {
			t.Error(err)
		}
	}()
	opt := Options{
		Workers: 2, Requests: 80, Warmup: 8, Batch: 4, N: n, Seed: 3,
		MemSample: time.Millisecond, Churn: 0.4, DeleteRatio: 0.4,
	}
	r, err := Run(opt, BinaryFactory(ln.Addr().String()))
	if err != nil {
		t.Fatal(err)
	}
	r.Protocol = "binary"
	checkChurnResult(t, r, opt)
}

// TestChurnRequiresMutator: a churn run against a read-only target must
// fail up front with a diagnosis, not deep in a worker.
func TestChurnRequiresMutator(t *testing.T) {
	srv, n := testServer(t) // read-only serve.New server
	ro := InProcFactory(srv)
	roNoMutate := func(w int) (Target, error) {
		tg, err := ro(w)
		if err != nil {
			return nil, err
		}
		return struct{ Target }{tg}, nil // strips the Mutator method
	}
	_, err := Run(Options{Requests: 10, N: n, Churn: 0.5, MemSample: -1}, roNoMutate)
	if err == nil || !strings.Contains(err.Error(), "cannot mutate") {
		t.Fatalf("churn against a mutation-less target: err = %v", err)
	}
}
