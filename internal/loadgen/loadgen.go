// Package loadgen is the serving-tier load harness behind "hlserve
// load": it drives a distance-serving target (in-process server,
// HTTP/JSON API, or the binary protocol via internal/hlclient) with
// per-worker request queues and deterministic workloads, and reports
// percentile latencies (p50/p90/p99/max), warmup-excluded throughput,
// and a memory profile. With Options.Churn it interleaves trace-style
// edge insertions and deletions (workload.OpStream) through the
// target's Mutator capability, timing mutations separately from reads.
// Results marshal to the BENCH_SERVE.json schema tabulated in
// EXPERIMENTS.md.
//
// The measurement discipline mirrors the paper's evaluation style:
// every worker owns a deterministic pair stream (distinct seeds keep
// the union reproducible), a warmup phase brings connections, pools
// and branch predictors to steady state before the clock starts, and
// reported QPS covers the measured window only.
package loadgen

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"highway/internal/workload"
)

// ErrShed marks a request rejected by the server's admission gate
// (HTTP 429 / wire Overloaded) rather than failed. Targets wrap shed
// responses in ErrShed so Run can account them separately: under
// deliberate overload a shed is the server working as designed, not a
// harness failure, and its latency (how fast the server says no) is a
// measurement of its own.
var ErrShed = errors.New("loadgen: request shed by server admission control")

// Target is one load-generation endpoint: Do answers a batch of
// distance queries (it may discard the answers — the harness times the
// round trip, not the values). Each worker owns its own Target, so
// implementations need not be safe for concurrent use.
type Target interface {
	Do(pairs [][2]int32) error
	Close() error
}

// Mutator is an optional Target capability: a target that can mutate
// the served graph. Mutate applies one single-kind edge batch (del
// selects deletion over insertion) against a live server. Run issues
// churn through it when Options.Churn is set; a churn run against a
// target without the capability fails up front.
type Mutator interface {
	Mutate(del bool, edges [][2]int32) error
}

// TargetFactory builds the Target for one worker. Worker ids are
// 0..Workers-1; factories that dial a connection per worker give the
// harness its per-worker request queues.
type TargetFactory func(worker int) (Target, error)

// Options tunes one load run. Zero values take the documented
// defaults.
type Options struct {
	// Workers is the number of concurrent load generators (default 1).
	Workers int
	// Requests is the number of measured requests issued per worker
	// (default 1000). Each request carries Batch pairs.
	Requests int
	// Warmup is the number of per-worker requests issued and discarded
	// before the measured window opens (default Requests/10).
	Warmup int
	// Batch is the number of pairs per request (default 1; 1 means the
	// single-query path on targets that distinguish the two).
	Batch int
	// N is the vertex count pairs are drawn from. Required.
	N int
	// Seed makes the workload deterministic; worker w streams pairs
	// from seed+w*0x9E37 so runs are reproducible and workers disjoint.
	Seed int64
	// MemSample is the memory-monitor sampling interval (default
	// 50ms; negative disables the monitor).
	MemSample time.Duration

	// Churn is the probability that a request (warmup included) is
	// preceded by one edge mutation issued through the target's Mutator
	// capability; 0 means a read-only load. Mutations ride the same
	// worker goroutines as the reads — the load they interleave with is
	// exactly the measured one.
	Churn float64
	// DeleteRatio is the fraction of churn mutations that delete a
	// live edge rather than insert one (see workload.NewOpStream for
	// how deletions track the live-edge window).
	DeleteRatio float64
	// Skew draws churn insertion endpoints Zipf(Skew)-skewed toward
	// low vertex ids when > 1; any other value means uniform.
	Skew float64
}

func (o *Options) defaults() error {
	if o.Workers <= 0 {
		o.Workers = 1
	}
	if o.Requests <= 0 {
		o.Requests = 1000
	}
	if o.Warmup == 0 {
		o.Warmup = o.Requests / 10
	}
	if o.Warmup < 0 {
		o.Warmup = 0
	}
	if o.Batch <= 0 {
		o.Batch = 1
	}
	if o.N <= 0 {
		return fmt.Errorf("loadgen: Options.N must be positive (got %d)", o.N)
	}
	if o.MemSample == 0 {
		o.MemSample = 50 * time.Millisecond
	}
	if o.Churn < 0 || o.Churn > 1 {
		return fmt.Errorf("loadgen: Options.Churn must be in [0,1] (got %g)", o.Churn)
	}
	if o.DeleteRatio < 0 || o.DeleteRatio > 1 {
		return fmt.Errorf("loadgen: Options.DeleteRatio must be in [0,1] (got %g)", o.DeleteRatio)
	}
	return nil
}

// Percentiles summarizes a latency distribution in microseconds.
type Percentiles struct {
	P50 float64 `json:"p50_us"`
	P90 float64 `json:"p90_us"`
	P99 float64 `json:"p99_us"`
	Max float64 `json:"max_us"`
}

// MemProfile is the peak memory observed by the monitor during the
// measured window. RSSMB is 0 on platforms without /proc/self/status.
type MemProfile struct {
	HeapAllocMB float64 `json:"heap_alloc_mb"`
	HeapSysMB   float64 `json:"heap_sys_mb"`
	RSSMB       float64 `json:"rss_mb"`
}

// Result is one measured load run: the unit of BENCH_SERVE.json.
type Result struct {
	// Protocol labels the target ("inproc", "http", "binary").
	Protocol string `json:"protocol"`
	Workers  int    `json:"workers"`
	Batch    int    `json:"batch"`
	// Requests and Pairs count the measured window only; warmup
	// requests are issued but excluded from every figure below.
	// Requests counts every issued request; Pairs, QPS and Latency
	// cover only the admitted (answered) ones.
	Requests   int         `json:"requests"`
	Pairs      int64       `json:"pairs"`
	Warmup     int         `json:"warmup_requests_excluded"`
	ElapsedSec float64     `json:"elapsed_sec"`
	RPS        float64     `json:"rps"`
	QPS        float64     `json:"qps"`
	Latency    Percentiles `json:"latency_us"`
	// Shed counts measured requests rejected by the server's admission
	// gate (ErrShed); ShedLatency is how quickly those rejections came
	// back — the "shed before work" property made measurable. Omitted
	// when nothing was shed.
	Shed        int          `json:"shed,omitempty"`
	ShedLatency *Percentiles `json:"shed_latency_us,omitempty"`
	// InsertOps/DeleteOps count churn mutations acked during the
	// measured window (warmup churn is issued but not counted), with
	// their own latency distribution. Omitted for read-only runs.
	InsertOps       int64        `json:"insert_ops,omitempty"`
	DeleteOps       int64        `json:"delete_ops,omitempty"`
	MutationLatency *Percentiles `json:"mutation_latency_us,omitempty"`
	Mem             MemProfile   `json:"mem"`
}

// String renders the run compactly for terminal output.
func (r Result) String() string {
	s := fmt.Sprintf(
		"%s workers=%d batch=%d: %d pairs in %.3fs (%.0f qps, %.0f rps) p50=%.1fµs p90=%.1fµs p99=%.1fµs max=%.1fµs",
		r.Protocol, r.Workers, r.Batch, r.Pairs, r.ElapsedSec, r.QPS, r.RPS,
		r.Latency.P50, r.Latency.P90, r.Latency.P99, r.Latency.Max)
	if r.Shed > 0 && r.ShedLatency != nil {
		s += fmt.Sprintf(" shed=%d (p50=%.1fµs p99=%.1fµs)", r.Shed, r.ShedLatency.P50, r.ShedLatency.P99)
	}
	if r.InsertOps+r.DeleteOps > 0 {
		s += fmt.Sprintf(" churn=%d ins + %d del", r.InsertOps, r.DeleteOps)
		if r.MutationLatency != nil {
			s += fmt.Sprintf(" (p50=%.1fµs p99=%.1fµs)", r.MutationLatency.P50, r.MutationLatency.P99)
		}
	}
	return s
}

// Run drives one measured load run: Workers goroutines, each with its
// own Target and deterministic pair stream, issue Warmup untimed then
// Requests timed requests of Batch pairs. The wall clock and QPS cover
// the measured window only.
func Run(opt Options, factory TargetFactory) (Result, error) {
	if err := opt.defaults(); err != nil {
		return Result{}, err
	}
	targets := make([]Target, opt.Workers)
	for w := range targets {
		tg, err := factory(w)
		if err != nil {
			for _, t := range targets[:w] {
				t.Close()
			}
			return Result{}, fmt.Errorf("loadgen: worker %d target: %w", w, err)
		}
		targets[w] = tg
	}
	defer func() {
		for _, t := range targets {
			t.Close()
		}
	}()
	if opt.Churn > 0 {
		for w, tg := range targets {
			if _, ok := tg.(Mutator); !ok {
				return Result{}, fmt.Errorf("loadgen: churn requested but worker %d's target cannot mutate (read-only server or protocol?)", w)
			}
		}
	}

	// Per-worker latency records, preallocated so the measured loop
	// does not allocate. Shed requests land in their own record: a
	// deliberate-overload run wants both distributions, unmixed.
	lats := make([][]int64, opt.Workers)
	shedLats := make([][]int64, opt.Workers)
	mutLats := make([][]int64, opt.Workers)
	insOps := make([]int64, opt.Workers)
	delOps := make([]int64, opt.Workers)
	for w := range lats {
		lats[w] = make([]int64, 0, opt.Requests)
	}
	errs := make([]error, opt.Workers)

	var (
		warmed  sync.WaitGroup // all workers finished warmup
		start   = make(chan struct{})
		done    sync.WaitGroup
		stopMem = make(chan struct{})
		mem     MemProfile
		memWG   sync.WaitGroup
	)
	if opt.MemSample > 0 {
		memWG.Add(1)
		go func() {
			defer memWG.Done()
			mem = monitorMemory(stopMem, opt.MemSample)
		}()
	}

	warmed.Add(opt.Workers)
	done.Add(opt.Workers)
	for w := 0; w < opt.Workers; w++ {
		go func(w int) {
			defer done.Done()
			st := workload.NewStreamN(opt.N, opt.Seed+int64(w)*0x9E37)
			pairs := make([][2]int32, opt.Batch)
			fill := func() {
				for i := range pairs {
					p := st.Next()
					pairs[i] = [2]int32{p.S, p.T}
				}
			}
			// Churn state: one op stream and one probability stream per
			// worker, seeded apart from the pair stream so adding churn
			// does not reshuffle the read workload.
			var (
				mut  Mutator
				ops  *workload.OpStream
				crng *rand.Rand
			)
			if opt.Churn > 0 {
				mut = targets[w].(Mutator)
				ops = workload.NewOpStream(opt.N, opt.DeleteRatio, opt.Skew, opt.Seed^0x4348_5552+int64(w)*0x9E37)
				crng = rand.New(rand.NewSource(opt.Seed ^ 0x6368 + int64(w)*0x9E37))
			}
			// mutate issues at most one churn op, timing it separately
			// from the reads; shed mutations (the write gate working) are
			// dropped, any other failure aborts the worker. Warmup churn
			// runs with record=false: issued, never counted.
			mutate := func(record bool) error {
				if mut == nil || crng.Float64() >= opt.Churn {
					return nil
				}
				op := ops.Next()
				t0 := time.Now()
				err := mut.Mutate(op.Del, [][2]int32{{op.A, op.B}})
				el := int64(time.Since(t0))
				switch {
				case err == nil:
					if record {
						mutLats[w] = append(mutLats[w], el)
						if op.Del {
							delOps[w]++
						} else {
							insOps[w]++
						}
					}
				case errors.Is(err, ErrShed):
				default:
					return err
				}
				return nil
			}
			for i := 0; i < opt.Warmup; i++ {
				fill()
				if err := mutate(false); err != nil {
					errs[w] = fmt.Errorf("warmup churn %d: %w", i, err)
					warmed.Done()
					return
				}
				if err := targets[w].Do(pairs); err != nil && !errors.Is(err, ErrShed) {
					errs[w] = fmt.Errorf("warmup request %d: %w", i, err)
					warmed.Done()
					return
				}
			}
			warmed.Done()
			<-start // barrier: the measured window opens for all workers at once
			for i := 0; i < opt.Requests; i++ {
				fill()
				if err := mutate(true); err != nil {
					errs[w] = fmt.Errorf("churn at request %d: %w", i, err)
					return
				}
				t0 := time.Now()
				err := targets[w].Do(pairs)
				el := int64(time.Since(t0))
				switch {
				case err == nil:
					lats[w] = append(lats[w], el)
				case errors.Is(err, ErrShed):
					shedLats[w] = append(shedLats[w], el)
				default:
					errs[w] = fmt.Errorf("request %d: %w", i, err)
					return
				}
			}
		}(w)
	}

	warmed.Wait()
	t0 := time.Now()
	close(start)
	done.Wait()
	elapsed := time.Since(t0)
	close(stopMem)
	memWG.Wait()

	for w, err := range errs {
		if err != nil {
			return Result{}, fmt.Errorf("loadgen: worker %d: %w", w, err)
		}
	}

	all := make([]int64, 0, opt.Workers*opt.Requests)
	var shedAll, mutAll []int64
	for _, rec := range lats {
		all = append(all, rec...)
	}
	for _, rec := range shedLats {
		shedAll = append(shedAll, rec...)
	}
	for _, rec := range mutLats {
		mutAll = append(mutAll, rec...)
	}
	res := Result{
		Workers:    opt.Workers,
		Batch:      opt.Batch,
		Requests:   opt.Workers * opt.Requests,
		Pairs:      int64(len(all)) * int64(opt.Batch),
		Warmup:     opt.Workers * opt.Warmup,
		ElapsedSec: elapsed.Seconds(),
		Latency:    percentiles(all),
		Shed:       len(shedAll),
		Mem:        mem,
	}
	if len(shedAll) > 0 {
		p := percentiles(shedAll)
		res.ShedLatency = &p
	}
	if len(mutAll) > 0 {
		for w := range insOps {
			res.InsertOps += insOps[w]
			res.DeleteOps += delOps[w]
		}
		p := percentiles(mutAll)
		res.MutationLatency = &p
	}
	if sec := elapsed.Seconds(); sec > 0 {
		res.RPS = float64(res.Requests) / sec
		res.QPS = float64(res.Pairs) / sec
	}
	return res, nil
}

// Sweep runs Run once per parallelism level, holding the total request
// budget constant: Options.Requests is treated as the run's TOTAL
// request count and split evenly across each level's workers (at least
// one each), so the QPS-vs-parallelism curve of EXPERIMENTS.md compares
// equal work at every level, not equal duration.
func Sweep(opt Options, parallelism []int, factory TargetFactory) ([]Result, error) {
	out := make([]Result, 0, len(parallelism))
	for _, p := range parallelism {
		o := opt
		o.Workers = p
		if p > 0 {
			o.Requests = opt.Requests / p
		}
		if o.Requests <= 0 && opt.Requests > 0 {
			o.Requests = 1
		}
		r, err := Run(o, factory)
		if err != nil {
			return out, err
		}
		out = append(out, r)
	}
	return out, nil
}

// percentiles computes exact (nearest-rank) percentiles over latency
// records in nanoseconds, reported in microseconds. It sorts a private
// copy: callers that retain per-worker latency records must see them
// unpermuted after the report is built.
func percentiles(ns []int64) Percentiles {
	if len(ns) == 0 {
		return Percentiles{}
	}
	ns = append([]int64(nil), ns...)
	sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
	at := func(q float64) float64 {
		i := int(q*float64(len(ns))+0.5) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(ns) {
			i = len(ns) - 1
		}
		return float64(ns[i]) / 1e3
	}
	return Percentiles{
		P50: at(0.50),
		P90: at(0.90),
		P99: at(0.99),
		Max: float64(ns[len(ns)-1]) / 1e3,
	}
}

// monitorMemory samples heap stats and resident set size until stop is
// closed, returning the peaks observed.
func monitorMemory(stop <-chan struct{}, every time.Duration) MemProfile {
	const mb = 1.0 / (1 << 20)
	var peak MemProfile
	sample := func() {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		if v := float64(ms.HeapAlloc) * mb; v > peak.HeapAllocMB {
			peak.HeapAllocMB = v
		}
		if v := float64(ms.HeapSys) * mb; v > peak.HeapSysMB {
			peak.HeapSysMB = v
		}
		if v := readRSSMB(); v > peak.RSSMB {
			peak.RSSMB = v
		}
	}
	sample()
	tick := time.NewTicker(every)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			sample()
			return peak
		case <-tick.C:
			sample()
		}
	}
}

// readRSSMB reads the resident set size from /proc/self/status,
// returning 0 where the file or the VmRSS line is unavailable
// (non-Linux platforms).
func readRSSMB() float64 {
	b, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(b), "\n") {
		if !strings.HasPrefix(line, "VmRSS:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		kb, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return 0
		}
		return kb / 1024
	}
	return 0
}

// Report is the BENCH_SERVE.json document: the runs of one harness
// invocation plus enough context to reproduce them.
type Report struct {
	Command string   `json:"command,omitempty"`
	Host    string   `json:"host,omitempty"`
	Runs    []Result `json:"runs"`
}

// WriteJSON writes the report as indented JSON.
func (rp Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rp)
}
