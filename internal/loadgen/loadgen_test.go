package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"net/http/httptest"
	"testing"
	"time"

	"highway/internal/core"
	"highway/internal/gen"
	"highway/internal/landmark"
	"highway/internal/serve"
)

func testServer(t *testing.T) (*serve.Server, int) {
	t.Helper()
	g := gen.BarabasiAlbert(400, 3, 7)
	lms, err := landmark.Select(g, landmark.Options{K: 8, Strategy: landmark.Degree})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := core.BuildParallel(g, lms)
	if err != nil {
		t.Fatal(err)
	}
	return serve.New(ix, serve.Config{ShutdownGrace: time.Second}), g.NumVertices()
}

// checkResult asserts the invariants every sane run satisfies.
func checkResult(t *testing.T, r Result, opt Options) {
	t.Helper()
	if r.Requests != opt.Workers*opt.Requests {
		t.Fatalf("requests = %d, want %d", r.Requests, opt.Workers*opt.Requests)
	}
	if want := int64(opt.Workers) * int64(opt.Requests) * int64(opt.Batch); r.Pairs != want {
		t.Fatalf("pairs = %d, want %d", r.Pairs, want)
	}
	if r.Warmup != opt.Workers*opt.Warmup {
		t.Fatalf("warmup = %d, want %d", r.Warmup, opt.Workers*opt.Warmup)
	}
	if r.QPS <= 0 || r.RPS <= 0 || r.ElapsedSec <= 0 {
		t.Fatalf("degenerate throughput: %+v", r)
	}
	l := r.Latency
	if l.P50 <= 0 || l.P50 > l.P90 || l.P90 > l.P99 || l.P99 > l.Max {
		t.Fatalf("percentiles out of order: %+v", l)
	}
	if r.Mem.HeapAllocMB <= 0 {
		t.Fatalf("memory monitor observed nothing: %+v", r.Mem)
	}
}

func TestRunInProc(t *testing.T) {
	srv, n := testServer(t)
	opt := Options{Workers: 3, Requests: 200, Warmup: 20, Batch: 4, N: n, Seed: 1, MemSample: time.Millisecond}
	r, err := Run(opt, InProcFactory(srv))
	if err != nil {
		t.Fatal(err)
	}
	r.Protocol = "inproc"
	checkResult(t, r, opt)
}

func TestRunHTTP(t *testing.T) {
	srv, n := testServer(t)
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	for _, batch := range []int{1, 8} {
		opt := Options{Workers: 2, Requests: 50, Warmup: 5, Batch: batch, N: n, Seed: 2, MemSample: time.Millisecond}
		r, err := Run(opt, HTTPFactory(hs.URL))
		if err != nil {
			t.Fatal(err)
		}
		r.Protocol = "http"
		checkResult(t, r, opt)
	}
}

func TestRunBinary(t *testing.T) {
	srv, n := testServer(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.ServeBinary(ctx, ln) }()
	defer func() {
		cancel()
		if err := <-done; err != nil {
			t.Error(err)
		}
	}()
	for _, batch := range []int{1, 8} {
		opt := Options{Workers: 2, Requests: 50, Warmup: 5, Batch: batch, N: n, Seed: 3, MemSample: time.Millisecond}
		r, err := Run(opt, BinaryFactory(ln.Addr().String()))
		if err != nil {
			t.Fatal(err)
		}
		r.Protocol = "binary"
		checkResult(t, r, opt)
	}
}

func TestSweep(t *testing.T) {
	srv, n := testServer(t)
	opt := Options{Requests: 48, Warmup: 5, Batch: 2, N: n, Seed: 4, MemSample: -1}
	levels := []int{1, 2, 4}
	runs, err := Sweep(opt, levels, InProcFactory(srv))
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != len(levels) {
		t.Fatalf("%d runs for %d levels", len(runs), len(levels))
	}
	for i, r := range runs {
		if r.Workers != levels[i] {
			t.Fatalf("run %d workers = %d, want %d", i, r.Workers, levels[i])
		}
		// The total request budget is held constant across levels.
		if r.Requests != 48 {
			t.Fatalf("run %d (workers=%d) requests = %d, want 48", i, levels[i], r.Requests)
		}
	}
}

func TestOptionsValidation(t *testing.T) {
	if _, err := Run(Options{}, InProcFactory(nil)); err == nil {
		t.Fatal("Run accepted Options.N == 0")
	}
}

func TestPercentiles(t *testing.T) {
	// 1..100 µs in ns: exact nearest-rank percentiles are known.
	ns := make([]int64, 100)
	for i := range ns {
		ns[i] = int64(i+1) * 1000
	}
	p := percentiles(ns)
	if p.P50 != 50 || p.P90 != 90 || p.P99 != 99 || p.Max != 100 {
		t.Fatalf("percentiles = %+v", p)
	}
	if got := percentiles(nil); got != (Percentiles{}) {
		t.Fatalf("empty percentiles = %+v", got)
	}
}

// TestPercentilesDoesNotPermuteInput pins the ownership fix: the report
// sorts its own copy, so a caller that retains per-worker latency
// records sees them in recorded order afterwards.
func TestPercentilesDoesNotPermuteInput(t *testing.T) {
	ns := []int64{9000, 1000, 5000, 3000, 7000}
	want := append([]int64(nil), ns...)
	p := percentiles(ns)
	if p.Max != 9 {
		t.Fatalf("percentiles = %+v", p)
	}
	for i := range ns {
		if ns[i] != want[i] {
			t.Fatalf("input permuted: %v, want %v", ns, want)
		}
	}
}

func TestReportJSON(t *testing.T) {
	rp := Report{
		Command: "hlserve load -proto binary",
		Runs:    []Result{{Protocol: "binary", Workers: 2, Batch: 8, QPS: 1000}},
	}
	var buf bytes.Buffer
	if err := rp.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Runs) != 1 || back.Runs[0].Protocol != "binary" || back.Runs[0].QPS != 1000 {
		t.Fatalf("round trip lost data: %+v", back)
	}
}
