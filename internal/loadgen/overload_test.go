package loadgen

import (
	"context"
	"net"
	"net/http/httptest"
	"testing"
	"time"

	"highway/internal/core"
	"highway/internal/failpoint"
	"highway/internal/gen"
	"highway/internal/landmark"
	"highway/internal/serve"
)

// Overload acceptance: drive a server whose admission budget covers a
// quarter (or less) of the offered in-flight demand and assert the
// shedding contract — some requests are admitted, the rest come back
// as ErrShed far faster than real work completes (shedding cheaper
// than answering is the property that prevents collapse), and the
// admitted requests keep finishing in bounded time.
//
// A 400-vertex test index answers a 1024-pair batch in ~100µs, far too
// fast for in-flight work to ever accumulate at the gate, so the
// serve.query failpoint dilates each admitted request by a known delay
// — the admitted requests then hold budget long enough that an
// oversubscribed worker pool deterministically overflows it.
// The delay is deliberately large relative to scheduler noise: on a
// small CI machine the workers oversubscribe the cores, and every
// client-side measurement carries milliseconds of scheduling jitter —
// the injected query time must dominate it for the shed-vs-admitted
// comparison to be meaningful.
const (
	overloadBudget  = 2      // read budget in cost units
	overloadBatch   = 1024   // pairs per request → cost 1 (HTTP) / 2 (binary)
	overloadWorkers = 8      // ≥ 4× the concurrent requests the budget admits
	overloadDelay   = "10ms" // serve.query delay: how long admitted requests hold budget
	overloadDelayUS = 10000.0
)

func overloadServer(t *testing.T) (*serve.Server, int) {
	t.Helper()
	g := gen.BarabasiAlbert(400, 3, 7)
	lms, err := landmark.Select(g, landmark.Options{K: 8, Strategy: landmark.Degree})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := core.BuildParallel(g, lms)
	if err != nil {
		t.Fatal(err)
	}
	if err := failpoint.Set(serve.FPQuery, "delay("+overloadDelay+")"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { failpoint.Clear(serve.FPQuery) })
	return serve.New(ix, serve.Config{ShutdownGrace: time.Second, ReadBudget: overloadBudget}), g.NumVertices()
}

// checkOverload asserts the run observed real shedding without losing
// the admitted traffic.
func checkOverload(t *testing.T, r Result, srv *serve.Server) {
	t.Helper()
	if r.Shed == 0 {
		t.Fatalf("no sheds at >=4x budget: %+v", r)
	}
	if r.Pairs == 0 {
		t.Fatalf("overload starved every request — nothing admitted: %+v", r)
	}
	if r.ShedLatency == nil {
		t.Fatal("Shed > 0 but ShedLatency is nil")
	}
	// Shed-before-work, measured: every admitted request holds the gate
	// for at least the injected delay, so a shed whose latency reaches
	// that delay would mean shed requests are doing the work they were
	// supposed to skip. (The sub-millisecond absolute bound of the
	// acceptance criterion is asserted in CI's bench-smoke via hlserve
	// load, on an unloaded client without the race detector distorting
	// the clock; here the client's own scheduler noise is milliseconds.)
	if !raceEnabled && r.ShedLatency.P50 >= overloadDelayUS {
		t.Errorf("shed p50 = %.1fµs, not faster than the %vµs of admitted work — shed requests are doing work",
			r.ShedLatency.P50, overloadDelayUS)
	}
	if r.ShedLatency.P50 >= r.Latency.P50 {
		t.Errorf("shed p50 %.1fµs >= admitted p50 %.1fµs — shedding is not cheaper than working",
			r.ShedLatency.P50, r.Latency.P50)
	}
	// Bounded degradation, not collapse: admitted requests still finish
	// in sane time under sustained overload.
	if r.Latency.P99 > 2e6 {
		t.Errorf("admitted p99 = %.0fµs (> 2s) under overload — collapse, not degradation", r.Latency.P99)
	}
	st := srv.AdmissionStats()
	if st.Read.Shed == 0 || st.Read.Admitted == 0 {
		t.Errorf("server admission stats = %+v, want both sheds and admissions", st.Read)
	}
	if st.Read.Inflight != 0 {
		t.Errorf("inflight = %d after run drained, want 0 (leaked budget)", st.Read.Inflight)
	}
}

func overloadOptions(n int) Options {
	return Options{
		Workers:   overloadWorkers,
		Requests:  30,
		Warmup:    2,
		Batch:     overloadBatch,
		N:         n,
		Seed:      11,
		MemSample: -1,
	}
}

func TestOverloadShedHTTP(t *testing.T) {
	srv, n := overloadServer(t)
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	r, err := Run(overloadOptions(n), HTTPFactory(hs.URL))
	if err != nil {
		t.Fatal(err)
	}
	checkOverload(t, r, srv)
	// Requests counts issued, Pairs only the answered ones.
	if r.Requests != overloadWorkers*30 {
		t.Fatalf("requests = %d, want %d", r.Requests, overloadWorkers*30)
	}
	if want := int64(r.Requests-r.Shed) * overloadBatch; r.Pairs != want {
		t.Fatalf("pairs = %d, want answered %d x batch = %d", r.Pairs, r.Requests-r.Shed, want)
	}
}

func TestOverloadShedBinary(t *testing.T) {
	srv, n := overloadServer(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.ServeBinary(ctx, ln) }()
	defer func() {
		cancel()
		if err := <-done; err != nil {
			t.Error(err)
		}
	}()
	r, err := Run(overloadOptions(n), BinaryFactory(ln.Addr().String()))
	if err != nil {
		t.Fatal(err)
	}
	checkOverload(t, r, srv)
}
