//go:build race

package loadgen

// raceEnabled gates timing assertions that the race detector's
// instrumentation overhead (~10x on hot paths) would make meaningless.
const raceEnabled = true
