package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"highway/internal/hlclient"
	"highway/internal/serve"
	"highway/internal/wire"
)

// InProcFactory drives a serve.Server directly, with no protocol in
// between: the floor every wire protocol's overhead is measured
// against.
func InProcFactory(srv *serve.Server) TargetFactory {
	return func(int) (Target, error) { return &inprocTarget{srv: srv}, nil }
}

type inprocTarget struct {
	srv *serve.Server
	dst []int32
}

func (t *inprocTarget) Do(pairs [][2]int32) error {
	if len(pairs) == 1 {
		_, err := t.srv.Distance(pairs[0][0], pairs[0][1])
		return err
	}
	var err error
	t.dst, err = t.srv.DistanceBatch(pairs, t.dst)
	return err
}

func (t *inprocTarget) Close() error { return nil }

// Mutate implements the Mutator capability straight against the server.
// The in-process path bypasses the admission gate (it guards the
// protocol listeners), so there is no shed mapping to do.
func (t *inprocTarget) Mutate(del bool, edges [][2]int32) error {
	var err error
	if del {
		_, err = t.srv.DeleteEdges(edges)
	} else {
		_, err = t.srv.InsertEdges(edges)
	}
	return err
}

// HTTPFactory drives the HTTP/JSON API at baseURL (e.g.
// "http://127.0.0.1:8080"): GET /distance for single pairs, POST
// /distance/batch otherwise. Each worker owns one keep-alive
// connection, so the per-request cost measured is the HTTP/1 + JSON
// protocol tax, not repeated TCP handshakes.
func HTTPFactory(baseURL string) TargetFactory {
	return func(int) (Target, error) {
		tr := &http.Transport{MaxIdleConnsPerHost: 1}
		return &httpTarget{base: baseURL, cl: &http.Client{Transport: tr}, tr: tr}, nil
	}
}

type httpTarget struct {
	base string
	cl   *http.Client
	tr   *http.Transport
	body bytes.Buffer
}

func (t *httpTarget) Do(pairs [][2]int32) error {
	if len(pairs) == 1 {
		url := t.base + "/distance?s=" + strconv.Itoa(int(pairs[0][0])) +
			"&t=" + strconv.Itoa(int(pairs[0][1]))
		resp, err := t.cl.Get(url)
		if err != nil {
			return err
		}
		return drain(resp)
	}
	t.body.Reset()
	req := struct {
		Pairs [][2]int32 `json:"pairs"`
	}{Pairs: pairs}
	if err := json.NewEncoder(&t.body).Encode(req); err != nil {
		return err
	}
	resp, err := t.cl.Post(t.base+"/distance/batch", "application/json", &t.body)
	if err != nil {
		return err
	}
	return drain(resp)
}

// drain consumes and closes the response body (keeping the connection
// reusable) and rejects non-2xx statuses. A 429 — the admission gate
// shedding load — is reported as ErrShed so the harness can count it
// instead of aborting the run.
func drain(resp *http.Response) error {
	_, cerr := io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode == http.StatusTooManyRequests {
		return fmt.Errorf("%w (http 429)", ErrShed)
	}
	if resp.StatusCode/100 != 2 {
		return fmt.Errorf("http status %s", resp.Status)
	}
	return cerr
}

func (t *httpTarget) Close() error {
	t.tr.CloseIdleConnections()
	return nil
}

// Mutate implements the Mutator capability over POST/DELETE /edges,
// reusing the worker's keep-alive connection.
func (t *httpTarget) Mutate(del bool, edges [][2]int32) error {
	t.body.Reset()
	req := struct {
		Edges [][2]int32 `json:"edges"`
	}{Edges: edges}
	if err := json.NewEncoder(&t.body).Encode(req); err != nil {
		return err
	}
	m := http.MethodPost
	if del {
		m = http.MethodDelete
	}
	hreq, err := http.NewRequest(m, t.base+"/edges", &t.body)
	if err != nil {
		return err
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := t.cl.Do(hreq)
	if err != nil {
		return err
	}
	return drain(resp)
}

// MultiHTTPFactory spreads workers round-robin across several HTTP
// endpoints (worker i drives bases[i%len]): the harness-side analogue
// of a read replica set, measuring aggregate QPS across the fleet. With
// one base it degenerates to HTTPFactory.
func MultiHTTPFactory(bases []string) TargetFactory {
	if len(bases) == 1 {
		return HTTPFactory(bases[0])
	}
	return func(worker int) (Target, error) {
		return HTTPFactory(bases[worker%len(bases)])(worker)
	}
}

// MultiBinaryFactory spreads workers round-robin across several binary
// protocol endpoints, one connection per worker. With one address it
// degenerates to BinaryFactory.
func MultiBinaryFactory(addrs []string) TargetFactory {
	if len(addrs) == 1 {
		return BinaryFactory(addrs[0])
	}
	return func(worker int) (Target, error) {
		return BinaryFactory(addrs[worker%len(addrs)])(worker)
	}
}

// BinaryFactory drives the binary protocol listener at addr through
// one hlclient.Client per worker (pool size 1): each worker is one
// connection with its own request queue, and batch answers reuse one
// buffer so the measured loop does not allocate. The client's retry
// layer is disabled — the harness wants to observe every shed and
// failure raw, not the client's smoothed-over view of them.
func BinaryFactory(addr string) TargetFactory {
	return func(int) (Target, error) {
		cl, err := hlclient.Dial(context.Background(), addr, hlclient.Config{
			PoolSize:         1,
			MaxRetries:       -1,
			BreakerThreshold: -1,
		})
		if err != nil {
			return nil, err
		}
		return &binaryTarget{cl: cl}, nil
	}
}

type binaryTarget struct {
	cl  *hlclient.Client
	dst []int32
}

func (t *binaryTarget) Do(pairs [][2]int32) error {
	ctx := context.Background()
	var err error
	if len(pairs) == 1 {
		_, err = t.cl.Distance(ctx, pairs[0][0], pairs[0][1])
	} else {
		t.dst, err = t.cl.DistanceBatch(ctx, pairs, t.dst)
	}
	return mapShed(err)
}

// mapShed translates the binary protocol's Overloaded error into the
// harness's ErrShed, mirroring drain's treatment of HTTP 429.
func mapShed(err error) error {
	var re *wire.RemoteError
	if errors.As(err, &re) && re.Code == wire.CodeOverloaded {
		return fmt.Errorf("%w (%v)", ErrShed, err)
	}
	return err
}

func (t *binaryTarget) Close() error { return t.cl.Close() }

// Mutate implements the Mutator capability over the binary protocol's
// Insert/Delete frames, on the worker's own connection.
func (t *binaryTarget) Mutate(del bool, edges [][2]int32) error {
	ctx := context.Background()
	var err error
	if del {
		_, err = t.cl.DeleteEdges(ctx, edges)
	} else {
		_, err = t.cl.InsertEdges(ctx, edges)
	}
	return mapShed(err)
}
