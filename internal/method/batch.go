package method

import "context"

// BatchSearcher is the optional vectorized-execution capability: a
// Searcher that answers many (s,t) pairs in one call, amortizing
// per-source work (label walks, bound vectors, traversal scratch)
// across pairs that share a source. Implementations must return exactly
// what pair-at-a-time Distance returns for every pair — batching is an
// execution strategy, never a semantics change — and must tolerate
// duplicate pairs, s==t, and pairs in any order.
//
// dst follows the append-style contract: when cap(dst) >= len(pairs)
// the answers are written into dst[:len(pairs)] and that slice is
// returned; otherwise a fresh slice is allocated. Like Searcher itself,
// a BatchSearcher is single-goroutine.
type BatchSearcher interface {
	Searcher
	DistanceBatch(pairs [][2]int32, dst []int32) []int32
}

// SourceSearcher is the one-source-to-many-targets form of the same
// capability (the extreme of source skew: one group, one shared label
// walk). Semantics and the dst contract match BatchSearcher.
type SourceSearcher interface {
	Searcher
	DistanceMany(source int32, targets []int32, dst []int32) []int32
}

// sizeDst returns dst resized to n answers, reusing its backing array
// when it has the capacity (the shared dst contract of the batch
// entry points).
func sizeDst(dst []int32, n int) []int32 {
	if cap(dst) < n {
		return make([]int32, n)
	}
	return dst[:n]
}

// DistanceBatch answers all pairs through sr's best available path:
// the vectorized executor when sr implements BatchSearcher, otherwise
// the pair-at-a-time loop. Every serving-layer batch entry point
// funnels through here, so a method opts its searcher into batching
// and the whole stack picks it up.
func DistanceBatch(sr Searcher, pairs [][2]int32, dst []int32) []int32 {
	if bs, ok := sr.(BatchSearcher); ok {
		return bs.DistanceBatch(pairs, dst)
	}
	dst = sizeDst(dst, len(pairs))
	for i, p := range pairs {
		dst[i] = sr.Distance(p[0], p[1])
	}
	return dst
}

// DistanceMany answers source-to-targets through sr's best available
// path (SourceSearcher, then BatchSearcher-free pair loop).
func DistanceMany(sr Searcher, source int32, targets []int32, dst []int32) []int32 {
	if ss, ok := sr.(SourceSearcher); ok {
		return ss.DistanceMany(source, targets, dst)
	}
	dst = sizeDst(dst, len(targets))
	for i, t := range targets {
		dst[i] = sr.Distance(source, t)
	}
	return dst
}

// CancelCheckEvery is the pair granularity at which the context-aware
// batch path polls for cancellation: a cancelled context stops an
// in-flight batch within about this many pairs.
const CancelCheckEvery = 1024

// DistanceBatchContext is the cancellable form of DistanceBatch: it
// dispatches the batch in CancelCheckEvery-pair chunks, checking ctx
// between chunks, and returns ctx.Err() (with dst truncated to the
// answers already computed) as soon as cancellation is observed. Chunks
// are dispatched through DistanceBatch, so vectorized executors are
// still used within each chunk.
func DistanceBatchContext(ctx context.Context, sr Searcher, pairs [][2]int32, dst []int32) ([]int32, error) {
	dst = sizeDst(dst, len(pairs))
	for off := 0; off < len(pairs); off += CancelCheckEvery {
		if err := ctx.Err(); err != nil {
			return dst[:off], err
		}
		end := off + CancelCheckEvery
		if end > len(pairs) {
			end = len(pairs)
		}
		DistanceBatch(sr, pairs[off:end], dst[off:end])
	}
	return dst, nil
}

// Capabilities records which optional interfaces an index (and the
// searchers it creates) satisfies. It is what the registry's
// capability discovery reports and what the serving layer logs.
type Capabilities struct {
	Batch  bool // NewSearcher returns a BatchSearcher
	Source bool // NewSearcher returns a SourceSearcher
	Insert bool // the index implements Inserter
}

// CapabilitiesOf probes ix: it creates one searcher and type-asserts
// the optional interfaces.
func CapabilitiesOf(ix DistanceIndex) Capabilities {
	sr := ix.NewSearcher()
	_, batch := sr.(BatchSearcher)
	_, source := sr.(SourceSearcher)
	_, insert := ix.(Inserter)
	return Capabilities{Batch: batch, Source: source, Insert: insert}
}

// String renders the capability set in the compact form the CLIs print
// ("batch,source,insert", or "none").
func (c Capabilities) String() string {
	out := ""
	add := func(name string, on bool) {
		if !on {
			return
		}
		if out != "" {
			out += ","
		}
		out += name
	}
	add("batch", c.Batch)
	add("source", c.Source)
	add("insert", c.Insert)
	if out == "" {
		return "none"
	}
	return out
}
