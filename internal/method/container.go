package method

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// Tagged v2 index container.
//
// Every method's index file shares the "HWLIDX02" container layout
// introduced by the core labelling's format v2 (see
// internal/core/serialize.go for the layout comment): an 8-byte magic,
// a checksummed 40-byte header, a section table (id, CRC-32C, length
// per section), then one contiguous payload per section in table
// order.
//
// Files written by the highway cover labelling itself carry no method
// tag — absence means "hl", which is what keeps the core writer
// byte-identical to its pinned golden file and every pre-registry file
// readable. Every other method writes a method-tag section (SectTag,
// id 32) as the FIRST table row and first payload, so a reader can
// learn which decoder a file needs from one bounded read; the core
// reader recognizes the tag and reports a descriptive error instead of
// misparsing. Per-method payload sections use ids ≥ 33, disjoint from
// the core section ids 1..6, so no decoder can mistake another
// method's payload for its own.
//
// The two writer-specific u64 header slots (entries and overflow count
// in a core file) are surfaced as Aux1/Aux2: each method documents its
// own meaning next to its section ids.

// TagHL is the implied method tag of untagged container files (and of
// v1 files): the highway cover labelling.
const TagHL = "hl"

// SectTag is the section id of the method-name payload. Ids below it
// (1..6) belong to the core labelling; per-method sections start at
// SectTag + 1.
const SectTag uint32 = 32

// maxTagLen bounds the method-tag payload (registry names are short).
const maxTagLen = 64

const (
	headerLen  = 40
	tableRow   = 16
	maxSection = 64 // fuzz/OOM guard, matching the core reader
)

var (
	magicV1 = [8]byte{'H', 'W', 'L', 'I', 'D', 'X', '0', '1'}
	magicV2 = [8]byte{'H', 'W', 'L', 'I', 'D', 'X', '0', '2'}
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Header is the checksummed fixed header of a tagged container file.
type Header struct {
	Method string // the tag; never empty on files written by WriteContainer
	N      uint64 // vertex count of the graph the index was built on
	K      uint32 // method-specific cardinality (landmarks, roots, levels)
	Aux1   uint64 // method-specific (documented per serializer)
	Aux2   uint64 // method-specific (documented per serializer)
}

// Section is one payload of a container file.
type Section struct {
	ID      uint32
	Payload []byte
}

// WriteContainer writes a tagged container: header, method-tag section,
// then the given sections in order. Output is deterministic.
func WriteContainer(w io.Writer, h Header, sections []Section) error {
	if h.Method == "" || len(h.Method) > maxTagLen {
		return fmt.Errorf("method: bad tag %q", h.Method)
	}
	all := make([]Section, 0, len(sections)+1)
	all = append(all, Section{ID: SectTag, Payload: []byte(h.Method)})
	all = append(all, sections...)
	if len(all) > maxSection {
		return fmt.Errorf("method: %d sections exceeds limit %d", len(all), maxSection)
	}

	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.Write(magicV2[:]); err != nil {
		return err
	}
	var hdr [headerLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], 2) // container version
	binary.LittleEndian.PutUint32(hdr[4:8], 0) // flags
	binary.LittleEndian.PutUint64(hdr[8:16], h.N)
	binary.LittleEndian.PutUint32(hdr[16:20], h.K)
	binary.LittleEndian.PutUint32(hdr[20:24], uint32(len(all)))
	binary.LittleEndian.PutUint64(hdr[24:32], h.Aux1)
	binary.LittleEndian.PutUint64(hdr[32:40], h.Aux2)
	bw.Write(hdr[:])
	var b4 [4]byte
	binary.LittleEndian.PutUint32(b4[:], crc32.Checksum(hdr[:], castagnoli))
	bw.Write(b4[:])

	var row [tableRow]byte
	for _, s := range all {
		binary.LittleEndian.PutUint32(row[0:4], s.ID)
		binary.LittleEndian.PutUint32(row[4:8], crc32.Checksum(s.Payload, castagnoli))
		binary.LittleEndian.PutUint64(row[8:16], uint64(len(s.Payload)))
		if _, err := bw.Write(row[:]); err != nil {
			return err
		}
	}
	for _, s := range all {
		if _, err := bw.Write(s.Payload); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// readHeader consumes and validates the magic + fixed header + table of
// a v2 container stream, returning the header (Method still unset) and
// the raw table rows.
type rawRow struct {
	id     uint32
	crc    uint32
	length uint64
}

func readHeader(br *bufio.Reader) (Header, []rawRow, error) {
	var h Header
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return h, nil, fmt.Errorf("method: reading magic: %w", err)
	}
	if magic == magicV1 {
		// v1 files are always the core labelling.
		return Header{Method: TagHL}, nil, nil
	}
	if magic != magicV2 {
		return h, nil, fmt.Errorf("method: bad magic %q (not a HWLIDX01/02 file)", magic[:])
	}
	var hdr [headerLen]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return h, nil, fmt.Errorf("method: reading header: %w", err)
	}
	var b4 [4]byte
	if _, err := io.ReadFull(br, b4[:]); err != nil {
		return h, nil, err
	}
	if got, want := crc32.Checksum(hdr[:], castagnoli), binary.LittleEndian.Uint32(b4[:]); got != want {
		return h, nil, fmt.Errorf("method: header checksum mismatch (got %08x, want %08x)", got, want)
	}
	if v := binary.LittleEndian.Uint32(hdr[0:4]); v != 2 {
		return h, nil, fmt.Errorf("method: container version %d unsupported", v)
	}
	if f := binary.LittleEndian.Uint32(hdr[4:8]); f != 0 {
		return h, nil, fmt.Errorf("method: unsupported flags %#x", f)
	}
	h.N = binary.LittleEndian.Uint64(hdr[8:16])
	h.K = binary.LittleEndian.Uint32(hdr[16:20])
	nsect := binary.LittleEndian.Uint32(hdr[20:24])
	h.Aux1 = binary.LittleEndian.Uint64(hdr[24:32])
	h.Aux2 = binary.LittleEndian.Uint64(hdr[32:40])
	if nsect == 0 || nsect > maxSection {
		return h, nil, fmt.Errorf("method: implausible section count %d", nsect)
	}
	rows := make([]rawRow, nsect)
	var rowBuf [tableRow]byte
	for i := range rows {
		if _, err := io.ReadFull(br, rowBuf[:]); err != nil {
			return h, nil, fmt.Errorf("method: reading section table: %w", err)
		}
		rows[i] = rawRow{
			id:     binary.LittleEndian.Uint32(rowBuf[0:4]),
			crc:    binary.LittleEndian.Uint32(rowBuf[4:8]),
			length: binary.LittleEndian.Uint64(rowBuf[8:16]),
		}
	}
	// The method tag, when present, must be the first section so the
	// tag is decidable from a bounded prefix of the stream.
	if rows[0].id == SectTag {
		if rows[0].length > maxTagLen {
			return h, nil, fmt.Errorf("method: tag section length %d exceeds %d", rows[0].length, maxTagLen)
		}
		tag := make([]byte, rows[0].length)
		if _, err := io.ReadFull(br, tag); err != nil {
			return h, nil, fmt.Errorf("method: reading tag: %w", err)
		}
		if got := crc32.Checksum(tag, castagnoli); got != rows[0].crc {
			return h, nil, fmt.Errorf("method: tag checksum mismatch")
		}
		h.Method = string(tag)
		if h.Method == "" {
			return h, nil, fmt.Errorf("method: empty method tag")
		}
		rows = rows[1:]
	} else {
		h.Method = TagHL
	}
	return h, rows, nil
}

// ReadContainer reads a tagged container written by WriteContainer.
// want is the tag the caller's decoder handles; a file tagged
// differently is rejected with an error naming both. expect maps the
// header to the maximum acceptable payload length per known section id
// — the anti-OOM guard every allocation is bounded by; fixed-size
// sections should pass their exact length and additionally verify it
// on the returned payload. Unknown section ids are skipped (forward
// compatibility), duplicate known ids rejected, and every payload is
// CRC-checked.
func ReadContainer(r io.Reader, want string, expect func(Header) (map[uint32]uint64, error)) (Header, map[uint32][]byte, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	h, rows, err := readHeader(br)
	if err != nil {
		return h, nil, err
	}
	if h.Method != want {
		return h, nil, fmt.Errorf("method: index file is method %q, not %q (load it through the registry)", h.Method, want)
	}
	if want == TagHL && rows == nil {
		return h, nil, fmt.Errorf("method: v1 files are decoded by internal/core, not ReadContainer")
	}
	maxLen, err := expect(h)
	if err != nil {
		return h, nil, err
	}
	for _, row := range rows {
		if max, known := maxLen[row.id]; known && row.length > max {
			return h, nil, fmt.Errorf("method: section %d has length %d, exceeds %d", row.id, row.length, max)
		}
	}
	sections := make(map[uint32][]byte, len(rows))
	for _, row := range rows {
		if _, known := maxLen[row.id]; !known {
			if _, err := io.CopyN(io.Discard, br, int64(row.length)); err != nil {
				return h, nil, fmt.Errorf("method: skipping section %d: %w", row.id, err)
			}
			continue
		}
		if _, dup := sections[row.id]; dup {
			return h, nil, fmt.Errorf("method: duplicate section %d", row.id)
		}
		buf := make([]byte, row.length)
		if _, err := io.ReadFull(br, buf); err != nil {
			return h, nil, fmt.Errorf("method: reading section %d: %w", row.id, err)
		}
		if got := crc32.Checksum(buf, castagnoli); got != row.crc {
			return h, nil, fmt.Errorf("method: section %d checksum mismatch (got %08x, want %08x)", row.id, got, row.crc)
		}
		sections[row.id] = buf
	}
	return h, sections, nil
}

// SniffTag reports the method tag of an index stream without decoding
// it: "hl" for v1 files and untagged v2 files, the tag section's value
// otherwise. It consumes a bounded prefix of r.
func SniffTag(r io.Reader) (string, error) {
	h, _, err := readHeader(bufio.NewReaderSize(r, 4096))
	if err != nil {
		return "", err
	}
	return h.Method, nil
}

// SniffFileTag is SniffTag over a file path.
func SniffFileTag(path string) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	return SniffTag(f)
}

// SaveFile writes a serialized index to path via write, creating or
// truncating the file: the shared implementation behind every method's
// Save.
func SaveFile(path string, write func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Encoding helpers shared by the per-method serializers. All integers
// are little-endian, matching the core v2 payloads.

// AppendI32s appends vals as 4-byte little-endian words.
func AppendI32s(dst []byte, vals []int32) []byte {
	for _, v := range vals {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(v))
	}
	return dst
}

// DecodeI32s decodes a payload written by AppendI32s into dst
// (allocated to the exact count by the caller). The payload length
// must be len(dst)*4.
func DecodeI32s(payload []byte, dst []int32) error {
	if len(payload) != len(dst)*4 {
		return fmt.Errorf("method: payload length %d, want %d", len(payload), len(dst)*4)
	}
	for i := range dst {
		dst[i] = int32(binary.LittleEndian.Uint32(payload[i*4:]))
	}
	return nil
}

// AppendI64s appends vals as 8-byte little-endian words.
func AppendI64s(dst []byte, vals []int64) []byte {
	for _, v := range vals {
		dst = binary.LittleEndian.AppendUint64(dst, uint64(v))
	}
	return dst
}

// DecodeI64s decodes a payload written by AppendI64s into dst.
func DecodeI64s(payload []byte, dst []int64) error {
	if len(payload) != len(dst)*8 {
		return fmt.Errorf("method: payload length %d, want %d", len(payload), len(dst)*8)
	}
	for i := range dst {
		dst[i] = int64(binary.LittleEndian.Uint64(payload[i*8:]))
	}
	return nil
}

// AppendU64s appends vals as 8-byte little-endian words.
func AppendU64s(dst []byte, vals []uint64) []byte {
	for _, v := range vals {
		dst = binary.LittleEndian.AppendUint64(dst, v)
	}
	return dst
}

// DecodeU64s decodes a payload written by AppendU64s into dst.
func DecodeU64s(payload []byte, dst []uint64) error {
	if len(payload) != len(dst)*8 {
		return fmt.Errorf("method: payload length %d, want %d", len(payload), len(dst)*8)
	}
	for i := range dst {
		dst[i] = binary.LittleEndian.Uint64(payload[i*8:])
	}
	return nil
}

// ValidateOffsets checks a CSR offset array: starts at 0, monotone,
// total equal to want. Shared by the per-method label decoders.
func ValidateOffsets(off []int64, want int64) error {
	if len(off) == 0 || off[0] != 0 {
		return fmt.Errorf("method: offsets do not start at 0")
	}
	for i := 1; i < len(off); i++ {
		if off[i] < off[i-1] {
			return fmt.Errorf("method: offsets not monotone at %d", i)
		}
	}
	if off[len(off)-1] != want {
		return fmt.Errorf("method: offsets claim %d entries, header says %d", off[len(off)-1], want)
	}
	return nil
}
