// Package method defines the method-agnostic public surface every
// distance labelling in this repository implements: the DistanceIndex
// interface (exact queries, label upper bounds, per-goroutine
// searchers, summary statistics, persistence), the Searcher interface
// its NewSearcher returns, and the generic Stats record.
//
// The five labellings — the paper's highway cover labelling
// (internal/core), its dynamic extension (internal/dynhl) and the three
// baselines it evaluates against (internal/pll, internal/fd,
// internal/isl) — all satisfy DistanceIndex, which is what lets the
// serving subsystem (internal/serve), the differential-test harness
// (internal/oracle), the benchmark runner (internal/bench) and the
// CLIs treat "a distance oracle" as one pluggable thing selected by
// name through the registry in the root highway package.
//
// This package sits below every labelling package in the dependency
// graph (it imports none of them), so each can assert conformance with
// a compile-time check:
//
//	var _ method.DistanceIndex = (*Index)(nil)
package method

import "fmt"

// Infinity is the distance every method reports for disconnected
// vertex pairs (== core.Infinity == bfs.Unreachable).
const Infinity int32 = -1

// Searcher answers queries against one immutable index state using
// private scratch. A Searcher is not safe for concurrent use; create
// one per querying goroutine with DistanceIndex.NewSearcher.
type Searcher interface {
	// Distance returns the exact hop distance between s and t, or
	// Infinity if they are disconnected.
	Distance(s, t int32) int32
	// UpperBound returns a label-derived upper bound on the distance
	// (Infinity when the labels certify nothing). Methods whose labels
	// already answer queries exactly return the exact distance.
	UpperBound(s, t int32) int32
}

// DistanceIndex is the one interface every labelling method exposes:
// an exact distance oracle over a fixed vertex set that can summarize
// and persist itself. Implementations are safe for concurrent readers
// unless their package documents otherwise (internal/dynhl is mutable;
// serialize queries with updates).
type DistanceIndex interface {
	// Distance returns the exact hop distance between s and t, or
	// Infinity if disconnected. This is the pooled/allocating
	// convenience; hot query loops should use NewSearcher.
	Distance(s, t int32) int32
	// UpperBound returns the method's label-derived upper bound
	// (see Searcher.UpperBound).
	UpperBound(s, t int32) int32
	// NewSearcher returns a fresh per-goroutine query searcher.
	NewSearcher() Searcher
	// Stats summarizes the index (method name, sizes, entry counts).
	Stats() Stats
	// Save writes the index to path in the tagged v2 container format,
	// loadable by the registry's LoadIndexAny and the method's own
	// loader. The graph is not embedded (except where a method's
	// documentation says otherwise): an index is only meaningful
	// together with the graph it was built on.
	Save(path string) error
}

// Stats summarizes an index for logs, the bench harness and the
// serving /stats endpoint. Method-specific measures that do not apply
// are zero: only the highway cover labelling fills Bytes32/Bytes8
// (the paper's two HL accountings), only the bit-parallel builds fill
// BPTrees.
type Stats struct {
	// Method is the registry name of the method that built the index
	// ("hl", "pll", "fd", "isl", "dynhl"); empty on indexes predating
	// the registry.
	Method string

	NumVertices  int
	NumEdges     int64
	NumLandmarks int   // landmark/root count; 0 where the concept does not apply
	NumEntries   int64 // size(L) = Σ_v |L(v)|, the paper's labelling size
	AvgLabelSize float64
	MaxLabelSize int

	// SizeBytes is the labelling size under the paper's per-method
	// accounting (what Tables 2-3 report).
	SizeBytes int64
	// BPTrees counts bit-parallel trees (PLL's "+50", FD's "+64").
	BPTrees int

	// Bytes32 and Bytes8 are the highway cover labelling's two
	// accountings (Table 3's "HL" and "HL(8)"); zero for other methods.
	Bytes32 int64
	Bytes8  int64
}

// String renders the stats in the log format the CLIs print. The
// leading fields are format-stable (hlbuild/hlserve output is scripted
// against); the hl=/hl8= accountings appear only where they apply.
func (s Stats) String() string {
	out := fmt.Sprintf("n=%d m=%d k=%d entries=%d als=%.2f maxls=%d",
		s.NumVertices, s.NumEdges, s.NumLandmarks, s.NumEntries, s.AvgLabelSize, s.MaxLabelSize)
	if s.Bytes32 > 0 || s.Bytes8 > 0 {
		out += fmt.Sprintf(" hl=%dB hl8=%dB", s.Bytes32, s.Bytes8)
	} else if s.SizeBytes > 0 {
		out += fmt.Sprintf(" size=%dB", s.SizeBytes)
	}
	return out
}

// Inserter is the optional mutation surface: methods that support
// exact online edge insertion (internal/dynhl, internal/fd) implement
// it in addition to DistanceIndex.
type Inserter interface {
	InsertEdge(u, v int32) error
}
