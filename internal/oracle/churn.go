package oracle

import (
	"fmt"
	"math/rand"
	"testing"

	"highway/internal/graph"
)

// EdgeOp is one churn step: an undirected edge insertion or (Del)
// deletion. It deliberately mirrors dynhl.Op without importing it, so
// the harness stays below every labelling in the dependency graph.
type EdgeOp struct {
	A, B int32
	Del  bool
}

// ChurnConfig tunes CheckChurn. The zero value means 20 batches of 8
// ops, 30% deletions, 50 sampled pairs per batch, seed 1.
type ChurnConfig struct {
	Batches     int     // op batches applied (0 = 20)
	BatchSize   int     // ops per batch (0 = 8)
	DeleteRatio float64 // fraction of ops that delete a live edge (0 = 0.3; negative = none)
	Trials      int     // sampled pairs verified after every batch (0 = 50)
	Seed        int64   // rng seed for ops and pair sampling (0 = 1)
}

func (c *ChurnConfig) defaults() {
	if c.Batches == 0 {
		c.Batches = 20
	}
	if c.BatchSize == 0 {
		c.BatchSize = 8
	}
	if c.DeleteRatio == 0 {
		c.DeleteRatio = 0.3
	} else if c.DeleteRatio < 0 {
		c.DeleteRatio = 0
	}
	if c.Trials == 0 {
		c.Trials = 50
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// churnMirror is the plain-adjacency ground truth the system under test
// is compared against: an edge set with O(1) membership and uniform
// live-edge sampling, rebuilt into a CSR graph for BFS after each
// batch.
type churnMirror struct {
	n    int
	set  map[[2]int32]int // normalized edge -> index in list
	list [][2]int32
}

func newChurnMirror(g *graph.Graph) *churnMirror {
	m := &churnMirror{n: g.NumVertices(), set: make(map[[2]int32]int)}
	for v := int32(0); int(v) < m.n; v++ {
		for _, u := range g.Neighbors(v) {
			if v < u {
				m.add(v, u)
			}
		}
	}
	return m
}

func edgeKey(a, b int32) [2]int32 {
	if a > b {
		a, b = b, a
	}
	return [2]int32{a, b}
}

func (m *churnMirror) add(a, b int32) {
	k := edgeKey(a, b)
	if _, ok := m.set[k]; ok || a == b {
		return
	}
	m.set[k] = len(m.list)
	m.list = append(m.list, k)
}

func (m *churnMirror) remove(a, b int32) {
	k := edgeKey(a, b)
	i, ok := m.set[k]
	if !ok {
		return
	}
	last := len(m.list) - 1
	m.list[i] = m.list[last]
	m.set[m.list[i]] = i
	m.list = m.list[:last]
	delete(m.set, k)
}

func (m *churnMirror) apply(op EdgeOp) {
	if op.Del {
		m.remove(op.A, op.B)
	} else {
		m.add(op.A, op.B)
	}
}

func (m *churnMirror) graph() *graph.Graph {
	return graph.MustFromEdges(m.n, m.list)
}

// generateBatch draws one seeded op batch against the current live edge
// set: deletions pick a uniformly random live edge (so they almost
// always take effect), insertions pick a uniformly random vertex pair
// (occasionally a duplicate or self-loop, exercising the no-op paths).
func (m *churnMirror) generateBatch(rng *rand.Rand, size int, deleteRatio float64) []EdgeOp {
	ops := make([]EdgeOp, 0, size)
	for i := 0; i < size; i++ {
		if rng.Float64() < deleteRatio && len(m.list) > 0 {
			e := m.list[rng.Intn(len(m.list))]
			ops = append(ops, EdgeOp{A: e[0], B: e[1], Del: true})
		} else {
			ops = append(ops, EdgeOp{A: int32(rng.Intn(m.n)), B: int32(rng.Intn(m.n))})
		}
		// The mirror must track within-batch effects, or two deletions
		// in one batch could name the same edge and silently diverge
		// from systems that apply ops in order.
		m.apply(ops[len(ops)-1])
	}
	return ops
}

// DiffChurn drives a seeded mixed insert/delete workload against a
// system under test and differentially checks it after every batch:
// apply receives each op batch (return an error to abort), oracle is
// re-fetched after each apply (systems that publish immutable snapshots
// return the newest one) and compared against BFS ground truth on the
// evolved edge set over cfg.Trials sampled pairs. Returns the first
// divergence, annotated with the batch it appeared after.
func DiffChurn(g *graph.Graph, cfg ChurnConfig,
	apply func(ops []EdgeOp) error, oracle func() Oracle) error {
	cfg.defaults()
	if g.NumVertices() == 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	m := newChurnMirror(g)
	for batch := 0; batch < cfg.Batches; batch++ {
		ops := m.generateBatch(rng, cfg.BatchSize, cfg.DeleteRatio)
		if err := apply(ops); err != nil {
			return fmt.Errorf("oracle: churn batch %d: %w", batch, err)
		}
		truth := m.graph()
		pairs := SampledPairs(m.n, cfg.Trials, cfg.Seed^int64(batch+1))
		if err := Diff(truth, oracle(), pairs); err != nil {
			return fmt.Errorf("oracle: after churn batch %d (%d live edges): %w",
				batch, len(m.list), err)
		}
	}
	return nil
}

// CheckChurn fails the test on the first DiffChurn divergence.
func CheckChurn(t testing.TB, g *graph.Graph, cfg ChurnConfig,
	apply func(ops []EdgeOp) error, oracle func() Oracle) {
	t.Helper()
	if err := DiffChurn(g, cfg, apply, oracle); err != nil {
		t.Fatal(err)
	}
}

// CheckChurnCases runs CheckChurn over the whole corner-case suite:
// build is called once per case with the starting graph and returns
// the apply/oracle hooks (nil apply skips the case). The degenerate
// shapes matter here — churn on a path or star reaches disconnection
// and reconnection states a dense random graph rarely visits.
func CheckChurnCases(t *testing.T, cfg ChurnConfig,
	build func(t *testing.T, g *graph.Graph) (func(ops []EdgeOp) error, func() Oracle)) {
	t.Helper()
	for _, c := range CornerCases() {
		t.Run(c.Name, func(t *testing.T) {
			apply, oracle := build(t, c.Graph)
			if apply == nil {
				t.Skip("builder declined this case")
			}
			CheckChurn(t, c.Graph, cfg, apply, oracle)
		})
	}
}
