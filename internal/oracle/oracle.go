// Package oracle is a shared differential-testing harness for exact
// distance oracles: it checks any Distance(s,t) int32 implementation
// against plain BFS ground truth on deterministic seeded generator
// graphs. Every index method in this repo (core, pll, fd, isl, dynhl)
// wires its correctness tests through this package instead of hand-rolled
// BFS comparison loops, so all methods are held to one oracle-backed
// standard and new methods get the full corner-case suite for free.
//
// Conventions: distances are hop counts; disconnected pairs are -1
// (bfs.Unreachable == core.Infinity, so implementations that return
// either constant compare correctly).
package oracle

import (
	"fmt"
	"math/rand"
	"testing"

	"highway/internal/bfs"
	"highway/internal/gen"
	"highway/internal/graph"
	"highway/internal/method"
)

// Oracle is the implementation under test: an exact distance oracle over
// a fixed graph.
type Oracle interface {
	Distance(s, t int32) int32
}

// Func adapts a plain function to Oracle.
type Func func(s, t int32) int32

// Distance implements Oracle.
func (f Func) Distance(s, t int32) int32 { return f(s, t) }

// Case is one named deterministic test graph.
type Case struct {
	Name  string
	Graph *graph.Graph
}

// CornerCases returns the deterministic corner-case suite: degenerate
// shapes (path, cycle, star), structured shapes (grid, complete), the
// paper's running example, and disconnected graphs — the inputs that
// historically break landmark-based oracles (empty labels, Infinity
// highway cells, diameter > 255 escapes elsewhere).
func CornerCases() []Case {
	return []Case{
		{"path10", gen.Path(10)},
		{"cycle9", gen.Cycle(9)},
		{"star12", gen.Star(12)},
		{"grid4x5", gen.Grid(4, 5)},
		{"complete6", gen.Complete(6)},
		{"figure2", gen.PaperFigure2()},
		{"disconnected", graph.MustFromEdges(8, [][2]int32{{0, 1}, {0, 2}, {0, 3}, {0, 4}, {5, 6}, {6, 7}})},
		{"isolated", graph.MustFromEdges(5, [][2]int32{{0, 1}, {1, 2}})},
	}
}

// RandomCase returns a seeded random graph drawn from the generator
// families the paper evaluates (Barabási–Albert, Erdős–Rényi, R-MAT,
// Watts–Strogatz). Deterministic per seed.
func RandomCase(seed int64) Case {
	rng := rand.New(rand.NewSource(seed))
	switch rng.Intn(4) {
	case 0:
		return Case{fmt.Sprintf("ba/%d", seed), gen.BarabasiAlbert(60+rng.Intn(80), 1+rng.Intn(3), seed)}
	case 1:
		return Case{fmt.Sprintf("er/%d", seed), gen.ErdosRenyi(50+rng.Intn(60), int64(80+rng.Intn(200)), seed)}
	case 2:
		return Case{fmt.Sprintf("rmat/%d", seed), gen.RMAT(6, 4, 0.57, 0.19, 0.19, seed)}
	default:
		return Case{fmt.Sprintf("ws/%d", seed), gen.WattsStrogatz(50+rng.Intn(60), 2, 0.3, seed)}
	}
}

// AllPairs returns every ordered pair over n vertices.
func AllPairs(n int) [][2]int32 {
	pairs := make([][2]int32, 0, n*n)
	for s := int32(0); int(s) < n; s++ {
		for t := int32(0); int(t) < n; t++ {
			pairs = append(pairs, [2]int32{s, t})
		}
	}
	return pairs
}

// SampledPairs returns `trials` seeded uniform pairs over n vertices.
func SampledPairs(n, trials int, seed int64) [][2]int32 {
	rng := rand.New(rand.NewSource(seed))
	pairs := make([][2]int32, trials)
	for i := range pairs {
		pairs[i] = [2]int32{int32(rng.Intn(n)), int32(rng.Intn(n))}
	}
	return pairs
}

// Diff compares the oracle against BFS ground truth on the given pairs
// and returns an error describing the first mismatch, or nil. Ground
// truth is computed once per distinct source with a full BFS into one
// reused buffer (the BFS itself draws scratch from the engine pool), so
// checking all pairs of a small graph costs n BFS runs and one distance
// array, not n² runs and n arrays.
func Diff(g *graph.Graph, o Oracle, pairs [][2]int32) error {
	var truth []int32
	truthSrc := int32(-1)
	for _, p := range pairs {
		s, t := p[0], p[1]
		want := int32(0)
		if s != t {
			if truthSrc != s {
				truth = bfs.DistancesReuse(g, s, truth)
				truthSrc = s
			}
			want = truth[t]
		}
		if got := o.Distance(s, t); got != want {
			return fmt.Errorf("oracle: Distance(%d,%d) = %d, BFS says %d", s, t, got, want)
		}
	}
	return nil
}

// CheckAllPairs fails the test unless the oracle matches BFS on every
// ordered pair of g. Intended for small graphs (n² pairs, n BFS runs).
func CheckAllPairs(t testing.TB, g *graph.Graph, o Oracle) {
	t.Helper()
	if err := Diff(g, o, AllPairs(g.NumVertices())); err != nil {
		t.Fatal(err)
	}
}

// CheckSampled fails the test unless the oracle matches BFS on `trials`
// seeded random pairs of g.
func CheckSampled(t testing.TB, g *graph.Graph, o Oracle, trials int, seed int64) {
	t.Helper()
	if g.NumVertices() == 0 {
		return
	}
	if err := Diff(g, o, SampledPairs(g.NumVertices(), trials, seed)); err != nil {
		t.Fatal(err)
	}
}

// CheckCases runs the corner-case suite: build is called once per case
// and the returned oracle is verified on all pairs. Returning a nil
// oracle skips the case (e.g. a method that cannot be configured for that
// graph).
func CheckCases(t *testing.T, build func(t *testing.T, g *graph.Graph) Oracle) {
	t.Helper()
	for _, c := range CornerCases() {
		t.Run(c.Name, func(t *testing.T) {
			o := build(t, c.Graph)
			if o == nil {
				t.Skip("builder declined this case")
			}
			CheckAllPairs(t, c.Graph, o)
		})
	}
}

// DiffIndex checks a DistanceIndex against BFS ground truth on the
// given pairs, through every query surface of the interface contract:
//
//   - Index.Distance and a NewSearcher searcher must both match BFS;
//   - UpperBound (index and searcher forms) must be admissible: never
//     below the true distance, Infinity only when the pair is
//     disconnected (a disconnected pair has no finite bound to report);
//   - Stats must agree with the graph on the vertex count.
//
// This is the method-agnostic differential check every registered
// method is held to (the root package's method tests run it over the
// corner-case suite), so a new method gets the full suite by
// implementing the interface.
func DiffIndex(g *graph.Graph, ix method.DistanceIndex, pairs [][2]int32) error {
	if st := ix.Stats(); st.NumVertices != g.NumVertices() {
		return fmt.Errorf("oracle: Stats().NumVertices = %d, graph has %d", st.NumVertices, g.NumVertices())
	}
	sr := ix.NewSearcher()
	var truth []int32
	truthSrc := int32(-1)
	for _, p := range pairs {
		s, t := p[0], p[1]
		want := int32(0)
		if s != t {
			if truthSrc != s {
				truth = bfs.DistancesReuse(g, s, truth)
				truthSrc = s
			}
			want = truth[t]
		}
		if got := ix.Distance(s, t); got != want {
			return fmt.Errorf("oracle: Distance(%d,%d) = %d, BFS says %d", s, t, got, want)
		}
		if got := sr.Distance(s, t); got != want {
			return fmt.Errorf("oracle: Searcher.Distance(%d,%d) = %d, BFS says %d", s, t, got, want)
		}
		for name, ub := range map[string]int32{
			"UpperBound":          ix.UpperBound(s, t),
			"Searcher.UpperBound": sr.UpperBound(s, t),
		} {
			if want < 0 {
				if ub >= 0 {
					return fmt.Errorf("oracle: %s(%d,%d) = %d for a disconnected pair", name, s, t, ub)
				}
			} else if ub >= 0 && ub < want {
				return fmt.Errorf("oracle: %s(%d,%d) = %d below the true distance %d", name, s, t, ub, want)
			}
		}
	}
	return nil
}

// CheckIndexCases runs the corner-case suite against a DistanceIndex
// builder: build is called once per case and the returned index is
// verified on all pairs with DiffIndex. Returning nil skips the case.
func CheckIndexCases(t *testing.T, build func(t *testing.T, g *graph.Graph) method.DistanceIndex) {
	t.Helper()
	for _, c := range CornerCases() {
		t.Run(c.Name, func(t *testing.T) {
			ix := build(t, c.Graph)
			if ix == nil {
				t.Skip("builder declined this case")
			}
			if err := DiffIndex(c.Graph, ix, AllPairs(c.Graph.NumVertices())); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// CheckRandom property-checks the oracle across `rounds` seeded random
// generator graphs, sampling `trials` pairs per graph. The build callback
// may return an error to fail the round.
func CheckRandom(t *testing.T, rounds, trials int, build func(seed int64, g *graph.Graph) (Oracle, error)) {
	t.Helper()
	for seed := int64(0); seed < int64(rounds); seed++ {
		c := RandomCase(seed)
		o, err := build(seed, c.Graph)
		if err != nil {
			t.Fatalf("%s: build: %v", c.Name, err)
		}
		if o == nil {
			continue
		}
		if err := Diff(c.Graph, o, SampledPairs(c.Graph.NumVertices(), trials, seed)); err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
	}
}
