package oracle

import (
	"strings"
	"testing"

	"highway/internal/bfs"
	"highway/internal/gen"
)

// TestBFSPassesItself: the harness must accept a trivially correct oracle
// (BFS checked against BFS) on every corner case and random family.
func TestBFSPassesItself(t *testing.T) {
	for _, c := range CornerCases() {
		g := c.Graph
		o := Func(func(s, u int32) int32 { return bfs.Dist(g, s, u) })
		if err := Diff(g, o, AllPairs(g.NumVertices())); err != nil {
			t.Errorf("%s: %v", c.Name, err)
		}
	}
	for seed := int64(0); seed < 6; seed++ {
		c := RandomCase(seed)
		g := c.Graph
		o := Func(func(s, u int32) int32 { return bfs.Dist(g, s, u) })
		if err := Diff(g, o, SampledPairs(g.NumVertices(), 50, seed)); err != nil {
			t.Errorf("%s: %v", c.Name, err)
		}
	}
}

// TestDetectsOffByOne: a subtly wrong oracle must be caught.
func TestDetectsOffByOne(t *testing.T) {
	g := gen.Path(10)
	broken := Func(func(s, u int32) int32 {
		d := bfs.Dist(g, s, u)
		if d > 3 {
			d++ // inflate long distances only
		}
		return d
	})
	err := Diff(g, broken, AllPairs(g.NumVertices()))
	if err == nil {
		t.Fatal("off-by-one oracle passed the harness")
	}
	if !strings.Contains(err.Error(), "BFS says") {
		t.Fatalf("unhelpful mismatch message: %v", err)
	}
}

// TestDetectsWrongDisconnected: reporting a finite distance across
// components must be caught.
func TestDetectsWrongDisconnected(t *testing.T) {
	var disc Case
	for _, c := range CornerCases() {
		if c.Name == "disconnected" {
			disc = c
		}
	}
	g := disc.Graph
	broken := Func(func(s, u int32) int32 {
		d := bfs.Dist(g, s, u)
		if d == bfs.Unreachable {
			return 7
		}
		return d
	})
	if err := Diff(g, broken, AllPairs(g.NumVertices())); err == nil {
		t.Fatal("oracle inventing paths across components passed")
	}
}

// TestDeterministicCases: suites and samplers must be reproducible, since
// five packages' tests key off them.
func TestDeterministicCases(t *testing.T) {
	a, b := RandomCase(3), RandomCase(3)
	if a.Name != b.Name || a.Graph.NumVertices() != b.Graph.NumVertices() || a.Graph.NumEdges() != b.Graph.NumEdges() {
		t.Fatal("RandomCase not deterministic per seed")
	}
	p, q := SampledPairs(50, 20, 9), SampledPairs(50, 20, 9)
	for i := range p {
		if p[i] != q[i] {
			t.Fatal("SampledPairs not deterministic per seed")
		}
	}
	if n := len(AllPairs(7)); n != 49 {
		t.Fatalf("AllPairs(7) = %d pairs, want 49", n)
	}
}
