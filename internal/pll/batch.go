package pll

import (
	"math"
	"slices"

	"highway/internal/bptree"
	"highway/internal/method"
)

// PLL opts into the vectorized batch capabilities: its 2-hop query is a
// sorted-label merge, and when many pairs share a source the source
// side of the merge collapses into a hub-stamp array — δ(h, source) for
// every hub h in L(source), indexed by hub rank — after which each
// target is a single probe pass over its own label instead of a merge.
// This is the same load/probe/reset idiom the pruned BFS in Build uses
// for its pruning queries. The probe inspects exactly the common-hub
// set the merge inspects, so batched answers are identical to
// pair-at-a-time answers (the root differential suite pins this).
var (
	_ method.BatchSearcher  = (*Searcher)(nil)
	_ method.SourceSearcher = (*Searcher)(nil)
)

// DistanceMany answers one-source-to-many 2-hop queries; dst[i] answers
// (source, targets[i]) exactly as Distance would. dst is reused when it
// has the capacity and may be nil.
func (sr *Searcher) DistanceMany(source int32, targets []int32, dst []int32) []int32 {
	dst = batchDst(dst, len(targets))
	if len(targets) == 0 {
		return dst
	}
	perm := sr.permBuf(len(targets))
	slices.SortFunc(perm, func(a, b int32) int {
		ta, tb := targets[a], targets[b]
		switch {
		case ta < tb:
			return -1
		case ta > tb:
			return 1
		}
		return 0
	})
	sr.runGroup(source, perm, func(i int32) int32 { return targets[i] }, dst)
	return dst
}

// DistanceBatch answers len(pairs) independent 2-hop queries, grouping
// pairs by source so each group shares one hub-stamp load. dst is
// reused when it has the capacity and may be nil.
func (sr *Searcher) DistanceBatch(pairs [][2]int32, dst []int32) []int32 {
	dst = batchDst(dst, len(pairs))
	if len(pairs) == 0 {
		return dst
	}
	perm := sr.permBuf(len(pairs))
	slices.SortFunc(perm, func(a, b int32) int {
		pa, pb := pairs[a], pairs[b]
		switch {
		case pa[0] != pb[0]:
			if pa[0] < pb[0] {
				return -1
			}
			return 1
		case pa[1] < pb[1]:
			return -1
		case pa[1] > pb[1]:
			return 1
		}
		return 0
	})
	for lo := 0; lo < len(perm); {
		src := pairs[perm[lo]][0]
		hi := lo + 1
		for hi < len(perm) && pairs[perm[hi]][0] == src {
			hi++
		}
		sr.runGroup(src, perm[lo:hi], func(i int32) int32 { return pairs[i][1] }, dst)
		lo = hi
	}
	return dst
}

// runGroup answers every query (source, tof(i)) for i in perm. perm is
// sorted by target, so duplicate targets are answered once and label
// reads walk the flat CSR sequentially.
func (sr *Searcher) runGroup(source int32, perm []int32, tof func(int32) int32, dst []int32) {
	ix := sr.ix
	if len(perm) == 1 {
		dst[perm[0]] = ix.Distance(source, tof(perm[0]))
		return
	}
	hub := sr.hubBuf()
	slo, shi := ix.labelOff[source], ix.labelOff[source+1]
	for p := slo; p < shi; p++ {
		hub[ix.labelRank[p]] = ix.labelDist[p]
	}
	prevT := int32(-1)
	var prevD int32
	for _, i := range perm {
		t := tof(i)
		switch {
		case t == source:
			dst[i] = 0
			continue
		case t == prevT:
			dst[i] = prevD
			continue
		}
		best := bptree.MinQuery(ix.bp, source, t)
		for p := ix.labelOff[t]; p < ix.labelOff[t+1]; p++ {
			if hd := hub[ix.labelRank[p]]; hd != math.MaxInt32 {
				if d := hd + ix.labelDist[p]; d < best {
					best = d
				}
			}
		}
		if best == math.MaxInt32 {
			best = Infinity
		}
		dst[i] = best
		prevT, prevD = t, best
	}
	// Restore the all-unloaded invariant.
	for p := slo; p < shi; p++ {
		hub[ix.labelRank[p]] = math.MaxInt32
	}
}

// batchDst returns dst resized to n answers, reallocating only when the
// capacity is short.
func batchDst(dst []int32, n int) []int32 {
	if cap(dst) < n {
		return make([]int32, n)
	}
	return dst[:n]
}

// permBuf returns the searcher's index-permutation buffer initialized
// to the identity over n entries.
func (sr *Searcher) permBuf(n int) []int32 {
	if cap(sr.perm) < n {
		sr.perm = make([]int32, n)
	}
	perm := sr.perm[:n]
	for i := range perm {
		perm[i] = int32(i)
	}
	return perm
}

// hubBuf returns the searcher's hub-stamp array, lazily sized to the
// root count and kept at MaxInt32 (unloaded) between groups.
func (sr *Searcher) hubBuf() []int32 {
	if cap(sr.hubDist) < len(sr.ix.order) {
		sr.hubDist = make([]int32, len(sr.ix.order))
		for i := range sr.hubDist {
			sr.hubDist[i] = math.MaxInt32
		}
	}
	return sr.hubDist[:len(sr.ix.order)]
}
