package pll

import (
	"context"
	"math"

	"highway/internal/bptree"
	"highway/internal/graph"
)

// Bit-parallel PLL: the paper's experiments run PLL with 50 bit-parallel
// trees ("the number of bit-parallel BFSs is set to 50 for PLL",
// Section 6.2). See internal/bptree for the tree construction and query.
// BP labels are upper bounds used both as a pruning oracle during
// construction and as extra hubs at query time.

// BuildBP constructs a PLL index with nBP bit-parallel trees rooted at the
// highest-degree vertices followed by the standard pruned BFS over the
// full degree order.
func BuildBP(ctx context.Context, g *graph.Graph, nBP int) (*Index, error) {
	n := g.NumVertices()
	order := g.DegreeOrder()
	if nBP > len(order) {
		nBP = len(order)
	}
	used := make([]bool, n)
	trees := make([]*bptree.Tree, 0, nBP)
	for i := 0; i < len(order) && len(trees) < nBP; i++ {
		if used[order[i]] {
			continue
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		trees = append(trees, bptree.Build(g, order[i], used))
	}
	ix, err := buildRootsWithBP(ctx, g, order, trees)
	if err != nil {
		return nil, err
	}
	ix.bp = trees
	return ix, nil
}

// buildRootsWithBP is BuildRoots with BP-augmented pruning: a vertex is
// pruned when either the normal 2-hop labels or a BP tree already certify
// the distance.
func buildRootsWithBP(ctx context.Context, g *graph.Graph, roots []int32, trees []*bptree.Tree) (*Index, error) {
	n := g.NumVertices()
	rankOf := make([]int32, n)
	for i := range rankOf {
		rankOf[i] = -1
	}
	for i, v := range roots {
		rankOf[v] = int32(i)
	}
	labels := make([][]entry, n)
	hubDist := make([]int32, len(roots))
	for i := range hubDist {
		hubDist[i] = math.MaxInt32
	}
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = -1
	}
	frontier := make([]int32, 0, 1024)
	next := make([]int32, 0, 1024)
	visited := make([]int32, 0, 1024)

	for ri, root := range roots {
		if ri%64 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		for _, e := range labels[root] {
			hubDist[e.rank] = e.dist
		}
		frontier = append(frontier[:0], root)
		dist[root] = 0
		visited = append(visited[:0], root)
		for d := int32(0); len(frontier) > 0; d++ {
			next = next[:0]
			for _, u := range frontier {
				if query2hop(labels[u], hubDist) <= d || bptree.MinQuery(trees, root, u) <= d {
					continue
				}
				labels[u] = append(labels[u], entry{rank: int32(ri), dist: d})
				for _, v := range g.Neighbors(u) {
					if dist[v] < 0 {
						dist[v] = d + 1
						visited = append(visited, v)
						next = append(next, v)
					}
				}
			}
			frontier, next = next, frontier
		}
		for _, e := range labels[root] {
			hubDist[e.rank] = math.MaxInt32
		}
		for _, v := range visited {
			dist[v] = -1
		}
	}
	return pack(g, roots, rankOf, labels), nil
}
