package pll

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"highway/internal/bfs"
	"highway/internal/gen"
	"highway/internal/graph"
)

// Tree-level mask/bound tests live in internal/bptree; these tests cover
// the BP-augmented PLL index.

// TestBuildBPExact: the BP-augmented full index answers every pair
// exactly on assorted graphs.
func TestBuildBPExact(t *testing.T) {
	cases := []*graph.Graph{
		gen.PaperFigure2(),
		gen.Path(15),
		gen.Grid(4, 5),
		gen.Star(12),
		graph.MustFromEdges(6, [][2]int32{{0, 1}, {1, 2}, {3, 4}}),
	}
	for _, g := range cases {
		for _, nbp := range []int{1, 3} {
			ix, err := BuildBP(context.Background(), g, nbp)
			if err != nil {
				t.Fatal(err)
			}
			n := int32(g.NumVertices())
			for s := int32(0); s < n; s++ {
				want := bfs.Distances(g, s)
				for u := int32(0); u < n; u++ {
					w := want[u]
					if w == bfs.Unreachable {
						w = Infinity
					}
					if got := ix.Distance(s, u); got != w {
						t.Fatalf("nbp=%d: Distance(%d,%d) = %d, want %d", nbp, s, u, got, w)
					}
				}
			}
		}
	}
}

func TestBuildBPRandomProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := gen.BarabasiAlbert(70+rng.Intn(80), 1+rng.Intn(3), seed)
		ix, err := BuildBP(context.Background(), g, 1+rng.Intn(5))
		if err != nil {
			return false
		}
		for trial := 0; trial < 50; trial++ {
			s := int32(rng.Intn(g.NumVertices()))
			u := int32(rng.Intn(g.NumVertices()))
			want := bfs.Dist(g, s, u)
			if want == bfs.Unreachable {
				want = Infinity
			}
			if ix.Distance(s, u) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestBPShrinksLabels: BP trees absorb hub coverage, so the normal label
// count must not grow (and typically shrinks a lot on hub-heavy graphs).
func TestBPShrinksLabels(t *testing.T) {
	g := gen.BarabasiAlbert(800, 4, 3)
	plain, err := Build(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	bp, err := BuildBP(context.Background(), g, 8)
	if err != nil {
		t.Fatal(err)
	}
	if bp.NumEntries() >= plain.NumEntries() {
		t.Fatalf("BP entries %d ≥ plain entries %d", bp.NumEntries(), plain.NumEntries())
	}
	if bp.NumBPTrees() != 8 {
		t.Fatalf("trees = %d", bp.NumBPTrees())
	}
	if bp.SizeBytes() <= bp.NumEntries()*5 {
		t.Fatal("BP size accounting ignores trees")
	}
}

func TestBuildBPCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := BuildBP(ctx, gen.BarabasiAlbert(2000, 3, 1), 4); err == nil {
		t.Fatal("cancelled context ignored")
	}
}
