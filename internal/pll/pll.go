// Package pll implements the Pruned Landmark Labelling baseline (Akiba,
// Iwata, Yoshida, SIGMOD 2013), the 2-hop-cover method the paper compares
// against in Tables 2-3 and Figures 1 and 4.
//
// PLL performs one pruned BFS per vertex in a fixed labelling order
// (decreasing degree). The BFS from the i-th vertex r prunes a visited
// vertex u at distance d whenever the 2-hop query over the labels built by
// the previous i-1 BFSs already certifies d(r,u) ≤ d; otherwise it adds
// the entry (r, d) to L(u) and keeps expanding. The result is a 2-hop
// cover: d(s,t) = min over common hubs h of δ(h,s)+δ(h,t).
//
// Unlike the highway cover labelling, PLL's size depends on the labelling
// order (the paper's Figure 4 shows 25 vs 30 entries for two orders of the
// same three roots; TestPaperFigure4 reproduces both numbers exactly).
//
// The original implementation adds 50 bit-parallel BFS trees; BuildBP
// implements them (see bitparallel.go), matching the paper's PLL
// configuration. Build constructs the plain variant.
package pll

import (
	"context"
	"fmt"
	"math"

	"highway/internal/bptree"
	"highway/internal/graph"
	"highway/internal/method"
)

// PLL implements the method-agnostic index contract; see internal/method.
var _ method.DistanceIndex = (*Index)(nil)

// Infinity is the distance reported between disconnected vertices.
const Infinity int32 = -1

// Index is a 2-hop-cover pruned landmark labelling.
//
// Label entries are stored in CSR form sorted by hub rank (the position of
// the hub in the labelling order); ranks are int32 because PLL hubs range
// over all vertices.
type Index struct {
	g      *graph.Graph
	order  []int32 // rank -> vertex
	rankOf []int32 // vertex -> rank (-1 if vertex was not a BFS root)

	labelOff  []int64
	labelRank []int32
	labelDist []int32

	bp []*bptree.Tree // bit-parallel trees (BuildBP); nil for plain builds

	full bool // whether every vertex was a root (index answers all pairs)
}

// Build constructs the full PLL index using the decreasing-degree
// labelling order, checking ctx between pruned BFSs.
func Build(ctx context.Context, g *graph.Graph) (*Index, error) {
	return BuildRoots(ctx, g, g.DegreeOrder())
}

// BuildRoots constructs a pruned landmark labelling whose BFS roots are
// exactly roots, in the given order. When roots covers every vertex the
// index is a complete 2-hop cover and Distance is exact; with fewer roots
// Distance returns the best 2-hop upper bound through the roots (used by
// the Figure 4 reproduction and the labelling-size comparison against HL,
// Corollary 3.14).
func BuildRoots(ctx context.Context, g *graph.Graph, roots []int32) (*Index, error) {
	n := g.NumVertices()
	if len(roots) == 0 {
		return nil, fmt.Errorf("pll: no roots")
	}
	rankOf := make([]int32, n)
	for i := range rankOf {
		rankOf[i] = -1
	}
	for i, v := range roots {
		if v < 0 || int(v) >= n {
			return nil, fmt.Errorf("pll: root %d out of range [0,%d)", v, n)
		}
		if rankOf[v] >= 0 {
			return nil, fmt.Errorf("pll: duplicate root %d", v)
		}
		rankOf[v] = int32(i)
	}

	// Growing per-vertex labels; packed into CSR at the end.
	labels := make([][]entry, n)

	// Pruning-query scratch: hubDist[h] = δ(h, root) for hubs h in the
	// current root's label, else +inf.
	hubDist := make([]int32, len(roots))
	for i := range hubDist {
		hubDist[i] = math.MaxInt32
	}
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = -1
	}
	frontier := make([]int32, 0, 1024)
	next := make([]int32, 0, 1024)
	visited := make([]int32, 0, 1024)

	for ri, root := range roots {
		if ri%64 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		// Load the root's current label into hubDist.
		for _, e := range labels[root] {
			hubDist[e.rank] = e.dist
		}
		frontier = append(frontier[:0], root)
		dist[root] = 0
		visited = append(visited[:0], root)
		for d := int32(0); len(frontier) > 0; d++ {
			next = next[:0]
			for _, u := range frontier {
				// Prune if the existing 2-hop labels already cover
				// d(root,u) ≤ d.
				if query2hop(labels[u], hubDist) <= d {
					continue
				}
				labels[u] = append(labels[u], entry{rank: int32(ri), dist: d})
				for _, v := range g.Neighbors(u) {
					if dist[v] < 0 {
						dist[v] = d + 1
						visited = append(visited, v)
						next = append(next, v)
					}
				}
			}
			frontier, next = next, frontier
		}
		// Reset scratch.
		for _, e := range labels[root] {
			hubDist[e.rank] = math.MaxInt32
		}
		for _, v := range visited {
			dist[v] = -1
		}
	}

	return pack(g, roots, rankOf, labels), nil
}

type entry struct {
	rank int32
	dist int32
}

// query2hop returns the best 2-hop distance between the current root
// (whose label is loaded in hubDist) and the vertex with label l.
func query2hop(l []entry, hubDist []int32) int32 {
	best := int32(math.MaxInt32)
	for _, e := range l {
		if hd := hubDist[e.rank]; hd != math.MaxInt32 {
			if d := hd + e.dist; d < best {
				best = d
			}
		}
	}
	return best
}

func pack(g *graph.Graph, roots []int32, rankOf []int32, labels [][]entry) *Index {
	n := g.NumVertices()
	off := make([]int64, n+1)
	for v := 0; v < n; v++ {
		off[v+1] = off[v] + int64(len(labels[v]))
	}
	ix := &Index{
		g:         g,
		order:     roots,
		rankOf:    rankOf,
		labelOff:  off,
		labelRank: make([]int32, off[n]),
		labelDist: make([]int32, off[n]),
		full:      len(roots) == n,
	}
	for v := 0; v < n; v++ {
		base := off[v]
		for i, e := range labels[v] {
			ix.labelRank[base+int64(i)] = e.rank
			ix.labelDist[base+int64(i)] = e.dist
		}
	}
	return ix
}

// Distance returns the 2-hop-cover distance between s and t: exact when
// the index was built over all vertices, otherwise the best bound through
// the roots (Infinity if the labels share no hub).
func (ix *Index) Distance(s, t int32) int32 {
	if s == t {
		return 0
	}
	i, iEnd := ix.labelOff[s], ix.labelOff[s+1]
	j, jEnd := ix.labelOff[t], ix.labelOff[t+1]
	best := bptree.MinQuery(ix.bp, s, t)
	for i < iEnd && j < jEnd {
		ri, rj := ix.labelRank[i], ix.labelRank[j]
		switch {
		case ri == rj:
			if d := ix.labelDist[i] + ix.labelDist[j]; d < best {
				best = d
			}
			i++
			j++
		case ri < rj:
			i++
		default:
			j++
		}
	}
	if best == math.MaxInt32 {
		return Infinity
	}
	return best
}

// UpperBound returns the best 2-hop distance through the labels — for
// PLL that IS the query (Distance), exact on full covers, hence always
// an admissible bound.
func (ix *Index) UpperBound(s, t int32) int32 { return ix.Distance(s, t) }

// Searcher adapts the index to the per-goroutine searcher contract.
// Single-pair queries are allocation-free merges over immutable arrays;
// the scratch fields serve the vectorized batch path (see batch.go):
// hubDist is the source's label stamped by hub rank (kept at MaxInt32
// between groups), perm the batch sort permutation. Like every
// Searcher, one per goroutine.
type Searcher struct {
	ix      *Index
	hubDist []int32
	perm    []int32
}

// Distance returns the 2-hop-cover distance (see Index.Distance).
func (sr *Searcher) Distance(s, t int32) int32 { return sr.ix.Distance(s, t) }

// UpperBound returns the 2-hop bound (== Distance for PLL).
func (sr *Searcher) UpperBound(s, t int32) int32 { return sr.ix.Distance(s, t) }

// NewSearcher returns a query searcher bound to the index.
func (ix *Index) NewSearcher() method.Searcher { return &Searcher{ix: ix} }

// Stats summarizes the index (method-agnostic form).
func (ix *Index) Stats() method.Stats {
	n := ix.g.NumVertices()
	maxLS := 0
	for v := 0; v < n; v++ {
		if ls := ix.LabelSize(int32(v)); ls > maxLS {
			maxLS = ls
		}
	}
	return method.Stats{
		Method:       "pll",
		NumVertices:  n,
		NumEdges:     ix.g.NumEdges(),
		NumLandmarks: len(ix.order),
		NumEntries:   ix.NumEntries(),
		AvgLabelSize: ix.AvgLabelSize(),
		MaxLabelSize: maxLS,
		SizeBytes:    ix.SizeBytes(),
		BPTrees:      len(ix.bp),
	}
}

// Full reports whether the index is a complete 2-hop cover (every vertex
// was a BFS root), i.e. Distance is exact for all pairs.
func (ix *Index) Full() bool { return ix.full }

// NumEntries returns size(L) = Σ_v |L(v)| (the LS measure of Figure 4).
func (ix *Index) NumEntries() int64 { return ix.labelOff[len(ix.labelOff)-1] }

// LabelSize returns |L(v)|.
func (ix *Index) LabelSize(v int32) int {
	return int(ix.labelOff[v+1] - ix.labelOff[v])
}

// AvgLabelSize returns the average entries per vertex (Table 2's ALS).
func (ix *Index) AvgLabelSize() float64 {
	if ix.g.NumVertices() == 0 {
		return 0
	}
	return float64(ix.NumEntries()) / float64(ix.g.NumVertices())
}

// SizeBytes reports the labelling size under the paper's accounting for
// PLL: 32-bit vertex ids + 8-bit distances per entry (Section 5.2), plus
// 8+8+1 bytes per vertex per bit-parallel tree (two 64-bit masks and an
// 8-bit distance).
func (ix *Index) SizeBytes() int64 {
	return ix.NumEntries()*5 + int64(len(ix.bp))*int64(ix.g.NumVertices())*17
}

// NumBPTrees returns the number of bit-parallel trees (0 for plain
// builds).
func (ix *Index) NumBPTrees() int { return len(ix.bp) }
