package pll

import (
	"context"
	"math/rand"
	"testing"

	"highway/internal/bfs"
	"highway/internal/gen"
	"highway/internal/graph"
	"highway/internal/oracle"
)

// TestPaperFigure4 reproduces the paper's Figure 4: on the running-example
// graph, PLL restricted to roots {1,5,9} yields labelling size 25 with
// order ⟨1,5,9⟩ and 30 with order ⟨9,5,1⟩ — demonstrating PLL's order
// dependence (and, against HL's 13, Corollary 3.14's size dominance).
func TestPaperFigure4(t *testing.T) {
	g := gen.PaperFigure2()
	ctx := context.Background()

	ix1, err := BuildRoots(ctx, g, []int32{0, 4, 8}) // ⟨1,5,9⟩
	if err != nil {
		t.Fatal(err)
	}
	if ix1.NumEntries() != 25 {
		t.Fatalf("order ⟨1,5,9⟩: LS = %d, want 25", ix1.NumEntries())
	}

	ix2, err := BuildRoots(ctx, g, []int32{8, 4, 0}) // ⟨9,5,1⟩
	if err != nil {
		t.Fatal(err)
	}
	if ix2.NumEntries() != 30 {
		t.Fatalf("order ⟨9,5,1⟩: LS = %d, want 30", ix2.NumEntries())
	}

	// Example 3.10: vertex 11 (id 10) has one entry under the first order
	// and three under the second.
	if got := ix1.LabelSize(10); got != 1 {
		t.Fatalf("|L(11)| under ⟨1,5,9⟩ = %d, want 1", got)
	}
	if got := ix2.LabelSize(10); got != 3 {
		t.Fatalf("|L(11)| under ⟨9,5,1⟩ = %d, want 3", got)
	}
	if ix1.Full() || ix2.Full() {
		t.Fatal("partial index claims to be full")
	}
}

// TestFullPLLExact checks the complete index answers every pair exactly on
// the shared corner-case suite.
func TestFullPLLExact(t *testing.T) {
	oracle.CheckCases(t, func(t *testing.T, g *graph.Graph) oracle.Oracle {
		ix, err := Build(context.Background(), g)
		if err != nil {
			t.Fatal(err)
		}
		if !ix.Full() {
			t.Fatal("full build not marked full")
		}
		return oracle.Func(ix.Distance)
	})
}

// TestRandomGraphsProperty: full PLL equals BFS on random graphs of every
// generator family.
func TestRandomGraphsProperty(t *testing.T) {
	oracle.CheckRandom(t, 25, 50, func(seed int64, g *graph.Graph) (oracle.Oracle, error) {
		ix, err := Build(context.Background(), g)
		if err != nil {
			return nil, err
		}
		return oracle.Func(ix.Distance), nil
	})
}

// TestPartialIndexIsUpperBound: with a subset of roots, Distance is an
// upper bound that is exact whenever a root lies on a shortest path.
func TestPartialIndexIsUpperBound(t *testing.T) {
	g := gen.BarabasiAlbert(200, 3, 5)
	roots := g.DegreeOrder()[:8]
	ix, err := BuildRoots(context.Background(), g, roots)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		s := int32(rng.Intn(200))
		u := int32(rng.Intn(200))
		d := bfs.Dist(g, s, u)
		got := ix.Distance(s, u)
		if got != Infinity && got < d {
			t.Fatalf("partial PLL below true distance: (%d,%d) got %d want ≥ %d", s, u, got, d)
		}
	}
}

func TestBuildRootsErrors(t *testing.T) {
	g := gen.Path(4)
	ctx := context.Background()
	if _, err := BuildRoots(ctx, g, nil); err == nil {
		t.Error("empty roots accepted")
	}
	if _, err := BuildRoots(ctx, g, []int32{0, 0}); err == nil {
		t.Error("duplicate root accepted")
	}
	if _, err := BuildRoots(ctx, g, []int32{9}); err == nil {
		t.Error("out-of-range root accepted")
	}
}

func TestBuildCancellation(t *testing.T) {
	g := gen.BarabasiAlbert(2000, 3, 2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Build(ctx, g); err == nil {
		t.Error("cancelled context ignored")
	}
}

func TestAccounting(t *testing.T) {
	g := gen.PaperFigure2()
	ix, err := BuildRoots(context.Background(), g, []int32{0, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	if ix.SizeBytes() != 25*5 {
		t.Fatalf("SizeBytes = %d, want 125", ix.SizeBytes())
	}
	if als := ix.AvgLabelSize(); als != 25.0/14.0 {
		t.Fatalf("ALS = %v", als)
	}
}

// TestSizeDominatesHL is checked in the core package against HL directly;
// here we pin down PLL's own invariant: every vertex's label contains its
// own entry when it is a root and labels are rank-sorted.
func TestLabelInvariants(t *testing.T) {
	g := gen.BarabasiAlbert(150, 2, 9)
	ix, err := Build(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	for v := int32(0); v < int32(g.NumVertices()); v++ {
		lo, hi := ix.labelOff[v], ix.labelOff[v+1]
		if hi == lo {
			t.Fatalf("vertex %d has an empty label in a full index", v)
		}
		selfSeen := false
		for p := lo; p < hi; p++ {
			if p > lo && ix.labelRank[p-1] >= ix.labelRank[p] {
				t.Fatalf("vertex %d label not strictly rank-sorted", v)
			}
			if ix.order[ix.labelRank[p]] == v {
				if ix.labelDist[p] != 0 {
					t.Fatalf("vertex %d self entry with distance %d", v, ix.labelDist[p])
				}
				selfSeen = true
			}
		}
		if !selfSeen {
			t.Fatalf("vertex %d lacks its self entry", v)
		}
	}
}
