package pll

import (
	"fmt"
	"io"
	"os"

	"highway/internal/bptree"
	"highway/internal/graph"
	"highway/internal/method"
)

// On-disk layout: the tagged "HWLIDX02" container of internal/method
// with tag "pll". Header: N = vertex count, K = root count, Aux1 =
// label entries, Aux2 = bit-parallel tree count. Sections:
//
//	33 order     [K]uint32        BFS roots in labelling order
//	34 labelOff  [N+1]uint64      CSR offsets
//	35 labelRank [entries]uint32  hub ranks (int32; PLL hubs span V)
//	36 labelDist [entries]uint32  exact distances (int32)
//	37 bp        Aux2 trees       bptree encoding (absent when Aux2=0)
const (
	sectOrder     uint32 = 33
	sectLabelOff  uint32 = 34
	sectLabelRank uint32 = 35
	sectLabelDist uint32 = 36
	sectBP        uint32 = 37
)

const tag = "pll"

// Write serializes the index (without the graph) in the tagged v2
// container format.
func (ix *Index) Write(w io.Writer) error {
	n := ix.g.NumVertices()
	entries := ix.NumEntries()
	sections := []method.Section{
		{ID: sectOrder, Payload: method.AppendI32s(make([]byte, 0, len(ix.order)*4), ix.order)},
		{ID: sectLabelOff, Payload: method.AppendI64s(make([]byte, 0, (n+1)*8), ix.labelOff)},
		{ID: sectLabelRank, Payload: method.AppendI32s(make([]byte, 0, entries*4), ix.labelRank)},
		{ID: sectLabelDist, Payload: method.AppendI32s(make([]byte, 0, entries*4), ix.labelDist)},
	}
	if len(ix.bp) > 0 {
		sections = append(sections, method.Section{
			ID:      sectBP,
			Payload: bptree.AppendTrees(make([]byte, 0, bptree.EncodedLen(len(ix.bp), n)), ix.bp, n),
		})
	}
	h := method.Header{
		Method: tag,
		N:      uint64(n),
		K:      uint32(len(ix.order)),
		Aux1:   uint64(entries),
		Aux2:   uint64(len(ix.bp)),
	}
	return method.WriteContainer(w, h, sections)
}

// Save writes the index to path (see Write).
func (ix *Index) Save(path string) error {
	return method.SaveFile(path, ix.Write)
}

// Read deserializes an index written by Write and attaches it to g,
// which must be the graph the index was built on.
func Read(r io.Reader, g *graph.Graph) (*Index, error) {
	n := g.NumVertices()
	h, sections, err := method.ReadContainer(r, tag, func(h method.Header) (map[uint32]uint64, error) {
		if h.N != uint64(n) {
			return nil, fmt.Errorf("pll: index built for n=%d, graph has n=%d", h.N, n)
		}
		if h.K == 0 || uint64(h.K) > h.N {
			return nil, fmt.Errorf("pll: index claims %d roots for n=%d", h.K, n)
		}
		if h.Aux1 > h.N*uint64(h.K) {
			return nil, fmt.Errorf("pll: implausible entry count %d", h.Aux1)
		}
		if h.Aux2 > h.N {
			return nil, fmt.Errorf("pll: implausible bit-parallel tree count %d", h.Aux2)
		}
		return map[uint32]uint64{
			sectOrder:     uint64(h.K) * 4,
			sectLabelOff:  (h.N + 1) * 8,
			sectLabelRank: h.Aux1 * 4,
			sectLabelDist: h.Aux1 * 4,
			sectBP:        uint64(bptree.EncodedLen(int(h.Aux2), n)),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	k := int(h.K)
	entries := int64(h.Aux1)
	nBP := int(h.Aux2)

	for _, id := range []uint32{sectOrder, sectLabelOff, sectLabelRank, sectLabelDist} {
		if sections[id] == nil {
			return nil, fmt.Errorf("pll: required section %d missing", id)
		}
	}
	if nBP > 0 && sections[sectBP] == nil {
		return nil, fmt.Errorf("pll: header claims %d bit-parallel trees, section missing", nBP)
	}

	ix := &Index{
		g:         g,
		order:     make([]int32, k),
		rankOf:    make([]int32, n),
		labelOff:  make([]int64, n+1),
		labelRank: make([]int32, entries),
		labelDist: make([]int32, entries),
		full:      k == n,
	}
	if err := method.DecodeI32s(sections[sectOrder], ix.order); err != nil {
		return nil, err
	}
	for i := range ix.rankOf {
		ix.rankOf[i] = -1
	}
	for rank, v := range ix.order {
		if v < 0 || int(v) >= n {
			return nil, fmt.Errorf("pll: root %d out of range [0,%d)", v, n)
		}
		if ix.rankOf[v] >= 0 {
			return nil, fmt.Errorf("pll: duplicate root %d", v)
		}
		ix.rankOf[v] = int32(rank)
	}
	if err := method.DecodeI64s(sections[sectLabelOff], ix.labelOff); err != nil {
		return nil, err
	}
	if err := method.ValidateOffsets(ix.labelOff, entries); err != nil {
		return nil, err
	}
	if err := method.DecodeI32s(sections[sectLabelRank], ix.labelRank); err != nil {
		return nil, err
	}
	if err := method.DecodeI32s(sections[sectLabelDist], ix.labelDist); err != nil {
		return nil, err
	}
	for p, r := range ix.labelRank {
		if r < 0 || int(r) >= k {
			return nil, fmt.Errorf("pll: label rank %d out of range [0,%d)", r, k)
		}
		if d := ix.labelDist[p]; d < 0 {
			return nil, fmt.Errorf("pll: negative label distance %d", d)
		}
	}
	if nBP > 0 {
		ix.bp, err = bptree.DecodeTrees(sections[sectBP], nBP, n)
		if err != nil {
			return nil, err
		}
	}
	return ix, nil
}

// Load reads an index file written by Save and attaches it to g.
func Load(path string, g *graph.Graph) (*Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f, g)
}
