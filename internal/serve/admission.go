package serve

import (
	"io"
	"net/http"
	"sync/atomic"
)

// Overload protection: a bounded in-flight admission gate per request
// class. The server maintains two budgets — reads (distance/batch) and
// writes (edge inserts) — measured in cost units rather than request
// counts, so one 64k-pair batch weighs roughly 64 single queries and
// cannot sneak past a per-request limit. Requests beyond the budget are
// shed *before any work* (no JSON decode, no pair validation, no
// searcher checkout): a rejected request costs microseconds, which is
// the property that keeps shedding cheaper than collapsing.
//
// Shed responses carry HTTP 429 + Retry-After on the JSON listener and
// wire.CodeOverloaded on the binary listener; /stats, /healthz and
// /readyz are never gated — overload is exactly when monitoring must
// keep answering.

// admissionCostDivisor converts an estimated pair count into cost
// units: 1 base unit plus one per 1024 pairs.
const admissionCostDivisor = 1024

// Default admission budgets (cost units of concurrent in-flight work)
// used when Config.ReadBudget / Config.WriteBudget are zero. Sized so
// ordinary deployments never notice the gate: ~1k concurrent single
// queries (or ~16 maximal batches) and ~256 concurrent insert batches
// have no business being in flight at once on one node.
const (
	DefaultReadBudget  = 1024
	DefaultWriteBudget = 256
)

// gate is one admission budget. tryAcquire is a single atomic add on
// the admit path — the gate itself must never become the bottleneck it
// guards against.
type gate struct {
	budget   int64 // <= 0: unlimited
	inflight atomic.Int64
	admitted atomic.Int64
	shed     atomic.Int64
}

// tryAcquire admits cost units of work, or sheds the request. The
// add-then-check-then-rollback shape keeps the fast path to one atomic
// op; transient overshoot between add and rollback is bounded by the
// number of concurrently-shedding requests, which is exactly the
// overload case where precision stops mattering.
func (g *gate) tryAcquire(cost int64) bool {
	if g.budget <= 0 {
		return true
	}
	if g.inflight.Add(cost) > g.budget {
		g.inflight.Add(-cost)
		g.shed.Add(1)
		return false
	}
	g.admitted.Add(1)
	return true
}

// release returns cost units acquired by a successful tryAcquire.
func (g *gate) release(cost int64) {
	if g.budget <= 0 {
		return
	}
	g.inflight.Add(-cost)
}

// resolveBudget maps a Config budget knob to a gate budget: 0 picks the
// default, negative disables the gate.
func resolveBudget(configured, def int) int64 {
	switch {
	case configured == 0:
		return int64(def)
	case configured < 0:
		return 0 // unlimited
	default:
		return int64(configured)
	}
}

// pairsCost converts a pair/edge count estimate to admission cost.
func pairsCost(pairs int64) int64 {
	if pairs < 0 {
		pairs = 0
	}
	return 1 + pairs/admissionCostDivisor
}

// httpCost estimates a request's admission cost from its declared body
// size, before reading a byte of it: compact JSON spends ~10 bytes per
// pair, so ContentLength/10 approximates the pair count. GETs and small
// bodies cost the 1 base unit.
func httpCost(r *http.Request) int64 {
	return pairsCost(r.ContentLength / 10)
}

// frameCost estimates a binary frame's admission cost from its payload
// length (8 bytes per pair), again before decoding it.
func frameCost(payloadLen int) int64 {
	return pairsCost(int64(payloadLen) / 8)
}

// shedDrainLimit bounds how much of a shed request's body the server
// reads to keep its connection reusable. Bodies beyond it forfeit the
// connection rather than the budget.
const shedDrainLimit = 1 << 20

// gated wraps a handler with admission control against g: shed requests
// are answered 429 + Retry-After without invoking h.
func (s *Server) gated(g *gate, h handlerFunc) handlerFunc {
	return func(w http.ResponseWriter, r *http.Request) (int64, bool) {
		cost := httpCost(r)
		if !g.tryAcquire(cost) {
			// Drain the unread body (bounded) so net/http keeps the
			// connection alive: a shed that costs the client its
			// keep-alive connection triggers a reconnect storm, which is
			// the opposite of overload protection. Reading bytes that
			// already arrived is cheap; it is the decode and the query
			// work that shedding avoids.
			if r.ContentLength >= 0 && r.ContentLength <= shedDrainLimit {
				io.Copy(io.Discard, r.Body)
			}
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests,
				"server overloaded: in-flight budget exhausted, retry with backoff")
			return 0, true
		}
		defer g.release(cost)
		return h(w, r)
	}
}

// GateStats is one admission gate's counters in /stats.
type GateStats struct {
	Budget   int64 `json:"budget"` // 0 = unlimited
	Inflight int64 `json:"inflight"`
	Admitted int64 `json:"admitted"`
	Shed     int64 `json:"shed"`
}

// AdmissionStats is the admission section of /stats.
type AdmissionStats struct {
	Read  GateStats `json:"read"`
	Write GateStats `json:"write"`
}

func (g *gate) stats() GateStats {
	return GateStats{
		Budget:   g.budget,
		Inflight: g.inflight.Load(),
		Admitted: g.admitted.Load(),
		Shed:     g.shed.Load(),
	}
}

// AdmissionStats returns the current gate counters.
func (s *Server) AdmissionStats() AdmissionStats {
	return AdmissionStats{Read: s.readGate.stats(), Write: s.writeGate.stats()}
}
