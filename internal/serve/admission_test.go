package serve

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"highway/internal/core"
	"highway/internal/gen"
	"highway/internal/landmark"
	"highway/internal/wire"
)

func admTestIndex(t *testing.T) *core.Index {
	t.Helper()
	g := gen.BarabasiAlbert(300, 3, 42)
	lms, err := landmark.Select(g, landmark.Options{K: 6, Strategy: landmark.Degree})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := core.BuildParallel(g, lms)
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func TestGateTryAcquire(t *testing.T) {
	g := gate{budget: 3}
	if !g.tryAcquire(2) {
		t.Fatal("first acquire within budget refused")
	}
	if g.tryAcquire(2) {
		t.Fatal("acquire beyond budget admitted")
	}
	if !g.tryAcquire(1) {
		t.Fatal("acquire filling budget exactly refused")
	}
	g.release(1)
	g.release(2)
	st := g.stats()
	if st.Inflight != 0 || st.Admitted != 2 || st.Shed != 1 {
		t.Fatalf("stats = %+v, want inflight 0, admitted 2, shed 1", st)
	}

	// Unlimited gate: everything is admitted, nothing is counted.
	un := gate{budget: 0}
	if !un.tryAcquire(1 << 40) {
		t.Fatal("unlimited gate refused")
	}
}

func TestResolveBudget(t *testing.T) {
	if got := resolveBudget(0, 7); got != 7 {
		t.Fatalf("resolveBudget(0) = %d, want default 7", got)
	}
	if got := resolveBudget(-1, 7); got != 0 {
		t.Fatalf("resolveBudget(-1) = %d, want 0 (unlimited)", got)
	}
	if got := resolveBudget(3, 7); got != 3 {
		t.Fatalf("resolveBudget(3) = %d, want 3", got)
	}
}

func TestPairsCost(t *testing.T) {
	for _, tc := range []struct{ pairs, want int64 }{
		{-5, 1}, {0, 1}, {1, 1}, {1023, 1}, {1024, 2}, {4096, 5},
	} {
		if got := pairsCost(tc.pairs); got != tc.want {
			t.Fatalf("pairsCost(%d) = %d, want %d", tc.pairs, got, tc.want)
		}
	}
}

// TestHTTPShedsWhenOverBudget pins the HTTP shed contract: a request
// over the read budget is answered 429 with Retry-After before any
// work, monitoring endpoints stay ungated, and releasing the budget
// re-admits traffic.
func TestHTTPShedsWhenOverBudget(t *testing.T) {
	ix := admTestIndex(t)
	s := New(ix, Config{ShutdownGrace: time.Second, ReadBudget: 1, WriteBudget: 1})
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()

	get := func(path string) *http.Response {
		t.Helper()
		resp, err := http.Get(hs.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}

	// Occupy the whole read budget, as a long in-flight request would.
	if !s.readGate.tryAcquire(1) {
		t.Fatal("could not occupy read gate")
	}
	resp := get("/distance?s=0&t=5")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("gated /distance status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed response missing Retry-After")
	}
	// The write gate is independent: inserts still pass admission (and
	// then hit the read-only rejection, which proves the handler ran).
	wresp, err := http.Post(hs.URL+"/edges", "application/json", strings.NewReader(`{"edges":[[0,1]]}`))
	if err != nil {
		t.Fatal(err)
	}
	wresp.Body.Close()
	if wresp.StatusCode == http.StatusTooManyRequests {
		t.Fatal("write path shed by an exhausted read budget")
	}
	// Monitoring must answer during overload — that is its whole job.
	for _, path := range []string{"/stats", "/healthz", "/readyz", "/"} {
		if resp := get(path); resp.StatusCode != http.StatusOK {
			t.Fatalf("monitoring %s status = %d during overload, want 200", path, resp.StatusCode)
		}
	}

	s.readGate.release(1)
	if resp := get("/distance?s=0&t=5"); resp.StatusCode != http.StatusOK {
		t.Fatalf("post-release /distance status = %d, want 200", resp.StatusCode)
	}

	st := s.AdmissionStats()
	if st.Read.Shed < 1 || st.Read.Budget != 1 {
		t.Fatalf("read gate stats = %+v, want budget 1 and >=1 shed", st.Read)
	}
	// /stats surfaces the admission section.
	var doc struct {
		Admission AdmissionStats `json:"admission"`
	}
	sr := get("/stats")
	if err := json.NewDecoder(sr.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc.Admission.Read.Shed < 1 {
		t.Fatalf("/stats admission = %+v, want >=1 read shed", doc.Admission)
	}
}

// TestBinaryShedsWhenOverBudget pins the wire shed contract: an
// over-budget frame is answered in-band with CodeOverloaded, the
// connection survives, and ungated frames (stats, ping) keep working.
func TestBinaryShedsWhenOverBudget(t *testing.T) {
	ix := admTestIndex(t)
	srv := New(ix, Config{ShutdownGrace: time.Second, ReadBudget: 1})
	addr, shutdown := admBinListener(t, srv)
	defer shutdown()
	c, r, w := binConn(t, addr)
	defer c.Close()

	roundTrip := func(typ wire.Type, payload []byte) (wire.Type, []byte) {
		t.Helper()
		if err := w.WriteFrame(typ, payload); err != nil {
			t.Fatal(err)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		rt, p, err := r.ReadFrame()
		if err != nil {
			t.Fatal(err)
		}
		return rt, p
	}

	if !srv.readGate.tryAcquire(1) {
		t.Fatal("could not occupy read gate")
	}
	typ, p := roundTrip(wire.TDistance, wire.AppendPair(nil, 0, 5))
	if typ != wire.TError {
		t.Fatalf("gated Distance answered %v, want TError", typ)
	}
	code, _, err := wire.DecodeError(p)
	if err != nil {
		t.Fatal(err)
	}
	if code != wire.CodeOverloaded {
		t.Fatalf("gated Distance code = %v, want Overloaded", code)
	}
	// The connection is still usable, and ungated frames still answer.
	if typ, _ := roundTrip(wire.TPing, nil); typ != wire.TPingResp {
		t.Fatalf("ping during overload answered %v, want TPingResp", typ)
	}
	if typ, _ := roundTrip(wire.TStats, nil); typ != wire.TStatsResp {
		t.Fatalf("stats during overload answered %v, want TStatsResp", typ)
	}

	srv.readGate.release(1)
	if typ, _ := roundTrip(wire.TDistance, wire.AppendPair(nil, 0, 5)); typ != wire.TDistanceResp {
		t.Fatalf("post-release Distance answered %v, want TDistanceResp", typ)
	}
	if st := srv.AdmissionStats(); st.Read.Shed < 1 {
		t.Fatalf("read gate stats = %+v, want >=1 shed", st.Read)
	}
}

// admBinListener starts a binary listener for an existing server.
func admBinListener(t *testing.T, srv *Server) (addr string, shutdown func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.ServeBinary(ctx, ln) }()
	return ln.Addr().String(), func() {
		cancel()
		if err := <-done; err != nil {
			t.Errorf("ServeBinary: %v", err)
		}
		srv.Close()
	}
}
