package serve

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"strconv"
	"sync/atomic"
	"time"

	"highway/internal/method"
	"highway/internal/workload"
)

// batchChunk is the unit of work in the batch pipeline: enough pairs to
// amortize channel hops, small enough to keep all workers busy near the
// end of the stream.
const batchChunk = 1024

// BatchStats summarizes one RunBatch/RunLoad execution.
type BatchStats struct {
	Pairs   int64
	Elapsed time.Duration
}

// QPS returns the observed throughput in queries per second.
func (b BatchStats) QPS() float64 {
	if b.Elapsed <= 0 {
		return 0
	}
	return float64(b.Pairs) / b.Elapsed.Seconds()
}

func (b BatchStats) String() string {
	return fmt.Sprintf("%d pairs in %s (%.0f qps)", b.Pairs, b.Elapsed, b.QPS())
}

// RunBatch streams "s t" lines from r through a pool of workers (0 =
// GOMAXPROCS) and writes one distance per line to w, in input order.
// It is the high-throughput offline mode: the same searcher pool as the
// HTTP API without per-request dispatch.
func (s *Server) RunBatch(r io.Reader, w io.Writer, workers int) (BatchStats, error) {
	return s.runPipeline(w, workers, func(emit func(workload.Pair) error) error {
		return workload.ReadPairs(r, int(s.n.Load()), emit)
	})
}

// RunLoad is RunBatch fed by the workload generator instead of a
// reader: count uniform random pairs from the given seed, for
// deterministic load tests straight from the binary.
func (s *Server) RunLoad(w io.Writer, count int, seed int64, workers int) (BatchStats, error) {
	return s.runPipeline(w, workers, func(emit func(workload.Pair) error) error {
		st := workload.NewStreamN(int(s.n.Load()), seed)
		for i := 0; i < count; i++ {
			if err := emit(st.Next()); err != nil {
				return err
			}
		}
		return nil
	})
}

// MixedStats summarizes one RunLoadMixed execution: the read-side
// BatchStats plus the write traffic interleaved with it.
type MixedStats struct {
	BatchStats
	Writes   int64  // InsertEdges batches issued (one edge each)
	Inserted int64  // edges that were actually new
	Epoch    uint64 // snapshot epoch after the run
}

func (m MixedStats) String() string {
	return fmt.Sprintf("%s; %d writes (%d new edges), epoch %d",
		m.BatchStats, m.Writes, m.Inserted, m.Epoch)
}

// RunLoadMixed is RunLoad with writes mixed in: for every read emitted,
// an edge insertion is issued with probability writeRatio (deterministic
// per seed), exercising snapshot swaps under read load. The server must
// be live (NewLive/LoadLive). Distances are written to w in input
// order; note that with concurrent snapshot swaps the distance printed
// for a pair depends on which snapshot its worker holds, so only the
// read *throughput* is deterministic, not the byte output.
func (s *Server) RunLoadMixed(w io.Writer, count int, seed int64, workers int, writeRatio float64) (MixedStats, error) {
	if s.up == nil {
		return MixedStats{}, ErrReadOnly
	}
	if writeRatio < 0 || writeRatio > 1 {
		return MixedStats{}, fmt.Errorf("serve: write ratio %v outside [0,1]", writeRatio)
	}
	var mixed MixedStats
	n := int32(s.n.Load())
	rng := rand.New(rand.NewSource(seed ^ 0x6c69_7665)) // distinct stream from the read workload
	bs, err := s.runPipeline(w, workers, func(emit func(workload.Pair) error) error {
		st := workload.NewStreamN(int(s.n.Load()), seed)
		for i := 0; i < count; i++ {
			if rng.Float64() < writeRatio {
				a, b := rng.Int31n(n), rng.Int31n(n)
				res, err := s.InsertEdges([][2]int32{{a, b}})
				if err != nil {
					return err
				}
				mixed.Writes++
				mixed.Inserted += int64(res.Inserted)
			}
			if err := emit(st.Next()); err != nil {
				return err
			}
		}
		return nil
	})
	mixed.BatchStats = bs
	mixed.Epoch = s.Epoch()
	return mixed, err
}

// batchJob carries one chunk through the pipeline. done is buffered so a
// worker never blocks on a slow writer.
type batchJob struct {
	pairs []workload.Pair
	done  chan []int32
}

// runPipeline fans chunks of the source stream out to workers and writes
// results in input order: source -> work queue -> workers (one Searcher
// each) -> sequenced writer. Output order is preserved by also sending
// each job to an order queue the writer drains in sequence.
func (s *Server) runPipeline(w io.Writer, workers int, source func(emit func(workload.Pair) error) error) (BatchStats, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	start := time.Now()
	work := make(chan batchJob, workers)
	order := make(chan batchJob, 4*workers)

	for i := 0; i < workers; i++ {
		go func() {
			// Worker-local pair buffer: workload.Pair chunks are repacked
			// into the [s,t] shape the batch executor takes, so chunks
			// with repeated sources get the vectorized path.
			var pbuf [][2]int32
			for job := range work {
				if cap(pbuf) < len(job.pairs) {
					pbuf = make([][2]int32, len(job.pairs))
				}
				pbuf = pbuf[:len(job.pairs)]
				for i, p := range job.pairs {
					pbuf[i] = [2]int32{p.S, p.T}
				}
				sn, sr := s.acquire()
				out := method.DistanceBatch(sr, pbuf, make([]int32, len(job.pairs)))
				s.release(sn, sr)
				job.done <- out
			}
		}()
	}

	// Producer: chunk the source and feed both queues. A failed writer
	// flips aborted, and the producer stops the source at the next pair
	// instead of burning CPU on distances nobody will read.
	var aborted atomic.Bool
	srcErr := make(chan error, 1)
	go func() {
		defer close(work)
		defer close(order)
		chunk := make([]workload.Pair, 0, batchChunk)
		flush := func() {
			job := batchJob{pairs: chunk, done: make(chan []int32, 1)}
			work <- job
			order <- job
			chunk = make([]workload.Pair, 0, batchChunk)
		}
		err := source(func(p workload.Pair) error {
			if aborted.Load() {
				return errWriteAborted
			}
			chunk = append(chunk, p)
			if len(chunk) == batchChunk {
				flush()
			}
			return nil
		})
		// Flush the partial chunk even on error: the pairs in it parsed
		// before the failure and belong in the output, so a bad line
		// truncates output at the bad line, not at a chunk boundary.
		if len(chunk) > 0 {
			flush()
		}
		srcErr <- err
	}()

	// Writer: drain jobs in submission order.
	bw := bufio.NewWriterSize(w, 1<<16)
	var stats BatchStats
	var writeErr error
	buf := make([]byte, 0, 12)
	for job := range order {
		out := <-job.done
		if writeErr != nil {
			continue // keep draining so workers and producer can finish
		}
		for _, d := range out {
			buf = strconv.AppendInt(buf[:0], int64(d), 10)
			buf = append(buf, '\n')
			if _, err := bw.Write(buf); err != nil {
				writeErr = err
				aborted.Store(true)
				break
			}
			stats.Pairs++ // only pairs that actually reached the writer
		}
	}
	if writeErr == nil {
		writeErr = bw.Flush()
	}
	stats.Elapsed = time.Since(start)
	srcE := <-srcErr
	if errors.Is(srcE, errWriteAborted) {
		srcE = nil // an artifact of the abort, not a source failure
	}
	return stats, errors.Join(srcE, writeErr)
}

// errWriteAborted is the sentinel the producer uses to stop the source
// after the writer has already failed; it never escapes runPipeline.
var errWriteAborted = errors.New("serve: output writer failed")
