package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"highway/internal/method"
)

// countingIndex is a stub DistanceIndex whose searchers count Distance
// calls and can fire a callback at a chosen call number — the
// instrument behind the cancellation-bound tests: it makes "how many
// pairs ran after cancel" an exact observable instead of a timing
// guess.
type countingIndex struct {
	n        int
	calls    atomic.Int64
	cancelAt int64
	cancel   func()
	// delayAfter slows every query after the cancel point down, giving
	// an asynchronously-delivered cancellation (an HTTP client
	// disconnect crossing the transport) time to land while the batch
	// is still in flight.
	delayAfter time.Duration
}

type countingSearcher struct{ ix *countingIndex }

func (sr *countingSearcher) Distance(s, t int32) int32 {
	c := sr.ix.calls.Add(1)
	if sr.ix.cancelAt > 0 && c >= sr.ix.cancelAt {
		if c == sr.ix.cancelAt {
			sr.ix.cancel()
		}
		if sr.ix.delayAfter > 0 {
			time.Sleep(sr.ix.delayAfter)
		}
	}
	return 1
}
func (sr *countingSearcher) UpperBound(s, t int32) int32 { return 1 }

func (ix *countingIndex) Distance(s, t int32) int32    { return 1 }
func (ix *countingIndex) UpperBound(s, t int32) int32  { return 1 }
func (ix *countingIndex) NewSearcher() method.Searcher { return &countingSearcher{ix: ix} }
func (ix *countingIndex) Stats() method.Stats          { return method.Stats{NumVertices: ix.n} }
func (ix *countingIndex) Save(path string) error       { return nil }

// TestDistanceBatchContextCancel pins the cancellation bound: a context
// cancelled mid-batch stops the batch within ~method.CancelCheckEvery
// pairs (the in-flight chunk finishes, nothing after it starts) and
// surfaces ctx.Err() with the completed prefix.
func TestDistanceBatchContextCancel(t *testing.T) {
	ix := &countingIndex{n: 16, cancelAt: 100}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ix.cancel = cancel
	s := NewIndex(ix, Config{})
	pairs := make([][2]int32, 50*method.CancelCheckEvery)
	out, err := s.DistanceBatchContext(ctx, pairs, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	calls := ix.calls.Load()
	if calls > 2*method.CancelCheckEvery {
		t.Fatalf("%d pairs ran after cancelling at pair %d; want within ~%d",
			calls, ix.cancelAt, method.CancelCheckEvery)
	}
	if len(out) != int(calls) {
		t.Fatalf("returned prefix %d answers, %d pairs ran", len(out), calls)
	}
	for i, d := range out {
		if d != 1 {
			t.Fatalf("out[%d] = %d, want 1 (answers before the cancel point must be valid)", i, d)
		}
	}
}

// TestDistanceBatchContextPreCancelled: an already-dead context runs
// zero pairs.
func TestDistanceBatchContextPreCancelled(t *testing.T) {
	ix := &countingIndex{n: 16}
	s := NewIndex(ix, Config{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out, err := s.DistanceBatchContext(ctx, make([][2]int32, 10_000), nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := ix.calls.Load(); got != 0 {
		t.Fatalf("%d pairs ran under a pre-cancelled context", got)
	}
	if len(out) != 0 {
		t.Fatalf("got %d answers under a pre-cancelled context", len(out))
	}
}

// TestDistanceBatchNoContextCompletes pins the wrapper's contract: the
// context-free DistanceBatch always runs to completion.
func TestDistanceBatchNoContextCompletes(t *testing.T) {
	ix := &countingIndex{n: 16}
	s := NewIndex(ix, Config{})
	pairs := make([][2]int32, 3*method.CancelCheckEvery+7)
	out, err := s.DistanceBatch(pairs, nil)
	if err != nil || len(out) != len(pairs) {
		t.Fatalf("DistanceBatch: %v, %d answers", err, len(out))
	}
	if got := ix.calls.Load(); got != int64(len(pairs)) {
		t.Fatalf("%d pairs ran, want %d", got, len(pairs))
	}
}

// TestBatchHandlerClientDisconnect verifies the HTTP plumbing: when the
// batch client goes away mid-request, r.Context() cancellation reaches
// the executor and the handler abandons the remaining pairs instead of
// computing a response nobody reads. The stub cancels the client's
// request context from inside the 64th query, so the test is
// deterministic about *when* the disconnect happens; the bound is loose
// (a few chunks) because the transport delivers the disconnect
// asynchronously.
func TestBatchHandlerClientDisconnect(t *testing.T) {
	ix := &countingIndex{n: 16, cancelAt: 64, delayAfter: 50 * time.Microsecond}
	s := NewIndex(ix, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	total := 40 * method.CancelCheckEvery
	var body bytes.Buffer
	body.WriteString(`{"pairs":[`)
	for i := 0; i < total; i++ {
		if i > 0 {
			body.WriteByte(',')
		}
		body.WriteString(`[1,2]`)
	}
	body.WriteString(`]}`)

	cctx, ccancel := context.WithCancel(context.Background())
	defer ccancel()
	ix.cancel = ccancel
	req, err := http.NewRequestWithContext(cctx, http.MethodPost, ts.URL+"/distance/batch", &body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err == nil {
		resp.Body.Close()
		t.Fatal("request succeeded; want client-side cancellation")
	}
	// The handler has returned once the server drains; Close waits for
	// in-flight handlers, so after this the call count is final.
	ts.Close()
	if calls := ix.calls.Load(); calls >= int64(total) {
		t.Fatalf("handler answered all %d pairs after the client disconnected", total)
	} else if calls > 16*method.CancelCheckEvery {
		t.Fatalf("%d pairs ran after a disconnect at pair 64; want within a few %d-pair chunks",
			calls, method.CancelCheckEvery)
	}
}

// TestBatchEndpointTrailingOverCap pins the error taxonomy fix: a body
// whose valid JSON object is followed by bytes past the MaxBytesReader
// cap must surface as 413 naming the byte cap — previously the
// trailing-data check masked it as a generic 400.
func TestBatchEndpointTrailingOverCap(t *testing.T) {
	s := New(disconnectedIndex(t), Config{MaxBatch: 4}) // cap = 4*64+1024 bytes
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	body := `{"pairs":[[0,1]]}` + strings.Repeat(" ", 2048)
	var e errorBody
	code := postJSON(t, ts.URL+"/distance/batch", body, &e)
	if code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d (%q), want 413", code, e.Error)
	}
	if !strings.Contains(e.Error, "1280 bytes") {
		t.Fatalf("error %q does not name the byte cap", e.Error)
	}
}

// TestInsertEndpointTrailingOverCap is the same taxonomy pin for the
// update endpoint.
func TestInsertEndpointTrailingOverCap(t *testing.T) {
	_, _, ix := liveBase(t, 60, 4)
	s, err := NewLive(ix, LiveConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.cfg.MaxBatch = 4 // cap = 1280 bytes
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	body := `{"edge":[0,1]}` + strings.Repeat(" ", 2048)
	var e errorBody
	code := postJSON(t, ts.URL+"/edges", body, &e)
	if code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d (%q), want 413", code, e.Error)
	}
	if !strings.Contains(e.Error, "1280 bytes") {
		t.Fatalf("error %q does not name the byte cap", e.Error)
	}
}

// TestBatchRaceWithInserts drives concurrent batch reads against edge
// inserts on a live server — under -race this pins that the vectorized
// batch path only ever touches immutable snapshot state while writers
// publish new snapshots. Distances may differ between batches as edges
// land (each batch reads one consistent snapshot), so the assertions
// are shape and plausibility, not exact values.
func TestBatchRaceWithInserts(t *testing.T) {
	g, _, ix := liveBase(t, 300, 8)
	s, err := NewLive(ix, LiveConfig{RebuildThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	n := int32(g.NumVertices())

	// Source-skewed pairs so the vectorized group path runs.
	var body bytes.Buffer
	body.WriteString(`{"pairs":[`)
	for i := 0; i < 600; i++ {
		if i > 0 {
			body.WriteByte(',')
		}
		body.WriteByte('[')
		body.WriteString(strconv.Itoa(i % 4))
		body.WriteByte(',')
		body.WriteString(strconv.Itoa(i % int(n)))
		body.WriteByte(']')
	}
	body.WriteString(`]}`)
	batchBody := body.String()

	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 15; i++ {
				resp, err := http.Post(ts.URL+"/distance/batch", "application/json", strings.NewReader(batchBody))
				if err != nil {
					t.Error(err)
					return
				}
				var br batchResponse
				err = json.NewDecoder(resp.Body).Decode(&br)
				resp.Body.Close()
				if err != nil || resp.StatusCode != http.StatusOK {
					t.Errorf("batch: %d %v", resp.StatusCode, err)
					return
				}
				if len(br.Distances) != 600 {
					t.Errorf("batch answered %d pairs", len(br.Distances))
					return
				}
				for _, d := range br.Distances {
					if d < -1 || d > n {
						t.Errorf("implausible distance %d", d)
						return
					}
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 60; i++ {
			a, b := i%int(n), (i*7+1)%int(n)
			body := `{"edge":[` + strconv.Itoa(a) + `,` + strconv.Itoa(b) + `]}`
			resp, err := http.Post(ts.URL+"/edges", "application/json", strings.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("insert: %d", resp.StatusCode)
				return
			}
		}
	}()
	wg.Wait()
}
