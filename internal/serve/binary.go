package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"highway/internal/failpoint"
	"highway/internal/method"
	"highway/internal/wire"
)

// Binary protocol listener: the same Server, snapshots and searcher
// pools as the HTTP API, behind the length-prefixed framed protocol of
// internal/wire (specified in PROTOCOL.md). One goroutine per
// connection decodes request frames and answers them strictly in
// order, so clients may pipeline thousands of requests per round trip;
// responses are buffered and flushed only when no further request is
// already readable, which is what collapses a pipelined burst into a
// handful of syscalls.

// Connection timeouts, mirroring the HTTP listener's bounds: a slow or
// dead peer must not pin a goroutine forever.
const (
	binHandshakeTimeout = 10 * time.Second
	binIdleTimeout      = 2 * time.Minute
	binWriteTimeout     = 2 * time.Minute
)

// ListenAndServeBinary serves the binary wire protocol on addr until
// ctx is cancelled, then shuts down gracefully (in-flight requests
// finish; idle connections are released immediately). It returns nil on
// clean shutdown.
func (s *Server) ListenAndServeBinary(ctx context.Context, addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.ServeBinary(ctx, ln)
}

// ServeBinary is ListenAndServeBinary over an existing listener (tests
// use 127.0.0.1:0 to avoid port races). It may run concurrently with
// Serve on another listener: the two protocols share every snapshot,
// searcher pool and metric, so a JSON write is visible to a binary read
// and vice versa.
func (s *Server) ServeBinary(ctx context.Context, ln net.Listener) error {
	var (
		mu    sync.Mutex
		conns = make(map[net.Conn]struct{})
		wg    sync.WaitGroup
	)
	stop := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
		case <-stop:
		}
		ln.Close()
		// Poison pending reads: a connection blocked waiting for its
		// next request fails fast, while one mid-request still gets to
		// write its response before its next read errors out.
		mu.Lock()
		for c := range conns {
			c.SetReadDeadline(time.Now())
		}
		mu.Unlock()
	}()

	var acceptErr error
	for {
		c, err := ln.Accept()
		if err != nil {
			if ctx.Err() == nil && !errors.Is(err, net.ErrClosed) {
				acceptErr = err
			}
			break
		}
		mu.Lock()
		conns[c] = struct{}{}
		mu.Unlock()
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.serveBinaryConn(ctx, c)
			mu.Lock()
			delete(conns, c)
			mu.Unlock()
		}()
	}
	close(stop)

	drained := make(chan struct{})
	go func() { wg.Wait(); close(drained) }()
	select {
	case <-drained:
	case <-time.After(s.cfg.ShutdownGrace):
		mu.Lock()
		for c := range conns {
			c.Close()
		}
		mu.Unlock()
		<-drained
	}
	return acceptErr
}

// serveBinaryConn runs one connection's request loop: handshake, then
// frame → dispatch → response until the peer closes, a frame is
// corrupt, or the idle deadline passes. Framing errors drop the
// connection (once the stream position is untrusted nothing on it can
// be answered); application errors are answered in-band with a TError
// frame and the connection keeps going.
//
// ctx is the listener context: its cancellation (server shutdown)
// aborts an in-flight batch within ~method.CancelCheckEvery pairs and
// drops the connection. A peer that merely disconnects mid-batch is
// only observed at response-write time — the pipelined reader gives the
// server no per-request signal before that (see PROTOCOL.md).
func (s *Server) serveBinaryConn(ctx context.Context, c net.Conn) {
	defer c.Close()
	c.SetDeadline(time.Now().Add(binHandshakeTimeout))
	if err := wire.ReadMagic(c); err != nil {
		return
	}
	if err := wire.WriteMagic(c); err != nil {
		return
	}
	c.SetDeadline(time.Time{})

	r := wire.NewReader(c, wire.MaxFrame)
	w := wire.NewWriter(c)
	// Per-connection scratch, reused across requests so the steady
	// state allocates nothing: decoded pairs, computed distances, and
	// the response payload under construction.
	var (
		pairs   [][2]int32
		dists   []int32
		scratch []byte
	)
	for {
		c.SetReadDeadline(time.Now().Add(binIdleTimeout))
		typ, payload, err := r.ReadFrame()
		if err != nil {
			return
		}
		c.SetWriteDeadline(time.Now().Add(binWriteTimeout))
		start := time.Now()

		// Admission before decode: the cost estimate needs only the
		// payload length, so an over-budget frame is shed for the price
		// of having read it (frames must be consumed in order — the
		// stream cannot be skipped past an unread request).
		var g *gate
		switch typ {
		case wire.TDistance, wire.TBatch:
			g = &s.readGate
		case wire.TInsert, wire.TDelete:
			g = &s.writeGate
		}
		var cost int64
		if g != nil {
			cost = frameCost(len(payload))
			if !g.tryAcquire(cost) {
				scratch = wire.AppendError(scratch[:0], wire.CodeOverloaded,
					"server overloaded: in-flight budget exhausted, retry with backoff")
				s.metrics.observe(binEndpoint(typ), 0, time.Since(start), true)
				if err := s.writeBinaryFrame(w, wire.TError, scratch); err != nil {
					return
				}
				if r.Buffered() == 0 {
					if err := w.Flush(); err != nil {
						return
					}
				}
				continue
			}
		}

		var respType wire.Type
		var answered int64
		scratch = scratch[:0]
		switch typ {
		case wire.TDistance:
			sv, tv, derr := wire.DecodePair(payload)
			if derr != nil {
				respType, scratch = wire.TError, wire.AppendError(scratch, wire.CodeMalformed, derr.Error())
				break
			}
			d, qerr := s.Distance(sv, tv)
			if qerr != nil {
				respType, scratch = wire.TError, wire.AppendError(scratch, wire.CodeRange, qerr.Error())
				break
			}
			respType, scratch, answered = wire.TDistanceResp, wire.AppendDistance(scratch, d), 1

		case wire.TBatch:
			var derr error
			pairs, derr = wire.DecodePairs(payload, pairs)
			if derr != nil {
				respType, scratch = wire.TError, wire.AppendError(scratch, wire.CodeMalformed, derr.Error())
				break
			}
			if len(pairs) > s.cfg.MaxBatch {
				respType, scratch = wire.TError, wire.AppendError(scratch, wire.CodeTooLarge,
					fmt.Sprintf("batch of %d pairs exceeds limit %d", len(pairs), s.cfg.MaxBatch))
				break
			}
			if bad, verr := s.checkPairs(pairs); verr != nil {
				respType, scratch = wire.TError, wire.AppendError(scratch, wire.CodeRange,
					fmt.Sprintf("pair %d: %v", bad, verr))
				break
			}
			// One searcher for the whole batch, exactly like the HTTP
			// batch endpoint: one consistent snapshot, amortized
			// checkout, vectorized execution when the method provides
			// it. Shutdown cancels the remaining pairs via ctx.
			var qerr error
			dists, qerr = s.distanceBatchConn(ctx, pairs, dists)
			if qerr != nil {
				// Only ctx cancellation reaches here (size and range
				// were validated above): the server is shutting down and
				// the answers are incomplete, so drop the connection.
				g.release(cost)
				return
			}
			respType, scratch, answered = wire.TBatchResp, wire.AppendDistances(scratch, dists), int64(len(dists))

		case wire.TInsert:
			var derr error
			pairs, derr = wire.DecodePairs(payload, pairs)
			if derr != nil {
				respType, scratch = wire.TError, wire.AppendError(scratch, wire.CodeMalformed, derr.Error())
				break
			}
			if len(pairs) > s.cfg.MaxBatch {
				respType, scratch = wire.TError, wire.AppendError(scratch, wire.CodeTooLarge,
					fmt.Sprintf("batch of %d edges exceeds limit %d", len(pairs), s.cfg.MaxBatch))
				break
			}
			res, ierr := s.InsertEdges(pairs)
			if ierr != nil {
				respType, scratch = wire.TError, appendMutationError(scratch, ierr)
				break
			}
			respType, scratch = wire.TInsertResp, wire.AppendInsertResult(scratch, res.Accepted, res.Inserted, res.Epoch)
			answered = int64(res.Accepted)

		case wire.TDelete:
			var derr error
			pairs, derr = wire.DecodePairs(payload, pairs)
			if derr != nil {
				respType, scratch = wire.TError, wire.AppendError(scratch, wire.CodeMalformed, derr.Error())
				break
			}
			if len(pairs) > s.cfg.MaxBatch {
				respType, scratch = wire.TError, wire.AppendError(scratch, wire.CodeTooLarge,
					fmt.Sprintf("batch of %d edges exceeds limit %d", len(pairs), s.cfg.MaxBatch))
				break
			}
			res, derr2 := s.DeleteEdges(pairs)
			if derr2 != nil {
				respType, scratch = wire.TError, appendMutationError(scratch, derr2)
				break
			}
			respType, scratch = wire.TDeleteResp, wire.AppendDeleteResult(scratch, res.Accepted, res.Deleted, res.Epoch)
			answered = int64(res.Accepted)

		case wire.TStats:
			doc, merr := json.Marshal(s.statsDoc())
			if merr != nil {
				respType, scratch = wire.TError, wire.AppendError(scratch, wire.CodeInternal, merr.Error())
				break
			}
			respType, scratch = wire.TStatsResp, append(scratch, doc...)

		case wire.TPing:
			respType = wire.TPingResp

		case wire.TReplAppend:
			// Replication frames are never admission-gated: shedding the
			// primary's shipping stream would turn overload into
			// replica lag, the opposite of what the gate protects.
			if s.repl == nil {
				respType, scratch = wire.TError, wire.AppendError(scratch, wire.CodeMalformed,
					"server is not a replication follower")
				break
			}
			epoch, ops, derr := wire.DecodeReplAppend(payload, pairs)
			if derr != nil {
				respType, scratch = wire.TError, wire.AppendError(scratch, wire.CodeMalformed, derr.Error())
				break
			}
			pairs = ops
			cur, aerr := s.repl.ReplAppend(epoch, ops)
			if aerr != nil {
				respType, scratch = wire.TError, appendReplError(scratch, aerr)
				break
			}
			respType, scratch = wire.TReplAck, wire.AppendReplAck(scratch, cur)
			answered = int64(len(ops))

		case wire.TReplSnapshot:
			if s.repl == nil {
				respType, scratch = wire.TError, wire.AppendError(scratch, wire.CodeMalformed,
					"server is not a replication follower")
				break
			}
			epoch, done, chunk, derr := wire.DecodeReplSnapshot(payload)
			if derr != nil {
				respType, scratch = wire.TError, wire.AppendError(scratch, wire.CodeMalformed, derr.Error())
				break
			}
			cur, aerr := s.repl.ReplSnapshot(epoch, done, chunk)
			if aerr != nil {
				respType, scratch = wire.TError, appendReplError(scratch, aerr)
				break
			}
			respType, scratch = wire.TReplSnapshotResp, wire.AppendReplAck(scratch, cur)

		default:
			respType, scratch = wire.TError, wire.AppendError(scratch, wire.CodeMalformed,
				fmt.Sprintf("unknown record type 0x%02x", byte(typ)))
		}

		if g != nil {
			g.release(cost)
		}
		s.metrics.observe(binEndpoint(typ), answered, time.Since(start), respType == wire.TError)
		if err := s.writeBinaryFrame(w, respType, scratch); err != nil {
			return
		}
		// Pipelining flush heuristic: only flush when no further
		// request is already buffered, so a burst of N requests costs
		// ~1 write syscall, not N.
		if r.Buffered() == 0 {
			if err := w.Flush(); err != nil {
				return
			}
		}
	}
}

// writeBinaryFrame is WriteFrame behind the serve.bin.write failpoint:
// the chaos harness breaks response writes here to simulate a client
// connection dying mid-response.
func (s *Server) writeBinaryFrame(w *wire.Writer, t wire.Type, payload []byte) error {
	if err := failpoint.Eval(FPBinWrite); err != nil {
		return err
	}
	return w.WriteFrame(t, payload)
}

// distanceBatchConn answers an already-validated batch against the
// current snapshot under the connection's context: the binary frame
// handler has checked size and vertex ranges, so the only error is
// cancellation.
func (s *Server) distanceBatchConn(ctx context.Context, pairs [][2]int32, dst []int32) ([]int32, error) {
	sn, sr := s.acquire()
	dst, err := method.DistanceBatchContext(ctx, sr, pairs, dst)
	s.release(sn, sr)
	return dst, err
}

// checkPairs validates every endpoint of a pair batch, returning the
// index of the first bad pair.
func (s *Server) checkPairs(pairs [][2]int32) (int, error) {
	for i, p := range pairs {
		if err := s.checkVertex(p[0]); err != nil {
			return i, err
		}
		if err := s.checkVertex(p[1]); err != nil {
			return i, err
		}
	}
	return -1, nil
}

// appendMutationError maps the mutation error taxonomy (shared by
// TInsert and TDelete) onto a TError payload.
func appendMutationError(scratch []byte, err error) []byte {
	switch {
	case errors.Is(err, ErrReadOnly):
		return wire.AppendError(scratch, wire.CodeReadOnly, err.Error())
	case errors.Is(err, ErrClosed):
		return wire.AppendError(scratch, wire.CodeClosed, err.Error())
	case errors.Is(err, ErrDegraded):
		return wire.AppendError(scratch, wire.CodeDegraded, err.Error())
	case errors.Is(err, ErrEdgeRange):
		return wire.AppendError(scratch, wire.CodeRange, err.Error())
	default:
		// Freeze or apply failure: the batch was NOT applied.
		return wire.AppendError(scratch, wire.CodeInternal, err.Error())
	}
}

// appendReplError maps a ReplicationHandler failure onto a TError
// payload: fencing gets its own code so shippers can tell "stale
// duplicate / deposed" from a genuine apply failure.
func appendReplError(scratch []byte, err error) []byte {
	if errors.Is(err, ErrFenced) {
		return wire.AppendError(scratch, wire.CodeFenced, err.Error())
	}
	return wire.AppendError(scratch, wire.CodeInternal, err.Error())
}

// binEndpoint maps a request type to its metric slot, so binary
// traffic shows up in /stats (and TStatsResp) beside the HTTP
// endpoints.
func binEndpoint(t wire.Type) int {
	switch t {
	case wire.TDistance:
		return epBinDistance
	case wire.TBatch:
		return epBinBatch
	case wire.TInsert:
		return epBinEdges
	case wire.TDelete:
		return epBinDelete
	case wire.TStats:
		return epBinStats
	case wire.TReplAppend, wire.TReplSnapshot:
		return epBinRepl
	default:
		return epBinPing
	}
}
