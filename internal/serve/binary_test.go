package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"highway/internal/core"
	"highway/internal/gen"
	"highway/internal/graph"
	"highway/internal/landmark"
	"highway/internal/wire"
)

// binTestServer starts a binary listener over a fresh index and returns
// its address plus the server and a shutdown func.
func binTestServer(t *testing.T, live bool) (addr string, srv *Server, ix *core.Index, shutdown func()) {
	t.Helper()
	g := gen.BarabasiAlbert(400, 3, 7)
	lms, err := landmark.Select(g, landmark.Options{K: 8, Strategy: landmark.Degree})
	if err != nil {
		t.Fatal(err)
	}
	ix, err = core.BuildParallel(g, lms)
	if err != nil {
		t.Fatal(err)
	}
	if live {
		srv, err = NewLive(ix, LiveConfig{Config: Config{ShutdownGrace: time.Second}})
		if err != nil {
			t.Fatal(err)
		}
	} else {
		srv = New(ix, Config{ShutdownGrace: time.Second})
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.ServeBinary(ctx, ln) }()
	shutdown = func() {
		cancel()
		if err := <-done; err != nil {
			t.Errorf("ServeBinary: %v", err)
		}
		srv.Close()
	}
	return ln.Addr().String(), srv, ix, shutdown
}

// binConn dials and handshakes a raw protocol connection.
func binConn(t *testing.T, addr string) (net.Conn, *wire.Reader, *wire.Writer) {
	t.Helper()
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := wire.WriteMagic(c); err != nil {
		t.Fatal(err)
	}
	if err := wire.ReadMagic(c); err != nil {
		t.Fatal(err)
	}
	return c, wire.NewReader(c, 0), wire.NewWriter(c)
}

func TestBinaryDistanceAndBatch(t *testing.T) {
	addr, _, ix, shutdown := binTestServer(t, false)
	defer shutdown()
	c, r, w := binConn(t, addr)
	defer c.Close()

	// Single distance.
	if err := w.WriteFrame(wire.TDistance, wire.AppendPair(nil, 0, 3)); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	typ, p, err := r.ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	if typ != wire.TDistanceResp {
		t.Fatalf("type = %v, want DistanceResp", typ)
	}
	d, err := wire.DecodeDistance(p)
	if err != nil {
		t.Fatal(err)
	}
	if want := ix.Distance(0, 3); d != want {
		t.Fatalf("d(0,3) = %d over the wire, %d from the index", d, want)
	}

	// Batch: answers must line up pairwise with the library.
	pairs := [][2]int32{{0, 1}, {5, 9}, {17, 17}, {100, 399}}
	if err := w.WriteFrame(wire.TBatch, wire.AppendPairs(nil, pairs)); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	typ, p, err = r.ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	if typ != wire.TBatchResp {
		t.Fatalf("type = %v, want BatchResp", typ)
	}
	ds, err := wire.DecodeDistances(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != len(pairs) {
		t.Fatalf("%d answers for %d pairs", len(ds), len(pairs))
	}
	for i, pr := range pairs {
		if want := ix.Distance(pr[0], pr[1]); ds[i] != want {
			t.Fatalf("pair %v: wire %d, index %d", pr, ds[i], want)
		}
	}
}

// TestBinaryPipelining writes a burst of requests before reading any
// response and checks every answer comes back in request order.
func TestBinaryPipelining(t *testing.T) {
	addr, _, ix, shutdown := binTestServer(t, false)
	defer shutdown()
	c, r, w := binConn(t, addr)
	defer c.Close()

	const burst = 500
	var scratch []byte
	for i := 0; i < burst; i++ {
		scratch = wire.AppendPair(scratch[:0], int32(i%400), int32((i*7)%400))
		if err := w.WriteFrame(wire.TDistance, scratch); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < burst; i++ {
		typ, p, err := r.ReadFrame()
		if err != nil {
			t.Fatalf("response %d: %v", i, err)
		}
		if typ != wire.TDistanceResp {
			t.Fatalf("response %d: type %v", i, typ)
		}
		d, err := wire.DecodeDistance(p)
		if err != nil {
			t.Fatal(err)
		}
		if want := ix.Distance(int32(i%400), int32((i*7)%400)); d != want {
			t.Fatalf("response %d out of order or wrong: %d, want %d", i, d, want)
		}
	}
}

func TestBinaryErrorTaxonomy(t *testing.T) {
	addr, srv, _, shutdown := binTestServer(t, false)
	defer shutdown()
	c, r, w := binConn(t, addr)
	defer c.Close()

	expectError := func(code wire.ErrorCode) {
		t.Helper()
		typ, p, err := r.ReadFrame()
		if err != nil {
			t.Fatal(err)
		}
		if typ != wire.TError {
			t.Fatalf("type = %v, want Error", typ)
		}
		got, _, err := wire.DecodeError(p)
		if err != nil {
			t.Fatal(err)
		}
		if got != code {
			t.Fatalf("code = %v, want %v", got, code)
		}
	}

	// Out-of-range vertex.
	w.WriteFrame(wire.TDistance, wire.AppendPair(nil, 0, 9999))
	w.Flush()
	expectError(wire.CodeRange)

	// Malformed payload (7 bytes where 8 are needed).
	w.WriteFrame(wire.TDistance, make([]byte, 7))
	w.Flush()
	expectError(wire.CodeMalformed)

	// Unknown record type.
	w.WriteFrame(wire.Type(0x42), nil)
	w.Flush()
	expectError(wire.CodeMalformed)

	// Oversized batch.
	big := make([][2]int32, srv.cfg.MaxBatch+1)
	w.WriteFrame(wire.TBatch, wire.AppendPairs(nil, big))
	w.Flush()
	expectError(wire.CodeTooLarge)

	// Insert on a read-only server.
	w.WriteFrame(wire.TInsert, wire.AppendPairs(nil, [][2]int32{{0, 1}}))
	w.Flush()
	expectError(wire.CodeReadOnly)

	// The connection survived all five errors: a normal request still
	// works.
	w.WriteFrame(wire.TPing, nil)
	w.Flush()
	typ, _, err := r.ReadFrame()
	if err != nil || typ != wire.TPingResp {
		t.Fatalf("ping after errors: (%v, %v)", typ, err)
	}
}

func TestBinaryInsertAndStats(t *testing.T) {
	addr, srv, _, shutdown := binTestServer(t, true)
	defer shutdown()
	c, r, w := binConn(t, addr)
	defer c.Close()

	// Distance before the insert.
	w.WriteFrame(wire.TDistance, wire.AppendPair(nil, 0, 5))
	w.Flush()
	_, p, err := r.ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	before, _ := wire.DecodeDistance(p)

	// Insert a shortcut edge; the next read must observe it.
	w.WriteFrame(wire.TInsert, wire.AppendPairs(nil, [][2]int32{{0, 5}}))
	w.Flush()
	typ, p, err := r.ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	if typ != wire.TInsertResp {
		t.Fatalf("type = %v, want InsertResp", typ)
	}
	accepted, _, epoch, err := wire.DecodeInsertResult(p)
	if err != nil {
		t.Fatal(err)
	}
	if accepted != 1 || epoch == 0 {
		t.Fatalf("insert result accepted=%d epoch=%d", accepted, epoch)
	}

	w.WriteFrame(wire.TDistance, wire.AppendPair(nil, 0, 5))
	w.Flush()
	_, p, err = r.ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	after, _ := wire.DecodeDistance(p)
	if after != 1 {
		t.Fatalf("d(0,5) after inserting edge {0,5}: %d (before %d), want 1", after, before)
	}

	// Stats over the wire: same JSON document as GET /stats, and the
	// binary endpoints show up in it.
	w.WriteFrame(wire.TStats, nil)
	w.Flush()
	typ, p, err = r.ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	if typ != wire.TStatsResp {
		t.Fatalf("type = %v, want StatsResp", typ)
	}
	var doc struct {
		Index struct {
			N int `json:"n"`
		} `json:"index"`
		Live      *LiveStats               `json:"live"`
		Endpoints map[string]EndpointStats `json:"endpoints"`
	}
	if err := json.Unmarshal(p, &doc); err != nil {
		t.Fatalf("stats payload is not the /stats JSON: %v", err)
	}
	if doc.Index.N != 400 || doc.Live == nil || doc.Live.Epoch == 0 {
		t.Fatalf("stats doc: n=%d live=%+v", doc.Index.N, doc.Live)
	}
	if doc.Endpoints["bin_distance"].Requests < 2 || doc.Endpoints["bin_edges"].Pairs != 1 {
		t.Fatalf("binary endpoint metrics missing: %+v", doc.Endpoints)
	}
	_ = srv
}

// TestBinaryBadMagicDropsConnection pins the handshake: a client that
// opens with anything but the protocol magic is cut off before any
// frame is parsed.
func TestBinaryBadMagicDropsConnection(t *testing.T) {
	addr, _, _, shutdown := binTestServer(t, false)
	defer shutdown()
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Write([]byte("GET / HT")); err != nil {
		t.Fatal(err)
	}
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.ReadAll(c); err != nil {
		t.Fatalf("want clean close after bad magic, got %v", err)
	}
}

// TestBinaryCorruptFrameDropsConnection: once framing is untrusted the
// server must drop the connection rather than answer garbage.
func TestBinaryCorruptFrameDropsConnection(t *testing.T) {
	addr, _, _, shutdown := binTestServer(t, false)
	defer shutdown()
	c, r, w := binConn(t, addr)
	defer c.Close()

	// A frame with a bad checksum.
	var buf bytes.Buffer
	bw := wire.NewWriter(&buf)
	bw.WriteFrame(wire.TPing, nil)
	bw.Flush()
	raw := buf.Bytes()
	raw[len(raw)-1] ^= 0xFF
	if _, err := c.Write(raw); err != nil {
		t.Fatal(err)
	}
	_ = w
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, _, err := r.ReadFrame(); err == nil {
		t.Fatal("server answered a corrupt frame")
	}
}

// TestBinaryConcurrentClients hammers one server from many connections
// while (on the live half) writes land, exercising the lock-free
// snapshot path across both protocols. Run under -race in CI.
func TestBinaryConcurrentClients(t *testing.T) {
	addr, srv, _, shutdown := binTestServer(t, true)
	defer shutdown()

	const clients = 8
	const perClient = 200
	var wg sync.WaitGroup
	errc := make(chan error, clients+1)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c, err := net.Dial("tcp", addr)
			if err != nil {
				errc <- err
				return
			}
			defer c.Close()
			if err := wire.WriteMagic(c); err != nil {
				errc <- err
				return
			}
			if err := wire.ReadMagic(c); err != nil {
				errc <- err
				return
			}
			r, w := wire.NewReader(c, 0), wire.NewWriter(c)
			var scratch []byte
			for q := 0; q < perClient; q++ {
				scratch = wire.AppendPair(scratch[:0], int32((id*37+q)%400), int32((q*13)%400))
				if err := w.WriteFrame(wire.TDistance, scratch); err != nil {
					errc <- err
					return
				}
				if err := w.Flush(); err != nil {
					errc <- err
					return
				}
				typ, _, err := r.ReadFrame()
				if err != nil || typ != wire.TDistanceResp {
					errc <- errors.Join(err, errTypeMismatch(typ))
					return
				}
			}
		}(i)
	}
	// Concurrent writer through the Go API while binary reads run.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			if _, err := srv.InsertEdges([][2]int32{{int32(i % 400), int32((i*31 + 1) % 400)}}); err != nil {
				errc <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errc)
	for err := range errc {
		if err != nil {
			t.Fatal(err)
		}
	}
}

func errTypeMismatch(typ wire.Type) error {
	if typ == wire.TDistanceResp {
		return nil
	}
	return errors.New("unexpected response type " + typ.String())
}

// TestBinaryGracefulShutdown: cancelling the context must release an
// idle connection promptly and return nil.
func TestBinaryGracefulShutdown(t *testing.T) {
	g, err := graph.FromEdges(4, [][2]int32{{0, 1}, {1, 2}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := core.BuildParallel(g, []int32{0})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(ix, Config{ShutdownGrace: 500 * time.Millisecond})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.ServeBinary(ctx, ln) }()

	c, r, w := binConn(t, ln.Addr().String())
	defer c.Close()
	w.WriteFrame(wire.TPing, nil)
	w.Flush()
	if typ, _, err := r.ReadFrame(); err != nil || typ != wire.TPingResp {
		t.Fatalf("ping: (%v, %v)", typ, err)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("ServeBinary returned %v on graceful shutdown", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ServeBinary did not return after cancel")
	}
}
