package serve

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"highway/internal/failpoint"
)

// Chaos harness: the capstone of the fault-injection work. Each
// iteration runs a live server against a randomized failpoint schedule
// under a mixed insert/query load, kills it (gracefully or with a
// simulated torn tail, as a crash would leave), restarts from disk and
// checks the two durability invariants end to end:
//
//   - zero acknowledged-edge loss: every batch InsertEdges acknowledged
//     is present after restart (d(a,b)==1 for each acked edge), and the
//     restarted index answers exactly like a from-scratch reference
//     built on base + the acked history — nothing lost, nothing
//     smuggled in from un-acked failed writes;
//   - byte-identical replay: with compaction out of the picture the WAL
//     ends up byte-for-byte equal to magic + one record per acked edge
//     in ack order (failed appends and crash garbage leave no trace),
//     and in every configuration a second restart leaves the log
//     byte-identical (recovery is read-only on an intact log).
//
// Every iteration is seeded, so a failure reproduces with -run
// 'TestChaos.*/iter042'.

// chaosPoints is the failpoint schedule space: each iteration arms a
// random subset with small fail-N-times error budgets (plus occasional
// fsync delays), so faults are transient and the server must come back
// through the degraded-mode probe / rebuild-retry machinery on its own.
var chaosPoints = []string{
	FPWALSync, FPWALAppend, FPWALAppendShort,
	FPRebuild, FPSnapshotWrite, FPWALCompact,
}

func armChaos(t *testing.T, rng *rand.Rand) {
	t.Helper()
	for _, name := range chaosPoints {
		switch roll := rng.Intn(4); {
		case roll == 0:
			spec := fmt.Sprintf("%d*error(chaos: injected %s failure)", 1+rng.Intn(3), name)
			if err := failpoint.Set(name, spec); err != nil {
				t.Fatal(err)
			}
		case roll == 1 && name == FPWALSync:
			// A slow disk, not a broken one.
			if err := failpoint.Set(name, fmt.Sprintf("%d*delay(1ms)", 1+rng.Intn(3))); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// tornTail simulates the disk state a crash mid-append leaves behind:
// garbage after the last acknowledged record. Fewer bytes than one
// record guarantees the tail is torn (no accidental valid record), so
// the check that recovery erases it is deterministic.
func tornTail(t *testing.T, walPath string, rng *rand.Rand) {
	t.Helper()
	f, err := os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	junk := make([]byte, 1+rng.Intn(walRecordSize-1))
	rng.Read(junk)
	if _, err := f.Write(junk); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func randBatch(rng *rand.Rand, n int32, k int) [][2]int32 {
	batch := make([][2]int32, k)
	for i := range batch {
		a, b := rng.Int31n(n), rng.Int31n(n)
		for b == a {
			b = rng.Int31n(n)
		}
		batch[i] = [2]int32{a, b}
	}
	return batch
}

// expectedWALBytes is the byte-exact log an acked history must leave
// behind when no compaction ran: magic, then one record per edge in
// acknowledgement order.
func expectedWALBytes(acked [][2]int32) []byte {
	buf := make([]byte, 0, len(walMagic)+len(acked)*walRecordSize)
	buf = append(buf, walMagic...)
	for _, e := range acked {
		var rec [walRecordSize]byte
		binary.LittleEndian.PutUint32(rec[0:4], uint32(e[0]))
		binary.LittleEndian.PutUint32(rec[4:8], uint32(e[1]))
		binary.LittleEndian.PutUint32(rec[8:12], walSum(e[0], e[1]))
		buf = append(buf, rec[:]...)
	}
	return buf
}

func TestChaosCrashRestartDurability(t *testing.T) {
	iters := 100
	if testing.Short() {
		iters = 10
	}
	g, _, ix := liveBase(t, 240, 6)
	graphPath, indexPath, _ := saveBase(t, g, ix)
	dir := t.TempDir()
	n := int32(g.NumVertices())
	t.Cleanup(failpoint.Reset)

	for it := 0; it < iters; it++ {
		it := it
		t.Run(fmt.Sprintf("iter%03d", it), func(t *testing.T) {
			rng := rand.New(rand.NewSource(0x9E3779B9*int64(it) + 12345))
			walPath := filepath.Join(dir, fmt.Sprintf("chaos-%03d.wal", it))

			// A quarter of the iterations run with an aggressive rebuild
			// threshold so compaction and snapshot persistence are in the
			// blast radius too; the rest disable rebuilds entirely, which
			// is what makes the byte-exact WAL prediction valid for them.
			rebuildOn := rng.Intn(4) == 0
			cfg := LiveConfig{
				DegradedProbeInterval: 2 * time.Millisecond,
				RebuildRetryBase:      2 * time.Millisecond,
				RebuildRetryMax:       8 * time.Millisecond,
				RebuildWorkers:        1,
			}
			if rebuildOn {
				cfg.RebuildThreshold = 8 + rng.Intn(16)
			} else {
				cfg.RebuildThreshold = -1
				cfg.RebuildGrowth = 1 // disabled
			}

			// acked accumulates every batch the server acknowledged,
			// across all kill/restart cycles: the history the restarted
			// server must reproduce exactly.
			var acked [][2]int32
			cycles := 1 + rng.Intn(2)
			for c := 0; c < cycles; c++ {
				srv, err := LoadLive(graphPath, indexPath, walPath, cfg)
				if err != nil {
					t.Fatalf("cycle %d: restart failed: %v", c, err)
				}
				armChaos(t, rng)
				rounds := 4 + rng.Intn(5)
				for r := 0; r < rounds; r++ {
					batch := randBatch(rng, n, 1+rng.Intn(3))
					res, err := srv.InsertEdges(batch)
					switch {
					case err == nil:
						if res.Accepted != len(batch) {
							t.Fatalf("cycle %d round %d: accepted %d of %d with nil error",
								c, r, res.Accepted, len(batch))
						}
						acked = append(acked, batch...)
					case errors.Is(err, ErrDegraded):
						// Rejected whole, durably nothing: the batch must
						// not reappear after restart. Nothing to record.
					default:
						t.Fatalf("cycle %d round %d: insert failed outside the degraded taxonomy: %v", c, r, err)
					}
					// Reads must stay up through every fault mode.
					for q := 0; q < 3; q++ {
						if _, err := srv.Distance(rng.Int31n(n), rng.Int31n(n)); err != nil {
							t.Fatalf("cycle %d round %d: read failed during chaos: %v", c, r, err)
						}
					}
					if rng.Intn(3) == 0 {
						// Let the recovery probe / rebuild retry fire.
						time.Sleep(time.Duration(1+rng.Intn(4)) * time.Millisecond)
					}
				}
				failpoint.Reset()
				if err := srv.Close(); err != nil {
					t.Fatalf("cycle %d: close: %v", c, err)
				}
				if rng.Intn(2) == 0 {
					tornTail(t, walPath, rng)
				}
			}

			// Final restart: clean (no failpoints), read-only — so the log
			// bytes we compare below are exactly what recovery left.
			srv, err := LoadLive(graphPath, indexPath, walPath, cfg)
			if err != nil {
				t.Fatalf("final restart failed: %v", err)
			}
			for _, e := range acked {
				d, err := srv.Distance(e[0], e[1])
				if err != nil {
					t.Fatal(err)
				}
				if d != 1 {
					srv.Close()
					t.Fatalf("acked edge {%d,%d} lost after restart: d=%d", e[0], e[1], d)
				}
			}
			// Full-metric equality against a from-scratch reference: base
			// index + acked history, no WAL, no faults. Catches smuggled
			// un-acked edges, which the d==1 loop above cannot.
			ref, err := NewLive(ix, LiveConfig{RebuildThreshold: -1, RebuildGrowth: 1})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := ref.InsertEdges(acked); err != nil {
				t.Fatal(err)
			}
			for q := 0; q < 30; q++ {
				a, b := rng.Int31n(n), rng.Int31n(n)
				got, err := srv.Distance(a, b)
				if err != nil {
					t.Fatal(err)
				}
				want, err := ref.Distance(a, b)
				if err != nil {
					t.Fatal(err)
				}
				if got != want {
					t.Errorf("d(%d,%d) = %d after restart, reference says %d", a, b, got, want)
				}
			}
			ref.Close()
			if err := srv.Close(); err != nil {
				t.Fatal(err)
			}

			logBytes, err := os.ReadFile(walPath)
			if err != nil {
				t.Fatal(err)
			}
			if !rebuildOn {
				if want := expectedWALBytes(acked); !bytes.Equal(logBytes, want) {
					t.Fatalf("WAL is not byte-identical to the acked history: %d bytes on disk, want %d (%d acked edges)",
						len(logBytes), len(want), len(acked))
				}
			}
			// Replay determinism in every configuration: restarting an
			// intact log must not rewrite it.
			srv2, err := LoadLive(graphPath, indexPath, walPath, cfg)
			if err != nil {
				t.Fatalf("second clean restart failed: %v", err)
			}
			if err := srv2.Close(); err != nil {
				t.Fatal(err)
			}
			again, err := os.ReadFile(walPath)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(logBytes, again) {
				t.Fatalf("restart of an intact log changed it: %d bytes -> %d bytes", len(logBytes), len(again))
			}
		})
	}
}
