package serve

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"highway/internal/dynhl"
	"highway/internal/failpoint"
	"highway/internal/graph"
)

// Chaos harness: the capstone of the fault-injection work. Each
// iteration runs a live server against a randomized failpoint schedule
// under a mixed insert/delete/query load, kills it (gracefully or with
// a simulated torn tail, as a crash would leave), restarts from disk
// and checks the two durability invariants end to end:
//
//   - zero acknowledged-op loss: the restarted index answers exactly
//     like a from-scratch reference built on base + the acked op
//     history, checked at every acked op's endpoints and on random
//     pairs — nothing lost (a vanished delete shows up here just like a
//     vanished insert), nothing smuggled in from un-acked failed
//     writes;
//   - byte-identical replay: with compaction out of the picture the WAL
//     ends up byte-for-byte equal to magic + one record per acked op in
//     ack order — insertions as plain endpoints, deletions as
//     one's-complement records (failed appends and crash garbage leave
//     no trace) — and in every configuration a second restart leaves
//     the log byte-identical (recovery is read-only on an intact log).
//
// Every iteration is seeded, so a failure reproduces with -run
// 'TestChaos.*/iter042'.

// chaosPoints is the failpoint schedule space: each iteration arms a
// random subset with small fail-N-times error budgets (plus occasional
// fsync delays), so faults are transient and the server must come back
// through the degraded-mode probe / rebuild-retry machinery on its own.
var chaosPoints = []string{
	FPWALSync, FPWALAppend, FPWALAppendShort,
	FPRebuild, FPSnapshotWrite, FPWALCompact,
}

func armChaos(t *testing.T, rng *rand.Rand) {
	t.Helper()
	for _, name := range chaosPoints {
		switch roll := rng.Intn(4); {
		case roll == 0:
			spec := fmt.Sprintf("%d*error(chaos: injected %s failure)", 1+rng.Intn(3), name)
			if err := failpoint.Set(name, spec); err != nil {
				t.Fatal(err)
			}
		case roll == 1 && name == FPWALSync:
			// A slow disk, not a broken one.
			if err := failpoint.Set(name, fmt.Sprintf("%d*delay(1ms)", 1+rng.Intn(3))); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// tornTail simulates the disk state a crash mid-append leaves behind:
// garbage after the last acknowledged record. Fewer bytes than one
// record guarantees the tail is torn (no accidental valid record), so
// the check that recovery erases it is deterministic.
func tornTail(t *testing.T, walPath string, rng *rand.Rand) {
	t.Helper()
	f, err := os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	junk := make([]byte, 1+rng.Intn(walRecordSize-1))
	rng.Read(junk)
	if _, err := f.Write(junk); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func randBatch(rng *rand.Rand, n int32, k int) [][2]int32 {
	batch := make([][2]int32, k)
	for i := range batch {
		a, b := rng.Int31n(n), rng.Int31n(n)
		for b == a {
			b = rng.Int31n(n)
		}
		batch[i] = [2]int32{a, b}
	}
	return batch
}

// liveEdges mirrors the currently-live edge set across acked batches,
// so chaos deletions mostly target edges that exist (uniformly random
// pairs would nearly always be acked no-ops and never stress the
// repair path). Seeded with the base graph, so deletions also hit
// edges the base labelling depends on.
type liveEdges struct {
	idx  map[[2]int32]int
	list [][2]int32
}

func newLiveEdges(g *graph.Graph) *liveEdges {
	l := &liveEdges{idx: make(map[[2]int32]int)}
	for v := int32(0); int(v) < g.NumVertices(); v++ {
		for _, u := range g.Neighbors(v) {
			if v < u {
				l.apply(dynhl.Op{A: v, B: u})
			}
		}
	}
	return l
}

func (l *liveEdges) apply(op dynhl.Op) {
	a, b := op.A, op.B
	if a > b {
		a, b = b, a
	}
	k := [2]int32{a, b}
	i, present := l.idx[k]
	switch {
	case op.Del && present:
		last := len(l.list) - 1
		l.list[i] = l.list[last]
		l.idx[l.list[i]] = i
		l.list = l.list[:last]
		delete(l.idx, k)
	case !op.Del && !present && a != b:
		l.idx[k] = len(l.list)
		l.list = append(l.list, k)
	}
}

func (l *liveEdges) ack(ops []dynhl.Op) {
	for _, op := range ops {
		l.apply(op)
	}
}

// randOpBatch draws one single-kind batch for a chaos round: a third of
// the rounds delete currently-live edges, the rest insert random pairs.
// Single-kind batches match the public mutation API (InsertEdges /
// DeleteEdges) while the round interleaving makes the schedule — and
// the WAL — genuinely mixed.
func randOpBatch(rng *rand.Rand, n int32, live *liveEdges) []dynhl.Op {
	k := 1 + rng.Intn(3)
	if rng.Intn(3) == 0 && len(live.list) > 0 {
		ops := make([]dynhl.Op, k)
		for i := range ops {
			e := live.list[rng.Intn(len(live.list))]
			ops[i] = dynhl.Op{A: e[0], B: e[1], Del: true}
		}
		return ops
	}
	return dynhl.InsertOps(randBatch(rng, n, k))
}

// sendOps pushes one single-kind batch through the public mutation API.
func sendOps(srv *Server, ops []dynhl.Op) error {
	pairs := make([][2]int32, len(ops))
	for i, op := range ops {
		pairs[i] = [2]int32{op.A, op.B}
	}
	var err error
	if ops[0].Del {
		_, err = srv.DeleteEdges(pairs)
	} else {
		_, err = srv.InsertEdges(pairs)
	}
	return err
}

// replayOps feeds an acked op history into a live server through the
// public API, preserving op order by splitting it into same-kind runs.
func replayOps(srv *Server, ops []dynhl.Op) error {
	for i := 0; i < len(ops); {
		j := i + 1
		for j < len(ops) && ops[j].Del == ops[i].Del {
			j++
		}
		if err := sendOps(srv, ops[i:j]); err != nil {
			return err
		}
		i = j
	}
	return nil
}

// expectedWALBytes is the byte-exact log an acked op history must leave
// behind when no compaction ran: magic, then one record per op in
// acknowledgement order, deletions in one's-complement encoding.
func expectedWALBytes(acked []dynhl.Op) []byte {
	buf := make([]byte, 0, len(walMagic)+len(acked)*walRecordSize)
	buf = append(buf, walMagic...)
	for _, op := range acked {
		a, b := walEncode(op)
		var rec [walRecordSize]byte
		binary.LittleEndian.PutUint32(rec[0:4], uint32(a))
		binary.LittleEndian.PutUint32(rec[4:8], uint32(b))
		binary.LittleEndian.PutUint32(rec[8:12], walSum(a, b))
		buf = append(buf, rec[:]...)
	}
	return buf
}

func TestChaosCrashRestartDurability(t *testing.T) {
	iters := 100
	if testing.Short() {
		iters = 10
	}
	g, _, ix := liveBase(t, 240, 6)
	graphPath, indexPath, _ := saveBase(t, g, ix)
	dir := t.TempDir()
	n := int32(g.NumVertices())
	t.Cleanup(failpoint.Reset)

	for it := 0; it < iters; it++ {
		it := it
		t.Run(fmt.Sprintf("iter%03d", it), func(t *testing.T) {
			rng := rand.New(rand.NewSource(0x9E3779B9*int64(it) + 12345))
			walPath := filepath.Join(dir, fmt.Sprintf("chaos-%03d.wal", it))

			// A quarter of the iterations run with an aggressive rebuild
			// threshold so compaction and snapshot persistence are in the
			// blast radius too; the rest disable rebuilds entirely, which
			// is what makes the byte-exact WAL prediction valid for them.
			rebuildOn := rng.Intn(4) == 0
			cfg := LiveConfig{
				DegradedProbeInterval: 2 * time.Millisecond,
				RebuildRetryBase:      2 * time.Millisecond,
				RebuildRetryMax:       8 * time.Millisecond,
				RebuildWorkers:        1,
			}
			if rebuildOn {
				cfg.RebuildThreshold = 8 + rng.Intn(16)
			} else {
				cfg.RebuildThreshold = -1
				cfg.RebuildGrowth = 1 // disabled
			}

			// acked accumulates every op batch the server acknowledged,
			// across all kill/restart cycles: the history the restarted
			// server must reproduce exactly. live mirrors its effect so
			// later deletions target real edges.
			var acked []dynhl.Op
			live := newLiveEdges(g)
			cycles := 1 + rng.Intn(2)
			for c := 0; c < cycles; c++ {
				srv, err := LoadLive(graphPath, indexPath, walPath, cfg)
				if err != nil {
					t.Fatalf("cycle %d: restart failed: %v", c, err)
				}
				armChaos(t, rng)
				rounds := 4 + rng.Intn(5)
				for r := 0; r < rounds; r++ {
					batch := randOpBatch(rng, n, live)
					switch err := sendOps(srv, batch); {
					case err == nil:
						acked = append(acked, batch...)
						live.ack(batch)
					case errors.Is(err, ErrDegraded):
						// Rejected whole, durably nothing: the batch must
						// not reappear after restart. Nothing to record.
					default:
						t.Fatalf("cycle %d round %d: mutation failed outside the degraded taxonomy: %v", c, r, err)
					}
					// Reads must stay up through every fault mode.
					for q := 0; q < 3; q++ {
						if _, err := srv.Distance(rng.Int31n(n), rng.Int31n(n)); err != nil {
							t.Fatalf("cycle %d round %d: read failed during chaos: %v", c, r, err)
						}
					}
					if rng.Intn(3) == 0 {
						// Let the recovery probe / rebuild retry fire.
						time.Sleep(time.Duration(1+rng.Intn(4)) * time.Millisecond)
					}
				}
				failpoint.Reset()
				if err := srv.Close(); err != nil {
					t.Fatalf("cycle %d: close: %v", c, err)
				}
				if rng.Intn(2) == 0 {
					tornTail(t, walPath, rng)
				}
			}

			// Final restart: clean (no failpoints), read-only — so the log
			// bytes we compare below are exactly what recovery left.
			srv, err := LoadLive(graphPath, indexPath, walPath, cfg)
			if err != nil {
				t.Fatalf("final restart failed: %v", err)
			}
			// Full-metric equality against a from-scratch reference: base
			// index + acked op history in ack order, no WAL, no faults.
			// Checked at every acked op's endpoints (an insert that
			// vanished or a delete that was forgotten shows up right
			// there) and on random pairs (catches smuggled un-acked
			// writes anywhere in the graph).
			ref, err := NewLive(ix, LiveConfig{RebuildThreshold: -1, RebuildGrowth: 1})
			if err != nil {
				t.Fatal(err)
			}
			if err := replayOps(ref, acked); err != nil {
				t.Fatal(err)
			}
			check := func(a, b int32) {
				got, err := srv.Distance(a, b)
				if err != nil {
					t.Fatal(err)
				}
				want, err := ref.Distance(a, b)
				if err != nil {
					t.Fatal(err)
				}
				if got != want {
					t.Errorf("d(%d,%d) = %d after restart, reference says %d", a, b, got, want)
				}
			}
			for _, op := range acked {
				check(op.A, op.B)
			}
			for q := 0; q < 30; q++ {
				check(rng.Int31n(n), rng.Int31n(n))
			}
			ref.Close()
			if err := srv.Close(); err != nil {
				t.Fatal(err)
			}

			logBytes, err := os.ReadFile(walPath)
			if err != nil {
				t.Fatal(err)
			}
			if !rebuildOn {
				if want := expectedWALBytes(acked); !bytes.Equal(logBytes, want) {
					t.Fatalf("WAL is not byte-identical to the acked history: %d bytes on disk, want %d (%d acked edges)",
						len(logBytes), len(want), len(acked))
				}
			}
			// Replay determinism in every configuration: restarting an
			// intact log must not rewrite it.
			srv2, err := LoadLive(graphPath, indexPath, walPath, cfg)
			if err != nil {
				t.Fatalf("second clean restart failed: %v", err)
			}
			if err := srv2.Close(); err != nil {
				t.Fatal(err)
			}
			again, err := os.ReadFile(walPath)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(logBytes, again) {
				t.Fatalf("restart of an intact log changed it: %d bytes -> %d bytes", len(logBytes), len(again))
			}
		})
	}
}
