package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
)

// TestLiveConcurrentChurnHTTP drives POST /edges, DELETE /edges and
// POST /distance/batch concurrently against background-rebuild snapshot
// swaps — the schedule the race detector needs to see. Unlike the
// insert-only stress test there is no monotonic-distance invariant
// (deletions legitimately raise distances), so the invariants here are:
//
//   - reads never error: every batch query returns 200 with one
//     in-range answer per pair, through every swap and WAL append;
//   - every mutation is acked (this test injects no faults, so the
//     degraded taxonomy should never fire);
//   - the counters reconcile: accepted insert/delete op totals on
//     /stats equal what the writers were acked for.
func TestLiveConcurrentChurnHTTP(t *testing.T) {
	const (
		nVertices = 400
		rounds    = 40
		nReaders  = 3
	)
	g, _, ix := liveBase(t, nVertices, 8)
	graphPath, indexPath, _ := saveBase(t, g, ix)
	walPath := filepath.Join(t.TempDir(), "churn.wal")
	// Threshold low enough that the churn triggers background rebuilds
	// (and WAL compactions) while the writers and readers are live.
	srv, err := LoadLive(graphPath, indexPath, walPath, LiveConfig{RebuildThreshold: 30, RebuildWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// The deleter targets real base edges (captured up front, so no
	// coordination with the inserter is needed): those deletions dirty
	// landmarks and force actual repair work under the churn. Repeats
	// are acked no-ops by contract.
	var baseEdges [][2]int32
	for v := int32(0); v < nVertices; v++ {
		for _, u := range g.Neighbors(v) {
			if v < u {
				baseEdges = append(baseEdges, [2]int32{v, u})
			}
		}
	}

	do := func(method, body string) (int, []byte, error) {
		req, err := http.NewRequest(method, ts.URL+"/edges", bytes.NewReader([]byte(body)))
		if err != nil {
			return 0, nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return 0, nil, err
		}
		defer resp.Body.Close()
		raw, err := io.ReadAll(resp.Body)
		return resp.StatusCode, raw, err
	}
	edgesBody := func(edges [][2]int32) string {
		raw, _ := json.Marshal(map[string]any{"edges": edges})
		return string(raw)
	}

	errc := make(chan error, 2+nReaders)
	var wg sync.WaitGroup

	// Writer 1: inserts random pairs.
	wg.Add(1)
	var inserted int64
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(41))
		for r := 0; r < rounds; r++ {
			batch := randBatch(rng, nVertices, 3)
			code, raw, err := do(http.MethodPost, edgesBody(batch))
			if err != nil || code != http.StatusOK {
				errc <- fmt.Errorf("insert round %d: code %d err %v body %q", r, code, err, raw)
				return
			}
			inserted += int64(len(batch))
		}
	}()

	// Writer 2: deletes base edges.
	wg.Add(1)
	var deleted int64
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(43))
		for r := 0; r < rounds; r++ {
			batch := [][2]int32{
				baseEdges[rng.Intn(len(baseEdges))],
				baseEdges[rng.Intn(len(baseEdges))],
			}
			code, raw, err := do(http.MethodDelete, edgesBody(batch))
			if err != nil || code != http.StatusOK {
				errc <- fmt.Errorf("delete round %d: code %d err %v body %q", r, code, err, raw)
				return
			}
			deleted += int64(len(batch))
		}
	}()

	// Readers: POST /distance/batch must succeed with sane answers on
	// every snapshot the churn publishes.
	for i := 0; i < nReaders; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for r := 0; r < rounds*2; r++ {
				pairs := make([][2]int32, 64)
				for i := range pairs {
					pairs[i] = [2]int32{rng.Int31n(nVertices), rng.Int31n(nVertices)}
				}
				raw, _ := json.Marshal(map[string]any{"pairs": pairs})
				resp, err := http.Post(ts.URL+"/distance/batch", "application/json", bytes.NewReader(raw))
				if err != nil {
					errc <- fmt.Errorf("reader %d round %d: %v", seed, r, err)
					return
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil || resp.StatusCode != http.StatusOK {
					errc <- fmt.Errorf("reader %d round %d: code %d err %v body %q", seed, r, resp.StatusCode, err, body)
					return
				}
				var br struct {
					Distances []int32 `json:"distances"`
				}
				if err := json.Unmarshal(body, &br); err != nil {
					errc <- fmt.Errorf("reader %d round %d: decoding %q: %v", seed, r, body, err)
					return
				}
				if len(br.Distances) != len(pairs) {
					errc <- fmt.Errorf("reader %d round %d: %d answers for %d pairs", seed, r, len(br.Distances), len(pairs))
					return
				}
				for j, d := range br.Distances {
					if d < -1 || int(d) >= nVertices {
						errc <- fmt.Errorf("reader %d round %d: pair %d: insane distance %d", seed, r, j, d)
						return
					}
				}
			}
		}(int64(100 + i))
	}

	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	if t.Failed() {
		t.FailNow()
	}

	st := srv.LiveStats()
	if st.AcceptedEdges != inserted || st.AcceptedDeletes != deleted {
		t.Fatalf("counters do not reconcile: accepted %d/%d inserts, %d/%d deletes",
			st.AcceptedEdges, inserted, st.AcceptedDeletes, deleted)
	}
	if st.EdgesDeleted == 0 {
		t.Fatal("no deletion took effect: the deleter never exercised the repair path")
	}
}
