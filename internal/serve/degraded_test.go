package serve

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"highway/internal/failpoint"
	"highway/internal/workload"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestDegradedReadOnlyUnderFsyncFailure is the degraded-mode acceptance
// test (run under -race in CI): while the WAL's fsync persistently
// fails, the server keeps serving concurrent reads with zero errors,
// rejects every write with the degraded taxonomy starting from the very
// batch that hit the failure, flips /readyz (but not /healthz) to 503 —
// and re-enables writes on its own once the fault clears.
func TestDegradedReadOnlyUnderFsyncFailure(t *testing.T) {
	defer failpoint.Reset()
	g, _, ix := liveBase(t, 300, 6)
	_, _, walPath := saveBase(t, g, ix)
	wal, err := OpenWAL(walPath)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewLive(ix, LiveConfig{
		WAL:                   wal,
		RebuildThreshold:      -1, // isolate degradation from rebuilds
		DegradedProbeInterval: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Healthy writes first: these must survive everything below.
	if _, err := s.InsertEdges([][2]int32{{0, 200}, {1, 201}}); err != nil {
		t.Fatal(err)
	}

	// Readers hammer the server across the whole degraded episode.
	pairs := workload.RandomPairs(g, 64, 7)
	var stop atomic.Bool
	var readErrs atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				p := pairs[i%len(pairs)]
				if _, err := s.Distance(p.S, p.T); err != nil {
					readErrs.Add(1)
				}
			}
		}()
	}

	// Break the disk.
	if err := failpoint.Set(FPWALSync, "error(device gone)"); err != nil {
		t.Fatal(err)
	}
	// The very batch that hits the failure already carries the degraded
	// taxonomy — "within one batch", not eventually.
	if _, err := s.InsertEdges([][2]int32{{2, 202}}); !errors.Is(err, ErrDegraded) {
		t.Fatalf("first write under fsync failure: want ErrDegraded, got %v", err)
	}
	if !s.Degraded() {
		t.Fatal("server not degraded after WAL failure")
	}
	// Subsequent writes are shed before touching the WAL.
	if _, err := s.InsertEdges([][2]int32{{3, 203}}); !errors.Is(err, ErrDegraded) {
		t.Fatalf("second write: want ErrDegraded, got %v", err)
	}

	// HTTP taxonomy: POST /edges → 503 + Retry-After, /readyz → 503,
	// /healthz stays 200 (the process is fine, only durability is gone).
	code, _, eb := postEdges(t, ts.URL, `{"edge":[4,204]}`)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("degraded POST /edges: code %d (%s), want 503", code, eb.Error)
	}
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("degraded /readyz: code %d, want 503", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded /healthz: code %d, want 200", resp.StatusCode)
	}

	st := s.LiveStats()
	if !st.Degraded || st.DegradedReason == "" || st.WritesRejected < 3 {
		t.Fatalf("degraded stats: %+v", st)
	}
	if st.WAL == nil || st.WAL.SyncErrors == 0 {
		t.Fatalf("wal stats missing sync errors: %+v", st.WAL)
	}

	// Let the readers run a while against the degraded server.
	time.Sleep(50 * time.Millisecond)

	// Fix the disk: the recovery probe must re-arm writes by itself.
	failpoint.Clear(FPWALSync)
	waitFor(t, 5*time.Second, "recovery", func() bool { return !s.Degraded() })
	if _, err := s.InsertEdges([][2]int32{{5, 205}}); err != nil {
		t.Fatalf("write after recovery: %v", err)
	}
	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("recovered /readyz: code %d, want 200", resp.StatusCode)
	}
	st = s.LiveStats()
	if st.Degraded || st.Recoveries != 1 {
		t.Fatalf("recovered stats: %+v", st)
	}

	stop.Store(true)
	wg.Wait()
	if n := readErrs.Load(); n != 0 {
		t.Fatalf("%d read errors during degraded episode, want 0", n)
	}

	// The log holds exactly the acknowledged batches: the two healthy
	// ones and the post-recovery one, none of the rejected ones.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	w2, err := OpenWAL(walPath)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	want := [][2]int32{{0, 200}, {1, 201}, {5, 205}}
	if len(w2.Recovered()) != len(want) {
		t.Fatalf("replayed %v, want %v", w2.Recovered(), want)
	}
	for i, e := range want {
		if w2.Recovered()[i] != opOf(e) {
			t.Fatalf("replayed %v, want %v", w2.Recovered(), want)
		}
	}
}

// TestRebuildRetryBackoff pins the rebuild failure policy: a failing
// background rebuild keeps the old snapshot serving, schedules retries
// with backoff instead of refiring on every write, and eventually
// succeeds once the fault clears — all visible in LiveStats.
func TestRebuildRetryBackoff(t *testing.T) {
	defer failpoint.Reset()
	_, _, ix := liveBase(t, 300, 6)
	s, err := NewLive(ix, LiveConfig{
		RebuildThreshold: 4,
		RebuildRetryBase: 10 * time.Millisecond,
		RebuildRetryMax:  40 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// The first two rebuild attempts die at the failpoint, the third
	// succeeds via the retry timer with no further writes arriving.
	if err := failpoint.Set(FPRebuild, "2*error(build exploded)"); err != nil {
		t.Fatal(err)
	}
	edges := make([][2]int32, 0, 4)
	for i := int32(0); i < 4; i++ {
		edges = append(edges, [2]int32{i, 150 + i})
	}
	if _, err := s.InsertEdges(edges); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "rebuild to succeed after retries", func() bool {
		st := s.LiveStats()
		return st.Rebuilds == 1 && !st.Rebuilding
	})
	st := s.LiveStats()
	if st.RebuildErrors != 2 {
		t.Fatalf("RebuildErrors = %d, want 2", st.RebuildErrors)
	}
	if st.RebuildFails != 0 {
		t.Fatalf("RebuildFails = %d after success, want 0", st.RebuildFails)
	}
	// The failpoint fired exactly its budgeted 2 times (hits stop
	// counting once a fail-N-times point exhausts), so the success came
	// from the third attempt.
	if failpoint.Hits(FPRebuild) != 2 {
		t.Fatalf("injected failures = %d, want 2", failpoint.Hits(FPRebuild))
	}
	// Reads and writes kept working the whole time.
	if _, err := s.Distance(0, 150); err != nil {
		t.Fatal(err)
	}
	if _, err := s.InsertEdges([][2]int32{{9, 199}}); err != nil {
		t.Fatal(err)
	}
}

// TestReadyzOnReadOnlyServer pins that /readyz exists (200) on servers
// without a writer side at all.
func TestReadyzOnReadOnlyServer(t *testing.T) {
	_, _, ix := liveBase(t, 200, 4)
	s := New(ix, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	for _, ep := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(ts.URL + ep)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: code %d, want 200", ep, resp.StatusCode)
		}
	}
}
