package serve

// Failpoint site names for the serving tier (see internal/failpoint for
// the arming API and DESIGN.md "Failure modes & degraded operation" for
// what each site is meant to break). Exported so tests in other
// packages — the hlclient resilience tests, the chaos harness — can arm
// them without string drift.
const (
	// FPWALAppend fires before the batch's bytes are written: the whole
	// batch fails cleanly, nothing reaches the file.
	FPWALAppend = "wal.append"
	// FPWALAppendShort simulates a torn write: roughly half the batch's
	// bytes reach the file before the error, exercising the
	// truncate-back-to-last-acknowledged-record repair path.
	FPWALAppendShort = "wal.append.short"
	// FPWALSync fires in place of the post-append fsync, and is also
	// evaluated by the degraded-mode recovery probe — arming it with a
	// persistent error holds the server in degraded read-only mode.
	FPWALSync = "wal.sync"
	// FPWALCompact fires at the start of CompactTo; the old log stays
	// intact.
	FPWALCompact = "wal.compact"
	// FPSnapshotWrite fires at the start of writeSnapshot, failing the
	// snapshot persistence step of a background rebuild.
	FPSnapshotWrite = "serve.snapshot.write"
	// FPRebuild fires at the start of a background rebuild, before any
	// work: the rebuild fails, the old snapshot keeps serving, and the
	// retry/backoff machinery takes over.
	FPRebuild = "serve.rebuild"
	// FPBinWrite fires before each binary-listener frame write,
	// simulating a broken client connection mid-response.
	FPBinWrite = "serve.bin.write"
	// FPQuery fires once per query request at searcher checkout, inside
	// the admission gate's hold. Its error (if any) is discarded — arm
	// it with a delay action to simulate slow queries, which is how the
	// overload tests make admitted requests hold budget long enough for
	// the gate to observably shed.
	FPQuery = "serve.query"
)
