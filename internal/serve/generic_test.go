package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"highway/internal/gen"
	"highway/internal/isl"
	"highway/internal/pll"
)

// TestNewIndexServesAnyMethod drives the full HTTP surface over
// non-highway indexes through the method-agnostic constructor: single
// queries, batches, stats (which must name the method), and the
// absence of the mutation API on a read-only server.
func TestNewIndexServesAnyMethod(t *testing.T) {
	g := gen.BarabasiAlbert(200, 3, 9)
	ctx := context.Background()

	pllIx, err := pll.Build(ctx, g)
	if err != nil {
		t.Fatal(err)
	}
	islIx, err := isl.Build(ctx, g, isl.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}

	for name, s := range map[string]*Server{
		"pll": NewIndex(pllIx, Config{}),
		"isl": NewIndex(islIx, Config{}),
	} {
		t.Run(name, func(t *testing.T) {
			ts := httptest.NewServer(s.Handler())
			defer ts.Close()

			var dr struct {
				Distance int32 `json:"distance"`
			}
			if code := getJSON(t, ts.URL+"/distance?s=0&t=7", &dr); code != http.StatusOK {
				t.Fatalf("GET /distance: status %d", code)
			}
			// Every method is exact, so the full PLL cover is ground
			// truth for both servers.
			if want := pllIx.Distance(0, 7); dr.Distance != want {
				t.Fatalf("served distance %d, want %d", dr.Distance, want)
			}

			resp, err := http.Post(ts.URL+"/distance/batch", "application/json",
				strings.NewReader(`{"pairs":[[0,1],[2,3]]}`))
			if err != nil {
				t.Fatal(err)
			}
			var br struct {
				Count     int     `json:"count"`
				Distances []int32 `json:"distances"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if br.Count != 2 {
				t.Fatalf("batch count %d, want 2", br.Count)
			}

			var st struct {
				Index struct {
					Method string `json:"method"`
					N      int    `json:"n"`
				} `json:"index"`
			}
			if code := getJSON(t, ts.URL+"/stats", &st); code != http.StatusOK {
				t.Fatalf("GET /stats: status %d", code)
			}
			if st.Index.Method != name {
				t.Fatalf("/stats method = %q, want %q", st.Index.Method, name)
			}
			if st.Index.N != g.NumVertices() {
				t.Fatalf("/stats n = %d, want %d", st.Index.N, g.NumVertices())
			}

			// Read-only: the mutation routes are not registered at all.
			resp, err = http.Post(ts.URL+"/edges", "application/json", strings.NewReader(`{"edge":[0,1]}`))
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				t.Fatal("read-only generic server accepted POST /edges")
			}

			// Out-of-range validation still works without a graph.
			resp, err = http.Get(ts.URL + "/distance?s=0&t=99999")
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("out-of-range vertex: status %d, want 400", resp.StatusCode)
			}
		})
	}
}
