package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"
)

// Handler returns the HTTP API as an http.Handler. Routes:
//
//	GET    /                 self-documenting endpoint listing
//	GET    /distance?s=&t=   one exact distance
//	POST   /distance/batch   {"pairs":[[s,t],...]} -> {"distances":[...]}
//	GET    /stats            index + live-serving stats, per-endpoint counters
//	GET    /healthz          liveness probe (process up)
//	GET    /readyz           readiness probe (503 while degraded)
//
// Live servers (NewLive/LoadLive) additionally expose the mutation API:
//
//	POST   /edges            {"edge":[a,b]} or {"edges":[[a,b],...]}
//	DELETE /edges            same body; decremental repair of the labelling
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /{$}", s.handleHelp)
	// Query and mutation endpoints sit behind the admission gates;
	// monitoring endpoints (/stats, /healthz, /readyz, /) never do — an
	// overloaded server must still be observable and drainable.
	mux.HandleFunc("GET /distance", s.timed(epDistance, s.gated(&s.readGate, s.handleDistance)))
	mux.HandleFunc("POST /distance/batch", s.timed(epBatch, s.gated(&s.readGate, s.handleBatch)))
	mux.HandleFunc("GET /stats", s.timed(epStats, s.handleStats))
	mux.HandleFunc("GET /healthz", s.timed(epHealth, s.handleHealth))
	mux.HandleFunc("GET /readyz", s.timed(epReady, s.handleReady))
	if s.up != nil {
		mux.HandleFunc("POST /edges", s.timed(epEdges, s.gated(&s.writeGate, s.handleInsertEdges)))
		mux.HandleFunc("DELETE /edges", s.timed(epDelete, s.gated(&s.writeGate, s.handleDeleteEdges)))
	}
	return mux
}

// handlerFunc is an http.HandlerFunc that also reports how many pairs it
// answered and whether it failed, for the metric set.
type handlerFunc func(w http.ResponseWriter, r *http.Request) (pairs int64, failed bool)

// timed wraps a handler with latency/QPS accounting for one endpoint.
func (s *Server) timed(ep int, h handlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		pairs, failed := h(w, r)
		s.metrics.observe(ep, pairs, time.Since(start), failed)
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

// errorBody is the JSON shape of every non-2xx response.
type errorBody struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorBody{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) handleHelp(w http.ResponseWriter, r *http.Request) {
	endpoints := map[string]string{
		"GET /distance?s=&t=":  "one exact distance; -1 = disconnected",
		"POST /distance/batch": `{"pairs":[[s,t],...]} -> {"distances":[...]}; max ` + strconv.Itoa(s.cfg.MaxBatch) + " pairs",
		"GET /stats":           "index + live-serving stats, per-endpoint latency/QPS counters",
		"GET /healthz":         "liveness probe (process up)",
		"GET /readyz":          "readiness probe: 503 while the server is degraded (load balancers drain on this, not /healthz)",
	}
	if s.up != nil {
		endpoints["POST /edges"] = `{"edge":[a,b]} or {"edges":[[a,b],...]} -> {"accepted":n,"inserted":m,"epoch":e}`
		endpoints["DELETE /edges"] = `same body as POST -> {"accepted":n,"deleted":m,"epoch":e}; absent edges are acked no-ops`
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"service":   "hlserve: exact distance oracle (highway cover labelling, EDBT 2019)",
		"endpoints": endpoints,
	})
}

// distanceResponse is the JSON shape of GET /distance.
type distanceResponse struct {
	S        int32 `json:"s"`
	T        int32 `json:"t"`
	Distance int32 `json:"distance"`
}

func (s *Server) handleDistance(w http.ResponseWriter, r *http.Request) (int64, bool) {
	sv, err1 := strconv.ParseInt(r.URL.Query().Get("s"), 10, 32)
	tv, err2 := strconv.ParseInt(r.URL.Query().Get("t"), 10, 32)
	if err1 != nil || err2 != nil {
		writeError(w, http.StatusBadRequest, `need integer query params "s" and "t"`)
		return 0, true
	}
	d, err := s.Distance(int32(sv), int32(tv))
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return 0, true
	}
	writeJSON(w, http.StatusOK, distanceResponse{S: int32(sv), T: int32(tv), Distance: d})
	return 1, false
}

// batchRequest is the JSON shape of POST /distance/batch. Pairs are
// 2-element [s,t] arrays, the compact form batch clients generate
// trivially in any language. They decode as slices (not [2]int32)
// because encoding/json silently pads or truncates fixed-size arrays —
// a [s,t,junk] triple must be a 400, not a guess.
type batchRequest struct {
	Pairs [][]int32 `json:"pairs"`
}

// batchResponse mirrors batchRequest: Distances[i] answers Pairs[i].
type batchResponse struct {
	Count     int     `json:"count"`
	Distances []int32 `json:"distances"`
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) (int64, bool) {
	var req batchRequest
	// 64 bytes/pair comfortably covers pretty-printed JSON for MaxBatch
	// pairs; the hard pair-count check below is the real limit.
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, int64(s.cfg.MaxBatch)*64+1024))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge,
				"batch request body exceeds %d bytes", tooLarge.Limit)
			return 0, true
		}
		writeError(w, http.StatusBadRequest, "malformed batch request: %v", err)
		return 0, true
	}
	// Reject trailing garbage after the object — a concatenated second
	// request must fail loudly, not be half-answered. The byte cap can
	// also trip here (a valid object followed by bytes past the limit),
	// and must still surface as 413, not a generic 400.
	if err := dec.Decode(&struct{}{}); err != io.EOF {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge,
				"batch request body exceeds %d bytes", tooLarge.Limit)
			return 0, true
		}
		writeError(w, http.StatusBadRequest, "malformed batch request: trailing data after JSON object")
		return 0, true
	}
	if len(req.Pairs) > s.cfg.MaxBatch {
		writeError(w, http.StatusRequestEntityTooLarge,
			"batch of %d pairs exceeds limit %d", len(req.Pairs), s.cfg.MaxBatch)
		return 0, true
	}
	pairs := make([][2]int32, len(req.Pairs))
	for i, p := range req.Pairs {
		if len(p) != 2 {
			writeError(w, http.StatusBadRequest, "pair %d: want [s,t], got %d elements", i, len(p))
			return 0, true
		}
		if err := s.checkVertex(p[0]); err != nil {
			writeError(w, http.StatusBadRequest, "pair %d: %v", i, err)
			return 0, true
		}
		if err := s.checkVertex(p[1]); err != nil {
			writeError(w, http.StatusBadRequest, "pair %d: %v", i, err)
			return 0, true
		}
		pairs[i] = [2]int32{p[0], p[1]}
	}
	// One searcher answers the whole batch through the snapshot's best
	// execution path (vectorized when the method provides one): the
	// dispatch cost is amortized over len(Pairs) queries, and all answers
	// come from one consistent snapshot even if writers publish
	// mid-request. The request context cancels an abandoned batch — a
	// disconnected client stops burning CPU within ~1k pairs.
	distances, err := s.DistanceBatchContext(r.Context(), pairs, nil)
	if err != nil {
		// Cancellation: the client is gone (or the server is shutting
		// down), so there is nobody to answer. Validation already passed,
		// so no other error is possible here.
		return 0, true
	}
	writeJSON(w, http.StatusOK, batchResponse{Count: len(distances), Distances: distances})
	return int64(len(distances)), false
}

// edgesRequest is the JSON shape of POST and DELETE /edges: either one
// edge or a batch, not both. Edges decode as slices (not [2]int32) for
// the same reason as batchRequest: a [a,b,junk] triple must be a 400,
// not a guess.
type edgesRequest struct {
	Edge  []int32   `json:"edge"`
	Edges [][]int32 `json:"edges"`
}

// decodeEdgesRequest parses and validates an /edges body (both
// methods). On failure it has already written the error response and
// returns ok=false.
func (s *Server) decodeEdgesRequest(w http.ResponseWriter, r *http.Request) ([][2]int32, bool) {
	var req edgesRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, int64(s.cfg.MaxBatch)*64+1024))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge,
				"update request body exceeds %d bytes", tooLarge.Limit)
			return nil, false
		}
		writeError(w, http.StatusBadRequest, "malformed update request: %v", err)
		return nil, false
	}
	if err := dec.Decode(&struct{}{}); err != io.EOF {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge,
				"update request body exceeds %d bytes", tooLarge.Limit)
			return nil, false
		}
		writeError(w, http.StatusBadRequest, "malformed update request: trailing data after JSON object")
		return nil, false
	}
	if (req.Edge == nil) == (req.Edges == nil) {
		writeError(w, http.StatusBadRequest, `want exactly one of "edge" or "edges"`)
		return nil, false
	}
	pairs := req.Edges
	if req.Edge != nil {
		pairs = [][]int32{req.Edge}
	}
	if len(pairs) > s.cfg.MaxBatch {
		writeError(w, http.StatusRequestEntityTooLarge,
			"batch of %d edges exceeds limit %d", len(pairs), s.cfg.MaxBatch)
		return nil, false
	}
	edges := make([][2]int32, len(pairs))
	for i, e := range pairs {
		if len(e) != 2 {
			writeError(w, http.StatusBadRequest, "edge %d: want [a,b], got %d elements", i, len(e))
			return nil, false
		}
		edges[i] = [2]int32{e[0], e[1]}
	}
	return edges, true
}

// writeMutationError maps the mutation error taxonomy (shared by
// inserts and deletes) onto HTTP statuses.
func writeMutationError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrClosed):
		writeError(w, http.StatusServiceUnavailable, "%v", err)
	case errors.Is(err, ErrDegraded):
		// Durability is gone, not the server: reads still work, the
		// recovery probe may re-arm writes, so tell the client when to
		// come back rather than just failing.
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, "%v", err)
	case errors.Is(err, ErrEdgeRange):
		writeError(w, http.StatusBadRequest, "%v", err)
	default:
		// Freeze or apply failure: the batch was NOT applied.
		writeError(w, http.StatusInternalServerError, "%v", err)
	}
}

func (s *Server) handleInsertEdges(w http.ResponseWriter, r *http.Request) (int64, bool) {
	edges, ok := s.decodeEdgesRequest(w, r)
	if !ok {
		return 0, true
	}
	res, err := s.InsertEdges(edges)
	if err != nil {
		writeMutationError(w, err)
		return 0, true
	}
	writeJSON(w, http.StatusOK, res)
	return int64(res.Accepted), false
}

func (s *Server) handleDeleteEdges(w http.ResponseWriter, r *http.Request) (int64, bool) {
	edges, ok := s.decodeEdgesRequest(w, r)
	if !ok {
		return 0, true
	}
	res, err := s.DeleteEdges(edges)
	if err != nil {
		writeMutationError(w, err)
		return 0, true
	}
	writeJSON(w, http.StatusOK, res)
	return int64(res.Accepted), false
}

// statsResponse is the JSON shape of GET /stats.
type statsResponse struct {
	// Epoch is the served snapshot epoch at top level — one place for
	// routers, fencing tests and dashboards to read it, on every role
	// (read-only servers report 0; the live section repeats it for
	// live servers).
	Epoch         uint64                   `json:"epoch"`
	Index         indexStats               `json:"index"`
	Live          *LiveStats               `json:"live,omitempty"`
	Replication   *ReplicationStats        `json:"replication,omitempty"`
	Admission     AdmissionStats           `json:"admission"`
	UptimeSeconds float64                  `json:"uptime_seconds"`
	Endpoints     map[string]EndpointStats `json:"endpoints"`
}

type indexStats struct {
	Method       string  `json:"method,omitempty"`
	NumVertices  int     `json:"n"`
	NumEdges     int64   `json:"m"`
	NumLandmarks int     `json:"landmarks"`
	NumEntries   int64   `json:"entries"`
	AvgLabelSize float64 `json:"avg_label_size"`
	MaxLabelSize int     `json:"max_label_size"`
	SizeBytes    int64   `json:"size_bytes,omitempty"`
	Bytes8       int64   `json:"bytes_compressed"`
}

// statsDoc builds the stats document served by GET /stats and, via the
// binary listener, by Stats request frames — one shape, two protocols.
func (s *Server) statsDoc() statsResponse {
	st := s.snap.Load().ix.Stats()
	return statsResponse{
		Epoch:       s.Epoch(),
		Live:        s.LiveStats(),
		Replication: s.replicationStats(),
		Admission:   s.AdmissionStats(),
		Index: indexStats{
			Method:       st.Method,
			NumVertices:  st.NumVertices,
			NumEdges:     st.NumEdges,
			NumLandmarks: st.NumLandmarks,
			NumEntries:   st.NumEntries,
			AvgLabelSize: st.AvgLabelSize,
			MaxLabelSize: st.MaxLabelSize,
			SizeBytes:    st.SizeBytes,
			Bytes8:       st.Bytes8,
		},
		UptimeSeconds: time.Since(s.started).Seconds(),
		Endpoints:     s.metrics.snapshot(time.Since(s.started)),
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) (int64, bool) {
	writeJSON(w, http.StatusOK, s.statsDoc())
	return 0, false
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) (int64, bool) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	return 0, false
}

// handleReady is the readiness (as opposed to liveness) probe: a load
// balancer should stop routing *writes* here while the server is
// degraded, without the process being restarted — /healthz stays 200,
// /readyz flips to 503. It also guards the window before the first
// snapshot is published, for symmetry with servers that may one day
// load asynchronously.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) (int64, bool) {
	if s.snap.Load() == nil {
		writeError(w, http.StatusServiceUnavailable, "loading initial snapshot")
		return 0, true
	}
	if s.Degraded() {
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{
			"status": "degraded",
			"detail": "WAL unwritable: writes rejected, reads served from the last snapshot",
		})
		return 0, true
	}
	if rs := s.replicationStats(); rs != nil {
		if !rs.Bootstrapped {
			// A follower that has not installed any state yet answers
			// queries over an empty vertex range; routers must not send
			// reads here until the first snapshot lands.
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusServiceUnavailable, map[string]any{
				"status":            "bootstrapping",
				"detail":            "awaiting replication snapshot",
				"replication_epoch": rs.Epoch,
			})
			return 0, true
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"status":                  "ready",
			"replication_epoch":       rs.Epoch,
			"replication_lag_batches": rs.LagBatches,
			"replication_lag_ms":      rs.LagMs,
		})
		return 0, false
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
	return 0, false
}
