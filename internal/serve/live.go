package serve

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"highway/internal/core"
	"highway/internal/dynhl"
	"highway/internal/graph"
)

// LiveConfig tunes an updatable Server. The zero value serves live
// updates in memory only (no WAL, default rebuild thresholds).
type LiveConfig struct {
	Config

	// WAL, when non-nil, makes accepted writes durable: every batch is
	// appended (one fsync per request) before it is applied, and the
	// background rebuild persists a compacted snapshot next to the log.
	// The server owns the WAL once passed in and closes it in Close.
	WAL *WAL

	// RebuildThreshold is the number of accepted edges since the last
	// full rebuild (equivalently, the WAL length) that triggers a
	// background rebuild + compaction. 0 means DefaultRebuildThreshold;
	// negative disables the count trigger.
	RebuildThreshold int

	// RebuildGrowth triggers a rebuild when the labelling has grown past
	// this factor of its entry count at the last rebuild (drift measured
	// in label entries, the paper's size(L)). 0 means
	// DefaultRebuildGrowth; values ≤ 1 disable the growth trigger.
	RebuildGrowth float64

	// RebuildWorkers is the worker count for the background
	// direction-optimizing build (0 = GOMAXPROCS).
	RebuildWorkers int
}

// DefaultRebuildThreshold is the accepted-edge count that triggers a
// background rebuild when LiveConfig.RebuildThreshold is zero.
const DefaultRebuildThreshold = 8192

// DefaultRebuildGrowth is the label-entry growth factor that triggers a
// background rebuild when LiveConfig.RebuildGrowth is zero.
const DefaultRebuildGrowth = 1.5

// ErrReadOnly is returned by InsertEdges on a server built with New.
var ErrReadOnly = errors.New("serve: read-only server (built without NewLive)")

// ErrClosed is returned by InsertEdges after Close.
var ErrClosed = errors.New("serve: server is closed")

// ErrEdgeRange is wrapped by InsertEdges when a batch names a vertex
// outside the graph: a client fault (HTTP 400), distinguishable with
// errors.Is from server-side failures (HTTP 500).
var ErrEdgeRange = errors.New("serve: edge endpoint out of range")

// InsertResult reports one accepted update batch.
type InsertResult struct {
	// Accepted is the number of edges validated and (if a WAL is
	// configured) durably logged — the whole batch, including edges that
	// turn out to be duplicates or self-loops.
	Accepted int `json:"accepted"`
	// Inserted is the number of edges that were actually new.
	Inserted int `json:"inserted"`
	// Epoch is the snapshot epoch the batch is visible at: every read
	// that starts after InsertEdges returns sees at least this epoch.
	Epoch uint64 `json:"epoch"`
}

// updater is the writer half of a live server. All fields are guarded
// by mu except the atomic monitoring counters at the bottom.
type updater struct {
	mu  sync.Mutex
	cfg LiveConfig

	// dyn is the mutable truth: the dynamic labelling every accepted
	// batch is applied to. Its labelling is always identical to a
	// from-scratch build on the current edge set (internal/dynhl's
	// invariant), which is what makes WAL replay and snapshot
	// publication exact.
	dyn *dynhl.Index
	wal *WAL // nil when running without durability

	// lastGraph is the frozen graph of the newest published snapshot;
	// the background rebuild runs the full builder over it.
	lastGraph *graph.Graph

	// sinceRebuild counts accepted edges since the last completed
	// rebuild/compaction (== WAL length when a WAL is configured).
	sinceRebuild int
	// baseEntries is size(L) at the last completed rebuild, the
	// denominator of the growth trigger.
	baseEntries int64
	// delta collects batches accepted while a rebuild is in flight;
	// they are replayed onto the fresh index before it is published.
	delta      [][2]int32
	rebuilding bool
	closed     bool
	wg         sync.WaitGroup // in-flight rebuild goroutine

	// Monitoring counters (read lock-free by /stats).
	epoch         atomic.Uint64
	rebuilds      atomic.Int64
	rebuildErrs   atomic.Int64
	lastRebuildNs atomic.Int64
	acceptedTotal atomic.Int64
}

// NewLive returns an updatable Server seeded from ix. If cfg.WAL is set,
// any edges recovered from the log are replayed first (through the
// copy-on-write dynhl.FromCore conversion), so the served snapshot
// reflects every write acknowledged before a crash. The server takes
// ownership of the WAL.
func NewLive(ix *core.Index, cfg LiveConfig) (*Server, error) {
	// The server owns cfg.WAL from here on, including on error paths.
	fail := func(err error) (*Server, error) {
		if cfg.WAL != nil {
			cfg.WAL.Close()
		}
		return nil, err
	}
	dyn, err := dynhl.FromCore(ix)
	if err != nil {
		return fail(fmt.Errorf("serve: live conversion: %w", err))
	}
	s := newServer(ix, ix.Graph().NumVertices(), cfg.Config)
	up := &updater{cfg: cfg, dyn: dyn, wal: cfg.WAL, lastGraph: ix.Graph(), baseEntries: ix.NumEntries()}
	s.up = up
	if up.wal != nil {
		if rec := up.wal.Recovered(); len(rec) > 0 {
			if _, err := dyn.Apply(rec); err != nil {
				return fail(fmt.Errorf("serve: wal replay: %w", err))
			}
			g, fresh, err := dyn.Freeze()
			if err != nil {
				return fail(fmt.Errorf("serve: wal replay freeze: %w", err))
			}
			up.lastGraph = g
			up.epoch.Store(1)
			s.snap.Store(newSnapshot(fresh, 1))
		}
		up.sinceRebuild = up.wal.Len()
	}
	return s, nil
}

// LoadLive assembles a live server from files: it loads the newest
// persisted state (the WAL's compacted snapshot pair if a rebuild wrote
// one, else the base graph+index files), opens the WAL at walPath and
// replays it. This is the crash-recovery entry point hlserve uses; the
// combination (snapshot ⊕ WAL replay) always reconstructs exactly the
// acknowledged edge set, because compaction persists the snapshot
// before truncating the log and replay is idempotent.
func LoadLive(graphPath, indexPath, walPath string, cfg LiveConfig) (*Server, error) {
	wal, err := OpenWAL(walPath)
	if err != nil {
		return nil, err
	}
	var ix *core.Index
	if _, serr := os.Stat(wal.SnapshotPath()); serr == nil {
		_, ix, err = loadSnapshot(wal.SnapshotPath())
	} else {
		var g *graph.Graph
		g, err = graph.LoadBinary(graphPath)
		if err == nil {
			ix, err = core.Load(indexPath, g)
		}
	}
	if err != nil {
		wal.Close()
		return nil, err
	}
	cfg.WAL = wal
	return NewLive(ix, cfg) // NewLive owns (and closes) the WAL on failure
}

// snapMagic heads the single-file graph+index snapshot a rebuild
// persists next to the WAL. One file, one atomic rename: the graph and
// the labelling can never be on disk out of step with each other,
// which a two-file scheme could not guarantee across a crash.
const snapMagic = "HWLSNAP1"

// writeSnapshot persists graph+index as one file, fsynced before an
// atomic rename into place — only after this returns may the WAL be
// compacted, or a power failure could lose acknowledged edges.
func writeSnapshot(path string, g *graph.Graph, ix *core.Index) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("serve: snapshot: %w", err)
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	_, err = bw.WriteString(snapMagic)
	if err == nil {
		err = g.WriteBinary(bw)
	}
	if err == nil {
		err = ix.WriteFormat(bw, core.FormatV2)
	}
	if err == nil {
		err = bw.Flush()
	}
	if err == nil {
		err = f.Sync() // contents must be durable before the rename publishes them
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("serve: snapshot: %w", err)
	}
	syncDir(filepath.Dir(path))
	return nil
}

// loadSnapshot reads a snapshot written by writeSnapshot.
func loadSnapshot(path string) (*graph.Graph, *core.Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, fmt.Errorf("serve: snapshot: %w", err)
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<20)
	var magic [len(snapMagic)]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil || string(magic[:]) != snapMagic {
		return nil, nil, fmt.Errorf("serve: %s is not a serving snapshot (bad magic)", path)
	}
	g, err := graph.ReadBinary(br)
	if err != nil {
		return nil, nil, fmt.Errorf("serve: snapshot graph: %w", err)
	}
	ix, err := core.Read(br, g)
	if err != nil {
		return nil, nil, fmt.Errorf("serve: snapshot index: %w", err)
	}
	return g, ix, nil
}

// InsertEdges accepts a batch of undirected edge insertions: validates
// every endpoint (the whole batch is rejected on any invalid vertex —
// no partial application), appends the batch to the WAL with one fsync,
// applies it to the dynamic labelling, and publishes a fresh snapshot
// that every subsequent read observes. Duplicate edges and self-loops
// are accepted but ignored (counted in Accepted, not Inserted), which
// is what makes WAL replay idempotent. Safe for concurrent use; writers
// are serialized, readers never blocked.
func (s *Server) InsertEdges(edges [][2]int32) (InsertResult, error) {
	if s.up == nil {
		return InsertResult{}, ErrReadOnly
	}
	for _, e := range edges {
		if e[0] < 0 || int(e[0]) >= s.n || e[1] < 0 || int(e[1]) >= s.n {
			return InsertResult{}, fmt.Errorf("%w: {%d,%d} outside [0,%d)", ErrEdgeRange, e[0], e[1], s.n)
		}
	}
	up := s.up
	up.mu.Lock()
	defer up.mu.Unlock()
	if up.closed {
		return InsertResult{}, ErrClosed
	}
	if len(edges) == 0 {
		return InsertResult{Epoch: up.epoch.Load()}, nil
	}
	// Durability first: the batch must be on disk before any state the
	// crash-recovery path cannot reconstruct is mutated.
	if up.wal != nil {
		if err := up.wal.Append(edges); err != nil {
			return InsertResult{}, err
		}
	}
	inserted, err := up.dyn.Apply(edges)
	if err != nil {
		// Unreachable after the validation above; keep the state
		// machine honest anyway.
		return InsertResult{}, err
	}
	g, fresh, err := up.dyn.Freeze()
	if err != nil {
		return InsertResult{}, fmt.Errorf("serve: freeze: %w", err)
	}
	up.lastGraph = g
	epoch := up.epoch.Add(1)
	s.snap.Store(newSnapshot(fresh, epoch))

	up.sinceRebuild += len(edges)
	up.acceptedTotal.Add(int64(len(edges)))
	if up.rebuilding {
		up.delta = append(up.delta, edges...)
	}
	s.maybeRebuild(fresh.NumEntries())
	return InsertResult{Accepted: len(edges), Inserted: inserted, Epoch: epoch}, nil
}

// rebuildThreshold resolves the configured accepted-edge trigger.
func (up *updater) rebuildThreshold() int {
	switch {
	case up.cfg.RebuildThreshold == 0:
		return DefaultRebuildThreshold
	case up.cfg.RebuildThreshold < 0:
		return 0 // disabled
	default:
		return up.cfg.RebuildThreshold
	}
}

// rebuildGrowth resolves the configured label-entry growth trigger.
func (up *updater) rebuildGrowth() float64 {
	if up.cfg.RebuildGrowth == 0 {
		return DefaultRebuildGrowth
	}
	if up.cfg.RebuildGrowth <= 1 {
		return 0 // disabled
	}
	return up.cfg.RebuildGrowth
}

// maybeRebuild (mu held) checks the staleness triggers and kicks off the
// background rebuild goroutine if one is due and none is running.
func (s *Server) maybeRebuild(entries int64) {
	up := s.up
	if up.rebuilding || up.closed {
		return
	}
	due := false
	if th := up.rebuildThreshold(); th > 0 && up.sinceRebuild >= th {
		due = true
	}
	if gf := up.rebuildGrowth(); gf > 1 && up.baseEntries > 0 &&
		float64(entries) >= gf*float64(up.baseEntries) {
		due = true
	}
	if !due {
		return
	}
	up.rebuilding = true
	up.delta = up.delta[:0]
	g := up.lastGraph // frozen: safe to read outside the lock
	lms := append([]int32(nil), up.dyn.Landmarks()...)
	up.wg.Add(1)
	go s.rebuild(g, lms)
}

// rebuild runs the full direction-optimizing parallel builder over a
// frozen graph, then swaps the fresh index in. Writes keep landing on
// the old state while it runs; the batches accepted in the meantime
// (up.delta) are replayed onto the fresh index before it is published,
// so the swap is never a step backwards. With a WAL configured, the
// fresh snapshot is persisted and the log compacted down to the delta.
func (s *Server) rebuild(g *graph.Graph, landmarks []int32) {
	up := s.up
	defer up.wg.Done()
	start := time.Now()
	ix, err := core.BuildOpts(context.Background(), g, landmarks,
		core.Options{Workers: up.cfg.RebuildWorkers})
	var dyn *dynhl.Index
	if err == nil {
		dyn, err = dynhl.FromCore(ix)
	}
	// Persist the rebuilt base BEFORE taking the writer lock: g and ix
	// are immutable, so the (possibly long) disk write must not stall
	// InsertEdges or /stats. Order still matters for crash safety —
	// once the snapshot is durably on disk, compacting the log (under
	// the lock, below) cannot lose edges; a crash in between is benign
	// because replaying the old, longer log against the new snapshot
	// is idempotent.
	persisted := false
	if err == nil && up.wal != nil {
		if perr := writeSnapshot(up.wal.SnapshotPath(), g, ix); perr == nil {
			persisted = true
		} else {
			up.rebuildErrs.Add(1)
		}
	}

	up.mu.Lock()
	defer up.mu.Unlock()
	up.rebuilding = false
	if up.closed {
		return
	}
	if err != nil {
		// The old state keeps serving; the failure is surfaced in
		// /stats and the triggers will fire again.
		up.rebuildErrs.Add(1)
		up.delta = nil
		return
	}
	delta := up.delta
	up.delta = nil
	fresh, freshGraph := ix, g
	if len(delta) > 0 {
		if _, err := dyn.Apply(delta); err != nil {
			up.rebuildErrs.Add(1)
			return
		}
		freshGraph, fresh, err = dyn.Freeze()
		if err != nil {
			up.rebuildErrs.Add(1)
			return
		}
	}
	up.dyn = dyn
	up.lastGraph = freshGraph
	up.baseEntries = fresh.NumEntries()
	up.sinceRebuild = len(delta)
	epoch := up.epoch.Add(1)
	s.snap.Store(newSnapshot(fresh, epoch))

	if up.wal != nil && persisted {
		// Shrink the log to the delta. Skipped when the snapshot
		// persist failed: the full log plus the old base still
		// reconstruct everything, so failing to compact is safe and
		// failing to compact *after a failed persist* would not be.
		if err := up.wal.CompactTo(delta); err != nil {
			up.rebuildErrs.Add(1)
		}
	}
	up.rebuilds.Add(1)
	up.lastRebuildNs.Store(int64(time.Since(start)))
}

// Rebuilding reports whether a background rebuild is in flight.
func (s *Server) Rebuilding() bool {
	if s.up == nil {
		return false
	}
	s.up.mu.Lock()
	defer s.up.mu.Unlock()
	return s.up.rebuilding
}

// Close shuts the writer side down: it waits for an in-flight
// background rebuild to finish and closes the WAL. Reads keep working
// against the last snapshot; InsertEdges returns ErrClosed afterwards.
// Close is a no-op on read-only servers.
func (s *Server) Close() error {
	if s.up == nil {
		return nil
	}
	up := s.up
	up.mu.Lock()
	if up.closed {
		up.mu.Unlock()
		return nil
	}
	up.closed = true
	up.mu.Unlock()
	up.wg.Wait()
	if up.wal != nil {
		return up.wal.Close()
	}
	return nil
}

// LiveStats is the snapshot/WAL/rebuild section of /stats, present only
// on live servers.
type LiveStats struct {
	Epoch             uint64  `json:"epoch"`
	AcceptedEdges     int64   `json:"accepted_edges"`
	EdgesSinceRebuild int     `json:"edges_since_rebuild"`
	WALEnabled        bool    `json:"wal_enabled"`
	WALLen            int     `json:"wal_len"`
	Rebuilds          int64   `json:"rebuilds"`
	RebuildErrors     int64   `json:"rebuild_errors"`
	Rebuilding        bool    `json:"rebuilding"`
	LastRebuildMs     float64 `json:"last_rebuild_ms"`
}

// LiveStats returns the live-serving counters, or nil on a read-only
// server.
func (s *Server) LiveStats() *LiveStats {
	up := s.up
	if up == nil {
		return nil
	}
	up.mu.Lock()
	st := &LiveStats{
		Epoch:             up.epoch.Load(),
		AcceptedEdges:     up.acceptedTotal.Load(),
		EdgesSinceRebuild: up.sinceRebuild,
		WALEnabled:        up.wal != nil,
		Rebuilds:          up.rebuilds.Load(),
		RebuildErrors:     up.rebuildErrs.Load(),
		Rebuilding:        up.rebuilding,
		LastRebuildMs:     float64(up.lastRebuildNs.Load()) / 1e6,
	}
	if up.wal != nil {
		st.WALLen = up.wal.Len()
	}
	up.mu.Unlock()
	return st
}
