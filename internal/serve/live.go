package serve

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"highway/internal/core"
	"highway/internal/dynhl"
	"highway/internal/failpoint"
	"highway/internal/graph"
)

// LiveConfig tunes an updatable Server. The zero value serves live
// updates in memory only (no WAL, default rebuild thresholds).
type LiveConfig struct {
	Config

	// WAL, when non-nil, makes accepted writes durable: every batch is
	// appended (one fsync per request) before it is applied, and the
	// background rebuild persists a compacted snapshot next to the log.
	// The server owns the WAL once passed in and closes it in Close.
	WAL *WAL

	// RebuildThreshold is the number of accepted edges since the last
	// full rebuild (equivalently, the WAL length) that triggers a
	// background rebuild + compaction. 0 means DefaultRebuildThreshold;
	// negative disables the count trigger.
	RebuildThreshold int

	// RebuildGrowth triggers a rebuild when the labelling has grown past
	// this factor of its entry count at the last rebuild (drift measured
	// in label entries, the paper's size(L)). 0 means
	// DefaultRebuildGrowth; values ≤ 1 disable the growth trigger.
	RebuildGrowth float64

	// RebuildWorkers is the worker count for the background
	// direction-optimizing build (0 = GOMAXPROCS).
	RebuildWorkers int

	// DegradedProbeInterval is how often a degraded server probes the
	// WAL (an fsync of the open log) to decide whether writes can be
	// re-enabled. 0 means DefaultDegradedProbeInterval.
	DegradedProbeInterval time.Duration

	// RebuildRetryBase and RebuildRetryMax bound the exponential backoff
	// between retries of a failed background rebuild: the first retry
	// fires after Base, each consecutive failure doubles the wait, capped
	// at Max. Zeros mean DefaultRebuildRetryBase/DefaultRebuildRetryMax.
	RebuildRetryBase time.Duration
	RebuildRetryMax  time.Duration

	// EpochBase seeds the snapshot epoch counter. A replicating primary
	// passes its persisted generation shifted into the high 32 bits
	// (cluster.NextGeneration), so every epoch it ever publishes is
	// strictly above those of any earlier primary incarnation — the
	// ordering epoch fencing rests on. 0 (the default) preserves the
	// single-node behavior: epochs count 1, 2, 3, ...
	EpochBase uint64

	// OnCommit, when non-nil, is called after every accepted write
	// batch, with the epoch it became visible at, while the writer lock
	// is still held — calls arrive strictly in epoch order and before
	// the write is acknowledged. It must not block (the cluster shipper
	// enqueues and returns) and must not call back into the server's
	// write path.
	OnCommit func(epoch uint64, ops []dynhl.Op)
}

// DefaultRebuildThreshold is the accepted-edge count that triggers a
// background rebuild when LiveConfig.RebuildThreshold is zero.
const DefaultRebuildThreshold = 8192

// DefaultRebuildGrowth is the label-entry growth factor that triggers a
// background rebuild when LiveConfig.RebuildGrowth is zero.
const DefaultRebuildGrowth = 1.5

// DefaultDegradedProbeInterval is how often a degraded server re-probes
// its WAL when LiveConfig.DegradedProbeInterval is zero.
const DefaultDegradedProbeInterval = 250 * time.Millisecond

// Default rebuild-retry backoff bounds (LiveConfig.RebuildRetryBase/Max).
const (
	DefaultRebuildRetryBase = time.Second
	DefaultRebuildRetryMax  = time.Minute
)

// ErrReadOnly is returned by InsertEdges on a server built with New.
var ErrReadOnly = errors.New("serve: read-only server (built without NewLive)")

// ErrClosed is returned by InsertEdges after Close.
var ErrClosed = errors.New("serve: server is closed")

// ErrEdgeRange is wrapped by InsertEdges when a batch names a vertex
// outside the graph: a client fault (HTTP 400), distinguishable with
// errors.Is from server-side failures (HTTP 500).
var ErrEdgeRange = errors.New("serve: edge endpoint out of range")

// ErrDegraded is wrapped by InsertEdges while the server is in degraded
// read-only mode: a WAL append or fsync failed, so writes cannot be made
// durable and are rejected until the recovery probe finds the log
// writable again. Reads are unaffected. Maps to HTTP 503 + Retry-After
// and wire.CodeDegraded.
var ErrDegraded = errors.New("serve: degraded read-only mode (WAL unwritable)")

// InsertResult reports one accepted update batch.
type InsertResult struct {
	// Accepted is the number of edges validated and (if a WAL is
	// configured) durably logged — the whole batch, including edges that
	// turn out to be duplicates or self-loops.
	Accepted int `json:"accepted"`
	// Inserted is the number of edges that were actually new.
	Inserted int `json:"inserted"`
	// Epoch is the snapshot epoch the batch is visible at: every read
	// that starts after InsertEdges returns sees at least this epoch.
	Epoch uint64 `json:"epoch"`
}

// DeleteResult reports one accepted deletion batch (the decremental
// mirror of InsertResult).
type DeleteResult struct {
	// Accepted is the number of edges validated and (if a WAL is
	// configured) durably logged — the whole batch, including edges that
	// turn out to be absent or self-loops.
	Accepted int `json:"accepted"`
	// Deleted is the number of edges that were actually removed.
	Deleted int `json:"deleted"`
	// Epoch is the snapshot epoch the batch is visible at.
	Epoch uint64 `json:"epoch"`
}

// updater is the writer half of a live server. All fields are guarded
// by mu except the atomic monitoring counters at the bottom.
type updater struct {
	mu  sync.Mutex
	cfg LiveConfig

	// dyn is the mutable truth: the dynamic labelling every accepted
	// batch is applied to. Its labelling is always identical to a
	// from-scratch build on the current edge set (internal/dynhl's
	// invariant), which is what makes WAL replay and snapshot
	// publication exact.
	dyn *dynhl.Index
	wal *WAL // nil when running without durability

	// lastGraph is the frozen graph of the newest published snapshot;
	// the background rebuild runs the full builder over it.
	lastGraph *graph.Graph

	// sinceRebuild counts accepted edges since the last completed
	// rebuild/compaction (== WAL length when a WAL is configured).
	sinceRebuild int
	// baseEntries is size(L) at the last completed rebuild, the
	// denominator of the growth trigger.
	baseEntries int64
	// delta collects op batches accepted while a rebuild is in flight;
	// they are replayed onto the fresh index before it is published.
	delta      []dynhl.Op
	rebuilding bool
	closed     bool
	wg         sync.WaitGroup // in-flight rebuild + recovery-probe goroutines
	// closeCh is closed by Close; the recovery probe and the rebuild
	// retry timer select on it so shutdown never waits out a backoff.
	closeCh chan struct{}

	// Degraded read-only mode (mu-guarded; degradedFlag mirrors
	// `degraded` for lock-free /readyz checks). probing is true while the
	// recovery-probe goroutine is alive.
	degraded       bool
	degradedReason string
	probing        bool

	// Rebuild retry state: consecutive failures drive a capped
	// exponential backoff; retryTimer is the pending retry (nil if none).
	rebuildFails int
	retryTimer   *time.Timer

	// Monitoring counters (read lock-free by /stats).
	epoch          atomic.Uint64
	rebuilds       atomic.Int64
	rebuildErrs    atomic.Int64
	lastRebuildNs  atomic.Int64
	acceptedTotal  atomic.Int64
	degradedFlag   atomic.Bool
	writesRejected atomic.Int64
	recoveries     atomic.Int64

	// Deletion and labelling-maintenance counters. The maintenance pair
	// accumulates across background rebuilds (which replace up.dyn and
	// reset its own Maint counters), so /stats never goes backwards.
	acceptedDeletes   atomic.Int64
	deletedTotal      atomic.Int64
	selRepairs        atomic.Int64
	maintFullRebuilds atomic.Int64
}

// NewLive returns an updatable Server seeded from ix. If cfg.WAL is set,
// any ops (insertions and deletions) recovered from the log are replayed
// first (through the copy-on-write dynhl.FromCore conversion), so the
// served snapshot reflects every write acknowledged before a crash. The
// server takes ownership of the WAL.
func NewLive(ix *core.Index, cfg LiveConfig) (*Server, error) {
	// The server owns cfg.WAL from here on, including on error paths.
	fail := func(err error) (*Server, error) {
		if cfg.WAL != nil {
			cfg.WAL.Close()
		}
		return nil, err
	}
	dyn, err := dynhl.FromCore(ix)
	if err != nil {
		return fail(fmt.Errorf("serve: live conversion: %w", err))
	}
	s := newServer(ix, ix.Graph().NumVertices(), cfg.Config)
	up := &updater{cfg: cfg, dyn: dyn, wal: cfg.WAL, lastGraph: ix.Graph(),
		baseEntries: ix.NumEntries(), closeCh: make(chan struct{})}
	s.up = up
	up.epoch.Store(cfg.EpochBase)
	if cfg.EpochBase != 0 {
		s.snap.Store(newSnapshot(ix, cfg.EpochBase))
	}
	if up.wal != nil {
		if rec := up.wal.Recovered(); len(rec) > 0 {
			if _, err := dyn.ApplyOps(rec); err != nil {
				return fail(fmt.Errorf("serve: wal replay: %w", err))
			}
			g, fresh, err := dyn.Freeze()
			if err != nil {
				return fail(fmt.Errorf("serve: wal replay freeze: %w", err))
			}
			up.lastGraph = g
			epoch := up.epoch.Add(1)
			s.snap.Store(newSnapshot(fresh, epoch))
		}
		up.sinceRebuild = up.wal.Len()
	}
	return s, nil
}

// LoadLive assembles a live server from files: it loads the newest
// persisted state (the WAL's compacted snapshot pair if a rebuild wrote
// one, else the base graph+index files), opens the WAL at walPath and
// replays it. This is the crash-recovery entry point hlserve uses; the
// combination (snapshot ⊕ WAL replay) always reconstructs exactly the
// acknowledged edge set, because compaction persists the snapshot
// before truncating the log and replay is idempotent.
func LoadLive(graphPath, indexPath, walPath string, cfg LiveConfig) (*Server, error) {
	wal, err := OpenWAL(walPath)
	if err != nil {
		return nil, err
	}
	var ix *core.Index
	if _, serr := os.Stat(wal.SnapshotPath()); serr == nil {
		_, ix, err = loadSnapshot(wal.SnapshotPath())
	} else {
		var g *graph.Graph
		g, err = graph.LoadBinary(graphPath)
		if err == nil {
			ix, err = core.Load(indexPath, g)
		}
	}
	if err != nil {
		wal.Close()
		return nil, err
	}
	cfg.WAL = wal
	return NewLive(ix, cfg) // NewLive owns (and closes) the WAL on failure
}

// snapMagic heads the single-file graph+index snapshot a rebuild
// persists next to the WAL. One file, one atomic rename: the graph and
// the labelling can never be on disk out of step with each other,
// which a two-file scheme could not guarantee across a crash.
const snapMagic = "HWLSNAP1"

// writeSnapshot persists graph+index as one file, fsynced before an
// atomic rename into place — only after this returns may the WAL be
// compacted, or a power failure could lose acknowledged edges. The WAL
// (may be nil) only receives the directory-fsync error count.
func writeSnapshot(path string, g *graph.Graph, ix *core.Index, w *WAL) error {
	if err := failpoint.Eval(FPSnapshotWrite); err != nil {
		return fmt.Errorf("serve: snapshot: %w", err)
	}
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("serve: snapshot: %w", err)
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	err = EncodeSnapshot(bw, g, ix)
	if err == nil {
		err = bw.Flush()
	}
	if err == nil {
		err = f.Sync() // contents must be durable before the rename publishes them
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("serve: snapshot: %w", err)
	}
	if derr := syncDir(filepath.Dir(path)); derr != nil && w != nil {
		w.dirSyncErrs.Add(1)
	}
	return nil
}

// loadSnapshot reads a snapshot written by writeSnapshot.
func loadSnapshot(path string) (*graph.Graph, *core.Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, fmt.Errorf("serve: snapshot: %w", err)
	}
	defer f.Close()
	g, ix, err := DecodeSnapshot(bufio.NewReaderSize(f, 1<<20))
	if err != nil {
		return nil, nil, fmt.Errorf("serve: %s: %w", path, err)
	}
	return g, ix, nil
}

// InsertEdges accepts a batch of undirected edge insertions: validates
// every endpoint (the whole batch is rejected on any invalid vertex —
// no partial application), appends the batch to the WAL with one fsync,
// applies it to the dynamic labelling, and publishes a fresh snapshot
// that every subsequent read observes. Duplicate edges and self-loops
// are accepted but ignored (counted in Accepted, not Inserted), which
// is what makes WAL replay idempotent. Safe for concurrent use; writers
// are serialized, readers never blocked.
func (s *Server) InsertEdges(edges [][2]int32) (InsertResult, error) {
	res, epoch, err := s.mutate(dynhl.InsertOps(edges))
	if err != nil {
		return InsertResult{}, err
	}
	return InsertResult{Accepted: len(edges), Inserted: res.Inserted, Epoch: epoch}, nil
}

// DeleteEdges accepts a batch of undirected edge deletions with the
// same contract as InsertEdges: whole-batch validation, one WAL fsync
// (deletions are logged as one's-complement records in the same log),
// decremental repair of the labelling, and a fresh snapshot published
// before the call returns. Edges that are absent — including ones
// already deleted, which is what makes replay idempotent — and
// self-loops are acked but ignored (Accepted, not Deleted).
func (s *Server) DeleteEdges(edges [][2]int32) (DeleteResult, error) {
	res, epoch, err := s.mutate(dynhl.DeleteOps(edges))
	if err != nil {
		return DeleteResult{}, err
	}
	return DeleteResult{Accepted: len(edges), Deleted: res.Deleted, Epoch: epoch}, nil
}

// mutate is the single writer path shared by InsertEdges and
// DeleteEdges: validate → WAL append (one fsync) → apply to the dynamic
// labelling → publish snapshot → bump counters → maybe kick a rebuild.
func (s *Server) mutate(ops []dynhl.Op) (dynhl.OpResult, uint64, error) {
	if s.up == nil {
		return dynhl.OpResult{}, 0, ErrReadOnly
	}
	n := s.n.Load()
	for _, op := range ops {
		if op.A < 0 || int64(op.A) >= n || op.B < 0 || int64(op.B) >= n {
			return dynhl.OpResult{}, 0, fmt.Errorf("%w: {%d,%d} outside [0,%d)", ErrEdgeRange, op.A, op.B, n)
		}
	}
	up := s.up
	up.mu.Lock()
	defer up.mu.Unlock()
	if up.closed {
		return dynhl.OpResult{}, 0, ErrClosed
	}
	if up.degraded {
		up.writesRejected.Add(1)
		return dynhl.OpResult{}, 0, fmt.Errorf("%w: %s", ErrDegraded, up.degradedReason)
	}
	if len(ops) == 0 {
		return dynhl.OpResult{}, up.epoch.Load(), nil
	}
	// Durability first: the batch must be on disk before any state the
	// crash-recovery path cannot reconstruct is mutated.
	if up.wal != nil {
		if err := up.wal.AppendOps(ops); err != nil {
			// The WAL cleaned its own tail up (or failed stop); the server
			// transitions to degraded read-only mode rather than serving
			// per-request 500s from a log that is unlikely to heal before
			// the next request. This request itself carries the degraded
			// taxonomy too, so clients see one consistent signal.
			up.enterDegradedLocked(err)
			up.writesRejected.Add(1)
			return dynhl.OpResult{}, 0, fmt.Errorf("%w: %w", ErrDegraded, err)
		}
	}
	res, err := up.dyn.ApplyOps(ops)
	if err != nil {
		// Unreachable after the validation above; keep the state
		// machine honest anyway.
		return dynhl.OpResult{}, 0, err
	}
	g, fresh, err := up.dyn.Freeze()
	if err != nil {
		return dynhl.OpResult{}, 0, fmt.Errorf("serve: freeze: %w", err)
	}
	up.lastGraph = g
	epoch := up.epoch.Add(1)
	s.snap.Store(newSnapshot(fresh, epoch))
	if up.cfg.OnCommit != nil {
		// Under mu: commits reach the hook strictly in epoch order,
		// before the write is acked, which is what lets the cluster
		// shipper promise "every acked batch was enqueued for shipping".
		up.cfg.OnCommit(epoch, ops)
	}

	up.sinceRebuild += len(ops)
	var dels int64
	for _, op := range ops {
		if op.Del {
			dels++
		}
	}
	up.acceptedTotal.Add(int64(len(ops)) - dels)
	up.acceptedDeletes.Add(dels)
	up.deletedTotal.Add(int64(res.Deleted))
	if res.Rebuilt {
		up.maintFullRebuilds.Add(1)
	} else if res.Dirty > 0 {
		up.selRepairs.Add(1)
	}
	if up.rebuilding {
		up.delta = append(up.delta, ops...)
	}
	s.maybeRebuild(fresh.NumEntries())
	return res, epoch, nil
}

// enterDegradedLocked (mu held) flips the server into degraded
// read-only mode and starts the recovery probe if one is not already
// running. Reads are untouched — the last published snapshot keeps
// serving — while every write is rejected with ErrDegraded until the
// probe finds the WAL writable again.
func (up *updater) enterDegradedLocked(cause error) {
	if up.degraded {
		return
	}
	up.degraded = true
	up.degradedReason = cause.Error()
	up.degradedFlag.Store(true)
	if up.probing || up.closed {
		return
	}
	up.probing = true
	up.wg.Add(1)
	go up.recoveryProbe()
}

// probeInterval resolves the configured recovery-probe cadence.
func (up *updater) probeInterval() time.Duration {
	if up.cfg.DegradedProbeInterval > 0 {
		return up.cfg.DegradedProbeInterval
	}
	return DefaultDegradedProbeInterval
}

// recoveryProbe periodically fsyncs the WAL while the server is
// degraded; the first success re-arms writes and ends the probe. The
// probe also ends on Close or if something else already cleared the
// degraded state.
func (up *updater) recoveryProbe() {
	defer up.wg.Done()
	ticker := time.NewTicker(up.probeInterval())
	defer ticker.Stop()
	for {
		select {
		case <-up.closeCh:
			up.mu.Lock()
			up.probing = false
			up.mu.Unlock()
			return
		case <-ticker.C:
		}
		up.mu.Lock()
		if up.closed || !up.degraded {
			up.probing = false
			up.mu.Unlock()
			return
		}
		// Degraded mode is only entered on a WAL failure, so wal != nil.
		if err := up.wal.Probe(); err != nil {
			up.degradedReason = err.Error()
			up.mu.Unlock()
			continue
		}
		up.degraded = false
		up.degradedReason = ""
		up.degradedFlag.Store(false)
		up.recoveries.Add(1)
		up.probing = false
		up.mu.Unlock()
		return
	}
}

// Degraded reports whether the server is in degraded read-only mode
// (lock-free; /readyz polls this).
func (s *Server) Degraded() bool {
	return s.up != nil && s.up.degradedFlag.Load()
}

// rebuildThreshold resolves the configured accepted-edge trigger.
func (up *updater) rebuildThreshold() int {
	switch {
	case up.cfg.RebuildThreshold == 0:
		return DefaultRebuildThreshold
	case up.cfg.RebuildThreshold < 0:
		return 0 // disabled
	default:
		return up.cfg.RebuildThreshold
	}
}

// rebuildGrowth resolves the configured label-entry growth trigger.
func (up *updater) rebuildGrowth() float64 {
	if up.cfg.RebuildGrowth == 0 {
		return DefaultRebuildGrowth
	}
	if up.cfg.RebuildGrowth <= 1 {
		return 0 // disabled
	}
	return up.cfg.RebuildGrowth
}

// maybeRebuild (mu held) checks the staleness triggers and kicks off the
// background rebuild goroutine if one is due and none is running.
func (s *Server) maybeRebuild(entries int64) {
	up := s.up
	if up.rebuilding || up.closed {
		return
	}
	if up.retryTimer != nil {
		// A failed rebuild is waiting out its backoff; letting the count
		// trigger re-fire on every write would turn the backoff into a
		// retry storm.
		return
	}
	due := false
	if th := up.rebuildThreshold(); th > 0 && up.sinceRebuild >= th {
		due = true
	}
	if gf := up.rebuildGrowth(); gf > 1 && up.baseEntries > 0 &&
		float64(entries) >= gf*float64(up.baseEntries) {
		due = true
	}
	if !due {
		return
	}
	up.rebuilding = true
	up.delta = up.delta[:0]
	g := up.lastGraph // frozen: safe to read outside the lock
	lms := append([]int32(nil), up.dyn.Landmarks()...)
	up.wg.Add(1)
	go s.rebuild(g, lms)
}

// scheduleRebuildRetryLocked (mu held) arms a one-shot timer that
// restarts the background rebuild after a capped exponential backoff:
// base·2^(fails-1), clamped to the configured max. The failed rebuild
// keeps serving its old snapshot in the meantime — a rebuild failure is
// an availability event for *freshness*, never for reads.
func (s *Server) scheduleRebuildRetryLocked() {
	up := s.up
	up.rebuildFails++
	if up.closed || up.retryTimer != nil {
		return
	}
	base := up.cfg.RebuildRetryBase
	if base <= 0 {
		base = DefaultRebuildRetryBase
	}
	maxWait := up.cfg.RebuildRetryMax
	if maxWait <= 0 {
		maxWait = DefaultRebuildRetryMax
	}
	wait := base
	for i := 1; i < up.rebuildFails && wait < maxWait; i++ {
		wait *= 2
	}
	if wait > maxWait {
		wait = maxWait
	}
	up.retryTimer = time.AfterFunc(wait, func() {
		up.mu.Lock()
		defer up.mu.Unlock()
		up.retryTimer = nil
		if up.closed || up.rebuilding {
			return
		}
		up.rebuilding = true
		up.delta = up.delta[:0]
		g := up.lastGraph
		lms := append([]int32(nil), up.dyn.Landmarks()...)
		up.wg.Add(1)
		go s.rebuild(g, lms)
	})
}

// rebuild runs the full direction-optimizing parallel builder over a
// frozen graph, then swaps the fresh index in. Writes keep landing on
// the old state while it runs; the batches accepted in the meantime
// (up.delta) are replayed onto the fresh index before it is published,
// so the swap is never a step backwards. With a WAL configured, the
// fresh snapshot is persisted and the log compacted down to the delta.
func (s *Server) rebuild(g *graph.Graph, landmarks []int32) {
	up := s.up
	defer up.wg.Done()
	start := time.Now()
	err := failpoint.Eval(FPRebuild)
	var ix *core.Index
	if err == nil {
		ix, err = core.BuildOpts(context.Background(), g, landmarks,
			core.Options{Workers: up.cfg.RebuildWorkers})
	}
	var dyn *dynhl.Index
	if err == nil {
		dyn, err = dynhl.FromCore(ix)
	}
	// Persist the rebuilt base BEFORE taking the writer lock: g and ix
	// are immutable, so the (possibly long) disk write must not stall
	// InsertEdges or /stats. Order still matters for crash safety —
	// once the snapshot is durably on disk, compacting the log (under
	// the lock, below) cannot lose edges; a crash in between is benign
	// because replaying the old, longer log against the new snapshot
	// is idempotent.
	persisted := false
	if err == nil && up.wal != nil {
		if perr := writeSnapshot(up.wal.SnapshotPath(), g, ix, up.wal); perr == nil {
			persisted = true
		} else {
			up.rebuildErrs.Add(1)
		}
	}

	up.mu.Lock()
	defer up.mu.Unlock()
	up.rebuilding = false
	if up.closed {
		return
	}
	if err != nil {
		// The old state keeps serving; the failure is surfaced in /stats
		// and the retry timer brings the rebuild back with backoff.
		up.rebuildErrs.Add(1)
		up.delta = nil
		s.scheduleRebuildRetryLocked()
		return
	}
	delta := up.delta
	up.delta = nil
	fresh, freshGraph := ix, g
	if len(delta) > 0 {
		if _, err := dyn.ApplyOps(delta); err != nil {
			up.rebuildErrs.Add(1)
			s.scheduleRebuildRetryLocked()
			return
		}
		freshGraph, fresh, err = dyn.Freeze()
		if err != nil {
			up.rebuildErrs.Add(1)
			s.scheduleRebuildRetryLocked()
			return
		}
	}
	up.dyn = dyn
	up.lastGraph = freshGraph
	up.baseEntries = fresh.NumEntries()
	up.sinceRebuild = len(delta)
	epoch := up.epoch.Add(1)
	s.snap.Store(newSnapshot(fresh, epoch))

	if up.wal != nil && persisted {
		// Shrink the log to the delta. Skipped when the snapshot
		// persist failed: the full log plus the old base still
		// reconstruct everything, so failing to compact is safe and
		// failing to compact *after a failed persist* would not be.
		if err := up.wal.CompactTo(delta); err != nil {
			up.rebuildErrs.Add(1)
		}
	}
	up.rebuilds.Add(1)
	up.lastRebuildNs.Store(int64(time.Since(start)))
	if up.wal != nil && !persisted {
		// The index was published but the snapshot persist failed, so the
		// log could not be compacted and will grow without bound; retry
		// the whole rebuild (with backoff) until a snapshot lands.
		s.scheduleRebuildRetryLocked()
		return
	}
	up.rebuildFails = 0
}

// Rebuilding reports whether a background rebuild is in flight.
func (s *Server) Rebuilding() bool {
	if s.up == nil {
		return false
	}
	s.up.mu.Lock()
	defer s.up.mu.Unlock()
	return s.up.rebuilding
}

// Close shuts the writer side down: it waits for an in-flight
// background rebuild to finish and closes the WAL. Reads keep working
// against the last snapshot; InsertEdges returns ErrClosed afterwards.
// Close is a no-op on read-only servers.
func (s *Server) Close() error {
	if s.up == nil {
		return nil
	}
	up := s.up
	up.mu.Lock()
	if up.closed {
		up.mu.Unlock()
		return nil
	}
	up.closed = true
	if up.retryTimer != nil {
		up.retryTimer.Stop()
		up.retryTimer = nil
	}
	close(up.closeCh)
	up.mu.Unlock()
	up.wg.Wait()
	if up.wal != nil {
		return up.wal.Close()
	}
	return nil
}

// LiveStats is the snapshot/WAL/rebuild section of /stats, present only
// on live servers.
type LiveStats struct {
	Epoch             uint64  `json:"epoch"`
	AcceptedEdges     int64   `json:"accepted_edges"`
	EdgesSinceRebuild int     `json:"edges_since_rebuild"`
	WALEnabled        bool    `json:"wal_enabled"`
	WALLen            int     `json:"wal_len"`
	Rebuilds          int64   `json:"rebuilds"`
	RebuildErrors     int64   `json:"rebuild_errors"`
	Rebuilding        bool    `json:"rebuilding"`
	LastRebuildMs     float64 `json:"last_rebuild_ms"`

	// Deletion counters: accepted delete ops (whole batches, including
	// no-ops) and edges actually removed.
	AcceptedDeletes int64 `json:"accepted_deletes"`
	EdgesDeleted    int64 `json:"edges_deleted"`
	// Labelling-maintenance counters for the decremental path: write
	// batches repaired per-landmark vs. batches that tripped the dirty
	// fraction and rebuilt every landmark inline (distinct from the
	// background Rebuilds above).
	SelectiveRepairs  int64 `json:"selective_repairs"`
	MaintFullRebuilds int64 `json:"maint_full_rebuilds"`

	// Degraded read-only mode: true while the WAL is unwritable. Writes
	// are rejected (counted in WritesRejected) and Recoveries counts
	// degraded→live transitions.
	Degraded       bool   `json:"degraded"`
	DegradedReason string `json:"degraded_reason,omitempty"`
	WritesRejected int64  `json:"writes_rejected"`
	Recoveries     int64  `json:"recoveries"`

	// RebuildFails counts consecutive background-rebuild failures (reset
	// on success); while non-zero a capped-exponential-backoff retry is
	// pending or running.
	RebuildFails int `json:"rebuild_fails_consecutive"`

	// WAL is the log's own counters (nil when running without one).
	WAL *WALStats `json:"wal,omitempty"`
}

// LiveStats returns the live-serving counters, or nil on a read-only
// server.
func (s *Server) LiveStats() *LiveStats {
	up := s.up
	if up == nil {
		return nil
	}
	up.mu.Lock()
	st := &LiveStats{
		Epoch:             up.epoch.Load(),
		AcceptedEdges:     up.acceptedTotal.Load(),
		EdgesSinceRebuild: up.sinceRebuild,
		WALEnabled:        up.wal != nil,
		Rebuilds:          up.rebuilds.Load(),
		RebuildErrors:     up.rebuildErrs.Load(),
		Rebuilding:        up.rebuilding,
		LastRebuildMs:     float64(up.lastRebuildNs.Load()) / 1e6,
		AcceptedDeletes:   up.acceptedDeletes.Load(),
		EdgesDeleted:      up.deletedTotal.Load(),
		SelectiveRepairs:  up.selRepairs.Load(),
		MaintFullRebuilds: up.maintFullRebuilds.Load(),
		Degraded:          up.degraded,
		DegradedReason:    up.degradedReason,
		WritesRejected:    up.writesRejected.Load(),
		Recoveries:        up.recoveries.Load(),
		RebuildFails:      up.rebuildFails,
	}
	if up.wal != nil {
		st.WALLen = up.wal.Len()
		ws := up.wal.Stats()
		st.WAL = &ws
	}
	up.mu.Unlock()
	return st
}
