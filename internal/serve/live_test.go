package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"highway/internal/core"
	"highway/internal/dynhl"
	"highway/internal/gen"
	"highway/internal/graph"
	"highway/internal/landmark"
	"highway/internal/workload"
)

// liveBase builds the base state for live-serving tests: a scale-free
// graph, its landmarks and its static index.
func liveBase(t *testing.T, n int, k int) (*graph.Graph, []int32, *core.Index) {
	t.Helper()
	g := gen.BarabasiAlbert(n, 3, 42)
	lms, err := landmark.Select(g, landmark.Options{K: k, Strategy: landmark.Degree})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := core.BuildParallel(g, lms)
	if err != nil {
		t.Fatal(err)
	}
	return g, lms, ix
}

// saveBase persists graph+index the way hlbuild would and returns the
// three paths LoadLive needs.
func saveBase(t *testing.T, g *graph.Graph, ix *core.Index) (graphPath, indexPath, walPath string) {
	t.Helper()
	dir := t.TempDir()
	graphPath = filepath.Join(dir, "g.hwg")
	indexPath = graphPath + ".idx"
	walPath = filepath.Join(dir, "edges.wal")
	if err := g.SaveBinary(graphPath); err != nil {
		t.Fatal(err)
	}
	if err := ix.Save(indexPath); err != nil {
		t.Fatal(err)
	}
	return graphPath, indexPath, walPath
}

func postEdges(t *testing.T, url, body string) (int, InsertResult, errorBody) {
	t.Helper()
	resp, err := http.Post(url+"/edges", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var res InsertResult
	var e errorBody
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw, &res); err != nil {
			t.Fatalf("decoding %q: %v", raw, err)
		}
	} else {
		if err := json.Unmarshal(raw, &e); err != nil {
			t.Fatalf("decoding %q: %v", raw, err)
		}
	}
	return resp.StatusCode, res, e
}

// deleteEdges is postEdges for the DELETE method.
func deleteEdges(t *testing.T, url, body string) (int, DeleteResult, errorBody) {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, url+"/edges", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var res DeleteResult
	var e errorBody
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw, &res); err != nil {
			t.Fatalf("decoding %q: %v", raw, err)
		}
	} else {
		if err := json.Unmarshal(raw, &e); err != nil {
			t.Fatalf("decoding %q: %v", raw, err)
		}
	}
	return resp.StatusCode, res, e
}

func TestLiveInsertEdgesHTTP(t *testing.T) {
	_, _, ix := liveBase(t, 400, 8)
	s, err := NewLive(ix, LiveConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Find a pair at distance > 1 so inserting the edge visibly changes
	// the answer.
	var a, b int32
	sr := ix.NewSearcher()
	for u := int32(0); u < 400; u++ {
		if d := sr.Distance(0, u); d > 2 {
			a, b = 0, u
			break
		}
	}
	before, err := s.Distance(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if before <= 1 {
		t.Fatalf("test pair d(%d,%d)=%d, want > 1", a, b, before)
	}

	code, res, _ := postEdges(t, ts.URL, fmt.Sprintf(`{"edge":[%d,%d]}`, a, b))
	if code != http.StatusOK || res.Accepted != 1 || res.Inserted != 1 || res.Epoch != 1 {
		t.Fatalf("insert: code %d result %+v", code, res)
	}
	// The write is visible to the very next read.
	var dr distanceResponse
	if code := getJSON(t, fmt.Sprintf("%s/distance?s=%d&t=%d", ts.URL, a, b), &dr); code != http.StatusOK || dr.Distance != 1 {
		t.Fatalf("after insert: code %d d=%d, want 1", code, dr.Distance)
	}

	// Duplicate: accepted but not inserted; epoch still advances (the
	// batch was logged).
	code, res, _ = postEdges(t, ts.URL, fmt.Sprintf(`{"edge":[%d,%d]}`, a, b))
	if code != http.StatusOK || res.Accepted != 1 || res.Inserted != 0 {
		t.Fatalf("duplicate insert: code %d result %+v", code, res)
	}

	// Batch form.
	code, res, _ = postEdges(t, ts.URL, `{"edges":[[1,5],[2,9],[3,3]]}`)
	if code != http.StatusOK || res.Accepted != 3 {
		t.Fatalf("batch insert: code %d result %+v", code, res)
	}

	// Malformed requests.
	for _, body := range []string{
		`{"edge":[1,2],"edges":[[3,4]]}`, // both forms
		`{}`,                             // neither form
		`{"edge":[1,2,3]}`,               // wrong arity
		`{"edges":[[1]]}`,                // wrong arity in batch
		`{"edge":[1,999999]}`,            // out of range
		`{"edge":[1,-2]}`,                // negative
		`not json`,
		`{"edge":[1,2]}garbage`,
	} {
		code, _, e := postEdges(t, ts.URL, body)
		if code != http.StatusBadRequest {
			t.Fatalf("body %q: status %d, want 400", body, code)
		}
		if e.Error == "" {
			t.Fatalf("body %q: empty error", body)
		}
	}

	// Deletion round trip: remove the edge inserted above; the next read
	// sees the repaired distance. Deleting it again is an acked no-op.
	dcode, dres, _ := deleteEdges(t, ts.URL, fmt.Sprintf(`{"edge":[%d,%d]}`, a, b))
	if dcode != http.StatusOK || dres.Accepted != 1 || dres.Deleted != 1 {
		t.Fatalf("delete: code %d result %+v", dcode, dres)
	}
	if code := getJSON(t, fmt.Sprintf("%s/distance?s=%d&t=%d", ts.URL, a, b), &dr); code != http.StatusOK || dr.Distance == 1 {
		t.Fatalf("after delete: code %d d=%d, want != 1", code, dr.Distance)
	}
	dcode, dres, _ = deleteEdges(t, ts.URL, fmt.Sprintf(`{"edge":[%d,%d]}`, a, b))
	if dcode != http.StatusOK || dres.Accepted != 1 || dres.Deleted != 0 {
		t.Fatalf("double delete: code %d result %+v", dcode, dres)
	}
	// Malformed deletions share the insert taxonomy.
	if code, _, e := deleteEdges(t, ts.URL, `{"edge":[1,999999]}`); code != http.StatusBadRequest || e.Error == "" {
		t.Fatalf("out-of-range delete: %d %q", code, e.Error)
	}
	if code, _, _ := deleteEdges(t, ts.URL, `not json`); code != http.StatusBadRequest {
		t.Fatalf("malformed delete: %d, want 400", code)
	}

	// /stats exposes the live section, including the deletion counters.
	var st statsResponse
	if code := getJSON(t, ts.URL+"/stats", &st); code != http.StatusOK {
		t.Fatalf("stats: %d", code)
	}
	if st.Live == nil || st.Live.Epoch == 0 || st.Live.WALEnabled || st.Live.AcceptedEdges != 5 {
		t.Fatalf("live stats %+v", st.Live)
	}
	if st.Live.AcceptedDeletes != 2 || st.Live.EdgesDeleted != 1 {
		t.Fatalf("deletion stats %+v", st.Live)
	}
}

func TestReadOnlyServerRejectsUpdates(t *testing.T) {
	_, _, ix := liveBase(t, 100, 4)
	s := New(ix, Config{})
	if _, err := s.InsertEdges([][2]int32{{0, 1}}); err != ErrReadOnly {
		t.Fatalf("InsertEdges on read-only server: %v, want ErrReadOnly", err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/edges", "application/json", strings.NewReader(`{"edge":[0,1]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("POST /edges on read-only server: %d, want 404", resp.StatusCode)
	}
	// /stats must not claim live counters.
	var st statsResponse
	getJSON(t, ts.URL+"/stats", &st)
	if st.Live != nil {
		t.Fatalf("read-only /stats has live section: %+v", st.Live)
	}
}

// TestLiveRestartReplaysWAL is acceptance criterion (a): distances after
// a restart+replay of a mixed insert/delete schedule are identical to a
// from-scratch dynamic build over the same op sequence, and the log on
// disk is byte-identical to the acked history (inserts as plain
// records, deletes one's-complement).
func TestLiveRestartReplaysWAL(t *testing.T) {
	g, lms, ix := liveBase(t, 500, 8)
	graphPath, indexPath, walPath := saveBase(t, g, ix)

	// Disable rebuilds: this test isolates the replay path (the stress
	// test covers replay ⊕ compaction together).
	cfg := LiveConfig{RebuildThreshold: -1, RebuildGrowth: 1}
	srvA, err := LoadLive(graphPath, indexPath, walPath, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	live := newLiveEdges(g)
	var history []dynhl.Op
	for batch := 0; batch < 14; batch++ {
		var ops []dynhl.Op
		if batch%3 == 2 {
			// Delete a handful of live edges (base or freshly inserted).
			for i := 0; i < 5; i++ {
				e := live.list[rng.Intn(len(live.list))]
				ops = append(ops, dynhl.Op{A: e[0], B: e[1], Del: true})
			}
		} else {
			for i := 0; i < 8; i++ {
				ops = append(ops, dynhl.Op{A: rng.Int31n(500), B: rng.Int31n(500)})
			}
		}
		if err := sendOps(srvA, ops); err != nil {
			t.Fatal(err)
		}
		history = append(history, ops...)
		live.ack(ops)
	}
	if err := srvA.Close(); err != nil { // appends were fsynced at ack; Close adds nothing a crash would lose
		t.Fatal(err)
	}

	// The log on disk is exactly the acked op history, no more, no less.
	logBytes, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if want := expectedWALBytes(history); !bytes.Equal(logBytes, want) {
		t.Fatalf("WAL is not byte-identical to the acked history: %d bytes on disk, want %d", len(logBytes), len(want))
	}

	srvB, err := LoadLive(graphPath, indexPath, walPath, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srvB.Close()
	if st := srvB.LiveStats(); st.WALLen != len(history) {
		t.Fatalf("replayed WAL has %d records, want %d", st.WALLen, len(history))
	}

	// From-scratch dynamic build over the same op sequence.
	ref, err := dynhl.Build(g, lms)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ref.ApplyOps(history); err != nil {
		t.Fatal(err)
	}
	for _, p := range workload.RandomPairs(g, 400, 99) {
		want := ref.Distance(p.S, p.T)
		got, err := srvB.Distance(p.S, p.T)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("after replay: d(%d,%d) = %d, want %d", p.S, p.T, got, want)
		}
	}
}

// pairKey packs a query pair for the monotonicity map.
func pairKey(s, t int32) int64 { return int64(s)<<32 | int64(uint32(t)) }

// TestLiveStressRebuildAndRestart is the -race stress test of the
// acceptance criteria: concurrent POST /edges and GET /distance traffic,
// a kill + restart mid-stream, and threshold-triggered background
// rebuilds. It verifies that
//
//	(a) the replayed WAL yields distances identical to a from-scratch
//	    dynamic build over the same edge sequence, and
//	(b) rebuilds hot-swap without a reader ever observing an HTTP
//	    error, a distance increase (edges are only added, so any
//	    regression means a stale or torn snapshot), or — right after a
//	    write is acknowledged — an answer older than that write.
func TestLiveStressRebuildAndRestart(t *testing.T) {
	const (
		nVertices  = 600
		batches    = 30
		batchSize  = 5
		killAfter  = 15
		nReaders   = 4
		probeCount = 3
	)
	g, lms, ix := liveBase(t, nVertices, 10)
	graphPath, indexPath, walPath := saveBase(t, g, ix)
	// Threshold low enough that both the pre-kill and post-restart
	// phases trigger background rebuilds under the stream.
	cfg := LiveConfig{RebuildThreshold: 40, RebuildWorkers: 2}

	srv, err := LoadLive(graphPath, indexPath, walPath, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())

	// Reference: from-scratch dynamic index fed the same sequence.
	ref, err := dynhl.Build(g, lms)
	if err != nil {
		t.Fatal(err)
	}

	// Readers hammer GET /distance and /stats. Every pair's distance
	// must be non-increasing over time (-1 = unreachable = +inf): any
	// increase means a reader saw a snapshot older than one it already
	// observed, i.e. a broken swap.
	var (
		readerWG   sync.WaitGroup
		stopRead   chan struct{}
		readerErrs = make(chan error, nReaders*2)
	)
	dVal := func(d int32) int64 {
		if d < 0 {
			return int64(1) << 40 // unreachable sorts above every real distance
		}
		return int64(d)
	}
	startReaders := func(url string) {
		stopRead = make(chan struct{})
		for r := 0; r < nReaders; r++ {
			readerWG.Add(1)
			go func(seed int64) {
				defer readerWG.Done()
				rng := rand.New(rand.NewSource(seed))
				last := make(map[int64]int64)
				for i := 0; ; i++ {
					select {
					case <-stopRead:
						return
					default:
					}
					s0, t0 := rng.Int31n(nVertices), rng.Int31n(nVertices)
					resp, err := http.Get(fmt.Sprintf("%s/distance?s=%d&t=%d", url, s0, t0))
					if err != nil {
						readerErrs <- fmt.Errorf("reader: %w", err)
						return
					}
					var dr distanceResponse
					err = json.NewDecoder(resp.Body).Decode(&dr)
					resp.Body.Close()
					if err != nil || resp.StatusCode != http.StatusOK {
						readerErrs <- fmt.Errorf("reader: status %d err %v", resp.StatusCode, err)
						return
					}
					k := pairKey(s0, t0)
					if prev, ok := last[k]; ok && dVal(dr.Distance) > prev {
						readerErrs <- fmt.Errorf("reader: d(%d,%d) increased %d -> %d across snapshots", s0, t0, prev, dr.Distance)
						return
					}
					last[k] = dVal(dr.Distance)
					if i%50 == 0 {
						resp, err := http.Get(url + "/stats")
						if err != nil {
							readerErrs <- fmt.Errorf("reader stats: %w", err)
							return
						}
						io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
						if resp.StatusCode != http.StatusOK {
							readerErrs <- fmt.Errorf("reader stats: status %d", resp.StatusCode)
							return
						}
					}
				}
			}(int64(1000 + r))
		}
	}
	stopReaders := func() {
		close(stopRead)
		readerWG.Wait()
	}

	// Writer: POST batches over HTTP, mirror them into ref after each
	// ack, and immediately verify probe pairs — the just-acknowledged
	// write must already be visible (nothing "stale beyond the WAL").
	// This test has a single writer, so server and ref states coincide
	// exactly between acks.
	rng := rand.New(rand.NewSource(5))
	probes := make([]workload.Pair, probeCount)
	for i := range probes {
		probes[i] = workload.Pair{S: rng.Int31n(nVertices), T: rng.Int31n(nVertices)}
	}
	var history [][2]int32
	writeBatch := func(url string) {
		t.Helper()
		edges := make([][2]int32, batchSize)
		body := edgesRequest{Edges: make([][]int32, batchSize)}
		for i := range edges {
			a, b := rng.Int31n(nVertices), rng.Int31n(nVertices)
			edges[i] = [2]int32{a, b}
			body.Edges[i] = []int32{a, b}
		}
		raw, _ := json.Marshal(body)
		resp, err := http.Post(url+"/edges", "application/json", bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		var res InsertResult
		err = json.NewDecoder(resp.Body).Decode(&res)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK || res.Accepted != batchSize {
			t.Fatalf("write: status %d err %v result %+v", resp.StatusCode, err, res)
		}
		history = append(history, edges...)
		if _, err := ref.Apply(edges); err != nil {
			t.Fatal(err)
		}
		for _, p := range probes {
			var dr distanceResponse
			if code := getJSON(t, fmt.Sprintf("%s/distance?s=%d&t=%d", url, p.S, p.T), &dr); code != http.StatusOK {
				t.Fatalf("probe after ack: status %d", code)
			}
			if want := ref.Distance(p.S, p.T); dr.Distance != want {
				t.Fatalf("probe after ack: d(%d,%d) = %d, want %d (stale snapshot)", p.S, p.T, dr.Distance, want)
			}
		}
	}

	startReaders(ts.URL)
	for b := 0; b < killAfter; b++ {
		writeBatch(ts.URL)
	}
	stopReaders()

	// Kill mid-stream. A real crash would also tear down the in-flight
	// rebuild; Close waits for it instead — the WAL bytes on disk are
	// the same either way, because every acknowledged append was already
	// fsynced (torn-tail crashes are covered by the WAL unit tests).
	rebuildsBeforeKill := srv.LiveStats().Rebuilds
	ts.Close()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: load whatever is on disk (compacted snapshot + compacted
	// WAL if a rebuild finished, base files + full WAL otherwise).
	srv2, err := LoadLive(graphPath, indexPath, walPath, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()

	// Criterion (a) at the restart boundary: replayed state ==
	// from-scratch dynamic build over the same sequence.
	for _, p := range workload.RandomPairs(g, 200, 31) {
		want := ref.Distance(p.S, p.T)
		got, err := srv2.Distance(p.S, p.T)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("after restart: d(%d,%d) = %d, want %d", p.S, p.T, got, want)
		}
	}

	startReaders(ts2.URL)
	for b := killAfter; b < batches; b++ {
		writeBatch(ts2.URL)
	}
	stopReaders()
	close(readerErrs)
	for err := range readerErrs {
		t.Error(err)
	}

	// Wait out any in-flight rebuild, then check the lifecycle counters:
	// the stream must have triggered at least one background rebuild
	// somewhere, and none may have failed.
	deadline := time.Now().Add(30 * time.Second)
	for srv2.Rebuilding() && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	st := srv2.LiveStats()
	if st.RebuildErrors != 0 {
		t.Fatalf("rebuild errors: %+v", st)
	}
	if rebuildsBeforeKill+st.Rebuilds == 0 {
		t.Fatalf("no background rebuild triggered (before kill: %d, after: %+v)", rebuildsBeforeKill, st)
	}

	// Final full equality sweep against the from-scratch reference.
	for _, p := range workload.RandomPairs(g, 300, 77) {
		want := ref.Distance(p.S, p.T)
		got, err := srv2.Distance(p.S, p.T)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("final: d(%d,%d) = %d, want %d", p.S, p.T, got, want)
		}
	}
	if len(history) != batches*batchSize {
		t.Fatalf("history has %d edges, want %d", len(history), batches*batchSize)
	}
}

// TestSnapshotRoundTrip pins the single-file snapshot format: graph and
// index written together, read back identical, garbage rejected.
func TestSnapshotRoundTrip(t *testing.T) {
	g, _, ix := liveBase(t, 300, 6)
	path := filepath.Join(t.TempDir(), "state.snap")
	if err := writeSnapshot(path, g, ix, nil); err != nil {
		t.Fatal(err)
	}
	g2, ix2, err := loadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumVertices() != g.NumVertices() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("snapshot graph n=%d m=%d, want n=%d m=%d",
			g2.NumVertices(), g2.NumEdges(), g.NumVertices(), g.NumEdges())
	}
	if ix2.NumEntries() != ix.NumEntries() {
		t.Fatalf("snapshot index has %d entries, want %d", ix2.NumEntries(), ix.NumEntries())
	}
	sr, sr2 := ix.NewSearcher(), ix2.NewSearcher()
	for _, p := range workload.RandomPairs(g, 200, 5) {
		if d, d2 := sr.Distance(p.S, p.T), sr2.Distance(p.S, p.T); d != d2 {
			t.Fatalf("snapshot d(%d,%d) = %d, want %d", p.S, p.T, d2, d)
		}
	}

	bad := filepath.Join(t.TempDir(), "bad.snap")
	if err := os.WriteFile(bad, []byte("not a snapshot at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := loadSnapshot(bad); err == nil {
		t.Fatal("want error loading garbage snapshot")
	}
}

// TestGrowthTriggeredRebuild drives the label-entry growth trigger:
// with the count trigger disabled and a growth factor barely above 1,
// densifying the graph must still kick off a background rebuild.
func TestGrowthTriggeredRebuild(t *testing.T) {
	_, _, ix := liveBase(t, 300, 6)
	s, err := NewLive(ix, LiveConfig{RebuildThreshold: -1, RebuildGrowth: 1.02})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rng := rand.New(rand.NewSource(13))
	deadline := time.Now().Add(30 * time.Second)
	for s.LiveStats().Rebuilds == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("no growth-triggered rebuild after %d accepted edges; stats %+v",
				s.LiveStats().AcceptedEdges, s.LiveStats())
		}
		edges := make([][2]int32, 20)
		for i := range edges {
			edges[i] = [2]int32{rng.Int31n(300), rng.Int31n(300)}
		}
		if _, err := s.InsertEdges(edges); err != nil {
			t.Fatal(err)
		}
	}
	if st := s.LiveStats(); st.RebuildErrors != 0 {
		t.Fatalf("rebuild errors: %+v", st)
	}
}

func TestRunLoadMixed(t *testing.T) {
	_, _, ix := liveBase(t, 300, 6)
	s, err := NewLive(ix, LiveConfig{RebuildThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	st, err := s.RunLoadMixed(io.Discard, 3000, 9, 3, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if st.Pairs != 3000 {
		t.Fatalf("Pairs = %d, want 3000", st.Pairs)
	}
	if st.Writes == 0 || st.Epoch == 0 {
		t.Fatalf("mixed load issued no writes: %+v", st)
	}

	// Read-only servers refuse the mixed mode.
	ro := New(ix, Config{})
	if _, err := ro.RunLoadMixed(io.Discard, 10, 1, 1, 0.5); err != ErrReadOnly {
		t.Fatalf("read-only mixed load: %v, want ErrReadOnly", err)
	}
}
