package serve

import (
	"sync/atomic"
	"time"
)

// endpoint identifiers for the metric set. Kept dense so handlers index
// an array instead of a map on the hot path.
const (
	epDistance = iota
	epBatch
	epStats
	epHealth
	epReady
	epEdges
	epDelete
	epBinDistance
	epBinBatch
	epBinEdges
	epBinDelete
	epBinStats
	epBinPing
	epBinRepl
	numEndpoints
)

var endpointNames = [numEndpoints]string{
	epDistance:    "distance",
	epBatch:       "batch",
	epStats:       "stats",
	epHealth:      "healthz",
	epReady:       "readyz",
	epEdges:       "edges",
	epDelete:      "delete",
	epBinDistance: "bin_distance",
	epBinBatch:    "bin_batch",
	epBinEdges:    "bin_edges",
	epBinDelete:   "bin_delete",
	epBinStats:    "bin_stats",
	epBinPing:     "bin_ping",
	epBinRepl:     "bin_repl",
}

// endpointMetrics accumulates one endpoint's counters. All fields are
// atomic: requests touch them concurrently, /stats reads them without
// stopping the world (reads are per-field, so a snapshot under load may
// be off by in-flight requests — fine for monitoring).
type endpointMetrics struct {
	requests  atomic.Int64
	errors    atomic.Int64 // 4xx/5xx responses
	pairs     atomic.Int64 // distance queries answered (batch counts each pair)
	latencyNs atomic.Int64 // total handler latency
	maxNs     atomic.Int64 // worst single request
}

type metricSet [numEndpoints]endpointMetrics

// observe records one completed request.
func (m *metricSet) observe(ep int, pairs int64, elapsed time.Duration, failed bool) {
	em := &m[ep]
	em.requests.Add(1)
	em.pairs.Add(pairs)
	em.latencyNs.Add(int64(elapsed))
	if failed {
		em.errors.Add(1)
	}
	for {
		cur := em.maxNs.Load()
		if int64(elapsed) <= cur || em.maxNs.CompareAndSwap(cur, int64(elapsed)) {
			break
		}
	}
}

// EndpointStats is the JSON shape of one endpoint's counters in /stats.
type EndpointStats struct {
	Requests     int64   `json:"requests"`
	Errors       int64   `json:"errors"`
	Pairs        int64   `json:"pairs"`
	AvgLatencyUs float64 `json:"avg_latency_us"`
	MaxLatencyUs float64 `json:"max_latency_us"`
	QPS          float64 `json:"qps"`
}

// snapshot renders the counters for /stats. uptime scales the QPS
// figure (requests per second since the server started).
func (m *metricSet) snapshot(uptime time.Duration) map[string]EndpointStats {
	out := make(map[string]EndpointStats, numEndpoints)
	secs := uptime.Seconds()
	for ep := 0; ep < numEndpoints; ep++ {
		em := &m[ep]
		st := EndpointStats{
			Requests: em.requests.Load(),
			Errors:   em.errors.Load(),
			Pairs:    em.pairs.Load(),
		}
		if st.Requests > 0 {
			st.AvgLatencyUs = float64(em.latencyNs.Load()) / float64(st.Requests) / 1e3
		}
		st.MaxLatencyUs = float64(em.maxNs.Load()) / 1e3
		if secs > 0 {
			st.QPS = float64(st.Requests) / secs
		}
		out[endpointNames[ep]] = st
	}
	return out
}
